// Package repro's benchmark harness regenerates every quantitative
// claim of the paper's implementation section (see EXPERIMENTS.md for
// the experiment index):
//
//	E1: dynamic calling-convention checks vs normalized scalars (§4.1)
//	E2: tuple flattening vs boxing, small and large tuples (§4.2)
//	E3: monomorphization vs runtime type arguments (§4.3)
//	E5: the print1 query-chain folds to a direct call (§3.3)
//	E6: polymorphic matcher dispatch cost (§3.4)
//	E7: compile-speed scaling (§5)
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/progen"
	"repro/internal/testprogs"
)

// benchN is the per-iteration workload size of the Virgil-core hot
// loops. Small enough for quick runs, large enough that loop cost
// dominates setup.
const benchN = 10000

func mustCompile(b *testing.B, p testprogs.Prog, cfg core.Config) *core.Compilation {
	b.Helper()
	comp, err := core.Compile(p.Name+".v", p.Source, cfg)
	if err != nil {
		b.Fatalf("compile [%s]: %v", cfg.Name(), err)
	}
	return comp
}

// runProg executes a compiled program once, discarding output.
func runProg(b *testing.B, comp *core.Compilation) {
	b.Helper()
	if _, err := comp.RunTo(io.Discard, 0); err != nil {
		b.Fatalf("run: %v", err)
	}
}

// benchConfigs runs the workload under the given configurations as
// sub-benchmarks and reports interpreter-level counters.
func benchConfigs(b *testing.B, p testprogs.Prog, cfgs map[string]core.Config) {
	for name, cfg := range cfgs {
		cfg := cfg
		b.Run(name, func(b *testing.B) {
			comp := mustCompile(b, p, cfg)
			b.ResetTimer()
			var steps, checks, boxes float64
			for i := 0; i < b.N; i++ {
				st, err := comp.RunTo(io.Discard, 0)
				if err != nil {
					b.Fatal(err)
				}
				steps = float64(st.Steps)
				checks = float64(st.AdaptChecks)
				boxes = float64(st.TupleAllocs)
			}
			b.ReportMetric(steps, "vm-steps/op")
			b.ReportMetric(checks, "arity-checks/op")
			b.ReportMetric(boxes, "tuple-boxes/op")
		})
	}
}

// refVsCompiled is the standard two-point comparison.
func refVsCompiled() map[string]core.Config {
	return map[string]core.Config{
		"reference": core.Reference(),
		"compiled":  core.Compiled(),
	}
}

// ------------------------------------------------------------------ E1

// BenchmarkE1_DynamicChecks measures the §4.1 claim: dynamic checks at
// indirect call sites are expensive; normalization eliminates them
// ("the checks are expensive ... our compiler normalizes the program,
// rewriting all uses of tuples to eliminate such overhead").
func BenchmarkE1_DynamicChecks(b *testing.B) {
	benchConfigs(b, testprogs.BenchTupleSmall(benchN), refVsCompiled())
}

// BenchmarkE1_OverrideAmbiguity exercises the virtual-call flavour of
// the ambiguity (p10-p17): tuple-equivalent overrides force
// per-invocation adaptation in reference mode.
func BenchmarkE1_OverrideAmbiguity(b *testing.B) {
	benchConfigs(b, testprogs.BenchVariants(benchN), refVsCompiled())
}

// ------------------------------------------------------------------ E2

// BenchmarkE2_TupleSmall: small tuples are much faster flattened than
// boxed (§4.2: "For small tuples, normalization has much better
// performance than boxing").
func BenchmarkE2_TupleSmall(b *testing.B) {
	benchConfigs(b, testprogs.BenchTupleSmall(benchN), map[string]core.Config{
		"boxed":     {Monomorphize: true}, // mono only: tuples stay boxed
		"flattened": core.Compiled(),
	})
}

// BenchmarkE2_TupleLarge: with 16-element tuples the flattening
// advantage narrows — the paper's stated tradeoff ("large tuples might
// actually perform better if allocated on the heap").
func BenchmarkE2_TupleLarge(b *testing.B) {
	benchConfigs(b, testprogs.BenchTupleLarge(benchN/4), map[string]core.Config{
		"boxed":     {Monomorphize: true},
		"flattened": core.Compiled(),
	})
}

// ------------------------------------------------------------------ E3

// BenchmarkE3_GenericList: monomorphization vs runtime type arguments
// on a polymorphic list workload (§4.3: "Even with lazy evaluation ...
// this exacts a considerable runtime cost").
func BenchmarkE3_GenericList(b *testing.B) {
	benchConfigs(b, testprogs.BenchGenericList(benchN/4), map[string]core.Config{
		"reference": core.Reference(),
		"mono":      {Monomorphize: true},
		"compiled":  core.Compiled(),
	})
}

// BenchmarkE3_HashMap: the §3.2 ADT HashMap under all configurations.
func BenchmarkE3_HashMap(b *testing.B) {
	benchConfigs(b, testprogs.BenchHashMap(benchN/2), map[string]core.Config{
		"reference": core.Reference(),
		"mono":      {Monomorphize: true},
		"compiled":  core.Compiled(),
	})
}

// ------------------------------------------------------------------ E5

// BenchmarkE5_Print1 measures the §3.3 claim end to end: in compiled
// mode the generic dispatch costs the same as direct calls because the
// query chain folded away.
func BenchmarkE5_Print1(b *testing.B) {
	benchConfigs(b, testprogs.BenchPrint1(benchN), map[string]core.Config{
		"reference": core.Reference(),
		"compiled":  core.Compiled(),
	})
}

// BenchmarkE5_DirectBaseline is the direct-call baseline the compiled
// print1 should match.
func BenchmarkE5_DirectBaseline(b *testing.B) {
	benchConfigs(b, testprogs.BenchDirect(benchN), map[string]core.Config{
		"compiled": core.Compiled(),
	})
}

// ------------------------------------------------------------------ E6

// BenchmarkE6_Matcher measures the §3.4 polymorphic matcher: reified
// type queries searching a handler list, vs the direct-call baseline.
func BenchmarkE6_Matcher(b *testing.B) {
	benchConfigs(b, testprogs.BenchMatcher(benchN/2), refVsCompiled())
}

// ------------------------------------------------------------------ E7

// BenchmarkE7_CompileSpeed measures end-to-end pipeline throughput on
// generated programs of increasing size (§5: "compiles very fast").
func BenchmarkE7_CompileSpeed(b *testing.B) {
	for _, k := range []int{1, 4, 16} {
		src := progen.Generate(progen.Scale(k))
		lines := float64(progen.Lines(src))
		b.Run(map[int]string{1: "small", 4: "medium", 16: "large"}[k], func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile("gen.v", src, core.Compiled()); err != nil {
					b.Fatal(err)
				}
			}
			linesPerSec := lines * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(linesPerSec, "lines/sec")
			b.ReportMetric(lines, "lines")
		})
	}
}

// ----------------------------------------------- parallel compilation

// parallelJobCounts is the ladder of worker counts exercised by
// BenchmarkCompileParallel: sequential reference, 2, 4, and the
// machine's GOMAXPROCS (deduplicated when the machine is small).
func parallelJobCounts() []int {
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, j := range counts {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// BenchmarkCompileParallel measures full-pipeline compile throughput
// at increasing worker counts on the largest E7 generated program.
// jobs=1 is the sequential reference path; the jobs=N results are the
// tentpole speedup claim, and cmd/bench records the ratio.
func BenchmarkCompileParallel(b *testing.B) {
	src := progen.Generate(progen.Scale(16))
	for _, j := range parallelJobCounts() {
		cfg := core.Compiled()
		cfg.Jobs = j
		b.Run(fmt.Sprintf("jobs=%d", j), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile("gen.v", src, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestE5AllocsPerOp pins the interpreter's allocation rate on the E5
// query-chain workload. The frame pool recycles the per-call register
// slice plus the static-call and builtin argument slices; without it
// this workload measures ~6.5 allocs per interpreted call, with it
// ~4.4 (the remainder is Value interface boxing of int results, which
// scales with VM steps, not calls). The 5.0 ceiling fails if any of
// the pooled per-call allocations come back.
func TestE5AllocsPerOp(t *testing.T) {
	p := testprogs.BenchPrint1(2000)
	comp, err := core.Compile(p.Name+".v", p.Source, core.Compiled())
	if err != nil {
		t.Fatal(err)
	}
	var stats interp.Stats
	allocs := testing.AllocsPerRun(5, func() {
		st, err := comp.RunTo(io.Discard, 0)
		if err != nil {
			t.Fatal(err)
		}
		stats = st
	})
	perCall := allocs / float64(stats.Calls)
	t.Logf("E5 allocs/op = %.0f over %d calls (%.3f allocs/call)", allocs, stats.Calls, perCall)
	if perCall > 5.0 {
		t.Errorf("allocs per interpreted call = %.3f, want <= 5.0: frame pooling regressed", perCall)
	}
}

// ------------------------------------------------------- ablation

// BenchmarkAblation_PipelineStages isolates each stage's contribution
// on the generic-list workload (DESIGN.md's ablation of §4's design
// choices).
func BenchmarkAblation_PipelineStages(b *testing.B) {
	benchConfigs(b, testprogs.BenchGenericList(benchN/4), map[string]core.Config{
		"1-reference":     core.Reference(),
		"2-mono":          {Monomorphize: true},
		"3-mono+norm":     {Monomorphize: true, Normalize: true},
		"4-mono+norm+opt": core.Compiled(),
	})
}

// TestBenchWorkloadsAgree cross-checks that every benchmark workload
// produces identical output in reference and compiled modes, so the
// benchmarks compare equal work.
func TestBenchWorkloadsAgree(t *testing.T) {
	progs := []testprogs.Prog{
		testprogs.BenchTupleSmall(500),
		testprogs.BenchTupleLarge(100),
		testprogs.BenchGenericList(200),
		testprogs.BenchHashMap(300),
		testprogs.BenchPrint1(300),
		testprogs.BenchDirect(300),
		testprogs.BenchMatcher(200),
		testprogs.BenchVariants(300),
	}
	for _, p := range progs {
		var want string
		for i, cfg := range core.Configs() {
			comp, err := core.Compile(p.Name+".v", p.Source, cfg)
			if err != nil {
				t.Fatalf("%s [%s]: %v", p.Name, cfg.Name(), err)
			}
			res := comp.Run()
			if res.Err != nil {
				t.Fatalf("%s [%s]: %v", p.Name, cfg.Name(), res.Err)
			}
			if i == 0 {
				want = res.Output
			} else if res.Output != want {
				t.Errorf("%s [%s]: output %q != reference %q", p.Name, cfg.Name(), res.Output, want)
			}
		}
	}
}

// ------------------------------------------------------------- Engine

// BenchmarkEngine compares the two execution engines — the register
// bytecode compiler/evaluator (the default) against the switch
// interpreter (the reference semantics) — on the paper's hot
// workloads. The two are observably identical (engine_diff_test.go
// proves it); this measures what the bytecode translation buys:
// unboxed scalar registers, fused superinstructions, and monomorphic
// inline caches at virtual and indirect call sites.
func BenchmarkEngine(b *testing.B) {
	workloads := []testprogs.Prog{
		testprogs.BenchTupleSmall(benchN),
		testprogs.BenchHashMap(benchN / 2),
		testprogs.BenchPrint1(benchN),
		testprogs.BenchMatcher(benchN / 2),
	}
	for _, p := range workloads {
		for _, eng := range []string{core.EngineSwitch, core.EngineBytecode} {
			cfg := core.Compiled()
			cfg.Engine = eng
			b.Run(p.Name+"/"+eng, func(b *testing.B) {
				comp := mustCompile(b, p, cfg)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runProg(b, comp)
				}
			})
		}
	}
}

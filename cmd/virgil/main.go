// Command virgil is the Virgil-core compiler driver.
//
// Usage:
//
//	virgil run [-config ref|mono|norm|full] [-engine bytecode|switch] [-analyze=bool] [-verify-ir] [-max-errors n] [-max-steps n] [-max-depth n] [-max-heap n] [-timeout d] [-profile-out file] [-profile-in file] file.v...
//	virgil check [-config ...] [-verify-ir] file.v...
//	virgil dump [-config ...] [-verify-ir] file.v...
//	virgil lint [-lint-strict] file.v...
//	virgil analyze [-jobs n] file.v...
//	virgil profile [-profile-out file] [-profile-in file] file.v...
//	virgil stats file.v...
//	virgil serve [-addr host:port] [-engine bytecode|switch] [-max-concurrent n] [-queue n] [-default-timeout d] [-max-timeout d] [-drain-timeout d] [-tier-after n] [-jobs n] [-max-request-bytes n] [-peers url,...] [-self url] [-peer-timeout d] [-peer-attempts n] [-hedge-after d]
//
// run executes the program; check compiles under the selected config
// without executing; dump prints the IR after the selected pipeline
// stages; lint reports advisory diagnostics from two layers — AST
// rules (unreachable code, locals read before initialization, unused
// locals, fields, private functions and type parameters,
// statically-decided casts) and whole-program IR rules (result of a
// pure call unused, provably infinite loops, allocations inside loops)
// — exiting 2 when findings exist, or 1 under -lint-strict; analyze
// emits the whole-program static analysis (call graph, escape
// verdicts, per-function effects, interval summary) as JSON, byte
// identical at every -jobs value; stats prints monomorphization,
// normalization and optimization statistics; serve runs the compiler
// as an HTTP JSON service (endpoints /compile, /run, /healthz,
// /stats) until SIGINT/SIGTERM — with -peers it joins a static fleet
// that routes each program to its consistent-hash owner with retry,
// per-peer circuit breakers, optional hedging (-hedge-after), and
// graceful degradation to local execution (see internal/cluster) —
// then drains in-flight requests and
// exits. -engine selects the execution engine: bytecode (the default;
// compiles IR to register bytecode with unboxed scalars and inline
// caches) or switch (the direct tree-walking interpreter, kept as
// reference semantics) — the two are observably identical. -analyze
// (default true) toggles the analysis-driven optimizer passes under
// -config full: call-graph devirtualization, pure-call elimination,
// and stack promotion of non-escaping allocations. -verify-ir runs
// the typed IR verifier after every pipeline stage (also enabled by
// the VIRGIL_VERIFY_IR environment variable). -max-errors caps
// reported diagnostics (0 = default cap). -max-heap bounds the
// modeled heap (cumulative allocation cost in bytes) of the executed
// program; exceeding it raises the deterministic !HeapExhausted trap.
//
// profile runs the program with output discarded and prints the
// recorded execution profile as stable JSON (byte-identical at every
// -jobs setting); run -profile-out=file does the same while keeping
// the program's output. -profile-in feeds a recorded profile back into
// the compile for profile-guided optimization: speculative
// devirtualization of observed-monomorphic call sites (guarded, never
// a deopt trap) and hot inlining — a stale profile can cost speed,
// never correctness.
//
// Exit codes: 0 success; 1 source diagnostics, Virgil trap, resource
// exhaustion, or lint findings under -lint-strict; 2 usage error or
// lint findings; 3 internal compiler error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lint"
	"repro/internal/profile"
	"repro/internal/src"
)

// Exit codes distinguish faults in the input (1) from faults in the
// invocation (2) and faults in the compiler itself (3).
const (
	exitOK    = 0
	exitDiag  = 1
	exitUsage = 2
	exitICE   = 3
	// exitLint is the distinct code for "the program compiles but lint
	// found something". It shares the number with exitUsage — findings
	// and usage errors are both "fix your invocation/input, nothing
	// ran" — and is told apart by the findings on stdout.
	exitLint = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable driver body: it parses argv, dispatches the
// subcommand, and returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) < 1 {
		usage(stderr)
		return exitUsage
	}
	cmd := argv[0]
	switch cmd {
	case "run", "check", "dump", "lint", "stats", "analyze", "profile":
	case "serve":
		return serveCmd(argv[1:], stdout, stderr)
	default:
		usage(stderr)
		return exitUsage
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfgName := fs.String("config", "full", "pipeline config: ref, mono, norm, or full")
	engine := fs.String("engine", "", "execution engine: bytecode (default) or switch")
	verifyIR := fs.Bool("verify-ir", false, "run the typed IR verifier after every pipeline stage")
	maxSteps := fs.Int64("max-steps", 0, "step budget for execution (0 = default)")
	maxDepth := fs.Int("max-depth", 0, "call-depth limit for execution (0 = default)")
	maxHeap := fs.Int64("max-heap", 0, "modeled heap budget in bytes for execution (0 = default, 1 GiB)")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for execution (0 = none)")
	jobs := fs.Int("jobs", 0, "worker count for per-function pipeline stages (0 = GOMAXPROCS, 1 = sequential)")
	maxErrors := fs.Int("max-errors", 0, "cap on reported diagnostics (0 = default cap)")
	analyze := fs.Bool("analyze", true, "run the whole-program analysis passes under -config full (devirtualization, pure-call elimination, stack promotion)")
	lintStrict := fs.Bool("lint-strict", false, "treat lint findings as compile errors (exit 1 instead of 2)")
	profileOut := fs.String("profile-out", "", "record an execution profile during run/profile and write it to this file (\"-\" = stdout)")
	profileIn := fs.String("profile-in", "", "feed a recorded profile into the compile for profile-guided optimization (requires -config full)")
	if err := fs.Parse(argv[1:]); err != nil {
		return exitUsage
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "virgil: no input files")
		return exitUsage
	}
	cfg, err := configByName(*cfgName)
	if err != nil {
		fmt.Fprintln(stderr, "virgil:", err)
		return exitUsage
	}
	cfg.Engine = *engine
	cfg.VerifyIR = *verifyIR
	cfg.MaxSteps = *maxSteps
	cfg.MaxDepth = *maxDepth
	cfg.MaxHeap = *maxHeap
	cfg.Timeout = *timeout
	cfg.Jobs = *jobs
	cfg.MaxErrors = *maxErrors
	if !*analyze {
		cfg.Analyze = false
	}
	if cmd == "profile" || (*profileOut != "" && cmd == "run") {
		cfg.Profile = true
	}
	if *profileIn != "" {
		f, err := os.Open(*profileIn)
		if err != nil {
			fmt.Fprintln(stderr, "virgil:", err)
			return exitDiag
		}
		p, err := profile.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "virgil:", err)
			return exitDiag
		}
		cfg.PGO = p
	}

	var srcs []core.File
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(stderr, "virgil:", err)
			return exitDiag
		}
		srcs = append(srcs, core.File{Name: name, Source: string(data)})
	}

	switch cmd {
	case "check":
		if _, err := core.CompileFiles(srcs, cfg); err != nil {
			return report(stderr, err)
		}
	case "run":
		comp, err := core.CompileFiles(srcs, cfg)
		if err != nil {
			return report(stderr, err)
		}
		if comp.Module.Main == nil {
			fmt.Fprintln(stderr, "virgil: program has no main function")
			return exitDiag
		}
		if *profileOut == "" {
			if _, err := comp.RunTo(stdout, 0); err != nil {
				fmt.Fprintln(stdout)
				return report(stderr, err)
			}
		} else {
			_, prof, err := comp.RunProfiled(context.Background(), stdout, core.RunOpts{})
			if err != nil {
				fmt.Fprintln(stdout)
				return report(stderr, err)
			}
			if code := writeProfile(prof, *profileOut, stdout, stderr); code != exitOK {
				return code
			}
		}
	case "profile":
		comp, err := core.CompileFiles(srcs, cfg)
		if err != nil {
			return report(stderr, err)
		}
		if comp.Module.Main == nil {
			fmt.Fprintln(stderr, "virgil: program has no main function")
			return exitDiag
		}
		_, prof, err := comp.RunProfiled(context.Background(), io.Discard, core.RunOpts{})
		if err != nil {
			return report(stderr, err)
		}
		dest := *profileOut
		if dest == "" {
			dest = "-"
		}
		if code := writeProfile(prof, dest, stdout, stderr); code != exitOK {
			return code
		}
	case "dump":
		comp, err := core.CompileFiles(srcs, cfg)
		if err != nil {
			return report(stderr, err)
		}
		fmt.Fprint(stdout, comp.Module.String())
	case "lint":
		return lintCmd(stdout, stderr, srcs, *jobs, *lintStrict)
	case "analyze":
		if !cfg.Optimize || !cfg.Analyze {
			fmt.Fprintln(stderr, "virgil: analyze requires -config full with -analyze enabled")
			return exitUsage
		}
		comp, err := core.CompileFiles(srcs, cfg)
		if err != nil {
			return report(stderr, err)
		}
		out, err := analysis.ReportJSON(comp.Analysis)
		if err != nil {
			fmt.Fprintln(stderr, "virgil:", err)
			return exitICE
		}
		if _, err := stdout.Write(out); err != nil {
			fmt.Fprintln(stderr, "virgil:", err)
			return exitDiag
		}
	case "stats":
		return printStats(stdout, stderr, srcs)
	}
	return exitOK
}

// lintCmd runs both lint layers: the AST rules over the checked
// program, and the IR rules over the monomorphized (but unoptimized)
// module with whole-program analysis facts — unoptimized because the
// optimizer would delete the very defects these rules report.
// Findings exist: exit code 2, or 1 under -lint-strict (findings
// promoted to errors).
func lintCmd(stdout, stderr io.Writer, srcs []core.File, jobs int, strict bool) int {
	prog, err := core.CheckFiles(srcs)
	if err != nil {
		return report(stderr, err)
	}
	findings := lint.Run(prog)
	comp, err := core.CompileFiles(srcs, core.Config{Monomorphize: true, Jobs: jobs})
	if err != nil {
		return report(stderr, err)
	}
	res, err := analysis.Analyze(context.Background(), comp.Module, analysis.Config{Jobs: jobs})
	if err != nil {
		return report(stderr, err)
	}
	findings = append(findings, lint.RunIR(comp.Module, res)...)
	lint.SortFindings(findings)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		if strict {
			return exitDiag
		}
		return exitLint
	}
	return exitOK
}

// writeProfile encodes a recorded execution profile as stable JSON to
// path ("-" = stdout). The encoding is byte-identical for a given
// program and inputs at every -jobs setting.
func writeProfile(p *profile.Profile, path string, stdout, stderr io.Writer) int {
	if p == nil {
		fmt.Fprintln(stderr, "virgil: no profile was recorded (profiles require the bytecode engine)")
		return exitDiag
	}
	if path == "-" {
		if err := p.Encode(stdout); err != nil {
			fmt.Fprintln(stderr, "virgil:", err)
			return exitDiag
		}
		return exitOK
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(stderr, "virgil:", err)
		return exitDiag
	}
	if err := p.Encode(f); err != nil {
		f.Close()
		fmt.Fprintln(stderr, "virgil:", err)
		return exitDiag
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(stderr, "virgil:", err)
		return exitDiag
	}
	return exitOK
}

// report prints err in its user-facing form and returns the exit code
// for its class: ICEs are compiler bugs (3, with a one-line summary and
// an optional stack under VIRGIL_ICE_STACK=1); Virgil traps print their
// source-level stack trace; everything else is an input diagnostic (1).
func report(stderr io.Writer, err error) int {
	var ice *src.ICE
	if errors.As(err, &ice) {
		fmt.Fprintln(stderr, "virgil:", ice.Error())
		fmt.Fprintln(stderr, "virgil: this is a bug in the compiler, not in your program; please report it")
		if os.Getenv("VIRGIL_ICE_STACK") != "" && ice.Stack != "" {
			fmt.Fprintln(stderr, ice.Stack)
		}
		return exitICE
	}
	var ve *interp.VirgilError
	if errors.As(err, &ve) {
		fmt.Fprintln(stderr, ve.Error())
		fmt.Fprint(stderr, ve.TraceString())
		return exitDiag
	}
	fmt.Fprintln(stderr, err)
	return exitDiag
}

func configByName(name string) (core.Config, error) {
	switch name {
	case "ref", "reference":
		return core.Reference(), nil
	case "mono":
		return core.Config{Monomorphize: true}, nil
	case "norm":
		return core.Config{Monomorphize: true, Normalize: true}, nil
	case "full":
		return core.Compiled(), nil
	}
	return core.Config{}, fmt.Errorf("unknown config %q (want ref, mono, norm, or full)", name)
}

func printStats(stdout, stderr io.Writer, srcs []core.File) int {
	comp, err := core.CompileFiles(srcs, core.Compiled())
	if err != nil {
		return report(stderr, err)
	}
	ms := comp.MonoStats
	fmt.Fprintf(stdout, "monomorphization (§4.3):\n")
	fmt.Fprintf(stdout, "  functions: %d -> %d\n", ms.FuncsBefore, ms.FuncsAfter)
	fmt.Fprintf(stdout, "  classes:   %d -> %d\n", ms.ClassesBefore, ms.ClassesAfter)
	fmt.Fprintf(stdout, "  instrs:    %d -> %d (expansion %.2fx)\n", ms.InstrsBefore, ms.InstrsAfter, ms.ExpansionFactor())
	fmt.Fprintf(stdout, "  top specializations:\n")
	for i, fe := range ms.PerFunc {
		if i >= 10 || fe.Instances < 2 {
			break
		}
		fmt.Fprintf(stdout, "    %-30s %3d instances, %4d -> %4d instrs\n", fe.Name, fe.Instances, fe.InstrsBefore, fe.InstrsAfter)
	}
	ns := comp.NormStats
	fmt.Fprintf(stdout, "normalization (§4.2):\n")
	fmt.Fprintf(stdout, "  tuples eliminated: %d\n", ns.TuplesEliminated)
	fmt.Fprintf(stdout, "  fields split:      %d\n", ns.FieldsSplit)
	fmt.Fprintf(stdout, "  globals split:     %d\n", ns.GlobalsSplit)
	fmt.Fprintf(stdout, "  params split:      %d\n", ns.ParamsSplit)
	osStats := comp.OptStats
	fmt.Fprintf(stdout, "optimization (§3.3):\n")
	fmt.Fprintf(stdout, "  instrs:          %d -> %d\n", osStats.InstrsBefore, osStats.InstrsAfter)
	fmt.Fprintf(stdout, "  queries folded:  %d\n", osStats.QueriesFolded)
	fmt.Fprintf(stdout, "  casts elided:    %d\n", osStats.CastsElided)
	fmt.Fprintf(stdout, "  branches folded: %d\n", osStats.BranchesFolded)
	fmt.Fprintf(stdout, "  calls inlined:   %d\n", osStats.Inlined)
	fmt.Fprintf(stdout, "timings: parse %v, check %v, lower %v, mono %v, norm %v, opt %v, total %v\n",
		comp.Timings.Parse, comp.Timings.Check, comp.Timings.Lower,
		comp.Timings.Mono, comp.Timings.Norm, comp.Timings.Opt, comp.Timings.Total)
	return exitOK
}

func usage(stderr io.Writer) {
	fmt.Fprintln(stderr, `usage: virgil <command> [-config ref|mono|norm|full] [-engine bytecode|switch] [-analyze=bool] [-verify-ir] [-jobs n] [-max-errors n] [-max-steps n] [-max-depth n] [-max-heap n] [-timeout d] [-profile-out file] [-profile-in file] file.v...
       virgil serve [-addr host:port] [-engine bytecode|switch] [-max-concurrent n] [-queue n] [-default-timeout d] [-max-timeout d] [-drain-timeout d] [-tier-after n] [-jobs n] [-max-request-bytes n] [-peers url,...] [-self url] [-peer-timeout d] [-peer-attempts n] [-hedge-after d]

commands:
  run      compile and execute the program (-profile-out records an execution profile, -profile-in optimizes with one)
  check    compile under the selected config without executing
  dump     print the IR after the selected pipeline stages
  lint     report advisory diagnostics (unused code, pure calls, loop allocs, ...); -lint-strict makes them errors
  analyze  print the whole-program static analysis (call graph, escapes, effects) as JSON
  profile  run the program (output discarded) and print its execution profile as stable JSON
  stats    print per-stage compilation statistics
  serve    run the compiler as an HTTP JSON service (/compile, /run, /healthz, /stats)

exit codes: 0 ok; 1 diagnostics, trap, resource limit, or strict lint findings; 2 usage or lint findings; 3 internal compiler error`)
}

// Command virgil is the Virgil-core compiler driver.
//
// Usage:
//
//	virgil run [-config ref|mono|norm|full] file.v...
//	virgil check file.v...
//	virgil dump [-config ...] file.v...
//	virgil stats file.v...
//
// run executes the program; check typechecks only; dump prints the IR
// after the selected pipeline stages; stats prints monomorphization,
// normalization and optimization statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	cfgName := fs.String("config", "full", "pipeline config: ref, mono, norm, or full")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "virgil: no input files")
		os.Exit(2)
	}
	cfg, err := configByName(*cfgName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "virgil:", err)
		os.Exit(2)
	}

	var srcs []core.File
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "virgil:", err)
			os.Exit(1)
		}
		srcs = append(srcs, core.File{Name: name, Source: string(data)})
	}

	switch cmd {
	case "check":
		cfg = core.Reference()
		if _, err := core.CompileFiles(srcs, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "run":
		comp, err := core.CompileFiles(srcs, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if comp.Module.Main == nil {
			fmt.Fprintln(os.Stderr, "virgil: program has no main function")
			os.Exit(1)
		}
		if _, err := comp.RunTo(os.Stdout, 0); err != nil {
			fmt.Fprintln(os.Stderr, "\n"+err.Error())
			os.Exit(1)
		}
	case "dump":
		comp, err := core.CompileFiles(srcs, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(comp.Module.String())
	case "stats":
		printStats(srcs)
	default:
		usage()
		os.Exit(2)
	}
}

func configByName(name string) (core.Config, error) {
	switch name {
	case "ref", "reference":
		return core.Reference(), nil
	case "mono":
		return core.Config{Monomorphize: true}, nil
	case "norm":
		return core.Config{Monomorphize: true, Normalize: true}, nil
	case "full":
		return core.Compiled(), nil
	}
	return core.Config{}, fmt.Errorf("unknown config %q (want ref, mono, norm, or full)", name)
}

func printStats(srcs []core.File) {
	comp, err := core.CompileFiles(srcs, core.Compiled())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ms := comp.MonoStats
	fmt.Printf("monomorphization (§4.3):\n")
	fmt.Printf("  functions: %d -> %d\n", ms.FuncsBefore, ms.FuncsAfter)
	fmt.Printf("  classes:   %d -> %d\n", ms.ClassesBefore, ms.ClassesAfter)
	fmt.Printf("  instrs:    %d -> %d (expansion %.2fx)\n", ms.InstrsBefore, ms.InstrsAfter, ms.ExpansionFactor())
	fmt.Printf("  top specializations:\n")
	for i, fe := range ms.PerFunc {
		if i >= 10 || fe.Instances < 2 {
			break
		}
		fmt.Printf("    %-30s %3d instances, %4d -> %4d instrs\n", fe.Name, fe.Instances, fe.InstrsBefore, fe.InstrsAfter)
	}
	ns := comp.NormStats
	fmt.Printf("normalization (§4.2):\n")
	fmt.Printf("  tuples eliminated: %d\n", ns.TuplesEliminated)
	fmt.Printf("  fields split:      %d\n", ns.FieldsSplit)
	fmt.Printf("  globals split:     %d\n", ns.GlobalsSplit)
	fmt.Printf("  params split:      %d\n", ns.ParamsSplit)
	os := comp.OptStats
	fmt.Printf("optimization (§3.3):\n")
	fmt.Printf("  instrs:          %d -> %d\n", os.InstrsBefore, os.InstrsAfter)
	fmt.Printf("  queries folded:  %d\n", os.QueriesFolded)
	fmt.Printf("  casts elided:    %d\n", os.CastsElided)
	fmt.Printf("  branches folded: %d\n", os.BranchesFolded)
	fmt.Printf("  calls inlined:   %d\n", os.Inlined)
	fmt.Printf("timings: parse %v, check %v, lower %v, mono %v, norm %v, opt %v, total %v\n",
		comp.Timings.Parse, comp.Timings.Check, comp.Timings.Lower,
		comp.Timings.Mono, comp.Timings.Norm, comp.Timings.Opt, comp.Timings.Total)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: virgil <command> [-config ref|mono|norm|full] file.v...

commands:
  run    compile and execute the program
  check  typecheck only
  dump   print the IR after the selected pipeline stages
  stats  print per-stage compilation statistics`)
}

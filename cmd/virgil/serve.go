package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/serve"
)

// serveCmd runs the compiler as an HTTP JSON service until SIGINT or
// SIGTERM, then drains in-flight requests (bounded by -drain-timeout)
// and exits 0 on a clean drain. With -peers the instance joins a
// static fleet: /run and /compile are routed to each program's
// consistent-hash owner with retry, circuit breaking, optional
// hedging, and graceful degradation to local execution.
func serveCmd(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	maxConcurrent := fs.Int("max-concurrent", 0, "max concurrently compiling requests (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission wait-queue depth (0 = 2x max-concurrent)")
	defaultTimeout := fs.Duration("default-timeout", 0, "per-request deadline when the client sets none (0 = 10s)")
	maxTimeout := fs.Duration("max-timeout", 0, "ceiling on client-requested deadlines (0 = 60s)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	jobs := fs.Int("jobs", 0, "worker count per compilation (0 = 1; the service parallelizes across requests)")
	engine := fs.String("engine", "", "execution engine for /run: bytecode (default) or switch")
	cacheSize := fs.Int("cache-size", 0, "warm-compilation cache entries (0 = 64, negative disables)")
	maxHeap := fs.Int64("max-heap", 0, "modeled heap budget in bytes per /run (0 = 64 MiB)")
	quarantineAfter := fs.Int("quarantine-after", 0, "bytecode-engine fallbacks before a program is pinned to the switch interpreter (0 = 3, negative disables)")
	tierAfter := fs.Int("tier-after", 0, "profiled runs before a warm program is recompiled with its profile and tiered up (0 = 8, negative disables)")
	tenantConcurrent := fs.Int("tenant-concurrent", 0, "per-tenant concurrent-request cap (0 = no cap)")
	tenantStepsPerSec := fs.Int64("tenant-steps-per-sec", 0, "per-tenant sustained step budget (0 = no cap)")
	tenantHeapPerSec := fs.Int64("tenant-heap-per-sec", 0, "per-tenant sustained modeled-heap budget in bytes/sec (0 = no cap)")
	maxRequestBytes := fs.Int64("max-request-bytes", 0, "request body size limit in bytes (0 = 4 MiB); oversize bodies get a structured 413")
	peers := fs.String("peers", "", "comma-separated fleet base URLs, self included; enables consistent-hash peer routing")
	self := fs.String("self", "", "this instance's own base URL as it appears in -peers (default http://<addr>)")
	peerTimeout := fs.Duration("peer-timeout", 0, "per-forward-attempt timeout (0 = 2s)")
	peerAttempts := fs.Int("peer-attempts", 0, "forward attempts before degrading to local execution (0 = 3)")
	hedgeAfter := fs.Duration("hedge-after", 0, "launch a local hedge when the owner has not answered within this duration (0 disables)")
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "virgil serve: unexpected arguments:", fs.Args())
		return exitUsage
	}

	s := serve.New(serve.Config{
		MaxConcurrent:       *maxConcurrent,
		QueueDepth:          *queue,
		DefaultTimeout:      *defaultTimeout,
		MaxTimeout:          *maxTimeout,
		Jobs:                *jobs,
		Engine:              *engine,
		CacheSize:           *cacheSize,
		MaxHeapBytes:        *maxHeap,
		QuarantineAfter:     *quarantineAfter,
		TierAfter:           *tierAfter,
		TenantMaxConcurrent: *tenantConcurrent,
		TenantStepsPerSec:   *tenantStepsPerSec,
		TenantHeapPerSec:    *tenantHeapPerSec,
		MaxBodyBytes:        *maxRequestBytes,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "virgil serve:", err)
		return exitUsage
	}
	fmt.Fprintf(stdout, "virgil serve: listening on http://%s\n", l.Addr())
	if faultinject.Enabled() {
		fmt.Fprintln(stdout, "virgil serve: WARNING: fault injection armed via VIRGIL_FAULT")
	}

	handler := s.Handler()
	if *peers != "" {
		selfURL := *self
		if selfURL == "" {
			selfURL = "http://" + l.Addr().String()
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, strings.TrimSuffix(p, "/"))
			}
		}
		rt := cluster.New(cluster.Config{
			Self:         selfURL,
			Peers:        peerList,
			PeerTimeout:  *peerTimeout,
			Attempts:     *peerAttempts,
			HedgeAfter:   *hedgeAfter,
			MaxBodyBytes: *maxRequestBytes,
		}, s)
		handler = rt.Handler()
		fmt.Fprintf(stdout, "virgil serve: fleet routing enabled, self=%s peers=%d\n", selfURL, len(peerList))
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ServeWith(l, handler) }()

	select {
	case sig := <-sigs:
		fmt.Fprintf(stdout, "virgil serve: received %v; draining (up to %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "virgil serve: drain incomplete:", err)
			<-serveErr
			return exitDiag
		}
		<-serveErr
		fmt.Fprintln(stdout, "virgil serve: drained cleanly")
		return exitOK
	case err := <-serveErr:
		fmt.Fprintln(stderr, "virgil serve:", err)
		return exitICE
	}
}

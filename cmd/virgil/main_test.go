package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// write saves a temp source file and returns its path.
func write(t *testing.T, name, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// exec invokes the driver in-process, capturing output and exit code.
func exec(args ...string) (code int, stdout, stderr string) {
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestUsageExitCodes(t *testing.T) {
	if code, _, _ := exec(); code != exitUsage {
		t.Errorf("no args: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := exec("frobnicate", "x.v"); code != exitUsage {
		t.Errorf("unknown command: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := exec("run"); code != exitUsage {
		t.Errorf("no files: exit %d, want %d", code, exitUsage)
	}
	p := write(t, "ok.v", "def main() { }\n")
	if code, _, _ := exec("run", "-config", "bogus", p); code != exitUsage {
		t.Errorf("bad config: exit %d, want %d", code, exitUsage)
	}
}

func TestRunHello(t *testing.T) {
	p := write(t, "hello.v", `def main() { System.puts("hi"); System.ln(); }`)
	code, out, stderr := exec("run", p)
	if code != exitOK || out != "hi\n" {
		t.Fatalf("exit %d out %q stderr %q", code, out, stderr)
	}
}

// TestCheckHonorsConfig: check must compile under the *selected*
// pipeline config (it used to silently overwrite -config with the
// reference config). A program that traps at runtime still checks
// cleanly under every config, because check never executes.
func TestCheckHonorsConfig(t *testing.T) {
	p := write(t, "trapsatruntime.v", `
class C { var x: int; }
def main() -> int {
	var c: C;
	return c.x;
}
`)
	for _, cfg := range []string{"ref", "mono", "norm", "full"} {
		code, _, stderr := exec("check", "-config", cfg, p)
		if code != exitOK {
			t.Errorf("check -config %s: exit %d, stderr %q", cfg, code, stderr)
		}
	}
	bad := write(t, "bad.v", "def main() -> int { return true; }\n")
	for _, cfg := range []string{"ref", "full"} {
		code, _, _ := exec("check", "-config", cfg, bad)
		if code != exitDiag {
			t.Errorf("check -config %s on bad program: exit %d, want %d", cfg, code, exitDiag)
		}
	}
}

// TestMultipleDiagnostics: independent errors in one file are all
// reported (parser/checker recovery), not just the first.
func TestMultipleDiagnostics(t *testing.T) {
	p := write(t, "multi.v", `
def f() -> int {
	var x: int = true;
	return x;
}
def g() -> bool {
	var y: bool = 3;
	return y;
}
`)
	code, _, stderr := exec("check", p)
	if code != exitDiag {
		t.Fatalf("exit %d, want %d", code, exitDiag)
	}
	if n := strings.Count(stderr, "multi.v:"); n < 2 {
		t.Errorf("want >=2 positioned diagnostics, got %d:\n%s", n, stderr)
	}
}

func TestTrapPrintsTraceNotGoStack(t *testing.T) {
	p := write(t, "nulltrap.v", `
class C { var x: int; }
def deref(c: C) -> int {
	if (c == null) return c.x;
	return c.x;
}
def main() -> int {
	var c: C;
	return deref(c);
}
`)
	for _, cfg := range []string{"ref", "full"} {
		code, _, stderr := exec("run", "-config", cfg, p)
		if code != exitDiag {
			t.Errorf("[%s] exit %d, want %d", cfg, code, exitDiag)
		}
		if !strings.Contains(stderr, "!NullCheckException") {
			t.Errorf("[%s] missing trap name:\n%s", cfg, stderr)
		}
		if !strings.Contains(stderr, "at deref (") || !strings.Contains(stderr, "nulltrap.v:") {
			t.Errorf("[%s] missing source-level trace frame:\n%s", cfg, stderr)
		}
		assertNoGoStack(t, stderr)
	}
}

func TestResourceGuardFlags(t *testing.T) {
	loop := write(t, "loop.v", `
def main() -> int {
	var n = 0;
	while (true) n = n + 1;
	return n;
}
`)
	code, _, stderr := exec("run", "-max-steps", "10000", loop)
	if code != exitDiag || !strings.Contains(stderr, "step limit") {
		t.Errorf("-max-steps: exit %d stderr %q", code, stderr)
	}
	code, _, stderr = exec("run", "-timeout", "50ms", loop)
	if code != exitDiag || !strings.Contains(stderr, "deadline") {
		t.Errorf("-timeout: exit %d stderr %q", code, stderr)
	}
	rec := write(t, "rec.v", `
def f(n: int) -> int {
	if (n > 0) return f(n + 1);
	return n;
}
def main() -> int { return f(1); }
`)
	code, _, stderr = exec("run", "-max-depth", "100", rec)
	if code != exitDiag || !strings.Contains(stderr, "!StackOverflow") {
		t.Errorf("-max-depth: exit %d stderr %q", code, stderr)
	}
}

// TestCrashersNeverPanic runs every checked-in malformed program
// through the full driver: each must produce a one-line-per-diagnostic
// report and exit 1 (diagnostics or trap) or 3 (contained ICE) — never
// a Go panic or runtime stack dump.
func TestCrashersNeverPanic(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "crashers", "*.v"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no crasher corpus found: %v", err)
	}
	for _, p := range paths {
		p := p
		t.Run(filepath.Base(p), func(t *testing.T) {
			for _, cfg := range []string{"ref", "full"} {
				// Guards keep even "valid but divergent" crashers quick.
				code, _, stderr := exec("run", "-config", cfg, "-max-steps", "1000000", "-timeout", "5s", p)
				if code != exitDiag && code != exitICE {
					t.Errorf("[%s] exit %d (stderr %q), want 1 or 3", cfg, code, stderr)
				}
				assertNoGoStack(t, stderr)
			}
		})
	}
}

func assertNoGoStack(t *testing.T, stderr string) {
	t.Helper()
	for _, marker := range []string{"goroutine ", "runtime error", "panic:", ".go:"} {
		if strings.Contains(stderr, marker) {
			t.Errorf("Go runtime detail leaked to user output (%q):\n%s", marker, stderr)
		}
	}
}

// TestLintSubcommand: virgil lint reports advisory findings with
// positions and exits 2 (distinct from diagnostics), exits 1 under
// -lint-strict, stays silent and exits 0 on clean programs, and
// reports ordinary diagnostics for programs that do not check.
func TestLintSubcommand(t *testing.T) {
	dirty := write(t, "dirty.v", `
def main() {
	var unused = 1;
	return;
	System.ln();
}
`)
	code, out, _ := exec("lint", dirty)
	if code != exitLint {
		t.Errorf("dirty program: exit %d, want %d", code, exitLint)
	}
	if !strings.Contains(out, "unused-local: local unused is never read") {
		t.Errorf("missing unused-local finding in output:\n%s", out)
	}
	if !strings.Contains(out, "unreachable: unreachable statement") {
		t.Errorf("missing unreachable finding in output:\n%s", out)
	}
	if !strings.Contains(out, "dirty.v:3:6:") {
		t.Errorf("findings lack file:line:col positions:\n%s", out)
	}

	code, _, _ = exec("lint", "-lint-strict", dirty)
	if code != exitDiag {
		t.Errorf("dirty program with -lint-strict: exit %d, want %d", code, exitDiag)
	}

	clean := write(t, "clean.v", `def main() { System.puts("ok"); System.ln(); }`)
	code, out, stderr := exec("lint", clean)
	if code != exitOK || out != "" {
		t.Errorf("clean program: exit %d out %q stderr %q", code, out, stderr)
	}

	broken := write(t, "broken.v", `def main() { undefined; }`)
	code, _, stderr = exec("lint", broken)
	if code != exitDiag || stderr == "" {
		t.Errorf("broken program: exit %d stderr %q, want diagnostics on stderr", code, stderr)
	}
}

// TestVerifyIRFlag: -verify-ir must be accepted by the compiling
// subcommands and leave correct programs untouched.
func TestVerifyIRFlag(t *testing.T) {
	p := write(t, "gen.v", `
class Box<T> {
	var x: T;
	new(x) { }
}
def main() {
	var b = Box<int>.new(41);
	System.puti(b.x + 1);
	System.ln();
}
`)
	for _, cfgName := range []string{"ref", "mono", "norm", "full"} {
		if code, _, stderr := exec("check", "-config", cfgName, "-verify-ir", p); code != exitOK {
			t.Errorf("check -config %s -verify-ir: exit %d stderr %q", cfgName, code, stderr)
		}
	}
	code, out, stderr := exec("run", "-verify-ir", p)
	if code != exitOK || out != "42\n" {
		t.Errorf("run -verify-ir: exit %d out %q stderr %q", code, out, stderr)
	}
}

// TestMaxErrorsFlag: -max-errors caps reported diagnostics and appends
// the sentinel line carrying the true total; -max-errors 0 keeps the
// default cap; negative values are a usage error.
func TestMaxErrorsFlag(t *testing.T) {
	var b strings.Builder
	b.WriteString("def main() {\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "\tbogus%d();\n", i)
	}
	b.WriteString("}\n")
	p := write(t, "many.v", b.String())

	code, _, stderr := exec("check", "-max-errors", "3", p)
	if code != exitDiag {
		t.Fatalf("exit %d, want %d", code, exitDiag)
	}
	// The sentinel line is positioned too: 3 diagnostics + sentinel.
	if n := strings.Count(stderr, "many.v:"); n != 4 {
		t.Errorf("-max-errors 3: %d positioned lines, want 4 (3 + sentinel):\n%s", n, stderr)
	}
	if !strings.Contains(stderr, "too many errors (60 total)") {
		t.Errorf("missing truncation sentinel:\n%s", stderr)
	}

	code, _, stderr = exec("check", p)
	if code != exitDiag {
		t.Fatalf("default cap: exit %d, want %d", code, exitDiag)
	}
	if n := strings.Count(stderr, "many.v:"); n != 21 {
		t.Errorf("default cap: %d positioned lines, want 21 (20 + sentinel):\n%s", n, stderr)
	}

	if code, _, _ = exec("check", "-max-errors", "-1", p); code != exitDiag {
		t.Errorf("-max-errors -1: exit %d, want %d (config validation)", code, exitDiag)
	}
}

// TestProfileSubcommandAndDeterminism: virgil profile emits stable
// JSON that is byte-identical at every -jobs setting; run -profile-out
// records the same profile while keeping program output; -profile-in
// feeds it back through profile-guided optimization with identical
// observable behavior; and profiling under the switch engine is
// rejected up front.
func TestProfileSubcommandAndDeterminism(t *testing.T) {
	p := write(t, "spec.v", `
class A { def m() -> int { return 1; } }
class B extends A { def m() -> int { return 2; } }
def poll(x: A) -> int { return x.m(); }
def main() {
	var i = 0;
	var s = 0;
	var a = A.new();
	var b: A = B.new();
	s = s + poll(a);
	while (i < 100) { s = s + poll(b); i = i + 1; }
	System.puti(s);
}
`)
	code, prof1, stderr := exec("profile", p)
	if code != exitOK {
		t.Fatalf("profile: exit %d stderr %q", code, stderr)
	}
	if !strings.Contains(prof1, `"version": 1`) || !strings.Contains(prof1, `"kind": "virtual"`) {
		t.Fatalf("profile JSON missing expected fields:\n%s", prof1)
	}
	code, prof8, _ := exec("profile", "-jobs", "8", p)
	if code != exitOK {
		t.Fatalf("profile -jobs 8: exit %d", code)
	}
	if prof1 != prof8 {
		t.Fatal("profile JSON differs between -jobs 1 and -jobs 8")
	}

	dir := t.TempDir()
	pf := filepath.Join(dir, "p.json")
	if err := os.WriteFile(pf, []byte(prof1), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, stderr := exec("run", "-profile-in", pf, p)
	if code != exitOK || out != "201" {
		t.Fatalf("run -profile-in: exit %d out %q stderr %q", code, out, stderr)
	}

	pf2 := filepath.Join(dir, "p2.json")
	code, out, stderr = exec("run", "-profile-out", pf2, p)
	if code != exitOK || out != "201" {
		t.Fatalf("run -profile-out: exit %d out %q stderr %q", code, out, stderr)
	}
	rec, err := os.ReadFile(pf2)
	if err != nil {
		t.Fatal(err)
	}
	if string(rec) != prof1 {
		t.Error("run -profile-out recorded a different profile than virgil profile")
	}

	if code, _, stderr := exec("profile", "-engine", "switch", p); code != exitDiag || !strings.Contains(stderr, "bytecode") {
		t.Errorf("profile -engine switch: exit %d stderr %q, want rejection naming the bytecode engine", code, stderr)
	}
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := exec("run", "-profile-in", garbage, p); code != exitDiag || !strings.Contains(stderr, "version") {
		t.Errorf("run -profile-in with unknown version: exit %d stderr %q", code, stderr)
	}
}

// syncBuffer is a goroutine-safe writer: the drain test reads the
// daemon's output while the daemon goroutine is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeSubcommandUsage: serve rejects stray arguments and bad
// listen addresses without starting a server.
func TestServeSubcommandUsage(t *testing.T) {
	if code, _, _ := exec("serve", "extra.v"); code != exitUsage {
		t.Errorf("stray args: exit %d, want %d", code, exitUsage)
	}
	if code, _, stderr := exec("serve", "-addr", "256.0.0.1:bogus"); code != exitUsage || stderr == "" {
		t.Errorf("bad addr: exit %d stderr %q, want usage error", code, stderr)
	}
}

// TestServeSubcommandDrains starts the real daemon on an ephemeral
// port, issues a request, sends it SIGTERM, and asserts a clean drain
// and exit 0 — the in-process version of the CI smoke job.
func TestServeSubcommandDrains(t *testing.T) {
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run([]string{"serve", "-addr", "127.0.0.1:0"}, &out, &errb) }()

	// The daemon prints its resolved address once listening.
	var url string
	deadline := time.Now().Add(5 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; out=%q err=%q", out.String(), errb.String())
		}
		if _, rest, ok := strings.Cut(out.String(), "listening on "); ok {
			url = strings.TrimSpace(strings.Split(rest, "\n")[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Post(url+"/compile", "application/json",
		strings.NewReader(`{"files":[{"name":"ok.v","source":"def main() { }"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("/compile: status=%d body=%s", resp.StatusCode, body)
	}
	hz, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status=%d", hz.StatusCode)
	}

	// SIGTERM must drain and exit 0.
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("exit %d after SIGTERM; out=%q err=%q", code, out.String(), errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(out.String(), "drained cleanly") {
		t.Errorf("missing drain confirmation:\n%s", out.String())
	}
}

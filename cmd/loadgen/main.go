// Command loadgen replays progen traffic mixes against a virgil-serve
// fleet and reports latency percentiles plus a full error taxonomy.
// It is the chaos half of the cluster harness: point it at real
// instances with -targets, or let it stand up an in-process fleet with
// -local and schedule a mid-run instance kill/restart with -kill.
//
// Usage:
//
//	loadgen -targets http://h1:8080,http://h2:8080 -mix run-heavy -duration 10s
//	loadgen -local 3 -mix mixed -duration 10s -kill 2
//	VIRGIL_FAULT=peer-stall:delay:0+:5 loadgen -local 3 -check
//
// With -check the run is an SLO gate: it exits nonzero unless every
// response was structured JSON (non_structured == 0) and at least 99%
// of requests were answered by some instance.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/loadgen"
	"repro/internal/progen"
	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		targets     = fs.String("targets", "", "comma-separated fleet base URLs (mutually exclusive with -local)")
		local       = fs.Int("local", 0, "start an in-process fleet of N instances instead of using -targets")
		mix         = fs.String("mix", progen.MixMixed, "traffic mix: "+strings.Join(progen.MixNames(), ", "))
		duration    = fs.Duration("duration", 5*time.Second, "how long to generate load")
		concurrency = fs.Int("concurrency", 4, "concurrent client workers")
		timeout     = fs.Duration("timeout", 15*time.Second, "per-request client timeout")
		seed        = fs.Int64("seed", 1, "seed for the weighted item choice")
		kill        = fs.Int("kill", -1, "with -local: kill instance INDEX at T/3 and restart it at 2T/3")
		hedgeAfter  = fs.Duration("hedge-after", 0, "with -local: fleet hedging threshold (0 disables)")
		peerTimeout = fs.Duration("peer-timeout", 2*time.Second, "with -local: per-forward-attempt timeout")
		attempts    = fs.Int("peer-attempts", 3, "with -local: forward attempts before degrading")
		check       = fs.Bool("check", false, "gate: exit 1 unless non_structured==0 and answered>=99%")
		jsonOut     = fs.Bool("json", false, "emit the full report as JSON on stdout")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	opts := loadgen.Options{
		Mix:            *mix,
		Duration:       *duration,
		Concurrency:    *concurrency,
		RequestTimeout: *timeout,
		Seed:           *seed,
	}

	var fleet *cluster.Fleet
	switch {
	case *local > 0 && *targets != "":
		fmt.Fprintln(os.Stderr, "loadgen: -local and -targets are mutually exclusive")
		return 2
	case *local > 0:
		f, err := cluster.StartLocal(*local, serve.Config{}, cluster.Config{
			PeerTimeout: *peerTimeout,
			Attempts:    *attempts,
			HedgeAfter:  *hedgeAfter,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: start fleet:", err)
			return 1
		}
		fleet = f
		opts.Targets = f.URLs()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = f.Stop(ctx)
		}()
	case *targets != "":
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				opts.Targets = append(opts.Targets, strings.TrimSuffix(t, "/"))
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "loadgen: need -targets or -local (see -h)")
		return 2
	}

	// Chaos schedule: kill at T/3, restart at 2T/3 — the fleet absorbs
	// a crash and a rejoin inside one measurement window.
	if *kill >= 0 {
		if fleet == nil || *kill >= len(fleet.Nodes) {
			fmt.Fprintln(os.Stderr, "loadgen: -kill needs -local and a valid instance index")
			return 2
		}
		victim := fleet.Nodes[*kill]
		go func() {
			time.Sleep(*duration / 3)
			fmt.Fprintf(os.Stderr, "loadgen: killing instance %d (%s)\n", *kill, victim.URL)
			victim.Kill()
			time.Sleep(*duration / 3)
			fmt.Fprintf(os.Stderr, "loadgen: restarting instance %d\n", *kill)
			if err := victim.Restart(); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: restart failed:", err)
			}
		}()
	}

	res, err := loadgen.Run(context.Background(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
	} else {
		printReport(res)
	}

	if *check {
		failed := false
		if res.NonStructured != 0 {
			fmt.Fprintf(os.Stderr, "loadgen: GATE FAIL: %d non-structured responses (want 0)\n", res.NonStructured)
			failed = true
		}
		if ratio := res.AnsweredRatio(); ratio < 0.99 {
			fmt.Fprintf(os.Stderr, "loadgen: GATE FAIL: answered ratio %.4f (want >= 0.99)\n", ratio)
			failed = true
		}
		if res.Mismatches != 0 {
			fmt.Fprintf(os.Stderr, "loadgen: GATE FAIL: %d expectation mismatches (want 0)\n", res.Mismatches)
			failed = true
		}
		if failed {
			return 1
		}
		fmt.Fprintln(os.Stderr, "loadgen: gate passed")
	}
	return 0
}

func printReport(res loadgen.Result) {
	fmt.Printf("mix=%s targets=%d duration=%s\n", res.Mix, res.Targets, res.Duration)
	fmt.Printf("sent=%d answered=%d (%.2f%%) unanswered=%d failovers=%d\n",
		res.Sent, res.Answered, 100*res.AnsweredRatio(), res.Unanswered, res.Failovers)
	fmt.Printf("non_structured=%d mismatches=%d forwarded=%d degraded=%d hedged=%d\n",
		res.NonStructured, res.Mismatches, res.Forwarded, res.Degraded, res.Hedged)
	fmt.Printf("latency: p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms\n",
		res.P50Ms, res.P90Ms, res.P99Ms, res.MaxMs)
	fmt.Printf("status: %v\n", res.Status)
	if len(res.Kinds) > 0 {
		fmt.Printf("error kinds: %v\n", res.Kinds)
	}
	for _, e := range res.SampleErrors {
		fmt.Printf("  sample: %s\n", e)
	}
}

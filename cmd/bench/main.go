// Command bench runs the repository's experiment benchmarks (E1-E7
// plus the parallel-compile ladder) through testing.Benchmark and
// records the results as a JSON snapshot, so perf numbers land in the
// repo with the machine context needed to interpret them.
//
// Usage:
//
//	go run ./cmd/bench                 # full run, writes BENCH_<date>.json
//	go run ./cmd/bench -short          # small workloads, for CI
//	go run ./cmd/bench -short -check   # also gate on parallel-compile regression
//	go run ./cmd/bench -out FILE.json  # explicit output path
//
// The -check gate is core-count aware: the parallel pipeline cannot
// speed anything up on a single-core machine, so the required
// jobs=4-vs-jobs=1 ratio scales with runtime.NumCPU. What it always
// catches is a parallel path that got SLOWER than the sequential one.
// -check also enforces the bytecode engine's E5 speedup floor over the
// switch interpreter (the Engine_* series), the incremental-compile
// floor (CompileIncremental/edit1 must beat a from-scratch compile by
// 5x on the largest generated program), and compares the execution
// rows against the newest committed BENCH_*.json snapshot, failing on
// a >1.5x slowdown when the machine shape matches.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/loadgen"
	"repro/internal/progen"
	"repro/internal/serve"
	"repro/internal/testprogs"
)

type result struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	SpeedupVsJobs1 float64 `json:"speedup_vs_jobs1,omitempty"`
	// EngineSpeedup is set on Engine_*/bytecode rows: the matching
	// switch-interpreter time divided by the bytecode time.
	EngineSpeedup float64 `json:"engine_speedup,omitempty"`
	// TierSpeedup is set on Tiered_*/tiered rows: the matching
	// untiered (no-profile) time divided by the tiered time.
	TierSpeedup float64 `json:"tier_speedup,omitempty"`
	// IncrSpeedup is set on CompileIncremental/{edit1,warm} rows: the
	// cold (from-scratch) time divided by this row's time.
	IncrSpeedup float64 `json:"incr_speedup,omitempty"`
}

type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Short      bool     `json:"short"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []result `json:"benchmarks"`
	// Analysis records the modeled-heap payoff of the analysis layer on
	// the churn workloads: one deterministic run each, not a timing.
	Analysis []heapRow `json:"analysis,omitempty"`
	// Cluster records fleet-level SLO measurements: loadgen runs against
	// an in-process 3-instance cluster, with and without a mid-run
	// instance kill. -check gates the chaos p99 against the no-fault
	// p99 and the structured-error invariant.
	Cluster []clusterRow `json:"cluster,omitempty"`
}

// clusterRow is one loadgen scenario against an in-process fleet.
type clusterRow struct {
	Name          string  `json:"name"`
	Sent          int64   `json:"sent"`
	AnsweredPct   float64 `json:"answered_pct"`
	NonStructured int64   `json:"non_structured"`
	Degraded      int64   `json:"degraded"`
	Forwarded     int64   `json:"forwarded"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

// heapRow is the modeled heap charge of one workload compiled with and
// without the analysis layer; -check enforces the reduction floor.
type heapRow struct {
	Name         string  `json:"name"`
	HeapBytesOff int64   `json:"heap_bytes_off"`
	HeapBytesOn  int64   `json:"heap_bytes_on"`
	ReductionPct float64 `json:"reduction_pct"`
}

// bench is one named entry in the flat benchmark table.
// testing.Benchmark does not aggregate b.Run sub-benchmarks, so the
// table is flat: one entry per (workload, config) point.
type bench struct {
	name string
	fn   func(b *testing.B)
}

// runProg benchmarks executing a pre-compiled program.
func runProg(p testprogs.Prog, cfg core.Config) func(b *testing.B) {
	return func(b *testing.B) {
		comp, err := core.Compile(p.Name+".v", p.Source, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := comp.RunTo(io.Discard, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// runTieredProg benchmarks executing the tier-2 artifact of a program:
// compile, harvest a profile from one run, recompile with the profile
// attached (speculative devirtualization, hot inlining, profile-driven
// run fusion), then time the tiered build. Paired with a plain runProg
// row measured in the same process, so the tier-up gate never depends
// on cross-snapshot drift.
func runTieredProg(p testprogs.Prog, cfg core.Config) func(b *testing.B) {
	return func(b *testing.B) {
		cfg.Engine = core.EngineBytecode
		base, err := core.Compile(p.Name+".v", p.Source, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_, prof, err := base.RunProfiled(context.Background(), io.Discard, core.RunOpts{})
		if err != nil {
			b.Fatal(err)
		}
		tcfg := cfg
		tcfg.PGO = prof
		comp, err := core.Compile(p.Name+".v", p.Source, tcfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := comp.RunTo(io.Discard, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// compileSrc benchmarks the full compilation pipeline on src.
func compileSrc(src string, cfg core.Config) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Compile("gen.v", src, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// incrFiles builds the two-file incremental corpus: the big generated
// module plus the small probe file the edit1 series rewrites. The
// split mirrors a real project layout — an edit lands in one file
// while the rest are untouched — which lets the store's parse cache
// hand back the big file's AST without reparsing it.
func incrFiles(src string, probe int) []core.File {
	return []core.File{
		{Name: "gen.v", Source: src},
		{Name: "edit.v", Source: fmt.Sprintf("def __bench_probe() -> int { return %d; }\n", probe)},
	}
}

// incrCold benchmarks a from-scratch compile through the incremental
// entry point with an empty store: the denominator of the edit1 gate.
func incrCold(src string, cfg core.Config) func(b *testing.B) {
	return func(b *testing.B) {
		files := incrFiles(src, 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, st, err := core.CompileFilesIncremental(context.Background(), files, cfg, core.NewStore(2))
			if err != nil {
				b.Fatal(err)
			}
			if st.Mode != core.ModeCold {
				b.Fatalf("mode %s, want %s", st.Mode, core.ModeCold)
			}
		}
	}
}

// incrEdit1 benchmarks recompiling after a one-function edit against a
// warm artifact store. Every iteration changes the probe function's
// body again, so each compile is a genuine one-function delta against
// the base left by the previous iteration — never a module hit.
func incrEdit1(src string, cfg core.Config) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		store := core.NewStore(2)
		if _, _, err := core.CompileFilesIncremental(ctx, incrFiles(src, 0), cfg, store); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, st, err := core.CompileFilesIncremental(ctx, incrFiles(src, i+1), cfg, store)
			if err != nil {
				b.Fatal(err)
			}
			if st.Mode != core.ModeIncremental {
				b.Fatalf("iteration %d: mode %s, want %s", i, st.Mode, core.ModeIncremental)
			}
		}
	}
}

// incrWarm benchmarks the unchanged-source path: a whole-module store
// hit that shares the base compilation outright.
func incrWarm(src string, cfg core.Config) func(b *testing.B) {
	return func(b *testing.B) {
		ctx := context.Background()
		store := core.NewStore(2)
		files := incrFiles(src, 0)
		if _, _, err := core.CompileFilesIncremental(ctx, files, cfg, store); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, st, err := core.CompileFilesIncremental(ctx, files, cfg, store)
			if err != nil {
				b.Fatal(err)
			}
			if st.Mode != core.ModeModuleHit {
				b.Fatalf("mode %s, want %s", st.Mode, core.ModeModuleHit)
			}
		}
	}
}

// table builds the benchmark list. Short mode shrinks every workload
// so a CI run finishes in seconds.
func table(short bool) []bench {
	n := 10000
	scale := 16
	if short {
		n = 1000
		scale = 4
	}
	ref, comp := core.Reference(), core.Compiled()
	mono := core.Config{Monomorphize: true}

	var t []bench
	add := func(name string, fn func(b *testing.B)) { t = append(t, bench{name, fn}) }

	add("E1_DynamicChecks/reference", runProg(testprogs.BenchTupleSmall(n), ref))
	add("E1_DynamicChecks/compiled", runProg(testprogs.BenchTupleSmall(n), comp))
	add("E2_TupleSmall/boxed", runProg(testprogs.BenchTupleSmall(n), mono))
	add("E2_TupleSmall/flattened", runProg(testprogs.BenchTupleSmall(n), comp))
	add("E2_TupleLarge/boxed", runProg(testprogs.BenchTupleLarge(n/4), mono))
	add("E2_TupleLarge/flattened", runProg(testprogs.BenchTupleLarge(n/4), comp))
	add("E3_GenericList/reference", runProg(testprogs.BenchGenericList(n/4), ref))
	add("E3_GenericList/compiled", runProg(testprogs.BenchGenericList(n/4), comp))
	add("E3_HashMap/reference", runProg(testprogs.BenchHashMap(n/2), ref))
	add("E3_HashMap/compiled", runProg(testprogs.BenchHashMap(n/2), comp))
	add("E5_Print1/reference", runProg(testprogs.BenchPrint1(n), ref))
	add("E5_Print1/compiled", runProg(testprogs.BenchPrint1(n), comp))
	add("E5_DirectBaseline/compiled", runProg(testprogs.BenchDirect(n), comp))
	add("E6_Matcher/reference", runProg(testprogs.BenchMatcher(n/2), ref))
	add("E6_Matcher/compiled", runProg(testprogs.BenchMatcher(n/2), comp))

	// Engine series: switch interpreter vs register bytecode on the hot
	// workloads, both over fully compiled IR. The switch row runs first
	// so the bytecode row can carry EngineSpeedup.
	swCfg, bcCfg := comp, comp
	swCfg.Engine = core.EngineSwitch
	bcCfg.Engine = core.EngineBytecode
	addEngine := func(label string, p testprogs.Prog) {
		add("Engine_"+label+"/switch", runProg(p, swCfg))
		add("Engine_"+label+"/bytecode", runProg(p, bcCfg))
	}
	addEngine("E1_TupleSmall", testprogs.BenchTupleSmall(n))
	addEngine("E3_HashMap", testprogs.BenchHashMap(n/2))
	addEngine("E5_Print1", testprogs.BenchPrint1(n))
	addEngine("E6_Matcher", testprogs.BenchMatcher(n/2))

	// Tiered series: the feedback-directed tier-2 artifact vs the plain
	// bytecode build, measured back to back in the same process. The
	// untiered row runs first so the tiered row can carry TierSpeedup;
	// -check gates the E{1,3,5} geomean.
	addTiered := func(label string, p testprogs.Prog) {
		add("Tiered_"+label+"/untiered", runProg(p, bcCfg))
		add("Tiered_"+label+"/tiered", runTieredProg(p, bcCfg))
	}
	addTiered("E1_TupleSmall", testprogs.BenchTupleSmall(n))
	addTiered("E3_HashMap", testprogs.BenchHashMap(n/2))
	addTiered("E5_Print1", testprogs.BenchPrint1(n))
	// End to end through the service: a warm /run of a program that has
	// already tiered up vs one on a server with tiering disabled. HTTP
	// and JSON overhead ride along, so this row is informational, not
	// part of the geomean gate.
	add("Tiered_ServeWarm/untiered", serveWarmRun(-1, n))
	add("Tiered_ServeWarm/tiered", serveWarmRun(2, n))

	// E8: containment latency — how fast the modeled heap budget stops a
	// runaway allocator. One op is one full run ending in !HeapExhausted;
	// informational, not gated by -check.
	add("E8_HeapContainment/array_growth", heapContainment("array_growth", 1<<20, comp))
	add("E8_HeapContainment/string_concat", heapContainment("string_concat", 1<<16, comp))

	// Analysis series: the interprocedural analysis layer's cost
	// (compile-time, with vs without) and payoff (execution of the
	// allocation-churn workloads whose heap charges it promotes away).
	// The heap-reduction numbers themselves are measured exactly once
	// in analysisHeapRows, not through testing.Benchmark.
	noa := comp
	noa.Analyze = false
	add("Analysis_ClosureChurn/with", runProg(testprogs.BenchClosureChurn(n), comp))
	add("Analysis_ClosureChurn/without", runProg(testprogs.BenchClosureChurn(n), noa))
	add("Analysis_ObjectChurn/with", runProg(testprogs.BenchObjectChurn(n), comp))
	add("Analysis_ObjectChurn/without", runProg(testprogs.BenchObjectChurn(n), noa))

	src := progen.Generate(progen.Scale(scale))
	add("Analysis_Compile/with", compileSrc(src, comp))
	add("Analysis_Compile/without", compileSrc(src, noa))
	add("E7_CompileSpeed/largest", compileSrc(src, comp))
	for _, j := range jobCounts() {
		cfg := comp
		cfg.Jobs = j
		add(fmt.Sprintf("CompileParallel/jobs=%d", j), compileSrc(src, cfg))
	}
	// Incremental series on its own corpus: the largest generated
	// program extended with straight-line call chains, which weight the
	// workload toward backend optimization the way a real optimizing
	// build is weighted (every optimizer round splices one more level
	// into each chain caller, so the cold side pays inlining costs a
	// one-function edit never re-pays). cold is a from-scratch compile
	// through the incremental entry point, edit1 recompiles after a
	// one-function edit against a warm store, warm is the
	// unchanged-source module hit. Uses the analysis-free optimized
	// config — the one the store serves at function granularity. The
	// cold row runs first so the others can carry IncrSpeedup; -check
	// enforces the edit1 floor.
	ip := progen.Scale(scale)
	ip.Chains = 40 * scale
	ip.ChainDepth = 16
	incrSrc := progen.Generate(ip)
	incrCfg := core.Config{Monomorphize: true, Normalize: true, Optimize: true}
	add("CompileIncremental/cold", incrCold(incrSrc, incrCfg))
	add("CompileIncremental/edit1", incrEdit1(incrSrc, incrCfg))
	add("CompileIncremental/warm", incrWarm(incrSrc, incrCfg))
	for _, c := range concCounts() {
		add(fmt.Sprintf("ServeThroughput/conc=%d", c), serveThroughput(c, scale))
	}
	return t
}

// analysisHeapRows runs each allocation-churn workload once under the
// full pipeline with and without the analysis layer and records the
// modeled heap charge of both builds. The runs are deterministic, so a
// single execution is exact — no benchmark loop needed.
func analysisHeapRows(short bool) ([]heapRow, error) {
	n := 10000
	if short {
		n = 1000
	}
	with := core.Compiled()
	without := core.Compiled()
	without.Analyze = false
	var rows []heapRow
	for _, p := range []testprogs.Prog{
		testprogs.BenchClosureChurn(n),
		testprogs.BenchObjectChurn(n),
	} {
		heap := func(cfg core.Config) (int64, error) {
			comp, err := core.Compile(p.Name+".v", p.Source, cfg)
			if err != nil {
				return 0, fmt.Errorf("%s: compile: %w", p.Name, err)
			}
			stats, err := comp.RunTo(io.Discard, 0)
			if err != nil {
				return 0, fmt.Errorf("%s: run: %w", p.Name, err)
			}
			return stats.HeapBytes, nil
		}
		off, err := heap(without)
		if err != nil {
			return nil, err
		}
		on, err := heap(with)
		if err != nil {
			return nil, err
		}
		row := heapRow{Name: "Analysis_Heap/" + p.Name, HeapBytesOff: off, HeapBytesOn: on}
		if off > 0 {
			row.ReductionPct = 100 * float64(off-on) / float64(off)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// clusterScenario runs the run-heavy loadgen mix against a fresh
// in-process 3-instance fleet for dur. With kill, instance 2 is
// abruptly killed at dur/3 and restarted at 2*dur/3 — the chaos
// schedule the Cluster_* SLO rows are defined over.
func clusterScenario(name string, kill bool, dur time.Duration) (clusterRow, error) {
	f, err := cluster.StartLocal(3, serve.Config{},
		cluster.Config{PeerTimeout: 500 * time.Millisecond, Attempts: 2, BreakerCooldown: 250 * time.Millisecond})
	if err != nil {
		return clusterRow{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = f.Stop(ctx)
	}()
	if kill {
		victim := f.Nodes[2]
		go func() {
			time.Sleep(dur / 3)
			victim.Kill()
			time.Sleep(dur / 3)
			_ = victim.Restart()
		}()
	}
	res, err := loadgen.Run(context.Background(), loadgen.Options{
		Targets:     f.URLs(),
		Mix:         progen.MixRunHeavy,
		Duration:    dur,
		Concurrency: 4,
		Seed:        1,
	})
	if err != nil {
		return clusterRow{}, err
	}
	return clusterRow{
		Name:          name,
		Sent:          res.Sent,
		AnsweredPct:   100 * res.AnsweredRatio(),
		NonStructured: res.NonStructured,
		Degraded:      res.Degraded,
		Forwarded:     res.Forwarded,
		P50Ms:         res.P50Ms,
		P99Ms:         res.P99Ms,
	}, nil
}

// clusterRows measures the fleet SLO scenarios: the same traffic with
// and without an instance kill mid-run.
func clusterRows(short bool) ([]clusterRow, error) {
	dur := 8 * time.Second
	if short {
		dur = 3 * time.Second
	}
	nofault, err := clusterScenario("Cluster_RunHeavy/nofault", false, dur)
	if err != nil {
		return nil, err
	}
	chaos, err := clusterScenario("Cluster_RunHeavy/kill", true, dur)
	if err != nil {
		return nil, err
	}
	return []clusterRow{nofault, chaos}, nil
}

// clusterP99Factor is how much the chaos-run p99 may exceed the
// no-fault p99 before -check fails: a killed instance must cost
// retries and degraded local runs, not unbounded tail latency.
const clusterP99Factor = 3.0

// clusterAnsweredFloor is the minimum answered percentage either
// scenario may report.
const clusterAnsweredFloor = 99.0

// checkCluster gates the fleet SLOs, re-measuring both scenarios once
// before failing (fleet scenarios on a shared runner are noisy).
func checkCluster(rows []clusterRow, short bool) bool {
	find := func(rows []clusterRow, name string) *clusterRow {
		for i := range rows {
			if rows[i].Name == name {
				return &rows[i]
			}
		}
		return nil
	}
	nofault := find(rows, "Cluster_RunHeavy/nofault")
	chaos := find(rows, "Cluster_RunHeavy/kill")
	if nofault == nil || chaos == nil {
		fmt.Fprintln(os.Stderr, "bench: -check: missing Cluster_* results")
		return false
	}
	bad := func() bool {
		return nofault.NonStructured != 0 || chaos.NonStructured != 0 ||
			nofault.AnsweredPct < clusterAnsweredFloor || chaos.AnsweredPct < clusterAnsweredFloor ||
			chaos.P99Ms > clusterP99Factor*nofault.P99Ms
	}
	if bad() {
		fmt.Println("check: cluster SLOs missed; re-measuring both scenarios")
		if fresh, err := clusterRows(short); err == nil {
			if nf, ch := find(fresh, nofault.Name), find(fresh, chaos.Name); nf != nil && ch != nil {
				// Keep the better of the two samples per scenario.
				if nf.P99Ms > 0 && (nofault.P99Ms == 0 || nf.P99Ms < nofault.P99Ms) && nf.NonStructured == 0 && nf.AnsweredPct >= nofault.AnsweredPct {
					*nofault = *nf
				}
				if ch.NonStructured <= chaos.NonStructured && ch.AnsweredPct >= chaos.AnsweredPct && (chaos.P99Ms == 0 || ch.P99Ms < chaos.P99Ms) {
					*chaos = *ch
				}
			}
		}
	}
	ok := true
	for _, r := range []*clusterRow{nofault, chaos} {
		fmt.Printf("check: %s answered %.2f%% non_structured=%d p99=%.1fms (sent %d, degraded %d)\n",
			r.Name, r.AnsweredPct, r.NonStructured, r.P99Ms, r.Sent, r.Degraded)
		if r.NonStructured != 0 {
			fmt.Fprintf(os.Stderr, "bench: FAIL: %s emitted %d non-structured responses (want 0)\n", r.Name, r.NonStructured)
			ok = false
		}
		if r.AnsweredPct < clusterAnsweredFloor {
			fmt.Fprintf(os.Stderr, "bench: FAIL: %s answered %.2f%% (floor %.0f%%)\n", r.Name, r.AnsweredPct, clusterAnsweredFloor)
			ok = false
		}
	}
	factor := chaos.P99Ms / nofault.P99Ms
	fmt.Printf("check: cluster p99 under kill = %.1fms vs %.1fms no-fault (%.2fx, ceiling %.1fx)\n",
		chaos.P99Ms, nofault.P99Ms, factor, clusterP99Factor)
	if chaos.P99Ms > clusterP99Factor*nofault.P99Ms {
		fmt.Fprintf(os.Stderr, "bench: FAIL: instance kill inflates p99 %.2fx (ceiling %.1fx)\n", factor, clusterP99Factor)
		ok = false
	}
	return ok
}

// heapReductionFloor is the minimum modeled-heap reduction (percent)
// -check requires from the analysis layer on every churn workload.
const heapReductionFloor = 30.0

// checkHeapReduction gates the analysis layer's escape-analysis payoff.
func checkHeapReduction(rows []heapRow) bool {
	ok := true
	for _, r := range rows {
		fmt.Printf("check: %s heap %d -> %d bytes (%.1f%% reduction, need >= %.0f%%)\n",
			r.Name, r.HeapBytesOff, r.HeapBytesOn, r.ReductionPct, heapReductionFloor)
		if r.ReductionPct < heapReductionFloor {
			fmt.Fprintf(os.Stderr, "bench: FAIL: %s below the %.0f%% heap-reduction floor\n",
				r.Name, heapReductionFloor)
			ok = false
		}
	}
	return ok
}

// heapContainment benchmarks time-to-!HeapExhausted for one of the
// memory-hungry adversarial programs under a small modeled heap budget.
func heapContainment(name string, maxHeap int64, cfg core.Config) func(b *testing.B) {
	return func(b *testing.B) {
		cfg.MaxHeap = maxHeap
		comp, err := core.Compile(name+".v", progen.Hungry()[name], cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := comp.RunTo(io.Discard, 0)
			var ve *interp.VirgilError
			if !errors.As(err, &ve) || ve.Name != interp.HeapExhausted {
				b.Fatalf("want %s, got %v", interp.HeapExhausted, err)
			}
		}
	}
}

// serveWarmRun measures one warm /run request through the HTTP service
// for a virtual-dispatch-heavy program. With tierAfter > 0 the warmup
// drives the program past the tier-up threshold and every measured
// request serves the tier-2 artifact; with tierAfter < 0 tiering is
// disabled and the same warm program serves its plain compilation.
func serveWarmRun(tierAfter, n int) func(b *testing.B) {
	return func(b *testing.B) {
		s := serve.New(serve.Config{TierAfter: tierAfter})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		p := testprogs.BenchMatcher(n / 2)
		body, err := json.Marshal(serve.Request{
			Files: []serve.FileJSON{{Name: p.Name + ".v", Source: p.Source}},
		})
		if err != nil {
			b.Fatal(err)
		}
		post := func() serve.Response {
			httpResp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			defer httpResp.Body.Close()
			var resp serve.Response
			if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
				b.Fatal(err)
			}
			if !resp.OK {
				b.Fatalf("run failed: %+v", resp)
			}
			return resp
		}
		// Warm past the threshold (or just warm the cache when disabled).
		var last serve.Response
		for i := 0; i < 3; i++ {
			last = post()
		}
		if tierAfter > 0 && last.Tier != 2 {
			b.Fatalf("warmup did not tier up: tier = %d", last.Tier)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post()
		}
	}
}

// serveThroughput measures end-to-end requests through the HTTP
// service — admission, JSON decode, compile, JSON encode — with c
// concurrent clients against an in-process server. One benchmark op is
// one completed /compile request.
func serveThroughput(c, scale int) func(b *testing.B) {
	return func(b *testing.B) {
		s := serve.New(serve.Config{MaxConcurrent: c, QueueDepth: 2 * c})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		body, err := json.Marshal(serve.Request{
			Files: []serve.FileJSON{{Name: "gen.v", Source: progen.Generate(progen.Scale(scale / 2))}},
		})
		if err != nil {
			b.Fatal(err)
		}

		b.ReportAllocs()
		b.ResetTimer()
		var (
			wg       sync.WaitGroup
			firstErr error
			errOnce  sync.Once
		)
		work := make(chan struct{})
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range work {
					resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						continue
					}
					if resp.StatusCode != http.StatusOK {
						errOnce.Do(func() { firstErr = fmt.Errorf("status %d", resp.StatusCode) })
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		for i := 0; i < b.N; i++ {
			work <- struct{}{}
		}
		close(work)
		wg.Wait()
		if firstErr != nil {
			b.Fatal(firstErr)
		}
	}
}

// concCounts is the client-concurrency ladder for ServeThroughput: 1,
// 4, NumCPU, deduplicated and ordered.
func concCounts() []int {
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, c := range counts {
		if !seen[c] && c >= 1 {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// jobCounts is the worker ladder: 1, 2, 4, GOMAXPROCS, deduplicated
// and ordered.
func jobCounts() []int {
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, j := range counts {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// requiredSpeedup is the jobs=4 (or max-jobs) vs jobs=1 floor enforced
// by -check, scaled to the machine: parallel speedup needs cores.
func requiredSpeedup() float64 {
	switch {
	case runtime.NumCPU() >= 4:
		return 1.0
	case runtime.NumCPU() >= 2:
		return 0.95
	default:
		return 0.85 // single core: only catch gross scheduling overhead
	}
}

func main() {
	short := flag.Bool("short", false, "shrink workloads for a quick CI run")
	check := flag.Bool("check", false, "exit nonzero if parallel compile regresses vs jobs=1")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	benchtime := flag.String("benchtime", "", "per-benchmark measuring time (default 1s, 200ms with -short)")
	testing.Init()
	flag.Parse()

	bt := *benchtime
	if bt == "" {
		bt = "1s"
		if *short {
			bt = "200ms"
		}
	}
	if err := flag.Set("test.benchtime", bt); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}

	rep := report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Short:      *short,
		Benchtime:  bt,
	}

	nsByName := map[string]float64{}
	fnByName := map[string]func(*testing.B){}
	for _, entry := range table(*short) {
		fnByName[entry.name] = entry.fn
		r := testing.Benchmark(entry.fn)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "bench: %s produced no iterations (failed?)\n", entry.name)
			os.Exit(1)
		}
		res := result{
			Name:        entry.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		nsByName[entry.name] = res.NsPerOp
		if base, ok := nsByName["CompileParallel/jobs=1"]; ok && res.NsPerOp > 0 &&
			entry.name != "CompileParallel/jobs=1" && strings.HasPrefix(entry.name, "CompileParallel/") {
			res.SpeedupVsJobs1 = base / res.NsPerOp
		}
		if tail, ok := strings.CutSuffix(entry.name, "/bytecode"); ok && res.NsPerOp > 0 {
			if sw, ok := nsByName[tail+"/switch"]; ok {
				res.EngineSpeedup = sw / res.NsPerOp
			}
		}
		if tail, ok := strings.CutSuffix(entry.name, "/tiered"); ok && res.NsPerOp > 0 {
			if ut, ok := nsByName[tail+"/untiered"]; ok {
				res.TierSpeedup = ut / res.NsPerOp
			}
		}
		if strings.HasPrefix(entry.name, "CompileIncremental/") && entry.name != "CompileIncremental/cold" && res.NsPerOp > 0 {
			if cold, ok := nsByName["CompileIncremental/cold"]; ok {
				res.IncrSpeedup = cold / res.NsPerOp
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Printf("%-34s %12.0f ns/op %9d allocs/op\n", entry.name, res.NsPerOp, res.AllocsPerOp)
	}

	heapRows, err := analysisHeapRows(*short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.Analysis = heapRows
	for _, r := range heapRows {
		fmt.Printf("%-34s %12d -> %d heap bytes (%.1f%% reduction)\n",
			r.Name, r.HeapBytesOff, r.HeapBytesOn, r.ReductionPct)
	}

	clRows, err := clusterRows(*short)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.Cluster = clRows
	for _, r := range clRows {
		fmt.Printf("%-34s %8d sent  %.2f%% answered  p50=%.1fms p99=%.1fms  degraded=%d\n",
			r.Name, r.Sent, r.AnsweredPct, r.P50Ms, r.P99Ms, r.Degraded)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	// Load the committed baseline before the output overwrites it (the
	// same-day case).
	var baseline *report
	if *check {
		baseline = loadBaseline(path)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)

	if *check {
		gate := pickGate(nsByName)
		base := nsByName["CompileParallel/jobs=1"]
		if gate == "" || base == 0 {
			fmt.Fprintln(os.Stderr, "bench: -check: missing CompileParallel results")
			os.Exit(1)
		}
		speedup := base / nsByName[gate]
		need := requiredSpeedup()
		for try := 0; try < 2 && speedup < need; try++ {
			// A single-sample ratio on a shared runner is noisy; confirm
			// an apparent regression on fresh measurements before failing.
			fmt.Printf("check: %s speedup %.2fx below %.2fx floor; re-measuring\n", gate, speedup, need)
			if b1, bg := remeasure(fnByName["CompileParallel/jobs=1"]), remeasure(fnByName[gate]); b1 > 0 && bg > 0 {
				base = minf(base, b1)
				nsByName[gate] = minf(nsByName[gate], bg)
				speedup = base / nsByName[gate]
			}
		}
		fmt.Printf("check: %s speedup vs jobs=1 = %.2fx (need >= %.2fx on %d CPUs)\n",
			gate, speedup, need, runtime.NumCPU())
		if speedup < need {
			fmt.Fprintf(os.Stderr, "bench: FAIL: parallel compile regressed below the %.2fx floor\n", need)
			os.Exit(1)
		}
		if !checkEngine(nsByName, fnByName) || !checkTiered(nsByName, fnByName) || !checkHeapReduction(heapRows) ||
			!checkAnalysisOverhead(nsByName, fnByName) || !checkIncremental(nsByName, fnByName) ||
			!checkCluster(rep.Cluster, *short) || !checkBaseline(baseline, rep, fnByName) {
			os.Exit(1)
		}
	}
}

// engineSpeedupFloor is the E5 bytecode-vs-switch ratio -check
// enforces. E5 (the print1 query chain) is the workload the engine was
// built to win: a tight scalar loop of calls, global loads, fused
// arithmetic and compare-branches.
const engineSpeedupFloor = 2.0

// checkEngine gates the bytecode engine's E5 speedup over the switch
// interpreter, re-measuring both sides before failing (single samples
// on a shared runner are noisy).
func checkEngine(ns map[string]float64, fns map[string]func(*testing.B)) bool {
	const swRow, bcRow = "Engine_E5_Print1/switch", "Engine_E5_Print1/bytecode"
	sw, bc := ns[swRow], ns[bcRow]
	if sw == 0 || bc == 0 {
		fmt.Fprintln(os.Stderr, "bench: -check: missing Engine_E5_Print1 results")
		return false
	}
	for try := 0; try < 2 && sw/bc < engineSpeedupFloor; try++ {
		fmt.Printf("check: engine E5 speedup %.2fx below %.2fx floor; re-measuring\n", sw/bc, engineSpeedupFloor)
		if s, b := remeasure(fns[swRow]), remeasure(fns[bcRow]); s > 0 && b > 0 {
			sw, bc = minf(sw, s), minf(bc, b)
			ns[swRow], ns[bcRow] = sw, bc
		}
	}
	speedup := sw / bc
	fmt.Printf("check: Engine_E5_Print1 bytecode speedup vs switch = %.2fx (need >= %.2fx)\n",
		speedup, engineSpeedupFloor)
	if speedup < engineSpeedupFloor {
		fmt.Fprintf(os.Stderr, "bench: FAIL: bytecode engine below the %.2fx floor on E5\n", engineSpeedupFloor)
		return false
	}
	return true
}

// tieredSpeedupFloor is the minimum geomean speedup -check requires
// from the tier-2 artifacts over the plain bytecode builds on the
// Tiered_E{1,3,5} workloads. Both sides of each ratio are measured in
// the same process, so this gate never depends on cross-snapshot
// drift.
const tieredSpeedupFloor = 1.15

// tieredGateRows are the workloads the tier-up geomean is taken over.
var tieredGateRows = []string{"Tiered_E1_TupleSmall", "Tiered_E3_HashMap", "Tiered_E5_Print1"}

// checkTiered gates the feedback-directed tier-up win, re-measuring
// both sides of every ratio before failing (single samples on a shared
// runner are noisy).
func checkTiered(ns map[string]float64, fns map[string]func(*testing.B)) bool {
	geomean := func() float64 {
		prod := 1.0
		for _, row := range tieredGateRows {
			ut, td := ns[row+"/untiered"], ns[row+"/tiered"]
			if ut == 0 || td == 0 {
				return 0
			}
			prod *= ut / td
		}
		return math.Pow(prod, 1/float64(len(tieredGateRows)))
	}
	g := geomean()
	if g == 0 {
		fmt.Fprintln(os.Stderr, "bench: -check: missing Tiered_* results")
		return false
	}
	for try := 0; try < 2 && g < tieredSpeedupFloor; try++ {
		fmt.Printf("check: tiered geomean %.2fx below %.2fx floor; re-measuring\n", g, tieredSpeedupFloor)
		for _, row := range tieredGateRows {
			if ut, td := remeasure(fns[row+"/untiered"]), remeasure(fns[row+"/tiered"]); ut > 0 && td > 0 {
				ns[row+"/untiered"] = minf(ns[row+"/untiered"], ut)
				ns[row+"/tiered"] = minf(ns[row+"/tiered"], td)
			}
		}
		g = geomean()
	}
	for _, row := range tieredGateRows {
		fmt.Printf("check: %s tier-up speedup = %.2fx\n", row, ns[row+"/untiered"]/ns[row+"/tiered"])
	}
	fmt.Printf("check: tiered geomean speedup = %.2fx (need >= %.2fx)\n", g, tieredSpeedupFloor)
	if g < tieredSpeedupFloor {
		fmt.Fprintf(os.Stderr, "bench: FAIL: tier-up below the %.2fx geomean floor\n", tieredSpeedupFloor)
		return false
	}
	return true
}

// baselineVariance is how much slower than the committed snapshot a
// benchmark may run before -check calls it a regression. Benchmarks on
// shared runners are noisy; 1.5x catches order-of-magnitude slips, not
// scheduler jitter.
const baselineVariance = 1.5

// loadBaseline reads the newest committed BENCH_*.json other than the
// current output path. A missing or unreadable baseline is not an
// error — the first run on a machine has nothing to compare against.
func loadBaseline(outPath string) *report {
	names, err := filepath.Glob("BENCH_*.json")
	if err != nil || len(names) == 0 {
		return nil
	}
	sort.Strings(names) // BENCH_<ISO date>.json sorts chronologically
	for i := len(names) - 1; i >= 0; i-- {
		if names[i] == outPath {
			continue
		}
		data, err := os.ReadFile(names[i])
		if err != nil {
			continue
		}
		var rep report
		if json.Unmarshal(data, &rep) != nil {
			continue
		}
		fmt.Printf("check: baseline %s (%s, %d CPUs)\n", names[i], rep.Date, rep.NumCPU)
		return &rep
	}
	return nil
}

// checkBaseline compares the execution-speed rows against the committed
// snapshot, failing on a > baselineVariance slowdown. Rows are only
// comparable when the machine shape and workload size match. Snapshots
// are recorded on shared runners whose absolute speed drifts between
// days, so each row is judged against the median cur/old ratio across
// all compared rows: uniform drift moves every row together and
// cancels out, while a code-caused slip is an outlier against the rest
// of the suite and still fails. A row over tolerance is re-measured
// before the verdict: per-row noise on a shared runner is heavy-tailed,
// and a genuine regression reproduces while a scheduling spike does not.
func checkBaseline(base *report, cur report, fns map[string]func(*testing.B)) bool {
	if base == nil {
		fmt.Println("check: no committed baseline; skipping regression comparison")
		return true
	}
	if base.Short != cur.Short || base.GOARCH != cur.GOARCH || base.NumCPU != cur.NumCPU {
		fmt.Println("check: baseline machine/workload shape differs; skipping regression comparison")
		return true
	}
	baseNs := map[string]float64{}
	for _, r := range base.Benchmarks {
		baseNs[r.Name] = r.NsPerOp
	}
	type cmpRow struct {
		name       string
		old, nowNs float64
	}
	var rows []cmpRow
	var ratios []float64
	for _, r := range cur.Benchmarks {
		old, exists := baseNs[r.Name]
		if !exists || old == 0 || !strings.HasPrefix(r.Name, "E") && !strings.HasPrefix(r.Name, "Engine_") {
			continue
		}
		if strings.Contains(r.Name, "Compile") {
			// Compile-bound rows drift across days independently of the
			// execution rows (allocator/GC pressure vs tight CPU loops),
			// so cross-snapshot comparison is not sound for them. Their
			// cost is gated within a single run instead: the parallel
			// floor and the Analysis_Compile with/without ceiling.
			continue
		}
		rows = append(rows, cmpRow{r.Name, old, r.NsPerOp})
		ratios = append(ratios, r.NsPerOp/old)
	}
	if len(rows) == 0 {
		fmt.Println("check: no comparable baseline rows; skipping regression comparison")
		return true
	}
	sort.Float64s(ratios)
	drift := ratios[len(ratios)/2]
	if drift < 1 {
		drift = 1 // a faster machine is not license for slower rows
	}
	fmt.Printf("check: baseline machine-drift factor %.2fx (median over %d rows)\n", drift, len(rows))
	ok := true
	for _, r := range rows {
		allowed := r.old * drift * baselineVariance
		for try := 0; try < 2 && r.nowNs > allowed && fns[r.name] != nil; try++ {
			fmt.Printf("check: %s at %.2fx vs baseline; re-measuring\n", r.name, r.nowNs/r.old)
			if ns := remeasure(fns[r.name]); ns > 0 {
				r.nowNs = minf(r.nowNs, ns)
			}
		}
		if r.nowNs > allowed {
			fmt.Fprintf(os.Stderr, "bench: FAIL: %s regressed %.2fx vs baseline (%.0f -> %.0f ns/op, allowed %.1fx at %.2fx drift)\n",
				r.name, r.nowNs/r.old, r.old, r.nowNs, baselineVariance, drift)
			ok = false
		}
	}
	if ok {
		fmt.Printf("check: no execution benchmark regressed more than %.1fx vs drift-adjusted baseline\n", baselineVariance)
	}
	return ok
}

// analysisOverheadCeiling caps how much the analysis layer may slow
// the full compile pipeline, measured as Analysis_Compile/with vs
// /without in the same run — a drift-immune compile-cost gate (three
// whole-program fixpoint passes currently cost ~1.3-1.7x).
const analysisOverheadCeiling = 2.0

// checkAnalysisOverhead gates the analysis layer's compile-time cost
// against analysisOverheadCeiling, re-measuring both rows before
// failing (single samples on a shared runner are noisy).
func checkAnalysisOverhead(ns map[string]float64, fns map[string]func(*testing.B)) bool {
	with, without := ns["Analysis_Compile/with"], ns["Analysis_Compile/without"]
	if with == 0 || without == 0 {
		fmt.Fprintln(os.Stderr, "bench: -check: missing Analysis_Compile results")
		return false
	}
	ratio := with / without
	for try := 0; try < 2 && ratio > analysisOverheadCeiling; try++ {
		fmt.Printf("check: analysis compile overhead %.2fx above %.2fx ceiling; re-measuring\n", ratio, analysisOverheadCeiling)
		if w, wo := remeasure(fns["Analysis_Compile/with"]), remeasure(fns["Analysis_Compile/without"]); w > 0 && wo > 0 {
			with = minf(with, w)
			without = minf(without, wo)
			ratio = with / without
		}
	}
	fmt.Printf("check: analysis compile overhead %.2fx (ceiling %.2fx)\n", ratio, analysisOverheadCeiling)
	if ratio > analysisOverheadCeiling {
		fmt.Fprintf(os.Stderr, "bench: FAIL: analysis layer slows compilation %.2fx (ceiling %.2fx)\n", ratio, analysisOverheadCeiling)
		return false
	}
	return true
}

// incrementalSpeedupFloor is the minimum cold/edit1 ratio -check
// requires on the largest generated program: a one-function edit
// against a warm artifact store must beat a from-scratch compile by at
// least this factor. Both rows run in the same process, so the gate
// never depends on cross-snapshot drift.
const incrementalSpeedupFloor = 5.0

// checkIncremental gates the incremental-compilation win, re-measuring
// both sides before failing (single samples on a shared runner are
// noisy). The warm (module-hit) ratio is printed for context but not
// gated — it is bounded only by hashing and map lookups.
func checkIncremental(ns map[string]float64, fns map[string]func(*testing.B)) bool {
	const coldRow, editRow = "CompileIncremental/cold", "CompileIncremental/edit1"
	cold, edit := ns[coldRow], ns[editRow]
	if cold == 0 || edit == 0 {
		fmt.Fprintln(os.Stderr, "bench: -check: missing CompileIncremental results")
		return false
	}
	for try := 0; try < 2 && cold/edit < incrementalSpeedupFloor; try++ {
		fmt.Printf("check: incremental edit1 speedup %.2fx below %.2fx floor; re-measuring\n", cold/edit, incrementalSpeedupFloor)
		if c, e := remeasure(fns[coldRow]), remeasure(fns[editRow]); c > 0 && e > 0 {
			cold, edit = minf(cold, c), minf(edit, e)
			ns[coldRow], ns[editRow] = cold, edit
		}
	}
	if warm := ns["CompileIncremental/warm"]; warm > 0 {
		fmt.Printf("check: incremental warm (module-hit) speedup vs cold = %.0fx (informational)\n", cold/warm)
	}
	speedup := cold / edit
	fmt.Printf("check: CompileIncremental edit1 speedup vs cold = %.2fx (need >= %.2fx)\n",
		speedup, incrementalSpeedupFloor)
	if speedup < incrementalSpeedupFloor {
		fmt.Fprintf(os.Stderr, "bench: FAIL: one-function edit below the %.2fx incremental floor\n", incrementalSpeedupFloor)
		return false
	}
	return true
}

// remeasure re-runs one benchmark row and returns its ns/op (0 if the
// row produced no iterations).
func remeasure(fn func(*testing.B)) float64 {
	if fn == nil {
		return 0
	}
	r := testing.Benchmark(fn)
	if r.N == 0 {
		return 0
	}
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// pickGate selects the jobs=4 point when present, else the largest
// measured worker count.
func pickGate(ns map[string]float64) string {
	if _, ok := ns["CompileParallel/jobs=4"]; ok {
		return "CompileParallel/jobs=4"
	}
	best, bestJ := "", 0
	for name := range ns {
		var j int
		if n, _ := fmt.Sscanf(name, "CompileParallel/jobs=%d", &j); n == 1 && j > bestJ && j > 1 {
			best, bestJ = name, j
		}
	}
	return best
}

// Command bench runs the repository's experiment benchmarks (E1-E7
// plus the parallel-compile ladder) through testing.Benchmark and
// records the results as a JSON snapshot, so perf numbers land in the
// repo with the machine context needed to interpret them.
//
// Usage:
//
//	go run ./cmd/bench                 # full run, writes BENCH_<date>.json
//	go run ./cmd/bench -short          # small workloads, for CI
//	go run ./cmd/bench -short -check   # also gate on parallel-compile regression
//	go run ./cmd/bench -out FILE.json  # explicit output path
//
// The -check gate is core-count aware: the parallel pipeline cannot
// speed anything up on a single-core machine, so the required
// jobs=4-vs-jobs=1 ratio scales with runtime.NumCPU. What it always
// catches is a parallel path that got SLOWER than the sequential one.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/progen"
	"repro/internal/serve"
	"repro/internal/testprogs"
)

type result struct {
	Name           string  `json:"name"`
	Iterations     int     `json:"iterations"`
	NsPerOp        float64 `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	SpeedupVsJobs1 float64 `json:"speedup_vs_jobs1,omitempty"`
}

type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Short      bool     `json:"short"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []result `json:"benchmarks"`
}

// bench is one named entry in the flat benchmark table.
// testing.Benchmark does not aggregate b.Run sub-benchmarks, so the
// table is flat: one entry per (workload, config) point.
type bench struct {
	name string
	fn   func(b *testing.B)
}

// runProg benchmarks executing a pre-compiled program.
func runProg(p testprogs.Prog, cfg core.Config) func(b *testing.B) {
	return func(b *testing.B) {
		comp, err := core.Compile(p.Name+".v", p.Source, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := comp.RunTo(io.Discard, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// compileSrc benchmarks the full compilation pipeline on src.
func compileSrc(src string, cfg core.Config) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Compile("gen.v", src, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// table builds the benchmark list. Short mode shrinks every workload
// so a CI run finishes in seconds.
func table(short bool) []bench {
	n := 10000
	scale := 16
	if short {
		n = 1000
		scale = 4
	}
	ref, comp := core.Reference(), core.Compiled()
	mono := core.Config{Monomorphize: true}

	var t []bench
	add := func(name string, fn func(b *testing.B)) { t = append(t, bench{name, fn}) }

	add("E1_DynamicChecks/reference", runProg(testprogs.BenchTupleSmall(n), ref))
	add("E1_DynamicChecks/compiled", runProg(testprogs.BenchTupleSmall(n), comp))
	add("E2_TupleSmall/boxed", runProg(testprogs.BenchTupleSmall(n), mono))
	add("E2_TupleSmall/flattened", runProg(testprogs.BenchTupleSmall(n), comp))
	add("E2_TupleLarge/boxed", runProg(testprogs.BenchTupleLarge(n/4), mono))
	add("E2_TupleLarge/flattened", runProg(testprogs.BenchTupleLarge(n/4), comp))
	add("E3_GenericList/reference", runProg(testprogs.BenchGenericList(n/4), ref))
	add("E3_GenericList/compiled", runProg(testprogs.BenchGenericList(n/4), comp))
	add("E3_HashMap/reference", runProg(testprogs.BenchHashMap(n/2), ref))
	add("E3_HashMap/compiled", runProg(testprogs.BenchHashMap(n/2), comp))
	add("E5_Print1/reference", runProg(testprogs.BenchPrint1(n), ref))
	add("E5_Print1/compiled", runProg(testprogs.BenchPrint1(n), comp))
	add("E5_DirectBaseline/compiled", runProg(testprogs.BenchDirect(n), comp))
	add("E6_Matcher/reference", runProg(testprogs.BenchMatcher(n/2), ref))
	add("E6_Matcher/compiled", runProg(testprogs.BenchMatcher(n/2), comp))

	src := progen.Generate(progen.Scale(scale))
	add("E7_CompileSpeed/largest", compileSrc(src, comp))
	for _, j := range jobCounts() {
		cfg := comp
		cfg.Jobs = j
		add(fmt.Sprintf("CompileParallel/jobs=%d", j), compileSrc(src, cfg))
	}
	for _, c := range concCounts() {
		add(fmt.Sprintf("ServeThroughput/conc=%d", c), serveThroughput(c, scale))
	}
	return t
}

// serveThroughput measures end-to-end requests through the HTTP
// service — admission, JSON decode, compile, JSON encode — with c
// concurrent clients against an in-process server. One benchmark op is
// one completed /compile request.
func serveThroughput(c, scale int) func(b *testing.B) {
	return func(b *testing.B) {
		s := serve.New(serve.Config{MaxConcurrent: c, QueueDepth: 2 * c})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		body, err := json.Marshal(serve.Request{
			Files: []serve.FileJSON{{Name: "gen.v", Source: progen.Generate(progen.Scale(scale / 2))}},
		})
		if err != nil {
			b.Fatal(err)
		}

		b.ReportAllocs()
		b.ResetTimer()
		var (
			wg       sync.WaitGroup
			firstErr error
			errOnce  sync.Once
		)
		work := make(chan struct{})
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range work {
					resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						continue
					}
					if resp.StatusCode != http.StatusOK {
						errOnce.Do(func() { firstErr = fmt.Errorf("status %d", resp.StatusCode) })
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		for i := 0; i < b.N; i++ {
			work <- struct{}{}
		}
		close(work)
		wg.Wait()
		if firstErr != nil {
			b.Fatal(firstErr)
		}
	}
}

// concCounts is the client-concurrency ladder for ServeThroughput: 1,
// 4, NumCPU, deduplicated and ordered.
func concCounts() []int {
	counts := []int{1, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, c := range counts {
		if !seen[c] && c >= 1 {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// jobCounts is the worker ladder: 1, 2, 4, GOMAXPROCS, deduplicated
// and ordered.
func jobCounts() []int {
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	var out []int
	for _, j := range counts {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

// requiredSpeedup is the jobs=4 (or max-jobs) vs jobs=1 floor enforced
// by -check, scaled to the machine: parallel speedup needs cores.
func requiredSpeedup() float64 {
	switch {
	case runtime.NumCPU() >= 4:
		return 1.0
	case runtime.NumCPU() >= 2:
		return 0.95
	default:
		return 0.85 // single core: only catch gross scheduling overhead
	}
}

func main() {
	short := flag.Bool("short", false, "shrink workloads for a quick CI run")
	check := flag.Bool("check", false, "exit nonzero if parallel compile regresses vs jobs=1")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	benchtime := flag.String("benchtime", "", "per-benchmark measuring time (default 1s, 200ms with -short)")
	testing.Init()
	flag.Parse()

	bt := *benchtime
	if bt == "" {
		bt = "1s"
		if *short {
			bt = "200ms"
		}
	}
	if err := flag.Set("test.benchtime", bt); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}

	rep := report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Short:      *short,
		Benchtime:  bt,
	}

	nsByName := map[string]float64{}
	for _, entry := range table(*short) {
		r := testing.Benchmark(entry.fn)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "bench: %s produced no iterations (failed?)\n", entry.name)
			os.Exit(1)
		}
		res := result{
			Name:        entry.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		nsByName[entry.name] = res.NsPerOp
		if base, ok := nsByName["CompileParallel/jobs=1"]; ok && res.NsPerOp > 0 &&
			entry.name != "CompileParallel/jobs=1" && strings.HasPrefix(entry.name, "CompileParallel/") {
			res.SpeedupVsJobs1 = base / res.NsPerOp
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
		fmt.Printf("%-34s %12.0f ns/op %9d allocs/op\n", entry.name, res.NsPerOp, res.AllocsPerOp)
	}

	path := *out
	if path == "" {
		path = "BENCH_" + rep.Date + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", path)

	if *check {
		gate := pickGate(nsByName)
		base := nsByName["CompileParallel/jobs=1"]
		if gate == "" || base == 0 {
			fmt.Fprintln(os.Stderr, "bench: -check: missing CompileParallel results")
			os.Exit(1)
		}
		speedup := base / nsByName[gate]
		need := requiredSpeedup()
		fmt.Printf("check: %s speedup vs jobs=1 = %.2fx (need >= %.2fx on %d CPUs)\n",
			gate, speedup, need, runtime.NumCPU())
		if speedup < need {
			fmt.Fprintf(os.Stderr, "bench: FAIL: parallel compile regressed below the %.2fx floor\n", need)
			os.Exit(1)
		}
	}
}

// pickGate selects the jobs=4 point when present, else the largest
// measured worker count.
func pickGate(ns map[string]float64) string {
	if _, ok := ns["CompileParallel/jobs=4"]; ok {
		return "CompileParallel/jobs=4"
	}
	best, bestJ := "", 0
	for name := range ns {
		var j int
		if n, _ := fmt.Sscanf(name, "CompileParallel/jobs=%d", &j); n == 1 && j > bestJ && j > 1 {
			best, bestJ = name, j
		}
	}
	return best
}

// Command expreport regenerates every table and evaluatable claim of
// the paper (see DESIGN.md's experiment index T1, E1-E8). Each
// experiment prints the measured rows next to the paper's qualitative
// expectation, so the shape of every result can be checked at a glance.
//
// Usage:
//
//	expreport            # run all experiments
//	expreport -exp E3    # run one experiment
//	expreport -n 20000   # change the hot-loop iteration count
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/progen"
	"repro/internal/testprogs"
	"repro/internal/types"
)

var (
	expFlag = flag.String("exp", "", "run a single experiment (T1, E1..E8)")
	nFlag   = flag.Int("n", 10000, "hot-loop iteration count for timed experiments")
	repFlag = flag.Int("reps", 3, "timing repetitions (best-of)")
)

func main() {
	flag.Parse()
	all := []struct {
		id  string
		fn  func()
		hdr string
	}{
		{"T1", expT1, "Type constructor summary (§2.5 table)"},
		{"E1", expE1, "Dynamic calling-convention checks vs normalization (§4.1)"},
		{"E2", expE2, "Tuple flattening vs boxing, small and large (§4.2)"},
		{"E3", expE3, "Monomorphization vs runtime type arguments (§4.3)"},
		{"E4", expE4, "Code expansion from specialization (§4.3, §6.1)"},
		{"E5", expE5, "print1 query-chain folding (§3.3)"},
		{"E6", expE6, "Polymorphic matcher dispatch (§3.4)"},
		{"E7", expE7, "Compile-speed scaling (§5)"},
		{"E8", expE8, "Variance rules replace class variance (§2.2, §3.6)"},
	}
	want := strings.ToUpper(*expFlag)
	ran := false
	for _, e := range all {
		if want != "" && e.id != want {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.hdr)
		e.fn()
		fmt.Println()
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "expreport: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}

// measured holds one timed run of a program under a configuration.
type measured struct {
	wall   time.Duration
	steps  int64
	checks int64
	boxes  int64
	binds  int64
	output string
}

func compileOrDie(p testprogs.Prog, cfg core.Config) *core.Compilation {
	comp, err := core.Compile(p.Name+".v", p.Source, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "expreport: compile %s [%s]: %v\n", p.Name, cfg.Name(), err)
		os.Exit(1)
	}
	return comp
}

// measure runs the program repFlag times and keeps the fastest run.
func measure(p testprogs.Prog, cfg core.Config) measured {
	comp := compileOrDie(p, cfg)
	best := measured{wall: time.Hour}
	for r := 0; r < *repFlag; r++ {
		var sb strings.Builder
		start := time.Now()
		st, err := comp.RunTo(&sb, 0)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expreport: run %s [%s]: %v\n", p.Name, cfg.Name(), err)
			os.Exit(1)
		}
		if wall < best.wall {
			best = measured{wall: wall, steps: st.Steps, checks: st.AdaptChecks, boxes: st.TupleAllocs, binds: st.TypeEnvBinds, output: sb.String()}
		}
	}
	return best
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}

func expT1() {
	fmt.Printf("%-10s | %-14s | %s\n", "Typecon", "Type Params", "Syntax")
	fmt.Println(strings.Repeat("-", 50))
	for _, row := range types.TypeConstructorTable() {
		fmt.Printf("%-10s | %-14s | %s\n", row.Typecon, row.TypeParams, row.Syntax)
	}
	fmt.Println("(variance marks: + covariant, - contravariant, = invariant;")
	fmt.Println(" each mark is verified against IsSubtype by TestTypeConstructorTable)")
}

func expE1() {
	p := testprogs.BenchTupleSmall(*nFlag)
	ref := measure(p, core.Reference())
	cmp := measure(p, core.Compiled())
	fmt.Printf("workload: first-class (int, int) calls, n=%d\n", *nFlag)
	fmt.Printf("%-12s %12s %14s %14s %12s\n", "config", "time", "arity-checks", "tuple-boxes", "vm-steps")
	fmt.Printf("%-12s %12v %14d %14d %12d\n", "reference", ref.wall, ref.checks, ref.boxes, ref.steps)
	fmt.Printf("%-12s %12v %14d %14d %12d\n", "compiled", cmp.wall, cmp.checks, cmp.boxes, cmp.steps)
	fmt.Printf("speedup: %s (paper: checks at call sites are 'expensive'; normalization removes the\n", ratio(ref.wall, cmp.wall))
	fmt.Println("ambiguity so all calls pass scalars, §4.1-§4.2)")
}

func expE2() {
	small := testprogs.BenchTupleSmall(*nFlag)
	large := testprogs.BenchTupleLarge(*nFlag / 4)
	boxed := core.Config{Monomorphize: true}
	flat := core.Compiled()
	sb := measure(small, boxed)
	sf := measure(small, flat)
	lb := measure(large, boxed)
	lf := measure(large, flat)
	fmt.Printf("%-22s %12s %12s %10s\n", "workload", "boxed", "flattened", "boxed/flat")
	fmt.Printf("%-22s %12v %12v %10s\n", "small (int, int)", sb.wall, sf.wall, ratio(sb.wall, sf.wall))
	fmt.Printf("%-22s %12v %12v %10s\n", "large 16-tuple", lb.wall, lf.wall, ratio(lb.wall, lf.wall))
	fmt.Println("(paper §4.2: small tuples much faster flattened; for large tuples the gap")
	fmt.Println(" narrows and boxing 'might actually perform better', i.e. the ratio shrinks)")
}

func expE3() {
	for _, p := range []testprogs.Prog{testprogs.BenchGenericList(*nFlag / 4), testprogs.BenchHashMap(*nFlag / 2)} {
		ref := measure(p, core.Reference())
		mono := measure(p, core.Config{Monomorphize: true})
		cmp := measure(p, core.Compiled())
		fmt.Printf("workload %s:\n", p.Name)
		fmt.Printf("  %-14s %12s %14s %12s\n", "config", "time", "type-binds", "vm-steps")
		fmt.Printf("  %-14s %12v %14d %12d\n", "reference", ref.wall, ref.binds, ref.steps)
		fmt.Printf("  %-14s %12v %14d %12d\n", "mono", mono.wall, mono.binds, mono.steps)
		fmt.Printf("  %-14s %12v %14d %12d\n", "mono+norm+opt", cmp.wall, cmp.binds, cmp.steps)
		fmt.Printf("  speedup ref -> compiled: %s (paper §4.3: runtime type arguments 'exact a\n", ratio(ref.wall, cmp.wall))
		fmt.Println("  considerable runtime cost'; monomorphized code passes none)")
	}
}

func expE4() {
	fmt.Printf("%-22s %8s %8s %10s %8s\n", "program", "before", "after", "expansion", "classes")
	rows := append([]testprogs.Prog{}, testprogs.All()...)
	rows = append(rows, testprogs.Prog{Name: "progen-scale4", Source: progen.Generate(progen.Scale(4))})
	for _, p := range rows {
		comp, err := core.Compile(p.Name, p.Source, core.Config{Monomorphize: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "expreport: %s: %v\n", p.Name, err)
			continue
		}
		ms := comp.MonoStats
		fmt.Printf("%-22s %8d %8d %9.2fx %5d->%d\n", p.Name, ms.InstrsBefore, ms.InstrsAfter, ms.ExpansionFactor(), ms.ClassesBefore, ms.ClassesAfter)
	}
	fmt.Println("(§6.1: 'We continually track the amount of code expansion due to")
	fmt.Println(" specialization'; §4.3: expansion 'has not been an issue in real programs')")
}

func expE5() {
	gen := testprogs.BenchPrint1(*nFlag)
	direct := testprogs.BenchDirect(*nFlag)
	ref := measure(gen, core.Reference())
	cmp := measure(gen, core.Compiled())
	dir := measure(direct, core.Compiled())
	comp := compileOrDie(gen, core.Compiled())
	fmt.Printf("%-24s %12s %12s\n", "config", "time", "vm-steps")
	fmt.Printf("%-24s %12v %12d\n", "print1 reference", ref.wall, ref.steps)
	fmt.Printf("%-24s %12v %12d\n", "print1 compiled", cmp.wall, cmp.steps)
	fmt.Printf("%-24s %12v %12d\n", "direct calls compiled", dir.wall, dir.steps)
	fmt.Printf("queries folded: %d, branches folded: %d, calls inlined: %d\n",
		comp.OptStats.QueriesFolded, comp.OptStats.BranchesFolded, comp.OptStats.Inlined)
	fmt.Printf("compiled print1 / direct: %s in steps (paper §3.3: 'code just as efficient\n",
		fmt.Sprintf("%.3fx", float64(cmp.steps)/float64(dir.steps)))
	fmt.Println(" as if the caller had called the appropriate print* method directly')")
}

func expE6() {
	p := testprogs.BenchMatcher(*nFlag / 2)
	d := testprogs.BenchDirect(*nFlag / 2)
	ref := measure(p, core.Reference())
	cmp := measure(p, core.Compiled())
	dir := measure(d, core.Compiled())
	fmt.Printf("%-24s %12s %12s\n", "config", "time", "vm-steps")
	fmt.Printf("%-24s %12v %12d\n", "matcher reference", ref.wall, ref.steps)
	fmt.Printf("%-24s %12v %12d\n", "matcher compiled", cmp.wall, cmp.steps)
	fmt.Printf("%-24s %12v %12d\n", "direct calls compiled", dir.wall, dir.steps)
	fmt.Println("(paper §3.4: the matcher works because instantiations are reified — it")
	fmt.Println(" 'may fail at runtime' and costs a list search per dispatch, visible above)")
}

func expE7() {
	fmt.Printf("%-10s %8s %12s %14s\n", "scale", "lines", "compile", "lines/sec")
	for _, k := range []int{1, 2, 4, 8, 16} {
		src := progen.Generate(progen.Scale(k))
		lines := progen.Lines(src)
		best := time.Hour
		for r := 0; r < *repFlag; r++ {
			start := time.Now()
			if _, err := core.Compile("gen.v", src, core.Compiled()); err != nil {
				fmt.Fprintf(os.Stderr, "expreport: %v\n", err)
				os.Exit(1)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		fmt.Printf("%-10d %8d %12v %14.0f\n", k, lines, best, float64(lines)/best.Seconds())
	}
	fmt.Println("(paper §5: the 25 KLoC self-hosted compiler 'compiles very fast'; throughput")
	fmt.Println(" should stay roughly flat as program size grows)")
}

func expE8() {
	base := `
class Animal { }
class Bat extends Animal { }
class List<T> { var head: T; var tail: List<T>; new(head, tail) { } }
def apply<A>(list: List<A>, f: A -> void) {
	for (l = list; l != null; l = l.tail) f(l.head);
}
def g(a: Animal) { }
def f(list: List<Animal>) { }
var b: List<Bat>;
`
	_, err1 := core.Compile("o6.v", base+"def main() { f(b); }", core.Reference())
	_, err2 := core.Compile("o7.v", base+"def main() { apply(b, g); }", core.Reference())
	fmt.Printf("(o6) f(b) where f: List<Animal> -> void, b: List<Bat>:\n")
	if err1 != nil {
		first := strings.SplitN(err1.Error(), "\n", 2)[0]
		fmt.Printf("  REJECTED: %s\n", first)
	} else {
		fmt.Printf("  ACCEPTED (WRONG: classes are invariant, §3.6)\n")
	}
	fmt.Printf("(o7) apply(b, g) via contravariant Animal -> void <: Bat -> void:\n")
	if err2 == nil {
		fmt.Printf("  ACCEPTED (function variance replaces class variance, §3.6)\n")
	} else {
		fmt.Printf("  REJECTED (WRONG): %v\n", err2)
	}
}

// Package parser implements a recursive-descent parser for Virgil-core.
//
// The grammar follows the paper's examples: class declarations in the
// Scala-like style (a1-a10), tuple expressions and types (c1-c6),
// function types with -> (§2.2), member operators (b8-b15), and explicit
// type arguments with <...> (d10-d12). The classic `<` ambiguity between
// less-than and type arguments is resolved by speculative parsing with
// backtracking.
package parser

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/src"
	"repro/internal/token"
)

// Parser parses one file. Create with New, then call ParseFile.
type Parser struct {
	file   *src.File
	errs   *src.ErrorList
	toks   []token.Token
	i      int
	halfGt bool // a Shr token is half-consumed as '>'
	spec   int  // >0 while speculatively parsing (errors suppressed)
	// depth counts active recursive parse calls; tooDeep latches once
	// the limit is hit, aborting the parse with a diagnostic instead of
	// exhausting the (unrecoverable) Go stack on adversarial nesting.
	depth   int
	tooDeep bool
}

// maxNestingDepth bounds recursive-descent depth. Legitimate programs
// nest a few dozen levels; adversarial inputs nest tens of thousands,
// which would otherwise hit the Go runtime's fatal stack limit (and,
// with speculative backtracking, superlinear reparse times).
const maxNestingDepth = 500

// exceeded reports whether parsing should abort due to over-deep
// nesting. Once latched it stays true so every in-flight recursion
// unwinds promptly; ParseFile reports the diagnostic exactly once
// (errorf during speculation would be discarded by reset).
func (p *Parser) exceeded() bool {
	if p.tooDeep || p.depth > maxNestingDepth {
		p.tooDeep = true
		return true
	}
	return false
}

// New lexes the whole file and returns a parser over its tokens.
func New(file *src.File, errs *src.ErrorList) *Parser {
	lx := lexer.New(file, errs)
	// Pre-size from the source length: tokens average a few bytes of
	// source each, and growing a zero-cap slice to a whole file's worth
	// of tokens costs more in growslice copies than the lexing itself.
	toks := make([]token.Token, 0, len(file.Content)/3+16)
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			break
		}
	}
	return &Parser{file: file, errs: errs, toks: toks}
}

// Parse is a convenience that parses source text into a file.
func Parse(name, content string, errs *src.ErrorList) *ast.File {
	f := src.NewFile(name, content)
	return New(f, errs).ParseFile()
}

type mark struct {
	i      int
	halfGt bool
	nerr   int
}

func (p *Parser) mark() mark { return mark{p.i, p.halfGt, p.errs.Len()} }

func (p *Parser) reset(m mark) {
	p.i, p.halfGt = m.i, m.halfGt
	p.errs.Errors = p.errs.Errors[:m.nerr]
}

func (p *Parser) cur() token.Token {
	t := p.toks[p.i]
	if p.halfGt && t.Kind == token.Shr {
		return token.Token{Kind: token.Gt, Off: t.Off + 1}
	}
	return t
}

func (p *Parser) kind() token.Kind { return p.cur().Kind }

func (p *Parser) next() {
	if p.i < len(p.toks)-1 {
		p.i++
	}
	p.halfGt = false
}

func (p *Parser) pos() src.Pos { return src.Pos{File: p.file, Off: p.cur().Off} }

func (p *Parser) errorf(format string, args ...any) {
	if p.spec > 0 {
		// During speculation a sentinel error is still recorded so the
		// speculation can detect failure; reset() will discard it.
		p.errs.Add(p.pos(), format, args...)
		return
	}
	p.errs.Add(p.pos(), format, args...)
}

func (p *Parser) expect(k token.Kind) token.Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf("expected %s, found %s", k, t)
		return token.Token{Kind: k, Off: t.Off}
	}
	p.next()
	return t
}

// acceptGt consumes one '>' in a type-argument context, splitting a '>>'
// token into two halves when necessary (List<List<int>>).
func (p *Parser) acceptGt() bool {
	t := p.toks[p.i]
	if p.halfGt {
		if t.Kind == token.Shr {
			p.next()
			return true
		}
		return false
	}
	switch t.Kind {
	case token.Gt:
		p.next()
		return true
	case token.Shr:
		p.halfGt = true
		return true
	}
	return false
}

func (p *Parser) ident() ast.Ident {
	t := p.cur()
	if t.Kind != token.IDENT {
		p.errorf("expected identifier, found %s", t)
		return ast.Ident{Name: "", Off: p.pos()}
	}
	p.next()
	return ast.Ident{Name: t.Lit, Off: src.Pos{File: p.file, Off: t.Off}}
}

// ParseFile parses the whole compilation unit.
func (p *Parser) ParseFile() *ast.File {
	f := &ast.File{Source: p.file}
	baseErr := p.errs.Len()
	for p.kind() != token.EOF && !p.tooDeep {
		before := p.i
		d := p.parseDecl()
		if d != nil {
			f.Decls = append(f.Decls, d)
		}
		if p.i == before {
			// Ensure progress on malformed input.
			p.next()
		}
	}
	if p.tooDeep {
		// The abort unwinds through every in-flight production, each of
		// which records a cascade error; drop those and report the root
		// cause alone. (Added outside any speculation so reset() cannot
		// discard it.)
		p.errs.Errors = p.errs.Errors[:baseErr]
		p.errs.Add(p.pos(), "nesting too deep (limit %d); aborting parse", maxNestingDepth)
	}
	return f
}

func (p *Parser) parseDecl() ast.Decl {
	switch p.kind() {
	case token.KwClass:
		return p.parseClass()
	case token.KwComponent:
		return p.parseComponent()
	case token.KwEnum:
		return p.parseEnum()
	case token.KwDef, token.KwVar:
		return p.parseTopDefOrVar()
	case token.KwPrivate:
		p.next()
		if p.kind() == token.KwDef {
			d := p.parseTopDefOrVar()
			if m, ok := d.(*ast.MethodDecl); ok {
				m.Private = true
			}
			return d
		}
		p.errorf("expected def after private")
		return nil
	default:
		p.errorf("expected declaration, found %s", p.cur())
		return nil
	}
}

func (p *Parser) parseTypeParams() []*ast.TypeParamDecl {
	if p.kind() != token.Lt {
		return nil
	}
	p.next()
	var out []*ast.TypeParamDecl
	for {
		out = append(out, &ast.TypeParamDecl{Name: p.ident()})
		if p.kind() == token.Comma {
			p.next()
			continue
		}
		break
	}
	if !p.acceptGt() {
		p.errorf("expected > to close type parameters")
	}
	return out
}

func (p *Parser) parseParams(allowBare bool) []*ast.Param {
	p.expect(token.LParen)
	var out []*ast.Param
	if p.kind() != token.RParen {
		for {
			prm := &ast.Param{Name: p.ident()}
			if p.kind() == token.Colon {
				p.next()
				prm.Type = p.parseType()
			} else if !allowBare {
				p.errorf("parameter %s requires a type", prm.Name.Name)
			}
			out = append(out, prm)
			if p.kind() == token.Comma {
				p.next()
				continue
			}
			break
		}
	}
	p.expect(token.RParen)
	return out
}

func (p *Parser) parseClass() ast.Decl {
	p.expect(token.KwClass)
	d := &ast.ClassDecl{Name: p.ident()}
	d.TypeParams = p.parseTypeParams()
	if p.kind() == token.LParen {
		d.CtorParams = p.parseParams(false)
	}
	if p.kind() == token.KwExtends {
		p.next()
		d.Extends = p.parseType()
	}
	p.expect(token.LBrace)
	for p.kind() != token.RBrace && p.kind() != token.EOF {
		before := p.i
		m := p.parseClassMember()
		if m != nil {
			d.Members = append(d.Members, m)
		}
		if p.i == before {
			p.next()
		}
	}
	p.expect(token.RBrace)
	return d
}

// parseEnum parses `enum Name { CASE0, CASE1, ... }`.
func (p *Parser) parseEnum() ast.Decl {
	p.expect(token.KwEnum)
	d := &ast.EnumDecl{Name: p.ident()}
	p.expect(token.LBrace)
	if p.kind() != token.RBrace {
		for {
			d.Cases = append(d.Cases, p.ident())
			if p.kind() == token.Comma {
				p.next()
				continue
			}
			break
		}
	}
	p.expect(token.RBrace)
	return d
}

// parseComponent parses `component Name { members }`. Component members
// are fields and functions; constructors and inheritance are not
// allowed.
func (p *Parser) parseComponent() ast.Decl {
	p.expect(token.KwComponent)
	d := &ast.ComponentDecl{Name: p.ident()}
	p.expect(token.LBrace)
	for p.kind() != token.RBrace && p.kind() != token.EOF {
		before := p.i
		m := p.parseClassMember()
		if m != nil {
			if _, isCtor := m.(*ast.CtorDecl); isCtor {
				p.errorf("components cannot declare constructors")
			} else {
				d.Members = append(d.Members, m)
			}
		}
		if p.i == before {
			p.next()
		}
	}
	p.expect(token.RBrace)
	return d
}

func (p *Parser) parseClassMember() ast.Member {
	private := false
	if p.kind() == token.KwPrivate {
		private = true
		p.next()
	}
	switch p.kind() {
	case token.KwNew:
		np := p.pos()
		p.next()
		c := &ast.CtorDecl{NewPos: np, Params: p.parseParams(true)}
		if p.kind() == token.KwSuper {
			p.next()
			c.HasSuper = true
			p.expect(token.LParen)
			if p.kind() != token.RParen {
				for {
					c.SuperArgs = append(c.SuperArgs, p.parseExpr())
					if p.kind() == token.Comma {
						p.next()
						continue
					}
					break
				}
			}
			p.expect(token.RParen)
		}
		c.Body = p.parseBlock()
		return c
	case token.KwVar:
		p.next()
		f := &ast.FieldDecl{Mutable: true, Name: p.ident()}
		p.parseFieldTail(f)
		return f
	case token.KwDef:
		p.next()
		name := p.ident()
		// `def m<T>(...)` or `def m(...)` is a method; `def f: T;` or
		// `def f = e;` is an immutable field.
		if p.kind() == token.Lt || p.kind() == token.LParen {
			m := &ast.MethodDecl{Private: private, Name: name}
			m.TypeParams = p.parseTypeParams()
			m.Params = p.parseParams(false)
			if p.kind() == token.Arrow {
				p.next()
				m.RetType = p.parseType()
			}
			if p.kind() == token.Semi {
				p.next() // abstract method (paper n2)
			} else {
				m.Body = p.parseBlock()
			}
			return m
		}
		f := &ast.FieldDecl{Mutable: false, Name: name}
		p.parseFieldTail(f)
		return f
	}
	p.errorf("expected class member, found %s", p.cur())
	return nil
}

func (p *Parser) parseFieldTail(f *ast.FieldDecl) {
	if p.kind() == token.Colon {
		p.next()
		f.Type = p.parseType()
	}
	if p.kind() == token.Assign {
		p.next()
		f.Init = p.parseExpr()
	}
	p.expect(token.Semi)
}

func (p *Parser) parseTopDefOrVar() ast.Decl {
	mutable := p.kind() == token.KwVar
	p.next()
	name := p.ident()
	if !mutable && (p.kind() == token.Lt || p.kind() == token.LParen) {
		m := &ast.MethodDecl{Name: name}
		m.TypeParams = p.parseTypeParams()
		m.Params = p.parseParams(false)
		if p.kind() == token.Arrow {
			p.next()
			m.RetType = p.parseType()
		}
		m.Body = p.parseBlock()
		return m
	}
	v := &ast.VarDecl{Mutable: mutable, Name: name}
	if p.kind() == token.Colon {
		p.next()
		v.Type = p.parseType()
	}
	if p.kind() == token.Assign {
		p.next()
		v.Init = p.parseExpr()
	}
	p.expect(token.Semi)
	return v
}

// ---------------------------------------------------------------- types

// parseType parses a type reference: atom ('->' type)? (right assoc).
func (p *Parser) parseType() ast.TypeRef {
	p.depth++
	defer func() { p.depth-- }()
	if p.exceeded() {
		return &ast.NamedTypeRef{Name: ast.Ident{Name: "void", Off: p.pos()}}
	}
	t := p.parseTypeAtom()
	if t == nil {
		return &ast.NamedTypeRef{Name: ast.Ident{Name: "void", Off: p.pos()}}
	}
	if p.kind() == token.Arrow {
		p.next()
		ret := p.parseType()
		return &ast.FuncTypeRef{Param: t, Ret: ret}
	}
	return t
}

func (p *Parser) parseTypeAtom() ast.TypeRef {
	switch p.kind() {
	case token.LParen:
		lp := p.pos()
		p.next()
		var elems []ast.TypeRef
		if p.kind() != token.RParen {
			for {
				elems = append(elems, p.parseType())
				if p.kind() == token.Comma {
					p.next()
					continue
				}
				break
			}
		}
		p.expect(token.RParen)
		if len(elems) == 1 {
			return elems[0] // (T) == T
		}
		return &ast.TupleTypeRef{LPos: lp, Elems: elems}
	case token.IDENT:
		name := p.ident()
		ref := &ast.NamedTypeRef{Name: name}
		if p.kind() == token.Lt {
			p.next()
			for {
				ref.Args = append(ref.Args, p.parseType())
				if p.kind() == token.Comma {
					p.next()
					continue
				}
				break
			}
			if !p.acceptGt() {
				p.errorf("expected > to close type arguments")
			}
		}
		return ref
	}
	p.errorf("expected type, found %s", p.cur())
	return nil
}

// tryTypeArgs speculatively parses `<T, ...>` at the current position.
// It commits only when the closing '>' is followed by a token that can
// legitimately follow an expression with type arguments; otherwise the
// parser backtracks and nil is returned so '<' parses as less-than.
func (p *Parser) tryTypeArgs() []ast.TypeRef {
	if p.kind() != token.Lt {
		return nil
	}
	m := p.mark()
	p.spec++
	p.next()
	var args []ast.TypeRef
	ok := true
	for {
		t := p.parseTypeAtomSpec()
		if t == nil {
			ok = false
			break
		}
		if p.kind() == token.Arrow {
			p.next()
			ret := p.parseTypeSpec()
			if ret == nil {
				ok = false
				break
			}
			t = &ast.FuncTypeRef{Param: t, Ret: ret}
		}
		args = append(args, t)
		if p.kind() == token.Comma {
			p.next()
			continue
		}
		break
	}
	if ok {
		ok = p.acceptGt()
	}
	if ok && p.errs.Len() > m.nerr {
		ok = false
	}
	if ok {
		switch p.kind() {
		case token.LParen, token.Dot, token.Comma, token.RParen, token.Semi,
			token.RBracket, token.RBrace, token.Colon, token.EOF:
			p.spec--
			return args
		}
	}
	p.spec--
	p.reset(m)
	return nil
}

func (p *Parser) parseTypeSpec() ast.TypeRef {
	t := p.parseTypeAtomSpec()
	if t == nil {
		return nil
	}
	if p.kind() == token.Arrow {
		p.next()
		ret := p.parseTypeSpec()
		if ret == nil {
			return nil
		}
		return &ast.FuncTypeRef{Param: t, Ret: ret}
	}
	return t
}

// parseTypeAtomSpec is parseTypeAtom that returns nil instead of
// reporting an error, for use during speculation.
func (p *Parser) parseTypeAtomSpec() ast.TypeRef {
	switch p.kind() {
	case token.LParen:
		lp := p.pos()
		p.next()
		var elems []ast.TypeRef
		if p.kind() != token.RParen {
			for {
				t := p.parseTypeSpec()
				if t == nil {
					return nil
				}
				elems = append(elems, t)
				if p.kind() == token.Comma {
					p.next()
					continue
				}
				break
			}
		}
		if p.kind() != token.RParen {
			return nil
		}
		p.next()
		if len(elems) == 1 {
			return elems[0]
		}
		return &ast.TupleTypeRef{LPos: lp, Elems: elems}
	case token.IDENT:
		name := p.ident()
		ref := &ast.NamedTypeRef{Name: name}
		if p.kind() == token.Lt {
			p.next()
			for {
				t := p.parseTypeSpec()
				if t == nil {
					return nil
				}
				ref.Args = append(ref.Args, t)
				if p.kind() == token.Comma {
					p.next()
					continue
				}
				break
			}
			if !p.acceptGt() {
				return nil
			}
		}
		return ref
	}
	return nil
}

// ---------------------------------------------------------------- stmts

func (p *Parser) parseBlock() *ast.Block {
	b := &ast.Block{LPos: p.pos()}
	p.expect(token.LBrace)
	for p.kind() != token.RBrace && p.kind() != token.EOF {
		before := p.i
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.i == before {
			p.next()
		}
	}
	p.expect(token.RBrace)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	p.depth++
	defer func() { p.depth-- }()
	if p.exceeded() {
		return &ast.EmptyStmt{SemiPos: p.pos()}
	}
	switch p.kind() {
	case token.LBrace:
		return p.parseBlock()
	case token.Semi:
		s := &ast.EmptyStmt{SemiPos: p.pos()}
		p.next()
		return s
	case token.KwIf:
		ip := p.pos()
		p.next()
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.expect(token.RParen)
		then := p.parseStmt()
		var els ast.Stmt
		if p.kind() == token.KwElse {
			p.next()
			els = p.parseStmt()
		}
		return &ast.IfStmt{IfPos: ip, Cond: cond, Then: then, Else: els}
	case token.KwWhile:
		wp := p.pos()
		p.next()
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.expect(token.RParen)
		return &ast.WhileStmt{WhilePos: wp, Cond: cond, Body: p.parseStmt()}
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		rp := p.pos()
		p.next()
		var v ast.Expr
		if p.kind() != token.Semi {
			v = p.parseExpr()
		}
		p.expect(token.Semi)
		return &ast.ReturnStmt{RetPos: rp, Value: v}
	case token.KwBreak:
		s := &ast.BreakStmt{BrkPos: p.pos()}
		p.next()
		p.expect(token.Semi)
		return s
	case token.KwContinue:
		s := &ast.ContinueStmt{ContPos: p.pos()}
		p.next()
		p.expect(token.Semi)
		return s
	case token.KwVar, token.KwDef:
		return p.parseLocals()
	}
	e := p.parseExpr()
	p.expect(token.Semi)
	return &ast.ExprStmt{E: e}
}

// parseLocals parses `var a = 1, b = 2;` into a Block of LocalDecls when
// several declarators appear, or a single LocalDecl.
func (p *Parser) parseLocals() ast.Stmt {
	mutable := p.kind() == token.KwVar
	p.next()
	var decls []ast.Stmt
	for {
		d := &ast.LocalDecl{Mutable: mutable, Name: p.ident()}
		if p.kind() == token.Colon {
			p.next()
			d.Type = p.parseType()
		}
		if p.kind() == token.Assign {
			p.next()
			d.Init = p.parseExpr()
		}
		decls = append(decls, d)
		if p.kind() == token.Comma {
			p.next()
			continue
		}
		break
	}
	p.expect(token.Semi)
	if len(decls) == 1 {
		return decls[0]
	}
	return &ast.Block{LPos: decls[0].Pos(), Stmts: decls, DeclGroup: true}
}

func (p *Parser) parseFor() ast.Stmt {
	fp := p.pos()
	p.expect(token.KwFor)
	p.expect(token.LParen)
	s := &ast.ForStmt{ForPos: fp}
	if p.kind() != token.Semi {
		s.Var = p.ident()
		if p.kind() == token.Assign {
			p.next()
			s.Init = p.parseExpr()
		} else {
			p.errorf("expected = in for-loop variable binding")
		}
	}
	p.expect(token.Semi)
	if p.kind() != token.Semi {
		s.Cond = p.parseExpr()
	}
	p.expect(token.Semi)
	if p.kind() != token.RParen {
		s.Post = p.parseExpr()
	}
	p.expect(token.RParen)
	s.Body = p.parseStmt()
	return s
}

// ---------------------------------------------------------------- exprs

// parseExpr parses a full expression, including assignment.
func (p *Parser) parseExpr() ast.Expr {
	p.depth++
	defer func() { p.depth-- }()
	if p.exceeded() {
		return &ast.NullLit{LitPos: p.pos()}
	}
	e := p.parseTernary()
	switch p.kind() {
	case token.Assign, token.AddEq, token.SubEq:
		op := p.kind()
		p.next()
		v := p.parseExpr()
		return &ast.AssignExpr{Op: op, Target: e, Value: v}
	}
	return e
}

func (p *Parser) parseTernary() ast.Expr {
	cond := p.parseBinary(0)
	if p.kind() != token.Question {
		return cond
	}
	p.next()
	then := p.parseTernary()
	p.expect(token.Colon)
	els := p.parseTernary()
	return &ast.TernaryExpr{Cond: cond, Then: then, Els: els}
}

// binary operator precedence levels, loosest first.
var precLevels = [][]token.Kind{
	{token.OrOr},
	{token.AndAnd},
	{token.Or},
	{token.Xor},
	{token.And},
	{token.Eq, token.Neq},
	{token.Lt, token.Gt, token.Le, token.Ge},
	{token.Shl, token.Shr},
	{token.Add, token.Sub},
	{token.Mul, token.Div, token.Mod},
}

func (p *Parser) parseBinary(level int) ast.Expr {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	e := p.parseBinary(level + 1)
	for {
		k := p.kind()
		matched := false
		for _, op := range precLevels[level] {
			if k == op {
				matched = true
				break
			}
		}
		if !matched {
			return e
		}
		opPos := p.pos()
		p.next()
		r := p.parseBinary(level + 1)
		e = &ast.BinaryExpr{Op: k, OpPos: opPos, L: e, R: r}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	switch p.kind() {
	case token.Sub, token.Not:
		op := p.kind()
		opPos := p.pos()
		p.next()
		e := p.parseUnary()
		return &ast.UnaryExpr{Op: op, OpPos: opPos, E: e}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	e := p.parsePrimary()
	for {
		switch p.kind() {
		case token.Dot:
			p.next()
			e = p.parseMember(e)
		case token.LParen:
			p.next()
			var args []ast.Expr
			if p.kind() != token.RParen {
				for {
					args = append(args, p.parseExpr())
					if p.kind() == token.Comma {
						p.next()
						continue
					}
					break
				}
			}
			p.expect(token.RParen)
			e = &ast.CallExpr{Fn: e, Args: args}
		case token.LBracket:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBracket)
			e = &ast.IndexExpr{Arr: e, Idx: idx}
		case token.Inc, token.Dec:
			inc := p.kind() == token.Inc
			p.next()
			e = &ast.IncDecExpr{Inc: inc, Target: e}
		default:
			return e
		}
	}
}

// operator member spellings legal after '.': the four universal
// operators plus arithmetic/comparison/bitwise operators on primitives.
var opMembers = map[token.Kind]bool{
	token.Eq: true, token.Neq: true, token.Not: true, token.Question: true,
	token.Add: true, token.Sub: true, token.Mul: true, token.Div: true,
	token.Mod: true, token.Lt: true, token.Gt: true, token.Le: true,
	token.Ge: true, token.Shl: true, token.Shr: true, token.And: true,
	token.Or: true, token.Xor: true,
}

func (p *Parser) parseMember(recv ast.Expr) ast.Expr {
	t := p.cur()
	switch {
	case t.Kind == token.IDENT:
		name := p.ident()
		m := &ast.MemberExpr{Recv: recv, Name: name}
		m.TypeArgs = p.tryTypeArgs()
		return m
	case t.Kind == token.KwNew:
		np := p.pos()
		p.next()
		return &ast.MemberExpr{Recv: recv, Name: ast.Ident{Name: "new", Off: np}}
	case t.Kind == token.INT:
		// Tuple element access v.0; also v.1.0 lexes `.` INT `.` INT.
		np := p.pos()
		p.next()
		return &ast.MemberExpr{Recv: recv, Name: ast.Ident{Name: t.Lit, Off: np}}
	case opMembers[t.Kind]:
		np := p.pos()
		p.next()
		m := &ast.MemberExpr{Recv: recv, Name: ast.Ident{Name: t.Kind.String(), Off: np}, OpToken: t.Kind}
		// Operators may take explicit type args: A.!<B> (b14-15). A '<'
		// after an operator member is always type arguments: `x.! < y`
		// would be a cast missing its operand, which is meaningless.
		if p.kind() == token.Lt {
			p.next()
			for {
				m.TypeArgs = append(m.TypeArgs, p.parseType())
				if p.kind() == token.Comma {
					p.next()
					continue
				}
				break
			}
			if !p.acceptGt() {
				p.errorf("expected > to close type arguments")
			}
		}
		return m
	}
	p.errorf("expected member name after '.', found %s", t)
	p.next()
	return recv
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 0, 64)
		if err != nil {
			p.errorf("invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{LitPos: src.Pos{File: p.file, Off: t.Off}, Value: v}
	case token.CHAR:
		p.next()
		var b byte
		if len(t.Lit) > 0 {
			b = t.Lit[0]
		}
		return &ast.ByteLit{LitPos: src.Pos{File: p.file, Off: t.Off}, Value: b}
	case token.STRING:
		p.next()
		return &ast.StrLit{LitPos: src.Pos{File: p.file, Off: t.Off}, Value: t.Lit}
	case token.KwTrue, token.KwFalse:
		p.next()
		return &ast.BoolLit{LitPos: src.Pos{File: p.file, Off: t.Off}, Value: t.Kind == token.KwTrue}
	case token.KwNull:
		p.next()
		return &ast.NullLit{LitPos: src.Pos{File: p.file, Off: t.Off}}
	case token.KwThis:
		p.next()
		return &ast.ThisExpr{LitPos: src.Pos{File: p.file, Off: t.Off}}
	case token.IDENT:
		name := p.ident()
		r := &ast.VarRef{Name: name}
		r.TypeArgs = p.tryTypeArgs()
		return r
	case token.LParen:
		lp := p.pos()
		// Speculate: a parenthesized FUNCTION type used as an operator
		// receiver, e.g. (StringBuffer -> void).?(x). Only function
		// types commit here; bare names and tuples stay expressions and
		// are classified by the checker.
		m := p.mark()
		p.spec++
		p.next()
		tref := p.parseTypeSpec()
		if ft, ok := tref.(*ast.FuncTypeRef); ok && p.kind() == token.RParen {
			p.next()
			if p.kind() == token.Dot && p.errs.Len() == m.nerr {
				p.spec--
				return &ast.TypeExpr{Ref: ft}
			}
		}
		p.spec--
		p.reset(m)
		p.next()
		var elems []ast.Expr
		if p.kind() != token.RParen {
			for {
				elems = append(elems, p.parseExpr())
				if p.kind() == token.Comma {
					p.next()
					continue
				}
				break
			}
		}
		p.expect(token.RParen)
		if len(elems) == 1 {
			return elems[0] // (e) == e
		}
		return &ast.TupleExpr{LPos: lp, Elems: elems}
	}
	p.errorf("expected expression, found %s", t)
	p.next()
	return &ast.NullLit{LitPos: src.Pos{File: p.file, Off: t.Off}}
}

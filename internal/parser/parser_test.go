package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/src"
)

func parse(t *testing.T, source string) *ast.File {
	t.Helper()
	errs := &src.ErrorList{}
	f := Parse("test.v", source, errs)
	if !errs.Empty() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	return f
}

func parseErr(t *testing.T, source, want string) {
	t.Helper()
	errs := &src.ErrorList{}
	Parse("test.v", source, errs)
	if errs.Empty() {
		t.Fatalf("expected parse error containing %q", want)
	}
	if !strings.Contains(errs.Error(), want) {
		t.Fatalf("want error containing %q, got:\n%s", want, errs.Error())
	}
}

func TestClassDecl(t *testing.T) {
	f := parse(t, `
class A {
	var f: int;
	def g: int;
	new(f, g) { }
	def m(a: byte) -> int { return 0; }
	private def p() { }
}
class B extends A {
	def m(a: byte) -> int { return 1; }
}
`)
	if len(f.Decls) != 2 {
		t.Fatalf("got %d decls", len(f.Decls))
	}
	a := f.Decls[0].(*ast.ClassDecl)
	if a.Name.Name != "A" || len(a.Members) != 5 {
		t.Fatalf("class A: %q with %d members", a.Name.Name, len(a.Members))
	}
	if _, ok := a.Members[2].(*ast.CtorDecl); !ok {
		t.Error("member 2 should be a constructor")
	}
	m := a.Members[3].(*ast.MethodDecl)
	if m.Name.Name != "m" || len(m.Params) != 1 || m.RetType == nil {
		t.Error("method m malformed")
	}
	p := a.Members[4].(*ast.MethodDecl)
	if !p.Private {
		t.Error("p should be private")
	}
	b := f.Decls[1].(*ast.ClassDecl)
	if b.Extends == nil {
		t.Error("B should extend A")
	}
}

func TestCompactClassParams(t *testing.T) {
	f := parse(t, `
class DatastoreInterface(
	create: () -> int,
	load: int -> int,
	store: int -> ()) {
}
`)
	d := f.Decls[0].(*ast.ClassDecl)
	if len(d.CtorParams) != 3 {
		t.Fatalf("got %d compact params", len(d.CtorParams))
	}
	if _, ok := d.CtorParams[0].Type.(*ast.FuncTypeRef); !ok {
		t.Error("create should have a function type")
	}
}

func TestGenericDecls(t *testing.T) {
	f := parse(t, `
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
def apply<A>(list: List<A>, f: A -> void) { }
def nested(x: List<List<int>>) { }
`)
	cls := f.Decls[0].(*ast.ClassDecl)
	if len(cls.TypeParams) != 1 || cls.TypeParams[0].Name.Name != "T" {
		t.Error("List<T> type params")
	}
	fn := f.Decls[1].(*ast.MethodDecl)
	if len(fn.TypeParams) != 1 {
		t.Error("apply<A> type params")
	}
	// List<List<int>> exercises the '>>' split.
	nested := f.Decls[2].(*ast.MethodDecl)
	outer := nested.Params[0].Type.(*ast.NamedTypeRef)
	inner := outer.Args[0].(*ast.NamedTypeRef)
	if outer.Name.Name != "List" || inner.Name.Name != "List" {
		t.Error("nested generics misparsed")
	}
}

func TestTupleAndFunctionTypes(t *testing.T) {
	f := parse(t, `
def f(a: (int, int), b: (int, int) -> int, c: int -> (int, int), d: A -> (B -> C), e: (A -> B) -> C) { }
`)
	fn := f.Decls[0].(*ast.MethodDecl)
	if _, ok := fn.Params[0].Type.(*ast.TupleTypeRef); !ok {
		t.Error("a: tuple type")
	}
	b := fn.Params[1].Type.(*ast.FuncTypeRef)
	if _, ok := b.Param.(*ast.TupleTypeRef); !ok {
		t.Error("b: tuple parameter in function type")
	}
	// -> is right-associative: A -> (B -> C) == A -> B -> C.
	d := fn.Params[3].Type.(*ast.FuncTypeRef)
	if _, ok := d.Ret.(*ast.FuncTypeRef); !ok {
		t.Error("d: right-associative ->")
	}
	e := fn.Params[4].Type.(*ast.FuncTypeRef)
	if _, ok := e.Param.(*ast.FuncTypeRef); !ok {
		t.Error("e: parenthesized function parameter")
	}
}

func TestLessThanVsTypeArgs(t *testing.T) {
	// `a < b` must parse as comparison, `f<int>(x)` as instantiation.
	f := parse(t, `
def main() {
	var x = a < b;
	var y = f<int>(3);
	var z = a < b > (c);
	var w = m.dispatch<bool>(true);
	var q = List<(int, int)>.new((3, 4), null);
}
`)
	body := f.Decls[0].(*ast.MethodDecl).Body
	x := body.Stmts[0].(*ast.LocalDecl)
	if _, ok := x.Init.(*ast.BinaryExpr); !ok {
		t.Errorf("a < b should be a comparison, got %T", x.Init)
	}
	y := body.Stmts[1].(*ast.LocalDecl)
	call := y.Init.(*ast.CallExpr)
	vr := call.Fn.(*ast.VarRef)
	if len(vr.TypeArgs) != 1 {
		t.Error("f<int> should carry type args")
	}
	// `a < b > (c)` commits to the instantiation reading a<b>(c), the
	// same disambiguation C# uses: a '<'...'>' followed by '(' is type
	// arguments.
	z := body.Stmts[2].(*ast.LocalDecl)
	if call, ok := z.Init.(*ast.CallExpr); !ok {
		t.Errorf("a < b > (c) should be a generic call, got %T", z.Init)
	} else if len(call.Fn.(*ast.VarRef).TypeArgs) != 1 {
		t.Error("a<b>(c) should carry one type argument")
	}
	w := body.Stmts[3].(*ast.LocalDecl)
	mc := w.Init.(*ast.CallExpr).Fn.(*ast.MemberExpr)
	if len(mc.TypeArgs) != 1 {
		t.Error("dispatch<bool> should carry type args")
	}
}

func TestOperatorMembers(t *testing.T) {
	f := parse(t, `
def main() {
	var a = byte.==;
	var b = int.+;
	var c = A.!<B>;
	var d = A.?<B>;
	var e = int.!(x);
	var g = List<void>.?(a);
}
`)
	body := f.Decls[0].(*ast.MethodDecl).Body
	a := body.Stmts[0].(*ast.LocalDecl).Init.(*ast.MemberExpr)
	if a.Name.Name != "==" {
		t.Errorf("member name %q", a.Name.Name)
	}
	c := body.Stmts[2].(*ast.LocalDecl).Init.(*ast.MemberExpr)
	if c.Name.Name != "!" || len(c.TypeArgs) != 1 {
		t.Error("A.!<B> malformed")
	}
	e := body.Stmts[4].(*ast.LocalDecl).Init.(*ast.CallExpr)
	if e.Fn.(*ast.MemberExpr).Name.Name != "!" {
		t.Error("int.!(x) malformed")
	}
}

func TestTupleExprsAndIndices(t *testing.T) {
	f := parse(t, `
def main() {
	var x = (0, 1);
	var y = x.0;
	var z = t.1.0;
	var v = ();
	var w = (5);
}
`)
	body := f.Decls[0].(*ast.MethodDecl).Body
	if te, ok := body.Stmts[0].(*ast.LocalDecl).Init.(*ast.TupleExpr); !ok || len(te.Elems) != 2 {
		t.Error("(0, 1) tuple")
	}
	y := body.Stmts[1].(*ast.LocalDecl).Init.(*ast.MemberExpr)
	if y.Name.Name != "0" {
		t.Error("x.0 index")
	}
	z := body.Stmts[2].(*ast.LocalDecl).Init.(*ast.MemberExpr)
	if z.Name.Name != "0" {
		t.Error("t.1.0 outer index")
	}
	if inner, ok := z.Recv.(*ast.MemberExpr); !ok || inner.Name.Name != "1" {
		t.Error("t.1.0 inner index")
	}
	if te, ok := body.Stmts[3].(*ast.LocalDecl).Init.(*ast.TupleExpr); !ok || len(te.Elems) != 0 {
		t.Error("() void literal")
	}
	if _, ok := body.Stmts[4].(*ast.LocalDecl).Init.(*ast.IntLit); !ok {
		t.Error("(5) == 5")
	}
}

func TestStatements(t *testing.T) {
	f := parse(t, `
def main() {
	if (a) b(); else c();
	while (x) { y(); }
	for (l = list; l != null; l = l.tail) f(l.head);
	for (i = 0; i < n; i++) { }
	break;
	continue;
	return x;
	return;
	var a = 1, b = 2;
	x += 1;
	x--;
}
`)
	body := f.Decls[0].(*ast.MethodDecl).Body
	if _, ok := body.Stmts[0].(*ast.IfStmt); !ok {
		t.Error("if")
	}
	if _, ok := body.Stmts[1].(*ast.WhileStmt); !ok {
		t.Error("while")
	}
	fs, ok := body.Stmts[2].(*ast.ForStmt)
	if !ok || fs.Var.Name != "l" {
		t.Error("for with binding")
	}
	multi, ok := body.Stmts[8].(*ast.Block)
	if !ok || len(multi.Stmts) != 2 {
		t.Error("multi-declarator var")
	}
}

func TestTernaryAndPrecedence(t *testing.T) {
	f := parse(t, `
def main() {
	var x = z ? f : g;
	var y = 1 + 2 * 3;
	var w = a || b && c;
	var s = 1 << 2 + 3;
}
`)
	body := f.Decls[0].(*ast.MethodDecl).Body
	if _, ok := body.Stmts[0].(*ast.LocalDecl).Init.(*ast.TernaryExpr); !ok {
		t.Error("ternary")
	}
	y := body.Stmts[1].(*ast.LocalDecl).Init.(*ast.BinaryExpr)
	if y.Op.String() != "+" {
		t.Errorf("1+2*3 top op %s", y.Op)
	}
	w := body.Stmts[2].(*ast.LocalDecl).Init.(*ast.BinaryExpr)
	if w.Op.String() != "||" {
		t.Errorf("|| binds loosest, got %s", w.Op)
	}
	s := body.Stmts[3].(*ast.LocalDecl).Init.(*ast.BinaryExpr)
	if s.Op.String() != "<<" {
		t.Errorf("shift binds looser than +, got %s", s.Op)
	}
}

func TestAbstractMethodAndSuper(t *testing.T) {
	f := parse(t, `
class Instr {
	def emit(buf: Buffer);
}
class Sub extends Instr {
	new(x: int) super(x) { }
	def emit(buf: Buffer) { }
}
`)
	instr := f.Decls[0].(*ast.ClassDecl)
	if instr.Members[0].(*ast.MethodDecl).Body != nil {
		t.Error("abstract method should have nil body")
	}
	sub := f.Decls[1].(*ast.ClassDecl)
	ct := sub.Members[0].(*ast.CtorDecl)
	if !ct.HasSuper || len(ct.SuperArgs) != 1 {
		t.Error("super(x) malformed")
	}
}

func TestParseErrors(t *testing.T) {
	parseErr(t, `def f( { }`, "expected")
	parseErr(t, `class { }`, "identifier")
	parseErr(t, `def main() { var x = ; }`, "expected expression")
	parseErr(t, `def main() { if a) b(); }`, "expected (")
	parseErr(t, `def f(x) { }`, "requires a type")
}

func TestErrorPositions(t *testing.T) {
	errs := &src.ErrorList{}
	Parse("test.v", "def main() {\n  var x = ;\n}", errs)
	if errs.Empty() {
		t.Fatal("expected error")
	}
	if !strings.Contains(errs.Error(), "test.v:2:") {
		t.Errorf("error should point to line 2: %s", errs.Error())
	}
}

func TestParserRecovers(t *testing.T) {
	// Multiple errors are reported; parsing always terminates.
	errs := &src.ErrorList{}
	Parse("test.v", "class A { var } def main( { xx yy", errs)
	if errs.Len() < 2 {
		t.Errorf("expected multiple errors, got %d", errs.Len())
	}
}

func TestComponentAndEnumDecls(t *testing.T) {
	f := parse(t, `
component Counter {
	var count: int;
	def bump() -> int { return 0; }
	private def internal() { }
}
enum Color { RED, GREEN, BLUE }
enum One { ONLY }
`)
	comp := f.Decls[0].(*ast.ComponentDecl)
	if comp.Name.Name != "Counter" || len(comp.Members) != 3 {
		t.Fatalf("component: %q with %d members", comp.Name.Name, len(comp.Members))
	}
	en := f.Decls[1].(*ast.EnumDecl)
	if en.Name.Name != "Color" || len(en.Cases) != 3 || en.Cases[1].Name != "GREEN" {
		t.Fatalf("enum Color malformed: %+v", en)
	}
	one := f.Decls[2].(*ast.EnumDecl)
	if len(one.Cases) != 1 {
		t.Fatal("single-case enum")
	}
}

func TestComponentRejectsCtor(t *testing.T) {
	parseErr(t, `component C { new() { } }`, "cannot declare constructors")
}

func TestFunctionTypeReceiver(t *testing.T) {
	f := parse(t, `
def main() {
	var q = (StringBuffer -> void).?(a);
	var c = (int -> int).!(f);
	var grouped = (1 + 2) * 3;
	var call = (g)(1);
}
`)
	body := f.Decls[0].(*ast.MethodDecl).Body
	q := body.Stmts[0].(*ast.LocalDecl).Init.(*ast.CallExpr).Fn.(*ast.MemberExpr)
	if _, ok := q.Recv.(*ast.TypeExpr); !ok {
		t.Errorf("(T -> U).? receiver should be a TypeExpr, got %T", q.Recv)
	}
	// Parenthesized value expressions are untouched.
	g := body.Stmts[2].(*ast.LocalDecl).Init.(*ast.BinaryExpr)
	if g.Op.String() != "*" {
		t.Error("(1 + 2) * 3 grouping broken")
	}
	if _, ok := body.Stmts[3].(*ast.LocalDecl).Init.(*ast.CallExpr); !ok {
		t.Error("(g)(1) should stay a call")
	}
}

// TestSyncPointRecovery: the parser resynchronizes after a syntax error
// and reports later, independent errors from the same file instead of
// stopping at the first.
func TestSyncPointRecovery(t *testing.T) {
	source := `
def f() -> int {
	return 1 +;
}
def g() -> int {
	var x int = 2;
	return @;
}
`
	errs := &src.ErrorList{}
	Parse("sync.v", source, errs)
	if errs.Len() < 2 {
		t.Fatalf("want >=2 independent diagnostics, got %d:\n%v", errs.Len(), errs)
	}
	lines := map[int]bool{}
	for _, e := range errs.Errors {
		lines[e.Pos.Line()] = true
	}
	if len(lines) < 2 {
		t.Errorf("diagnostics should span >=2 distinct lines, got %v", lines)
	}
}

// TestNestingDepthGuard: adversarially deep nesting yields a single
// diagnostic, not Go stack exhaustion or a superlinear reparse.
func TestNestingDepthGuard(t *testing.T) {
	deep := "def main() -> int { return " + strings.Repeat("(", 5000) + "1" + strings.Repeat(")", 5000) + "; }"
	errs := &src.ErrorList{}
	Parse("deep.v", deep, errs)
	if errs.Empty() {
		t.Fatal("deep nesting accepted silently")
	}
	found := false
	for _, e := range errs.Errors {
		if strings.Contains(e.Msg, "nesting too deep") {
			found = true
		}
	}
	if !found {
		t.Errorf("want 'nesting too deep' diagnostic, got:\n%v", errs)
	}
}

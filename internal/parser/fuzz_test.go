package parser

import (
	"testing"

	"repro/internal/src"
	"repro/internal/testprogs"
)

// FuzzParser asserts the parser is total: any byte sequence parses to
// an AST plus diagnostics without panicking — including adversarially
// deep nesting, which must hit the depth guard instead of the Go
// runtime's fatal stack limit.
func FuzzParser(f *testing.F) {
	for _, p := range testprogs.All() {
		f.Add(p.Source)
	}
	f.Add("def main() { ((((((((1)))))))); }")
	f.Add("class A extends A { }")
	f.Add("def f<T>(x: T) -> T { return f(f); }")
	f.Add("}}}} class { } enum ; component def var")
	f.Fuzz(func(t *testing.T, source string) {
		errs := &src.ErrorList{}
		file := Parse("fuzz.v", source, errs)
		if file == nil {
			t.Fatal("Parse returned nil file")
		}
	})
}

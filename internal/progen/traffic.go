package progen

import (
	"sort"
	"strconv"
)

// TrafficItem is one replayable request shape in a load-generation
// mix: a program, the endpoint it targets, and a sampling weight.
// The item carries the request knobs the serve tier understands but
// stays wire-agnostic — internal/loadgen maps items onto the serve
// JSON schema.
type TrafficItem struct {
	// Name labels the item in error taxonomies.
	Name string
	// Path is "/run" or "/compile".
	Path string
	// FileName and Source are the single-file program.
	FileName string
	Source   string
	// Weight is the item's relative sampling frequency within its mix.
	Weight int
	// Tenant attributes the request for quota metering ("" = exempt).
	Tenant string
	// MaxSteps and MaxHeap bound the run (0 = server defaults) — the
	// hungry allocators rely on these to trap deterministically instead
	// of eating the shared daemon budget.
	MaxSteps int64
	MaxHeap  int64
	// WantOK records whether a healthy serve tier answers this item
	// with ok:true — crashers and diagnostics legitimately answer
	// ok:false, and the harness must not count those as failures.
	WantOK bool
}

// Traffic mix names, in Mixes' iteration order.
const (
	MixCompileHeavy = "compile-heavy"
	MixRunHeavy     = "run-heavy"
	MixHungry       = "hungry"
	MixCrashers     = "crashers"
	MixTenants      = "tenants"
	MixMixed        = "mixed"
)

// trafficTrapProgs are small programs that deterministically trap —
// the crasher slice of fleet traffic. Every one is a legitimate
// ok:false answer, never a daemon failure.
var trafficTrapProgs = map[string]string{
	"null_call": `
class C { def f() -> int { return 1; } }
def main() {
	var c: C;
	System.puti(c.f());
}
`,
	"bounds": `
def main() -> int {
	var a = Array<int>.new(2);
	return a[5];
}
`,
	"div_zero": `
def main() -> int {
	var z = 0;
	return 7 / z;
}
`,
}

// trafficDiagProg does not compile; it exercises the diagnostics path.
const trafficDiagProg = `
def main() { frob(undefined_name); }
`

// Mixes returns the named traffic mixes the chaos/load harness
// replays against a fleet. Every mix is deterministic: same name,
// same items, same weights.
func Mixes() map[string][]TrafficItem {
	mixes := map[string][]TrafficItem{}

	// Compile-heavy: distinct program sizes so the fleet's caches see
	// both repeats and genuinely new work.
	var compile []TrafficItem
	for i, p := range []Params{Small(), Scale(2), Scale(3)} {
		compile = append(compile, TrafficItem{
			Name: "compile-gen", Path: "/compile",
			FileName: "gen.v", Source: Generate(withSeed(p, i)),
			Weight: 3, WantOK: true,
		})
	}
	compile = append(compile, TrafficItem{
		Name: "compile-diag", Path: "/compile",
		FileName: "bad.v", Source: trafficDiagProg,
		Weight: 1, WantOK: false,
	})
	mixes[MixCompileHeavy] = compile

	// Run-heavy: small fast programs, several distinct ones so routing
	// spreads them across owners and repeats warm the owners' caches.
	var runs []TrafficItem
	for i := 0; i < 6; i++ {
		runs = append(runs, TrafficItem{
			Name: "run-small", Path: "/run",
			FileName: "r.v", Source: smallRunProg(i),
			Weight: 3, WantOK: true,
		})
	}
	mixes[MixRunHeavy] = runs

	// Hungry allocators: bounded by tight heap budgets so each traps
	// deterministically without stressing the daemon's own memory.
	var hungry []TrafficItem
	for _, name := range sortedKeys(Hungry()) {
		hungry = append(hungry, TrafficItem{
			Name: "hungry-" + name, Path: "/run",
			FileName: name + ".v", Source: Hungry()[name],
			Weight: 1, MaxHeap: 1 << 20, MaxSteps: 2_000_000, WantOK: false,
		})
	}
	mixes[MixHungry] = hungry

	// Crashers: deterministic traps.
	var crashers []TrafficItem
	for _, name := range sortedKeys(trafficTrapProgs) {
		crashers = append(crashers, TrafficItem{
			Name: "crash-" + name, Path: "/run",
			FileName: name + ".v", Source: trafficTrapProgs[name],
			Weight: 1, WantOK: false,
		})
	}
	mixes[MixCrashers] = crashers

	// Mixed tenants: the run-heavy shapes attributed across tenants,
	// exercising per-tenant metering under fleet routing.
	var tenants []TrafficItem
	for i, tenant := range []string{"alpha", "beta", "gamma"} {
		for j := 0; j < 2; j++ {
			tenants = append(tenants, TrafficItem{
				Name: "tenant-" + tenant, Path: "/run",
				FileName: "t.v", Source: smallRunProg(10 + i*2 + j),
				Weight: 2, Tenant: tenant, WantOK: true,
			})
		}
	}
	mixes[MixTenants] = tenants

	// Mixed: a weighted union — the realistic fleet profile.
	var mixed []TrafficItem
	mixed = append(mixed, scaleWeights(runs, 6)...)
	mixed = append(mixed, scaleWeights(compile, 2)...)
	mixed = append(mixed, scaleWeights(hungry, 1)...)
	mixed = append(mixed, scaleWeights(crashers, 1)...)
	mixed = append(mixed, scaleWeights(tenants, 2)...)
	mixes[MixMixed] = mixed

	return mixes
}

// MixNames returns the available mix names, sorted.
func MixNames() []string {
	return sortedKeys(Mixes())
}

// smallRunProg is a tiny distinct program per seed: distinct hashes
// route to distinct owners, repeated seeds hit warm caches.
func smallRunProg(seed int) string {
	return `
def work(x: int) -> int {
	var acc = 0;
	for (i = 0; i < x; i++) acc = acc + i * i;
	return acc;
}
def main() {
	System.puti(work(` + strconv.Itoa(100+seed) + `));
	System.ln();
}
`
}

// withSeed perturbs Params deterministically so equal scales still
// produce distinct programs.
func withSeed(p Params, seed int) Params {
	p.Funcs += seed
	return p
}

func scaleWeights(items []TrafficItem, k int) []TrafficItem {
	out := make([]TrafficItem, len(items))
	for i, it := range items {
		it.Weight *= k
		out[i] = it
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

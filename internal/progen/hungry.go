package progen

// Hungry returns the memory-hungry adversarial programs, keyed by
// name. Each allocates without bound — fresh arrays, object + bound
// closure chains, doubling string concatenation — so that under a
// finite heap budget every one of them must end in the deterministic
// !HeapExhausted trap (or a step budget, whichever the configured
// guards reach first). The fuzz and differential suites seed these to
// exercise the heap-accounting path in both engines; the serve soak
// uses them to prove daemon RSS stays bounded under allocation
// attacks.
//
// The first program is deliberately compute-light (a few steps per
// 64 Ki-slot allocation) so tight step budgets do not fire before the
// heap budget does; the other two are copy-heavy variants of the
// crasher corpus shapes.
func Hungry() map[string]string {
	return map[string]string{
		"array_growth": `
def main() -> int {
	var total = 0;
	while (true) {
		var a = Array<int>.new(65536);
		total = total + a.length;
	}
	return total;
}
`,
		"closure_chain": `
class Acc {
	var f: () -> int;
	new(f) { }
	def get() -> int { return f() + 1; }
}
def one() -> int { return 1; }
def main() -> int {
	var a = Acc.new(one);
	while (true) a = Acc.new(a.get);
	return a.get();
}
`,
		"string_concat": `
def concat(a: Array<byte>, b: Array<byte>) -> Array<byte> {
	var r = Array<byte>.new(a.length + b.length);
	for (i = 0; i < a.length; i++) r[i] = a[i];
	for (i = 0; i < b.length; i++) r[a.length + i] = b[i];
	return r;
}
def main() -> int {
	var s = "virgil";
	while (true) s = concat(s, s);
	return s.length;
}
`,
	}
}

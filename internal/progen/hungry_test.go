package progen

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
)

// TestHungryProgramsTrapHeapExhausted: every adversarial program
// compiles under every configuration and, bounded by a small heap
// budget (with steps generous enough that the heap guard fires
// first for the compute-light shapes), ends in a deterministic
// resource outcome — !HeapExhausted for the allocation-dominated
// programs, never an ICE or an unbounded run.
func TestHungryProgramsTrapHeapExhausted(t *testing.T) {
	for name, src := range Hungry() {
		t.Run(name, func(t *testing.T) {
			for _, base := range core.Configs() {
				cfg := base
				cfg.MaxHeap = 1 << 16
				cfg.MaxSteps = 5_000_000
				comp, err := core.Compile(name+".v", src, cfg)
				if err != nil {
					t.Fatalf("[%s] compile: %v", cfg.Name(), err)
				}
				res := comp.Run()
				var ve *interp.VirgilError
				if !errors.As(res.Err, &ve) || ve.Name != interp.HeapExhausted {
					t.Fatalf("[%s] want %s, got %v", cfg.Name(), interp.HeapExhausted, res.Err)
				}
				if res.Stats.HeapBytes <= cfg.MaxHeap {
					t.Fatalf("[%s] HeapBytes = %d, want > budget %d", cfg.Name(), res.Stats.HeapBytes, cfg.MaxHeap)
				}
				if len(ve.Trace) == 0 {
					t.Fatalf("[%s] %s carries no stack trace", cfg.Name(), ve.Name)
				}
			}
		})
	}
}

package progen

import (
	"testing"

	"repro/internal/core"
)

// TestGeneratedProgramsCompileAndRun: generated programs compile and
// produce identical output in every pipeline configuration.
func TestGeneratedProgramsCompileAndRun(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		src := Generate(Scale(k))
		var want string
		for i, cfg := range core.Configs() {
			comp, err := core.Compile("gen.v", src, cfg)
			if err != nil {
				t.Fatalf("scale %d [%s]: %v", k, cfg.Name(), err)
			}
			res := comp.Run()
			if res.Err != nil {
				t.Fatalf("scale %d [%s]: %v", k, cfg.Name(), res.Err)
			}
			if i == 0 {
				want = res.Output
				if want == "" {
					t.Fatalf("scale %d: empty output", k)
				}
			} else if res.Output != want {
				t.Fatalf("scale %d [%s]: output %q differs from reference %q", k, cfg.Name(), res.Output, want)
			}
		}
	}
}

// TestDeterministic: same parameters produce the same source.
func TestDeterministic(t *testing.T) {
	if Generate(Small()) != Generate(Small()) {
		t.Error("generation is not deterministic")
	}
}

// TestScaling: larger parameters produce proportionally more lines.
func TestScaling(t *testing.T) {
	l1 := Lines(Generate(Scale(1)))
	l4 := Lines(Generate(Scale(4)))
	if l4 < 3*l1 {
		t.Errorf("Scale(4) = %d lines, expected at least 3x Scale(1) = %d", l4, l1)
	}
}

// TestExpansionGrows: generic-heavy programs expand under
// monomorphization (E4's precondition).
func TestExpansionGrows(t *testing.T) {
	src := Generate(Scale(2))
	comp, err := core.Compile("gen.v", src, core.Config{Monomorphize: true})
	if err != nil {
		t.Fatal(err)
	}
	if comp.MonoStats.ExpansionFactor() <= 0 {
		t.Error("expansion factor should be positive")
	}
	found := false
	for _, fe := range comp.MonoStats.PerFunc {
		if fe.Instances >= 3 {
			found = true
			break
		}
	}
	if !found {
		t.Error("expected some function with >= 3 instantiations")
	}
}

package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Random generates a deterministic, well-typed, terminating Virgil-core
// program from a seed, for differential testing of the pipeline: the
// same program must print the same output in every configuration.
//
// Programs use ints, bools, bytes and (nested) tuples; arithmetic
// avoids division (no traps) and all casts are statically safe, so a
// generated program never throws.
func Random(seed int64) string {
	g := &randGen{r: rand.New(rand.NewSource(seed))}
	return g.program()
}

// rtype is a generated-program type.
type rtype int

const (
	rInt rtype = iota
	rBool
	rByte
	rPair   // (int, int)
	rNested // ((int, bool), int)
)

var rtypeSyntax = map[rtype]string{
	rInt:    "int",
	rBool:   "bool",
	rByte:   "byte",
	rPair:   "(int, int)",
	rNested: "((int, bool), int)",
}

type rfunc struct {
	name   string
	params []rtype
	ret    rtype
}

type randGen struct {
	r     *rand.Rand
	funcs []rfunc
	b     strings.Builder
}

func (g *randGen) pickType() rtype { return rtype(g.r.Intn(5)) }

func (g *randGen) program() string {
	nfuncs := 4 + g.r.Intn(4)
	for i := 0; i < nfuncs; i++ {
		f := rfunc{name: fmt.Sprintf("f%d", i), ret: g.pickType()}
		np := 1 + g.r.Intn(3)
		for p := 0; p < np; p++ {
			f.params = append(f.params, g.pickType())
		}
		g.emitFunc(f)
		g.funcs = append(g.funcs, f)
	}
	g.emitMain()
	return g.b.String()
}

func (g *randGen) emitFunc(f rfunc) {
	var ps []string
	env := map[rtype][]string{}
	for i, pt := range f.params {
		name := fmt.Sprintf("p%d", i)
		ps = append(ps, fmt.Sprintf("%s: %s", name, rtypeSyntax[pt]))
		env[pt] = append(env[pt], name)
	}
	fmt.Fprintf(&g.b, "def %s(%s) -> %s {\n", f.name, strings.Join(ps, ", "), rtypeSyntax[f.ret])
	fmt.Fprintf(&g.b, "\treturn %s;\n", g.expr(3, f.ret, env, len(g.funcs)))
	fmt.Fprintf(&g.b, "}\n")
}

// expr generates an expression of type t with the given variables in
// scope; calls are allowed only to functions with index < maxFunc so
// the call graph is acyclic and every program terminates.
func (g *randGen) expr(depth int, t rtype, env map[rtype][]string, maxFunc int) string {
	// Use a variable of the right type sometimes.
	if vars := env[t]; len(vars) > 0 && g.r.Intn(3) == 0 {
		return vars[g.r.Intn(len(vars))]
	}
	if depth <= 0 {
		return g.literal(t)
	}
	// Call a previously defined function of the right return type.
	if maxFunc > 0 && g.r.Intn(4) == 0 {
		var candidates []rfunc
		for _, f := range g.funcs[:maxFunc] {
			if f.ret == t {
				candidates = append(candidates, f)
			}
		}
		if len(candidates) > 0 {
			f := candidates[g.r.Intn(len(candidates))]
			var args []string
			for _, pt := range f.params {
				args = append(args, g.expr(depth-1, pt, env, maxFunc))
			}
			return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
		}
	}
	switch t {
	case rInt:
		switch g.r.Intn(6) {
		case 0:
			return g.literal(t)
		case 1:
			op := []string{"+", "-", "*", "&", "|", "^"}[g.r.Intn(6)]
			return fmt.Sprintf("(%s %s %s)", g.expr(depth-1, rInt, env, maxFunc), op, g.expr(depth-1, rInt, env, maxFunc))
		case 2:
			return fmt.Sprintf("(%s ? %s : %s)", g.expr(depth-1, rBool, env, maxFunc), g.expr(depth-1, rInt, env, maxFunc), g.expr(depth-1, rInt, env, maxFunc))
		case 3:
			return fmt.Sprintf("%s.%d", g.expr(depth-1, rPair, env, maxFunc), g.r.Intn(2))
		case 4:
			return fmt.Sprintf("%s.1", g.expr(depth-1, rNested, env, maxFunc))
		default:
			return fmt.Sprintf("int.!(%s)", g.expr(depth-1, rByte, env, maxFunc))
		}
	case rBool:
		switch g.r.Intn(5) {
		case 0:
			return g.literal(t)
		case 1:
			op := []string{"<", "<=", ">", ">=", "==", "!="}[g.r.Intn(6)]
			return fmt.Sprintf("(%s %s %s)", g.expr(depth-1, rInt, env, maxFunc), op, g.expr(depth-1, rInt, env, maxFunc))
		case 2:
			op := []string{"&&", "||"}[g.r.Intn(2)]
			return fmt.Sprintf("(%s %s %s)", g.expr(depth-1, rBool, env, maxFunc), op, g.expr(depth-1, rBool, env, maxFunc))
		case 3:
			return fmt.Sprintf("!%s", g.expr(depth-1, rBool, env, maxFunc))
		default:
			// Universal tuple equality (§2.3).
			return fmt.Sprintf("(%s == %s)", g.expr(depth-1, rPair, env, maxFunc), g.expr(depth-1, rPair, env, maxFunc))
		}
	case rByte:
		if g.r.Intn(2) == 0 {
			return g.literal(t)
		}
		// Safe checked narrowing: the operand is masked to 0..255.
		return fmt.Sprintf("byte.!(%s & 255)", g.expr(depth-1, rInt, env, maxFunc))
	case rPair:
		switch g.r.Intn(3) {
		case 0:
			return g.literal(t)
		case 1:
			return fmt.Sprintf("(%s, %s)", g.expr(depth-1, rInt, env, maxFunc), g.expr(depth-1, rInt, env, maxFunc))
		default:
			return fmt.Sprintf("(%s ? %s : %s)", g.expr(depth-1, rBool, env, maxFunc), g.expr(depth-1, rPair, env, maxFunc), g.expr(depth-1, rPair, env, maxFunc))
		}
	case rNested:
		if g.r.Intn(2) == 0 {
			return g.literal(t)
		}
		return fmt.Sprintf("((%s, %s), %s)",
			g.expr(depth-1, rInt, env, maxFunc),
			g.expr(depth-1, rBool, env, maxFunc),
			g.expr(depth-1, rInt, env, maxFunc))
	}
	return g.literal(t)
}

func (g *randGen) literal(t rtype) string {
	switch t {
	case rInt:
		return fmt.Sprintf("%d", g.r.Intn(2001)-1000)
	case rBool:
		return []string{"true", "false"}[g.r.Intn(2)]
	case rByte:
		return fmt.Sprintf("'%c'", byte('a'+g.r.Intn(26)))
	case rPair:
		return fmt.Sprintf("(%d, %d)", g.r.Intn(100), g.r.Intn(100))
	case rNested:
		return fmt.Sprintf("((%d, %s), %d)", g.r.Intn(100), []string{"true", "false"}[g.r.Intn(2)], g.r.Intn(100))
	}
	return "0"
}

// emitMain calls every generated function with constant arguments and
// prints the results.
func (g *randGen) emitMain() {
	fmt.Fprintf(&g.b, "def main() {\n")
	for i, f := range g.funcs {
		var args []string
		for _, pt := range f.params {
			args = append(args, g.literal(pt))
		}
		fmt.Fprintf(&g.b, "\tvar r%d = %s(%s);\n", i, f.name, strings.Join(args, ", "))
		switch f.ret {
		case rInt:
			fmt.Fprintf(&g.b, "\tSystem.puti(r%d);\n", i)
		case rBool:
			fmt.Fprintf(&g.b, "\tSystem.putb(r%d);\n", i)
		case rByte:
			fmt.Fprintf(&g.b, "\tSystem.puti(int.!(r%d));\n", i)
		case rPair:
			fmt.Fprintf(&g.b, "\tSystem.puti(r%d.0); System.puti(r%d.1);\n", i, i)
		case rNested:
			fmt.Fprintf(&g.b, "\tSystem.puti(r%d.0.0); System.putb(r%d.0.1); System.puti(r%d.1);\n", i, i, i)
		}
		fmt.Fprintf(&g.b, "\tSystem.putc(' ');\n")
	}
	fmt.Fprintf(&g.b, "}\n")
}

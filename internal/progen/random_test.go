package progen

import (
	"testing"

	"repro/internal/core"
)

// TestRandomDifferential is the pipeline's differential fuzzer: random
// well-typed programs must compile in every configuration and print
// identical output (normalization and monomorphization preserve
// semantics on arbitrary tuple/arithmetic/call graphs).
func TestRandomDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := Random(seed)
		var want string
		for i, cfg := range core.Configs() {
			comp, err := core.Compile("rand.v", src, cfg)
			if err != nil {
				t.Fatalf("seed %d [%s]: compile: %v\nprogram:\n%s", seed, cfg.Name(), err, src)
			}
			res := comp.Run()
			if res.Err != nil {
				t.Fatalf("seed %d [%s]: run: %v\nprogram:\n%s", seed, cfg.Name(), res.Err, src)
			}
			if i == 0 {
				want = res.Output
			} else if res.Output != want {
				t.Fatalf("seed %d [%s]: output %q != reference %q\nprogram:\n%s",
					seed, cfg.Name(), res.Output, want, src)
			}
		}
	}
}

// TestRandomDeterministic: same seed, same program.
func TestRandomDeterministic(t *testing.T) {
	if Random(7) != Random(7) {
		t.Error("Random is not deterministic")
	}
	if Random(7) == Random(8) {
		t.Error("different seeds should differ")
	}
}

// Package ast defines the abstract syntax tree of Virgil-core.
//
// The checker (package typecheck) annotates expression nodes in place:
// every Expr carries a TypeOf field holding its computed type, and
// reference nodes carry a Binding describing what they resolved to.
package ast

import (
	"repro/internal/src"
	"repro/internal/token"
	"repro/internal/types"
)

// Node is implemented by every syntax node.
type Node interface {
	Pos() src.Pos
}

// ---------------------------------------------------------------- files

// File is a parsed compilation unit.
type File struct {
	Source *src.File
	Decls  []Decl
}

// Pos returns the start of the file.
func (f *File) Pos() src.Pos { return src.Pos{File: f.Source, Off: 0} }

// ---------------------------------------------------------------- decls

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// Ident is an identifier occurrence.
type Ident struct {
	Name string
	Off  src.Pos
}

// Pos returns the identifier's position.
func (i *Ident) Pos() src.Pos { return i.Off }

// TypeParamDecl declares one type parameter.
type TypeParamDecl struct {
	Name Ident
	// Def is filled in by the checker.
	Def *types.TypeParamDef
}

// Pos returns the declaration position.
func (t *TypeParamDecl) Pos() src.Pos { return t.Name.Off }

// Param is a formal parameter. Type may be nil inside a constructor,
// where a bare name refers to (and initializes) the field of the same
// name (§3.1's compact constructors).
type Param struct {
	Name Ident
	Type TypeRef // nil for constructor field-shorthand

	// Set by the checker.
	TypeOf types.Type
}

// Pos returns the parameter position.
func (p *Param) Pos() src.Pos { return p.Name.Off }

// ClassDecl declares a class. CtorParams is the compact class-parameter
// form `class C(f: T, ...)`, which declares immutable fields plus an
// implicit constructor.
type ClassDecl struct {
	Name       Ident
	TypeParams []*TypeParamDecl
	CtorParams []*Param // nil when absent
	Extends    TypeRef  // nil for a hierarchy root
	Members    []Member

	// Set by the checker.
	Def *types.ClassDef
}

func (d *ClassDecl) declNode() {}

// Pos returns the class name position.
func (d *ClassDecl) Pos() src.Pos { return d.Name.Off }

// Member is a class member.
type Member interface {
	Node
	memberNode()
}

// FieldDecl declares a field; Mutable distinguishes `var` from `def`.
type FieldDecl struct {
	Mutable bool
	Name    Ident
	Type    TypeRef // may be nil when Init provides the type
	Init    Expr    // may be nil

	// Set by the checker.
	TypeOf types.Type
	Index  int // slot index within the class (set by checker)
}

func (d *FieldDecl) memberNode() {}

// Pos returns the field name position.
func (d *FieldDecl) Pos() src.Pos { return d.Name.Off }

// MethodDecl declares a method or (at top level) a function.
type MethodDecl struct {
	Private    bool
	Name       Ident
	TypeParams []*TypeParamDecl
	Params     []*Param
	RetType    TypeRef // nil means void
	Body       *Block  // nil for abstract methods (paper n2)

	// Set by the checker.
	Sig      *types.Func
	Owner    *ClassDecl // nil for top-level functions
	VtSlot   int        // virtual table slot, assigned by checker
	Override *MethodDecl
}

func (d *MethodDecl) declNode()   {}
func (d *MethodDecl) memberNode() {}

// Pos returns the method name position.
func (d *MethodDecl) Pos() src.Pos { return d.Name.Off }

// CtorDecl declares an explicit constructor `new(params) [super(args)] {}`.
type CtorDecl struct {
	NewPos    src.Pos
	Params    []*Param
	HasSuper  bool
	SuperArgs []Expr
	Body      *Block

	// Set by the checker.
	Owner *ClassDecl
	Sig   *types.Func
}

func (d *CtorDecl) memberNode() {}

// Pos returns the `new` keyword position.
func (d *CtorDecl) Pos() src.Pos { return d.NewPos }

// EnumDecl declares an enumerated type: `enum Color { RED, GREEN }`.
// Enums implement the paper's top-priority future feature (§6.1) with a
// minimal design: value semantics, a closed case set, `.tag` and
// `.name` accessors, and the universal operators.
type EnumDecl struct {
	Name  Ident
	Cases []Ident

	// Def is set by the checker.
	Def *types.EnumDef
}

func (d *EnumDecl) declNode() {}

// Pos returns the enum name position.
func (d *EnumDecl) Pos() src.Pos { return d.Name.Off }

// ComponentDecl declares a component: a singleton namespace of fields
// (program globals) and functions, the unit Virgil organizes systems
// around (System and clock are built-in components).
type ComponentDecl struct {
	Name    Ident
	Members []Member
}

func (d *ComponentDecl) declNode() {}

// Pos returns the component name position.
func (d *ComponentDecl) Pos() src.Pos { return d.Name.Off }

// VarDecl is a top-level variable: `var x = e;` or `def x = e;`.
type VarDecl struct {
	Mutable bool
	Name    Ident
	Type    TypeRef // may be nil
	Init    Expr    // may be nil

	// Set by the checker.
	TypeOf types.Type
}

func (d *VarDecl) declNode() {}

// Pos returns the variable name position.
func (d *VarDecl) Pos() src.Pos { return d.Name.Off }

// ------------------------------------------------------------ type refs

// TypeRef is a syntactic reference to a type.
type TypeRef interface {
	Node
	typeRefNode()
}

// NamedTypeRef is `Name` or `Name<Args>`: a primitive, class, Array, or
// type parameter reference.
type NamedTypeRef struct {
	Name Ident
	Args []TypeRef
}

func (t *NamedTypeRef) typeRefNode() {}

// Pos returns the name position.
func (t *NamedTypeRef) Pos() src.Pos { return t.Name.Off }

// TupleTypeRef is `(T0, ..., Tn)`.
type TupleTypeRef struct {
	LPos  src.Pos
	Elems []TypeRef
}

func (t *TupleTypeRef) typeRefNode() {}

// Pos returns the open-paren position.
func (t *TupleTypeRef) Pos() src.Pos { return t.LPos }

// FuncTypeRef is `Param -> Ret`.
type FuncTypeRef struct {
	Param TypeRef
	Ret   TypeRef
}

func (t *FuncTypeRef) typeRefNode() {}

// Pos returns the parameter type position.
func (t *FuncTypeRef) Pos() src.Pos { return t.Param.Pos() }

// ---------------------------------------------------------------- stmts

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// Block is `{ stmts }`. DeclGroup marks a synthetic block produced by a
// multi-declarator statement (`var a = 1, b = 2;`), whose declarations
// live in the enclosing scope.
type Block struct {
	LPos      src.Pos
	Stmts     []Stmt
	DeclGroup bool
}

func (s *Block) stmtNode() {}

// Pos returns the open-brace position.
func (s *Block) Pos() src.Pos { return s.LPos }

// IfStmt is `if (cond) then [else els]`.
type IfStmt struct {
	IfPos src.Pos
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
}

func (s *IfStmt) stmtNode() {}

// Pos returns the `if` position.
func (s *IfStmt) Pos() src.Pos { return s.IfPos }

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	WhilePos src.Pos
	Cond     Expr
	Body     Stmt
}

func (s *WhileStmt) stmtNode() {}

// Pos returns the `while` position.
func (s *WhileStmt) Pos() src.Pos { return s.WhilePos }

// ForStmt is the paper's `for (v = init; cond; post) body`, which
// declares v as a fresh local scoped to the loop. Cond and Post may be
// nil.
type ForStmt struct {
	ForPos src.Pos
	Var    Ident
	Init   Expr
	Cond   Expr
	Post   Expr
	Body   Stmt

	// Set by the checker.
	VarType types.Type
	Local   *LocalDecl // synthesized binding for Var
}

func (s *ForStmt) stmtNode() {}

// Pos returns the `for` position.
func (s *ForStmt) Pos() src.Pos { return s.ForPos }

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	RetPos src.Pos
	Value  Expr // nil for bare return
}

func (s *ReturnStmt) stmtNode() {}

// Pos returns the `return` position.
func (s *ReturnStmt) Pos() src.Pos { return s.RetPos }

// BreakStmt is `break;`.
type BreakStmt struct{ BrkPos src.Pos }

func (s *BreakStmt) stmtNode() {}

// Pos returns the `break` position.
func (s *BreakStmt) Pos() src.Pos { return s.BrkPos }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ ContPos src.Pos }

func (s *ContinueStmt) stmtNode() {}

// Pos returns the `continue` position.
func (s *ContinueStmt) Pos() src.Pos { return s.ContPos }

// LocalDecl is `var x[: T] [= e];` or `def x[: T] = e;` inside a body.
// One statement may declare several locals (`var a = 1, b = 2;`); the
// parser expands those into consecutive LocalDecls.
type LocalDecl struct {
	Mutable bool
	Name    Ident
	Type    TypeRef // may be nil
	Init    Expr    // may be nil

	// Set by the checker.
	TypeOf types.Type
}

func (s *LocalDecl) stmtNode() {}

// Pos returns the local name position.
func (s *LocalDecl) Pos() src.Pos { return s.Name.Off }

// ExprStmt is an expression used as a statement.
type ExprStmt struct{ E Expr }

func (s *ExprStmt) stmtNode() {}

// Pos returns the expression position.
func (s *ExprStmt) Pos() src.Pos { return s.E.Pos() }

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ SemiPos src.Pos }

func (s *EmptyStmt) stmtNode() {}

// Pos returns the semicolon position.
func (s *EmptyStmt) Pos() src.Pos { return s.SemiPos }

// ---------------------------------------------------------------- exprs

// Expr is an expression. TypeOf is set by the checker.
type Expr interface {
	Node
	exprNode()
	// Type returns the checked type (nil before checking).
	Type() types.Type
	// SetType records the checked type.
	SetType(types.Type)
}

// typed is embedded in every expression node to carry the checked type.
type typed struct{ T types.Type }

// Type returns the checked type.
func (t *typed) Type() types.Type { return t.T }

// SetType records the checked type.
func (t *typed) SetType(tt types.Type) { t.T = tt }

// IntLit is an integer literal.
type IntLit struct {
	typed
	LitPos src.Pos
	Value  int64
}

func (e *IntLit) exprNode() {}

// Pos returns the literal position.
func (e *IntLit) Pos() src.Pos { return e.LitPos }

// ByteLit is a character literal such as 'a'.
type ByteLit struct {
	typed
	LitPos src.Pos
	Value  byte
}

func (e *ByteLit) exprNode() {}

// Pos returns the literal position.
func (e *ByteLit) Pos() src.Pos { return e.LitPos }

// BoolLit is `true` or `false`.
type BoolLit struct {
	typed
	LitPos src.Pos
	Value  bool
}

func (e *BoolLit) exprNode() {}

// Pos returns the literal position.
func (e *BoolLit) Pos() src.Pos { return e.LitPos }

// StrLit is a string literal; strings are Array<byte>.
type StrLit struct {
	typed
	LitPos src.Pos
	Value  string
}

func (e *StrLit) exprNode() {}

// Pos returns the literal position.
func (e *StrLit) Pos() src.Pos { return e.LitPos }

// NullLit is `null`.
type NullLit struct {
	typed
	LitPos src.Pos
}

func (e *NullLit) exprNode() {}

// Pos returns the literal position.
func (e *NullLit) Pos() src.Pos { return e.LitPos }

// ThisExpr is `this`.
type ThisExpr struct {
	typed
	LitPos src.Pos
}

func (e *ThisExpr) exprNode() {}

// Pos returns the `this` position.
func (e *ThisExpr) Pos() src.Pos { return e.LitPos }

// VarRef is an identifier expression, possibly with explicit type
// arguments (`apply<int>`). The checker sets Binding to the resolved
// entity (a typecheck symbol) and Kind to its classification.
type VarRef struct {
	typed
	Name     Ident
	TypeArgs []TypeRef

	// Set by the checker.
	Binding      any
	TypeArgsOf   []types.Type
	IsTypeName   bool // resolved to a type rather than a value
	ResolvedType types.Type
	// FreeParams are type parameters not yet bound at this use; they are
	// inferred at an enclosing call (d10'-d12').
	FreeParams []*types.TypeParamDef
}

func (e *VarRef) exprNode() {}

// Pos returns the identifier position.
func (e *VarRef) Pos() src.Pos { return e.Name.Off }

// TupleExpr is `(e0, ..., en)` with n != 1; `()` is the void value.
type TupleExpr struct {
	typed
	LPos  src.Pos
	Elems []Expr
}

func (e *TupleExpr) exprNode() {}

// Pos returns the open-paren position.
func (e *TupleExpr) Pos() src.Pos { return e.LPos }

// TypeExpr is a parenthesized type used in expression position as the
// receiver of a member operator, e.g. (StringBuffer -> void).?(x). The
// parser produces it only for function types; bare names and tuples of
// names reach the checker as VarRef/TupleExpr and are classified there.
type TypeExpr struct {
	typed
	Ref TypeRef
}

func (e *TypeExpr) exprNode() {}

// Pos returns the type position.
func (e *TypeExpr) Pos() src.Pos { return e.Ref.Pos() }

// MemberKind classifies what a checked member expression denotes.
type MemberKind int

// Member expression classifications assigned by the checker.
const (
	MUnknown         MemberKind = iota
	MTupleIndex                 // v.0
	MField                      // o.f
	MBoundMethod                // o.m        (closure bound to o)
	MClassMethod                // A.m        (receiver becomes first param)
	MNew                        // A.new      (constructor as function)
	MOperator                   // T.== T.!= T.! T.? int.+ ...
	MArrayLength                // a.length
	MComponentMember            // System.puts, clock.ticks (built-ins)
	MGlobal                     // Comp.x: a user component field
	MTopFunc                    // Comp.m: a user component function
	MEnumCase                   // Color.RED
	MEnumTag                    // c.tag
	MEnumName                   // c.name
)

// MemberExpr is `recv.Name` or `recv.Name<TypeArgs>`. Recv may denote a
// value or a type; the checker disambiguates and sets Kind plus the
// resolution fields.
type MemberExpr struct {
	typed
	Recv     Expr
	Name     Ident
	TypeArgs []TypeRef

	// Set by the checker.
	Kind       MemberKind
	Binding    any
	TypeArgsOf []types.Type
	RecvType   types.Type // for type-qualified members: the subject type
	TupleIdx   int
	OpToken    token.Kind // for MOperator
	// FreeParams are type parameters not yet bound at this use; they are
	// inferred at an enclosing call.
	FreeParams []*types.TypeParamDef
}

func (e *MemberExpr) exprNode() {}

// Pos returns the member name position.
func (e *MemberExpr) Pos() src.Pos { return e.Name.Off }

// CallExpr is `fn(args)`. The argument list (a0, ..., an) is the tuple
// argument of fn per §2.3.
type CallExpr struct {
	typed
	Fn   Expr
	Args []Expr
}

func (e *CallExpr) exprNode() {}

// Pos returns the callee position.
func (e *CallExpr) Pos() src.Pos { return e.Fn.Pos() }

// IndexExpr is `arr[idx]`.
type IndexExpr struct {
	typed
	Arr Expr
	Idx Expr
}

func (e *IndexExpr) exprNode() {}

// Pos returns the array expression position.
func (e *IndexExpr) Pos() src.Pos { return e.Arr.Pos() }

// BinaryExpr is `l op r` for arithmetic, comparison, logical and bitwise
// operators.
type BinaryExpr struct {
	typed
	Op    token.Kind
	OpPos src.Pos
	L, R  Expr
}

func (e *BinaryExpr) exprNode() {}

// Pos returns the operator position.
func (e *BinaryExpr) Pos() src.Pos { return e.OpPos }

// UnaryExpr is `-e` or `!e`.
type UnaryExpr struct {
	typed
	Op    token.Kind
	OpPos src.Pos
	E     Expr
}

func (e *UnaryExpr) exprNode() {}

// Pos returns the operator position.
func (e *UnaryExpr) Pos() src.Pos { return e.OpPos }

// TernaryExpr is `cond ? then : els`.
type TernaryExpr struct {
	typed
	Cond, Then, Els Expr
}

func (e *TernaryExpr) exprNode() {}

// Pos returns the condition position.
func (e *TernaryExpr) Pos() src.Pos { return e.Cond.Pos() }

// AssignExpr is `target = value`, `target += value`, or `target -= value`.
type AssignExpr struct {
	typed
	Op     token.Kind // Assign, AddEq, SubEq
	Target Expr
	Value  Expr
}

func (e *AssignExpr) exprNode() {}

// Pos returns the target position.
func (e *AssignExpr) Pos() src.Pos { return e.Target.Pos() }

// IncDecExpr is `target++` or `target--` (statement-position sugar).
type IncDecExpr struct {
	typed
	Inc    bool
	Target Expr
}

func (e *IncDecExpr) exprNode() {}

// Pos returns the target position.
func (e *IncDecExpr) Pos() src.Pos { return e.Target.Pos() }

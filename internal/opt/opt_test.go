package opt

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/mono"
	"repro/internal/norm"
	"repro/internal/parser"
	"repro/internal/src"
	"repro/internal/testprogs"
	"repro/internal/typecheck"
	"repro/internal/types"
)

// compileNorm compiles source through mono+norm, ready for opt.
func compileNorm(t *testing.T, source string) *ir.Module {
	t.Helper()
	errs := &src.ErrorList{}
	f := parser.Parse("test.v", source, errs)
	if !errs.Empty() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	prog := typecheck.Check([]*ast.File{f}, errs)
	if !errs.Empty() {
		t.Fatalf("check errors:\n%s", errs.Error())
	}
	mod, err := lower.Lower(context.Background(), prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	monoMod, _, err := mono.Monomorphize(context.Background(), mod, mono.Config{})
	if err != nil {
		t.Fatal(err)
	}
	normMod, _, err := norm.Normalize(context.Background(), monoMod, 1)
	if err != nil {
		t.Fatal(err)
	}
	return normMod
}

func run(t *testing.T, mod *ir.Module) string {
	t.Helper()
	var out strings.Builder
	it := interp.New(mod, interp.Options{Out: &out})
	if _, err := it.Run(); err != nil {
		t.Fatalf("run error: %v\noutput: %s", err, out.String())
	}
	return out.String()
}

// TestCorpusPreserved: optimization preserves observable behaviour on
// the whole corpus.
func TestCorpusPreserved(t *testing.T) {
	for _, p := range testprogs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			mod := compileNorm(t, p.Source)
			st, _ := Optimize(context.Background(), mod, Config{})
			if err := mod.Validate(); err != nil {
				t.Fatalf("invalid IR after optimization: %v", err)
			}
			got := run(t, mod)
			if got != p.Want {
				t.Fatalf("got %q, want %q", got, p.Want)
			}
			if st.InstrsAfter > st.InstrsBefore*2 {
				t.Errorf("optimization grew code unreasonably: %d -> %d", st.InstrsBefore, st.InstrsAfter)
			}
		})
	}
}

// TestConstantFolding: constant arithmetic folds to a constant return.
func TestConstantFolding(t *testing.T) {
	mod := compileNorm(t, `
def f() -> int {
	var a = 2 + 3 * 4;
	var b = a << 2;
	return b - 1;
}
def main() { System.puti(f()); }
`)
	st, _ := Optimize(context.Background(), mod, Config{})
	if got := run(t, mod); got != "55" {
		t.Fatalf("got %q", got)
	}
	if st.InstrsRemoved == 0 {
		t.Error("expected dead instructions removed after folding")
	}
	// f should contain no arithmetic after folding.
	for _, f := range mod.Funcs {
		if f.Name != "f" {
			continue
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				switch in.Op {
				case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl:
					t.Errorf("f still contains %s after constant folding", in.Op)
				}
			}
		}
	}
}

// TestQueryFolding: prim-vs-prim queries fold, class queries stay
// dynamic (null may fail them at runtime).
func TestQueryFolding(t *testing.T) {
	mod := compileNorm(t, `
class A { }
class B extends A { }
def classify<T>(x: T) -> int {
	if (int.?(x)) return 1;
	if (bool.?(x)) return 2;
	return 0;
}
def main() {
	System.puti(classify(5));
	System.puti(classify(false));
	var a: A = B.new();
	System.putb(B.?(a));
}
`)
	st, _ := Optimize(context.Background(), mod, Config{})
	if st.QueriesFolded == 0 {
		t.Error("expected primitive queries to fold")
	}
	dynamicQueries := 0
	for _, f := range mod.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.OpTypeQuery {
					dynamicQueries++
					if _, isClass := in.Type.(*types.Class); !isClass {
						t.Errorf("non-class query survived folding: %s", in)
					}
				}
			}
		}
	}
	if dynamicQueries == 0 {
		t.Error("class downcast query must stay dynamic")
	}
	if got := run(t, mod); got != "12true" {
		t.Fatalf("got %q", got)
	}
}

// TestUpcastElided: casts to a supertype become moves.
func TestUpcastElided(t *testing.T) {
	mod := compileNorm(t, `
class A { def id() -> int { return 1; } }
class B extends A { }
def main() {
	var b = B.new();
	var a = A.!(b);
	System.puti(a.id());
}
`)
	st, _ := Optimize(context.Background(), mod, Config{})
	if st.CastsElided == 0 {
		t.Error("upcast should be elided")
	}
	if got := run(t, mod); got != "1" {
		t.Fatalf("got %q", got)
	}
}

// TestInlining: small functions get inlined into callers.
func TestInlining(t *testing.T) {
	mod := compileNorm(t, `
def add3(x: int) -> int { return x + 3; }
def main() { System.puti(add3(add3(1))); }
`)
	st, _ := Optimize(context.Background(), mod, Config{})
	if st.Inlined == 0 {
		t.Error("expected inlining")
	}
	if got := run(t, mod); got != "7" {
		t.Fatalf("got %q", got)
	}
	// After inlining and folding, main should call nothing but the
	// builtin.
	for _, f := range mod.Funcs {
		if f.Name != "main" {
			continue
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.OpCallStatic {
					t.Errorf("main still contains a static call after inlining")
				}
			}
		}
	}
}

// TestNoInlineParamWriters: functions that assign their parameters are
// not inlined (splicing would clobber caller registers).
func TestNoInlineParamWriters(t *testing.T) {
	mod := compileNorm(t, `
def bump(x: int) -> int { x = x + 1; return x; }
def main() {
	var a = 5;
	System.puti(bump(a));
	System.puti(a);
}
`)
	Optimize(context.Background(), mod, Config{})
	if got := run(t, mod); got != "65" {
		t.Fatalf("got %q (caller register clobbered?)", got)
	}
}

// TestBranchFoldingRemovesDeadBlocks: constant conditions eliminate
// entire branches.
func TestBranchFoldingRemovesDeadBlocks(t *testing.T) {
	mod := compileNorm(t, `
def main() {
	if (1 < 2) System.puts("yes");
	else System.puts("no");
}
`)
	st, _ := Optimize(context.Background(), mod, Config{})
	if st.BranchesFolded == 0 {
		t.Error("expected the constant branch to fold")
	}
	if got := run(t, mod); got != "yes" {
		t.Fatalf("got %q", got)
	}
	for _, f := range mod.Funcs {
		if f.Name != "main" {
			continue
		}
		s := f.String()
		if strings.Contains(s, `"no"`) {
			t.Error("dead else branch survived")
		}
	}
}

// TestOptimizeIdempotent: a second run changes nothing.
func TestOptimizeIdempotent(t *testing.T) {
	p := testprogs.Get("print1_j")
	mod := compileNorm(t, p.Source)
	Optimize(context.Background(), mod, Config{})
	before := mod.NumInstrs()
	st, _ := Optimize(context.Background(), mod, Config{})
	if mod.NumInstrs() != before {
		t.Errorf("second optimize changed size: %d -> %d", before, mod.NumInstrs())
	}
	_ = st
}

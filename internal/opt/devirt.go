package opt

import (
	"repro/internal/ir"
	"repro/internal/types"
)

// devirtualize replaces virtual calls that have exactly one possible
// target with direct calls (class-hierarchy analysis over the closed,
// monomorphized world — §5 mentions the Virgil compiler's whole-program
// optimizations; a direct call is then eligible for inlining).
//
// A virtual call on static receiver class C at slot s can be bound
// statically when every class in the module that is C or a subclass of
// C implements slot s with the same function. The receiver must still
// be null-checked, since the virtual dispatch would have trapped.
func (o *optimizer) devirtualize() bool {
	if !o.mod.Monomorphic {
		return false
	}
	byType := map[*types.Class]*ir.Class{}
	for _, c := range o.mod.Classes {
		byType[c.Type] = c
	}
	// uniqueTarget[class][slot] computed lazily.
	targetCache := map[*ir.Class]map[int]*ir.Func{}
	uniqueTarget := func(c *ir.Class, slot int) *ir.Func {
		if m, ok := targetCache[c]; ok {
			if fn, ok := m[slot]; ok {
				return fn
			}
		} else {
			targetCache[c] = map[int]*ir.Func{}
		}
		var target *ir.Func
		unique := true
		for _, d := range o.mod.Classes {
			if !d.IsSubclassOf(c) || slot >= len(d.Vtable) || d.Vtable[slot] == nil {
				continue
			}
			switch {
			case target == nil:
				target = d.Vtable[slot]
			case target != d.Vtable[slot]:
				unique = false
			}
		}
		if !unique {
			target = nil
		}
		targetCache[c][slot] = target
		return target
	}

	changed := false
	for _, f := range o.mod.Funcs {
		for _, blk := range f.Blocks {
			var out []*ir.Instr
			for _, in := range blk.Instrs {
				if in.Op != ir.OpCallVirtual {
					out = append(out, in)
					continue
				}
				ct, ok := in.Type.(*types.Class)
				if !ok {
					out = append(out, in)
					continue
				}
				cls := byType[ct]
				if cls == nil {
					out = append(out, in)
					continue
				}
				target := uniqueTarget(cls, in.FieldSlot)
				// The target's parameter count must match the provided
				// values: tuple-equivalent overrides can differ in arity
				// before normalization.
				if target == nil || len(target.Params) != len(in.Args) {
					out = append(out, in)
					continue
				}
				out = append(out, &ir.Instr{Op: ir.OpNullCheck, Args: []*ir.Reg{in.Args[0]}, Pos: in.Pos})
				out = append(out, &ir.Instr{
					Op: ir.OpCallStatic, Dst: in.Dst, Fn: target,
					Args: in.Args, Pos: in.Pos,
				})
				o.st.Devirtualized++
				changed = true
			}
			blk.Instrs = out
		}
	}
	return changed
}

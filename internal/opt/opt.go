// Package opt implements the classical optimizations the paper relies
// on to make its emulation patterns free (§3.3): after
// monomorphization, type queries and casts between closed types are
// decided statically, the if-chains guarding them fold away, and the
// remaining direct call is inlined — "resulting in code just as
// efficient as if the caller had called the appropriate print* method
// directly".
//
// Passes: constant folding, copy propagation, type-query/cast folding,
// branch folding, unreachable-code elimination, dead-code elimination,
// and a conservative inliner. All passes run to a bounded fixpoint.
package opt

import (
	"context"
	"fmt"
	"maps"

	"repro/internal/ir"
	"repro/internal/par"
	"repro/internal/profile"
	"repro/internal/types"
)

// Stats reports what the optimizer did.
type Stats struct {
	InstrsBefore   int
	InstrsAfter    int
	QueriesFolded  int
	CastsElided    int
	BranchesFolded int
	InstrsRemoved  int
	Inlined        int
	Devirtualized  int
	// Analysis-driven passes (Config.Analyze).
	DevirtIndirect   int // indirect calls bound to their unique closure target
	PureCallsRemoved int // dead calls to pure functions deleted
	PureCallsCSEd    int // repeated deterministic calls merged
	StackPromoted    int // non-escaping allocations relieved of heap charges
	// Profile-guided passes (Config.Profile).
	SpecDevirt int // virtual sites given a guarded speculative fast path
	HotInlined int // extra inlines paid for by profile heat
}

// Config controls optimization.
type Config struct {
	// InlineLimit is the maximum callee size (in instructions) for
	// inlining; 0 means the default of 16.
	InlineLimit int
	// Rounds bounds the fold/inline fixpoint; 0 means the default of 4.
	Rounds int
	// Jobs bounds the worker pool for the per-function folding passes
	// (<= 1 folds sequentially). Devirtualization and inlining read
	// whole-program state and always run sequentially; the optimized
	// module and statistics are identical for every value.
	Jobs int
	// Analyze enables the analysis-driven passes: call-graph
	// devirtualization (including indirect calls through closures),
	// pure-call elimination/CSE, and stack promotion of non-escaping
	// allocations. Off, the optimizer runs only the local folding and
	// inlining passes — the ablation the analysis-off differential
	// tests compile against.
	Analyze bool
	// Profile, when non-nil and non-empty, supplies a runtime execution
	// profile for the profile-guided passes: speculative
	// devirtualization of observed-monomorphic virtual sites (guarded,
	// falling through to the original dispatch) and hot inlining with a
	// raised budget. Profiles are advisory: a stale or wrong profile can
	// cost speed, never correctness.
	Profile *profile.Profile
	// Record, when non-nil, captures the per-round inline snapshots and
	// change bits of this optimization, the replay substrate of
	// incremental compilation (core.Store). Recording copies every
	// inline-candidate body once per round and costs nothing else.
	Record *Recording
}

// Snapshot is a frozen copy of an inline-candidate function body taken
// at a round boundary (after folding, before any inlining of that
// round). Inlining splices from snapshots, never from live bodies, so
// one function's optimization trajectory depends only on its own body
// and the round's snapshot set — the property that makes per-function
// incremental replay (OptimizeReplay) byte-identical to a from-scratch
// optimization. Immutable after creation.
type Snapshot struct {
	Params []*ir.Reg
	Instrs []*ir.Instr
}

// RoundRecord is the replay record of one fold/inline round: the
// snapshot of every inline candidate the round's inlining read, and
// the set of functions the round changed (fold or inline). Changed
// stores only true entries.
type RoundRecord struct {
	Snaps   map[string]*Snapshot
	Changed map[string]bool
}

// Recording is the complete replay record of one optimization run.
type Recording struct {
	Rounds []RoundRecord
}

// Optimize runs all passes over the module in place.
//
// Each round folds every function — a pass that reads and writes only
// that function, so the folds fan out on the worker pool with
// per-worker statistics merged in function order — and then inlines
// sequentially, since inlining reads callee bodies across the module.
// The loop between fold and inline is a barrier in both modes.
func Optimize(ctx context.Context, mod *ir.Module, cfg Config) (*Stats, error) {
	if cfg.InlineLimit == 0 {
		cfg.InlineLimit = 16
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 4
	}
	st := &Stats{InstrsBefore: mod.NumInstrs()}
	o := &optimizer{mod: mod, tc: mod.Types, cfg: cfg, st: st}
	if cfg.Analyze {
		// Whole-program facts drive devirtualization and pure-call
		// elimination up front, so the direct calls they expose feed the
		// fold/inline rounds below.
		res, err := o.runAnalysis(ctx)
		if err != nil {
			return st, err
		}
		o.devirtualizeCG(res)
		o.elimPureCalls(res)
	}
	if err := o.rounds(ctx, mod.Funcs, nil); err != nil {
		return st, err
	}
	// Profile-guided passes run after the deterministic fold/inline
	// rounds — so the call-site ordinals counted here match the ones the
	// engine assigned when profiling the same optimized IR — and before
	// the final pure-call/promotion phase, which never moves a virtual
	// or indirect site.
	o.pgo()
	if cfg.Analyze {
		// Promote after all transformation: escape facts must describe
		// the final IR. Core re-analyzes once more and ICEs on any mark
		// it cannot re-prove (analysis.VerifyPromotions).
		res, err := o.runAnalysis(ctx)
		if err != nil {
			return st, err
		}
		o.elimPureCalls(res)
		o.promoteAllocations(res)
	}
	st.InstrsAfter = mod.NumInstrs()
	return st, nil
}

type optimizer struct {
	mod *ir.Module
	tc  *types.Cache
	cfg Config
	st  *Stats
}

// round returns the replay record for round r, clamped to the last
// recorded round: a recording that ended early did so because its last
// round changed nothing, so that round's snapshots are the final
// bodies and stay valid for every later round.
func (rec *Recording) round(r int) RoundRecord {
	if r < len(rec.Rounds) {
		return rec.Rounds[r]
	}
	if n := len(rec.Rounds); n > 0 {
		return RoundRecord{Snaps: rec.Rounds[n-1].Snaps}
	}
	return RoundRecord{}
}

// Filter drops recorded entries for functions outside keep, in place.
// Incremental compilation uses it to trim replay records of deleted
// functions, whose stale change bits would otherwise desynchronize a
// later replay's round count from a from-scratch compilation's.
func (rec *Recording) Filter(keep func(name string) bool) {
	for _, rr := range rec.Rounds {
		for n := range rr.Snaps {
			if !keep(n) {
				delete(rr.Snaps, n)
			}
		}
		for n := range rr.Changed {
			if !keep(n) {
				delete(rr.Changed, n)
			}
		}
	}
}

// OptimizeReplay re-optimizes only the dirty functions of a module
// whose clean functions were reused from a previous compilation, using
// that compilation's Recording for the clean functions' per-round
// inline snapshots and change bits. Because inlining reads only round
// snapshots, replaying the dirty subset this way produces bodies
// byte-identical to optimizing the whole module from scratch — clean
// functions never reference dirty ones (or they would be dirty
// themselves), so their recorded trajectories are exactly what a
// from-scratch run would recompute.
//
// Analysis- and profile-driven passes read whole-program state and are
// not replayable; cfg.Analyze and cfg.Profile must be off.
func OptimizeReplay(ctx context.Context, dirty []*ir.Func, tc *types.Cache, cfg Config, base *Recording) (*Stats, error) {
	if cfg.InlineLimit == 0 {
		cfg.InlineLimit = 16
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 4
	}
	if cfg.Analyze || cfg.Profile != nil {
		return nil, fmt.Errorf("opt: replay cannot run analysis- or profile-driven passes")
	}
	st := &Stats{}
	for _, f := range dirty {
		st.InstrsBefore += f.NumInstrs()
	}
	o := &optimizer{tc: tc, cfg: cfg, st: st}
	if err := o.rounds(ctx, dirty, base); err != nil {
		return st, err
	}
	for _, f := range dirty {
		st.InstrsAfter += f.NumInstrs()
	}
	return st, nil
}

// rounds runs the bounded fold/inline fixpoint over funcs. With a nil
// base this is the whole-module optimization; with a non-nil base it
// is an incremental replay where funcs is the dirty subset and base
// supplies the remaining (clean) functions' snapshots and change bits.
// Each round folds every function in parallel, snapshots the inline
// candidates, inlines every function in parallel from the frozen
// snapshots, and stops when neither the live functions nor the base's
// recorded round changed anything.
func (o *optimizer) rounds(ctx context.Context, funcs []*ir.Func, base *Recording) error {
	cfg := o.cfg
	live := make(map[string]bool, len(funcs))
	for _, f := range funcs {
		live[f.Name] = true
	}
	folded := make([]bool, len(funcs))
	inlined := make([]bool, len(funcs))
	workStats := make([]Stats, len(funcs))
	for r := 0; r < cfg.Rounds; r++ {
		if err := par.Run(ctx, "opt", cfg.Jobs, len(funcs), func(i int) error {
			w := &optimizer{mod: o.mod, tc: o.tc, cfg: cfg, st: &workStats[i]}
			folded[i] = w.foldFunc(funcs[i])
			return nil
		}); err != nil {
			// foldFunc is error-free, so any error here is a recovered
			// worker panic (an ICE) or the ctx ending mid-fan-out.
			return err
		}
		// Freeze this round's inline candidates. Inlining below reads
		// only these snapshots, so the parallel fan-out and any replay
		// see identical callee bodies regardless of processing order.
		snaps := map[string]*Snapshot{}
		for _, f := range funcs {
			if s := snapshotOf(f, cfg.InlineLimit); s != nil {
				snaps[f.Name] = s
			}
		}
		lookup := func(name string) *Snapshot {
			if live[name] {
				return snaps[name]
			}
			if base != nil {
				return base.round(r).Snaps[name]
			}
			return nil
		}
		if err := par.Run(ctx, "opt", cfg.Jobs, len(funcs), func(i int) error {
			w := &optimizer{mod: o.mod, tc: o.tc, cfg: cfg, st: &workStats[i]}
			inlined[i] = w.inlineCalls(funcs[i], lookup)
			return nil
		}); err != nil {
			return err
		}
		changed := false
		for i := range funcs {
			changed = changed || folded[i] || inlined[i]
			o.st.QueriesFolded += workStats[i].QueriesFolded
			o.st.CastsElided += workStats[i].CastsElided
			o.st.BranchesFolded += workStats[i].BranchesFolded
			o.st.InstrsRemoved += workStats[i].InstrsRemoved
			o.st.Inlined += workStats[i].Inlined
			workStats[i] = Stats{}
		}
		baseChanged := false
		if base != nil && r < len(base.Rounds) {
			for n := range base.Rounds[r].Changed {
				if !live[n] {
					baseChanged = true
					break
				}
			}
		}
		if cfg.Record != nil {
			var rec RoundRecord
			if base != nil {
				// Bulk-clone the base round's tables, then evict the live
				// (replayed) names: on the incremental path the dirty set is
				// tiny and the base tables are module-sized, so clone+delete
				// beats inserting the complement entry by entry.
				br := base.round(r)
				rec.Snaps = maps.Clone(br.Snaps)
				if r < len(base.Rounds) {
					rec.Changed = maps.Clone(base.Rounds[r].Changed)
				}
				for n := range live {
					delete(rec.Snaps, n)
					delete(rec.Changed, n)
				}
			}
			if rec.Snaps == nil {
				rec.Snaps = map[string]*Snapshot{}
			}
			if rec.Changed == nil {
				rec.Changed = map[string]bool{}
			}
			for n, s := range snaps {
				rec.Snaps[n] = s
			}
			for i, f := range funcs {
				if folded[i] || inlined[i] {
					rec.Changed[f.Name] = true
				}
			}
			cfg.Record.Rounds = append(cfg.Record.Rounds, rec)
		}
		if !changed && !baseChanged {
			break
		}
	}
	return nil
}

// snapshotOf returns a frozen copy of f's body if f is an inline
// candidate — a small single-block function ending in a return that
// never writes its own parameters — or nil. The instruction objects
// are copied (later rounds fold them in place) but registers are
// shared; splicing allocates fresh caller registers anyway.
func snapshotOf(f *ir.Func, limit int) *Snapshot {
	if len(f.Blocks) != 1 {
		return nil
	}
	body := f.Blocks[0].Instrs
	if len(body) == 0 || len(body) > limit {
		return nil
	}
	if body[len(body)-1].Op != ir.OpRet {
		return nil
	}
	params := map[*ir.Reg]bool{}
	for _, p := range f.Params {
		params[p] = true
	}
	for _, in := range body {
		for _, d := range in.Dst {
			if params[d] {
				return nil
			}
		}
	}
	s := &Snapshot{Params: f.Params, Instrs: make([]*ir.Instr, len(body))}
	for i, in := range body {
		ni := &ir.Instr{
			Op: in.Op, FieldSlot: in.FieldSlot, IVal: in.IVal,
			SVal: in.SVal, Global: in.Global, Fn: in.Fn,
			Type: in.Type, Type2: in.Type2, TypeArgs: in.TypeArgs,
			Pos: in.Pos, StackAlloc: in.StackAlloc,
		}
		ni.Dst = append([]*ir.Reg{}, in.Dst...)
		ni.Args = append([]*ir.Reg{}, in.Args...)
		s.Instrs[i] = ni
	}
	return s
}

// constVal is a known compile-time constant.
type constVal struct {
	op   ir.Op // OpConstInt, OpConstByte, OpConstBool, OpConstVoid, OpConstNull
	ival int64
}

// foldFunc runs constant folding, copy propagation, branch folding,
// unreachable-code removal and DCE on one function; reports change.
func (o *optimizer) foldFunc(f *ir.Func) bool {
	changed := false
	for pass := 0; pass < 4; pass++ {
		defCount := map[*ir.Reg]int{}
		defInstr := map[*ir.Reg]*ir.Instr{}
		for _, p := range f.Params {
			defCount[p] = 1
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				for _, d := range in.Dst {
					defCount[d]++
					defInstr[d] = in
				}
			}
		}
		consts := map[*ir.Reg]constVal{}
		copies := map[*ir.Reg]*ir.Reg{}
		for r, in := range defInstr {
			if defCount[r] != 1 {
				continue
			}
			switch in.Op {
			case ir.OpConstInt, ir.OpConstByte, ir.OpConstBool:
				consts[r] = constVal{op: in.Op, ival: in.IVal}
			case ir.OpConstVoid:
				consts[r] = constVal{op: ir.OpConstVoid}
			case ir.OpMove:
				src := in.Args[0]
				if defCount[src] == 1 {
					copies[r] = src
				}
			}
		}
		// Resolve copy chains.
		resolve := func(r *ir.Reg) *ir.Reg {
			for i := 0; i < 16; i++ {
				if s, ok := copies[r]; ok {
					r = s
				} else {
					break
				}
			}
			return r
		}
		localChanged := false
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				for k, a := range in.Args {
					if s := resolve(a); s != a {
						in.Args[k] = s
						localChanged = true
					}
				}
			}
		}
		for _, blk := range f.Blocks {
			for idx, in := range blk.Instrs {
				if o.foldInstr(f, blk, idx, in, consts) {
					localChanged = true
				}
				// A null check over a freshly allocated value can never
				// trap; dropping it unpins the allocation for DCE (the
				// devirtualizer inserts these in front of direct calls).
				if in.Op == ir.OpNullCheck {
					if def := defInstr[in.Args[0]]; def != nil && defCount[in.Args[0]] == 1 && freshNonNull(def.Op) {
						in.Op = ir.OpNop
						in.Args = nil
						localChanged = true
					}
				}
			}
		}
		if o.removeUnreachable(f) {
			localChanged = true
		}
		if o.threadJumps(f) {
			localChanged = true
		}
		if o.mergeBlocks(f) {
			localChanged = true
		}
		if o.dce(f) {
			localChanged = true
		}
		if !localChanged {
			break
		}
		changed = true
	}
	return changed
}

func constOf(consts map[*ir.Reg]constVal, r *ir.Reg) (constVal, bool) {
	c, ok := consts[r]
	return c, ok
}

// freshNonNull reports whether op always produces a non-null value.
func freshNonNull(op ir.Op) bool {
	switch op {
	case ir.OpNewObject, ir.OpMakeTuple, ir.OpMakeClosure, ir.OpMakeBound,
		ir.OpArrayNew, ir.OpConstString:
		return true
	}
	return false
}

// foldInstr rewrites one instruction in place when its result is known
// statically; reports change.
func (o *optimizer) foldInstr(f *ir.Func, blk *ir.Block, idx int, in *ir.Instr, consts map[*ir.Reg]constVal) bool {
	mkConst := func(op ir.Op, v int64) {
		in.Op = op
		in.IVal = v
		in.Args = nil
		in.Type = nil
		in.Type2 = nil
		in.Fn = nil
	}
	switch in.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl, ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor:
		a, ok1 := constOf(consts, in.Args[0])
		b, ok2 := constOf(consts, in.Args[1])
		if !ok1 || !ok2 || a.op != ir.OpConstInt || b.op != ir.OpConstInt {
			return false
		}
		x, y := int32(a.ival), int32(b.ival)
		var v int32
		switch in.Op {
		case ir.OpAdd:
			v = x + y
		case ir.OpSub:
			v = x - y
		case ir.OpMul:
			v = x * y
		case ir.OpShl:
			if y >= 0 && y <= 31 {
				v = x << uint(y)
			}
		case ir.OpShr:
			if y >= 0 && y <= 31 {
				v = int32(uint32(x) >> uint(y))
			}
		case ir.OpAnd:
			v = x & y
		case ir.OpOr:
			v = x | y
		case ir.OpXor:
			v = x ^ y
		}
		mkConst(ir.OpConstInt, int64(v))
		return true
	case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		a, ok1 := constOf(consts, in.Args[0])
		b, ok2 := constOf(consts, in.Args[1])
		if !ok1 || !ok2 {
			return false
		}
		var v bool
		switch in.Op {
		case ir.OpLt:
			v = a.ival < b.ival
		case ir.OpLe:
			v = a.ival <= b.ival
		case ir.OpGt:
			v = a.ival > b.ival
		case ir.OpGe:
			v = a.ival >= b.ival
		}
		mkConst(ir.OpConstBool, boolToInt(v))
		return true
	case ir.OpEq, ir.OpNe:
		a, ok1 := constOf(consts, in.Args[0])
		b, ok2 := constOf(consts, in.Args[1])
		if !ok1 || !ok2 || a.op != b.op {
			return false
		}
		eq := a.ival == b.ival
		if in.Op == ir.OpNe {
			eq = !eq
		}
		mkConst(ir.OpConstBool, boolToInt(eq))
		return true
	case ir.OpNot:
		a, ok := constOf(consts, in.Args[0])
		if !ok || a.op != ir.OpConstBool {
			return false
		}
		mkConst(ir.OpConstBool, boolToInt(a.ival == 0))
		return true
	case ir.OpBoolAnd, ir.OpBoolOr:
		a, ok1 := constOf(consts, in.Args[0])
		b, ok2 := constOf(consts, in.Args[1])
		if !ok1 || !ok2 {
			return false
		}
		var v bool
		if in.Op == ir.OpBoolAnd {
			v = a.ival != 0 && b.ival != 0
		} else {
			v = a.ival != 0 || b.ival != 0
		}
		mkConst(ir.OpConstBool, boolToInt(v))
		return true

	case ir.OpTypeQuery:
		return o.foldQuery(in)
	case ir.OpTypeCast:
		return o.foldCast(in)

	case ir.OpBranch:
		c, ok := constOf(consts, in.Args[0])
		if !ok || c.op != ir.OpConstBool {
			return false
		}
		target := in.Blocks[1]
		if c.ival != 0 {
			target = in.Blocks[0]
		}
		in.Op = ir.OpJump
		in.Args = nil
		in.Blocks = []*ir.Block{target}
		o.st.BranchesFolded++
		return true
	}
	return false
}

// foldQuery decides a type query statically when possible (§4.3: "The
// type queries and casts in each version can be decided statically").
// Queries against reference types stay dynamic because null fails them.
func (o *optimizer) foldQuery(in *ir.Instr) bool {
	from, to := in.Type2, in.Type
	if from == nil || to == nil || types.HasTypeParams(from) || types.HasTypeParams(to) {
		return false
	}
	fold := func(v bool) bool {
		in.Op = ir.OpConstBool
		in.IVal = boolToInt(v)
		in.Args = nil
		in.Type = nil
		in.Type2 = nil
		o.st.QueriesFolded++
		return true
	}
	fp, fprim := from.(*types.Prim)
	tp, tprim := to.(*types.Prim)
	if fprim && tprim {
		return fold(fp.Kind == tp.Kind)
	}
	if fprim != tprim {
		return fold(false)
	}
	if o.tc.Castable(from, to) == types.CastFalse {
		// Provably unrelated types can never satisfy the query.
		return fold(false)
	}
	return false
}

// foldCast elides casts that are statically guaranteed: identity casts
// and reference upcasts become moves.
func (o *optimizer) foldCast(in *ir.Instr) bool {
	from, to := in.Type2, in.Type
	if from == nil || to == nil || types.HasTypeParams(from) || types.HasTypeParams(to) {
		return false
	}
	if from == to || (types.IsRefType(to) && o.tc.IsSubtype(from, to)) {
		in.Op = ir.OpMove
		in.Type = nil
		in.Type2 = nil
		o.st.CastsElided++
		return true
	}
	return false
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// removeUnreachable drops blocks not reachable from the entry, and
// truncates instructions after a terminator.
func (o *optimizer) removeUnreachable(f *ir.Func) bool {
	if len(f.Blocks) == 0 {
		return false
	}
	changed := false
	for _, blk := range f.Blocks {
		for i, in := range blk.Instrs {
			if in.Op.IsTerminator() && i != len(blk.Instrs)-1 {
				blk.Instrs = blk.Instrs[:i+1]
				changed = true
				break
			}
		}
	}
	seen := map[*ir.Block]bool{f.Blocks[0]: true}
	work := []*ir.Block{f.Blocks[0]}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		if t := blk.Terminator(); t != nil {
			for _, nb := range t.Blocks {
				if !seen[nb] {
					seen[nb] = true
					work = append(work, nb)
				}
			}
		}
	}
	var kept []*ir.Block
	for _, blk := range f.Blocks {
		if seen[blk] {
			kept = append(kept, blk)
		} else {
			changed = true
		}
	}
	f.Blocks = kept
	return changed
}

// threadJumps retargets terminators that point at blocks containing
// only a jump.
func (o *optimizer) threadJumps(f *ir.Func) bool {
	changed := false
	for _, blk := range f.Blocks {
		t := blk.Terminator()
		if t == nil {
			continue
		}
		for k, target := range t.Blocks {
			for hops := 0; hops < 8; hops++ {
				if len(target.Instrs) != 1 || target.Instrs[0].Op != ir.OpJump {
					break
				}
				next := target.Instrs[0].Blocks[0]
				if next == target {
					break
				}
				target = next
				t.Blocks[k] = next
				changed = true
			}
		}
	}
	return changed
}

// mergeBlocks splices a block into its unique jumping predecessor, so
// that folded branch chains collapse into straight-line code (and
// become inlinable).
func (o *optimizer) mergeBlocks(f *ir.Func) bool {
	changed := false
	for {
		preds := map[*ir.Block]int{}
		for _, b := range f.Blocks {
			if t := b.Terminator(); t != nil {
				for _, nb := range t.Blocks {
					preds[nb]++
				}
			}
		}
		merged := false
		for _, b := range f.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != ir.OpJump {
				continue
			}
			nb := t.Blocks[0]
			if nb == b || preds[nb] != 1 || nb == f.Blocks[0] {
				continue
			}
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], nb.Instrs...)
			nb.Instrs = nil
			merged = true
			changed = true
			break
		}
		if !merged {
			break
		}
		var kept []*ir.Block
		for _, b := range f.Blocks {
			if len(b.Instrs) > 0 {
				kept = append(kept, b)
			}
		}
		f.Blocks = kept
	}
	return changed
}

// pureOp reports whether an instruction can be removed when its results
// are unused.
func pureOp(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpConstInt, ir.OpConstByte, ir.OpConstBool, ir.OpConstVoid,
		ir.OpConstNull, ir.OpConstString, ir.OpMove,
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl, ir.OpShr, ir.OpAnd,
		ir.OpOr, ir.OpXor, ir.OpNeg, ir.OpNot, ir.OpBoolAnd, ir.OpBoolOr,
		ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpEq, ir.OpNe,
		ir.OpMakeTuple, ir.OpTupleGet, ir.OpMakeClosure, ir.OpTypeQuery,
		ir.OpGlobalLoad, ir.OpConstEnum, ir.OpEnumTag, ir.OpEnumName:
		return true
	}
	return false
}

// dce removes pure instructions whose destinations are never used.
func (o *optimizer) dce(f *ir.Func) bool {
	changed := false
	for {
		used := map[*ir.Reg]bool{}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				for _, a := range in.Args {
					used[a] = true
				}
			}
		}
		removed := false
		for _, blk := range f.Blocks {
			var kept []*ir.Instr
			for _, in := range blk.Instrs {
				if in.Op == ir.OpNop && len(in.Dst) == 0 {
					removed = true
					o.st.InstrsRemoved++
					continue
				}
				dead := pureOp(in) && len(in.Dst) > 0
				if dead {
					for _, d := range in.Dst {
						if used[d] {
							dead = false
							break
						}
					}
				}
				if dead {
					removed = true
					o.st.InstrsRemoved++
					continue
				}
				kept = append(kept, in)
			}
			blk.Instrs = kept
		}
		if !removed {
			break
		}
		changed = true
	}
	return changed
}

// inlineCalls splices small single-block callees into their callers
// (§3.3: "which the compiler may then inline"). Callee bodies come
// from lookup — the round's frozen snapshots — never from live
// functions, so the result is independent of inlining order.
func (o *optimizer) inlineCalls(f *ir.Func, lookup func(name string) *Snapshot) bool {
	changed := false
	for _, blk := range f.Blocks {
		var out []*ir.Instr
		for _, in := range blk.Instrs {
			var snap *Snapshot
			if in.Op == ir.OpCallStatic && in.Fn != nil && in.Fn.Name != f.Name {
				snap = lookup(in.Fn.Name)
			}
			if snap == nil {
				out = append(out, in)
				continue
			}
			regMap := map[*ir.Reg]*ir.Reg{}
			for k, p := range snap.Params {
				regMap[p] = in.Args[k]
			}
			mapReg := func(r *ir.Reg) *ir.Reg {
				if nr, ok := regMap[r]; ok {
					return nr
				}
				nr := f.NewReg(r.Type, r.Name)
				regMap[r] = nr
				return nr
			}
			body := snap.Instrs
			for _, ci := range body[:len(body)-1] {
				ni := &ir.Instr{
					Op: ci.Op, FieldSlot: ci.FieldSlot, IVal: ci.IVal,
					SVal: ci.SVal, Global: ci.Global, Fn: ci.Fn,
					Type: ci.Type, Type2: ci.Type2, TypeArgs: ci.TypeArgs,
					Pos: ci.Pos, StackAlloc: ci.StackAlloc,
				}
				for _, d := range ci.Dst {
					ni.Dst = append(ni.Dst, mapReg(d))
				}
				for _, a := range ci.Args {
					ni.Args = append(ni.Args, mapReg(a))
				}
				out = append(out, ni)
			}
			ret := body[len(body)-1]
			for k, d := range in.Dst {
				if k < len(ret.Args) {
					out = append(out, &ir.Instr{Op: ir.OpMove, Dst: []*ir.Reg{d}, Args: []*ir.Reg{mapReg(ret.Args[k])}})
				}
			}
			o.st.Inlined++
			changed = true
		}
		blk.Instrs = out
	}
	return changed
}

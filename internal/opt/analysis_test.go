package opt

import (
	"context"
	"testing"

	"repro/internal/ir"
	"repro/internal/testprogs"
)

// Tests for the analysis-driven passes: indirect-call devirtualization,
// pure-call elimination and CSE, and stack promotion. The cheaper
// structural passes are covered in opt_test.go and devirt_test.go.

func TestDevirtualizeIndirectUniqueClosure(t *testing.T) {
	mod := compileNorm(t, `
def f(x: int) -> int { return x + 5; }
def call(g: int -> int) -> int { return g(2); }
def main() { System.puti(call(f)); }
`)
	st, _ := Optimize(context.Background(), mod, Config{Analyze: true})
	if st.DevirtIndirect == 0 {
		t.Error("the only closure ever taken is f; the indirect call should devirtualize")
	}
	if got := run(t, mod); got != "7" {
		t.Fatalf("got %q, want \"7\"", got)
	}
}

func TestNoDevirtualizeIndirectAmbiguous(t *testing.T) {
	mod := compileNorm(t, `
class C {
	var v: int;
	new(v) { }
	def m(x: int) -> int { return v + x; }
}
def f(x: int) -> int { return x + 5; }
def call(g: int -> int) -> int { return g(2); }
def main() {
	var c = C.new(1);
	System.puti(call(f) + call(c.m));
}
`)
	st, _ := Optimize(context.Background(), mod, Config{Analyze: true})
	if st.DevirtIndirect != 0 {
		t.Errorf("two candidate targets (closure f, bound C.m) — devirtualized %d sites", st.DevirtIndirect)
	}
	if got := run(t, mod); got != "10" {
		t.Fatalf("got %q, want \"10\"", got)
	}
}

func TestPureCallElimination(t *testing.T) {
	// pure is multi-block so the inliner leaves the call for the
	// pure-call pass to delete (single-block callees inline away first,
	// which eliminates the call by other means).
	mod := compileNorm(t, `
def pure(a: int) -> int {
	if (a > 0) return a * 2;
	return 0 - a;
}
def main() {
	var unused = pure(21);
	System.puti(7);
}
`)
	st, _ := Optimize(context.Background(), mod, Config{Analyze: true})
	if st.PureCallsRemoved == 0 {
		t.Error("the unused pure call should be deleted")
	}
	if got := run(t, mod); got != "7" {
		t.Fatalf("got %q, want \"7\"", got)
	}
}

func TestNoElimImpureCall(t *testing.T) {
	mod := compileNorm(t, `
def loud(a: int) -> int { System.puti(a); return a * 2; }
def main() {
	var unused = loud(9);
	System.puti(7);
}
`)
	st, _ := Optimize(context.Background(), mod, Config{Analyze: true})
	if st.PureCallsRemoved != 0 {
		t.Errorf("loud prints; removed %d calls", st.PureCallsRemoved)
	}
	if got := run(t, mod); got != "97" {
		t.Fatalf("got %q, want \"97\"", got)
	}
}

func TestPureCallCSE(t *testing.T) {
	// Multi-block so the calls survive inlining; see above.
	mod := compileNorm(t, `
def sq(a: int) -> int {
	if (a > 0) return a * a + 1;
	return 0;
}
def main() {
	var x = sq(9);
	var y = sq(9);
	System.puti(x + y);
}
`)
	st, _ := Optimize(context.Background(), mod, Config{Analyze: true})
	if st.PureCallsCSEd == 0 {
		t.Error("two identical deterministic calls in one block should CSE")
	}
	if got := run(t, mod); got != "164" {
		t.Fatalf("got %q, want \"164\"", got)
	}
}

func TestStackPromotion(t *testing.T) {
	mod := compileNorm(t, `
class P {
	var x: int;
	var y: int;
	new(x, y) { }
	def sum() -> int { return x + y; }
}
def main() {
	var p = P.new(3, 4);
	System.puti(p.sum());
}
`)
	st, _ := Optimize(context.Background(), mod, Config{Analyze: true})
	if st.StackPromoted == 0 {
		t.Error("the frame-local object should be stack-promoted once the allocator inlines")
	}
	promoted := 0
	for _, f := range mod.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.StackAlloc {
					promoted++
					if !promotableOp(in.Op) {
						t.Errorf("non-promotable op %v carries StackAlloc", in.Op)
					}
				}
			}
		}
	}
	if promoted != st.StackPromoted {
		t.Errorf("stats say %d promotions, IR carries %d marks", st.StackPromoted, promoted)
	}
	if got := run(t, mod); got != "7" {
		t.Fatalf("got %q, want \"7\"", got)
	}
}

// promotableOp spells out which ops may legally carry the StackAlloc
// mark, independent of analysis.Promotable, so a drift in either list
// fails here.
func promotableOp(op ir.Op) bool {
	switch op {
	case ir.OpNewObject, ir.OpMakeTuple, ir.OpMakeClosure, ir.OpMakeBound:
		return true
	}
	return false
}

func TestNoPromotionForEscaping(t *testing.T) {
	mod := compileNorm(t, `
class Node {
	var next: Node;
	var v: int;
	new(next, v) { }
}
def build(n: int) -> Node {
	var head: Node;
	for (i = 0; i < n; i++) head = Node.new(head, i);
	return head;
}
def main() {
	var h = build(3);
	System.puti(h.v);
}
`)
	st, _ := Optimize(context.Background(), mod, Config{Analyze: true})
	for _, f := range mod.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.OpNewObject && in.StackAlloc {
					t.Errorf("escaping Node allocation promoted in %s", f.Name)
				}
			}
		}
	}
	_ = st
	if got := run(t, mod); got != "2" {
		t.Fatalf("got %q, want \"2\"", got)
	}
}

// TestCorpusPreservedWithAnalysis: the analysis-driven passes preserve
// observable behaviour over the whole corpus at the opt layer (the
// core-level differential covers both engines; this pins the IR
// interpreter path with stats available for inspection).
func TestCorpusPreservedWithAnalysis(t *testing.T) {
	for _, p := range testprogs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			mod := compileNorm(t, p.Source)
			if _, err := Optimize(context.Background(), mod, Config{Analyze: true}); err != nil {
				t.Fatal(err)
			}
			if err := mod.Validate(); err != nil {
				t.Fatalf("invalid IR after analysis-driven optimization: %v", err)
			}
			if got := run(t, mod); got != p.Want {
				t.Fatalf("got %q, want %q", got, p.Want)
			}
		})
	}
}

package opt

import (
	"context"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/testprogs"
)

// TestDevirtualizeUniqueTarget: a method with no overriding subclass
// becomes a direct call (and can then inline).
func TestDevirtualizeUniqueTarget(t *testing.T) {
	mod := compileNorm(t, `
class A {
	def m() -> int { return 7; }
}
def main() {
	var a = A.new();
	System.puti(a.m());
}
`)
	st, _ := Optimize(context.Background(), mod, Config{Analyze: true})
	if st.Devirtualized == 0 {
		t.Error("expected the unique-target call to devirtualize")
	}
	if got := run(t, mod); got != "7" {
		t.Fatalf("got %q", got)
	}
	for _, f := range mod.Funcs {
		if f.Name != "main" {
			continue
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.OpCallVirtual {
					t.Error("virtual call survived devirtualization")
				}
			}
		}
	}
}

// TestNoDevirtualizeWithOverride: overridden methods keep dynamic
// dispatch and behave correctly.
func TestNoDevirtualizeWithOverride(t *testing.T) {
	mod := compileNorm(t, `
class A { def m() -> int { return 1; } }
class B extends A { def m() -> int { return 2; } }
def pick(z: bool) -> A {
	if (z) return A.new();
	return B.new();
}
def main() {
	System.puti(pick(true).m());
	System.puti(pick(false).m());
}
`)
	Optimize(context.Background(), mod, Config{Analyze: true})
	if got := run(t, mod); got != "12" {
		t.Fatalf("got %q", got)
	}
}

// TestDevirtualizedNullCheck: the null check of virtual dispatch is
// preserved when the call goes direct. The class must be instantiated
// somewhere — RTA refuses to devirtualize a never-instantiated
// receiver type — but the receiver reaching the call is still null.
func TestDevirtualizedNullCheck(t *testing.T) {
	mod := compileNorm(t, `
class A { def m() -> int { return 1; } }
def mk(z: bool) -> A {
	if (z) return A.new();
	var a: A;
	return a;
}
def main() {
	System.puti(mk(false).m());
}
`)
	st, _ := Optimize(context.Background(), mod, Config{Analyze: true})
	if st.Devirtualized == 0 {
		t.Fatal("expected devirtualization")
	}
	var out []byte
	_ = out
	// Run and expect the null check to fire.
	if err := runErr(mod); err == nil || !contains(err.Error(), "!NullCheckException") {
		t.Fatalf("want !NullCheckException, got %v", err)
	}
}

// TestDevirtSubclassUniqueInherited: a call through the subclass type
// where only the parent implements is also unique.
func TestDevirtSubclassUniqueInherited(t *testing.T) {
	mod := compileNorm(t, `
class A { def m() -> int { return 3; } }
class B extends A { }
def main() {
	var b = B.new();
	System.puti(b.m());
}
`)
	st, _ := Optimize(context.Background(), mod, Config{Analyze: true})
	if st.Devirtualized == 0 {
		t.Error("inherited unique method should devirtualize")
	}
	if got := run(t, mod); got != "3" {
		t.Fatalf("got %q", got)
	}
}

// TestCorpusPreservedWithDevirt re-runs the corpus (devirt is in the
// default pass list, but make the intent explicit here).
func TestCorpusPreservedWithDevirt(t *testing.T) {
	for _, name := range []string{"variants_n", "override_ambiguity_p", "matcher_km", "components"} {
		p := testprogs.Get(name)
		mod := compileNorm(t, p.Source)
		Optimize(context.Background(), mod, Config{Analyze: true})
		if err := mod.Validate(); err != nil {
			t.Fatalf("%s: invalid IR: %v", name, err)
		}
		if got := run(t, mod); got != p.Want {
			t.Fatalf("%s: got %q, want %q", name, got, p.Want)
		}
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

func runErr(mod *ir.Module) error {
	it := interp.New(mod, interp.Options{})
	_, err := it.Run()
	return err
}

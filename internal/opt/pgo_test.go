package opt

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profile"
)

// The profile-guided passes are tested the way they deploy: compile
// and optimize once, run under the profiling engine, then optimize a
// fresh module of the same source with the recorded profile — the
// tier-up recompile. Plus the adversarial cases: corrupted and garbage
// profiles must never change observable behavior.

// specSource has a virtual site RTA cannot devirtualize (both A and B
// are instantiated and both override m), but whose runtime receivers
// are overwhelmingly the leaf class B — the speculative case.
const specSource = `
class A { def m() -> int { return 1; } }
class B extends A { def m() -> int { return 2; } }
def poll(x: A) -> int { return x.m(); }
def main() {
	var i = 0;
	var s = 0;
	var a = A.new();
	var b: A = B.new();
	s = s + poll(a);
	while (i < 100) { s = s + poll(b); i = i + 1; }
	System.puti(s);
}
`

// recordProfile optimizes mod (in place), runs it under the profiling
// bytecode engine, and returns the recorded profile and the output.
func recordProfile(t *testing.T, mod *ir.Module, cfg Config) (*profile.Profile, string) {
	t.Helper()
	if _, err := Optimize(context.Background(), mod, cfg); err != nil {
		t.Fatal(err)
	}
	p := engine.Compile(mod)
	var out strings.Builder
	e := engine.New(p, interp.Options{Out: &out, Profile: true})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Profile(), out.String()
}

func TestSpecDevirtTierUp(t *testing.T) {
	cfg := Config{Analyze: true}
	mod1 := compileNorm(t, specSource)
	prof, want := recordProfile(t, mod1, cfg)
	if want != "201" {
		t.Fatalf("baseline output %q, want 201", want)
	}

	// Tier-up recompile: fresh module, same source, profile attached.
	mod2 := compileNorm(t, specSource)
	cfg.Profile = prof
	st, err := Optimize(context.Background(), mod2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.SpecDevirt == 0 {
		t.Fatal("hot leaf-class site did not speculate")
	}
	if err := mod2.Verify(); err != nil {
		t.Fatalf("speculated module fails verification: %v", err)
	}
	if got := run(t, mod2); got != want {
		t.Fatalf("tiered output %q != untiered %q", got, want)
	}
	// The engine agrees with the reference interpreter on the tiered IR.
	var out strings.Builder
	e := engine.New(engine.Compile(mod2), interp.Options{Out: &out})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != want {
		t.Fatalf("engine tiered output %q != %q", out.String(), want)
	}
}

// TestSpecDevirtRejectsOverriddenBase: when the observed class has an
// instantiated overriding subclass, the subtype guard could not
// distinguish them, so the site must not speculate.
func TestSpecDevirtRejectsOverriddenBase(t *testing.T) {
	src := `
class A { def m() -> int { return 1; } }
class B extends A { def m() -> int { return 2; } }
def poll(x: A) -> int { return x.m(); }
def main() {
	var i = 0;
	var s = 0;
	var a = A.new();
	var b: A = B.new();
	s = s + poll(b);
	while (i < 100) { s = s + poll(a); i = i + 1; }
	System.puti(s);
}
`
	cfg := Config{Analyze: true}
	mod1 := compileNorm(t, src)
	prof, want := recordProfile(t, mod1, cfg)

	mod2 := compileNorm(t, src)
	cfg.Profile = prof
	st, err := Optimize(context.Background(), mod2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.SpecDevirt != 0 {
		t.Fatalf("speculated %d sites on a base class with a live override", st.SpecDevirt)
	}
	if got := run(t, mod2); got != want {
		t.Fatalf("output %q != %q", got, want)
	}
}

// TestStaleProfileGuardsFallThrough is the adversarial case: a profile
// whose observed class is flatly wrong for what actually flows at
// runtime. Compilation must succeed, the speculation may well apply —
// and every guard then fails at runtime, landing in the original
// dispatch with identical output.
func TestStaleProfileGuardsFallThrough(t *testing.T) {
	// All receivers are A at runtime; B exists so RTA keeps the site
	// polymorphic and so the lying profile names a real class.
	src := `
class A { def m() -> int { return 1; } }
class B extends A { def m() -> int { return 2; } }
def poll(x: A) -> int { return x.m(); }
def main() {
	var i = 0;
	var s = 0;
	var a = A.new();
	var b: A = B.new();
	if (s > 1000) { s = s + poll(b); }
	while (i < 100) { s = s + poll(a); i = i + 1; }
	System.puti(s);
}
`
	cfg := Config{Analyze: true}
	mod1 := compileNorm(t, src)
	prof, want := recordProfile(t, mod1, cfg)

	// Corrupt the profile: every monomorphic virtual site now claims it
	// observed B dispatching to B.m.
	corrupted := 0
	for _, f := range prof.Funcs {
		for _, s := range f.Sites {
			if s.Kind == profile.SiteVirtual && s.Monomorphic() {
				s.Class, s.Callee = "B", "B.m"
				corrupted++
			}
		}
	}
	if corrupted == 0 {
		t.Fatal("no monomorphic virtual site to corrupt; test is vacuous")
	}

	mod2 := compileNorm(t, src)
	cfg.Profile = prof
	st, err := Optimize(context.Background(), mod2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.SpecDevirt == 0 {
		t.Fatal("the lying profile passed module checks and should speculate")
	}
	if err := mod2.Verify(); err != nil {
		t.Fatalf("speculated module fails verification: %v", err)
	}
	if got := run(t, mod2); got != want {
		t.Fatalf("stale-profile output %q != %q (guards must fall through)", got, want)
	}
	var out strings.Builder
	e := engine.New(engine.Compile(mod2), interp.Options{Out: &out})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != want {
		t.Fatalf("engine stale-profile output %q != %q", out.String(), want)
	}
}

// TestGarbageProfileIsIgnored: unknown functions, nonexistent classes,
// and out-of-range ordinals must all skip cleanly.
func TestGarbageProfileIsIgnored(t *testing.T) {
	prof := profile.New()
	pf := prof.FuncFor("no_such_function")
	pf.Calls = 1000
	s := pf.Site(0)
	s.Kind = profile.SiteVirtual
	s.Hits, s.Installs = 1000, 1
	s.Class, s.Callee = "NoSuchClass", "NoSuchClass.m"
	pm := prof.FuncFor("poll")
	pm.Calls = 1000
	s2 := pm.Site(99) // ordinal far past any real site
	s2.Kind = profile.SiteVirtual
	s2.Hits, s2.Installs = 1000, 1
	s2.Class, s2.Callee = "A", "A.m"

	mod := compileNorm(t, specSource)
	st, err := Optimize(context.Background(), mod, Config{Analyze: true, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if st.SpecDevirt != 0 {
		t.Fatalf("garbage profile speculated %d sites", st.SpecDevirt)
	}
	if err := mod.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := run(t, mod); got != "201" {
		t.Fatalf("got %q, want 201", got)
	}
}

// TestHotInlineRaisedBudget: a callee too big for the conservative
// limit splices into a profile-hot loop under the raised budget.
func TestHotInlineRaisedBudget(t *testing.T) {
	src := `
def big(x: int) -> int {
	var a = x * 3 + 1;
	var b = a * 2 - 4;
	var c = b * 5 + a;
	var d = c * 7 - b;
	var e = d * 11 + c;
	var f = e * 13 - d;
	var g = f * 17 + e;
	var h = g * 19 - f;
	return h + g + f + e + d + c + b + a;
}
def main() {
	var i = 0;
	var s = 0;
	while (i < 500) { s = s + big(i); i = i + 1; }
	System.puti(s);
}
`
	cfg := Config{Analyze: true}
	mod1 := compileNorm(t, src)
	prof, want := recordProfile(t, mod1, cfg)

	mod2 := compileNorm(t, src)
	cfg.Profile = prof
	st, err := Optimize(context.Background(), mod2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.HotInlined == 0 {
		t.Skip("big() fit the default budget; raise the callee size if this trips")
	}
	if err := mod2.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := run(t, mod2); got != want {
		t.Fatalf("hot-inlined output %q != %q", got, want)
	}
}

package opt

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// The analysis-driven passes. They replace the old local-only
// devirtualization heuristic (which saw only the class hierarchy, not
// which classes the program instantiates, and could not resolve
// indirect calls at all) with facts from the whole-program call graph,
// and add two passes the local heuristic could never support:
// elimination of calls to provably pure functions whose results are
// unused, and stack promotion of allocations that never escape their
// frame.

// devirtualizeCG binds call sites with exactly one possible runtime
// target to direct calls, using the RTA call graph: virtual sites
// resolve over instantiated subclasses only, and indirect sites (a
// first-class function value invoked) resolve over the taken-closure
// set. Both keep the implicit null check of the original dispatch.
// Only sound after monomorphization: before it, one IR class stands
// for every instantiation and vtable identity is not meaningful.
func (o *optimizer) devirtualizeCG(res *analysis.Result) bool {
	if !o.mod.Monomorphic {
		return false
	}
	changed := false
	for _, f := range o.mod.Funcs {
		node := res.CallGraph.NodeFor(f)
		if node == nil {
			continue
		}
		for _, blk := range f.Blocks {
			var out []*ir.Instr
			for _, in := range blk.Instrs {
				ts, resolved := node.Sites[in], false
				if t, ok := node.Sites[in]; ok && t != nil {
					resolved = true
					ts = t
				}
				uniqueIndirect, okIndirect := (*ir.Func)(nil), false
				if in.Op == ir.OpCallIndirect && resolved {
					uniqueIndirect, okIndirect = res.CallGraph.UniqueIndirectTarget(len(in.Args) - 1)
				}
				switch {
				case in.Op == ir.OpCallVirtual && resolved && len(ts) == 1 &&
					len(ts[0].Params) == len(in.Args):
					// The virtual dispatch null-checked the receiver; keep
					// that trap.
					out = append(out, &ir.Instr{Op: ir.OpNullCheck, Args: []*ir.Reg{in.Args[0]}, Pos: in.Pos})
					out = append(out, &ir.Instr{
						Op: ir.OpCallStatic, Dst: in.Dst, Fn: ts[0],
						Args: in.Args, Pos: in.Pos,
					})
					o.st.Devirtualized++
					changed = true
				case okIndirect:
					// Invoking a null function value traps; keep that trap.
					// Args[0] is the closure, the rest are the values.
					out = append(out, &ir.Instr{Op: ir.OpNullCheck, Args: []*ir.Reg{in.Args[0]}, Pos: in.Pos})
					out = append(out, &ir.Instr{
						Op: ir.OpCallStatic, Dst: in.Dst, Fn: uniqueIndirect,
						Args: in.Args[1:], Pos: in.Pos,
					})
					o.st.DevirtIndirect++
					changed = true
				default:
					out = append(out, in)
				}
			}
			blk.Instrs = out
		}
	}
	return changed
}

// elimPureCalls removes static calls to pure functions whose results
// are all unused, and merges repeated deterministic calls with
// identical arguments inside a block (a conservative, local CSE). Both
// rely on the interprocedural effect summaries: "pure" here means no
// observable action, no trap, and guaranteed termination, so deleting
// the call can only reduce the modeled heap/step meters — exactly the
// change the analysis-off differential is built to tolerate.
func (o *optimizer) elimPureCalls(res *analysis.Result) bool {
	changed := false
	for _, f := range o.mod.Funcs {
		// used / defCount over the whole function: a register IR is not
		// SSA, so CSE and dead-call checks must see every definition.
		used := map[*ir.Reg]bool{}
		defCount := map[*ir.Reg]int{}
		defInstr := map[*ir.Reg]*ir.Instr{}
		for _, p := range f.Params {
			defCount[p]++
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				for _, a := range in.Args {
					used[a] = true
				}
				for _, d := range in.Dst {
					defCount[d]++
					defInstr[d] = in
				}
			}
		}
		singleDef := func(r *ir.Reg) bool { return defCount[r] == 1 }
		for _, blk := range f.Blocks {
			seen := map[string]*ir.Instr{}
			var out []*ir.Instr
			for _, in := range blk.Instrs {
				if in.Op != ir.OpCallStatic || in.Fn == nil {
					out = append(out, in)
					continue
				}
				facts := res.FactsFor(in.Fn)
				if facts == nil {
					out = append(out, in)
					continue
				}
				// Dead pure call: no result is ever read.
				if facts.Effects.Pure() {
					dead := true
					for _, d := range in.Dst {
						if used[d] {
							dead = false
							break
						}
					}
					if dead {
						o.st.PureCallsRemoved++
						changed = true
						continue
					}
				}
				// Local CSE of deterministic calls. Sound only when the
				// key registers are single-definition, so their values
				// cannot differ between the two sites.
				if facts.Effects.Deterministic() && len(in.TypeArgs) == 0 {
					ok := true
					for _, a := range in.Args {
						if !singleDef(a) {
							ok = false
							break
						}
					}
					if ok {
						key := cseKey(in, defCount, defInstr)
						if prev, dup := seen[key]; dup && len(prev.Dst) == len(in.Dst) && prevDstsSingle(prev, defCount) {
							for k, d := range in.Dst {
								out = append(out, &ir.Instr{
									Op: ir.OpMove, Dst: []*ir.Reg{d},
									Args: []*ir.Reg{prev.Dst[k]}, Pos: in.Pos,
								})
							}
							o.st.PureCallsCSEd++
							changed = true
							continue
						}
						seen[key] = in
					}
				}
				out = append(out, in)
			}
			blk.Instrs = out
		}
	}
	return changed
}

func prevDstsSingle(in *ir.Instr, defCount map[*ir.Reg]int) bool {
	for _, d := range in.Dst {
		if defCount[d] != 1 {
			return false
		}
	}
	return true
}

// cseKey identifies a deterministic call by target and arguments.
// Single-definition registers holding a scalar constant key by their
// value — two materializations of the same literal are interchangeable
// even though they are distinct registers — everything else keys by
// register identity.
func cseKey(in *ir.Instr, defCount map[*ir.Reg]int, defInstr map[*ir.Reg]*ir.Instr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%p", in.Fn)
	for _, a := range in.Args {
		if def := defInstr[a]; def != nil && defCount[a] == 1 {
			switch def.Op {
			case ir.OpConstInt, ir.OpConstByte, ir.OpConstBool, ir.OpConstEnum:
				fmt.Fprintf(&b, ",%s:%d", def.Op, def.IVal)
				continue
			case ir.OpConstVoid:
				b.WriteString(",void")
				continue
			}
		}
		fmt.Fprintf(&b, ",%d", a.ID)
	}
	return b.String()
}

// promoteAllocations marks non-escaping statically-sized allocations
// StackAlloc, so both engines skip their modeled heap charge. res must
// be a fresh analysis of the module in its final shape — core re-runs
// the analysis once more afterwards and ICEs if any mark cannot be
// re-proven (analysis.VerifyPromotions).
func (o *optimizer) promoteAllocations(res *analysis.Result) {
	for _, f := range o.mod.Funcs {
		facts := res.FactsFor(f)
		if facts == nil {
			continue
		}
		for _, in := range facts.NonEscaping {
			if analysis.Promotable(in) && !in.StackAlloc {
				in.StackAlloc = true
				o.st.StackPromoted++
			}
		}
	}
}

// runAnalysis is the optimizer's entry to the analysis stack.
func (o *optimizer) runAnalysis(ctx context.Context) (*analysis.Result, error) {
	return analysis.Analyze(ctx, o.mod, analysis.Config{Jobs: o.cfg.Jobs})
}

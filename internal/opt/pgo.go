package opt

import (
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/types"
)

// The profile-guided passes. A runtime profile (package profile) names
// functions, inline-cache call sites, and branches by deterministic
// per-function ordinals, so a profile recorded by one process can steer
// a fresh compilation of the same source in another. Profiles are
// advisory by construction: every fact is either re-proven against the
// module or guarded at runtime, so a stale or adversarially wrong
// profile can cost speed, never correctness.
//
// Two passes run when Config.Profile is set:
//
//   - speculative devirtualization: a virtual call site the profile saw
//     dispatch overwhelmingly to one receiver class C splits into a
//     guarded fast path — "if recv is-a C, call C's method directly,
//     else fall through to the original dynamic dispatch". The guard is
//     an ordinary type query, the fall-through arm is the original
//     OpCallVirtual, so semantics are byte-identical on every receiver
//     (including null, which fails the query and reaches the virtual
//     call's own null check). There is no deoptimization machinery to
//     get wrong: a missed guard is just the slow path.
//
//   - hot inlining: functions the profile marks hot get a second
//     inlining round with a raised size budget, so the speculative
//     direct calls (and any other calls the conservative first rounds
//     declined) can splice in where the time is actually spent.
//
// Indirect call sites are profiled but never speculated: the IR has no
// closure-identity test to guard them with, and inventing one would add
// an opcode both engines must model. The call graph's unique-target
// devirtualization (devirtualizeCG) already binds the provable cases.

// hotInlineLimit is the raised callee-size budget for functions the
// profile marks hot: four times the default conservative limit.
const hotInlineLimit = 64

// pgo runs the profile-guided passes. Called after the fold/inline
// rounds so the ordinals counted here match the ordinals the engine
// assigned when it profiled the same deterministically-optimized IR,
// and before the final pure-call/promotion phase (which never moves a
// virtual or indirect call site).
func (o *optimizer) pgo() {
	prof := o.cfg.Profile
	if prof == nil || prof.Empty() || !o.mod.Monomorphic || !o.mod.Normalized {
		return
	}
	names := profile.Names(o.mod)
	funcSet := make(map[*ir.Func]bool, len(o.mod.Funcs))
	for _, f := range o.mod.Funcs {
		funcSet[f] = true
	}
	for _, f := range o.mod.Funcs {
		if pf := prof.Funcs[names[f]]; pf != nil {
			o.specDevirt(f, pf, funcSet)
		}
	}
	o.inlineHot(prof, names)
}

// specDevirt gives every profitable monomorphic virtual site in f a
// guarded speculative fast path. Site ordinals are counted on the
// unmodified function first — rewrites insert new blocks and clone
// nothing, so a single pre-pass scan pins down every candidate before
// the CFG changes under it.
func (o *optimizer) specDevirt(f *ir.Func, pf *profile.Func, funcSet map[*ir.Func]bool) {
	type cand struct {
		in     *ir.Instr
		cls    *ir.Class
		target *ir.Func
	}
	var cands []cand
	ord := 0
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.OpCallVirtual:
				if site := pf.SiteAt(ord); site.Monomorphic() && site.Kind == profile.SiteVirtual {
					if cls, target, ok := o.speculable(in, site, funcSet); ok {
						cands = append(cands, cand{in, cls, target})
					}
				}
				ord++
			case ir.OpCallIndirect:
				// Counted (the engine numbers these sites too) but never
				// speculated: no closure-identity guard exists in the IR.
				ord++
			}
		}
	}
	for _, c := range cands {
		o.applySpecDevirt(f, c.in, c.cls, c.target)
	}
}

// speculable re-proves a profile site fact against the module: the
// observed class must exist and still resolve the slot to the observed
// callee, every instantiated subclass that would pass the subtype guard
// must dispatch to the same target, and the direct call must satisfy
// exactly the signature rules the verifier enforces for OpCallStatic.
// Any mismatch — a stale profile, a renamed class, shifted ordinals —
// skips the site.
func (o *optimizer) speculable(in *ir.Instr, site *profile.Site, funcSet map[*ir.Func]bool) (*ir.Class, *ir.Func, bool) {
	cls := o.classByName(site.Class)
	if cls == nil || cls.Type == nil {
		return nil, nil, false
	}
	slot := in.FieldSlot
	if slot < 0 || slot >= len(cls.Vtable) {
		return nil, nil, false
	}
	target := cls.Vtable[slot]
	if target == nil || target.Name != site.Callee || !funcSet[target] {
		return nil, nil, false
	}
	if len(target.TypeParams) > 0 || len(in.TypeArgs) > 0 {
		return nil, nil, false
	}
	if len(in.Args) == 0 || len(in.Args) != len(target.Params) {
		return nil, nil, false
	}
	// The guard is a subtype query, so any instantiated subclass of cls
	// passes it; all of them must resolve the slot to the same target.
	for _, d := range o.mod.Classes {
		if d.IsSubclassOf(cls) && (slot >= len(d.Vtable) || d.Vtable[slot] != target) {
			return nil, nil, false
		}
	}
	// The fast arm casts the receiver to cls and calls target directly;
	// everything must line up under the verifier's assignability rules.
	if !o.assignableTo(cls.Type, target.Params[0].Type) {
		return nil, nil, false
	}
	for i := 1; i < len(in.Args); i++ {
		if !o.assignableTo(in.Args[i].Type, target.Params[i].Type) {
			return nil, nil, false
		}
	}
	if len(in.Dst) != len(target.Results) {
		return nil, nil, false
	}
	for i, r := range target.Results {
		if !o.assignableTo(r, in.Dst[i].Type) {
			return nil, nil, false
		}
	}
	return cls, target, true
}

// applySpecDevirt splits the site's block around the call:
//
//	B:    ...pre...                     B:    ...pre...
//	      dst = call.virtual #s recv →        q = query recv is-a C
//	      ...post...                          branch q fast slow
//	                                    fast: rc = cast recv to C
//	                                          dst = call C.m rc ...
//	                                          jump cont
//	                                    slow: dst = call.virtual #s recv
//	                                          jump cont
//	                                    cont: ...post...
//
// The slow arm reuses the original instruction, so the fall-through
// behavior (dispatch, null check, trap positions) is untouched.
func (o *optimizer) applySpecDevirt(f *ir.Func, in *ir.Instr, cls *ir.Class, target *ir.Func) {
	var blk *ir.Block
	idx := -1
	for _, b := range f.Blocks {
		for i, bi := range b.Instrs {
			if bi == in {
				blk, idx = b, i
				break
			}
		}
		if blk != nil {
			break
		}
	}
	if blk == nil {
		return
	}
	post := append([]*ir.Instr(nil), blk.Instrs[idx+1:]...)
	cont := f.NewBlock()
	cont.Instrs = post
	fast := f.NewBlock()
	slow := f.NewBlock()
	recv := in.Args[0]
	q := f.NewReg(o.tc.Bool(), "spec")
	blk.Instrs = append(blk.Instrs[:idx:idx],
		&ir.Instr{Op: ir.OpTypeQuery, Dst: []*ir.Reg{q}, Args: []*ir.Reg{recv},
			Type: cls.Type, Type2: recv.Type, Pos: in.Pos},
		&ir.Instr{Op: ir.OpBranch, Args: []*ir.Reg{q},
			Blocks: []*ir.Block{fast, slow}, Pos: in.Pos})
	rc := f.NewReg(cls.Type, recv.Name)
	args := append([]*ir.Reg{rc}, in.Args[1:]...)
	fast.Instrs = []*ir.Instr{
		{Op: ir.OpTypeCast, Dst: []*ir.Reg{rc}, Args: []*ir.Reg{recv},
			Type: cls.Type, Type2: recv.Type, Pos: in.Pos},
		{Op: ir.OpCallStatic, Dst: in.Dst, Fn: target, Args: args, Pos: in.Pos},
		{Op: ir.OpJump, Blocks: []*ir.Block{cont}, Pos: in.Pos},
	}
	slow.Instrs = []*ir.Instr{
		in,
		{Op: ir.OpJump, Blocks: []*ir.Block{cont}, Pos: in.Pos},
	}
	o.st.SpecDevirt++
}

// inlineHot spends a raised inlining budget on the functions the
// profile marks hot, then folds them to clean up the splices. The fold
// statistics merge into the main Stats; the extra inlines are counted
// separately as HotInlined.
func (o *optimizer) inlineHot(prof *profile.Profile, names map[*ir.Func]string) {
	hotNames := map[string]bool{}
	for _, name := range prof.HotFuncs(profile.DefaultHotCalls, profile.DefaultHotSteps) {
		hotNames[name] = true
	}
	var hot []*ir.Func
	for _, f := range o.mod.Funcs {
		if hotNames[names[f]] {
			hot = append(hot, f)
		}
	}
	if len(hot) == 0 {
		return
	}
	hs := &Stats{}
	ho := &optimizer{mod: o.mod, tc: o.tc, cfg: o.cfg, st: hs}
	ho.cfg.InlineLimit = hotInlineLimit
	for round := 0; round < 2; round++ {
		// Hot inlining reads round-frozen snapshots like the main
		// rounds, built here over the whole module since hot callers
		// may inline any callee.
		snaps := map[string]*Snapshot{}
		for _, f := range o.mod.Funcs {
			if s := snapshotOf(f, hotInlineLimit); s != nil {
				snaps[f.Name] = s
			}
		}
		lookup := func(name string) *Snapshot { return snaps[name] }
		changed := false
		for _, f := range hot {
			if ho.inlineCalls(f, lookup) {
				changed = true
			}
		}
		for _, f := range hot {
			ho.foldFunc(f)
		}
		if !changed {
			break
		}
	}
	o.st.HotInlined += hs.Inlined
	o.st.QueriesFolded += hs.QueriesFolded
	o.st.CastsElided += hs.CastsElided
	o.st.BranchesFolded += hs.BranchesFolded
	o.st.InstrsRemoved += hs.InstrsRemoved
}

// classByName resolves a profile's class name against the module's
// materialized classes; an ambiguous name resolves to nothing rather
// than guessing between instantiations.
func (o *optimizer) classByName(name string) *ir.Class {
	if name == "" {
		return nil
	}
	var found *ir.Class
	for _, c := range o.mod.Classes {
		if c.Name == name {
			if found != nil {
				return nil
			}
			found = c
		}
	}
	return found
}

// assignableTo mirrors the verifier's compatibility relation on the
// closed types of a monomorphic module.
func (o *optimizer) assignableTo(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	return from == to || o.tc.IsSubtype(from, to)
}

// Package cluster is the peer-aware routing tier over internal/serve:
// a fleet of virgil-serve instances, each handed the same static peer
// list, that routes /run and /compile requests to the program's
// consistent-hash owner so the owner's warm cache, profiles, and
// quarantine state serve every request for that program.
//
// The forwarding client is defensive end to end — the cluster must
// never return a worse answer than a lone instance:
//
//   - retries: capped exponential backoff with full jitter, bounded by
//     the caller's deadline and Config.Attempts;
//   - per-peer circuit breakers (closed/open/half-open over a rolling
//     error window) short-circuit forwards to a peer that keeps
//     failing, so a dead peer costs a breaker check, not a timeout;
//   - capacity pushback (429 with Retry-After) from the owner is
//     honored when the hint fits the request's remaining budget,
//     otherwise the request degrades to local execution — EXCEPT
//     per-tenant quota 429s, which pass through verbatim (running the
//     program locally would bypass the tenant's quota);
//   - every other forwarding failure — dial error, peer timeout, 5xx,
//     open breaker, exhausted retries — degrades gracefully to local
//     execution, marked degraded:true in the response;
//   - optional tail-latency hedging: when the owner has not answered
//     within Config.HedgeAfter, a local execution is launched and the
//     first result wins (responses marked hedged:true when the local
//     hedge won).
//
// Forwarding is one hop: a forwarded request (marked with the
// X-Virgil-Forwarded-From header) executes where it lands, even if
// ring views disagree — no forwarding loops by construction. The
// executing instance decorates the response with routed /
// forwarded_from / degraded / hedged; the forwarder streams the
// owner's reply through byte-for-byte.
//
// The package's failure modes are driven in tests and chaos harnesses
// by three internal/faultinject points on the forward path: peer-dial
// (err = connection failure before the request is sent), peer-stall
// (delay = network latency), and peer-5xx (err after a response is
// received = treat the reply as a 500).
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

// ForwardHeader marks a request as already forwarded once; the
// receiving instance executes it locally no matter what its own ring
// says. Its value is the forwarder's self URL.
const ForwardHeader = "X-Virgil-Forwarded-From"

// Config tunes the routing tier. Zero values select the documented
// defaults.
type Config struct {
	// Self is this instance's own URL as it appears in Peers.
	Self string
	// Peers is the full static fleet, self included. Order does not
	// matter — the ring sorts. Empty or single-entry peers make the
	// router a transparent decorator over the local server.
	Peers []string
	// PeerTimeout bounds one forward attempt. Default: 2s.
	PeerTimeout time.Duration
	// Attempts is the total number of forward attempts (first try
	// included) before degrading to local execution. Default: 3.
	Attempts int
	// HedgeAfter launches a local hedge execution when the owner has
	// not answered within this duration; 0 disables hedging.
	HedgeAfter time.Duration
	// MaxBodyBytes bounds one request body at the routing layer; keep
	// it in sync with the serve tier's limit. Default: 4 MiB.
	MaxBodyBytes int64
	// BreakerWindow and BreakerCooldown tune the per-peer breakers.
	// Defaults: 16 samples, 1s cooldown.
	BreakerWindow   int
	BreakerCooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 2 * time.Second
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	return c
}

// maxPeerResponseBytes bounds how much of a peer's reply the forwarder
// buffers — program output is already bounded by the serve tier's heap
// and step budgets, so this is a backstop, not a working limit.
const maxPeerResponseBytes = 64 << 20

// Router wraps a local serve.Server with the peer-routing tier. Mount
// Handler() in place of the server's own handler.
type Router struct {
	cfg      Config
	local    *serve.Server
	ring     *ring
	client   *http.Client
	breakers map[string]*breaker
	mux      *http.ServeMux

	forwards      atomic.Int64 // requests sent to a peer (attempts, not retries)
	retries       atomic.Int64 // extra attempts after the first
	forwardFails  atomic.Int64 // attempts that ended in network error or 5xx
	degraded      atomic.Int64 // requests that fell back to local execution
	degradedOK    atomic.Int64 // degraded requests that still answered 2xx
	received      atomic.Int64 // forwarded requests this instance executed
	routedLocal   atomic.Int64 // requests this instance owned outright
	hedgeLaunched atomic.Int64
	hedgeWins     atomic.Int64
}

// New builds the routing tier over local. The peer set is static for
// the router's lifetime.
func New(cfg Config, local *serve.Server) *Router {
	cfg = cfg.withDefaults()
	peers := cfg.Peers
	if cfg.Self != "" {
		found := false
		for _, p := range peers {
			if p == cfg.Self {
				found = true
				break
			}
		}
		if !found {
			peers = append(append([]string(nil), peers...), cfg.Self)
		}
	}
	rt := &Router{
		cfg:      cfg,
		local:    local,
		ring:     newRing(peers),
		client:   &http.Client{},
		breakers: map[string]*breaker{},
		mux:      http.NewServeMux(),
	}
	for _, p := range rt.ring.peers {
		if p != cfg.Self {
			rt.breakers[p] = newBreaker(cfg.BreakerWindow, cfg.BreakerCooldown)
		}
	}
	rt.mux.HandleFunc("/run", rt.guard(rt.handleRouted))
	rt.mux.HandleFunc("/compile", rt.guard(rt.handleRouted))
	rt.mux.HandleFunc("/stats", rt.guard(rt.handleStats))
	rt.mux.Handle("/", local.Handler()) // healthz and anything else: local
	return rt
}

// Handler returns the cluster-aware HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// guard mirrors the serve tier's panic boundary: routing-layer bugs
// become structured ICE JSON, never a dead instance.
func (rt *Router) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				writeJSON(w, http.StatusInternalServerError, serve.Response{
					Error: &serve.ErrorInfo{Kind: "ice", Msg: fmt.Sprintf("internal error (cluster): %v", rec)},
				})
			}
		}()
		h(w, r)
	}
}

// Stats is the routing tier's /stats section.
type Stats struct {
	Self           string                 `json:"self"`
	Peers          []string               `json:"peers"`
	RoutedLocal    int64                  `json:"routed_local"`
	PeerForwards   int64                  `json:"peer_forwards"`
	PeerRetries    int64                  `json:"peer_retries"`
	PeerFailures   int64                  `json:"peer_failures"`
	PeerDegraded   int64                  `json:"peer_degraded"`
	PeerDegradedOK int64                  `json:"peer_degraded_ok"`
	PeerReceived   int64                  `json:"peer_received"`
	HedgeLaunched  int64                  `json:"hedge_launched"`
	HedgeWins      int64                  `json:"hedge_wins"`
	Breakers       map[string]BreakerStat `json:"breaker_state,omitempty"`
}

// Snapshot returns the routing counters.
func (rt *Router) Snapshot() Stats {
	st := Stats{
		Self:           rt.cfg.Self,
		Peers:          append([]string(nil), rt.ring.peers...),
		RoutedLocal:    rt.routedLocal.Load(),
		PeerForwards:   rt.forwards.Load(),
		PeerRetries:    rt.retries.Load(),
		PeerFailures:   rt.forwardFails.Load(),
		PeerDegraded:   rt.degraded.Load(),
		PeerDegradedOK: rt.degradedOK.Load(),
		PeerReceived:   rt.received.Load(),
		HedgeLaunched:  rt.hedgeLaunched.Load(),
		HedgeWins:      rt.hedgeWins.Load(),
	}
	if len(rt.breakers) > 0 {
		st.Breakers = map[string]BreakerStat{}
		for p, b := range rt.breakers {
			st.Breakers[p] = b.snapshot()
		}
	}
	return st
}

// handleStats merges the local serve stats with the cluster section,
// so one scrape shows both tiers.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		serve.Stats
		Cluster Stats `json:"cluster"`
	}{rt.local.Snapshot(), rt.Snapshot()})
}

// handleRouted is the /run and /compile path: find the program's
// owner, execute locally or forward with the full resilience ladder.
func (rt *Router) handleRouted(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.passThrough(w, r, nil) // local mux answers 405
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, serve.Response{Error: &serve.ErrorInfo{
				Kind: "error",
				Msg:  fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			}})
			return
		}
		writeJSON(w, http.StatusBadRequest, serve.Response{Error: &serve.ErrorInfo{Kind: "error", Msg: "bad request body: " + err.Error()}})
		return
	}

	// Tolerant decode, only to extract the routing key. A body the
	// serve tier would reject (unknown fields, no files) still routes —
	// the owner produces the structured 4xx — and a body that does not
	// parse at all short-circuits to the local server's own 400.
	var req serve.Request
	if err := json.Unmarshal(body, &req); err != nil || len(req.Files) == 0 {
		rt.passThrough(w, r, body)
		return
	}

	if from := r.Header.Get(ForwardHeader); from != "" {
		// One-hop rule: a forwarded request executes here, period.
		rt.received.Add(1)
		rt.runLocal(w, r, body, func(resp *serve.Response) {
			resp.Routed = rt.cfg.Self
			resp.ForwardedFrom = from
		})
		return
	}

	owner := rt.ring.owner(serve.ProgramHash(req.Files))
	if owner == "" || owner == rt.cfg.Self || len(rt.ring.peers) < 2 {
		rt.routedLocal.Add(1)
		rt.runLocal(w, r, body, func(resp *serve.Response) {
			resp.Routed = rt.cfg.Self
		})
		return
	}

	rt.forward(w, r, owner, body)
}

// passThrough hands the request to the local serve mux unmodified
// (body already consumed is restored from the buffered copy).
func (rt *Router) passThrough(w http.ResponseWriter, r *http.Request, body []byte) {
	if body != nil {
		r = cloneWithBody(r, body)
	}
	rt.local.Handler().ServeHTTP(w, r)
}

// runLocal executes the request on the local server and decorates the
// structured response with the routing facts.
func (rt *Router) runLocal(w http.ResponseWriter, r *http.Request, body []byte, mutate func(*serve.Response)) {
	rec := runRecorded(rt.local, r, body)
	rec.writeTo(w, mutate)
}

// forwardOutcome is one terminal state of the forwarding ladder.
type forwardOutcome struct {
	rec      *recorder // non-nil: a peer reply to stream through
	degrade  bool      // true: fall back to local execution
	hedgeWin bool      // true: the local hedge produced rec
}

// forward drives the resilience ladder for a request owned by a peer:
// breaker check, forward with retry/backoff, optional local hedge, and
// local degradation as the terminal fallback.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte) {
	br := rt.breakers[owner]
	if br == nil || !br.allow() {
		rt.degradeLocal(w, r, body)
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	results := make(chan forwardOutcome, 2) // buffered: neither racer blocks
	go func() {
		results <- rt.tryForward(ctx, owner, r.URL.Path, body, br)
	}()

	var hedge <-chan time.Time
	if rt.cfg.HedgeAfter > 0 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}

	hedging, remoteFailed := false, false
	for {
		select {
		case out := <-results:
			if out.degrade {
				if hedging {
					// The in-flight hedge doubles as the degraded local
					// execution — wait for it rather than running twice.
					remoteFailed = true
					continue
				}
				rt.degradeLocal(w, r, body)
				return
			}
			if out.hedgeWin {
				rt.hedgeWins.Add(1)
				if remoteFailed {
					rt.degraded.Add(1)
					if out.rec.status < 300 {
						rt.degradedOK.Add(1)
					}
				}
				out.rec.writeTo(w, func(resp *serve.Response) {
					resp.Routed = rt.cfg.Self
					resp.Hedged = true
					resp.Degraded = remoteFailed
				})
				return
			}
			out.rec.writeTo(w, nil) // owner already decorated; stream through
			return
		case <-hedge:
			hedge = nil
			hedging = true
			rt.hedgeLaunched.Add(1)
			go func() {
				rec := runRecorded(rt.local, r.WithContext(ctx), body)
				if ctx.Err() != nil {
					return // remote won while we executed; drop the hedge
				}
				results <- forwardOutcome{rec: rec, hedgeWin: true}
			}()
		case <-r.Context().Done():
			// Client is gone; nothing left to answer.
			return
		}
	}
}

// tryForward attempts the forward up to cfg.Attempts times with capped
// exponential backoff and full jitter, classifying every outcome for
// the breaker. It returns either a reply to stream or a degrade order.
func (rt *Router) tryForward(ctx context.Context, owner, path string, body []byte, br *breaker) forwardOutcome {
	backoff := 50 * time.Millisecond
	const backoffCap = 500 * time.Millisecond
	for attempt := 0; attempt < rt.cfg.Attempts; attempt++ {
		if attempt > 0 {
			rt.retries.Add(1)
			// Full jitter: sleep U(0, backoff], then double toward the cap.
			if !sleepCtx(ctx, time.Duration(rand.Int63n(int64(backoff)))+time.Millisecond) {
				return forwardOutcome{degrade: true}
			}
			backoff = min(2*backoff, backoffCap)
			if !br.allow() {
				return forwardOutcome{degrade: true}
			}
		}
		rt.forwards.Add(1)
		rec, err := rt.send(ctx, owner, path, body)
		if err != nil {
			rt.forwardFails.Add(1)
			br.report(false)
			if ctx.Err() != nil {
				return forwardOutcome{degrade: true}
			}
			continue
		}
		switch {
		case rec.status >= 500:
			// The peer answered but broken — same as a network failure
			// for the breaker, and worth one more try elsewhere in time.
			rt.forwardFails.Add(1)
			br.report(false)
			continue
		case rec.status == http.StatusTooManyRequests:
			br.report(true) // the peer is alive; this is pushback, not failure
			if kind := errorKind(rec.body); kind == "quota" {
				// Tenant quota rejections pass through verbatim: running
				// the program locally would bypass the tenant's budget.
				return forwardOutcome{rec: rec}
			}
			// Capacity shed: honor Retry-After when it fits the remaining
			// budget and attempts remain; otherwise degrade to local.
			if attempt+1 < rt.cfg.Attempts {
				if wait, ok := retryAfterFits(ctx, rec.header.Get("Retry-After")); ok {
					if !sleepCtx(ctx, wait) {
						return forwardOutcome{degrade: true}
					}
					continue
				}
			}
			return forwardOutcome{degrade: true}
		default:
			// 2xx and structured 4xx: the owner's answer is the answer.
			br.report(true)
			return forwardOutcome{rec: rec}
		}
	}
	return forwardOutcome{degrade: true}
}

// send performs one forward attempt, bounded by PeerTimeout, crossing
// the three chaos points (peer-stall, peer-dial, peer-5xx).
func (rt *Router) send(ctx context.Context, owner, path string, body []byte) (*recorder, error) {
	actx, cancel := context.WithTimeout(ctx, rt.cfg.PeerTimeout)
	defer cancel()
	// Injected network latency (delay) and connection failure (err).
	if err := faultinject.Point(actx, "peer-stall"); err != nil {
		return nil, err
	}
	if err := faultinject.Point(actx, "peer-dial"); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, owner+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, rt.cfg.Self)
	res, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	b, err := io.ReadAll(io.LimitReader(res.Body, maxPeerResponseBytes))
	if err != nil {
		return nil, err
	}
	rec := &recorder{status: res.StatusCode, header: res.Header.Clone(), body: *bytes.NewBuffer(b)}
	// An injected err here models a peer whose reply arrived corrupt /
	// as a gateway 500: the classification ladder sees a 5xx.
	if err := faultinject.Point(actx, "peer-5xx"); err != nil {
		rec.status = http.StatusInternalServerError
	}
	return rec, nil
}

// degradeLocal is the bottom of the ladder: execute locally, mark the
// response degraded. The local server's own watchdog, quarantine, and
// budgets still apply, so the cluster's worst case is a lone instance.
func (rt *Router) degradeLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	rt.degraded.Add(1)
	rec := runRecorded(rt.local, r, body)
	if rec.status < 300 {
		rt.degradedOK.Add(1)
	}
	rec.writeTo(w, func(resp *serve.Response) {
		resp.Routed = rt.cfg.Self
		resp.Degraded = true
	})
}

// ---- plumbing ----

// recorder is a minimal in-memory http.ResponseWriter used both for
// local executions that need decoration and for buffered peer replies.
type recorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{status: http.StatusOK, header: http.Header{}} }

func (rec *recorder) Header() http.Header { return rec.header }
func (rec *recorder) WriteHeader(code int) {
	rec.status = code
}
func (rec *recorder) Write(p []byte) (int, error) { return rec.body.Write(p) }

// runRecorded executes the request against the local serve handler,
// capturing the reply.
func runRecorded(local *serve.Server, r *http.Request, body []byte) *recorder {
	rec := newRecorder()
	local.Handler().ServeHTTP(rec, cloneWithBody(r, body))
	return rec
}

// writeTo replays the recorded response onto w, decorating the
// structured body via mutate when it parses as a serve.Response.
// Anything that does not parse streams through byte-for-byte.
func (rec *recorder) writeTo(w http.ResponseWriter, mutate func(*serve.Response)) {
	for _, h := range []string{"Retry-After", "Content-Type"} {
		if v := rec.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if mutate != nil {
		var resp serve.Response
		if err := json.Unmarshal(rec.body.Bytes(), &resp); err == nil {
			mutate(&resp)
			writeJSONStatus(w, rec.status, resp)
			return
		}
	}
	w.WriteHeader(rec.status)
	_, _ = w.Write(rec.body.Bytes())
}

func cloneWithBody(r *http.Request, body []byte) *http.Request {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	return r2
}

// errorKind extracts error.kind from a structured reply body ("" when
// the body is not a structured response).
func errorKind(body bytes.Buffer) string {
	var resp serve.Response
	if err := json.Unmarshal(body.Bytes(), &resp); err != nil || resp.Error == nil {
		return ""
	}
	return resp.Error.Kind
}

// retryAfterFits parses a Retry-After hint and reports whether waiting
// it out fits the request's remaining deadline budget (with slack to
// actually do the work after the wait).
func retryAfterFits(ctx context.Context, hint string) (time.Duration, bool) {
	secs, err := strconv.Atoi(strings.TrimSpace(hint))
	if err != nil || secs < 0 {
		return 0, false
	}
	wait := time.Duration(secs) * time.Second
	dl, ok := ctx.Deadline()
	if !ok {
		// No deadline: only short waits are worth it over local execution.
		return wait, wait <= 2*time.Second
	}
	if remaining := time.Until(dl); wait+500*time.Millisecond < remaining {
		return wait, true
	}
	return 0, false
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) { writeJSONStatus(w, status, v) }

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.Marshal(v)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"ok":false,"error":{"kind":"ice","msg":"response marshal failed"}}`))
		return
	}
	w.WriteHeader(status)
	_, _ = w.Write(b)
	_, _ = w.Write([]byte("\n"))
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// TestClusterChaosSoak runs a 3-node fleet under concurrent mixed
// traffic while one node is abruptly killed and later restarted
// mid-stream, with /stats scraped concurrently the whole time. The
// invariants, checked under -race in CI:
//
//   - every response a client receives is structured JSON — no Go
//     stacks, no bare strings, regardless of which instance died when;
//   - clients that retry across the fleet always get an answer (the
//     degradation ladder never strands a request);
//   - the fleet drains cleanly and leaks no goroutines.
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short")
	}
	before := stableGoroutines(t)

	f := startFleet(t, 3, serve.Config{MaxConcurrent: 4},
		Config{PeerTimeout: 500 * time.Millisecond, Attempts: 2, BreakerCooldown: 200 * time.Millisecond})
	urls := f.URLs()

	const (
		clients       = 6
		perClient     = 25
		distinctProgs = 5
	)
	var answered, degraded atomic.Int64
	var wg sync.WaitGroup

	// Traffic: each client round-robins entry nodes and programs,
	// failing over to the next node on transport errors (the killed
	// node refuses connections — that is the client's problem to route
	// around, and every alternative node must answer).
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := serve.Request{Files: files("p.v", fmt.Sprintf(
					`def main() { System.puti(%d); System.ln(); }`, (c+i)%distinctProgs))}
				body, err := json.Marshal(req)
				if err != nil {
					t.Error(err)
					return
				}
				var resp serve.Response
				ok := false
				for try := 0; try < len(urls)*2 && !ok; try++ {
					url := urls[(c+i+try)%len(urls)]
					res, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
					if err != nil {
						continue // dead target; fail over
					}
					raw, rerr := io.ReadAll(res.Body)
					res.Body.Close()
					if rerr != nil {
						continue // connection died mid-reply (the kill); fail over
					}
					if err := json.Unmarshal(raw, &resp); err != nil {
						t.Errorf("non-structured response from %s (status %d): %q", url, res.StatusCode, raw)
						return
					}
					ok = true
				}
				if !ok {
					t.Errorf("client %d request %d: no fleet node answered", c, i)
					return
				}
				answered.Add(1)
				if resp.Degraded {
					degraded.Add(1)
				}
			}
		}(c)
	}

	// Concurrent /stats scraping against every node, live or dead.
	scrapeCtx, stopScrape := context.WithCancel(context.Background())
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for i := 0; scrapeCtx.Err() == nil; i++ {
			res, err := http.Get(urls[i%len(urls)] + "/stats")
			if err == nil {
				_, _ = io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Chaos: kill node 2 early, restart it mid-stream.
	victim := f.Nodes[2]
	time.Sleep(150 * time.Millisecond)
	victim.Kill()
	time.Sleep(400 * time.Millisecond)
	if err := victim.Restart(); err != nil {
		t.Errorf("restart: %v", err)
	}

	wg.Wait()
	stopScrape()
	scrapeWG.Wait()

	if got := answered.Load(); got != clients*perClient {
		t.Fatalf("answered %d of %d requests", got, clients*perClient)
	}
	t.Logf("soak: %d answered, %d degraded", answered.Load(), degraded.Load())

	// Clean drain of the whole fleet, then no goroutines left behind.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.Stop(ctx); err != nil {
		t.Fatalf("fleet drain: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
	for _, n := range f.Nodes {
		n.Router().client.CloseIdleConnections()
	}
	assertNoGoroutineLeaks(t, before)
}

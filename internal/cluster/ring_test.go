package cluster

import (
	"fmt"
	"testing"
)

func TestRingOrderIndependence(t *testing.T) {
	a := newRing([]string{"http://c", "http://a", "http://b"})
	b := newRing([]string{"http://b", "http://c", "http://a", "http://a", ""})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("prog-%d", i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("key %q: owners disagree across peer orderings: %q vs %q", key, a.owner(key), b.owner(key))
		}
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"http://a", "http://b", "http://c"}
	r := newRing(peers)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("prog-%d", i))]++
	}
	for _, p := range peers {
		n := counts[p]
		// 64 vnodes/peer keeps the split well inside [half, double] of fair.
		if n < keys/3/2 || n > keys/3*2 {
			t.Fatalf("peer %s owns %d of %d keys — badly unbalanced split %v", p, n, keys, counts)
		}
	}
}

func TestRingStabilityUnderPeerRemoval(t *testing.T) {
	full := newRing([]string{"http://a", "http://b", "http://c", "http://d"})
	less := newRing([]string{"http://a", "http://b", "http://c"})
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("prog-%d", i)
		was, now := full.owner(key), less.owner(key)
		if was != "http://d" && was != now {
			moved++
		}
	}
	// Consistent hashing: removing one of four peers must not reshuffle
	// keys the removed peer never owned (a tiny tolerance for vnode
	// boundary effects).
	if moved > keys/20 {
		t.Fatalf("%d of %d keys not owned by the removed peer changed owner", moved, keys)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := newRing(nil).owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	one := newRing([]string{"http://only"})
	for i := 0; i < 50; i++ {
		if got := one.owner(fmt.Sprintf("k%d", i)); got != "http://only" {
			t.Fatalf("single-peer ring owner = %q", got)
		}
	}
}

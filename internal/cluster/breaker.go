package cluster

import (
	"sync"
	"time"
)

// Breaker states. The machine is the classic three-state one:
//
//	closed    — requests flow; outcomes feed a rolling window.
//	open      — requests short-circuit to local degradation; after
//	            cooldown the breaker half-opens.
//	half-open — exactly one probe request is allowed through. Success
//	            closes the breaker (fresh window); failure re-opens it
//	            for another full cooldown.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func stateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-peer circuit breaker over a rolling outcome window.
// It opens when at least minSamples of the last windowSize forwards are
// recorded and at least half of them failed — a rate, not a streak, so
// one flaky success cannot hold a mostly-dead peer closed.
type breaker struct {
	mu       sync.Mutex
	now      func() time.Time // injectable for deterministic tests
	cooldown time.Duration

	window   []bool // ring buffer of outcomes; true = failure
	idx      int
	filled   int
	state    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	successes int64
	failures  int64
	opens     int64
}

const (
	defaultBreakerWindow   = 16
	defaultBreakerCooldown = time.Second
	breakerMinSamples      = 4
)

func newBreaker(window int, cooldown time.Duration) *breaker {
	if window <= 0 {
		window = defaultBreakerWindow
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{now: time.Now, cooldown: cooldown, window: make([]bool, window)}
}

// allow reports whether a forward to this peer may be attempted now.
// In the open state it also performs the cooldown-elapsed transition to
// half-open, admitting the single probe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// report records the outcome of an attempted forward. ok=false is a
// network error or 5xx; capacity pushback and client errors count as
// successes — the peer answered.
func (b *breaker) report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.successes++
	} else {
		b.failures++
	}
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if ok {
			b.state = breakerClosed
			b.resetWindow()
		} else {
			b.trip()
		}
		return
	case breakerOpen:
		// A straggler from before the trip; ignore for state purposes.
		return
	}
	b.window[b.idx] = !ok
	b.idx = (b.idx + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
	if b.filled >= breakerMinSamples {
		bad := 0
		for i := 0; i < b.filled; i++ {
			if b.window[i] {
				bad++
			}
		}
		if 2*bad >= b.filled {
			b.trip()
		}
	}
}

// trip opens the breaker and stamps the cooldown clock. Caller holds mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.opens++
	b.resetWindow()
}

func (b *breaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.idx, b.filled = 0, 0
}

// BreakerStat is one peer's breaker state for /stats.
type BreakerStat struct {
	State     string `json:"state"`
	Successes int64  `json:"successes"`
	Failures  int64  `json:"failures"`
	Opens     int64  `json:"opens"`
}

func (b *breaker) snapshot() BreakerStat {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface open→half-open as "open" until a probe is actually
	// admitted; allow() is what performs the transition.
	return BreakerStat{
		State:     stateName(b.state),
		Successes: b.successes,
		Failures:  b.failures,
		Opens:     b.opens,
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

const okProg = `def main() { System.puts("hello"); System.ln(); }`

func files(name, source string) []serve.FileJSON {
	return []serve.FileJSON{{Name: name, Source: source}}
}

// post sends req and decodes the structured reply. A body that fails
// to decode as a serve.Response is a test failure: the cluster must
// never emit a non-structured error (a Go stack, a bare string).
func post(t *testing.T, url string, req serve.Request) (int, serve.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("goroutine ")) {
		t.Fatalf("response leaks a Go stack: %s", raw)
	}
	var resp serve.Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("non-structured response (status %d): %q", res.StatusCode, raw)
	}
	return res.StatusCode, resp
}

// progOwnedBy generates a program whose consistent-hash owner is the
// given peer, so tests can aim traffic at a specific instance.
func progOwnedBy(t *testing.T, r *ring, owner string) serve.Request {
	t.Helper()
	for i := 0; i < 10000; i++ {
		req := serve.Request{Files: files("p.v", fmt.Sprintf(
			`def main() { System.puti(%d); System.ln(); }`, i))}
		if r.owner(serve.ProgramHash(req.Files)) == owner {
			return req
		}
	}
	t.Fatalf("no program found owned by %s", owner)
	return serve.Request{}
}

func startFleet(t *testing.T, n int, scfg serve.Config, ccfg Config) *Fleet {
	t.Helper()
	f, err := StartLocal(n, scfg, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = f.Stop(ctx)
	})
	return f
}

func stableGoroutines(t *testing.T) int {
	t.Helper()
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

func assertNoGoroutineLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var cur int
	for time.Now().Before(deadline) {
		cur = runtime.NumGoroutine()
		if cur <= before+2 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines grew %d -> %d:\n%s", before, cur, buf[:runtime.Stack(buf, true)])
}

// ---- routing ----

func TestOwnerRoutingAndForwardDecoration(t *testing.T) {
	f := startFleet(t, 3, serve.Config{}, Config{})
	sender := f.Nodes[0]
	owner := f.Nodes[1]
	req := progOwnedBy(t, sender.Router().ring, owner.URL)

	status, resp := post(t, sender.URL+"/run", req)
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
	if resp.Routed != owner.URL || resp.ForwardedFrom != sender.URL {
		t.Fatalf("routed=%q forwarded_from=%q, want executed at %s forwarded from %s",
			resp.Routed, resp.ForwardedFrom, owner.URL, sender.URL)
	}
	if resp.Degraded || resp.Hedged {
		t.Fatalf("clean forward marked degraded=%v hedged=%v", resp.Degraded, resp.Hedged)
	}
	// The owner executed it; the sender only forwarded.
	if got := owner.Server().Snapshot().Total; got != 1 {
		t.Fatalf("owner total = %d, want 1", got)
	}
	if got := sender.Server().Snapshot().Total; got != 0 {
		t.Fatalf("sender executed %d requests, want 0 (forward only)", got)
	}
	if st := sender.Router().Snapshot(); st.PeerForwards != 1 || st.PeerReceived != 0 {
		t.Fatalf("sender cluster stats %+v, want one forward", st)
	}
	if st := owner.Router().Snapshot(); st.PeerReceived != 1 {
		t.Fatalf("owner peer_received = %d, want 1", st.PeerReceived)
	}

	// Warm-cache affinity: the same program from a DIFFERENT entry node
	// lands on the same owner and hits its cache.
	status, resp = post(t, f.Nodes[2].URL+"/run", req)
	if status != http.StatusOK || !resp.OK || resp.Routed != owner.URL {
		t.Fatalf("second entry point: status=%d routed=%q", status, resp.Routed)
	}
	if !resp.Cached {
		t.Fatal("routing did not preserve cache affinity: second request missed the owner's warm cache")
	}
}

func TestSelfOwnedExecutesLocally(t *testing.T) {
	f := startFleet(t, 2, serve.Config{}, Config{})
	sender := f.Nodes[0]
	req := progOwnedBy(t, sender.Router().ring, sender.URL)
	status, resp := post(t, sender.URL+"/run", req)
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
	if resp.Routed != sender.URL || resp.ForwardedFrom != "" || resp.Degraded {
		t.Fatalf("self-owned: routed=%q forwarded_from=%q degraded=%v", resp.Routed, resp.ForwardedFrom, resp.Degraded)
	}
	if st := sender.Router().Snapshot(); st.RoutedLocal != 1 || st.PeerForwards != 0 {
		t.Fatalf("cluster stats %+v, want one local route and no forwards", st)
	}
}

func TestForwardedRequestNeverReforwards(t *testing.T) {
	f := startFleet(t, 3, serve.Config{}, Config{})
	// Aim a program owned by node 2 at node 1, pre-marked as forwarded:
	// the one-hop rule says node 1 must execute it locally.
	target := f.Nodes[1]
	req := progOwnedBy(t, target.Router().ring, f.Nodes[2].URL)
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, target.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(ForwardHeader, "http://elsewhere")
	res, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var resp serve.Response
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK || !resp.OK {
		t.Fatalf("status=%d resp=%+v", res.StatusCode, resp)
	}
	if resp.Routed != target.URL || resp.ForwardedFrom != "http://elsewhere" {
		t.Fatalf("routed=%q forwarded_from=%q, want local execution at %s", resp.Routed, resp.ForwardedFrom, target.URL)
	}
	if got := f.Nodes[2].Server().Snapshot().Total; got != 0 {
		t.Fatalf("ring owner executed %d requests, want 0 (one-hop rule)", got)
	}
}

// ---- degradation ladder ----

func TestDeadPeerDegradesToLocal(t *testing.T) {
	f := startFleet(t, 3, serve.Config{},
		Config{PeerTimeout: 500 * time.Millisecond, Attempts: 2})
	sender := f.Nodes[0]
	owner := f.Nodes[1]
	req := progOwnedBy(t, sender.Router().ring, owner.URL)

	owner.Kill()

	// Every request still gets the program's true answer, marked
	// degraded, served by the sender itself.
	for i := 0; i < 8; i++ {
		status, resp := post(t, sender.URL+"/run", req)
		if status != http.StatusOK || !resp.OK {
			t.Fatalf("request %d against dead owner: status=%d resp=%+v", i, status, resp)
		}
		if !resp.Degraded || resp.Routed != sender.URL {
			t.Fatalf("request %d: degraded=%v routed=%q, want local degradation", i, resp.Degraded, resp.Routed)
		}
	}
	st := sender.Router().Snapshot()
	if st.PeerDegraded == 0 || st.PeerDegradedOK == 0 {
		t.Fatalf("cluster stats %+v, want degraded counters > 0", st)
	}
	if st.PeerFailures == 0 {
		t.Fatalf("peer_failures = 0 after 8 requests against a dead peer")
	}
	// The breaker must have opened: dial failures at a 100% rate.
	if b := st.Breakers[owner.URL]; b.Opens == 0 {
		t.Fatalf("breaker for %s never opened: %+v", owner.URL, b)
	}
}

func TestKilledPeerRecoversAfterRestart(t *testing.T) {
	f := startFleet(t, 2, serve.Config{},
		Config{PeerTimeout: 500 * time.Millisecond, Attempts: 2, BreakerCooldown: 100 * time.Millisecond})
	sender := f.Nodes[0]
	owner := f.Nodes[1]
	req := progOwnedBy(t, sender.Router().ring, owner.URL)

	owner.Kill()
	for i := 0; i < 6; i++ {
		status, resp := post(t, sender.URL+"/run", req)
		if status != http.StatusOK || !resp.OK || !resp.Degraded {
			t.Fatalf("during kill: status=%d resp=%+v", status, resp)
		}
	}
	if err := owner.Restart(); err != nil {
		t.Fatal(err)
	}
	// After the cooldown the half-open probe finds the restarted peer
	// and the fleet converges back to owner routing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, resp := post(t, sender.URL+"/run", req)
		if status != http.StatusOK || !resp.OK {
			t.Fatalf("after restart: status=%d resp=%+v", status, resp)
		}
		if resp.Routed == owner.URL && !resp.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged back to owner routing: %+v", resp)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestQuota429PassesThroughVerbatim(t *testing.T) {
	f := startFleet(t, 2, serve.Config{TenantMaxConcurrent: 1, TenantStepsPerSec: 1},
		Config{PeerTimeout: time.Second})
	sender := f.Nodes[0]
	owner := f.Nodes[1]
	req := progOwnedBy(t, sender.Router().ring, owner.URL)
	req.Tenant = "acme"

	// First request drains tenant acme's one-step/sec budget at the owner.
	status, resp := post(t, sender.URL+"/run", req)
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("first: status=%d resp=%+v", status, resp)
	}
	// The second must surface the owner's quota 429 — NOT degrade to a
	// local run, which would bypass the tenant's budget.
	status, resp = post(t, sender.URL+"/run", req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d resp=%+v, want 429", status, resp)
	}
	if resp.Error == nil || resp.Error.Kind != "quota" {
		t.Fatalf("over-quota error = %+v, want kind=quota", resp.Error)
	}
	if resp.Degraded {
		t.Fatal("quota rejection was degraded to a local run — quota bypass")
	}
	if st := sender.Router().Snapshot(); st.PeerDegraded != 0 {
		t.Fatalf("peer_degraded = %d, want 0 (quota pushback is not degradation)", st.PeerDegraded)
	}
}

func TestHedgeWinsAgainstStallingPeer(t *testing.T) {
	// A persistent 400ms stall on every forward send; hedging at 50ms
	// means the local execution answers long before the remote does.
	reg, err := faultinject.Parse("peer-stall:delay:0+:400")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Set(reg)()

	f := startFleet(t, 2, serve.Config{},
		Config{PeerTimeout: 2 * time.Second, Attempts: 1, HedgeAfter: 50 * time.Millisecond})
	sender := f.Nodes[0]
	owner := f.Nodes[1]
	req := progOwnedBy(t, sender.Router().ring, owner.URL)

	start := time.Now()
	status, resp := post(t, sender.URL+"/run", req)
	if status != http.StatusOK || !resp.OK || resp.Output == "" {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
	if !resp.Hedged || resp.Routed != sender.URL {
		t.Fatalf("hedged=%v routed=%q, want a local hedge win", resp.Hedged, resp.Routed)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Fatalf("hedge did not cut the stall: answered in %v", elapsed)
	}
	st := sender.Router().Snapshot()
	if st.HedgeLaunched == 0 || st.HedgeWins == 0 {
		t.Fatalf("cluster stats %+v, want hedge counters > 0", st)
	}
}

func TestPeer5xxFaultRetriesThenDegrades(t *testing.T) {
	// Every forwarded reply is treated as a 500: retries exhaust, then
	// the request degrades locally and still answers correctly.
	reg, err := faultinject.Parse("peer-5xx:err:0+")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Set(reg)()

	f := startFleet(t, 2, serve.Config{}, Config{PeerTimeout: time.Second, Attempts: 2})
	sender := f.Nodes[0]
	req := progOwnedBy(t, sender.Router().ring, f.Nodes[1].URL)

	status, resp := post(t, sender.URL+"/run", req)
	if status != http.StatusOK || !resp.OK || resp.Output == "" {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
	if !resp.Degraded {
		t.Fatal("persistent peer 5xx did not degrade to local execution")
	}
	st := sender.Router().Snapshot()
	if st.PeerRetries == 0 {
		t.Fatalf("peer_retries = 0, want ≥ 1 before degrading: %+v", st)
	}
}

func TestMergedStatsEndpoint(t *testing.T) {
	f := startFleet(t, 2, serve.Config{}, Config{})
	_, _ = post(t, f.Nodes[0].URL+"/run", serve.Request{Files: files("ok.v", okProg)})
	res, err := http.Get(f.Nodes[0].URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, _ := io.ReadAll(res.Body)
	var merged struct {
		Total   int64  `json:"total"`
		Cluster *Stats `json:"cluster"`
	}
	if err := json.Unmarshal(raw, &merged); err != nil {
		t.Fatalf("stats did not parse: %v\n%s", err, raw)
	}
	if merged.Cluster == nil || merged.Cluster.Self != f.Nodes[0].URL {
		t.Fatalf("stats missing cluster section: %s", raw)
	}
	if !strings.Contains(string(raw), `"breaker_state"`) {
		t.Fatalf("stats missing breaker_state: %s", raw)
	}
}

package cluster

import (
	"hash/fnv"
	"sort"
)

// vnodesPerPeer is how many virtual nodes each peer contributes to the
// consistent-hash ring. 64 keeps the ownership split within a few
// percent of even for small fleets while the ring stays tiny (a few KB
// for a dozen peers).
const vnodesPerPeer = 64

// ring is a consistent-hash ring over the fleet's peer URLs. Peers are
// sorted and deduplicated at construction so two instances handed the
// same set in different flag order agree on every program's owner —
// routing correctness depends on that agreement, not on configuration
// discipline.
type ring struct {
	peers  []string
	vnodes []vnode
}

type vnode struct {
	hash uint64
	peer string
}

func newRing(peers []string) *ring {
	uniq := map[string]bool{}
	r := &ring{}
	for _, p := range peers {
		if p == "" || uniq[p] {
			continue
		}
		uniq[p] = true
		r.peers = append(r.peers, p)
	}
	sort.Strings(r.peers)
	for _, p := range r.peers {
		for i := 0; i < vnodesPerPeer; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(p, i), peer: p})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		a, b := r.vnodes[i], r.vnodes[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.peer < b.peer // deterministic on (vanishingly rare) collisions
	})
	return r
}

// owner maps a routing key (a program hash) to the peer that owns it:
// the first vnode clockwise from the key's hash.
func (r *ring) owner(key string) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	h := hash64(key, 0)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.vnodes[i].peer
}

func hash64(s string, vnode int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	h.Write([]byte{byte(vnode), byte(vnode >> 8), '#'})
	// FNV alone clusters badly for near-identical inputs (peer URLs
	// differing in one port digit, consecutive vnode indices); a
	// splitmix64-style finalizer avalanches the sum so ring positions
	// spread evenly.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
)

// Node is one instance of an in-process fleet: a real serve.Server
// behind a real TCP listener with the routing tier mounted, so peers
// talk over actual HTTP — the same wire the production fleet uses.
type Node struct {
	URL string

	mu     sync.Mutex
	addr   string
	scfg   serve.Config
	ccfg   Config
	srv    *serve.Server
	router *Router
	hs     *http.Server
	alive  bool
}

// Fleet is a set of in-process nodes sharing one static peer list.
// Tests and cmd/loadgen use it to stand up an N-instance cluster in
// one process; Kill/Restart model instance crashes mid-traffic.
type Fleet struct {
	Nodes []*Node
}

// StartLocal boots n instances on loopback ports. The listeners are
// created first so every instance's config can name the full peer list
// before any of them serves a request (the peer-URL chicken-and-egg).
// scfg configures each instance's serve tier; ccfg's Self/Peers fields
// are overwritten per node.
func StartLocal(n int, scfg serve.Config, ccfg Config) (*Fleet, error) {
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, prev := range listeners[:i] {
				prev.Close()
			}
			return nil, err
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	f := &Fleet{}
	for i := 0; i < n; i++ {
		node := &Node{URL: urls[i], addr: listeners[i].Addr().String(), scfg: scfg, ccfg: ccfg}
		node.ccfg.Self = urls[i]
		node.ccfg.Peers = urls
		node.boot(listeners[i])
		f.Nodes = append(f.Nodes, node)
	}
	return f, nil
}

// boot starts the node's serve+router stack on l. Caller holds no lock
// (construction) or the node lock (restart).
func (n *Node) boot(l net.Listener) {
	n.srv = serve.New(n.scfg)
	n.router = New(n.ccfg, n.srv)
	n.hs = &http.Server{Handler: n.router.Handler()}
	n.alive = true
	hs := n.hs
	go func() { _ = hs.Serve(l) }()
}

// Kill abruptly stops the node — listener and open connections closed,
// in-flight requests dropped mid-write — modeling a crashed instance,
// not a drained one.
func (n *Node) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	n.alive = false
	_ = n.hs.Close()
	// Release the dead server's base context so its in-flight pipeline
	// work unwinds instead of leaking goroutines.
	_ = n.srv.Shutdown(closedContext())
}

// Restart brings a killed node back on the same address with a fresh
// serve.Server — process-restart semantics: empty caches, clean
// quarantine table, zeroed counters. The fleet's peer list is static,
// so the address must be rebound; brief races with the dying listener
// are absorbed by a retry loop.
func (n *Node) Restart() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.alive {
		return nil
	}
	var l net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		l, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("cluster: rebind %s: %w", n.addr, err)
	}
	n.boot(l)
	return nil
}

// Alive reports whether the node is serving.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// Server returns the node's current serve tier (changes across Restart).
func (n *Node) Server() *serve.Server {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.srv
}

// Router returns the node's current routing tier (changes across Restart).
func (n *Node) Router() *Router {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.router
}

// Stop drains the node gracefully: stop accepting, let in-flight
// requests finish within ctx, then release the serve tier.
func (n *Node) Stop(ctx context.Context) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return nil
	}
	n.alive = false
	err := n.hs.Shutdown(ctx)
	if serr := n.srv.Shutdown(ctx); err == nil {
		err = serr
	}
	return err
}

// Stop drains every live node in the fleet.
func (f *Fleet) Stop(ctx context.Context) error {
	var first error
	for _, n := range f.Nodes {
		if err := n.Stop(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// URLs returns the fleet's peer list.
func (f *Fleet) URLs() []string {
	urls := make([]string, len(f.Nodes))
	for i, n := range f.Nodes {
		urls[i] = n.URL
	}
	return urls
}

// closedContext returns an already-cancelled context, for shutdown
// paths that must not block.
func closedContext() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

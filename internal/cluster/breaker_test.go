package cluster

import (
	"testing"
	"time"
)

// fakeClock drives the breaker's cooldown deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker() (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(8, time.Second)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensOnErrorRate(t *testing.T) {
	b, _ := newTestBreaker()
	// Below the minimum sample count nothing can trip.
	for i := 0; i < breakerMinSamples-1; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.report(false)
	}
	if st := b.snapshot(); st.State != "closed" {
		t.Fatalf("state = %q before min samples, want closed", st.State)
	}
	b.report(false) // 4th failure of 4 samples: 100% ≥ 50%
	if st := b.snapshot(); st.State != "open" || st.Opens != 1 {
		t.Fatalf("state = %q opens = %d, want open/1", st.State, st.Opens)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
}

func TestBreakerMixedTrafficStaysClosedUnderHalf(t *testing.T) {
	b, _ := newTestBreaker()
	// 1 failure per 2 successes: 33% < 50% over any window → stays closed.
	for i := 0; i < 30; i++ {
		b.report(i%3 == 0)
		b.report(true)
		b.report(true)
		if !b.allow() {
			t.Fatalf("breaker opened at %d%% failure rate (iteration %d)", 33, i)
		}
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	b, clk := newTestBreaker()
	for i := 0; i < breakerMinSamples; i++ {
		b.report(false)
	}
	if st := b.snapshot(); st.State != "open" {
		t.Fatalf("state = %q, want open", st.State)
	}
	clk.advance(time.Second + time.Millisecond)
	// Cooldown elapsed: exactly one probe is admitted.
	if !b.allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.report(true)
	if st := b.snapshot(); st.State != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", st.State)
	}
	if !b.allow() {
		t.Fatal("recovered breaker refused a request")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker()
	for i := 0; i < breakerMinSamples; i++ {
		b.report(false)
	}
	clk.advance(time.Second + time.Millisecond)
	if !b.allow() {
		t.Fatal("probe refused")
	}
	b.report(false)
	if st := b.snapshot(); st.State != "open" || st.Opens != 2 {
		t.Fatalf("state = %q opens = %d after failed probe, want open/2", st.State, st.Opens)
	}
	// The fresh cooldown starts at the failed probe, not the first trip.
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request without a fresh cooldown")
	}
	clk.advance(time.Second + time.Millisecond)
	if !b.allow() {
		t.Fatal("second cooldown did not admit a probe")
	}
}

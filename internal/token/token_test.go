package token

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF:      "EOF",
		IDENT:    "identifier",
		Arrow:    "->",
		Question: "?",
		Shl:      "<<",
		KwClass:  "class",
		KwEnum:   "enum",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(9999).String() == "" {
		t.Error("unknown kinds should still render")
	}
}

func TestKeywordsComplete(t *testing.T) {
	// Every keyword spelling maps to a kind that reports IsKeyword and
	// round-trips through String.
	for spelling, k := range Keywords {
		if !k.IsKeyword() {
			t.Errorf("%q maps to non-keyword kind %v", spelling, k)
		}
		if k.String() != spelling {
			t.Errorf("keyword %q renders as %q", spelling, k.String())
		}
	}
	if IDENT.IsKeyword() || Add.IsKeyword() {
		t.Error("non-keywords report IsKeyword")
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "foo"}
	if tok.String() != `identifier("foo")` {
		t.Errorf("got %q", tok.String())
	}
	if (Token{Kind: Arrow}).String() != "->" {
		t.Error("operator tokens render their spelling")
	}
}

// Package token defines the lexical token kinds of Virgil-core.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. Operator kinds are grouped so precedence tables in the
// parser can test ranges.
const (
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT  // apply
	INT    // 123, 0x1f
	CHAR   // 'a' (a byte literal)
	STRING // "hello"

	// Keywords.
	KwClass
	KwExtends
	KwDef
	KwVar
	KwNew
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwTrue
	KwFalse
	KwNull
	KwThis
	KwPrivate
	KwSuper
	KwComponent
	KwEnum

	// Punctuation.
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBracket  // [
	RBracket  // ]
	Comma     // ,
	Semi      // ;
	Colon     // :
	Dot       // .
	Arrow     // ->
	Question  // ?
	TernColon // reserved (Colon reused)

	// Operators.
	Assign  // =
	Eq      // ==
	Neq     // !=
	Lt      // <
	Gt      // >
	Le      // <=
	Ge      // >=
	Add     // +
	Sub     // -
	Mul     // *
	Div     // /
	Mod     // %
	AndAnd  // &&
	OrOr    // ||
	Not     // !
	And     // &
	Or      // |
	Xor     // ^
	Shl     // <<
	Shr     // >>
	AddEq   // +=
	SubEq   // -=
	Inc     // ++
	Dec     // --
	Tilde   // ~ (reserved)
	AtQuery // the '?' used as a type operator member; scanner emits Question
)

var names = map[Kind]string{
	EOF:     "EOF",
	ILLEGAL: "ILLEGAL",
	IDENT:   "identifier",
	INT:     "integer literal",
	CHAR:    "character literal",
	STRING:  "string literal",

	KwClass:     "class",
	KwExtends:   "extends",
	KwDef:       "def",
	KwVar:       "var",
	KwNew:       "new",
	KwIf:        "if",
	KwElse:      "else",
	KwWhile:     "while",
	KwFor:       "for",
	KwReturn:    "return",
	KwBreak:     "break",
	KwContinue:  "continue",
	KwTrue:      "true",
	KwFalse:     "false",
	KwNull:      "null",
	KwThis:      "this",
	KwPrivate:   "private",
	KwSuper:     "super",
	KwComponent: "component",
	KwEnum:      "enum",

	LParen:   "(",
	RParen:   ")",
	LBrace:   "{",
	RBrace:   "}",
	LBracket: "[",
	RBracket: "]",
	Comma:    ",",
	Semi:     ";",
	Colon:    ":",
	Dot:      ".",
	Arrow:    "->",
	Question: "?",

	Assign: "=",
	Eq:     "==",
	Neq:    "!=",
	Lt:     "<",
	Gt:     ">",
	Le:     "<=",
	Ge:     ">=",
	Add:    "+",
	Sub:    "-",
	Mul:    "*",
	Div:    "/",
	Mod:    "%",
	AndAnd: "&&",
	OrOr:   "||",
	Not:    "!",
	And:    "&",
	Or:     "|",
	Xor:    "^",
	Shl:    "<<",
	Shr:    ">>",
	AddEq:  "+=",
	SubEq:  "-=",
	Inc:    "++",
	Dec:    "--",
	Tilde:  "~",
}

// String returns the canonical spelling (or description) of k.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps identifier spellings to keyword kinds.
var Keywords = map[string]Kind{
	"class":     KwClass,
	"extends":   KwExtends,
	"def":       KwDef,
	"var":       KwVar,
	"new":       KwNew,
	"if":        KwIf,
	"else":      KwElse,
	"while":     KwWhile,
	"for":       KwFor,
	"return":    KwReturn,
	"break":     KwBreak,
	"continue":  KwContinue,
	"true":      KwTrue,
	"false":     KwFalse,
	"null":      KwNull,
	"this":      KwThis,
	"private":   KwPrivate,
	"super":     KwSuper,
	"component": KwComponent,
	"enum":      KwEnum,
}

// IsKeyword reports whether k is a keyword kind.
func (k Kind) IsKeyword() bool { return k >= KwClass && k <= KwEnum }

// Token is a lexed token: its kind, literal text, and byte offset.
type Token struct {
	Kind Kind
	Lit  string // raw text for IDENT/INT/CHAR/STRING
	Off  int    // byte offset in the file
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, CHAR, STRING:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

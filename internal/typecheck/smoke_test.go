package typecheck

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/src"
)

// checkSrc parses and checks one source string.
func checkSrc(t *testing.T, source string) (*Program, *src.ErrorList) {
	t.Helper()
	errs := &src.ErrorList{}
	f := parser.Parse("test.v", source, errs)
	if !errs.Empty() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	prog := Check([]*ast.File{f}, errs)
	return prog, errs
}

// mustCheck asserts the source checks without errors.
func mustCheck(t *testing.T, source string) *Program {
	t.Helper()
	prog, errs := checkSrc(t, source)
	if !errs.Empty() {
		t.Fatalf("unexpected check errors:\n%s", errs.Error())
	}
	return prog
}

// mustFail asserts checking fails with a message containing want.
func mustFail(t *testing.T, source, want string) {
	t.Helper()
	_, errs := checkSrc(t, source)
	if errs.Empty() {
		t.Fatalf("expected a check error containing %q, got none", want)
	}
	if !strings.Contains(errs.Error(), want) {
		t.Fatalf("expected error containing %q, got:\n%s", want, errs.Error())
	}
}

func TestSmokePaperClassA(t *testing.T) {
	mustCheck(t, `
class A {
	var f: int;
	def g: int;
	new(f, g) { }
	def m(a: byte) -> int { return f + int.!(a); }
}
class B extends A {
	new(f: int) super(f, 1) { }
	def m(a: byte) -> int { return 0; }
}
def main() -> int {
	var a = A.new(0, 1);
	var m1 = a.m;            // byte -> int
	var m2 = A.m;            // (A, byte) -> int
	var x = a.m('5');
	var y = m1('4');
	var z = m2(a, '6');
	var w = A.new;           // (int, int) -> A
	return x + y + z;
}
`)
}

func TestSmokeGenericList(t *testing.T) {
	prog := mustCheck(t, `
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
def apply<A>(list: List<A>, f: A -> void) {
	for (l = list; l != null; l = l.tail) f(l.head);
}
def print(i: int) { System.puti(i); }
def main() {
	var a = List<int>.new(0, null);
	var b = List<(int, int)>.new((3, 4), null);
	apply<int>(a, print);
	var c = List.new(0, null);
	apply(c, print);
	var e = List<bool>.?(a);
	var f = List<void>.?(a);
}
`)
	if prog.Main == nil {
		t.Fatal("main not found")
	}
}

func TestSmokeTimePattern(t *testing.T) {
	mustCheck(t, `
def time<A, B>(func: A -> B, a: A) -> (B, int) {
	var start = clock.ticks();
	return (func(a), clock.ticks() - start);
}
def sqrt(x: int) -> int { return x; }
def main() { System.puti(time(sqrt, 37).1); }
`)
}

func TestSmokeVarianceExample(t *testing.T) {
	// (o1)-(o7): f(b) is an error, apply(b, g) is fine.
	base := `
class Animal { }
class Bat extends Animal { }
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
def apply<A>(list: List<A>, f: A -> void) {
	for (l = list; l != null; l = l.tail) f(l.head);
}
def g(a: Animal) { }
def f(list: List<Animal>) { }
var b: List<Bat>;
`
	mustCheck(t, base+`def main() { apply(b, g); }`)
	mustFail(t, base+`def main() { f(b); }`, "does not match parameter")
}

func TestSmokeOperatorsAsFunctions(t *testing.T) {
	mustCheck(t, `
class A { def m() { } }
def main() {
	var z = byte.==;   // (byte, byte) -> bool
	var w = A.!=;      // (A, A) -> bool
	var p = int.+;     // (int, int) -> int
	var m = int.-;     // (int, int) -> int
	var q = p(1, 2) + m(4, 3);
	var t = z('a', 'b') || w(null, null);
}
`)
}

func TestSmokeOverloadingRejected(t *testing.T) {
	mustFail(t, `
class A {
	def m(a: int) { }
	def m(a: bool) { }
}
`, "overloading")
}

func TestSmokeNoImplicitConversion(t *testing.T) {
	mustFail(t, `
def main() {
	var x: int = 'a';
}
`, "cannot assign byte to int")
}

package typecheck

import "testing"

func TestComponentBasics(t *testing.T) {
	mustCheck(t, `
component Counter {
	var count: int;
	def bump() -> int { count++; return count; }
}
def main() {
	Counter.count = 5;
	var c = Counter.bump();
	var f = Counter.bump;   // component function as a value
	var g: void -> int = f;
}
`)
}

func TestComponentUnqualifiedAccess(t *testing.T) {
	mustCheck(t, `
component C {
	var x: int;
	def get() -> int { return x; }
	def indirect() -> int { return get(); }
}
`)
}

func TestComponentPrivate(t *testing.T) {
	mustCheck(t, `
component C {
	private def secret() -> int { return 1; }
	def open() -> int { return secret(); }
}
`)
	mustFail(t, `
component C {
	private def secret() -> int { return 1; }
}
def main() { var x = C.secret(); }
`, "private")
}

func TestComponentImmutableField(t *testing.T) {
	mustFail(t, `
component C { def x = 5; }
def main() { C.x = 6; }
`, "immutable")
}

func TestComponentDuplicates(t *testing.T) {
	mustFail(t, `
component C { var x: int; def x() { } }
`, "duplicate member")
	mustFail(t, `
component C { }
component C { }
`, "duplicate")
	mustFail(t, `
class C { }
component C { }
`, "duplicate")
}

func TestComponentNoMember(t *testing.T) {
	mustFail(t, `
component C { var x: int; }
def main() { var y = C.nope; }
`, "no member")
}

func TestComponentGenericFunction(t *testing.T) {
	mustCheck(t, `
component Util {
	def id<T>(x: T) -> T { return x; }
}
def main() {
	var a = Util.id(5);
	var b = Util.id<bool>(true);
	var c = Util.id((1, 2));
}
`)
}

func TestComponentAbstractFunctionRejected(t *testing.T) {
	mustFail(t, `
component C { def f() -> int; }
`, "requires a body")
}

func TestComponentShadowedByLocal(t *testing.T) {
	// A local named like a component shadows it.
	mustFail(t, `
component C { var x: int; }
def main() {
	var C = 1;
	var y = C.x;
}
`, "no member")
}

// Package typecheck resolves names and types of a parsed Virgil-core
// program, building the symbol structures the lowering phase consumes.
//
// It implements the paper's semantic rules: separate class hierarchies
// with no universal supertype (§2.1), methods usable as bound and
// unbound functions (§2.2), tuple/void degeneracies (§2.3),
// separately-checked type parameters with best-effort inference (§2.4),
// and the four universal operators == != ! ? on every type.
package typecheck

import (
	"repro/internal/ast"
	"repro/internal/types"
)

// Program is the result of checking: all symbols plus the type cache.
type Program struct {
	Types      *types.Cache
	Files      []*ast.File
	Classes    []*ClassSym
	Funcs      []*FuncSym
	Globals    []*GlobalSym
	Components []*ComponentSym
	Enums      []*EnumSym
	Main       *FuncSym

	classByDef  map[*types.ClassDef]*ClassSym
	classByName map[string]*ClassSym
	funcByName  map[string]*FuncSym
	globByName  map[string]*GlobalSym
	compByName  map[string]*ComponentSym
	enumByName  map[string]*EnumSym
}

// ClassOf returns the class symbol for a class definition.
func (p *Program) ClassOf(def *types.ClassDef) *ClassSym { return p.classByDef[def] }

// LookupClass finds a class symbol by name, or nil.
func (p *Program) LookupClass(name string) *ClassSym { return p.classByName[name] }

// LookupFunc finds a top-level function by name, or nil.
func (p *Program) LookupFunc(name string) *FuncSym { return p.funcByName[name] }

// ClassSym is a checked class declaration.
type ClassSym struct {
	Name    string
	Decl    *ast.ClassDecl
	Def     *types.ClassDef
	Parent  *ClassSym
	Fields  []*FieldSym  // declared fields, in order
	Methods []*MethodSym // declared methods, in order
	Ctor    *CtorSym     // never nil after checking

	// AllFields is the full slot-ordered field list including inherited
	// fields (inherited first). Field types are in terms of this class's
	// own type parameters.
	AllFields []*FieldSym
	// Vtable maps slot index to the implementing method, including
	// inherited and overridden methods.
	Vtable []*MethodSym

	Depth int // inheritance depth, 0 for roots
}

// FieldOf finds a field by name along the inheritance chain, returning
// the field plus the class that declares it.
func (c *ClassSym) FieldOf(name string) *FieldSym {
	for w := c; w != nil; w = w.Parent {
		for _, f := range w.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// MethodOf finds a method by name along the inheritance chain.
func (c *ClassSym) MethodOf(name string) *MethodSym {
	for w := c; w != nil; w = w.Parent {
		for _, m := range w.Methods {
			if m.Name == name {
				return m
			}
		}
	}
	return nil
}

// FieldSym is a checked field.
type FieldSym struct {
	Name    string
	Mutable bool
	Owner   *ClassSym
	Decl    *ast.FieldDecl // nil for compact class-parameter fields
	Type    types.Type     // in terms of the owner's type params
	Slot    int            // index into the object's field slots
	Init    ast.Expr       // optional initializer
}

// FuncSym is a method or top-level function. Component functions are
// top-level functions with qualified names and a non-nil Comp.
type FuncSym struct {
	Name       string
	Owner      *ClassSym     // nil for top-level functions
	Comp       *ComponentSym // nil outside components
	Decl       *ast.MethodDecl
	TypeParams []*types.TypeParamDef
	Params     []*ast.Param
	ParamTypes []types.Type
	Ret        types.Type
	Abstract   bool
	Private    bool
	VtSlot     int // vtable slot for methods; -1 for top-level
}

// MethodSym is an alias kept for readability at call sites that deal
// specifically with class methods.
type MethodSym = FuncSym

// ParamTuple returns the method's parameter type as a single (possibly
// degenerate) tuple.
func (f *FuncSym) ParamTuple(c *types.Cache) types.Type { return c.TupleOf(f.ParamTypes) }

// Sig returns the function type ParamTuple -> Ret.
func (f *FuncSym) Sig(c *types.Cache) *types.Func {
	return c.FuncOf(f.ParamTuple(c), f.Ret)
}

// UnboundSig returns the type of the method used as an unbound class
// method (§2.2): the receiver becomes the first parameter.
func (f *FuncSym) UnboundSig(c *types.Cache, recv types.Type) *types.Func {
	elems := append([]types.Type{recv}, f.ParamTypes...)
	return c.FuncOf(c.TupleOf(elems), f.Ret)
}

// CtorSym is a constructor (explicit, compact, or implicit default).
type CtorSym struct {
	Owner      *ClassSym
	Decl       *ast.CtorDecl // nil for compact/implicit constructors
	Params     []*ast.Param  // nil for implicit
	ParamTypes []types.Type
	// FieldParams[i] is the field auto-assigned from parameter i, or nil.
	FieldParams []*FieldSym
	// Compact is true for `class C(f: T)` constructors.
	Compact bool
}

// ParamTuple returns the constructor's parameter type as a tuple.
func (ct *CtorSym) ParamTuple(c *types.Cache) types.Type { return c.TupleOf(ct.ParamTypes) }

// GlobalSym is a top-level variable. Component fields are globals with
// qualified names and a non-nil Comp.
type GlobalSym struct {
	Name    string
	Mutable bool
	Decl    *ast.VarDecl
	Type    types.Type
	Index   int
	Comp    *ComponentSym
}

// EnumSym is a checked enum declaration.
type EnumSym struct {
	Name string
	Decl *ast.EnumDecl
	Def  *types.EnumDef
	Type *types.Enum
}

// ComponentSym is a checked component declaration (§2: System and clock
// are built-in components; user components declare singleton state and
// functions).
type ComponentSym struct {
	Name    string
	Decl    *ast.ComponentDecl
	Fields  map[string]*GlobalSym
	Methods map[string]*FuncSym
}

// LocalSym is a local variable or parameter binding inside a body.
type LocalSym struct {
	Name    string
	Mutable bool
	Type    types.Type
	IsParam bool
	// Decl is the declaring node (a *ast.LocalDecl, *ast.Param, or
	// *ast.ForStmt), used by lowering as the binding identity.
	Decl any
}

// BuiltinFunc describes a member of a built-in component such as
// System.puts or clock.ticks.
type BuiltinFunc struct {
	Component string
	Name      string
	Param     types.Type
	Ret       types.Type
}

// OperatorSym describes one of the universal or primitive operators used
// as a first-class function (b8-b15).
type OperatorSym struct {
	// Op is the operator spelling: "==", "!=", "!", "?", "+", ...
	Op string
	// Subject is the type the operator was selected from (the T in
	// T.==). For casts/queries this is the target type.
	Subject types.Type
	// Input is the operand type: for casts/queries, the source type
	// (explicit via T.!<F> or inferred); for binary operators, the
	// operand type.
	Input types.Type
	// FreeInput, when non-nil, is the not-yet-inferred input type
	// parameter of a cast/query.
	FreeInput *types.TypeParamDef
}

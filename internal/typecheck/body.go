package typecheck

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/src"
	"repro/internal/token"
	"repro/internal/types"
)

// Builtins is the table of built-in component functions available to
// every program: a minimal System I/O component and the paper's clock
// (e1-e5).
func Builtins(tc *types.Cache) map[string]map[string]*BuiltinFunc {
	str := tc.String()
	mk := func(comp, name string, param, ret types.Type) *BuiltinFunc {
		return &BuiltinFunc{Component: comp, Name: name, Param: param, Ret: ret}
	}
	return map[string]map[string]*BuiltinFunc{
		"System": {
			"puts":  mk("System", "puts", str, tc.Void()),
			"puti":  mk("System", "puti", tc.Int(), tc.Void()),
			"putc":  mk("System", "putc", tc.Byte(), tc.Void()),
			"putb":  mk("System", "putb", tc.Bool(), tc.Void()),
			"ln":    mk("System", "ln", tc.Void(), tc.Void()),
			"error": mk("System", "error", str, tc.Void()),
		},
		"clock": {
			"ticks": mk("clock", "ticks", tc.Void(), tc.Int()),
		},
	}
}

// componentRef marks a VarRef that resolved to a built-in component.
type componentRef struct{ Name string }

// scope is a lexical scope of local bindings.
type scope struct {
	parent *scope
	names  map[string]*LocalSym
}

func (s *scope) lookup(name string) *LocalSym {
	for w := s; w != nil; w = w.parent {
		if l, ok := w.names[name]; ok {
			return l
		}
	}
	return nil
}

func (s *scope) declare(l *LocalSym) { s.names[l.Name] = l }

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: map[string]*LocalSym{}}
}

// bodyCtx carries the context while checking one body.
type bodyCtx struct {
	c        *Checker
	cls      *ClassSym     // enclosing class, or nil
	comp     *ComponentSym // enclosing component, or nil
	fn       *FuncSym      // enclosing method/function, or nil (ctor, inits)
	ctor     *CtorSym      // set when checking a constructor body
	ret      types.Type
	tsc      *typeScope
	scope    *scope
	loop     int
	builtins map[string]map[string]*BuiltinFunc
}

func (b *bodyCtx) tc() *types.Cache { return b.c.tc }

func (b *bodyCtx) errorf(pos src.Pos, format string, args ...any) {
	b.c.errorf(pos, format, args...)
}

// selfType returns the type of `this` in the current context.
func (b *bodyCtx) selfType() types.Type {
	if b.cls == nil {
		return nil
	}
	return b.tc().SelfType(b.cls.Def)
}

// checkBodies checks every method, constructor, field initializer,
// top-level function body and global initializer.
func (c *Checker) checkBodies() {
	builtins := Builtins(c.tc)
	newCtx := func(cls *ClassSym, fn *FuncSym, ctor *CtorSym, ret types.Type, tsc *typeScope) *bodyCtx {
		return &bodyCtx{c: c, cls: cls, fn: fn, ctor: ctor, ret: ret, tsc: tsc, scope: newScope(nil), builtins: builtins}
	}
	// Global initializers, in declaration order.
	for _, g := range c.prog.Globals {
		if g.Decl.Init != nil {
			b := newCtx(nil, nil, nil, c.tc.Void(), newTypeScope())
			b.comp = g.Comp // component field inits see their component
			t := b.checkExpr(g.Decl.Init, g.Type)
			if g.Type == nil {
				if isNullType(t) {
					b.errorf(g.Decl.Pos(), "cannot infer the type of null; declare a type for %s", g.Name)
					t = c.tc.Void()
				}
				g.Type = t
			} else if !c.tc.IsAssignable(t, g.Type) {
				b.errorf(g.Decl.Pos(), "cannot assign %s to %s in initializer of %s", t, g.Type, g.Name)
			}
		} else if g.Type == nil {
			c.errorf(g.Decl.Pos(), "variable %s requires a type or initializer", g.Name)
			g.Type = c.tc.Void()
		}
		g.Decl.TypeOf = g.Type
	}
	// Classes: field initializers, constructor bodies, method bodies.
	for _, cls := range c.prog.Classes {
		csc := newTypeScope().with(cls.Def.TypeParams)
		for _, f := range cls.Fields {
			if f.Init == nil {
				continue
			}
			b := newCtx(cls, nil, nil, c.tc.Void(), csc)
			t := b.checkExpr(f.Init, f.Type)
			if !c.tc.IsAssignable(t, f.Type) {
				b.errorf(f.Init.Pos(), "cannot assign %s to field %s of type %s", t, f.Name, f.Type)
			}
		}
		c.checkCtorBody(cls, csc, builtins)
		for _, m := range cls.Methods {
			if m.Abstract {
				continue
			}
			c.checkFuncBody(cls, m, csc, builtins)
		}
	}
	for _, fn := range c.prog.Funcs {
		c.checkFuncBody(nil, fn, newTypeScope(), builtins)
	}
}

func (c *Checker) checkFuncBody(cls *ClassSym, fn *FuncSym, outer *typeScope, builtins map[string]map[string]*BuiltinFunc) {
	if fn.Decl.Body == nil {
		if fn.Comp != nil {
			c.errorf(fn.Decl.Pos(), "component function %s requires a body", fn.Name)
		}
		return
	}
	tsc := outer.with(fn.TypeParams)
	b := &bodyCtx{c: c, cls: cls, comp: fn.Comp, fn: fn, ret: fn.Ret, tsc: tsc, scope: newScope(nil), builtins: builtins}
	for i, p := range fn.Params {
		b.scope.declare(&LocalSym{Name: p.Name.Name, Mutable: true, Type: fn.ParamTypes[i], IsParam: true, Decl: p})
	}
	b.checkStmt(fn.Decl.Body)
	if fn.Ret != c.tc.Void() && !terminates(fn.Decl.Body) {
		c.errorf(fn.Decl.Pos(), "method %s: missing return of %s on some paths", fn.Name, fn.Ret)
	}
}

func (c *Checker) checkCtorBody(cls *ClassSym, csc *typeScope, builtins map[string]map[string]*BuiltinFunc) {
	ct := cls.Ctor
	b := &bodyCtx{c: c, cls: cls, ctor: ct, ret: c.tc.Void(), tsc: csc, scope: newScope(nil), builtins: builtins}
	for i, p := range ct.Params {
		b.scope.declare(&LocalSym{Name: p.Name.Name, Mutable: true, Type: ct.ParamTypes[i], IsParam: true, Decl: p})
	}
	// Check the super() call against the parent's constructor.
	parent := cls.Parent
	if ct.Decl != nil && ct.Decl.HasSuper {
		if parent == nil {
			b.errorf(ct.Decl.Pos(), "class %s has no parent; super(...) is illegal", cls.Name)
		} else {
			ptypes := c.parentCtorParamTypes(cls)
			args := make([]types.Type, len(ct.Decl.SuperArgs))
			for i, a := range ct.Decl.SuperArgs {
				var exp types.Type
				if i < len(ptypes) {
					exp = ptypes[i]
				}
				args[i] = b.checkExpr(a, exp)
			}
			argTuple := argTupleType(c.tc, args)
			want := c.tc.TupleOf(ptypes)
			if !c.tc.IsAssignable(argTuple, want) {
				b.errorf(ct.Decl.Pos(), "super arguments %s do not match parent constructor %s", argTuple, want)
			}
		}
	} else if parent != nil {
		// No explicit super: the parent constructor must take no
		// arguments.
		if len(c.parentCtorParamTypes(cls)) != 0 {
			pos := cls.Decl.Pos()
			if ct.Decl != nil {
				pos = ct.Decl.Pos()
			}
			b.errorf(pos, "class %s must call super(...): parent %s constructor takes parameters", cls.Name, parent.Name)
		}
	}
	if ct.Decl != nil && ct.Decl.Body != nil {
		b.checkStmt(ct.Decl.Body)
	}
}

// parentCtorParamTypes returns the parent constructor's parameter types
// substituted by cls's parent instantiation.
func (c *Checker) parentCtorParamTypes(cls *ClassSym) []types.Type {
	parent := cls.Parent
	if parent == nil {
		return nil
	}
	env := types.BindParams(parent.Def.TypeParams, cls.Def.ParentType.Args)
	out := make([]types.Type, len(parent.Ctor.ParamTypes))
	for i, t := range parent.Ctor.ParamTypes {
		out[i] = c.tc.Subst(t, env)
	}
	return out
}

func isNullType(t types.Type) bool {
	p, ok := t.(*types.Prim)
	return ok && p.Kind == types.KindNull
}

// argTupleType combines checked argument types into the single tuple
// argument of §2.3.
func argTupleType(tc *types.Cache, args []types.Type) types.Type {
	if len(args) == 1 {
		return args[0]
	}
	return tc.TupleOf(args)
}

// ---------------------------------------------------------------- stmts

func (b *bodyCtx) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		if s.DeclGroup {
			// Multi-declarator statement: declarations join the
			// enclosing scope.
			for _, st := range s.Stmts {
				b.checkStmt(st)
			}
			return
		}
		outer := b.scope
		b.scope = newScope(outer)
		for _, st := range s.Stmts {
			b.checkStmt(st)
		}
		b.scope = outer
	case *ast.EmptyStmt:
	case *ast.LocalDecl:
		var declared types.Type
		if s.Type != nil {
			declared = b.c.resolveType(s.Type, b.tsc)
		}
		var t types.Type
		if s.Init != nil {
			t = b.checkExpr(s.Init, declared)
		}
		switch {
		case declared != nil && t != nil:
			if !b.tc().IsAssignable(t, declared) {
				b.errorf(s.Pos(), "cannot assign %s to %s in declaration of %s", t, declared, s.Name.Name)
			}
			t = declared
		case declared != nil:
			t = declared
		case t == nil:
			b.errorf(s.Pos(), "local %s requires a type or initializer", s.Name.Name)
			t = b.tc().Void()
		case isNullType(t):
			b.errorf(s.Pos(), "cannot infer the type of null; declare a type for %s", s.Name.Name)
			t = b.tc().Void()
		}
		s.TypeOf = t
		b.scope.declare(&LocalSym{Name: s.Name.Name, Mutable: s.Mutable, Type: t, Decl: s})
	case *ast.ExprStmt:
		b.checkExpr(s.E, nil)
	case *ast.IfStmt:
		b.checkCond(s.Cond)
		b.checkStmt(s.Then)
		if s.Else != nil {
			b.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		b.checkCond(s.Cond)
		b.loop++
		b.checkStmt(s.Body)
		b.loop--
	case *ast.ForStmt:
		outer := b.scope
		b.scope = newScope(outer)
		if s.Var.Name != "" {
			t := b.checkExpr(s.Init, nil)
			if isNullType(t) {
				b.errorf(s.Pos(), "cannot infer the type of null in for-loop binding %s", s.Var.Name)
				t = b.tc().Void()
			}
			s.VarType = t
			local := &LocalSym{Name: s.Var.Name, Mutable: true, Type: t, Decl: s}
			b.scope.declare(local)
		}
		if s.Cond != nil {
			b.checkCond(s.Cond)
		}
		if s.Post != nil {
			b.checkExpr(s.Post, nil)
		}
		b.loop++
		b.checkStmt(s.Body)
		b.loop--
		b.scope = outer
	case *ast.ReturnStmt:
		if s.Value == nil {
			if b.ret != b.tc().Void() {
				b.errorf(s.Pos(), "missing return value of type %s", b.ret)
			}
			return
		}
		t := b.checkExpr(s.Value, b.ret)
		if !b.tc().IsAssignable(t, b.ret) {
			b.errorf(s.Pos(), "cannot return %s from a method returning %s", t, b.ret)
		}
	case *ast.BreakStmt:
		if b.loop == 0 {
			b.errorf(s.Pos(), "break outside loop")
		}
	case *ast.ContinueStmt:
		if b.loop == 0 {
			b.errorf(s.Pos(), "continue outside loop")
		}
	default:
		b.errorf(s.Pos(), "unhandled statement")
	}
}

func (b *bodyCtx) checkCond(e ast.Expr) {
	t := b.checkExpr(e, b.tc().Bool())
	if t != b.tc().Bool() {
		b.errorf(e.Pos(), "condition must be bool, found %s", t)
	}
}

// terminates conservatively reports whether s returns on all paths.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.Block:
		for _, st := range s.Stmts {
			if terminates(st) {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Then) && terminates(s.Else)
	case *ast.WhileStmt:
		// `while (true)` without break is treated as terminating.
		if c, ok := s.Cond.(*ast.BoolLit); ok && c.Value {
			return !hasBreak(s.Body)
		}
		return false
	}
	return false
}

func hasBreak(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BreakStmt:
		return true
	case *ast.Block:
		for _, st := range s.Stmts {
			if hasBreak(st) {
				return true
			}
		}
	case *ast.IfStmt:
		if hasBreak(s.Then) {
			return true
		}
		if s.Else != nil {
			return hasBreak(s.Else)
		}
	}
	return false
}

// ---------------------------------------------------------------- exprs

// checkExpr computes and records the type of e. expected, when non-nil,
// guides null typing and tuple element expectations; it does not relax
// the subtyping checks done by callers.
func (b *bodyCtx) checkExpr(e ast.Expr, expected types.Type) types.Type {
	t := b.checkExprInner(e, expected)
	if t == nil {
		t = b.tc().Void()
	}
	e.SetType(t)
	return t
}

func (b *bodyCtx) checkExprInner(e ast.Expr, expected types.Type) types.Type {
	tc := b.tc()
	switch e := e.(type) {
	case *ast.IntLit:
		if e.Value > 0x7fffffff || e.Value < -0x80000000 {
			b.errorf(e.Pos(), "integer literal %d out of 32-bit range", e.Value)
		}
		return tc.Int()
	case *ast.ByteLit:
		return tc.Byte()
	case *ast.BoolLit:
		return tc.Bool()
	case *ast.StrLit:
		return tc.String()
	case *ast.NullLit:
		if expected != nil && types.IsRefType(expected) {
			return expected
		}
		return tc.Null()
	case *ast.ThisExpr:
		if b.cls == nil {
			b.errorf(e.Pos(), "this outside of a class")
			return tc.Void()
		}
		return b.selfType()
	case *ast.TupleExpr:
		var expElems []types.Type
		if exp, ok := expected.(*types.Tuple); ok && len(exp.Elems) == len(e.Elems) {
			expElems = exp.Elems
		}
		elems := make([]types.Type, len(e.Elems))
		for i, el := range e.Elems {
			var exp types.Type
			if expElems != nil {
				exp = expElems[i]
			}
			elems[i] = b.checkExpr(el, exp)
			if isNullType(elems[i]) {
				b.errorf(el.Pos(), "cannot infer the type of null inside a tuple")
				elems[i] = tc.Void()
			}
		}
		return tc.TupleOf(elems)
	case *ast.VarRef:
		return b.checkVarRef(e, expected)
	case *ast.TypeExpr:
		b.errorf(e.Pos(), "a type is not a value")
		return tc.Void()
	case *ast.MemberExpr:
		return b.checkMember(e, expected)
	case *ast.CallExpr:
		return b.checkCall(e, expected)
	case *ast.IndexExpr:
		at := b.checkExpr(e.Arr, nil)
		arr, ok := at.(*types.Array)
		if !ok {
			b.errorf(e.Pos(), "cannot index non-array type %s", at)
			return tc.Void()
		}
		it := b.checkExpr(e.Idx, tc.Int())
		if it != tc.Int() {
			b.errorf(e.Idx.Pos(), "array index must be int, found %s", it)
		}
		return arr.Elem
	case *ast.BinaryExpr:
		return b.checkBinary(e)
	case *ast.UnaryExpr:
		t := b.checkExpr(e.E, nil)
		switch e.Op {
		case token.Sub:
			if t != tc.Int() {
				b.errorf(e.Pos(), "unary - requires int, found %s", t)
			}
			return tc.Int()
		case token.Not:
			if t != tc.Bool() {
				b.errorf(e.Pos(), "unary ! requires bool, found %s", t)
			}
			return tc.Bool()
		}
		b.errorf(e.Pos(), "unknown unary operator")
		return tc.Void()
	case *ast.TernaryExpr:
		b.checkCond(e.Cond)
		t1 := b.checkExpr(e.Then, expected)
		t2 := b.checkExpr(e.Els, expected)
		lub := tc.Lub(t1, t2)
		if lub == nil {
			b.errorf(e.Pos(), "incompatible branches of ?: (%s vs %s)", t1, t2)
			return t1
		}
		if isNullType(lub) {
			b.errorf(e.Pos(), "cannot infer the type of null in ?:")
			return tc.Void()
		}
		return lub
	case *ast.AssignExpr:
		return b.checkAssign(e)
	case *ast.IncDecExpr:
		t := b.checkAssignTarget(e.Target)
		if t != tc.Int() {
			b.errorf(e.Pos(), "++/-- requires an int target, found %s", t)
		}
		return tc.Void()
	}
	b.errorf(e.Pos(), "unhandled expression")
	return tc.Void()
}

// resolveTypeArgs resolves explicit type argument syntax.
func (b *bodyCtx) resolveTypeArgs(refs []ast.TypeRef) []types.Type {
	out := make([]types.Type, len(refs))
	for i, r := range refs {
		out[i] = b.c.resolveType(r, b.tsc)
	}
	return out
}

// checkVarRef resolves an identifier in value position, following the
// order: locals, class members (implicit this), top-level functions and
// globals, then type names and built-in components.
func (b *bodyCtx) checkVarRef(e *ast.VarRef, expected types.Type) types.Type {
	tc := b.tc()
	name := e.Name.Name
	explicit := e.TypeArgs != nil

	if l := b.scope.lookup(name); l != nil {
		if explicit {
			b.errorf(e.Pos(), "local %s does not take type arguments", name)
		}
		e.Binding = l
		return l.Type
	}

	// Members of the enclosing component, unqualified.
	if b.comp != nil {
		if g := b.comp.Fields[name]; g != nil {
			if explicit {
				b.errorf(e.Pos(), "variable %s does not take type arguments", name)
			}
			if g.Type == nil {
				b.errorf(e.Pos(), "variable %s used before its type is known", name)
				return tc.Void()
			}
			e.Binding = g
			return g.Type
		}
		if fn := b.comp.Methods[name]; fn != nil {
			e.Binding = fn
			return b.topFuncValueType(e, fn, explicit)
		}
	}

	// Implicit this: fields and methods of the enclosing class chain.
	if b.cls != nil {
		if f := b.cls.FieldOf(name); f != nil {
			if explicit {
				b.errorf(e.Pos(), "field %s does not take type arguments", name)
			}
			e.Binding = f
			return b.fieldTypeIn(f, b.selfType().(*types.Class))
		}
		if m := b.cls.MethodOf(name); m != nil {
			// A bare method name is the method bound to this (g6-g7).
			e.Binding = m
			return b.methodValueType(e, m, b.selfType().(*types.Class), explicit)
		}
	}

	if fn := b.c.prog.funcByName[name]; fn != nil {
		e.Binding = fn
		return b.topFuncValueType(e, fn, explicit)
	}

	if g := b.c.prog.globByName[name]; g != nil {
		if explicit {
			b.errorf(e.Pos(), "variable %s does not take type arguments", name)
		}
		if g.Type == nil {
			b.errorf(e.Pos(), "variable %s used before its type is known", name)
			return tc.Void()
		}
		e.Binding = g
		return g.Type
	}

	// Type names: classes, primitives, Array, string, and type params.
	if t := b.tryTypeName(e); t != nil {
		e.IsTypeName = true
		e.ResolvedType = t
		return tc.Void() // a bare type is not a value; members give values
	}

	if b.builtins[name] != nil {
		e.Binding = &componentRef{Name: name}
		return tc.Void()
	}

	b.errorf(e.Pos(), "unknown identifier %q", name)
	return tc.Void()
}

// topFuncValueType types a top-level (or component) function used as a
// value, handling explicit and free type parameters.
func (b *bodyCtx) topFuncValueType(e *ast.VarRef, fn *FuncSym, explicit bool) types.Type {
	tc := b.tc()
	if len(fn.TypeParams) == 0 {
		if explicit {
			b.errorf(e.Pos(), "function %s does not take type arguments", fn.Name)
		}
		return fn.Sig(tc)
	}
	if explicit {
		args := b.resolveTypeArgs(e.TypeArgs)
		if len(args) != len(fn.TypeParams) {
			b.errorf(e.Pos(), "function %s expects %d type argument(s), got %d", fn.Name, len(fn.TypeParams), len(args))
			return tc.Void()
		}
		e.TypeArgsOf = args
		env := types.BindParams(fn.TypeParams, args)
		return tc.Subst(fn.Sig(tc), env)
	}
	e.FreeParams = fn.TypeParams
	return fn.Sig(tc)
}

// tryTypeName resolves e as a type name, returning nil if it is not one.
// For a generic class used without type arguments (d10'), the class's
// own parameters are left free for inference.
func (b *bodyCtx) tryTypeName(e *ast.VarRef) types.Type {
	tc := b.tc()
	name := e.Name.Name
	if p, ok := b.tsc.params[name]; ok && e.TypeArgs == nil {
		return tc.ParamRef(p)
	}
	switch name {
	case "int", "byte", "bool", "void", "string":
		if e.TypeArgs != nil {
			b.errorf(e.Pos(), "%s does not take type arguments", name)
		}
		switch name {
		case "int":
			return tc.Int()
		case "byte":
			return tc.Byte()
		case "bool":
			return tc.Bool()
		case "void":
			return tc.Void()
		case "string":
			return tc.String()
		}
	case "Array":
		if len(e.TypeArgs) == 1 {
			return tc.ArrayOf(b.c.resolveType(e.TypeArgs[0], b.tsc))
		}
		b.errorf(e.Pos(), "Array requires exactly one type argument")
		return tc.ArrayOf(tc.Void())
	}
	cls := b.c.prog.classByName[name]
	if cls == nil {
		if en := b.c.prog.enumByName[name]; en != nil {
			if e.TypeArgs != nil {
				b.errorf(e.Pos(), "enum %s takes no type arguments", name)
			}
			return en.Type
		}
		return nil
	}
	if e.TypeArgs != nil {
		args := b.resolveTypeArgs(e.TypeArgs)
		if len(args) != len(cls.Def.TypeParams) {
			b.errorf(e.Pos(), "class %s expects %d type argument(s), got %d", name, len(cls.Def.TypeParams), len(args))
			return tc.SelfType(cls.Def)
		}
		e.TypeArgsOf = args
		return tc.ClassOf(cls.Def, args)
	}
	if len(cls.Def.TypeParams) > 0 {
		// Open use: List.new(...) infers the arguments at the call.
		e.FreeParams = cls.Def.TypeParams
	}
	return tc.SelfType(cls.Def)
}

// fieldTypeIn returns f's type substituted for the receiver class
// instantiation.
func (b *bodyCtx) fieldTypeIn(f *FieldSym, recv *types.Class) types.Type {
	tc := b.tc()
	// Walk from recv up to the owner, accumulating substitutions.
	env := b.envFor(f.Owner, recv)
	return tc.Subst(f.Type, env)
}

// envFor computes the substitution environment mapping owner's type
// parameters to the arguments they take when viewed from recv (which is
// owner itself or a subclass instantiation).
func (b *bodyCtx) envFor(owner *ClassSym, recv *types.Class) map[*types.TypeParamDef]types.Type {
	tc := b.tc()
	w := recv
	for w != nil && w.Def != owner.Def {
		w = tc.ParentOf(w)
	}
	if w == nil {
		return nil
	}
	return types.BindParams(owner.Def.TypeParams, w.Args)
}

// methodValueType computes the type of a method used as a bound value
// on a receiver of type recv, handling explicit or free method type
// parameters.
func (b *bodyCtx) methodValueType(e *ast.VarRef, m *MethodSym, recv *types.Class, explicit bool) types.Type {
	tc := b.tc()
	env := b.envFor(m.Owner, recv)
	sig := tc.Subst(m.Sig(tc), env).(*types.Func)
	if len(m.TypeParams) == 0 {
		if explicit {
			b.errorf(e.Pos(), "method %s does not take type arguments", m.Name)
		}
		return sig
	}
	if explicit {
		args := b.resolveTypeArgs(e.TypeArgs)
		if len(args) != len(m.TypeParams) {
			b.errorf(e.Pos(), "method %s expects %d type argument(s), got %d", m.Name, len(m.TypeParams), len(args))
			return sig
		}
		e.TypeArgsOf = args
		return tc.Subst(sig, types.BindParams(m.TypeParams, args)).(*types.Func)
	}
	e.FreeParams = m.TypeParams
	return sig
}

// opFromName maps an operator member spelling back to its token.
var opFromName = map[string]token.Kind{
	"==": token.Eq, "!=": token.Neq, "!": token.Not, "?": token.Question,
	"+": token.Add, "-": token.Sub, "*": token.Mul, "/": token.Div,
	"%": token.Mod, "<": token.Lt, ">": token.Gt, "<=": token.Le,
	">=": token.Ge, "<<": token.Shl, ">>": token.Shr, "&": token.And,
	"|": token.Or, "^": token.Xor,
}

// checkMember types recv.Name for all the paper's member forms.
func (b *bodyCtx) checkMember(e *ast.MemberExpr, expected types.Type) types.Type {
	tc := b.tc()
	name := e.Name.Name

	// Component members: System.puts, clock.ticks.
	if vr, ok := e.Recv.(*ast.VarRef); ok && vr.TypeArgs == nil &&
		b.scope.lookup(vr.Name.Name) == nil && b.builtins[vr.Name.Name] != nil {
		comp := &componentRef{Name: vr.Name.Name}
		vr.Binding = comp
		vr.SetType(tc.Void())
		fns := b.builtins[comp.Name]
		bf := fns[name]
		if bf == nil {
			b.errorf(e.Pos(), "component %s has no member %q", comp.Name, name)
			return tc.Void()
		}
		e.Kind = ast.MComponentMember
		e.Binding = bf
		return tc.FuncOf(bf.Param, bf.Ret)
	}

	// User component members: Comp.x, Comp.m (qualified access).
	if vr, ok := e.Recv.(*ast.VarRef); ok && b.scope.lookup(vr.Name.Name) == nil &&
		!(b.cls != nil && (b.cls.FieldOf(vr.Name.Name) != nil || b.cls.MethodOf(vr.Name.Name) != nil)) {
		if comp := b.c.prog.compByName[vr.Name.Name]; comp != nil {
			vr.Binding = comp
			vr.SetType(tc.Void())
			return b.checkUserComponentMember(e, comp)
		}
	}

	// Type-qualified members: T.new, T.m, T.==, (int, int).==, ...
	if t, free := b.tryRecvAsType(e.Recv); t != nil {
		e.Recv.SetType(tc.Void())
		return b.checkTypeMember(e, t, free)
	}

	rt := b.checkExpr(e.Recv, nil)
	return b.checkValueMember(e, rt, expected)
}

// tryRecvAsType interprets a member receiver as a type expression when
// possible: a type name, or a tuple of type expressions ((int, int).==).
// It returns the type plus any still-free class parameters.
func (b *bodyCtx) tryRecvAsType(e ast.Expr) (types.Type, []*types.TypeParamDef) {
	switch e := e.(type) {
	case *ast.TypeExpr:
		return b.c.resolveType(e.Ref, b.tsc), nil
	case *ast.VarRef:
		name := e.Name.Name
		// Value bindings shadow type names.
		if b.scope.lookup(name) != nil {
			return nil, nil
		}
		if b.cls != nil && (b.cls.FieldOf(name) != nil || b.cls.MethodOf(name) != nil) {
			return nil, nil
		}
		if b.c.prog.funcByName[name] != nil || b.c.prog.globByName[name] != nil {
			return nil, nil
		}
		t := b.tryTypeName(e)
		if t == nil {
			return nil, nil
		}
		e.IsTypeName = true
		e.ResolvedType = t
		return t, e.FreeParams
	case *ast.TupleExpr:
		elems := make([]types.Type, len(e.Elems))
		var free []*types.TypeParamDef
		for i, el := range e.Elems {
			t, fr := b.tryRecvAsType(el)
			if t == nil {
				return nil, nil
			}
			el.SetType(b.tc().Void())
			elems[i] = t
			free = append(free, fr...)
		}
		return b.tc().TupleOf(elems), free
	}
	return nil, nil
}

// checkUserComponentMember types Comp.x and Comp.m.
func (b *bodyCtx) checkUserComponentMember(e *ast.MemberExpr, comp *ComponentSym) types.Type {
	tc := b.tc()
	name := e.Name.Name
	if g := comp.Fields[name]; g != nil {
		if e.TypeArgs != nil {
			b.errorf(e.Pos(), "field %s does not take type arguments", name)
		}
		if g.Type == nil {
			b.errorf(e.Pos(), "variable %s used before its type is known", g.Name)
			return tc.Void()
		}
		e.Kind = ast.MGlobal
		e.Binding = g
		return g.Type
	}
	if fn := comp.Methods[name]; fn != nil {
		if fn.Private && b.comp != comp {
			b.errorf(e.Pos(), "function %s is private to component %s", name, comp.Name)
		}
		e.Kind = ast.MTopFunc
		e.Binding = fn
		if len(fn.TypeParams) == 0 {
			if e.TypeArgs != nil {
				b.errorf(e.Pos(), "function %s does not take type arguments", name)
			}
			return fn.Sig(tc)
		}
		if e.TypeArgs != nil {
			args := b.resolveTypeArgs(e.TypeArgs)
			if len(args) != len(fn.TypeParams) {
				b.errorf(e.Pos(), "function %s expects %d type argument(s), got %d", name, len(fn.TypeParams), len(args))
				return fn.Sig(tc)
			}
			e.TypeArgsOf = args
			return tc.Subst(fn.Sig(tc), types.BindParams(fn.TypeParams, args))
		}
		e.FreeParams = fn.TypeParams
		return fn.Sig(tc)
	}
	b.errorf(e.Pos(), "component %s has no member %q", comp.Name, name)
	return tc.Void()
}

// checkTypeMember types T.member: constructors, unbound class methods,
// and the universal/primitive operators (§2.2).
func (b *bodyCtx) checkTypeMember(e *ast.MemberExpr, subject types.Type, freeFromRecv []*types.TypeParamDef) types.Type {
	tc := b.tc()
	name := e.Name.Name
	e.RecvType = subject
	e.FreeParams = freeFromRecv

	if op, isOp := opFromName[name]; isOp && e.OpToken != 0 {
		return b.checkOperatorMember(e, subject, op)
	}

	switch name {
	case "new":
		switch st := subject.(type) {
		case *types.Class:
			cls := b.c.prog.classByDef[st.Def]
			ct := cls.Ctor
			env := types.BindParams(st.Def.TypeParams, st.Args)
			params := make([]types.Type, len(ct.ParamTypes))
			for i, t := range ct.ParamTypes {
				params[i] = tc.Subst(t, env)
			}
			e.Kind = ast.MNew
			e.Binding = ct
			return tc.FuncOf(tc.TupleOf(params), subject)
		case *types.Array:
			e.Kind = ast.MNew
			e.Binding = st
			return tc.FuncOf(tc.Int(), st)
		}
		b.errorf(e.Pos(), "type %s has no constructor", subject)
		return tc.Void()
	}

	if st, ok := subject.(*types.Enum); ok {
		for tag, cs := range st.Def.Cases {
			if cs == name {
				e.Kind = ast.MEnumCase
				e.TupleIdx = tag
				return st
			}
		}
		b.errorf(e.Pos(), "enum %s has no case %q", st.Def.Name, name)
		return tc.Void()
	}

	if st, ok := subject.(*types.Class); ok {
		cls := b.c.prog.classByDef[st.Def]
		if m := cls.MethodOf(name); m != nil {
			// Unbound class method: receiver becomes the first
			// parameter (b3).
			env := b.envFor(m.Owner, st)
			e.Kind = ast.MClassMethod
			e.Binding = m
			elems := append([]types.Type{subject}, m.ParamTypes...)
			sig := tc.FuncOf(tc.TupleOf(elems), m.Ret)
			sig = tc.Subst(sig, env).(*types.Func)
			if len(m.TypeParams) > 0 {
				if e.TypeArgs != nil {
					args := b.resolveTypeArgs(e.TypeArgs)
					if len(args) != len(m.TypeParams) {
						b.errorf(e.Pos(), "method %s expects %d type argument(s), got %d", name, len(m.TypeParams), len(args))
						return sig
					}
					e.TypeArgsOf = args
					return tc.Subst(sig, types.BindParams(m.TypeParams, args))
				}
				e.FreeParams = append(e.FreeParams, m.TypeParams...)
			}
			return sig
		}
		b.errorf(e.Pos(), "class %s has no member %q", st.Def.Name, name)
		return tc.Void()
	}
	b.errorf(e.Pos(), "type %s has no member %q", subject, name)
	return tc.Void()
}

// checkOperatorMember types the universal operators == != ! ? plus the
// primitive arithmetic/comparison operators used as functions (b8-b15).
func (b *bodyCtx) checkOperatorMember(e *ast.MemberExpr, subject types.Type, op token.Kind) types.Type {
	tc := b.tc()
	e.Kind = ast.MOperator
	switch op {
	case token.Eq, token.Neq:
		if e.TypeArgs != nil {
			b.errorf(e.Pos(), "operator %s takes no type arguments", e.Name.Name)
		}
		e.Binding = &OperatorSym{Op: e.Name.Name, Subject: subject, Input: subject}
		return tc.FuncOf(tc.TupleOf([]types.Type{subject, subject}), tc.Bool())
	case token.Not, token.Question:
		// Cast T.!<F>: F -> T; query T.?<F>: F -> bool. F is explicit or
		// inferred from the argument.
		sym := &OperatorSym{Op: e.Name.Name, Subject: subject}
		e.Binding = sym
		var in types.Type
		if len(e.TypeArgs) == 1 {
			in = b.c.resolveType(e.TypeArgs[0], b.tsc)
			sym.Input = in
			e.TypeArgsOf = []types.Type{in}
		} else if len(e.TypeArgs) > 1 {
			b.errorf(e.Pos(), "operator %s takes one type argument", e.Name.Name)
			in = tc.Void()
			sym.Input = in
		} else {
			f := tc.NewTypeParamDef("F", 0, sym)
			sym.FreeInput = f
			e.FreeParams = append(e.FreeParams, f)
			in = tc.ParamRef(f)
		}
		if op == token.Not {
			if sym.Input != nil && !tc.CastLegal(sym.Input, subject) {
				b.errorf(e.Pos(), "cast from %s to %s can never succeed", sym.Input, subject)
			}
			return tc.FuncOf(in, subject)
		}
		return tc.FuncOf(in, tc.Bool())
	}
	// Primitive operators.
	if e.TypeArgs != nil {
		b.errorf(e.Pos(), "operator %s takes no type arguments", e.Name.Name)
	}
	isInt := subject == tc.Int()
	isByte := subject == tc.Byte()
	switch op {
	case token.Lt, token.Gt, token.Le, token.Ge:
		if !isInt && !isByte {
			b.errorf(e.Pos(), "type %s has no operator %s", subject, e.Name.Name)
			return tc.Void()
		}
		e.Binding = &OperatorSym{Op: e.Name.Name, Subject: subject, Input: subject}
		return tc.FuncOf(tc.TupleOf([]types.Type{subject, subject}), tc.Bool())
	case token.Add, token.Sub, token.Mul, token.Div, token.Mod,
		token.Shl, token.Shr, token.And, token.Or, token.Xor:
		if !isInt {
			b.errorf(e.Pos(), "type %s has no operator %s", subject, e.Name.Name)
			return tc.Void()
		}
		e.Binding = &OperatorSym{Op: e.Name.Name, Subject: subject, Input: subject}
		return tc.FuncOf(tc.TupleOf([]types.Type{subject, subject}), subject)
	}
	b.errorf(e.Pos(), "type %s has no operator %s", subject, e.Name.Name)
	return tc.Void()
}

// checkValueMember types v.member where v is a value: tuple element
// access, array length, field access, and bound methods.
func (b *bodyCtx) checkValueMember(e *ast.MemberExpr, rt types.Type, expected types.Type) types.Type {
	tc := b.tc()
	name := e.Name.Name

	if idx, err := strconv.Atoi(name); err == nil {
		// Tuple element access (c4-c5). On a single-value type, .0 is
		// the value itself ((T) == T).
		e.Kind = ast.MTupleIndex
		e.TupleIdx = idx
		if tt, ok := rt.(*types.Tuple); ok {
			if idx < 0 || idx >= len(tt.Elems) {
				b.errorf(e.Pos(), "tuple index %d out of range for %s", idx, rt)
				return tc.Void()
			}
			return tt.Elems[idx]
		}
		if idx != 0 {
			b.errorf(e.Pos(), "tuple index %d out of range for %s", idx, rt)
		}
		return rt
	}

	if at, ok := rt.(*types.Array); ok {
		_ = at
		if name == "length" {
			e.Kind = ast.MArrayLength
			return tc.Int()
		}
		b.errorf(e.Pos(), "array type has no member %q", name)
		return tc.Void()
	}

	if _, ok := rt.(*types.Enum); ok {
		switch name {
		case "tag":
			e.Kind = ast.MEnumTag
			return tc.Int()
		case "name":
			e.Kind = ast.MEnumName
			return tc.String()
		}
		b.errorf(e.Pos(), "enum values have only .tag and .name, not %q", name)
		return tc.Void()
	}

	ct, ok := rt.(*types.Class)
	if !ok {
		b.errorf(e.Pos(), "type %s has no member %q", rt, name)
		return tc.Void()
	}
	cls := b.c.prog.classByDef[ct.Def]
	if f := cls.FieldOf(name); f != nil {
		if e.TypeArgs != nil {
			b.errorf(e.Pos(), "field %s does not take type arguments", name)
		}
		e.Kind = ast.MField
		e.Binding = f
		return b.fieldTypeIn(f, ct)
	}
	if m := cls.MethodOf(name); m != nil {
		e.Kind = ast.MBoundMethod
		e.Binding = m
		if m.Private && m.Owner != b.cls {
			b.errorf(e.Pos(), "method %s.%s is private", m.Owner.Name, name)
		}
		env := b.envFor(m.Owner, ct)
		sig := tc.Subst(m.Sig(tc), env).(*types.Func)
		if len(m.TypeParams) > 0 {
			if e.TypeArgs != nil {
				args := b.resolveTypeArgs(e.TypeArgs)
				if len(args) != len(m.TypeParams) {
					b.errorf(e.Pos(), "method %s expects %d type argument(s), got %d", name, len(m.TypeParams), len(args))
					return sig
				}
				e.TypeArgsOf = args
				return tc.Subst(sig, types.BindParams(m.TypeParams, args))
			}
			e.FreeParams = m.TypeParams
		} else if e.TypeArgs != nil {
			b.errorf(e.Pos(), "method %s does not take type arguments", name)
		}
		return sig
	}
	b.errorf(e.Pos(), "class %s has no member %q", ct.Def.Name, name)
	return tc.Void()
}

// freeParamsOf extracts pending inference parameters from a callee node.
func freeParamsOf(e ast.Expr) []*types.TypeParamDef {
	switch e := e.(type) {
	case *ast.VarRef:
		return e.FreeParams
	case *ast.MemberExpr:
		return e.FreeParams
	}
	return nil
}

// setInferred stores inferred type arguments back onto the callee node
// and clears its free parameters. For type-qualified members the
// receiver type is substituted too, so lowering sees the instantiated
// class (List.new(0, null) records List<int>).
func setInferred(tc *types.Cache, e ast.Expr, params []*types.TypeParamDef, env map[*types.TypeParamDef]types.Type) {
	args := make([]types.Type, len(params))
	for i, p := range params {
		args[i] = env[p]
	}
	switch e := e.(type) {
	case *ast.VarRef:
		e.TypeArgsOf = args
		e.FreeParams = nil
	case *ast.MemberExpr:
		e.TypeArgsOf = args
		e.FreeParams = nil
		if e.RecvType != nil {
			e.RecvType = tc.Subst(e.RecvType, env)
		}
		if sym, ok := e.Binding.(*OperatorSym); ok && sym.FreeInput != nil {
			sym.Input = env[sym.FreeInput]
		}
	}
}

// checkCall types fn(args), performing type-argument inference for open
// callees (§2.4) and checking the single-tuple-argument rule (§2.3).
func (b *bodyCtx) checkCall(e *ast.CallExpr, expected types.Type) types.Type {
	tc := b.tc()
	ft := b.checkExpr(e.Fn, nil)
	free := freeParamsOf(e.Fn)

	fn, ok := ft.(*types.Func)
	if !ok {
		if vr, isRef := e.Fn.(*ast.VarRef); isRef && vr.IsTypeName {
			b.errorf(e.Pos(), "type %s is not a function; use %s.new to construct", vr.ResolvedType, vr.ResolvedType)
		} else {
			b.errorf(e.Pos(), "cannot call non-function type %s", ft)
		}
		for _, a := range e.Args {
			b.checkExpr(a, nil)
		}
		return tc.Void()
	}

	// Determine per-argument expected types for closed callees.
	var expElems []types.Type
	if free == nil {
		expElems = paramElems(fn.Param, len(e.Args))
	}
	argTypes := make([]types.Type, len(e.Args))
	for i, a := range e.Args {
		var exp types.Type
		if expElems != nil {
			exp = expElems[i]
		}
		argTypes[i] = b.checkExpr(a, exp)
		if fp := freeParamsOf(a); fp != nil {
			b.errorf(a.Pos(), "cannot infer type arguments of %s here; supply them explicitly", describeCallee(a))
		}
	}
	argTuple := argTupleType(tc, argTypes)

	if free != nil {
		inf := types.NewInference(tc, free)
		if !unifyCallArgs(inf, fn.Param, e.Args, argTypes, tc) {
			b.errorf(e.Pos(), "cannot unify arguments %s with parameters %s", argTuple, fn.Param)
			return fn.Ret
		}
		// Also use the expected result type for parameters mentioned
		// only in the return type (e.g. Box<T -> void>-style helpers).
		if expected != nil {
			inf.Unify(fn.Ret, expected)
		}
		bindings, complete := inf.Bindings(free)
		if !complete {
			// Unbound params that never occur in the signature default
			// to void; otherwise it is an error.
			for i, bt := range bindings {
				if bt == nil {
					b.errorf(e.Pos(), "cannot infer type argument %s; supply it explicitly", free[i].Name)
					bindings[i] = tc.Void()
				}
			}
		}
		env := types.BindParams(free, bindings)
		nfn := tc.Subst(fn, env).(*types.Func)
		setInferred(tc, e.Fn, free, env)
		e.Fn.SetType(nfn)
		fn = nfn
		argTuple = argTupleType(tc, argTypes)
	}

	if !tc.IsAssignable(argTuple, fn.Param) {
		b.errorf(e.Pos(), "argument type %s does not match parameter type %s", argTuple, fn.Param)
	}

	// Reject statically illegal casts now that the input is known.
	if m, ok := e.Fn.(*ast.MemberExpr); ok {
		if sym, isOp := m.Binding.(*OperatorSym); isOp && sym.Op == "!" && sym.Input != nil {
			if !tc.CastLegal(sym.Input, sym.Subject) {
				b.errorf(e.Pos(), "cast from %s to %s can never succeed", sym.Input, sym.Subject)
			}
		}
	}
	return fn.Ret
}

func describeCallee(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.VarRef:
		return e.Name.Name
	case *ast.MemberExpr:
		return e.Name.Name
	}
	return "expression"
}

// paramElems splits a parameter tuple into per-argument expectations
// when the argument count matches; otherwise nil.
func paramElems(param types.Type, nargs int) []types.Type {
	if nargs == 1 {
		return []types.Type{param}
	}
	if t, ok := param.(*types.Tuple); ok && len(t.Elems) == nargs {
		return t.Elems
	}
	if nargs == 0 {
		return []types.Type{}
	}
	return nil
}

// unifyCallArgs unifies the parameter pattern against the argument
// types, matching elementwise when the shapes line up.
func unifyCallArgs(inf *types.Inference, param types.Type, args []ast.Expr, argTypes []types.Type, tc *types.Cache) bool {
	if len(args) == 1 {
		return inf.Unify(param, argTypes[0])
	}
	if t, ok := param.(*types.Tuple); ok && len(t.Elems) == len(args) {
		for i := range args {
			if !inf.Unify(t.Elems[i], argTypes[i]) {
				return false
			}
		}
		return true
	}
	return inf.Unify(param, tc.TupleOf(argTypes))
}

// checkAssign types target = value and friends, enforcing mutability
// (def fields assignable only inside their class's constructor).
func (b *bodyCtx) checkAssign(e *ast.AssignExpr) types.Type {
	tc := b.tc()
	tt := b.checkAssignTarget(e.Target)
	vt := b.checkExpr(e.Value, tt)
	switch e.Op {
	case token.Assign:
		if tt != nil && !tc.IsAssignable(vt, tt) {
			b.errorf(e.Pos(), "cannot assign %s to %s", vt, tt)
		}
	case token.AddEq, token.SubEq:
		if tt != tc.Int() || vt != tc.Int() {
			b.errorf(e.Pos(), "+=/-= requires int operands")
		}
	}
	return tc.Void()
}

// checkAssignTarget types an assignment target and validates mutability.
func (b *bodyCtx) checkAssignTarget(target ast.Expr) types.Type {
	tc := b.tc()
	switch t := target.(type) {
	case *ast.VarRef:
		rt := b.checkExpr(t, nil)
		switch bind := t.Binding.(type) {
		case *LocalSym:
			if !bind.Mutable {
				b.errorf(t.Pos(), "cannot assign to immutable %s", bind.Name)
			}
			return bind.Type
		case *GlobalSym:
			if !bind.Mutable {
				b.errorf(t.Pos(), "cannot assign to immutable %s", bind.Name)
			}
			return bind.Type
		case *FieldSym:
			b.checkFieldMutable(t.Pos(), bind)
			return rt
		}
		b.errorf(t.Pos(), "cannot assign to %s", t.Name.Name)
		return rt
	case *ast.MemberExpr:
		rt := b.checkExpr(t, nil)
		if f, ok := t.Binding.(*FieldSym); ok && t.Kind == ast.MField {
			b.checkFieldMutable(t.Pos(), f)
			return rt
		}
		if g, ok := t.Binding.(*GlobalSym); ok && t.Kind == ast.MGlobal {
			if !g.Mutable {
				b.errorf(t.Pos(), "cannot assign to immutable %s", g.Name)
			}
			return rt
		}
		b.errorf(t.Pos(), "cannot assign to this member")
		return rt
	case *ast.IndexExpr:
		return b.checkExpr(t, nil)
	}
	b.errorf(target.Pos(), "invalid assignment target")
	return b.checkExpr(target, tc.Void())
}

func (b *bodyCtx) checkFieldMutable(pos src.Pos, f *FieldSym) {
	if f.Mutable {
		return
	}
	if b.ctor != nil && b.ctor.Owner == f.Owner {
		return // def fields may be written in their constructor
	}
	b.errorf(pos, "cannot assign to immutable field %s outside its constructor", f.Name)
}

// checkBinary types infix operators.
func (b *bodyCtx) checkBinary(e *ast.BinaryExpr) types.Type {
	tc := b.tc()
	switch e.Op {
	case token.AndAnd, token.OrOr:
		lt := b.checkExpr(e.L, tc.Bool())
		rt := b.checkExpr(e.R, tc.Bool())
		if lt != tc.Bool() || rt != tc.Bool() {
			b.errorf(e.Pos(), "%s requires bool operands, found %s and %s", e.Op, lt, rt)
		}
		return tc.Bool()
	case token.Eq, token.Neq:
		lt := b.checkExpr(e.L, nil)
		rt := b.checkExpr(e.R, lt)
		if isNullType(lt) && !isNullType(rt) {
			// Re-derive the null's type from the right side.
			lt = b.checkExpr(e.L, rt)
		}
		ok := tc.IsAssignable(lt, rt) || tc.IsAssignable(rt, lt)
		if !ok {
			b.errorf(e.Pos(), "cannot compare %s with %s", lt, rt)
		}
		return tc.Bool()
	case token.Lt, token.Gt, token.Le, token.Ge:
		lt := b.checkExpr(e.L, nil)
		rt := b.checkExpr(e.R, lt)
		if !((lt == tc.Int() && rt == tc.Int()) || (lt == tc.Byte() && rt == tc.Byte())) {
			b.errorf(e.Pos(), "%s requires int or byte operands, found %s and %s", e.Op, lt, rt)
		}
		return tc.Bool()
	case token.Add, token.Sub, token.Mul, token.Div, token.Mod,
		token.Shl, token.Shr, token.And, token.Or, token.Xor:
		lt := b.checkExpr(e.L, tc.Int())
		rt := b.checkExpr(e.R, tc.Int())
		if lt != tc.Int() || rt != tc.Int() {
			b.errorf(e.Pos(), "%s requires int operands, found %s and %s", e.Op, lt, rt)
		}
		return tc.Int()
	}
	b.errorf(e.Pos(), "unknown binary operator %s", e.Op)
	return tc.Void()
}

package typecheck

import "testing"

// This file is the negative test suite: every static rule the paper
// states or implies gets an accepted and a rejected variant.

func TestRejectUnknownIdentifier(t *testing.T) {
	mustFail(t, `def main() { x = 1; }`, "unknown identifier")
}

func TestRejectUnknownType(t *testing.T) {
	mustFail(t, `def f(x: Nope) { }`, "unknown type")
}

func TestRejectDuplicateTopLevel(t *testing.T) {
	mustFail(t, `def f() { } def f() { }`, "duplicate")
	mustFail(t, `var x = 1; var x = 2;`, "duplicate")
	mustFail(t, `class A { } class A { }`, "duplicate class")
}

func TestRejectReservedNames(t *testing.T) {
	mustFail(t, `class int { }`, "built-in name")
	mustFail(t, `def System() { }`, "built-in name")
	mustFail(t, `var string = 1;`, "built-in name")
}

func TestRejectInheritanceCycle(t *testing.T) {
	mustFail(t, `class A extends B { } class B extends A { }`, "cycle")
}

func TestRejectExtendNonClass(t *testing.T) {
	mustFail(t, `class A extends int { }`, "non-class")
}

func TestRejectFieldShadowing(t *testing.T) {
	mustFail(t, `
class A { var f: int; }
class B extends A { var f: int; }
`, "shadows")
}

func TestRejectBadOverride(t *testing.T) {
	mustFail(t, `
class A { def m(a: int) -> int { return a; } }
class B extends A { def m(a: bool) -> int { return 0; } }
`, "override")
	mustFail(t, `
class A { def m(a: int) -> int { return a; } }
class B extends A { def m(a: int) -> bool { return true; } }
`, "override")
	mustFail(t, `
class A { private def m() { } }
class B extends A { def m() { } }
`, "private")
}

func TestAcceptTupleEquivalentOverride(t *testing.T) {
	// (p10-p14): (int, int) -> int and ((int, int)) -> int are the same
	// type, so this override is legal.
	mustCheck(t, `
class A { def m(a: int, b: int) -> int { return a + b; } }
class B extends A { def m(a: (int, int)) -> int { return a.0; } }
`)
}

func TestRejectTypeArgCountMismatch(t *testing.T) {
	mustFail(t, `
class Box<T> { var v: T; }
def main() { var b: Box<int, bool>; }
`, "type argument")
	mustFail(t, `
def id<T>(x: T) -> T { return x; }
def main() { var f = id<int, bool>; }
`, "type argument")
}

func TestRejectArgumentMismatch(t *testing.T) {
	mustFail(t, `
def f(a: int, b: int) { }
def main() { f(1); }
`, "does not match")
	mustFail(t, `
def f(a: int) { }
def main() { f(true); }
`, "does not match")
	mustFail(t, `
def f() { }
def main() { f(1); }
`, "does not match")
}

func TestRejectCallNonFunction(t *testing.T) {
	mustFail(t, `def main() { var x = 1; x(2); }`, "cannot call")
}

func TestRejectCondNotBool(t *testing.T) {
	mustFail(t, `def main() { if (1) { } }`, "must be bool")
	mustFail(t, `def main() { while ("s") { } }`, "must be bool")
}

func TestRejectBreakOutsideLoop(t *testing.T) {
	mustFail(t, `def main() { break; }`, "outside loop")
	mustFail(t, `def main() { continue; }`, "outside loop")
}

func TestRejectReturnMismatch(t *testing.T) {
	mustFail(t, `def f() -> int { return true; }`, "cannot return")
	mustFail(t, `def f() -> int { return; }`, "missing return value")
	mustFail(t, `def f() -> int { var x = 1; }`, "missing return")
}

func TestAcceptWhileTrueTerminates(t *testing.T) {
	mustCheck(t, `def f() -> int { while (true) { } }`)
}

func TestRejectImmutableAssignment(t *testing.T) {
	mustFail(t, `def main() { def x = 5; x = 6; }`, "immutable")
	mustFail(t, `def x = 5; def main() { x = 6; }`, "immutable")
	mustFail(t, `
class A { def f: int; new(f) { } }
def main() { var a = A.new(1); a.f = 2; }
`, "immutable field")
}

func TestAcceptDefFieldAssignedInCtor(t *testing.T) {
	mustCheck(t, `
class A {
	def f: int;
	new() { f = 42; }
}
`)
}

func TestRejectTupleElementAssignment(t *testing.T) {
	// Tuples are immutable values (§2.3).
	mustFail(t, `def main() { var t = (1, 2); t.0 = 5; }`, "cannot assign")
}

func TestRejectPrivateMethodAccess(t *testing.T) {
	mustFail(t, `
class A { private def secret() { } }
def main() { A.new().secret(); }
`, "private")
}

func TestAcceptPrivateWithinClass(t *testing.T) {
	mustCheck(t, `
class A {
	private def secret() -> int { return 1; }
	def open() -> int { return secret(); }
}
`)
}

func TestRejectNullWithoutContext(t *testing.T) {
	mustFail(t, `def main() { var x = null; }`, "cannot infer the type of null")
	mustFail(t, `def main() { var t = (null, 1); }`, "null")
}

func TestAcceptNullInContext(t *testing.T) {
	mustCheck(t, `
class A { }
def f(a: A) { }
def main() {
	var a: A = null;
	f(null);
	var ok = a == null;
}
`)
}

func TestRejectTupleIndexOutOfRange(t *testing.T) {
	mustFail(t, `def main() { var t = (1, 2); var x = t.2; }`, "out of range")
	mustFail(t, `def main() { var x = 5; var y = x.1; }`, "out of range")
}

func TestAcceptDegenerateTupleIndex(t *testing.T) {
	// (T) == T, so x.0 of a scalar is the scalar (c4).
	mustCheck(t, `def main() { var x = 5; var y = x.0; }`)
}

func TestRejectArithmeticTypeErrors(t *testing.T) {
	mustFail(t, `def main() { var x = 1 + true; }`, "requires int")
	mustFail(t, `def main() { var x = 'a' + 'b'; }`, "requires int")
	mustFail(t, `def main() { var x = true < false; }`, "requires int or byte")
	mustFail(t, `def main() { var x = 1 && 2; }`, "requires bool")
	mustFail(t, `def main() { var x = -true; }`, "requires int")
	mustFail(t, `def main() { var x = !5; }`, "requires bool")
}

func TestRejectIncomparable(t *testing.T) {
	mustFail(t, `
class A { }
def main() { var x = A.new() == 5; }
`, "cannot compare")
	mustFail(t, `def main() { var x = (1, 2) == (1, 2, 3); }`, "cannot compare")
}

func TestAcceptUniversalEquality(t *testing.T) {
	// Every type supports == != (§2).
	mustCheck(t, `
class A { }
def f(x: int) { }
def main() {
	var t = (1, (true, 'c')) == (1, (true, 'c'));
	var o = A.new() == A.new();
	var fn = f == f;
	var v = () == ();
}
`)
}

func TestRejectIllegalCasts(t *testing.T) {
	mustFail(t, `def main() { var x = bool.!(5); }`, "can never succeed")
	mustFail(t, `
class A { }
def main() { var x = int.!(A.new()); }
`, "can never succeed")
	mustFail(t, `
class A { }
class B { }
def main() { var x = B.!(A.new()); }
`, "can never succeed")
}

func TestAcceptDynamicCasts(t *testing.T) {
	mustCheck(t, `
class A { }
class B extends A { }
class Box<T> { var v: T; }
def main() {
	var a: A = B.new();
	var b = B.!(a);       // downcast
	var i = int.!('c');   // widening
	var c = byte.!(65);   // checked narrowing
	var box: Box<int> = Box<int>.new();
	var q = Box<bool>.?(box);  // reified query, statically false but legal
}
`)
}

func TestRejectIndexingNonArray(t *testing.T) {
	mustFail(t, `def main() { var x = 5; var y = x[0]; }`, "cannot index")
	mustFail(t, `def main() { var a = Array<int>.new(3); var y = a[true]; }`, "index must be int")
}

func TestRejectUnknownMember(t *testing.T) {
	mustFail(t, `
class A { }
def main() { var x = A.new().nope; }
`, "no member")
	mustFail(t, `def main() { System.nope(); }`, "no member")
	mustFail(t, `def main() { var a = Array<int>.new(1); var x = a.size; }`, "no member")
}

func TestRejectThisOutsideClass(t *testing.T) {
	mustFail(t, `def main() { var x = this; }`, "this outside")
}

func TestRejectSuperErrors(t *testing.T) {
	mustFail(t, `
class A { }
class B extends A {
	new() super(1) { }
}
`, "super arguments")
	mustFail(t, `
class A { new(x: int) { } }
class B extends A {
	new() { }
}
`, "must call super")
	mustFail(t, `
class A {
	new() super(1) { }
}
`, "no parent")
}

func TestRejectCtorShorthandForUnknownField(t *testing.T) {
	mustFail(t, `
class A { new(nope) { } }
`, "does not name a field")
}

func TestRejectMultipleCtors(t *testing.T) {
	mustFail(t, `
class A {
	new() { }
	new(x: int) { }
}
`, "multiple constructors")
}

func TestRejectUninferableTypeArgs(t *testing.T) {
	// A generic function with a parameter-independent type parameter
	// cannot be inferred from arguments.
	mustFail(t, `
def make<T>() -> Array<T> { return Array<T>.new(0); }
def main() { var a = make(); }
`, "cannot infer")
}

func TestAcceptExplicitTypeArgs(t *testing.T) {
	mustCheck(t, `
def make<T>() -> Array<T> { return Array<T>.new(0); }
def main() { var a = make<int>(); }
`)
}

func TestRejectIntLiteralOverflow(t *testing.T) {
	mustFail(t, `def main() { var x = 4294967296; }`, "out of 32-bit range")
}

func TestRejectVoidParamlessLocal(t *testing.T) {
	mustFail(t, `def main() { var x; }`, "requires a type or initializer")
}

func TestAcceptVoidTypedVariables(t *testing.T) {
	// (q7): programmers rarely write these, but polymorphic expansion
	// produces them, so they are legal.
	mustCheck(t, `
def f(v: void) { }
def main() {
	var t: void;
	f(t);
	f();
}
`)
}

func TestRejectInstantiatingTypeAsValue(t *testing.T) {
	mustFail(t, `
class A { }
def main() { var x = A(); }
`, "use A.new")
}

func TestGenericMethodExplicitAndInferred(t *testing.T) {
	mustCheck(t, `
class Matcher {
	def add<T>(f: T -> void) { }
}
def handler(i: int) { }
def main() {
	var m = Matcher.new();
	m.add(handler);
	m.add<int>(handler);
	m.add<(int, bool)>(null);
}
`)
}

func TestInferenceThroughSubtyping(t *testing.T) {
	// Inference must pick T = Animal for mixed lists (covariant merge).
	mustCheck(t, `
class Animal { }
class Bat extends Animal { }
def pair<T>(a: T, b: T) -> (T, T) { return (a, b); }
def main() {
	var p = pair(Bat.new(), Animal.new());
	var q: (Animal, Animal) = p;
}
`)
}

func TestRejectConflictingInference(t *testing.T) {
	mustFail(t, `
def pair<T>(a: T, b: T) -> (T, T) { return (a, b); }
def main() { var p = pair(1, true); }
`, "cannot unify")
}

func TestVarianceInFunctionArguments(t *testing.T) {
	// Accepting a more general function is always allowed (§3.6).
	mustCheck(t, `
class Animal { }
class Bat extends Animal { }
def use(f: Bat -> Animal) { }
def general(a: Animal) -> Bat { return Bat.!(a); }
def main() { use(general); }
`)
	// The reverse direction is an error.
	mustFail(t, `
class Animal { }
class Bat extends Animal { }
def use(f: Animal -> Animal) { }
def specific(b: Bat) -> Animal { return b; }
def main() { use(specific); }
`, "does not match")
}

func TestAcceptOperatorsOnTypeParams(t *testing.T) {
	// The four universal operators work on T (§2.4); others do not.
	mustCheck(t, `
def f<T>(a: T, b: T) -> bool { return a == b; }
def g<T>(a: T) -> bool { return int.?(a); }
def h<T>(x: T) -> (T, T) -> bool { return T.==; }
`)
	mustFail(t, `
def f<T>(a: T, b: T) -> T { return T.+(a, b); }
`, "no operator")
}

func TestSeparateTypechecking(t *testing.T) {
	// (§2.4): bodies of parameterized declarations are checked
	// independently of instantiation; an error inside shows up once,
	// regardless of uses.
	_, errs := checkSrc(t, `
def broken<T>(x: T) -> int { return x + 1; }
def main() {
	broken(1);
	broken(true);
}
`)
	if errs.Empty() {
		t.Fatal("expected an error in the generic body")
	}
	if errs.Len() != 1 {
		t.Fatalf("the generic body error should be reported once, got %d:\n%s", errs.Len(), errs.Error())
	}
}

func TestShadowing(t *testing.T) {
	// Locals shadow globals and class members.
	mustCheck(t, `
var x = 1;
class A {
	var f: int;
	def m() -> int {
		var f = 2;
		var x = 3;
		return f + x;
	}
}
def main() { }
`)
}

func TestForLoopScoping(t *testing.T) {
	// The loop variable is scoped to the loop (d7).
	mustFail(t, `
def main() {
	for (i = 0; i < 3; i++) { }
	var x = i;
}
`, "unknown identifier")
}

func TestStringIsArrayByte(t *testing.T) {
	mustCheck(t, `
def len(s: string) -> int { return s.length; }
def first(s: Array<byte>) -> byte { return s[0]; }
def main() {
	var n = len("hi") + int.!(first("hi"));
}
`)
}

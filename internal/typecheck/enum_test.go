package typecheck

import "testing"

func TestEnumBasics(t *testing.T) {
	mustCheck(t, `
enum Color { RED, GREEN, BLUE }
def main() {
	var c = Color.RED;
	var t: int = c.tag;
	var n: string = c.name;
	var e = c == Color.BLUE;
	var d: Color;           // defaults to the first case
	var arr = Array<Color>.new(3);
	arr[0] = Color.GREEN;
}
`)
}

func TestEnumAsTypeArgument(t *testing.T) {
	// Any type can be a type argument (§2.4) — including enums.
	mustCheck(t, `
enum Color { RED, GREEN }
class Box<T> { var v: T; new(v) { } }
def id<T>(x: T) -> T { return x; }
def main() {
	var b = Box.new(Color.RED);
	var c = id(Color.GREEN);
	var q = Box<Color>.?(b);
}
`)
}

func TestEnumUniversalOperators(t *testing.T) {
	mustCheck(t, `
enum Color { RED, GREEN }
def main() {
	var eq = Color.==;
	var x = eq(Color.RED, Color.GREEN);
	var q = Color.?(Color.RED);
	var c = Color.!(Color.RED);
}
`)
}

func TestEnumErrors(t *testing.T) {
	mustFail(t, `
enum Color { RED }
def main() { var c = Color.PINK; }
`, "no case")
	mustFail(t, `
enum Color { RED, RED }
`, "duplicate enum case")
	mustFail(t, `enum E { }`, "at least one case")
	mustFail(t, `
enum Color { RED }
class Color { }
`, "duplicate")
	mustFail(t, `
enum Color { RED }
def main() { var x = Color.RED.nope; }
`, "only .tag and .name")
	mustFail(t, `
enum Color { RED }
def main() { var c: Color = 0; }
`, "cannot assign int to Color")
	mustFail(t, `
enum Color { RED }
enum State { IDLE }
def main() { var x = Color.RED == State.IDLE; }
`, "cannot compare")
	mustFail(t, `
enum Color { RED }
def main() { var x = int.!(Color.RED); }
`, "can never succeed")
}

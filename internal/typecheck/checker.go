package typecheck

import (
	"repro/internal/ast"
	"repro/internal/src"
	"repro/internal/types"
)

// Checker holds the state of one checking run.
type Checker struct {
	prog *Program
	errs *src.ErrorList
	tc   *types.Cache
}

// Check resolves and typechecks the given files as one program.
// It returns the checked Program; diagnostics go to errs.
func Check(files []*ast.File, errs *src.ErrorList) *Program {
	tc := types.NewCache()
	prog := &Program{
		Types:       tc,
		Files:       files,
		classByDef:  map[*types.ClassDef]*ClassSym{},
		classByName: map[string]*ClassSym{},
		funcByName:  map[string]*FuncSym{},
		globByName:  map[string]*GlobalSym{},
		compByName:  map[string]*ComponentSym{},
		enumByName:  map[string]*EnumSym{},
	}
	c := &Checker{prog: prog, errs: errs, tc: tc}
	c.collectDecls()
	if !errs.Empty() {
		return prog
	}
	c.resolveClassHeaders()
	if !errs.Empty() {
		return prog
	}
	c.resolveSignatures()
	if !errs.Empty() {
		return prog
	}
	c.buildLayouts()
	if !errs.Empty() {
		return prog
	}
	c.checkBodies()
	prog.Main = prog.funcByName["main"]
	return prog
}

func (c *Checker) errorf(pos src.Pos, format string, args ...any) {
	c.errs.Add(pos, format, args...)
}

// reservedNames are identifiers that denote built-in types or components
// and cannot be redeclared.
var reservedNames = map[string]bool{
	"int": true, "byte": true, "bool": true, "void": true, "string": true,
	"Array": true, "System": true, "clock": true,
}

// collectDecls registers all top-level names.
func (c *Checker) collectDecls() {
	for _, f := range c.prog.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.ClassDecl:
				name := d.Name.Name
				if reservedNames[name] {
					c.errorf(d.Pos(), "cannot redeclare built-in name %q", name)
					continue
				}
				if c.prog.classByName[name] != nil || c.prog.compByName[name] != nil || c.prog.enumByName[name] != nil {
					c.errorf(d.Pos(), "duplicate class %q", name)
					continue
				}
				params := make([]*types.TypeParamDef, len(d.TypeParams))
				for i, tp := range d.TypeParams {
					params[i] = c.tc.NewTypeParamDef(tp.Name.Name, i, d)
					tp.Def = params[i]
				}
				def := c.tc.NewClassDef(name, params, d)
				d.Def = def
				sym := &ClassSym{Name: name, Decl: d, Def: def}
				c.prog.Classes = append(c.prog.Classes, sym)
				c.prog.classByDef[def] = sym
				c.prog.classByName[name] = sym
			case *ast.MethodDecl:
				name := d.Name.Name
				if reservedNames[name] {
					c.errorf(d.Pos(), "cannot redeclare built-in name %q", name)
					continue
				}
				if c.prog.funcByName[name] != nil || c.prog.globByName[name] != nil ||
					c.prog.compByName[name] != nil || c.prog.enumByName[name] != nil {
					c.errorf(d.Pos(), "duplicate declaration %q", name)
					continue
				}
				sym := &FuncSym{Name: name, Decl: d, VtSlot: -1, Private: d.Private}
				c.prog.Funcs = append(c.prog.Funcs, sym)
				c.prog.funcByName[name] = sym
			case *ast.VarDecl:
				name := d.Name.Name
				if reservedNames[name] {
					c.errorf(d.Pos(), "cannot redeclare built-in name %q", name)
					continue
				}
				if c.prog.funcByName[name] != nil || c.prog.globByName[name] != nil || c.prog.classByName[name] != nil ||
					c.prog.compByName[name] != nil || c.prog.enumByName[name] != nil {
					c.errorf(d.Pos(), "duplicate declaration %q", name)
					continue
				}
				sym := &GlobalSym{Name: name, Mutable: d.Mutable, Decl: d, Index: len(c.prog.Globals)}
				c.prog.Globals = append(c.prog.Globals, sym)
				c.prog.globByName[name] = sym
			case *ast.ComponentDecl:
				c.collectComponent(d)
			case *ast.EnumDecl:
				c.collectEnum(d)
			}
		}
	}
}

// collectComponent registers a component and its members. Fields become
// qualified globals; functions become qualified top-level functions.
func (c *Checker) collectComponent(d *ast.ComponentDecl) {
	name := d.Name.Name
	if reservedNames[name] {
		c.errorf(d.Pos(), "cannot redeclare built-in name %q", name)
		return
	}
	if c.prog.compByName[name] != nil || c.prog.classByName[name] != nil ||
		c.prog.funcByName[name] != nil || c.prog.globByName[name] != nil {
		c.errorf(d.Pos(), "duplicate declaration %q", name)
		return
	}
	comp := &ComponentSym{
		Name:    name,
		Decl:    d,
		Fields:  map[string]*GlobalSym{},
		Methods: map[string]*FuncSym{},
	}
	c.prog.Components = append(c.prog.Components, comp)
	c.prog.compByName[name] = comp
	for _, m := range d.Members {
		switch m := m.(type) {
		case *ast.FieldDecl:
			if comp.Fields[m.Name.Name] != nil || comp.Methods[m.Name.Name] != nil {
				c.errorf(m.Pos(), "duplicate member %q in component %s", m.Name.Name, name)
				continue
			}
			// A component field is a global with a qualified name; it is
			// represented by a synthesized VarDecl so the global
			// machinery (type resolution, initializer order) applies.
			vd := &ast.VarDecl{Mutable: m.Mutable, Name: m.Name, Type: m.Type, Init: m.Init}
			g := &GlobalSym{
				Name: name + "." + m.Name.Name, Mutable: m.Mutable,
				Decl: vd, Index: len(c.prog.Globals), Comp: comp,
			}
			comp.Fields[m.Name.Name] = g
			c.prog.Globals = append(c.prog.Globals, g)
		case *ast.MethodDecl:
			if comp.Fields[m.Name.Name] != nil || comp.Methods[m.Name.Name] != nil {
				c.errorf(m.Pos(), "duplicate member %q in component %s", m.Name.Name, name)
				continue
			}
			fn := &FuncSym{Name: name + "." + m.Name.Name, Decl: m, VtSlot: -1, Private: m.Private, Comp: comp}
			comp.Methods[m.Name.Name] = fn
			c.prog.Funcs = append(c.prog.Funcs, fn)
		}
	}
}

// collectEnum registers an enumerated type declaration.
func (c *Checker) collectEnum(d *ast.EnumDecl) {
	name := d.Name.Name
	if reservedNames[name] {
		c.errorf(d.Pos(), "cannot redeclare built-in name %q", name)
		return
	}
	if c.prog.enumByName[name] != nil || c.prog.classByName[name] != nil ||
		c.prog.compByName[name] != nil || c.prog.funcByName[name] != nil || c.prog.globByName[name] != nil {
		c.errorf(d.Pos(), "duplicate declaration %q", name)
		return
	}
	if len(d.Cases) == 0 {
		c.errorf(d.Pos(), "enum %s requires at least one case", name)
		return
	}
	seen := map[string]bool{}
	cases := make([]string, 0, len(d.Cases))
	for _, cs := range d.Cases {
		if seen[cs.Name] {
			c.errorf(cs.Pos(), "duplicate enum case %q", cs.Name)
			continue
		}
		seen[cs.Name] = true
		cases = append(cases, cs.Name)
	}
	def := c.tc.NewEnumDef(name, cases, d)
	d.Def = def
	sym := &EnumSym{Name: name, Decl: d, Def: def, Type: c.tc.EnumOf(def)}
	c.prog.Enums = append(c.prog.Enums, sym)
	c.prog.enumByName[name] = sym
}

// typeScope resolves type names: class/method type parameters, classes,
// primitives, Array and string.
type typeScope struct {
	params map[string]*types.TypeParamDef
}

func newTypeScope() *typeScope {
	return &typeScope{params: map[string]*types.TypeParamDef{}}
}

func (s *typeScope) with(params []*types.TypeParamDef) *typeScope {
	ns := newTypeScope()
	for k, v := range s.params {
		ns.params[k] = v
	}
	for _, p := range params {
		ns.params[p.Name] = p
	}
	return ns
}

// resolveType converts a syntactic TypeRef into a semantic type.
func (c *Checker) resolveType(ref ast.TypeRef, sc *typeScope) types.Type {
	switch ref := ref.(type) {
	case *ast.NamedTypeRef:
		return c.resolveNamed(ref, sc)
	case *ast.TupleTypeRef:
		elems := make([]types.Type, len(ref.Elems))
		for i, e := range ref.Elems {
			elems[i] = c.resolveType(e, sc)
		}
		return c.tc.TupleOf(elems)
	case *ast.FuncTypeRef:
		p := c.resolveType(ref.Param, sc)
		r := c.resolveType(ref.Ret, sc)
		return c.tc.FuncOf(p, r)
	}
	c.errorf(ref.Pos(), "unresolvable type")
	return c.tc.Void()
}

func (c *Checker) resolveNamed(ref *ast.NamedTypeRef, sc *typeScope) types.Type {
	name := ref.Name.Name
	if len(ref.Args) == 0 {
		if p, ok := sc.params[name]; ok {
			return c.tc.ParamRef(p)
		}
		switch name {
		case "int":
			return c.tc.Int()
		case "byte":
			return c.tc.Byte()
		case "bool":
			return c.tc.Bool()
		case "void":
			return c.tc.Void()
		case "string":
			return c.tc.String()
		}
	}
	if name == "Array" {
		if len(ref.Args) != 1 {
			c.errorf(ref.Pos(), "Array takes exactly one type argument")
			return c.tc.Void()
		}
		return c.tc.ArrayOf(c.resolveType(ref.Args[0], sc))
	}
	cls := c.prog.classByName[name]
	if cls == nil {
		if en := c.prog.enumByName[name]; en != nil {
			if len(ref.Args) != 0 {
				c.errorf(ref.Pos(), "enum %s takes no type arguments", name)
			}
			return en.Type
		}
		c.errorf(ref.Pos(), "unknown type %q", name)
		return c.tc.Void()
	}
	want := len(cls.Def.TypeParams)
	if len(ref.Args) != want {
		c.errorf(ref.Pos(), "class %s expects %d type argument(s), got %d", name, want, len(ref.Args))
		return c.tc.Void()
	}
	args := make([]types.Type, len(ref.Args))
	for i, a := range ref.Args {
		args[i] = c.resolveType(a, sc)
	}
	return c.tc.ClassOf(cls.Def, args)
}

// resolveClassHeaders resolves parent classes and checks the hierarchy
// for cycles.
func (c *Checker) resolveClassHeaders() {
	for _, cls := range c.prog.Classes {
		d := cls.Decl
		if d.Extends == nil {
			continue
		}
		sc := newTypeScope().with(cls.Def.TypeParams)
		pt := c.resolveType(d.Extends, sc)
		pc, ok := pt.(*types.Class)
		if !ok {
			c.errorf(d.Extends.Pos(), "class %s cannot extend non-class type %s", cls.Name, pt)
			continue
		}
		cls.Def.ParentType = pc
		cls.Parent = c.prog.classByDef[pc.Def]
	}
	// Cycle detection and depth assignment.
	for _, cls := range c.prog.Classes {
		seen := map[*ClassSym]bool{}
		depth := 0
		for w := cls.Parent; w != nil; w = w.Parent {
			if seen[w] || w == cls {
				c.errorf(cls.Decl.Pos(), "inheritance cycle involving class %s", cls.Name)
				cls.Parent = nil
				cls.Def.ParentType = nil
				break
			}
			seen[w] = true
			depth++
		}
		cls.Depth = depth
	}
}

// resolveSignatures resolves field types, method signatures and
// constructors for every class, plus top-level function signatures and
// global types.
func (c *Checker) resolveSignatures() {
	for _, cls := range c.prog.Classes {
		c.resolveClassMembers(cls)
	}
	for _, fn := range c.prog.Funcs {
		c.resolveFuncSig(fn, newTypeScope())
	}
	for _, g := range c.prog.Globals {
		if g.Decl.Type != nil {
			g.Type = c.resolveType(g.Decl.Type, newTypeScope())
		}
		// Globals without a declared type are typed from their
		// initializer during body checking.
	}
}

func (c *Checker) resolveClassMembers(cls *ClassSym) {
	d := cls.Decl
	sc := newTypeScope().with(cls.Def.TypeParams)
	names := map[string]src.Pos{}
	declare := func(name string, pos src.Pos) bool {
		if prev, ok := names[name]; ok {
			c.errorf(pos, "duplicate member %q in class %s (previously at %s); Virgil disallows overloading (§3.3)", name, cls.Name, prev)
			return false
		}
		names[name] = pos
		return true
	}

	// Compact class parameters become immutable fields (f1-f5).
	var compactFields []*FieldSym
	for _, p := range d.CtorParams {
		if p.Type == nil {
			c.errorf(p.Pos(), "compact class parameter %s requires a type", p.Name.Name)
			continue
		}
		t := c.resolveType(p.Type, sc)
		p.TypeOf = t
		if !declare(p.Name.Name, p.Pos()) {
			continue
		}
		f := &FieldSym{Name: p.Name.Name, Mutable: false, Owner: cls, Type: t}
		cls.Fields = append(cls.Fields, f)
		compactFields = append(compactFields, f)
	}

	var explicitCtor *ast.CtorDecl
	for _, m := range d.Members {
		switch m := m.(type) {
		case *ast.FieldDecl:
			if !declare(m.Name.Name, m.Pos()) {
				continue
			}
			var t types.Type
			if m.Type != nil {
				t = c.resolveType(m.Type, sc)
			}
			m.TypeOf = t
			f := &FieldSym{Name: m.Name.Name, Mutable: m.Mutable, Owner: cls, Decl: m, Type: t, Init: m.Init}
			cls.Fields = append(cls.Fields, f)
		case *ast.MethodDecl:
			if !declare(m.Name.Name, m.Pos()) {
				continue
			}
			fn := &FuncSym{Name: m.Name.Name, Owner: cls, Decl: m, Abstract: m.Body == nil, Private: m.Private, VtSlot: -1}
			c.resolveFuncSig(fn, sc)
			cls.Methods = append(cls.Methods, fn)
		case *ast.CtorDecl:
			if explicitCtor != nil {
				c.errorf(m.Pos(), "class %s has multiple constructors", cls.Name)
				continue
			}
			explicitCtor = m
			m.Owner = d
		}
	}

	// Fields without a declared type take the type of their initializer;
	// that requires body checking, so reject for now unless Init exists
	// (the init is checked later and backfills). To keep layout types
	// available, we require a type or a literal-typed init here.
	for _, f := range cls.Fields {
		if f.Type == nil {
			if f.Init != nil {
				if t := literalType(c.tc, f.Init); t != nil {
					f.Type = t
					if f.Decl != nil {
						f.Decl.TypeOf = t
					}
					continue
				}
			}
			c.errorf(f.Decl.Pos(), "field %s.%s requires a declared type", cls.Name, f.Name)
			f.Type = c.tc.Void()
		}
	}

	// Constructor resolution.
	switch {
	case explicitCtor != nil:
		if len(compactFields) > 0 {
			c.errorf(explicitCtor.Pos(), "class %s has both compact class parameters and an explicit constructor", cls.Name)
		}
		ct := &CtorSym{Owner: cls, Decl: explicitCtor, Params: explicitCtor.Params}
		ct.ParamTypes = make([]types.Type, len(ct.Params))
		ct.FieldParams = make([]*FieldSym, len(ct.Params))
		for i, p := range ct.Params {
			if p.Type != nil {
				ct.ParamTypes[i] = c.resolveType(p.Type, sc)
				p.TypeOf = ct.ParamTypes[i]
				continue
			}
			// Field-shorthand parameter (a4): takes the field's type and
			// auto-assigns it.
			f := cls.FieldOf(p.Name.Name)
			if f == nil || f.Owner != cls {
				c.errorf(p.Pos(), "constructor parameter %s does not name a field of %s", p.Name.Name, cls.Name)
				ct.ParamTypes[i] = c.tc.Void()
				continue
			}
			ct.ParamTypes[i] = f.Type
			ct.FieldParams[i] = f
			p.TypeOf = f.Type
		}
		cls.Ctor = ct
	case len(compactFields) > 0:
		ct := &CtorSym{Owner: cls, Compact: true}
		for i, p := range d.CtorParams {
			_ = i
			ct.Params = append(ct.Params, p)
			ct.ParamTypes = append(ct.ParamTypes, p.TypeOf)
		}
		ct.FieldParams = compactFields
		cls.Ctor = ct
	default:
		cls.Ctor = &CtorSym{Owner: cls}
	}
}

// literalType returns the type of a literal expression, or nil.
func literalType(tc *types.Cache, e ast.Expr) types.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return tc.Int()
	case *ast.ByteLit:
		return tc.Byte()
	case *ast.BoolLit:
		return tc.Bool()
	case *ast.StrLit:
		return tc.String()
	case *ast.TupleExpr:
		elems := make([]types.Type, len(e.Elems))
		for i, el := range e.Elems {
			t := literalType(tc, el)
			if t == nil {
				return nil
			}
			elems[i] = t
		}
		return tc.TupleOf(elems)
	}
	return nil
}

func (c *Checker) resolveFuncSig(fn *FuncSym, outer *typeScope) {
	d := fn.Decl
	fn.TypeParams = make([]*types.TypeParamDef, len(d.TypeParams))
	for i, tp := range d.TypeParams {
		fn.TypeParams[i] = c.tc.NewTypeParamDef(tp.Name.Name, i, d)
		tp.Def = fn.TypeParams[i]
	}
	sc := outer.with(fn.TypeParams)
	fn.Params = d.Params
	fn.ParamTypes = make([]types.Type, len(d.Params))
	for i, p := range d.Params {
		if p.Type == nil {
			c.errorf(p.Pos(), "parameter %s requires a type", p.Name.Name)
			fn.ParamTypes[i] = c.tc.Void()
			continue
		}
		fn.ParamTypes[i] = c.resolveType(p.Type, sc)
		p.TypeOf = fn.ParamTypes[i]
	}
	if d.RetType != nil {
		fn.Ret = c.resolveType(d.RetType, sc)
	} else {
		fn.Ret = c.tc.Void()
	}
	d.Sig = fn.Sig(c.tc)
	if fn.Owner != nil {
		d.Owner = fn.Owner.Decl
	}
}

// buildLayouts assigns field slots and vtable slots, checking override
// compatibility (exact signature match after parent substitution).
func (c *Checker) buildLayouts() {
	done := map[*ClassSym]bool{}
	var build func(cls *ClassSym)
	build = func(cls *ClassSym) {
		if done[cls] {
			return
		}
		done[cls] = true
		var baseFields []*FieldSym
		var vtable []*MethodSym
		if cls.Parent != nil {
			build(cls.Parent)
			// Parent members are typed in terms of the parent's type
			// parameters; substitute this class's parent instantiation.
			pt := cls.Def.ParentType
			env := types.BindParams(cls.Parent.Def.TypeParams, pt.Args)
			for _, f := range cls.Parent.AllFields {
				nf := *f
				nf.Type = c.tc.Subst(f.Type, env)
				baseFields = append(baseFields, &nf)
			}
			vtable = append(vtable, cls.Parent.Vtable...)
		}
		cls.AllFields = baseFields
		for _, f := range cls.Fields {
			if cls.Parent != nil {
				if pf := cls.Parent.FieldOf(f.Name); pf != nil {
					c.errorf(cls.Decl.Pos(), "field %s.%s shadows inherited field", cls.Name, f.Name)
				}
			}
			f.Slot = len(cls.AllFields)
			cls.AllFields = append(cls.AllFields, f)
		}
		cls.Vtable = vtable
		for _, m := range cls.Methods {
			var overridden *MethodSym
			if cls.Parent != nil {
				overridden = cls.Parent.MethodOf(m.Name)
			}
			if overridden != nil {
				// Exact signature match after substituting the parent
				// instantiation (the paper requires matching signatures;
				// tuple equivalences make (int,int) match ((int,int))).
				pt := cls.Def.ParentType
				env := types.BindParams(cls.Parent.Def.TypeParams, pt.Args)
				wantParam := c.tc.Subst(overridden.ParamTuple(c.tc), env)
				wantRet := c.tc.Subst(overridden.Ret, env)
				if len(m.TypeParams) != len(overridden.TypeParams) {
					c.errorf(m.Decl.Pos(), "override of %s.%s changes type parameter count", cls.Parent.Name, m.Name)
				}
				if m.ParamTuple(c.tc) != wantParam || m.Ret != wantRet {
					c.errorf(m.Decl.Pos(), "override of %s.%s has signature %s, want %s -> %s",
						cls.Parent.Name, m.Name, m.Sig(c.tc), wantParam, wantRet)
				}
				if overridden.Private {
					c.errorf(m.Decl.Pos(), "cannot override private method %s.%s", cls.Parent.Name, m.Name)
				}
				m.VtSlot = overridden.VtSlot
				m.Decl.Override = overridden.Decl
				cls.Vtable[m.VtSlot] = m
			} else {
				m.VtSlot = len(cls.Vtable)
				cls.Vtable = append(cls.Vtable, m)
			}
			m.Decl.VtSlot = m.VtSlot
		}
		// A concrete class must implement all abstract methods; we allow
		// abstract methods to remain (calling one traps), matching the
		// paper's use of Instr.emit as an abstract method (n2).
	}
	for _, cls := range c.prog.Classes {
		build(cls)
	}
}

// Package src provides source-file bookkeeping and positioned diagnostics
// shared by every phase of the Virgil-core compiler.
package src

import (
	"fmt"
	"sort"
	"strings"
)

// A File is an immutable source file with precomputed line offsets.
type File struct {
	Name    string
	Content string
	lines   []int // byte offset of the start of each line
}

// NewFile builds a File and indexes its line starts.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// Pos is a byte offset into a file, paired with the file itself so that
// diagnostics can be rendered without threading a file table around.
type Pos struct {
	File *File
	Off  int
}

// NoPos is the zero Pos, used for synthesized nodes.
var NoPos = Pos{}

// IsValid reports whether p refers to a real location.
func (p Pos) IsValid() bool { return p.File != nil }

// Line returns the 1-based line number of p.
func (p Pos) Line() int {
	if p.File == nil {
		return 0
	}
	i := sort.SearchInts(p.File.lines, p.Off+1) - 1
	return i + 1
}

// LineColHint resolves off to 1-based line and column, trying hint (a
// 0-based line index from a previous lookup in the same file) before
// falling back to a binary search. Walks that resolve mostly
// consecutive positions — instruction streams, token streams — pay
// O(1) per lookup instead of O(log lines). A stale or out-of-range
// hint costs only the fallback search, never a wrong answer.
func (f *File) LineColHint(off, hint int) (line, col, idx int) {
	lines := f.lines
	n := len(lines)
	i := hint
	if i < 0 || i >= n || lines[i] > off || (i+1 < n && lines[i+1] <= off) {
		i++
		if i < 0 || i >= n || lines[i] > off || (i+1 < n && lines[i+1] <= off) {
			i = sort.SearchInts(lines, off+1) - 1
		}
	}
	return i + 1, off - lines[i] + 1, i
}

// Col returns the 1-based column number of p.
func (p Pos) Col() int {
	if p.File == nil {
		return 0
	}
	i := sort.SearchInts(p.File.lines, p.Off+1) - 1
	return p.Off - p.File.lines[i] + 1
}

// String renders p as "file:line:col".
func (p Pos) String() string {
	if p.File == nil {
		return "<unknown>"
	}
	return fmt.Sprintf("%s:%d:%d", p.File.Name, p.Line(), p.Col())
}

// An Error is a diagnostic anchored at a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string {
	if !e.Pos.IsValid() {
		return e.Msg
	}
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

// ErrorList accumulates diagnostics across a phase.
type ErrorList struct {
	Errors []*Error
}

// Add appends a formatted diagnostic at pos.
func (l *ErrorList) Add(pos Pos, format string, args ...any) {
	l.Errors = append(l.Errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Len returns the number of accumulated diagnostics.
func (l *ErrorList) Len() int { return len(l.Errors) }

// Empty reports whether no diagnostics were recorded.
func (l *ErrorList) Empty() bool { return len(l.Errors) == 0 }

// Err returns l as an error, or nil when the list is empty.
func (l *ErrorList) Err() error {
	if l.Empty() {
		return nil
	}
	return l
}

func (l *ErrorList) Error() string {
	if l.Empty() {
		return "no errors"
	}
	var b strings.Builder
	for i, e := range l.Errors {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// MaxReported is the default cap on diagnostics surfaced to the user;
// past it, cascades from one root cause drown the signal.
const MaxReported = 20

// Truncate caps the list at max diagnostics, replacing the overflow
// with a single "too many errors" sentinel that records the true count.
// It is a no-op when the list already fits.
func (l *ErrorList) Truncate(max int) {
	if max <= 0 || len(l.Errors) <= max {
		return
	}
	total := len(l.Errors)
	l.Errors = append(l.Errors[:max:max], &Error{
		Pos: l.Errors[max-1].Pos,
		Msg: fmt.Sprintf("too many errors (%d total); showing first %d", total, max),
	})
}

// Sort orders diagnostics by file name then offset, for stable output.
func (l *ErrorList) Sort() {
	sort.SliceStable(l.Errors, func(i, j int) bool {
		a, b := l.Errors[i], l.Errors[j]
		an, bn := "", ""
		if a.Pos.File != nil {
			an = a.Pos.File.Name
		}
		if b.Pos.File != nil {
			bn = b.Pos.File.Name
		}
		if an != bn {
			return an < bn
		}
		return a.Pos.Off < b.Pos.Off
	})
}

package src

import (
	"fmt"
	"strings"
)

// An ICE is an internal compiler error: a panic recovered at a pipeline
// stage boundary and converted into a structured diagnostic. Unlike an
// Error, an ICE indicates a bug in the compiler rather than in the
// input program, so drivers report it distinctly (exit code 3) — but it
// must never surface as a raw Go stack trace to the user.
type ICE struct {
	Stage string // pipeline stage that panicked (parse, check, lower, ...)
	Pos   Pos    // best-known source position, possibly NoPos
	Msg   string // recovered panic value, rendered
	Stack string // trimmed Go stack, for bug reports; not shown by default
}

func (e *ICE) Error() string {
	var b strings.Builder
	b.WriteString("internal compiler error")
	if e.Stage != "" {
		fmt.Fprintf(&b, " [%s]", e.Stage)
	}
	if e.Pos.IsValid() {
		fmt.Fprintf(&b, " at %s", e.Pos)
	}
	if e.Msg != "" {
		b.WriteString(": ")
		b.WriteString(e.Msg)
	}
	return b.String()
}

// TrimStack reduces a debug.Stack() dump to the frames below the
// recovery boundary, keeping ICE reports short enough to paste into a
// bug report.
func TrimStack(stack []byte, maxLines int) string {
	lines := strings.Split(string(stack), "\n")
	if len(lines) > maxLines {
		lines = append(lines[:maxLines], "\t... stack truncated ...")
	}
	return strings.Join(lines, "\n")
}

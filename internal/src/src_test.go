package src

import (
	"strings"
	"testing"
)

func TestPosLineCol(t *testing.T) {
	f := NewFile("a.v", "one\ntwo\n\nfour")
	cases := []struct {
		off, line, col int
	}{
		{0, 1, 1},
		{3, 1, 4},
		{4, 2, 1},
		{6, 2, 3},
		{8, 3, 1},
		{9, 4, 1},
		{12, 4, 4},
	}
	for _, c := range cases {
		p := Pos{File: f, Off: c.off}
		if p.Line() != c.line || p.Col() != c.col {
			t.Errorf("off %d: got %d:%d, want %d:%d", c.off, p.Line(), p.Col(), c.line, c.col)
		}
	}
}

func TestPosString(t *testing.T) {
	f := NewFile("x.v", "abc")
	p := Pos{File: f, Off: 1}
	if p.String() != "x.v:1:2" {
		t.Errorf("got %q", p.String())
	}
	if NoPos.String() != "<unknown>" {
		t.Errorf("NoPos = %q", NoPos.String())
	}
	if NoPos.IsValid() {
		t.Error("NoPos should be invalid")
	}
}

func TestErrorList(t *testing.T) {
	f := NewFile("x.v", "ab\ncd")
	l := &ErrorList{}
	if !l.Empty() || l.Err() != nil {
		t.Error("fresh list should be empty")
	}
	l.Add(Pos{File: f, Off: 3}, "second %d", 2)
	l.Add(Pos{File: f, Off: 0}, "first")
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	l.Sort()
	s := l.Error()
	if !strings.Contains(s, "x.v:1:1: first") || !strings.Contains(s, "x.v:2:1: second 2") {
		t.Errorf("rendered: %q", s)
	}
	if strings.Index(s, "first") > strings.Index(s, "second") {
		t.Error("sort should order by offset")
	}
	if l.Err() == nil {
		t.Error("non-empty list should be an error")
	}
}

func TestErrorListSortAcrossFiles(t *testing.T) {
	a := NewFile("a.v", "x")
	b := NewFile("b.v", "y")
	l := &ErrorList{}
	l.Add(Pos{File: b, Off: 0}, "in b")
	l.Add(Pos{File: a, Off: 0}, "in a")
	l.Sort()
	if !strings.HasPrefix(l.Error(), "a.v") {
		t.Errorf("files should sort by name: %q", l.Error())
	}
}

func TestErrorListTruncate(t *testing.T) {
	l := &ErrorList{}
	for i := 0; i < 50; i++ {
		l.Add(NoPos, "error %d", i)
	}
	l.Truncate(20)
	if got := len(l.Errors); got != 21 {
		t.Fatalf("len = %d, want 20 + sentinel", got)
	}
	last := l.Errors[20].Msg
	if !strings.Contains(last, "too many errors") || !strings.Contains(last, "50") {
		t.Errorf("sentinel = %q, want total count mention", last)
	}
	// Under the cap: no-op.
	s := &ErrorList{}
	s.Add(NoPos, "only one")
	s.Truncate(20)
	if len(s.Errors) != 1 {
		t.Errorf("truncate below cap changed list: %d", len(s.Errors))
	}
}

func TestICEError(t *testing.T) {
	f := NewFile("x.v", "def main() { }\n")
	ice := &ICE{Stage: "lower", Pos: Pos{File: f, Off: 4}, Msg: "unhandled node"}
	msg := ice.Error()
	for _, want := range []string{"internal compiler error", "[lower]", "x.v:1:5", "unhandled node"} {
		if !strings.Contains(msg, want) {
			t.Errorf("ICE message %q missing %q", msg, want)
		}
	}
}

package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/src"
)

var bg = context.Background()

func TestRunSequentialOrder(t *testing.T) {
	var got []int
	if err := Run(bg, "test", 1, 5, func(i int) error {
		got = append(got, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential order broken: %v", got)
		}
	}
}

func TestRunSequentialStopsAtFirstError(t *testing.T) {
	var ran []int
	boom := errors.New("boom")
	err := Run(bg, "test", 1, 5, func(i int) error {
		ran = append(ran, i)
		if i == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("want boom, got %v", err)
	}
	if len(ran) != 3 {
		t.Fatalf("sequential run must stop at the first error; ran %v", ran)
	}
}

func TestRunParallelCoversAllItems(t *testing.T) {
	const n = 100
	var done [n]atomic.Bool
	if err := Run(bg, "test", 8, n, func(i int) error {
		if done[i].Swap(true) {
			t.Errorf("item %d claimed twice", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("item %d never ran", i)
		}
	}
}

func TestRunParallelReportsLowestIndexError(t *testing.T) {
	// Repeat to exercise different schedules: every failing index may
	// race to record, but the winner must always be the lowest that ran.
	for trial := 0; trial < 20; trial++ {
		err := Run(bg, "test", 4, 50, func(i int) error {
			if i%7 == 3 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if got := err.Error(); got != "fail-3" {
			t.Fatalf("trial %d: want deterministic fail-3, got %s", trial, got)
		}
	}
}

func TestRunParallelPanicBecomesICE(t *testing.T) {
	err := Run(bg, "lower", 4, 10, func(i int) error {
		if i == 0 {
			panic("corrupt function")
		}
		return nil
	})
	var ice *src.ICE
	if !errors.As(err, &ice) {
		t.Fatalf("want *src.ICE, got %T: %v", err, err)
	}
	if ice.Stage != "lower" || !strings.Contains(ice.Msg, "corrupt function") {
		t.Fatalf("unexpected ICE: %v", ice)
	}
}

func TestRunSequentialPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("jobs=1 must preserve the pre-parallel panic behavior")
		}
	}()
	_ = Run(bg, "test", 1, 1, func(i int) error { panic("through") })
}

func TestRunEmptyAndSingle(t *testing.T) {
	if err := Run(bg, "test", 8, 0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := Run(bg, "test", 8, 1, func(i int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("single item ran %d times", calls)
	}
}

// TestRunBoundedWastedWorkAfterError is the regression test for the
// fan-out's wasted-work bound: after the first error is recorded,
// workers must stop claiming items above it, so a failure at index 0
// costs at most one in-flight item per worker — never the whole queue.
func TestRunBoundedWastedWorkAfterError(t *testing.T) {
	const (
		n    = 1000
		jobs = 4
	)
	var executed atomic.Int64
	boom := errors.New("boom")
	err := Run(bg, "test", jobs, n, func(i int) error {
		executed.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != boom {
		t.Fatalf("want boom, got %v", err)
	}
	// Each of the jobs workers may have claimed one item before the
	// failure at index 0 was recorded, and the claim check races the
	// record by at most one more item per worker.
	if got := executed.Load(); got > 2*jobs {
		t.Fatalf("executed %d items after an index-0 failure; want <= %d (bounded wasted work)", got, 2*jobs)
	}
}

// TestRunCancelledBeforeStart pins the fast path: a ctx that is done on
// entry runs nothing in either mode.
func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 8} {
		ran := atomic.Int64{}
		err := Run(ctx, "test", jobs, 100, func(i int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		// Parallel workers may each claim one item before observing the
		// done channel.
		if ran.Load() > int64(jobs) {
			t.Fatalf("jobs=%d: %d items ran under a pre-cancelled ctx", jobs, ran.Load())
		}
	}
}

// TestRunStopsClaimingOnCancel cancels mid-run and asserts the pool
// abandons the remaining queue promptly instead of draining it.
func TestRunStopsClaimingOnCancel(t *testing.T) {
	const n = 10000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int64
	err := Run(ctx, "test", 4, n, func(i int) error {
		if executed.Add(1) == 8 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := executed.Load(); got > 64 {
		t.Fatalf("executed %d of %d items after cancellation", got, n)
	}
}

// TestRunItemErrorBeatsCancellation: when a worker failed before the
// ctx ended, the item error is the result — cancellation must not mask
// a real diagnostic.
func TestRunItemErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := Run(ctx, "test", 4, 100, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want the item error", err)
	}
}

// TestRunPoolFaultPoint verifies the "par" injection point fires inside
// the pool in both sequential and parallel mode.
func TestRunPoolFaultPoint(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		r, perr := faultinject.Parse("par:err:0")
		if perr != nil {
			t.Fatal(perr)
		}
		restore := faultinject.Set(r)
		err := Run(bg, "test", jobs, 10, func(i int) error { return nil })
		restore()
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("jobs=%d: err = %v, want ErrInjected", jobs, err)
		}
	}
}

package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/src"
)

func TestRunSequentialOrder(t *testing.T) {
	var got []int
	if err := Run("test", 1, 5, func(i int) error {
		got = append(got, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential order broken: %v", got)
		}
	}
}

func TestRunSequentialStopsAtFirstError(t *testing.T) {
	var ran []int
	boom := errors.New("boom")
	err := Run("test", 1, 5, func(i int) error {
		ran = append(ran, i)
		if i == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("want boom, got %v", err)
	}
	if len(ran) != 3 {
		t.Fatalf("sequential run must stop at the first error; ran %v", ran)
	}
}

func TestRunParallelCoversAllItems(t *testing.T) {
	const n = 100
	var done [n]atomic.Bool
	if err := Run("test", 8, n, func(i int) error {
		if done[i].Swap(true) {
			t.Errorf("item %d claimed twice", i)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("item %d never ran", i)
		}
	}
}

func TestRunParallelReportsLowestIndexError(t *testing.T) {
	// Repeat to exercise different schedules: every failing index may
	// race to record, but the winner must always be the lowest that ran.
	for trial := 0; trial < 20; trial++ {
		err := Run("test", 4, 50, func(i int) error {
			if i%7 == 3 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if got := err.Error(); got != "fail-3" {
			t.Fatalf("trial %d: want deterministic fail-3, got %s", trial, got)
		}
	}
}

func TestRunParallelPanicBecomesICE(t *testing.T) {
	err := Run("lower", 4, 10, func(i int) error {
		if i == 0 {
			panic("corrupt function")
		}
		return nil
	})
	var ice *src.ICE
	if !errors.As(err, &ice) {
		t.Fatalf("want *src.ICE, got %T: %v", err, err)
	}
	if ice.Stage != "lower" || !strings.Contains(ice.Msg, "corrupt function") {
		t.Fatalf("unexpected ICE: %v", ice)
	}
}

func TestRunSequentialPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("jobs=1 must preserve the pre-parallel panic behavior")
		}
	}()
	_ = Run("test", 1, 1, func(i int) error { panic("through") })
}

func TestRunEmptyAndSingle(t *testing.T) {
	if err := Run("test", 8, 0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := Run("test", 8, 1, func(i int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("single item ran %d times", calls)
	}
}

// Package par is the compiler's bounded fan-out primitive. Each
// per-function pipeline stage (lower bodies, mono body copies, norm,
// opt folding, IR verification) hands Run an indexed work list; Run
// executes it either inline (jobs <= 1) or on a fixed pool of worker
// goroutines (jobs > 1).
//
// The contract that keeps parallel compilation byte-for-byte
// deterministic: workers may only write into pre-sized slots indexed
// by their item index, and Run reports the error (or recovered panic,
// as a *src.ICE) with the LOWEST index, so diagnostics are independent
// of goroutine scheduling. Whole-program phases stay outside Run as
// sequential barriers.
//
// Run is cancellation-safe: once ctx is done, or once any worker has
// recorded a failure, workers stop claiming new items (an item below
// the lowest recorded failure still runs, preserving the lowest-index
// contract), so one failure or an abandoned request no longer pays for
// the whole fan-out. Cancellation wins only when no item failed first:
// a recorded item error is reported in preference to ctx.Err().
package par

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/src"
)

// Run invokes fn(i) for every i in [0, n), or until ctx is cancelled.
//
// With jobs <= 1 the calls run inline in index order and Run returns
// at the first error or cancellation — exactly the pre-parallel
// sequential pipeline, with panics propagating to the caller's
// recovery boundary.
//
// With jobs > 1, min(jobs, n) workers claim indices from a shared
// atomic counter. A panic inside fn is recovered in the worker and
// recorded as a *src.ICE tagged with stage. After all workers drain,
// Run returns the recorded error with the lowest index. Workers only
// skip indices ABOVE the lowest failure recorded so far — an index
// below it always runs, so the lowest failing index is always reached
// and the winning error is independent of goroutine scheduling. A done
// ctx stops all claiming outright; if nothing failed first, Run
// returns ctx.Err().
//
// The pool carries the "par" fault-injection point: with a fault armed
// (e.g. VIRGIL_FAULT=par:err:0) each claimed item passes through
// faultinject.Point before fn runs.
func Run(ctx context.Context, stage string, jobs, n int, fn func(i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	item := fn
	if faultinject.Enabled() {
		item = func(i int) error {
			if err := faultinject.Point(ctx, "par"); err != nil {
				return err
			}
			return fn(i)
		}
	}
	if jobs <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := item(i); err != nil {
				return err
			}
		}
		return nil
	}
	if jobs > n {
		jobs = n
	}
	var (
		next   atomic.Int64
		lowest atomic.Int64 // lowest failing index so far; n = none
		mu     sync.Mutex
		errAt  = -1
		first  error
	)
	lowest.Store(int64(n))
	record := func(i int, err error) {
		for {
			cur := lowest.Load()
			if int64(i) >= cur || lowest.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
		mu.Lock()
		if errAt < 0 || i < errAt {
			errAt, first = i, err
		}
		mu.Unlock()
	}
	done := ctx.Done()
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				// Indices are claimed in increasing order, so once i
				// passes the lowest recorded failure every later claim
				// would too: cancel this worker. Indices below a failure
				// still run and may record a lower one.
				if i >= n || int64(i) > lowest.Load() {
					return
				}
				if err := protect(stage, i, item); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return first
	}
	return ctx.Err()
}

// protect runs fn(i) converting a panic into a structured ICE, so one
// corrupt function cannot take down sibling workers or the process.
func protect(stage string, i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &src.ICE{
				Stage: stage,
				Msg:   fmt.Sprint(r),
				Stack: src.TrimStack(debug.Stack(), 40),
			}
		}
	}()
	return fn(i)
}

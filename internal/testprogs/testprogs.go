// Package testprogs holds the corpus of Virgil-core programs used by
// tests and benchmarks across the repository: every design pattern from
// the paper's §3, the implementation-ambiguity examples from §4.1, and
// the workloads behind experiments E1-E7.
package testprogs

// Prog is one corpus program with its expected System output.
type Prog struct {
	Name   string
	Source string
	Want   string
	// Paper cites the paper example or section this program encodes.
	Paper string
}

// All returns the whole corpus.
func All() []Prog {
	return []Prog{
		{Name: "hello", Paper: "intro", Want: "hello, world\n", Source: `
def main() {
	System.puts("hello, world");
	System.ln();
}
`},
		{Name: "fib", Paper: "control flow", Want: "0 1 1 2 3 5 8 13 21 34 ", Source: `
def fib(n: int) -> int {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
def main() {
	for (i = 0; i < 10; i++) {
		System.puti(fib(i));
		System.putc(' ');
	}
}
`},
		{Name: "classes_b1_b7", Paper: "b1-b7", Want: "35 34 36 3", Source: `
class A {
	var f: int;
	def g: int;
	new(f, g) { }
	def m(a: byte) -> int { return f + g + int.!(a); }
}
def main() {
	var a = A.new(10, 20);
	var m1 = a.m;
	var m2 = A.m;
	var x = a.m('\x05');
	var y = m1('\x04');
	var z = m2(a, '\x06');
	var w = A.new;
	var b = w(1, 2);
	System.puti(x); System.putc(' ');
	System.puti(y); System.putc(' ');
	System.puti(z); System.putc(' ');
	System.puti(b.f + b.g);
}
`},
		{Name: "operators_b8_b15", Paper: "b8-b15", Want: "3 1 true false true false", Source: `
class A { }
class B extends A { }
def main() {
	var p = int.+;
	var m = int.-;
	var z = byte.==;
	var q = A.!=;
	var castBA = A.!<B>;
	var queryBA = B.?<A>;
	System.puti(p(1, 2)); System.putc(' ');
	System.puti(m(4, 3)); System.putc(' ');
	System.putb(z('a', 'a')); System.putc(' ');
	var a1 = A.new();
	System.putb(q(a1, a1)); System.putc(' ');
	var bb: A = B.new();
	System.putb(A.==(castBA(B.!(bb)), bb)); System.putc(' ');
	System.putb(queryBA(a1));
}
`},
		{Name: "tuples_c1_c6", Paper: "c1-c6", Want: "430atruetrue", Source: `
def swap(p: (int, int)) -> (int, int) {
	return (p.1, p.0);
}
def main() {
	var x: (int, int) = (0, 1);
	var y: (byte, bool) = ('a', true);
	var z: ((int, int), (byte, bool)) = (x, y);
	var w: (int) = x.0;
	var u: byte = (z.1.0);
	var v: () = ();
	var s = swap(3, 4);
	System.puti(s.0); System.puti(s.1);
	System.puti(w);
	System.putc(u);
	System.putb(x == (0, 1));
	System.putb((1, (2, 3)) == (1, (2, 3)));
}
`},
		{Name: "generic_list_d", Paper: "d1-d14", Want: "1 2 3 truefalsetrue", Source: `
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
def apply<A>(list: List<A>, f: A -> void) {
	for (l = list; l != null; l = l.tail) f(l.head);
}
def print(i: int) { System.puti(i); System.putc(' '); }
def main() {
	var a = List.new(1, List.new(2, List.new(3, null)));
	apply(a, print);
	var b = List.new((3, 4), null);
	System.putb(List<int>.?(a));
	System.putb(List<bool>.?(a));
	System.putb(List<(int, int)>.?(b));
}
`},
		{Name: "time_e", Paper: "e1-e5", Want: "36true", Source: `
def time<A, B>(func: A -> B, a: A) -> (B, int) {
	var start = clock.ticks();
	return (func(a), clock.ticks() - start);
}
def square(x: int) -> int { return x * x; }
def main() {
	var r = time(square, 6);
	System.puti(r.0);
	System.putb(r.1 > 0);
}
`},
		{Name: "interface_adapter_fg", Paper: "f1-g9", Want: "127099", Source: `
class Store(
	create: () -> int,
	load: int -> int,
	store: int -> ()) {
}
class Impl {
	var next: int;
	def create() -> int { next++; return next; }
	def load(k: int) -> int { return k * 10; }
	def store(r: int) { System.puti(r); }
	def adapt() -> Store {
		return Store.new(create, load, store);
	}
}
def main() {
	var s = Impl.new().adapt();
	System.puti(s.create());
	System.puti(s.create());
	System.puti(s.load(7));
	s.store(99);
}
`},
		{Name: "number_adt_h", Paper: "h1-h9", Want: "60true", Source: `
class NumberInterface<T>(
	add: (T, T) -> T,
	sub: (T, T) -> T,
	lt: (T, T) -> bool,
	one: T,
	zero: T) {
}
def sum3<T>(n: NumberInterface<T>, a: T, b: T, c: T) -> T {
	return n.add(n.add(a, b), c);
}
var IntInterface = NumberInterface.new(int.+, int.-, int.<, 1, 0);
def main() {
	System.puti(sum3(IntInterface, 10, 20, 30));
	System.putb(IntInterface.lt(IntInterface.zero, IntInterface.one));
}
`},
		{Name: "hashmap_i", Paper: "i1-i18", Want: "100200truefalse", Source: `
class HashMap<K, V> {
	def hash: K -> int;
	def equals: (K, K) -> bool;
	var keys: Array<K>;
	var vals: Array<V>;
	var used: Array<bool>;
	new(hash, equals) {
		keys = Array<K>.new(16);
		vals = Array<V>.new(16);
		used = Array<bool>.new(16);
	}
	def slot(key: K) -> int {
		var h = hash(key) % 16;
		if (h < 0) h = 0 - h;
		while (used[h] && !equals(keys[h], key)) h = (h + 1) % 16;
		return h;
	}
	def set(key: K, val: V) {
		var h = slot(key);
		keys[h] = key; vals[h] = val; used[h] = true;
	}
	def get(key: K) -> V {
		return vals[slot(key)];
	}
	def has(key: K) -> bool {
		return used[slot(key)];
	}
}
def idHash(x: int) -> int { return x; }
def pairHash(p: (int, int)) -> int { return p.0 * 31 + p.1; }
def main() {
	var m = HashMap<int, int>.new(idHash, int.==);
	m.set(1, 100);
	m.set(17, 200);
	System.puti(m.get(1));
	System.puti(m.get(17));
	var p = HashMap<(int, int), bool>.new(pairHash, (int, int).==);
	p.set((1, 2), true);
	System.putb(p.get(1, 2));
	System.putb(p.has(2, 1));
}
`},
		{Name: "print1_j", Paper: "j1-j9", Want: "42falsex", Source: `
def printInt(i: int) { System.puti(i); }
def printBool(b: bool) { System.putb(b); }
def printByte(b: byte) { System.putc(b); }
def print1<T>(a: T) {
	if (int.?(a)) printInt(int.!(a));
	if (bool.?(a)) printBool(bool.!(a));
	if (byte.?(a)) printByte(byte.!(a));
}
def main() {
	print1(42);
	print1(false);
	print1('x');
}
`},
		{Name: "matcher_km", Paper: "k1-m8", Want: "1true7,9", Source: `
class Any { }
class Box<T> extends Any {
	def val: T;
	new(val) { }
	def unbox() -> T { return val; }
}
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
class Matcher {
	var matches: List<Any>;
	def add<T>(f: T -> void) {
		matches = List.new(Box.new(f), matches);
	}
	def dispatch<T>(v: T) {
		for (l = matches; l != null; l = l.tail) {
			var f = l.head;
			if (Box<T -> void>.?(f)) {
				Box<T -> void>.!(f).unbox()(v);
				return;
			}
		}
	}
}
def printInt(i: int) { System.puti(i); }
def printBool(b: bool) { System.putb(b); }
def printPair(p: (int, int)) {
	System.puti(p.0); System.putc(','); System.puti(p.1);
}
def main() {
	var m = Matcher.new();
	m.add(printInt);
	m.add(printBool);
	m.add(printPair);
	m.dispatch(1);
	m.dispatch(true);
	m.dispatch(7, 9);
}
`},
		{Name: "variants_n", Paper: "n1-n20", Want: "+ab#a-atruetruefalse", Source: `
class Buffer {
	var count: int;
	def put(b: byte) { System.putc(b); count++; }
}
class Instr {
	def emit(buf: Buffer);
}
class InstrOf<T> extends Instr {
	var emitFunc: (Buffer, T) -> void;
	var val: T;
	new(emitFunc, val) { }
	def emit(buf: Buffer) {
		emitFunc(buf, val);
	}
}
def emitAdd(buf: Buffer, ops: (byte, byte)) {
	buf.put('+'); buf.put(ops.0); buf.put(ops.1);
}
def emitAddi(buf: Buffer, ops: (byte, int)) {
	buf.put('#'); buf.put(ops.0);
}
def emitNeg(buf: Buffer, r: byte) {
	buf.put('-'); buf.put(r);
}
def main() {
	var buf = Buffer.new();
	var i: Instr = InstrOf.new(emitAdd, ('a', 'b'));
	var j: Instr = InstrOf.new(emitAddi, ('a', -11));
	var k: Instr = InstrOf.new(emitNeg, 'a');
	i.emit(buf);
	j.emit(buf);
	k.emit(buf);
	System.putb(InstrOf<byte>.?(k));
	System.putb(InstrOf<(byte, byte)>.?(i));
	System.putb(InstrOf<(byte, byte)>.?(j));
}
`},
		{Name: "variance_o", Paper: "o1-o7", Want: "woof!woof!", Source: `
class Animal {
	def speak() { System.puts("...!"); }
}
class Bat extends Animal {
	def speak() { System.puts("woof!"); }
}
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
def apply<A>(list: List<A>, f: A -> void) {
	for (l = list; l != null; l = l.tail) f(l.head);
}
def g(a: Animal) { a.speak(); }
def main() {
	var b: List<Bat> = List.new(Bat.new(), List.new(Bat.new(), null));
	apply(b, g); // contravariance: Animal -> void <: Bat -> void
}
`},
		{Name: "override_ambiguity_p", Paper: "p10-p17", Want: "7 12 7 12", Source: `
class A {
	def m(a: int, b: int) -> int { return a + b; }
}
class B extends A {
	def m(a: (int, int)) -> int { return a.0 * a.1; }
}
def pick(z: bool) -> A {
	if (z) return A.new();
	return B.new();
}
def main() {
	var a = pick(true);
	var b = pick(false);
	System.puti(a.m(3, 4));
	System.putc(' ');
	System.puti(b.m(3, 4));
	var t = (3, 4);
	System.putc(' ');
	System.puti(a.m(t));
	System.putc(' ');
	System.puti(b.m(t));
}
`},
		{Name: "firstclass_ambiguity_p1", Paper: "p1-p8", Want: "7 30 7 30 6", Source: `
def f(a: int, b: int) -> int { return a - b; }
def g(a: (int, int)) -> int { return a.0 * a.1; }
def r<A>(a: A) -> int { return 6; }
def pick(z: bool) -> (int, int) -> int {
	if (z) return f;
	return g;
}
def main() {
	var x = pick(true);
	var y = pick(false);
	var t = (10, 3);
	System.puti(x(10, 3)); System.putc(' ');
	System.puti(y(10, 3)); System.putc(' ');
	System.puti(x(t)); System.putc(' ');
	System.puti(y(t)); System.putc(' ');
	var z: (int, int) -> int = r<(int, int)>;
	System.puti(z(0, 2));
}
`},
		{Name: "normalization_q", Paper: "q1-q8", Want: "hello15 goodbye15 cheers11 ", Source: `
def m(a: (string, int)) {
	System.puts(a.0); System.puti(a.1); System.putc(' ');
}
def f(v: void) { }
def main() {
	var b = ("hello", 15);
	m(b);
	m("goodbye", b.1);
	m("cheers", (11, 22).0);
	var t: void;
	f(t);
	f();
}
`},
		{Name: "arrays", Paper: "arrays", Want: "3043b", Source: `
def main() {
	var a = Array<int>.new(5);
	for (i = 0; i < a.length; i++) a[i] = i * i;
	var sum = 0;
	for (i = 0; i < a.length; i++) sum += a[i];
	System.puti(sum);
	var v = Array<void>.new(4);
	System.puti(v.length);
	v[1];
	var s = "abc";
	System.puti(s.length);
	System.putc(s[1]);
}
`},
		{Name: "array_of_tuples", Paper: "§4.2 arrays", Want: "1234 100", Source: `
def main() {
	var a = Array<(int, int)>.new(4);
	for (i = 0; i < a.length; i++) a[i] = (i + 1, (i + 1) * 10);
	for (i = 0; i < a.length; i++) {
		System.puti(a[i].0);
	}
	var sum = 0;
	for (i = 0; i < a.length; i++) sum += a[i].1;
	System.putc(' ');
	System.puti(sum);
}
`},
		{Name: "globals_ternary", Paper: "misc", Want: "3eq", Source: `
var counter: int;
def bump() -> int { counter++; return counter; }
var limit = 3;
def main() {
	while (bump() < limit) { }
	System.puti(counter);
	var s = counter == limit ? "eq" : "ne";
	System.puts(s);
}
`},
		{Name: "components", Paper: "§2 (System/clock are components)", Want: "3 6 10 done", Source: `
component Counter {
	var count: int;
	var total = 0;
	def bump(n: int) -> int {
		count++;
		total += n;
		return total;
	}
	def reset() { count = 0; total = 0; }
}
component Log {
	private def emit(s: string) { System.puts(s); }
	def say(s: string) { emit(s); }
}
def apply3(f: int -> int) {
	System.puti(f(3)); System.putc(' ');
	System.puti(f(3)); System.putc(' ');
	System.puti(f(4)); System.putc(' ');
}
def main() {
	apply3(Counter.bump);  // component function as a value
	Log.say("done");
	Counter.reset();
}
`},
		{Name: "render_footnote5", Paper: "§3.3 footnote 5", Want: "n=42 p=(3,-7) done", Source: `
class StringBuffer {
	var chars: Array<byte>;
	var len: int;
	new() { chars = Array<byte>.new(64); }
	def putc(c: byte) { chars[len] = c; len++; }
	def puts(s: string) { for (i = 0; i < s.length; i++) putc(s[i]); }
	def puti(v: int) {
		if (v == 0) { putc('0'); return; }
		if (v < 0) { putc('-'); v = 0 - v; }
		var digits = Array<byte>.new(10);
		var n = 0;
		while (v > 0) { digits[n] = byte.!(48 + v % 10); n++; v = v / 10; }
		while (n > 0) { n--; putc(digits[n]); }
	}
	def out() { for (i = 0; i < len; i++) System.putc(chars[i]); }
}
class Point {
	var x: int;
	var y: int;
	new(x, y) { }
	def render(b: StringBuffer) {
		b.putc('('); b.puti(x); b.putc(','); b.puti(y); b.putc(')');
	}
}
// Footnote 5: print accepts the standard primitive types and also
// functions of type StringBuffer -> void; objects pass their render
// method.
def print<T>(a: T) {
	var b = StringBuffer.new();
	if (int.?(a)) b.puti(int.!(a));
	if ((StringBuffer -> void).?(a)) (StringBuffer -> void).!(a)(b);
	if (string.?(a)) b.puts(string.!(a));
	b.out();
}
def main() {
	print("n=");
	print(42);
	print(" p=");
	var p = Point.new(3, -7);
	print(p.render);
	print(" done");
}
`},
		{Name: "sort_functional", Paper: "§5 (sort tuples by first element)", Want: "1 2 5 8 | (1,d) (3,a) (7,c) (9,b) ", Source: `
// §5: "the ability to quickly define a list of tuples and then sort
// them by, say, the first element, has been very convenient".
def sort<T>(a: Array<T>, lt: (T, T) -> bool) {
	for (i = 1; i < a.length; i++) {
		var v = a[i];
		var j = i;
		while (j > 0 && lt(v, a[j - 1])) {
			a[j] = a[j - 1];
			j--;
		}
		a[j] = v;
	}
}
def byFirst(a: (int, byte), b: (int, byte)) -> bool { return a.0 < b.0; }
def main() {
	var xs = Array<int>.new(4);
	xs[0] = 5; xs[1] = 2; xs[2] = 8; xs[3] = 1;
	sort(xs, int.<);
	for (i = 0; i < xs.length; i++) { System.puti(xs[i]); System.putc(' '); }
	System.puts("| ");
	var ps = Array<(int, byte)>.new(4);
	ps[0] = (3, 'a'); ps[1] = (9, 'b'); ps[2] = (7, 'c'); ps[3] = (1, 'd');
	sort(ps, byFirst);
	for (i = 0; i < ps.length; i++) {
		System.putc('('); System.puti(ps[i].0); System.putc(',');
		System.putc(ps[i].1); System.putc(')'); System.putc(' ');
	}
}
`},
		{Name: "apply_add_copy", Paper: "§3.6 (a.apply(b.add))", Want: "6 15", Source: `
// §3.6: "the call a.apply(b.add) copies the contents of HashMap a into
// HashMap b, without even writing a loop or burdening the library with
// another convenience method such as addAll".
class Bag {
	var items: Array<int>;
	var n: int;
	new() { items = Array<int>.new(16); }
	def add(x: int) { items[n] = x; n++; }
	def apply(f: int -> void) {
		for (i = 0; i < n; i++) f(items[i]);
	}
}
var total = 0;
def accum(x: int) { total += x; }
def main() {
	var a = Bag.new();
	a.add(1); a.add(2); a.add(3);
	var b = Bag.new();
	b.add(4); b.add(5);
	a.apply(b.add);     // copy a into b, no loop
	a.apply(accum);
	System.puti(total);
	System.putc(' ');
	total = 0;
	b.apply(accum);
	System.puti(total);
}
`},
		{Name: "enums", Paper: "§6.1 future work (implemented)", Want: "0 2 GREEN true false ok RED,GREEN,BLUE,", Source: `
enum Color { RED, GREEN, BLUE }
enum State { IDLE, RUN }
class Pixel {
	var c: Color;   // defaults to the first case
	new(c) { }
}
def describe<T>(x: T) -> string {
	if (Color.?(x)) return Color.!(x).name;
	if (State.?(x)) return State.!(x).name;
	return "?";
}
def each(f: Color -> void) {
	f(Color.RED); f(Color.GREEN); f(Color.BLUE);
}
var sep: Color;  // global default
def printColor(c: Color) { System.puts(c.name); System.putc(','); }
def main() {
	var r = Color.RED;
	var b = Color.BLUE;
	System.puti(r.tag); System.putc(' ');
	System.puti(b.tag); System.putc(' ');
	System.puts(describe(Color.GREEN)); System.putc(' ');
	System.putb(r == Color.RED); System.putc(' ');
	System.putb(r == b); System.putc(' ');
	var p = Pixel.new(Color.GREEN);
	if (p.c == Color.GREEN && sep == Color.RED) System.puts("ok ");
	each(printColor);
}
`},
		{Name: "void_fields", Paper: "§4.2 void", Want: "()ok", Source: `
class C {
	var v: void;
	var w: (void, void);
}
def main() {
	var c = C.new();
	c.v = ();
	c.w = ((), ());
	var x = c.v;
	System.puts("()ok");
}
`},
		churn(BenchClosureChurn(64), "1440"),
		churn(BenchObjectChurn(64), "2240"),
	}
}

// churn pins a bench workload into the corpus at a small iteration
// count with its expected checksum, so the differential and fuzz
// harnesses cover the allocation-churn shapes the analysis layer
// optimizes.
func churn(p Prog, want string) Prog {
	p.Want = want
	return p
}

// Get returns the corpus program with the given name.
func Get(name string) Prog {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	panic("testprogs: unknown program " + name)
}

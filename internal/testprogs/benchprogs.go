package testprogs

import "fmt"

// Bench workloads for the experiment harness (E1-E6). Each takes an
// iteration count and prints a final checksum so results can be
// cross-checked between pipeline configurations.

// BenchTupleSmall passes a small (int, int) tuple through a first-class
// function in a hot loop: the §4.1 dynamic-check and §4.2 boxing costs
// dominate in reference mode (E1, E2-small).
func BenchTupleSmall(n int) Prog {
	return Prog{
		Name:  "bench_tuple_small",
		Paper: "§4.1/§4.2",
		Source: fmt.Sprintf(`
def combine(p: (int, int)) -> int { return p.0 + p.1; }
def swap(p: (int, int)) -> (int, int) { return (p.1, p.0); }
def main() -> int {
	var f = combine;
	var acc = 0;
	for (i = 0; i < %d; i++) {
		var t = swap(i, acc & 0xFF);
		acc = acc + f(t);
	}
	System.puti(acc);
	return acc;
}
`, n),
	}
}

// BenchTupleLarge passes a 16-element tuple by value through calls: the
// §4.2 tradeoff case where flattening moves many scalars and boxing may
// narrow the gap ("large tuples might actually perform better if
// allocated on the heap").
func BenchTupleLarge(n int) Prog {
	return Prog{
		Name:  "bench_tuple_large",
		Paper: "§4.2 tradeoffs",
		Source: fmt.Sprintf(`
def sum16(t: (int, int, int, int, int, int, int, int, int, int, int, int, int, int, int, int)) -> int {
	return t.0 + t.1 + t.2 + t.3 + t.4 + t.5 + t.6 + t.7
	     + t.8 + t.9 + t.10 + t.11 + t.12 + t.13 + t.14 + t.15;
}
def make16(x: int) -> (int, int, int, int, int, int, int, int, int, int, int, int, int, int, int, int) {
	return (x, x+1, x+2, x+3, x+4, x+5, x+6, x+7, x+8, x+9, x+10, x+11, x+12, x+13, x+14, x+15);
}
def main() -> int {
	var f = sum16;
	var acc = 0;
	for (i = 0; i < %d; i++) {
		acc = acc + f(make16(i & 0xFF));
	}
	System.puti(acc);
	return acc;
}
`, n),
	}
}

// BenchGenericList builds and folds a polymorphic list: runtime
// type-argument passing dominates reference mode (E3).
func BenchGenericList(n int) Prog {
	return Prog{
		Name:  "bench_generic_list",
		Paper: "§4.3",
		Source: fmt.Sprintf(`
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
def fold<T>(list: List<T>, f: (int, T) -> int, init: int) -> int {
	var acc = init;
	for (l = list; l != null; l = l.tail) acc = f(acc, l.head);
	return acc;
}
def addInt(acc: int, x: int) -> int { return acc + x; }
def addPair(acc: int, p: (int, int)) -> int { return acc + p.0 * p.1; }
def main() -> int {
	var ints: List<int>;
	var pairs: List<(int, int)>;
	for (i = 0; i < %d; i++) {
		ints = List.new(i, ints);
		pairs = List.new((i, 2), pairs);
	}
	var acc = fold(ints, addInt, 0) + fold(pairs, addPair, 0);
	System.puti(acc);
	return acc;
}
`, n),
	}
}

// BenchHashMap exercises the §3.2 ADT HashMap with function-valued
// hash/equality parameters (E3).
func BenchHashMap(n int) Prog {
	return Prog{
		Name:  "bench_hashmap",
		Paper: "§3.2",
		Source: fmt.Sprintf(`
class HashMap<K, V> {
	def hash: K -> int;
	def equals: (K, K) -> bool;
	var keys: Array<K>;
	var vals: Array<V>;
	var used: Array<bool>;
	var mask: int;
	new(hash, equals, size: int) {
		keys = Array<K>.new(size);
		vals = Array<V>.new(size);
		used = Array<bool>.new(size);
		mask = size - 1;
	}
	def slot(key: K) -> int {
		var h = hash(key) & mask;
		while (used[h] && !equals(keys[h], key)) h = (h + 1) & mask;
		return h;
	}
	def set(key: K, val: V) {
		var h = slot(key);
		keys[h] = key; vals[h] = val; used[h] = true;
	}
	def get(key: K) -> V { return vals[slot(key)]; }
}
def idHash(x: int) -> int { return x * 40503; }
def main() -> int {
	var m = HashMap<int, int>.new(idHash, int.==, 4096);
	for (i = 0; i < %d; i++) m.set(i & 2047, i);
	var acc = 0;
	for (i = 0; i < %d; i++) acc = acc + m.get(i & 2047);
	System.puti(acc);
	return acc;
}
`, n, n),
	}
}

// BenchPrint1 runs the §3.3 ad-hoc dispatch pattern in a hot loop; in
// compiled mode the query chain folds to a direct call (E5).
func BenchPrint1(n int) Prog {
	return Prog{
		Name:  "bench_print1",
		Paper: "§3.3",
		Source: fmt.Sprintf(`
var acc: int;
def handleInt(i: int) { acc = acc + i; }
def handleBool(b: bool) { if (b) acc = acc + 1; }
def handleByte(b: byte) { acc = acc + int.!(b); }
def handle1<T>(a: T) {
	if (int.?(a)) handleInt(int.!(a));
	if (bool.?(a)) handleBool(bool.!(a));
	if (byte.?(a)) handleByte(byte.!(a));
}
def main() -> int {
	for (i = 0; i < %d; i++) {
		handle1(i);
		handle1((i & 1) == 0);
		handle1(byte.!(i & 0xFF));
	}
	System.puti(acc);
	return acc;
}
`, n),
	}
}

// BenchDirect is the baseline for E5: the same work with direct calls
// and no type dispatch.
func BenchDirect(n int) Prog {
	return Prog{
		Name:  "bench_direct",
		Paper: "§3.3 baseline",
		Source: fmt.Sprintf(`
var acc: int;
def handleInt(i: int) { acc = acc + i; }
def handleBool(b: bool) { if (b) acc = acc + 1; }
def handleByte(b: byte) { acc = acc + int.!(b); }
def main() -> int {
	for (i = 0; i < %d; i++) {
		handleInt(i);
		handleBool((i & 1) == 0);
		handleByte(byte.!(i & 0xFF));
	}
	System.puti(acc);
	return acc;
}
`, n),
	}
}

// BenchMatcher runs the §3.4 polymorphic matcher in a hot loop (E6):
// reified type queries search a list of boxed handlers.
func BenchMatcher(n int) Prog {
	return Prog{
		Name:  "bench_matcher",
		Paper: "§3.4",
		Source: fmt.Sprintf(`
class Any { }
class Box<T> extends Any {
	def val: T;
	new(val) { }
	def unbox() -> T { return val; }
}
class List<T> {
	var head: T;
	var tail: List<T>;
	new(head, tail) { }
}
class Matcher {
	var matches: List<Any>;
	def add<T>(f: T -> void) {
		matches = List.new(Box.new(f), matches);
	}
	def dispatch<T>(v: T) {
		for (l = matches; l != null; l = l.tail) {
			var f = l.head;
			if (Box<T -> void>.?(f)) {
				Box<T -> void>.!(f).unbox()(v);
				return;
			}
		}
	}
}
var acc: int;
def handleInt(i: int) { acc = acc + i; }
def handleBool(b: bool) { if (b) acc = acc + 1; }
def handlePair(p: (int, int)) { acc = acc + p.0 - p.1; }
def main() -> int {
	var m = Matcher.new();
	m.add(handleInt);
	m.add(handleBool);
	m.add(handlePair);
	for (i = 0; i < %d; i++) {
		m.dispatch(i);
		m.dispatch((i & 1) == 0);
		m.dispatch(i, i >> 1);
	}
	System.puti(acc);
	return acc;
}
`, n),
	}
}

// BenchVariants runs the §3.5 variant-instruction pattern in a loop: a
// mixed worklist of InstrOf<T> variants is emitted repeatedly.
func BenchVariants(n int) Prog {
	return Prog{
		Name:  "bench_variants",
		Paper: "§3.5",
		Source: fmt.Sprintf(`
class Buffer {
	var count: int;
	def put(b: byte) { count = count + int.!(b); }
}
class Instr {
	def emit(buf: Buffer);
}
class InstrOf<T> extends Instr {
	var emitFunc: (Buffer, T) -> void;
	var val: T;
	new(emitFunc, val) { }
	def emit(buf: Buffer) { emitFunc(buf, val); }
}
def emitRR(buf: Buffer, ops: (byte, byte)) { buf.put(ops.0); buf.put(ops.1); }
def emitRI(buf: Buffer, ops: (byte, int)) { buf.put(ops.0); }
def emitR(buf: Buffer, r: byte) { buf.put(r); }
def main() -> int {
	var is = Array<Instr>.new(3);
	is[0] = InstrOf.new(emitRR, ('a', 'b'));
	is[1] = InstrOf.new(emitRI, ('c', -11));
	is[2] = InstrOf.new(emitR, 'd');
	var buf = Buffer.new();
	for (i = 0; i < %d; i++) {
		buf.put('x');
		is[i %% 3].emit(buf);
	}
	System.puti(buf.count);
	return buf.count;
}
`, n),
	}
}

// BenchClosureChurn allocates a bound method and a plain closure on
// every loop iteration, invoking both locally: nothing escapes the
// frame, so the analysis layer's stack promotion should remove the
// per-iteration heap charge entirely (the workload behind the
// Analysis_Heap rows).
func BenchClosureChurn(n int) Prog {
	return Prog{
		Name:  "bench_closure_churn",
		Paper: "escape analysis",
		Source: fmt.Sprintf(`
class Acc {
	var total: int;
	new(total) { }
	def add(x: int) { total = total + x; }
}
def apply(f: int -> int, x: int) -> int { return f(x); }
def scale(k: int) -> int { return k * 3; }
def main() -> int {
	var a = Acc.new(0);
	for (i = 0; i < %d; i++) {
		var g = a.add;
		g(apply(scale, i & 15));
	}
	System.puti(a.total);
	return a.total;
}
`, n),
	}
}

// BenchObjectChurn allocates a short-lived object per iteration and
// immediately consumes it: once the allocator and accessor inline, the
// object is provably frame-local and the charge is promoted away.
func BenchObjectChurn(n int) Prog {
	return Prog{
		Name:  "bench_object_churn",
		Paper: "escape analysis",
		Source: fmt.Sprintf(`
class Pt {
	var x: int;
	var y: int;
	new(x, y) { }
	def dot(o: Pt) -> int { return x * o.x + y * o.y; }
}
def main() -> int {
	var acc = 0;
	for (i = 0; i < %d; i++) {
		var p = Pt.new(i %% 8, (i / 8) %% 8);
		acc = acc + p.dot(p);
	}
	System.puti(acc);
	return acc;
}
`, n),
	}
}

// Package lexer converts Virgil-core source text into tokens.
package lexer

import (
	"repro/internal/src"
	"repro/internal/token"
)

// Lexer scans one file. It supports Mark/Reset so the parser can
// backtrack across ambiguous '<' (less-than vs type arguments).
type Lexer struct {
	file *src.File
	errs *src.ErrorList
	s    string
	pos  int
}

// New returns a lexer over file, reporting errors into errs.
func New(file *src.File, errs *src.ErrorList) *Lexer {
	return &Lexer{file: file, errs: errs, s: file.Content}
}

// File returns the file being scanned.
func (l *Lexer) File() *src.File { return l.file }

// Mark captures the scanner state for later Reset.
func (l *Lexer) Mark() int { return l.pos }

// Reset rewinds the scanner to a state captured by Mark.
func (l *Lexer) Reset(mark int) { l.pos = mark }

// PosAt converts a byte offset to a Pos in this lexer's file.
func (l *Lexer) PosAt(off int) src.Pos { return src.Pos{File: l.file, Off: off} }

func (l *Lexer) errorf(off int, format string, args ...any) {
	if l.errs != nil {
		l.errs.Add(src.Pos{File: l.file, Off: off}, format, args...)
	}
}

func (l *Lexer) peek() byte {
	if l.pos < len(l.s) {
		return l.s[l.pos]
	}
	return 0
}

func (l *Lexer) peekAt(n int) byte {
	if l.pos+n < len(l.s) {
		return l.s[l.pos+n]
	}
	return 0
}

func isLetter(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// skipSpace consumes whitespace and comments (// and /* */).
func (l *Lexer) skipSpace() {
	for l.pos < len(l.s) {
		c := l.s[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.pos++
		case c == '/' && l.peekAt(1) == '/':
			for l.pos < len(l.s) && l.s[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos
			l.pos += 2
			for l.pos < len(l.s) && !(l.s[l.pos] == '*' && l.peekAt(1) == '/') {
				l.pos++
			}
			if l.pos >= len(l.s) {
				l.errorf(start, "unterminated block comment")
				return
			}
			l.pos += 2
		default:
			return
		}
	}
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.s) {
		return token.Token{Kind: token.EOF, Off: start}
	}
	c := l.s[l.pos]
	switch {
	case isLetter(c):
		for l.pos < len(l.s) && (isLetter(l.s[l.pos]) || isDigit(l.s[l.pos])) {
			l.pos++
		}
		lit := l.s[start:l.pos]
		if kw, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: kw, Lit: lit, Off: start}
		}
		return token.Token{Kind: token.IDENT, Lit: lit, Off: start}
	case isDigit(c):
		return l.scanNumber(start)
	case c == '\'':
		return l.scanChar(start)
	case c == '"':
		return l.scanString(start)
	}
	l.pos++
	two := func(second byte, both, one token.Kind) token.Token {
		if l.peek() == second {
			l.pos++
			return token.Token{Kind: both, Off: start}
		}
		return token.Token{Kind: one, Off: start}
	}
	switch c {
	case '(':
		return token.Token{Kind: token.LParen, Off: start}
	case ')':
		return token.Token{Kind: token.RParen, Off: start}
	case '{':
		return token.Token{Kind: token.LBrace, Off: start}
	case '}':
		return token.Token{Kind: token.RBrace, Off: start}
	case '[':
		return token.Token{Kind: token.LBracket, Off: start}
	case ']':
		return token.Token{Kind: token.RBracket, Off: start}
	case ',':
		return token.Token{Kind: token.Comma, Off: start}
	case ';':
		return token.Token{Kind: token.Semi, Off: start}
	case ':':
		return token.Token{Kind: token.Colon, Off: start}
	case '.':
		return token.Token{Kind: token.Dot, Off: start}
	case '?':
		return token.Token{Kind: token.Question, Off: start}
	case '~':
		return token.Token{Kind: token.Tilde, Off: start}
	case '=':
		return two('=', token.Eq, token.Assign)
	case '!':
		return two('=', token.Neq, token.Not)
	case '<':
		if l.peek() == '=' {
			l.pos++
			return token.Token{Kind: token.Le, Off: start}
		}
		if l.peek() == '<' {
			l.pos++
			return token.Token{Kind: token.Shl, Off: start}
		}
		return token.Token{Kind: token.Lt, Off: start}
	case '>':
		if l.peek() == '=' {
			l.pos++
			return token.Token{Kind: token.Ge, Off: start}
		}
		if l.peek() == '>' {
			l.pos++
			return token.Token{Kind: token.Shr, Off: start}
		}
		return token.Token{Kind: token.Gt, Off: start}
	case '+':
		if l.peek() == '+' {
			l.pos++
			return token.Token{Kind: token.Inc, Off: start}
		}
		return two('=', token.AddEq, token.Add)
	case '-':
		if l.peek() == '>' {
			l.pos++
			return token.Token{Kind: token.Arrow, Off: start}
		}
		if l.peek() == '-' {
			l.pos++
			return token.Token{Kind: token.Dec, Off: start}
		}
		return two('=', token.SubEq, token.Sub)
	case '*':
		return token.Token{Kind: token.Mul, Off: start}
	case '/':
		return token.Token{Kind: token.Div, Off: start}
	case '%':
		return token.Token{Kind: token.Mod, Off: start}
	case '&':
		return two('&', token.AndAnd, token.And)
	case '|':
		return two('|', token.OrOr, token.Or)
	case '^':
		return token.Token{Kind: token.Xor, Off: start}
	}
	l.errorf(start, "illegal character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Off: start}
}

func (l *Lexer) scanNumber(start int) token.Token {
	if l.s[l.pos] == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.pos += 2
		n := 0
		for l.pos < len(l.s) && isHexDigit(l.s[l.pos]) {
			l.pos++
			n++
		}
		if n == 0 {
			l.errorf(start, "malformed hexadecimal literal")
			return token.Token{Kind: token.ILLEGAL, Lit: l.s[start:l.pos], Off: start}
		}
		return token.Token{Kind: token.INT, Lit: l.s[start:l.pos], Off: start}
	}
	for l.pos < len(l.s) && isDigit(l.s[l.pos]) {
		l.pos++
	}
	return token.Token{Kind: token.INT, Lit: l.s[start:l.pos], Off: start}
}

// scanEscape consumes one (possibly escaped) character after the opening
// quote and returns its byte value.
func (l *Lexer) scanEscape(start int) (byte, bool) {
	if l.pos >= len(l.s) {
		l.errorf(start, "unterminated literal")
		return 0, false
	}
	c := l.s[l.pos]
	l.pos++
	if c != '\\' {
		return c, true
	}
	if l.pos >= len(l.s) {
		l.errorf(start, "unterminated escape")
		return 0, false
	}
	e := l.s[l.pos]
	l.pos++
	switch e {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	case 'x':
		if l.pos+1 < len(l.s) && isHexDigit(l.s[l.pos]) && isHexDigit(l.s[l.pos+1]) {
			v := hexVal(l.s[l.pos])<<4 | hexVal(l.s[l.pos+1])
			l.pos += 2
			return byte(v), true
		}
		l.errorf(start, "malformed \\x escape")
		return 0, false
	}
	l.errorf(start, "unknown escape \\%c", e)
	return 0, false
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

func (l *Lexer) scanChar(start int) token.Token {
	l.pos++ // consume '
	b, ok := l.scanEscape(start)
	if !ok {
		return token.Token{Kind: token.ILLEGAL, Off: start}
	}
	if l.peek() != '\'' {
		l.errorf(start, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Off: start}
	}
	l.pos++
	return token.Token{Kind: token.CHAR, Lit: string(b), Off: start}
}

func (l *Lexer) scanString(start int) token.Token {
	l.pos++ // consume "
	var buf []byte
	for {
		if l.pos >= len(l.s) || l.s[l.pos] == '\n' {
			l.errorf(start, "unterminated string literal")
			return token.Token{Kind: token.ILLEGAL, Off: start}
		}
		if l.s[l.pos] == '"' {
			l.pos++
			return token.Token{Kind: token.STRING, Lit: string(buf), Off: start}
		}
		b, ok := l.scanEscape(start)
		if !ok {
			return token.Token{Kind: token.ILLEGAL, Off: start}
		}
		buf = append(buf, b)
	}
}

package lexer

import (
	"testing"

	"repro/internal/src"
	"repro/internal/testprogs"
	"repro/internal/token"
)

// FuzzLexer asserts the lexer is total: any byte sequence tokenizes
// without panicking, terminates at EOF, yields monotonically
// nondecreasing in-bounds offsets, and makes progress on every token.
func FuzzLexer(f *testing.F) {
	for _, p := range testprogs.All() {
		f.Add(p.Source)
	}
	f.Add("\"unterminated")
	f.Add("/* unterminated")
	f.Add("'")
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, source string) {
		errs := &src.ErrorList{}
		lx := New(src.NewFile("fuzz.v", source), errs)
		prevOff := -1
		for steps := 0; ; steps++ {
			if steps > len(source)*4+64 {
				t.Fatalf("lexer not making progress after %d tokens", steps)
			}
			tok := lx.Next()
			if tok.Off < prevOff {
				t.Fatalf("offset went backwards: %d after %d", tok.Off, prevOff)
			}
			if tok.Off < 0 || tok.Off > len(source) {
				t.Fatalf("offset %d out of bounds [0,%d]", tok.Off, len(source))
			}
			prevOff = tok.Off
			if tok.Kind == token.EOF {
				break
			}
		}
	})
}

package lexer

import (
	"testing"

	"repro/internal/src"
	"repro/internal/token"
)

func lexAll(t *testing.T, source string) ([]token.Token, *src.ErrorList) {
	t.Helper()
	errs := &src.ErrorList{}
	l := New(src.NewFile("test.v", source), errs)
	var toks []token.Token
	for {
		tk := l.Next()
		if tk.Kind == token.EOF {
			break
		}
		toks = append(toks, tk)
	}
	return toks, errs
}

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func expectKinds(t *testing.T, source string, want ...token.Kind) {
	t.Helper()
	toks, errs := lexAll(t, source)
	if !errs.Empty() {
		t.Fatalf("lex errors: %s", errs.Error())
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("lexed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v (in %q)", i, got[i], want[i], source)
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	expectKinds(t, "class def var new if else while for return",
		token.KwClass, token.KwDef, token.KwVar, token.KwNew, token.KwIf,
		token.KwElse, token.KwWhile, token.KwFor, token.KwReturn)
	expectKinds(t, "classy defx _x x9", token.IDENT, token.IDENT, token.IDENT, token.IDENT)
}

func TestOperators(t *testing.T) {
	expectKinds(t, "-> - -- -= > >> >= < << <= = == ! != & && | || ?",
		token.Arrow, token.Sub, token.Dec, token.SubEq, token.Gt, token.Shr,
		token.Ge, token.Lt, token.Shl, token.Le, token.Assign, token.Eq,
		token.Not, token.Neq, token.And, token.AndAnd, token.Or, token.OrOr,
		token.Question)
	expectKinds(t, "+ ++ += * / % ^ ~",
		token.Add, token.Inc, token.AddEq, token.Mul, token.Div, token.Mod,
		token.Xor, token.Tilde)
}

func TestNumbers(t *testing.T) {
	toks, errs := lexAll(t, "0 123 0x1f 0XFF")
	if !errs.Empty() {
		t.Fatal(errs.Error())
	}
	want := []string{"0", "123", "0x1f", "0XFF"}
	for i, w := range want {
		if toks[i].Kind != token.INT || toks[i].Lit != w {
			t.Errorf("token %d = %v, want INT %q", i, toks[i], w)
		}
	}
}

func TestCharAndString(t *testing.T) {
	toks, errs := lexAll(t, `'a' '\n' '\x41' "hi\tthere" "q\"q"`)
	if !errs.Empty() {
		t.Fatal(errs.Error())
	}
	if toks[0].Lit != "a" || toks[1].Lit != "\n" || toks[2].Lit != "A" {
		t.Errorf("char literals: %v", toks[:3])
	}
	if toks[3].Lit != "hi\tthere" || toks[4].Lit != `q"q` {
		t.Errorf("string literals: %v", toks[3:])
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a // line comment\n b /* block\n comment */ c",
		token.IDENT, token.IDENT, token.IDENT)
}

func TestErrors(t *testing.T) {
	_, errs := lexAll(t, `"unterminated`)
	if errs.Empty() {
		t.Error("unterminated string should error")
	}
	_, errs = lexAll(t, "@")
	if errs.Empty() {
		t.Error("illegal character should error")
	}
	_, errs = lexAll(t, "/* open")
	if errs.Empty() {
		t.Error("unterminated block comment should error")
	}
	_, errs = lexAll(t, `'\q'`)
	if errs.Empty() {
		t.Error("bad escape should error")
	}
}

func TestPositions(t *testing.T) {
	f := src.NewFile("test.v", "ab\ncd ef")
	errs := &src.ErrorList{}
	l := New(f, errs)
	l.Next() // ab
	tk := l.Next()
	pos := src.Pos{File: f, Off: tk.Off}
	if pos.Line() != 2 || pos.Col() != 1 {
		t.Errorf("cd at %d:%d, want 2:1", pos.Line(), pos.Col())
	}
	tk = l.Next()
	pos = src.Pos{File: f, Off: tk.Off}
	if pos.Line() != 2 || pos.Col() != 4 {
		t.Errorf("ef at %d:%d, want 2:4", pos.Line(), pos.Col())
	}
}

func TestMarkReset(t *testing.T) {
	errs := &src.ErrorList{}
	l := New(src.NewFile("t.v", "a b c"), errs)
	l.Next()
	m := l.Mark()
	b1 := l.Next()
	l.Reset(m)
	b2 := l.Next()
	if b1.Lit != "b" || b2.Lit != "b" {
		t.Errorf("mark/reset broken: %v %v", b1, b2)
	}
}

package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lint"
	"repro/internal/testprogs"
)

// lintSource checks one source string and returns the rendered
// findings, one per line.
func lintSource(t *testing.T, name, source string) []string {
	t.Helper()
	prog, err := core.CheckFiles([]core.File{{Name: name, Source: source}})
	if err != nil {
		t.Fatalf("%s does not typecheck: %v", name, err)
	}
	var lines []string
	for _, f := range lint.Run(prog) {
		lines = append(lines, f.String())
	}
	return lines
}

// TestGoldenCorpus compares lint output for every testdata/lint/*.v
// program against its .golden file. Run with UPDATE_LINT_GOLDEN=1 to
// regenerate the goldens.
func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "lint", "*.v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 10 {
		t.Fatalf("golden corpus has %d programs, want at least 10", len(files))
	}
	for _, file := range files {
		name := filepath.Base(file)
		t.Run(strings.TrimSuffix(name, ".v"), func(t *testing.T) {
			source, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			got := strings.Join(lintSource(t, name, string(source)), "\n")
			if got != "" {
				got += "\n"
			}
			goldenPath := strings.TrimSuffix(file, ".v") + ".golden"
			if os.Getenv("UPDATE_LINT_GOLDEN") != "" {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_LINT_GOLDEN=1): %v", err)
			}
			if got != string(want) {
				t.Errorf("lint output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCorpusFindingsPinned runs the linter over the semantic test
// corpus and pins the exact findings. The corpus deliberately
// exercises statically-decidable casts, default-initialized reads and
// dead fields (they test interpreter semantics, not style), so the
// linter must keep reporting exactly these and nothing new.
func TestCorpusFindingsPinned(t *testing.T) {
	want := map[string]bool{
		"operators_b8_b15.v:9:17: static-cast: cast from B to A always succeeds":                                              true,
		"tuples_c1_c6.v:11:6: unused-local: local v is never read":                                                            true,
		"generic_list_d.v:15:24: static-cast: type query from List<int> to List<int> is always true":                          true,
		"generic_list_d.v:16:25: static-cast: type query from List<int> to List<bool> is always false":                        true,
		"generic_list_d.v:17:31: static-cast: type query from List<(int, int)> to List<(int, int)> is always true":            true,
		"normalization_q.v:12:4: use-before-init: local t is read before initialization (declared at normalization_q.v:11:6)": true,
		"void_fields.v:4:6: unused-field: field C.w is never read":                                                            true,
		"void_fields.v:10:6: unused-local: local x is never read":                                                             true,
	}
	got := map[string]bool{}
	for _, p := range testprogs.All() {
		for _, line := range lintSource(t, p.Name+".v", p.Source) {
			got[line] = true
		}
	}
	for line := range got {
		if !want[line] {
			t.Errorf("new finding in corpus: %s", line)
		}
	}
	for line := range want {
		if !got[line] {
			t.Errorf("pinned finding disappeared: %s", line)
		}
	}
}

// TestExamplesLintClean asserts the shipped example programs have no
// findings at all — they are the code style the linter endorses.
func TestExamplesLintClean(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "virgil", "*.v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example programs found under examples/virgil")
	}
	for _, file := range files {
		source, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range lintSource(t, filepath.Base(file), string(source)) {
			t.Errorf("%s: %s", file, line)
		}
	}
}

// TestFindingsSorted checks findings come out ordered by position even
// when produced by different passes.
func TestFindingsSorted(t *testing.T) {
	source := `
def main() {
	var unused = 1;
	var x: int;
	System.puti(x);
	return;
	System.ln();
}
private def dead() { }
`
	lines := lintSource(t, "sorted.v", source)
	if len(lines) < 4 {
		t.Fatalf("expected at least 4 findings, got %d: %v", len(lines), lines)
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("findings out of order:\n%s\n%s", lines[i-1], lines[i])
		}
	}
}

package lint

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/src"
)

// RunIR lints the post-mono IR with facts from the whole-program
// analysis. These rules need interprocedural knowledge the AST pass
// cannot have: whether a callee is pure, whether a loop can exit, and
// whether an allocation escapes. The driver runs it on the mono+norm
// (unoptimized) module so the offenses are still present — the
// optimizer would delete a dead pure call, which is exactly why the
// user should hear about it.
//
// Findings are deduplicated by (position, category, message):
// monomorphization copies a generic function once per instantiation,
// and the user wrote the offending line once. Synthesized functions
// (allocators, wrappers, the global initializer) are skipped — their
// bodies have no source lines the user can act on.
func RunIR(mod *ir.Module, res *analysis.Result) []Finding {
	var findings []Finding
	seen := map[string]bool{}
	report := func(f Finding) {
		key := f.Pos.String() + "\x00" + f.Category + "\x00" + f.Msg
		if seen[key] {
			return
		}
		seen[key] = true
		findings = append(findings, f)
	}
	for _, f := range mod.Funcs {
		switch f.Kind {
		case ir.KindAlloc, ir.KindWrapper, ir.KindInit:
			continue
		}
		facts := res.FactsFor(f)
		if facts == nil {
			continue
		}
		lintPureCalls(f, res, report)
		lintInfiniteLoops(facts, report)
		lintAllocInLoop(facts, report)
	}
	SortFindings(findings)
	return findings
}

type irReport func(f Finding)

// lintPureCalls flags static calls to pure functions whose results are
// never read: the call computes nothing observable and is either a
// leftover or a misunderstanding (e.g. calling a getter for effect).
func lintPureCalls(f *ir.Func, res *analysis.Result, report irReport) {
	used := map[*ir.Reg]bool{}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			for _, a := range in.Args {
				used[a] = true
			}
		}
	}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op != ir.OpCallStatic || in.Fn == nil || !in.Pos.IsValid() {
				continue
			}
			cf := res.FactsFor(in.Fn)
			if cf == nil || !cf.Effects.Pure() || len(in.Dst) == 0 {
				continue
			}
			dead := true
			for _, d := range in.Dst {
				if used[d] {
					dead = false
					break
				}
			}
			if dead {
				report(Finding{
					Pos:      in.Pos,
					Category: CatPureCallUnused,
					Msg:      fmt.Sprintf("result of pure call to %s is unused", in.Fn.Name),
				})
			}
		}
	}
}

// lintInfiniteLoops flags loops that provably never terminate: an SCC
// of the CFG with no edge leaving it, no call (a callee could throw or
// run forever legitimately), and no potentially-trapping instruction.
// Under the interpreter's step budget such a loop always dies as
// !ResourceExhausted, so the program cannot be correct.
func lintInfiniteLoops(facts *analysis.FuncFacts, report irReport) {
	g := facts.CFG
	for _, scc := range g.SCCs() {
		if len(scc) == 1 {
			self := false
			for _, s := range g.Succs[scc[0]] {
				if s == scc[0] {
					self = true
				}
			}
			if !self {
				continue
			}
		}
		in := map[int]bool{}
		for _, b := range scc {
			in[b] = true
		}
		exits := false
		escapesLoop := false
		for _, b := range scc {
			for _, s := range g.Succs[b] {
				if !in[s] {
					exits = true
				}
			}
			for _, instr := range g.Blocks[b].Instrs {
				switch instr.Op {
				case ir.OpCallStatic, ir.OpCallVirtual, ir.OpCallIndirect, ir.OpCallBuiltin,
					ir.OpThrow, ir.OpRet:
					escapesLoop = true
				default:
					if analysis.MayTrap(instr) {
						escapesLoop = true
					}
				}
			}
		}
		if exits || escapesLoop {
			continue
		}
		pos := firstValidPos(g, scc)
		if !pos.IsValid() {
			continue
		}
		report(Finding{
			Pos:      pos,
			Category: CatInfiniteLoop,
			Msg:      "loop never terminates and will exhaust the step budget",
		})
	}
}

// firstValidPos returns the first source position found in the blocks.
func firstValidPos(g *analysis.CFG, blocks []int) (pos src.Pos) {
	for _, b := range blocks {
		for _, instr := range g.Blocks[b].Instrs {
			if instr.Pos.IsValid() {
				return instr.Pos
			}
		}
	}
	return pos
}

// lintAllocInLoop flags escaping allocations inside loops: each
// iteration charges the modeled heap, and because the value escapes,
// the optimizer cannot stack-promote the charge away. Advisory — the
// allocation may well be the point of the loop.
func lintAllocInLoop(facts *analysis.FuncFacts, report irReport) {
	g := facts.CFG
	escapes := map[*ir.Instr]bool{}
	for _, site := range facts.AllocSites {
		escapes[site.Instr] = site.Escapes
	}
	for bi, blk := range g.Blocks {
		if !g.InLoop[bi] {
			continue
		}
		for _, in := range blk.Instrs {
			if !analysis.IsAlloc(in) || !in.Pos.IsValid() {
				continue
			}
			if esc, ok := escapes[in]; ok && !esc {
				continue // stack-promoted: no heap charge survives
			}
			report(Finding{
				Pos:      in.Pos,
				Category: CatAllocInLoop,
				Msg:      fmt.Sprintf("%s allocates on every loop iteration", in.Op),
			})
		}
	}
}

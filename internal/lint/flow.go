package lint

import (
	"repro/internal/ast"
	"repro/internal/token"
	"repro/internal/typecheck"
)

// flow performs the per-body dataflow lints: reachability (unreachable
// statements) and definite assignment (locals read before any write —
// legal in Virgil, which default-initializes, but almost always a bug).
//
// The analysis is a forward may-walk over the AST: `assigned` holds the
// locals definitely assigned on every path reaching the current point,
// `terminated` is true when no path reaches it at all. Branches fork a
// copy of the state and merge by intersection; loop bodies run on a
// discarded copy because they may execute zero times.
type flow struct {
	l *linter
	// uninit maps the declaring node of each local declared without an
	// initializer to its declaration, for positions in reports.
	uninit map[any]*ast.LocalDecl
	// assigned marks binding nodes definitely assigned so far.
	assigned   map[any]bool
	terminated bool
}

func (f *flow) copyState() map[any]bool {
	c := make(map[any]bool, len(f.assigned))
	for k, v := range f.assigned {
		c[k] = v
	}
	return c
}

// merge replaces the state with the join of two branch outcomes: the
// intersection of their assignments, unless one branch terminated, in
// which case the other's facts hold alone.
func (f *flow) merge(aAssigned map[any]bool, aTerm bool, bAssigned map[any]bool, bTerm bool) {
	switch {
	case aTerm && bTerm:
		f.terminated = true
		f.assigned = aAssigned
	case aTerm:
		f.assigned = bAssigned
	case bTerm:
		f.assigned = aAssigned
	default:
		for k := range aAssigned {
			if bAssigned[k] {
				f.assigned[k] = true
			}
		}
	}
}

func (f *flow) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			if f.terminated {
				if _, empty := st.(*ast.EmptyStmt); !empty {
					f.l.report(st.Pos(), CatUnreachable, "unreachable statement")
					// Analyze the rest as if reachable so one report
					// per dead region suffices.
					f.terminated = false
				}
			}
			f.stmt(st)
		}
	case *ast.IfStmt:
		f.expr(s.Cond)
		base := f.copyState()
		f.stmt(s.Then)
		thenAssigned, thenTerm := f.assigned, f.terminated
		f.assigned, f.terminated = base, false
		if s.Else != nil {
			f.stmt(s.Else)
			f.merge(thenAssigned, thenTerm, f.assigned, f.terminated)
		}
		// No else: the fall-through path keeps the pre-branch state.
	case *ast.WhileStmt:
		f.expr(s.Cond)
		base := f.copyState()
		f.stmt(s.Body)
		// The body may run zero times; discard its facts...
		f.assigned, f.terminated = base, false
		// ...unless the condition is literally `true`: then the only way
		// past the loop is a break.
		if lit, ok := s.Cond.(*ast.BoolLit); ok && lit.Value && !hasBreak(s.Body) {
			f.terminated = true
		}
	case *ast.ForStmt:
		if s.Init != nil {
			f.expr(s.Init)
		}
		f.assigned[s] = true // the loop variable is assigned by Init
		if s.Cond != nil {
			f.expr(s.Cond)
		}
		base := f.copyState()
		f.stmt(s.Body)
		if s.Post != nil {
			f.expr(s.Post)
		}
		f.assigned, f.terminated = base, false
	case *ast.ReturnStmt:
		if s.Value != nil {
			f.expr(s.Value)
		}
		f.terminated = true
	case *ast.BreakStmt, *ast.ContinueStmt:
		f.terminated = true
	case *ast.LocalDecl:
		if s.Init != nil {
			f.expr(s.Init)
			f.assigned[s] = true
		} else {
			f.uninit[s] = s
		}
	case *ast.ExprStmt:
		f.expr(s.E)
	}
}

func (f *flow) expr(e ast.Expr) {
	switch e := e.(type) {
	case *ast.VarRef:
		f.readLocal(e)
	case *ast.TupleExpr:
		for _, el := range e.Elems {
			f.expr(el)
		}
	case *ast.MemberExpr:
		if e.Recv != nil {
			f.expr(e.Recv)
		}
	case *ast.CallExpr:
		f.expr(e.Fn)
		for _, a := range e.Args {
			f.expr(a)
		}
	case *ast.IndexExpr:
		f.expr(e.Arr)
		f.expr(e.Idx)
	case *ast.BinaryExpr:
		f.expr(e.L)
		if e.Op == token.AndAnd || e.Op == token.OrOr {
			// The right operand may not evaluate: its assignments are
			// not definite past the operator.
			base := f.copyState()
			f.expr(e.R)
			f.assigned = base
		} else {
			f.expr(e.R)
		}
	case *ast.UnaryExpr:
		f.expr(e.E)
	case *ast.TernaryExpr:
		f.expr(e.Cond)
		base := f.copyState()
		f.expr(e.Then)
		thenAssigned := f.assigned
		f.assigned = base
		f.expr(e.Els)
		f.merge(thenAssigned, false, f.assigned, false)
	case *ast.AssignExpr:
		f.expr(e.Value)
		if v, ok := e.Target.(*ast.VarRef); ok {
			if sym, ok := v.Binding.(*typecheck.LocalSym); ok {
				if e.Op != token.Assign {
					f.readLocal(v) // compound assignment reads first
				}
				f.assigned[sym.Decl] = true
				return
			}
		}
		f.expr(e.Target)
	case *ast.IncDecExpr:
		if v, ok := e.Target.(*ast.VarRef); ok {
			if sym, ok := v.Binding.(*typecheck.LocalSym); ok {
				f.readLocal(v)
				f.assigned[sym.Decl] = true
				return
			}
		}
		f.expr(e.Target)
	}
}

// readLocal reports a read of a local declared without an initializer
// before any definite assignment, once per local.
func (f *flow) readLocal(v *ast.VarRef) {
	sym, ok := v.Binding.(*typecheck.LocalSym)
	if !ok {
		return
	}
	decl, tracked := f.uninit[sym.Decl]
	if !tracked || f.assigned[sym.Decl] {
		return
	}
	f.l.report(v.Pos(), CatUseBeforeInit, "local %s is read before initialization (declared at %s)", sym.Name, decl.Pos())
	// Report each local once: treat it as assigned from here on.
	f.assigned[sym.Decl] = true
}

// hasBreak reports whether s contains a break binding to the enclosing
// loop (nested loops capture their own breaks).
func hasBreak(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BreakStmt:
		return true
	case *ast.Block:
		for _, st := range s.Stmts {
			if hasBreak(st) {
				return true
			}
		}
	case *ast.IfStmt:
		if hasBreak(s.Then) {
			return true
		}
		if s.Else != nil && hasBreak(s.Else) {
			return true
		}
	}
	return false
}

// Package lint implements the Virgil-core lint pass: dataflow and
// whole-program diagnostics over the typed AST that are advisory
// rather than errors — unreachable statements, locals read before
// initialization (Virgil default-initializes, so the read is legal but
// probably unintended), never-read locals and fields, unused private
// functions, type parameters declared but never used, and casts or
// type queries whose outcome is statically decided (§2.5's TypeCast
// and TypeQuery semantics evaluated at compile time).
//
// Lint runs on the checker's output, before lowering: every finding
// carries the source position of the offending node.
package lint

import (
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/src"
	"repro/internal/token"
	"repro/internal/typecheck"
	"repro/internal/types"
)

// Finding is one lint diagnostic.
type Finding struct {
	Pos      src.Pos
	Category string
	Msg      string
}

// String renders the finding in the compiler's file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Category, f.Msg)
}

// Lint categories.
const (
	CatUnreachable   = "unreachable"
	CatUseBeforeInit = "use-before-init"
	CatUnusedLocal   = "unused-local"
	CatUnusedField   = "unused-field"
	CatUnusedPrivate = "unused-private"
	CatUnusedParam   = "unused-type-param"
	CatStaticCast    = "static-cast"
	// IR-level rules fed by the whole-program analysis (RunIR).
	CatPureCallUnused = "pure-call-unused"
	CatInfiniteLoop   = "infinite-loop"
	CatAllocInLoop    = "alloc-in-loop"
)

// SortFindings orders findings deterministically: by file name, then
// offset, then category, then message. Every producer of findings must
// sort through here so `virgil lint` output is byte-stable.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		an, bn := "", ""
		if a.Pos.File != nil {
			an = a.Pos.File.Name
		}
		if b.Pos.File != nil {
			bn = b.Pos.File.Name
		}
		if an != bn {
			return an < bn
		}
		if a.Pos.Off != b.Pos.Off {
			return a.Pos.Off < b.Pos.Off
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return a.Msg < b.Msg
	})
}

// Run lints a checked program and returns the findings sorted by
// source position.
func Run(prog *typecheck.Program) []Finding {
	l := &linter{
		prog:       prog,
		tc:         prog.Types,
		localReads: map[any]bool{},
		fieldReads: map[*typecheck.FieldSym]bool{},
		funcRefs:   map[*typecheck.FuncSym]bool{},
	}
	l.collectUsage()
	l.checkBodies()
	l.reportUnusedLocals()
	l.reportUnusedFields()
	l.reportUnusedPrivate()
	l.reportUnusedTypeParams()
	SortFindings(l.findings)
	return l.findings
}

type linter struct {
	prog     *typecheck.Program
	tc       *types.Cache
	findings []Finding

	// localReads marks locals read at least once, keyed by declaring
	// node (*ast.LocalDecl or *ast.ForStmt — the binding identity).
	localReads map[any]bool
	fieldReads map[*typecheck.FieldSym]bool
	funcRefs   map[*typecheck.FuncSym]bool
}

func (l *linter) report(pos src.Pos, cat, format string, args ...any) {
	l.findings = append(l.findings, Finding{Pos: pos, Category: cat, Msg: fmt.Sprintf(format, args...)})
}

// ------------------------------------------------------------- bodies

// body is one analyzable code body with its enclosing declaration.
type body struct {
	block *ast.Block
	// exprs are stray expressions outside the block: super args,
	// field and global initializers.
	exprs []ast.Expr
}

// bodies enumerates every code body in the program: top-level and
// component functions, methods, constructors, and initializers.
func (l *linter) bodies() []body {
	var out []body
	add := func(b *ast.Block, exprs ...ast.Expr) {
		var live []ast.Expr
		for _, e := range exprs {
			if e != nil {
				live = append(live, e)
			}
		}
		if b != nil || len(live) > 0 {
			out = append(out, body{block: b, exprs: live})
		}
	}
	for _, fn := range l.prog.Funcs {
		if fn.Decl != nil {
			add(fn.Decl.Body)
		}
	}
	for _, cls := range l.prog.Classes {
		for _, m := range cls.Methods {
			if m.Decl != nil {
				add(m.Decl.Body)
			}
		}
		if ct := cls.Ctor; ct != nil && ct.Decl != nil {
			add(ct.Decl.Body, ct.Decl.SuperArgs...)
		}
		for _, f := range cls.Fields {
			add(nil, f.Init)
		}
	}
	for _, g := range l.prog.Globals {
		if g.Decl != nil {
			add(nil, g.Decl.Init)
		}
	}
	return out
}

// checkBodies runs the per-body flow analyses: reachability and
// definite assignment.
func (l *linter) checkBodies() {
	for _, b := range l.bodies() {
		f := &flow{l: l, assigned: map[any]bool{}, uninit: map[any]*ast.LocalDecl{}}
		for _, e := range b.exprs {
			f.expr(e)
		}
		if b.block != nil {
			f.stmt(b.block)
		}
	}
}

// ------------------------------------------------------- usage marking

// collectUsage walks every expression in the program once, recording
// which locals and fields are read and which functions are referenced,
// and reporting statically-decided casts along the way.
func (l *linter) collectUsage() {
	for _, b := range l.bodies() {
		for _, e := range b.exprs {
			l.useExpr(e, true)
		}
		if b.block != nil {
			l.useStmt(b.block)
		}
	}
}

func (l *linter) useStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			l.useStmt(st)
		}
	case *ast.IfStmt:
		l.useExpr(s.Cond, true)
		l.useStmt(s.Then)
		if s.Else != nil {
			l.useStmt(s.Else)
		}
	case *ast.WhileStmt:
		l.useExpr(s.Cond, true)
		l.useStmt(s.Body)
	case *ast.ForStmt:
		if s.Init != nil {
			l.useExpr(s.Init, true)
		}
		if s.Cond != nil {
			l.useExpr(s.Cond, true)
		}
		if s.Post != nil {
			l.useExpr(s.Post, true)
		}
		l.useStmt(s.Body)
	case *ast.ReturnStmt:
		if s.Value != nil {
			l.useExpr(s.Value, true)
		}
	case *ast.LocalDecl:
		if s.Init != nil {
			l.useExpr(s.Init, true)
		}
	case *ast.ExprStmt:
		l.useExpr(s.E, true)
	}
}

// useExpr records reads; read is false only for the target of a plain
// assignment, which writes without reading.
func (l *linter) useExpr(e ast.Expr, read bool) {
	switch e := e.(type) {
	case *ast.VarRef:
		if !read {
			return
		}
		switch b := e.Binding.(type) {
		case *typecheck.LocalSym:
			l.localReads[b.Decl] = true
		case *typecheck.FieldSym:
			l.fieldReads[b] = true
		case *typecheck.FuncSym:
			l.funcRefs[b] = true
		}
	case *ast.TupleExpr:
		for _, el := range e.Elems {
			l.useExpr(el, true)
		}
	case *ast.MemberExpr:
		if e.Recv != nil {
			l.useExpr(e.Recv, true)
		}
		switch b := e.Binding.(type) {
		case *typecheck.FieldSym:
			if read {
				l.fieldReads[b] = true
			}
		case *typecheck.FuncSym:
			l.funcRefs[b] = true
		case *typecheck.OperatorSym:
			l.checkOperator(e, b)
		}
	case *ast.CallExpr:
		l.useExpr(e.Fn, true)
		for _, a := range e.Args {
			l.useExpr(a, true)
		}
	case *ast.IndexExpr:
		l.useExpr(e.Arr, true)
		l.useExpr(e.Idx, true)
	case *ast.BinaryExpr:
		l.useExpr(e.L, true)
		l.useExpr(e.R, true)
	case *ast.UnaryExpr:
		l.useExpr(e.E, true)
	case *ast.TernaryExpr:
		l.useExpr(e.Cond, true)
		l.useExpr(e.Then, true)
		l.useExpr(e.Els, true)
	case *ast.AssignExpr:
		l.useExpr(e.Value, true)
		// A compound assignment reads its target; a plain one only
		// writes it (though a member/index target still reads the
		// receiver and index).
		l.useExpr(e.Target, e.Op != token.Assign)
	case *ast.IncDecExpr:
		l.useExpr(e.Target, true)
	}
}

// checkOperator reports casts and queries whose outcome the checker
// can already decide (§2.5): the operand's static type settles the
// test, so the dynamic check is redundant (or doomed).
func (l *linter) checkOperator(e *ast.MemberExpr, sym *typecheck.OperatorSym) {
	if sym.Op != "!" && sym.Op != "?" {
		return
	}
	// Input stays nil when inference failed; FreeInput remains set even
	// after inference fills Input in, so only Input decides. Open types
	// have no static outcome.
	if sym.Input == nil || types.HasTypeParams(sym.Input) || types.HasTypeParams(sym.Subject) {
		return
	}
	// A cast between distinct primitive types is a value conversion
	// (byte.!(i), int.!(b)) with computational effect, not a redundant
	// type test — never flag it.
	if _, inPrim := sym.Input.(*types.Prim); inPrim {
		if _, subjPrim := sym.Subject.(*types.Prim); subjPrim && sym.Input != sym.Subject && sym.Op == "!" {
			return
		}
	}
	rel := l.tc.Castable(sym.Input, sym.Subject)
	switch {
	case sym.Op == "!" && rel == types.CastTrue:
		l.report(e.Pos(), CatStaticCast, "cast from %s to %s always succeeds", sym.Input, sym.Subject)
	case sym.Op == "!" && rel == types.CastFalse:
		l.report(e.Pos(), CatStaticCast, "cast from %s to %s always fails", sym.Input, sym.Subject)
	case sym.Op == "?" && rel == types.CastTrue:
		l.report(e.Pos(), CatStaticCast, "type query from %s to %s is always true", sym.Input, sym.Subject)
	case sym.Op == "?" && rel == types.CastFalse:
		l.report(e.Pos(), CatStaticCast, "type query from %s to %s is always false", sym.Input, sym.Subject)
	}
}

// ------------------------------------------------------ unused things

// reportUnusedLocals walks bodies again to find declaration sites and
// reports the ones no expression ever read. Parameters are exempt
// (overrides and abstract signatures legitimately ignore them).
func (l *linter) reportUnusedLocals() {
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.IfStmt:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.WhileStmt:
			walk(s.Body)
		case *ast.ForStmt:
			if !l.localReads[s] {
				l.report(s.Var.Off, CatUnusedLocal, "loop variable %s is never read", s.Var.Name)
			}
			walk(s.Body)
		case *ast.LocalDecl:
			if !l.localReads[s] {
				l.report(s.Pos(), CatUnusedLocal, "local %s is never read", s.Name.Name)
			}
		}
	}
	for _, b := range l.bodies() {
		if b.block != nil {
			walk(b.block)
		}
	}
}

// reportUnusedFields reports declared fields never read anywhere in
// the program. Virgil-core compiles whole programs, so "no read in the
// program" is decidable; compact class-parameter fields are exempt
// (they are the constructor's signature).
func (l *linter) reportUnusedFields() {
	for _, cls := range l.prog.Classes {
		for _, f := range cls.Fields {
			if f.Decl == nil || l.fieldReads[f] {
				continue
			}
			l.report(f.Decl.Pos(), CatUnusedField, "field %s.%s is never read", cls.Name, f.Name)
		}
	}
}

// reportUnusedPrivate reports private functions and methods no
// expression references. Overriding methods are exempt: they are
// reached through the overridden slot.
func (l *linter) reportUnusedPrivate() {
	check := func(fn *typecheck.FuncSym, kind string) {
		if !fn.Private || fn.Decl == nil || fn.Abstract || fn == l.prog.Main {
			return
		}
		if fn.Decl.Override != nil || l.funcRefs[fn] {
			return
		}
		l.report(fn.Decl.Pos(), CatUnusedPrivate, "private %s %s is never used", kind, fn.Name)
	}
	for _, fn := range l.prog.Funcs {
		check(fn, "function")
	}
	for _, cls := range l.prog.Classes {
		for _, m := range cls.Methods {
			check(m, "method")
		}
	}
}

// ------------------------------------------------- unused type params

// reportUnusedTypeParams reports type parameters that appear nowhere
// in the declaring entity's signature or body types.
func (l *linter) reportUnusedTypeParams() {
	for _, fn := range l.prog.Funcs {
		l.checkFuncTypeParams(fn)
	}
	for _, cls := range l.prog.Classes {
		l.checkClassTypeParams(cls)
		for _, m := range cls.Methods {
			l.checkFuncTypeParams(m)
		}
	}
}

func (l *linter) checkFuncTypeParams(fn *typecheck.FuncSym) {
	if fn.Decl == nil || len(fn.TypeParams) == 0 || len(fn.Decl.TypeParams) != len(fn.TypeParams) {
		return
	}
	used := map[*types.TypeParamDef]bool{}
	for _, t := range fn.ParamTypes {
		collectParams(t, used)
	}
	collectParams(fn.Ret, used)
	if fn.Decl.Body != nil {
		l.collectStmtParams(fn.Decl.Body, used)
	}
	for i, tp := range fn.TypeParams {
		if !used[tp] {
			l.report(fn.Decl.TypeParams[i].Pos(), CatUnusedParam, "type parameter %s of %s is never used", tp.Name, fn.Name)
		}
	}
}

func (l *linter) checkClassTypeParams(cls *typecheck.ClassSym) {
	d := cls.Decl
	if d == nil || cls.Def == nil || len(cls.Def.TypeParams) == 0 || len(d.TypeParams) != len(cls.Def.TypeParams) {
		return
	}
	used := map[*types.TypeParamDef]bool{}
	for _, f := range cls.Fields {
		collectParams(f.Type, used)
	}
	if ct := cls.Ctor; ct != nil {
		for _, t := range ct.ParamTypes {
			collectParams(t, used)
		}
		if ct.Decl != nil {
			for _, a := range ct.Decl.SuperArgs {
				l.collectExprParams(a, used)
			}
			if ct.Decl.Body != nil {
				l.collectStmtParams(ct.Decl.Body, used)
			}
		}
	}
	if cls.Def.ParentType != nil {
		collectParams(cls.Def.ParentType, used)
	}
	for _, m := range cls.Methods {
		for _, t := range m.ParamTypes {
			collectParams(t, used)
		}
		collectParams(m.Ret, used)
		if m.Decl != nil && m.Decl.Body != nil {
			l.collectStmtParams(m.Decl.Body, used)
		}
	}
	for _, f := range cls.Fields {
		if f.Init != nil {
			l.collectExprParams(f.Init, used)
		}
	}
	for i, tp := range cls.Def.TypeParams {
		if !used[tp] {
			l.report(d.TypeParams[i].Pos(), CatUnusedParam, "type parameter %s of %s is never used", tp.Name, cls.Name)
		}
	}
}

// collectParams adds every type parameter mentioned by t to used.
func collectParams(t types.Type, used map[*types.TypeParamDef]bool) {
	switch t := t.(type) {
	case nil, *types.Prim, *types.Enum:
	case *types.TypeParam:
		used[t.Def] = true
	case *types.Tuple:
		for _, e := range t.Elems {
			collectParams(e, used)
		}
	case *types.Func:
		collectParams(t.Param, used)
		collectParams(t.Ret, used)
	case *types.Array:
		collectParams(t.Elem, used)
	case *types.Class:
		for _, a := range t.Args {
			collectParams(a, used)
		}
	}
}

func (l *linter) collectStmtParams(s ast.Stmt, used map[*types.TypeParamDef]bool) {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			l.collectStmtParams(st, used)
		}
	case *ast.IfStmt:
		l.collectExprParams(s.Cond, used)
		l.collectStmtParams(s.Then, used)
		if s.Else != nil {
			l.collectStmtParams(s.Else, used)
		}
	case *ast.WhileStmt:
		l.collectExprParams(s.Cond, used)
		l.collectStmtParams(s.Body, used)
	case *ast.ForStmt:
		collectParams(s.VarType, used)
		if s.Init != nil {
			l.collectExprParams(s.Init, used)
		}
		if s.Cond != nil {
			l.collectExprParams(s.Cond, used)
		}
		if s.Post != nil {
			l.collectExprParams(s.Post, used)
		}
		l.collectStmtParams(s.Body, used)
	case *ast.ReturnStmt:
		if s.Value != nil {
			l.collectExprParams(s.Value, used)
		}
	case *ast.LocalDecl:
		collectParams(s.TypeOf, used)
		if s.Init != nil {
			l.collectExprParams(s.Init, used)
		}
	case *ast.ExprStmt:
		l.collectExprParams(s.E, used)
	}
}

func (l *linter) collectExprParams(e ast.Expr, used map[*types.TypeParamDef]bool) {
	if e == nil {
		return
	}
	collectParams(e.Type(), used)
	switch e := e.(type) {
	case *ast.VarRef:
		for _, t := range e.TypeArgsOf {
			collectParams(t, used)
		}
	case *ast.TupleExpr:
		for _, el := range e.Elems {
			l.collectExprParams(el, used)
		}
	case *ast.MemberExpr:
		if e.Recv != nil {
			l.collectExprParams(e.Recv, used)
		}
		collectParams(e.RecvType, used)
		for _, t := range e.TypeArgsOf {
			collectParams(t, used)
		}
		if op, ok := e.Binding.(*typecheck.OperatorSym); ok {
			collectParams(op.Subject, used)
			collectParams(op.Input, used)
		}
	case *ast.CallExpr:
		l.collectExprParams(e.Fn, used)
		for _, a := range e.Args {
			l.collectExprParams(a, used)
		}
	case *ast.IndexExpr:
		l.collectExprParams(e.Arr, used)
		l.collectExprParams(e.Idx, used)
	case *ast.BinaryExpr:
		l.collectExprParams(e.L, used)
		l.collectExprParams(e.R, used)
	case *ast.UnaryExpr:
		l.collectExprParams(e.E, used)
	case *ast.TernaryExpr:
		l.collectExprParams(e.Cond, used)
		l.collectExprParams(e.Then, used)
		l.collectExprParams(e.Els, used)
	case *ast.AssignExpr:
		l.collectExprParams(e.Target, used)
		l.collectExprParams(e.Value, used)
	case *ast.IncDecExpr:
		l.collectExprParams(e.Target, used)
	}
}

class Pair<A, B> {
	var a: A;
	new(a) { }
}
def id<T>(x: T) -> T { return x; }
def stuck<T>(n: int) -> int { return n + 1; }
def main() {
	var p = Pair<int, bool>.new(3);
	System.puti(p.a);
	System.puti(id(4));
	System.puti(stuck<byte>(5));
}

class A { new() { } }
class B extends A { new() super() { } }
def main() {
	var b = B.new();
	var a: A = b;
	System.putb(A.?(b));
	System.putb(B.?(a));
	var a2 = A.!(b);
	var b2 = B.!(a);
	System.putb(a2 == b2);
	System.putb(int.?(a));
	System.ln();
}

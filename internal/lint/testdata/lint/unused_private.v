class C {
	new() { }
	private def helper() -> int { return 1; }
	private def used() -> int { return 2; }
	def pub() -> int { return used(); }
}
private def deadFn() { }
private def liveFn() -> int { return 3; }
def main() {
	var c = C.new();
	System.puti(c.pub());
	System.puti(liveFn());
}

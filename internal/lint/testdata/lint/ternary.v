def choose(c: bool) -> int {
	var t: int;
	var r = c ? 1 : 2;
	return r + t;
}
def main() {
	System.puti(choose(false));
}

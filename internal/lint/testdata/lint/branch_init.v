def pick(c: bool) -> int {
	var both: int;
	if (c) both = 1;
	else both = 2;
	var one: int;
	if (c) one = 3;
	return both + one;
}
def main() {
	System.puti(pick(true));
}

def after_return() -> int {
	return 3;
	System.puts("never");
}
def after_infinite_loop() {
	var i = 0;
	while (true) {
		i = i + 1;
		if (i > 3) return;
	}
	System.puts("never");
}
def loop_with_break() {
	while (true) {
		break;
	}
	System.puts("reached");
}
def main() {
	System.puti(after_return());
	after_infinite_loop();
	loop_with_break();
}

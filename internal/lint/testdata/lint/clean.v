// A program the linter has nothing to say about.
class Counter {
	var n: int;
	new(n) { }
	def bump() { n = n + 1; }
	def value() -> int { return n; }
}
def main() {
	var c = Counter.new(0);
	c.bump();
	c.bump();
	System.puti(c.value());
	System.ln();
}

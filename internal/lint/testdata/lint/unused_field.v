class P {
	var x: int;
	var y: int;
	new(a: int) {
		x = a;
		y = a;
	}
	def getx() -> int { return x; }
}
class Q(tag: int) { }
def main() {
	var p = P.new(3);
	System.puti(p.getx());
	var q = Q.new(7);
	System.puti(q.tag);
}

def main() {
	var x: int;
	System.puti(x);
	x = 4;
	System.puti(x);
	var ok: int;
	ok = 1;
	System.puti(ok);
}

def main() {
	var never = 10;
	var writeOnly = 0;
	writeOnly = 5;
	var used = 2;
	System.puti(used);
}

def main() {
	for (i = 0; i < 3; i++) System.puti(i);
	var n = 2;
	for (k = 0; n > 0; n = n - 1) System.puts("x");
	var total = 0;
	total += 5;
	System.puti(total);
	var flag: bool;
	if (n == 0 && flag) System.ln();
}

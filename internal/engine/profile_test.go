package engine

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/profile"
)

// White-box tests for the profiling layer: megamorphic inline-cache
// backoff, profile counter collection, and profile-driven run fusion.

// polySource drives one virtual call site with alternating receiver
// classes, the pattern that used to re-install a fresh monomorphic
// cache on every single call.
const polySource = `
class A { def m() -> int { return 1; } }
class B extends A { def m() -> int { return 2; } }
class C extends A { def m() -> int { return 3; } }
def poll(x: A) -> int { return x.m(); }
def main() {
	var i = 0;
	var s = 0;
	var a = A.new();
	var b: A = B.new();
	var c: A = C.new();
	while (i < 30) {
		s = s + poll(a) + poll(b) + poll(c);
		i = i + 1;
	}
	System.puti(s);
}
`

func TestMegamorphicStopsInstalling(t *testing.T) {
	mod := compileMod(t, polySource)
	p := Compile(mod)
	var out strings.Builder
	e := New(p, interp.Options{Out: &out, Profile: true})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "180" {
		t.Fatalf("output %q, want 180", out.String())
	}
	mega := 0
	for i := range e.ics {
		ic := &e.ics[i]
		if ic.mega {
			mega++
			if ic.installs != megaInstalls+1 {
				t.Errorf("mega site installs = %d, want exactly %d (installs must stop at the flag)",
					ic.installs, megaInstalls+1)
			}
			if ic.cls != nil || ic.ifn != nil || ic.fast != nil {
				t.Error("mega site retains a cache identity; it should be cleared")
			}
		}
	}
	if mega == 0 {
		t.Fatal("alternating receivers over 90 calls never flipped a site megamorphic")
	}
	// The profile must report the site as megamorphic and record every
	// dispatch as a miss after warmup.
	prof := e.Profile()
	var site *profile.Site
	for _, f := range prof.Funcs {
		for _, s := range f.Sites {
			if s.Mega {
				site = s
			}
		}
	}
	if site == nil {
		t.Fatal("no megamorphic site in profile")
	}
	if site.Monomorphic() {
		t.Error("megamorphic site must not qualify as monomorphic")
	}
	if site.Misses < 80 {
		t.Errorf("mega site misses = %d, want most of the 90 dispatches", site.Misses)
	}
}

func TestMonoSiteStaysInstalled(t *testing.T) {
	mod := compileMod(t, `
class A { def m() -> int { return 7; } }
def poll(x: A) -> int { return x.m(); }
def main() {
	var i = 0;
	var s = 0;
	var a = A.new();
	while (i < 50) { s = s + poll(a); i = i + 1; }
	System.puti(s);
}
`)
	p := Compile(mod)
	var out strings.Builder
	e := New(p, interp.Options{Out: &out, Profile: true})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	prof := e.Profile()
	var site *profile.Site
	for _, f := range prof.Funcs {
		for _, s := range f.Sites {
			if s.Kind == profile.SiteVirtual {
				site = s
			}
		}
	}
	if site == nil {
		t.Fatal("no virtual site recorded")
	}
	if site.Installs != 1 || site.Mega {
		t.Errorf("mono site: installs=%d mega=%v, want exactly 1 install", site.Installs, site.Mega)
	}
	if !site.Monomorphic() {
		t.Errorf("hot mono site should qualify for speculation: %+v", site)
	}
	if site.Class != "A" || site.Callee != "A.m" {
		t.Errorf("site identity = (%q, %q), want (A, A.m)", site.Class, site.Callee)
	}
}

func TestProfileFuncAndBranchCounters(t *testing.T) {
	mod := compileMod(t, `
def work(n: int) -> int {
	var i = 0;
	var s = 0;
	while (i < n) { s = s + i; i = i + 1; }
	return s;
}
def main() { System.puti(work(100)); }
`)
	p := Compile(mod)
	e := New(p, interp.Options{Out: io.Discard, Profile: true})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	prof := e.Profile()
	wf := prof.Funcs["work"]
	if wf == nil {
		t.Fatal("work not in profile")
	}
	if wf.Calls != 1 {
		t.Errorf("work calls = %d, want 1", wf.Calls)
	}
	if wf.Steps < 100 {
		t.Errorf("work steps = %d, want at least the loop trip count", wf.Steps)
	}
	// The loop condition branch must show ~100 takes with a heavy bias.
	var best *profile.Branch
	for _, b := range wf.Branches {
		if best == nil || b.Taken+b.Not > best.Taken+best.Not {
			best = b
		}
	}
	if best == nil {
		t.Fatal("no branch recorded in work")
	}
	if best.Taken+best.Not < 100 {
		t.Errorf("hottest branch saw %d outcomes, want >= 100", best.Taken+best.Not)
	}
	if prof.Funcs["main"] == nil {
		t.Error("main not in profile")
	}
}

func TestProfileDisabledRecordsNothing(t *testing.T) {
	mod := compileMod(t, `def main() { System.puti(1); }`)
	p := Compile(mod)
	e := New(p, interp.Options{Out: io.Discard})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Profile() != nil {
		t.Fatal("Profile() must be nil when Options.Profile is off")
	}
}

// hotLoopSource has a tight scalar loop body that run fusion collapses.
const hotLoopSource = `
def work(n: int) -> int {
	var i = 0;
	var s = 0;
	while (i < n) {
		s = s + i * 3 - 1;
		i = i + 1;
	}
	return s;
}
def main() { System.puti(work(200)); }
`

func TestProfileDrivenFusion(t *testing.T) {
	mod := compileMod(t, hotLoopSource)
	cold := Compile(mod)

	// Record a profile, then recompile with it.
	var out1 bytes.Buffer
	e1 := New(cold, interp.Options{Out: &out1, Profile: true})
	if _, err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	prof := e1.Profile()
	hot := CompileProfiled(mod, prof)

	fused := countOps(fnByName(t, hot, "work"), opFused) + countOps(fnByName(t, hot, "work"), opFusedBr)
	if fused == 0 {
		t.Fatal("profiled recompile formed no fused runs in the hot loop")
	}
	if n := countOps(fnByName(t, cold, "work"), opFused) + countOps(fnByName(t, cold, "work"), opFusedBr); n != 0 {
		t.Fatalf("unprofiled compile must not fuse runs, found %d", n)
	}

	// Identical observable behavior, identical step accounting.
	var out2 bytes.Buffer
	e2 := New(hot, interp.Options{Out: &out2})
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Fatalf("tiered output %q != untiered %q", out2.String(), out1.String())
	}
	if e1.Stats().Steps != e2.Stats().Steps {
		t.Fatalf("tiered steps %d != untiered %d", e2.Stats().Steps, e1.Stats().Steps)
	}
}

func TestFusedStepBudgetIdentical(t *testing.T) {
	mod := compileMod(t, hotLoopSource)
	cold := Compile(mod)
	e0 := New(cold, interp.Options{Out: io.Discard, Profile: true})
	if _, err := e0.Run(); err != nil {
		t.Fatal(err)
	}
	total := e0.Stats().Steps
	hot := CompileProfiled(mod, e0.Profile())

	// Sweep budgets around fused-run boundaries: the tiered program
	// must stop at exactly the same Steps value with the same error.
	for _, budget := range []int64{1, 7, 50, 51, 52, 53, 100, total - 1, total, total + 1} {
		ec := New(cold, interp.Options{Out: io.Discard, MaxSteps: budget})
		_, errC := ec.Run()
		eh := New(hot, interp.Options{Out: io.Discard, MaxSteps: budget})
		_, errH := eh.Run()
		if (errC == nil) != (errH == nil) {
			t.Fatalf("budget %d: cold err %v, hot err %v", budget, errC, errH)
		}
		if errC != nil && errC.Error() != errH.Error() {
			t.Fatalf("budget %d: cold %q, hot %q", budget, errC, errH)
		}
		if cs, hs := ec.Stats().Steps, eh.Stats().Steps; cs != hs {
			t.Fatalf("budget %d: cold steps %d, hot steps %d", budget, cs, hs)
		}
	}
}

func TestProfileMergeAcrossRuns(t *testing.T) {
	mod := compileMod(t, hotLoopSource)
	p := Compile(mod)
	run := func() *profile.Profile {
		e := New(p, interp.Options{Out: io.Discard, Profile: true})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Profile()
	}
	a, b := run(), run()
	calls := a.Funcs["work"].Calls
	a.Merge(b)
	if got := a.Funcs["work"].Calls; got != 2*calls {
		t.Fatalf("merged calls = %d, want %d", got, 2*calls)
	}
	var b1, b2 bytes.Buffer
	if err := run().Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := run().Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two identical runs produced different profile JSON")
	}
}

package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/parser"
	"repro/internal/src"
	"repro/internal/typecheck"
)

// White-box tests for the translator: register classing, fused
// superinstruction formation, and inline-cache behavior. End-to-end
// semantic equivalence with the switch interpreter is proven by the
// differential suite in internal/core; these tests pin the structural
// properties that make the engine fast.

func compileMod(t *testing.T, source string) *ir.Module {
	t.Helper()
	errs := &src.ErrorList{}
	f := parser.Parse("test.v", source, errs)
	if !errs.Empty() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	prog := typecheck.Check([]*ast.File{f}, errs)
	if !errs.Empty() {
		t.Fatalf("check errors:\n%s", errs.Error())
	}
	mod, err := lower.Lower(context.Background(), prog, 1)
	if err != nil {
		t.Fatalf("lower error: %v", err)
	}
	return mod
}

func fnByName(t *testing.T, p *Program, name string) *fnCode {
	t.Helper()
	for f, fc := range p.fns {
		if f.Name == name {
			return fc
		}
	}
	t.Fatalf("no translated function %q", name)
	return nil
}

func countOps(fc *fnCode, op uint8) int {
	n := 0
	for i := range fc.code {
		if fc.code[i].op == op {
			n++
		}
	}
	return n
}

func TestRegisterClasses(t *testing.T) {
	mod := compileMod(t, `
class P { var v: int; }
def f(i: int, b: byte, c: bool, p: P, s: Array<byte>) -> int {
	return i;
}
def main() { }
`)
	p := Compile(mod)
	fc := fnByName(t, p, "f")
	if len(fc.params) != 5 {
		t.Fatalf("want 5 params, got %d", len(fc.params))
	}
	wantKinds := []struct {
		ref  bool
		kind uint32
	}{{false, kInt}, {false, kByte}, {false, kBool}, {true, 0}, {true, 0}}
	for i, w := range wantKinds {
		e := fc.params[i]
		if isRefEnc(e) != w.ref {
			t.Errorf("param %d: ref=%v, want %v", i, isRefEnc(e), w.ref)
		}
		if !w.ref && kindOf(e) != w.kind {
			t.Errorf("param %d: kind=%d, want %d", i, kindOf(e), w.kind)
		}
	}
	// Scalar and ref slots must each be dense: every slot < nS / nR.
	for i, e := range fc.regs {
		if e == regNone {
			continue
		}
		if isRefEnc(e) {
			if slotOf(e) >= fc.nR {
				t.Errorf("reg %d: ref slot %d >= nR %d", i, slotOf(e), fc.nR)
			}
		} else if slotOf(e) >= fc.nS {
			t.Errorf("reg %d: scalar slot %d >= nS %d", i, slotOf(e), fc.nS)
		}
	}
}

func TestFusionCmpBranchConst(t *testing.T) {
	mod := compileMod(t, `
def count(n: int) -> int {
	var i = 0;
	while (i < n) { i = i + 1; }
	return i;
}
def main() { count(3); }
`)
	p := Compile(mod)
	fc := fnByName(t, p, "count")
	// i < n branches on two int scalars: fused compare+branch. i + 1
	// has a constant operand: fused const+arith.
	if countOps(fc, opCmpBrSS) == 0 {
		t.Errorf("count: no opCmpBrSS formed:\n%s", dumpOps(fc))
	}
	if countOps(fc, opArithSI) == 0 {
		t.Errorf("count: no opArithSI formed:\n%s", dumpOps(fc))
	}
}

func TestFusionConstCmpBranch(t *testing.T) {
	mod := compileMod(t, `
def clamp(n: int) -> int {
	if (n > 100) { return 100; }
	return n;
}
def main() { clamp(5); }
`)
	p := Compile(mod)
	fc := fnByName(t, p, "clamp")
	if countOps(fc, opCmpBrSI) == 0 {
		t.Errorf("clamp: no opCmpBrSI formed:\n%s", dumpOps(fc))
	}
}

// TestNoBoolOrderingFusion pins the bool-ordering guard: Eq/Ne on bool
// scalars may compare raw slots, but the translator must never emit a
// slot-ordering compare (fused or plain) for bool operands, because
// the reference semantics compare non-numeric operands as (0,0).
func TestNoBoolOrderingFusion(t *testing.T) {
	mod := compileMod(t, `
def pick(a: bool, b: bool) -> int {
	if (a == b) { return 1; }
	return 0;
}
def main() { pick(true, false); }
`)
	p := Compile(mod)
	fc := fnByName(t, p, "pick")
	if countOps(fc, opCmpBrSS) == 0 {
		t.Errorf("pick: bool == bool should fuse to opCmpBrSS:\n%s", dumpOps(fc))
	}
	for i := range fc.code {
		in := &fc.code[i]
		if (in.op == opCmpBrSS || in.op == opCmpBrSI) && in.aux != int32(ir.OpEq) && in.aux != int32(ir.OpNe) {
			if !isRefEnc(in.a) && kindOf(in.a) == kBool {
				t.Errorf("ordering superinstruction on bool operand at pc %d", i)
			}
		}
	}
}

func dumpOps(fc *fnCode) string {
	var b strings.Builder
	for i := range fc.code {
		fmt.Fprintf(&b, "op%d ", fc.code[i].op)
	}
	return b.String()
}

func TestInlineCacheInstallsAndHits(t *testing.T) {
	mod := compileMod(t, `
class A { def m() -> int { return 1; } }
class B extends A { def m() -> int { return 2; } }
def sum(xs: Array<A>) -> int {
	var i = 0;
	var s = 0;
	while (i < xs.length) { s = s + xs[i].m(); i = i + 1; }
	return s;
}
def main() {
	var xs = Array<A>.new(4);
	xs[0] = A.new(); xs[1] = A.new(); xs[2] = A.new(); xs[3] = B.new();
	System.puti(sum(xs));
}
`)
	p := Compile(mod)
	if p.numICs == 0 {
		t.Fatal("no inline-cache sites allocated")
	}
	var out1 strings.Builder
	e := New(p, interp.Options{Out: &out1})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	installed := 0
	for i := range e.ics {
		if e.ics[i].cls != nil || e.ics[i].ifn != nil {
			installed++
		}
	}
	if installed == 0 {
		t.Error("no inline cache installed after virtual calls executed")
	}
	// Rerunning main on the warmed engine exercises the hit path: three
	// A.m hits on the cached class and one B.m miss that repopulates
	// the cache. Output must be identical either way.
	var out2 strings.Builder
	e.out = &out2
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if out1.String() != "5" || out2.String() != "5" {
		t.Errorf("cold=%q warm=%q, want %q", out1.String(), out2.String(), "5")
	}
}

func TestProgramSharedAcrossEngines(t *testing.T) {
	mod := compileMod(t, `
var g = 0;
def main() { g = g + 1; System.puti(g); }
`)
	p := Compile(mod)
	for i := 0; i < 3; i++ {
		var out strings.Builder
		e := New(p, interp.Options{Out: &out})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		// Globals are per-engine: every fresh engine sees g's initial
		// value, not the previous run's mutation.
		if out.String() != "1" {
			t.Fatalf("run %d: got %q, want %q (global state leaked across engines)", i, out.String(), "1")
		}
	}
}

package engine

import (
	"fmt"
	"io"
	"time"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/types"
)

// tenv is a runtime type-argument environment.
type tenv = map[*types.TypeParamDef]types.Type

// kRef marks a boxed return value in retval.kind; scalar kinds reuse
// kInt/kByte/kBool.
const kRef = uint8(3)

// retval is one function result, staged in the engine's shared return
// buffer between the callee's ret and the caller's storeRets. The
// buffer is safe to share because every caller consumes it before
// executing another instruction.
type retval struct {
	s    int64
	v    interp.Value
	kind uint8
}

func (rv *retval) box() interp.Value {
	if rv.kind == kRef {
		return rv.v
	}
	return boxKind(uint32(rv.kind), rv.s)
}

// icEntry is one monomorphic inline cache at a virtual or indirect
// call site. cls keys virtual sites; ifn+hasRecv key indirect sites.
// fast is nil when the observed target is ineligible for the planned
// call path (type parameters or arity adaptation), in which case the
// cache only memoizes the negative result.
//
// installs counts cache (re)installs; once it passes megaInstalls the
// site is flagged megamorphic and stops installing: a hot polymorphic
// site previously re-installed a fresh monomorphic cache on every
// miss, paying the install cost forever without ever hitting.
type icEntry struct {
	cls      *ir.Class
	ifn      *ir.Func
	hasRecv  bool
	fast     *fnCode
	plan     []argMove
	installs uint32
	mega     bool
}

// megaInstalls is the install count after which a call site is
// declared megamorphic. Dispatch semantics and Stats are unaffected —
// a megamorphic site just takes the slow path without re-installing.
const megaInstalls = 4

// recorder holds the engine's profile counters, dense-indexed by the
// program's deterministic site/branch/function numbering. nil unless
// the engine was created with Options.Profile, so the only cost on an
// unprofiled run is a nil check at the recording points.
type recorder struct {
	sites    []siteCnt
	branches []branchCnt
	fns      []fnCnt
}

type siteCnt struct{ hits, misses int64 }

type branchCnt struct{ taken, not int64 }

type fnCnt struct{ calls, steps int64 }

func (rec *recorder) branch(idx int32, taken bool) {
	if taken {
		rec.branches[idx].taken++
	} else {
		rec.branches[idx].not++
	}
}

// Engine executes a compiled Program. An Engine holds all mutable
// run state (globals, inline caches, stats, pools); the Program it
// runs is immutable and may be shared across concurrent Engines.
type Engine struct {
	p   *Program
	tc  *types.Cache
	out io.Writer

	stats    interp.Stats
	maxSteps int64
	maxDepth int
	maxHeap  int64
	deadline time.Time
	done     <-chan struct{}
	frames   []interp.Frame

	gS []int64
	gR []interp.Value

	ics []icEntry
	ret []retval
	rec *recorder

	// sPool/rPool recycle per-call register files; vPool recycles
	// scratch slices for boxed argument marshaling. Ref slices are
	// cleared on release so finished-call values are neither observed
	// nor retained; scalar slices are zeroed on reuse.
	sPool [][]int64
	rPool [][]interp.Value
	vPool [][]interp.Value

	// objTemplates caches field-default templates for class types only
	// reachable through runtime substitution (the closed ones are
	// precomputed at translation).
	objTemplates map[*types.Class][]interp.Value
}

// New creates an engine for p with interpreter-compatible options.
func New(p *Program, opts interp.Options) *Engine {
	e := &Engine{
		p:            p,
		tc:           p.tc,
		out:          opts.Out,
		maxSteps:     opts.MaxSteps,
		maxDepth:     opts.MaxDepth,
		gS:           make([]int64, p.nGS),
		gR:           make([]interp.Value, p.nGR),
		ics:          make([]icEntry, p.numICs),
		ret:          make([]retval, p.maxRet),
		objTemplates: map[*types.Class][]interp.Value{},
	}
	copy(e.gR, p.gRefInit)
	if e.maxSteps == 0 {
		e.maxSteps = 1_000_000_000
	}
	if e.maxDepth == 0 {
		e.maxDepth = interp.DefaultMaxDepth
	}
	e.maxHeap = opts.MaxHeap
	if e.maxHeap == 0 {
		e.maxHeap = interp.DefaultMaxHeap
	}
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
	}
	if opts.Ctx != nil {
		e.done = opts.Ctx.Done()
	}
	if opts.Profile {
		e.rec = &recorder{
			sites:    make([]siteCnt, p.numICs),
			branches: make([]branchCnt, p.numBranches),
			fns:      make([]fnCnt, len(p.pnames)),
		}
	}
	return e
}

// Stats returns execution statistics so far.
func (e *Engine) Stats() interp.Stats { return e.stats }

// Profile snapshots the execution profile recorded so far, or nil when
// the engine was created without Options.Profile. Keys follow the
// program's deterministic translation numbering, so profiles recorded
// by different processes (or at different -jobs settings) for the same
// program are directly comparable and mergeable. Not safe to call
// concurrently with a running engine — snapshot after the run, like
// Stats.
func (e *Engine) Profile() *profile.Profile {
	if e.rec == nil {
		return nil
	}
	p := profile.New()
	for idx := range e.rec.fns {
		fr := &e.rec.fns[idx]
		if fr.calls == 0 && fr.steps == 0 {
			continue
		}
		f := p.FuncFor(e.p.pnames[idx])
		f.Calls = fr.calls
		f.Steps = fr.steps
	}
	for ici := range e.rec.sites {
		sr := &e.rec.sites[ici]
		if sr.hits == 0 && sr.misses == 0 {
			continue
		}
		m := e.p.siteMeta[ici]
		st := p.FuncFor(e.p.pnames[m.fn]).Site(m.ord)
		st.Kind = profile.SiteVirtual
		if m.indirect {
			st.Kind = profile.SiteIndirect
		}
		st.Hits, st.Misses = sr.hits, sr.misses
		ice := &e.ics[ici]
		st.Installs, st.Mega = int64(ice.installs), ice.mega
		if ice.mega {
			continue
		}
		// The surviving cache identity is the site's observed target.
		switch {
		case m.indirect && ice.ifn != nil && !ice.hasRecv:
			st.Callee = ice.ifn.Name
		case m.indirect && ice.ifn != nil:
			// Bound-method closure: the callee is stable but the bound
			// receiver is not identified, so record the method only.
			st.Callee = ice.ifn.Name
			if ice.ifn.Class != nil {
				st.Class = ice.ifn.Class.Name
			}
		case !m.indirect && ice.cls != nil:
			st.Class = ice.cls.Name
			if int(m.slot) < len(ice.cls.Vtable) && ice.cls.Vtable[m.slot] != nil {
				st.Callee = ice.cls.Vtable[m.slot].Name
			}
		}
	}
	for bi := range e.rec.branches {
		br := &e.rec.branches[bi]
		if br.taken == 0 && br.not == 0 {
			continue
		}
		m := e.p.branchMeta[bi]
		b := p.FuncFor(e.p.pnames[m.fn]).Branch(m.ord)
		b.Taken, b.Not, b.Back = br.taken, br.not, m.back
	}
	return p
}

// charge meters one allocation of n modeled bytes against the heap
// budget, mirroring (*interp.Interp).charge so both engines trap at
// the same allocation with the same message. The trace is stamped as
// the bare trap unwinds through the call path.
func (e *Engine) charge(n int64) *interp.VirgilError {
	if interp.ChargeHeap(&e.stats, e.maxHeap, n) {
		return interp.HeapTrap(n, e.maxHeap)
	}
	return nil
}

// Run executes global initializers then main, returning main's result
// values.
func (e *Engine) Run() ([]interp.Value, error) {
	if e.p.mod.Init != nil {
		if _, err := e.callTop(e.p.mod.Init, nil, nil); err != nil {
			return nil, err
		}
	}
	if e.p.mod.Main == nil {
		return nil, fmt.Errorf("interp: module has no main function")
	}
	if len(e.p.mod.Main.Params) != 0 {
		return nil, fmt.Errorf("interp: main must take no parameters")
	}
	return e.callTop(e.p.mod.Main, nil, nil)
}

// CallFunc invokes a named function with the given values (used by
// tests and benchmarks).
func (e *Engine) CallFunc(name string, args ...interp.Value) ([]interp.Value, error) {
	for _, f := range e.p.mod.Funcs {
		if f.Name == name {
			return e.callTop(f, args, nil)
		}
	}
	return nil, fmt.Errorf("interp: no function %q", name)
}

func (e *Engine) callTop(f *ir.Func, args []interp.Value, targs []types.Type) ([]interp.Value, error) {
	n, err := e.enterBoxed(f, args, targs)
	if err != nil {
		return nil, err
	}
	out := make([]interp.Value, n)
	for k := 0; k < n; k++ {
		out[k] = e.ret[k].box()
	}
	return out, nil
}

// boxKind boxes a scalar slot value of the given kind.
func boxKind(k uint32, sv int64) interp.Value {
	switch k {
	case kByte:
		return interp.ByteVal(byte(sv))
	case kBool:
		return interp.BoolVal(sv != 0)
	}
	return interp.IntVal(int32(sv))
}

// getv reads a register in either file as a boxed value.
func getv(s []int64, r []interp.Value, enc uint32) interp.Value {
	if isRefEnc(enc) {
		return r[slotOf(enc)]
	}
	return boxKind(kindOf(enc), s[slotOf(enc)])
}

// setv writes a boxed value into a register in either file, unboxing
// into the scalar file when the register class requires it.
func setv(s []int64, r []interp.Value, enc uint32, v interp.Value) error {
	if isRefEnc(enc) {
		r[slotOf(enc)] = v
		return nil
	}
	return unboxInto(s, enc, v)
}

func unboxInto(s []int64, enc uint32, v interp.Value) error {
	switch av := v.(type) {
	case interp.IntVal:
		s[slotOf(enc)] = int64(int32(av))
	case interp.ByteVal:
		s[slotOf(enc)] = int64(av)
	case interp.BoolVal:
		if av {
			s[slotOf(enc)] = 1
		} else {
			s[slotOf(enc)] = 0
		}
	default:
		return fmt.Errorf("interp: cannot unbox %T into scalar register", v)
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// cmpSlots compares two raw scalar slots of equal kind. Int and byte
// slots compare as their int64 contents, matching the interpreter's
// int64-promoted compare; equality on equal kinds is slot equality.
func cmpSlots(op ir.Op, x, y int64) bool {
	switch op {
	case ir.OpLt:
		return x < y
	case ir.OpLe:
		return x <= y
	case ir.OpGt:
		return x > y
	case ir.OpGe:
		return x >= y
	case ir.OpEq:
		return x == y
	case ir.OpNe:
		return x != y
	}
	return false
}

// moveReg copies one caller register into one callee register, with
// the box/unbox decision carried by the two encodings.
func moveReg(cs []int64, cr []interp.Value, ns []int64, nr []interp.Value, mv argMove) error {
	if isRefEnc(mv.src) {
		if isRefEnc(mv.dst) {
			nr[slotOf(mv.dst)] = cr[slotOf(mv.src)]
			return nil
		}
		return unboxInto(ns, mv.dst, cr[slotOf(mv.src)])
	}
	if isRefEnc(mv.dst) {
		nr[slotOf(mv.dst)] = boxKind(kindOf(mv.src), cs[slotOf(mv.src)])
		return nil
	}
	ns[slotOf(mv.dst)] = cs[slotOf(mv.src)]
	return nil
}

// Frame pools.

func (e *Engine) getS(n int) []int64 {
	if k := len(e.sPool) - 1; k >= 0 {
		s := e.sPool[k]
		e.sPool[k] = nil
		e.sPool = e.sPool[:k]
		if cap(s) >= n {
			s = s[:n]
			clear(s)
			return s
		}
	}
	return make([]int64, n)
}

func (e *Engine) putS(s []int64) { e.sPool = append(e.sPool, s[:0]) }

func (e *Engine) getR(n int) []interp.Value {
	if k := len(e.rPool) - 1; k >= 0 {
		r := e.rPool[k]
		e.rPool[k] = nil
		e.rPool = e.rPool[:k]
		if cap(r) >= n {
			return r[:n]
		}
	}
	return make([]interp.Value, n)
}

func (e *Engine) putR(r []interp.Value) {
	clear(r)
	e.rPool = append(e.rPool, r[:0])
}

func (e *Engine) getV(n int) []interp.Value {
	if k := len(e.vPool) - 1; k >= 0 {
		v := e.vPool[k]
		e.vPool[k] = nil
		e.vPool = e.vPool[:k]
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([]interp.Value, n)
}

func (e *Engine) putV(v []interp.Value) {
	clear(v)
	e.vPool = append(e.vPool, v[:0])
}

// Type environments.

func (e *Engine) subst(t types.Type, env tenv) types.Type {
	if t == nil || len(env) == 0 {
		return t
	}
	return e.tc.Subst(t, env)
}

func (e *Engine) substAll(ts []types.Type, env tenv) []types.Type {
	if len(ts) == 0 {
		return nil
	}
	out := make([]types.Type, len(ts))
	for k, t := range ts {
		out[k] = e.subst(t, env)
	}
	return out
}

func (e *Engine) bindEnv(f *ir.Func, targs []types.Type) tenv {
	if len(f.TypeParams) == 0 {
		return nil
	}
	e.stats.TypeEnvBinds++
	env := make(tenv, len(f.TypeParams))
	for k, p := range f.TypeParams {
		if k < len(targs) {
			env[p] = targs[k]
		}
	}
	return env
}

func (e *Engine) virtualTypeArgs(target *ir.Func, recv *interp.ObjVal, margs []types.Type) []types.Type {
	if len(target.TypeParams) == 0 {
		return nil
	}
	cargs := interp.ClassArgsFromRecv(e.tc, target, recv)
	return append(cargs, margs...)
}

// objTemplate caches field-default templates for runtime-substituted
// class types (translation precomputes the closed ones).
func (e *Engine) objTemplate(cls *ir.Class, ct *types.Class) []interp.Value {
	if tmpl, ok := e.objTemplates[ct]; ok {
		return tmpl
	}
	tmpl := make([]interp.Value, len(cls.Fields))
	cenv := types.BindParams(cls.Def.TypeParams, ct.Args)
	for k, fd := range cls.Fields {
		tmpl[k] = interp.DefaultValue(e.tc, e.tc.Subst(fd.Type, cenv))
	}
	e.objTemplates[ct] = tmpl
	return tmpl
}

// Traces and resource guards.

func (e *Engine) traceSnapshot() ([]interp.Frame, int) {
	n := len(e.frames)
	keep := n
	if keep > interp.MaxTraceFrames {
		keep = interp.MaxTraceFrames
	}
	out := make([]interp.Frame, keep)
	for k := 0; k < keep; k++ {
		out[k] = e.frames[n-1-k]
	}
	return out, n - keep
}

func (e *Engine) trap(name, msg string) *interp.VirgilError {
	tr, elided := e.traceSnapshot()
	return &interp.VirgilError{Name: name, Msg: msg, Trace: tr, Elided: elided}
}

func (e *Engine) poll(fname string) error {
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		return &interp.ResourceError{Kind: "deadline", Func: fname, Msg: "wall-clock deadline exceeded"}
	}
	if e.done != nil {
		select {
		case <-e.done:
			return &interp.ResourceError{Kind: "cancelled", Func: fname, Msg: "execution cancelled"}
		default:
		}
	}
	return nil
}

// Call protocol.

// enterBoxed activates f with boxed arguments — the general path that
// mirrors the interpreter's call+exec prologue: count the call, check
// depth, push the frame, bind the type environment, check arity, then
// spill arguments into the register files.
func (e *Engine) enterBoxed(f *ir.Func, args []interp.Value, targs []types.Type) (int, error) {
	e.stats.Calls++
	if len(e.frames) >= e.maxDepth {
		return 0, e.trap("!StackOverflow", fmt.Sprintf("call depth limit %d reached calling %s", e.maxDepth, f.Name))
	}
	fn := e.p.fns[f]
	if fn == nil {
		return 0, fmt.Errorf("interp: no translated code for %s", f.Name)
	}
	e.frames = append(e.frames, interp.Frame{Func: fn.name, Pos: fn.entryPos})
	env := e.bindEnv(f, targs)
	var n int
	var err error
	if len(args) != len(f.Params) {
		err = &interp.VirgilError{Name: "!CallArityException", Msg: fmt.Sprintf("%s: got %d args, want %d", f.Name, len(args), len(f.Params))}
	} else {
		s := e.getS(fn.nS)
		r := e.getR(fn.nR)
		for k := range args {
			if err = setv(s, r, fn.params[k], args[k]); err != nil {
				break
			}
		}
		if err == nil {
			if e.rec == nil {
				n, err = e.exec(fn, s, r, env)
			} else {
				fr := &e.rec.fns[fn.idx]
				fr.calls++
				t0 := e.stats.Steps
				n, err = e.exec(fn, s, r, env)
				fr.steps += e.stats.Steps - t0
			}
		}
		e.putS(s)
		e.putR(r)
	}
	if ve, ok := err.(*interp.VirgilError); ok && ve.Trace == nil {
		ve.Trace, ve.Elided = e.traceSnapshot()
	}
	e.frames = e.frames[:len(e.frames)-1]
	return n, err
}

// callPlanned activates fn through a pre-resolved move plan — the fast
// path for static calls and inline-cache hits. The callee is known to
// bind no type parameters and need no arity adaptation.
func (e *Engine) callPlanned(fn *fnCode, plan []argMove, cs []int64, cr []interp.Value, recv interp.Value, hasRecv bool) (int, error) {
	e.stats.Calls++
	if len(e.frames) >= e.maxDepth {
		return 0, e.trap("!StackOverflow", fmt.Sprintf("call depth limit %d reached calling %s", e.maxDepth, fn.name))
	}
	e.frames = append(e.frames, interp.Frame{Func: fn.name, Pos: fn.entryPos})
	s := e.getS(fn.nS)
	r := e.getR(fn.nR)
	var err error
	if hasRecv {
		err = setv(s, r, fn.params[0], recv)
	}
	if err == nil {
		for _, mv := range plan {
			if err = moveReg(cs, cr, s, r, mv); err != nil {
				break
			}
		}
	}
	var n int
	if err == nil {
		if e.rec == nil {
			n, err = e.exec(fn, s, r, nil)
		} else {
			fr := &e.rec.fns[fn.idx]
			fr.calls++
			t0 := e.stats.Steps
			n, err = e.exec(fn, s, r, nil)
			fr.steps += e.stats.Steps - t0
		}
	}
	if ve, ok := err.(*interp.VirgilError); ok && ve.Trace == nil {
		ve.Trace, ve.Elided = e.traceSnapshot()
	}
	e.frames = e.frames[:len(e.frames)-1]
	e.putS(s)
	e.putR(r)
	return n, err
}

// storeRets spills the shared return buffer into caller registers,
// padding missing results with void (mirroring storeResults).
func (e *Engine) storeRets(dsts []uint32, s []int64, r []interp.Value, n int) error {
	for k, d := range dsts {
		if k >= n {
			if isRefEnc(d) {
				r[slotOf(d)] = interp.VoidVal{}
			} else {
				s[slotOf(d)] = 0
			}
			continue
		}
		rv := &e.ret[k]
		if isRefEnc(d) {
			r[slotOf(d)] = rv.box()
		} else if rv.kind == kRef {
			if err := unboxInto(s, d, rv.v); err != nil {
				return err
			}
		} else {
			s[slotOf(d)] = rv.s
		}
	}
	return nil
}

// callVirtual dispatches one virtual call, with a monomorphic inline
// cache keyed on the receiver's class. Slow path mirrors the
// interpreter's OpCallVirtual case exactly.
func (e *Engine) callVirtual(fn *fnCode, ins *einstr, s []int64, r []interp.Value, env tenv) error {
	recv, ok := getv(s, r, ins.args[0]).(*interp.ObjVal)
	if !ok {
		return &interp.VirgilError{Name: "!NullCheckException"}
	}
	slot := int(ins.aux)
	if slot >= len(recv.Class.Vtable) || recv.Class.Vtable[slot] == nil {
		return fmt.Errorf("interp: %s: bad vtable slot %d on %s", fn.name, slot, recv.Class.Name)
	}
	target := recv.Class.Vtable[slot]
	ic := &e.ics[ins.ic]
	if ic.cls == recv.Class && ic.fast != nil {
		// Cache hit: the adaptation check trivially passes (arity is
		// known to match), but it is still counted, like the
		// interpreter's adapt fast path.
		e.stats.AdaptChecks++
		if e.rec != nil {
			e.rec.sites[ins.ic].hits++
		}
		n, err := e.callPlanned(ic.fast, ic.plan, s, r, recv, true)
		if err != nil {
			return err
		}
		return e.storeRets(ins.dsts, s, r, n)
	}
	if e.rec != nil {
		e.rec.sites[ins.ic].misses++
	}
	provided := make([]interp.Value, len(ins.args)-1)
	for k := 1; k < len(ins.args); k++ {
		provided[k-1] = getv(s, r, ins.args[k])
	}
	adapted, err := interp.Adapt(&e.stats, provided, target.Params[1:])
	if err != nil {
		return err
	}
	margs := ins.targs
	if ins.open {
		margs = e.substAll(ins.targs, env)
	}
	targsAll := e.virtualTypeArgs(target, recv, margs)
	callArgs := append([]interp.Value{recv}, adapted...)
	n, err := e.enterBoxed(target, callArgs, targsAll)
	if err != nil {
		return err
	}
	// Re-read through the pointer: the call above may have re-entered
	// this site. A megamorphic site stops installing; otherwise count
	// the install and flip to megamorphic past the limit so a hot
	// polymorphic site stops thrashing the cache.
	if !ic.mega {
		installs := ic.installs + 1
		if installs > megaInstalls {
			*ic = icEntry{mega: true, installs: installs}
		} else {
			ic2 := icEntry{cls: recv.Class, installs: installs}
			if tf := e.p.fns[target]; tf != nil && !tf.hasTP && len(ins.args) == len(target.Params) {
				plan := make([]argMove, len(ins.args)-1)
				for k := 1; k < len(ins.args); k++ {
					plan[k-1] = argMove{src: ins.args[k], dst: tf.params[k]}
				}
				ic2.fast, ic2.plan = tf, plan
			}
			*ic = ic2
		}
	}
	return e.storeRets(ins.dsts, s, r, n)
}

// callIndirect invokes a closure value, with a monomorphic inline
// cache keyed on the closure's function and bound-receiver shape.
func (e *Engine) callIndirect(ins *einstr, fvv interp.Value, s []int64, r []interp.Value) error {
	fv, ok := fvv.(*interp.FuncVal)
	if !ok {
		return &interp.VirgilError{Name: "!NullCheckException"}
	}
	ic := &e.ics[ins.ic]
	if ic.ifn == fv.Fn && ic.hasRecv == fv.HasRecv && ic.fast != nil {
		e.stats.AdaptChecks++
		if e.rec != nil {
			e.rec.sites[ins.ic].hits++
		}
		var recv interp.Value
		if fv.HasRecv {
			recv = fv.Recv
		}
		n, err := e.callPlanned(ic.fast, ic.plan, s, r, recv, fv.HasRecv)
		if err != nil {
			return err
		}
		return e.storeRets(ins.dsts, s, r, n)
	}
	if e.rec != nil {
		e.rec.sites[ins.ic].misses++
	}
	provided := make([]interp.Value, len(ins.args))
	for k, a := range ins.args {
		provided[k] = getv(s, r, a)
	}
	n, err := e.invokeClosure(fv, provided)
	if err != nil {
		return err
	}
	if ic.mega {
		return e.storeRets(ins.dsts, s, r, n)
	}
	installs := ic.installs + 1
	if installs > megaInstalls {
		*ic = icEntry{mega: true, installs: installs}
		return e.storeRets(ins.dsts, s, r, n)
	}
	ic2 := icEntry{ifn: fv.Fn, hasRecv: fv.HasRecv, installs: installs}
	if tf := e.p.fns[fv.Fn]; tf != nil && !tf.hasTP {
		np := len(fv.Fn.Params)
		off := 0
		if fv.HasRecv {
			np--
			off = 1
		}
		if len(ins.args) == np {
			plan := make([]argMove, len(ins.args))
			for k, a := range ins.args {
				plan[k] = argMove{src: a, dst: tf.params[k+off]}
			}
			ic2.fast, ic2.plan = tf, plan
		}
	}
	*ic = ic2
	return e.storeRets(ins.dsts, s, r, n)
}

// invokeClosure mirrors the interpreter's invokeClosure: dynamic arity
// adaptation, then receiver-derived type arguments.
func (e *Engine) invokeClosure(fv *interp.FuncVal, provided []interp.Value) (int, error) {
	params := fv.Fn.Params
	var callArgs []interp.Value
	if fv.HasRecv {
		adapted, err := interp.Adapt(&e.stats, provided, params[1:])
		if err != nil {
			return 0, err
		}
		callArgs = append([]interp.Value{fv.Recv}, adapted...)
	} else {
		adapted, err := interp.Adapt(&e.stats, provided, params)
		if err != nil {
			return 0, err
		}
		callArgs = adapted
	}
	targs := fv.TypeArgs
	if fv.HasRecv && fv.Fn.NumClassParams > 0 {
		recv := fv.Recv.(*interp.ObjVal)
		targs = append(interp.ClassArgsFromRecv(e.tc, fv.Fn, recv), fv.TypeArgs...)
	}
	return e.enterBoxed(fv.Fn, callArgs, targs)
}

// exec runs one translated function body. It must only be called by
// enterBoxed or callPlanned, which maintain the frame stack around it.
// The returned count is the number of results staged in e.ret.
func (e *Engine) exec(fn *fnCode, s []int64, r []interp.Value, env tenv) (int, error) {
	fi := len(e.frames) - 1
	code := fn.code
	pc := 0
	for {
		ins := &code[pc]
		e.frames[fi].Pos = ins.pos
		if n := int64(ins.nsteps); n != 0 {
			old := e.stats.Steps
			nw := old + n
			e.stats.Steps = nw
			if nw > e.maxSteps {
				// The interpreter traps at the first step past the
				// budget, leaving Steps at exactly maxSteps+1.
				e.stats.Steps = e.maxSteps + 1
				return 0, &interp.ResourceError{Kind: "steps", Func: fn.name, Msg: fmt.Sprintf("step limit exceeded (budget %d)", e.maxSteps)}
			}
			if old>>12 != nw>>12 {
				if err := e.poll(fn.name); err != nil {
					return 0, err
				}
			}
		}
		switch ins.op {
		case opNop:

		case opConstS:
			s[slotOf(ins.dst)] = ins.imm
		case opConstR:
			r[slotOf(ins.dst)] = ins.val
		case opConstNullO:
			v := interp.DefaultValue(e.tc, e.subst(ins.typ, env))
			if err := setv(s, r, ins.dst, v); err != nil {
				return 0, err
			}
		case opConstStr:
			if ve := e.charge(interp.StringBytes(len(ins.tmpl))); ve != nil {
				return 0, ve
			}
			elems := make([]interp.Value, len(ins.tmpl))
			copy(elems, ins.tmpl)
			r[slotOf(ins.dst)] = &interp.ArrVal{Elem: ins.typ, Elems: elems}

		case opMoveSS:
			s[slotOf(ins.dst)] = s[slotOf(ins.a)]
		case opMoveRR:
			r[slotOf(ins.dst)] = r[slotOf(ins.a)]
		case opMoveBox:
			r[slotOf(ins.dst)] = boxKind(kindOf(ins.a), s[slotOf(ins.a)])
		case opMoveUnbox:
			if err := unboxInto(s, ins.dst, r[slotOf(ins.a)]); err != nil {
				return 0, err
			}

		case opArithSS:
			v, err := interp.IntArith(ir.Op(ins.aux), int32(s[slotOf(ins.a)]), int32(s[slotOf(ins.b)]))
			if err != nil {
				return 0, err
			}
			s[slotOf(ins.dst)] = int64(v)
		case opArithSI:
			v, err := interp.IntArith(ir.Op(ins.aux), int32(s[slotOf(ins.a)]), int32(ins.imm))
			if err != nil {
				return 0, err
			}
			s[slotOf(ins.dst)] = int64(v)
		case opArithRR:
			a, ok1 := getv(s, r, ins.a).(interp.IntVal)
			b, ok2 := getv(s, r, ins.b).(interp.IntVal)
			if !ok1 || !ok2 {
				return 0, fmt.Errorf("interp: %s: non-int operands to %s", fn.name, ir.Op(ins.aux))
			}
			v, err := interp.IntArith(ir.Op(ins.aux), int32(a), int32(b))
			if err != nil {
				return 0, err
			}
			if err := setv(s, r, ins.dst, interp.IntVal(v)); err != nil {
				return 0, err
			}
		case opNegS:
			s[slotOf(ins.dst)] = int64(-int32(s[slotOf(ins.a)]))
		case opNegR:
			a, ok := getv(s, r, ins.a).(interp.IntVal)
			if !ok {
				return 0, fmt.Errorf("interp: %s: non-int operand to %s", fn.name, ir.OpNeg)
			}
			if err := setv(s, r, ins.dst, interp.IntVal(-int32(a))); err != nil {
				return 0, err
			}
		case opNotS:
			s[slotOf(ins.dst)] = s[slotOf(ins.a)] ^ 1
		case opNotR:
			a, ok := getv(s, r, ins.a).(interp.BoolVal)
			if !ok {
				return 0, fmt.Errorf("interp: %s: non-bool operand to %s", fn.name, ir.OpNot)
			}
			if err := setv(s, r, ins.dst, interp.BoolVal(!a)); err != nil {
				return 0, err
			}
		case opBoolSS:
			if ins.aux != 0 {
				s[slotOf(ins.dst)] = s[slotOf(ins.a)] | s[slotOf(ins.b)]
			} else {
				s[slotOf(ins.dst)] = s[slotOf(ins.a)] & s[slotOf(ins.b)]
			}
		case opBoolRR:
			op := ir.OpBoolAnd
			if ins.aux != 0 {
				op = ir.OpBoolOr
			}
			a, ok1 := getv(s, r, ins.a).(interp.BoolVal)
			b, ok2 := getv(s, r, ins.b).(interp.BoolVal)
			if !ok1 || !ok2 {
				return 0, fmt.Errorf("interp: %s: non-bool operands to %s", fn.name, op)
			}
			var res interp.BoolVal
			if op == ir.OpBoolAnd {
				res = a && b
			} else {
				res = a || b
			}
			if err := setv(s, r, ins.dst, res); err != nil {
				return 0, err
			}
		case opCmpSS:
			s[slotOf(ins.dst)] = b2i(cmpSlots(ir.Op(ins.aux), s[slotOf(ins.a)], s[slotOf(ins.b)]))
		case opCmpRR:
			res := interp.CompareVals(ir.Op(ins.aux), getv(s, r, ins.a), getv(s, r, ins.b))
			if err := setv(s, r, ins.dst, interp.BoolVal(res)); err != nil {
				return 0, err
			}
		case opEqRR:
			eq := interp.ValueEq(getv(s, r, ins.a), getv(s, r, ins.b))
			if ir.Op(ins.aux) == ir.OpNe {
				eq = !eq
			}
			if err := setv(s, r, ins.dst, interp.BoolVal(eq)); err != nil {
				return 0, err
			}

		case opBranchS:
			c := s[slotOf(ins.a)] != 0
			if e.rec != nil {
				e.rec.branch(ins.ic, c)
			}
			if c {
				pc = int(ins.t1)
			} else {
				pc = int(ins.t2)
			}
			continue
		case opBranchR:
			c, ok := r[slotOf(ins.a)].(interp.BoolVal)
			if !ok {
				return 0, fmt.Errorf("interp: %s: branch on non-bool", fn.name)
			}
			if e.rec != nil {
				e.rec.branch(ins.ic, bool(c))
			}
			if c {
				pc = int(ins.t1)
			} else {
				pc = int(ins.t2)
			}
			continue
		case opCmpBrSS:
			c := cmpSlots(ir.Op(ins.aux), s[slotOf(ins.a)], s[slotOf(ins.b)])
			if e.rec != nil {
				e.rec.branch(ins.ic, c)
			}
			if c {
				pc = int(ins.t1)
			} else {
				pc = int(ins.t2)
			}
			continue
		case opCmpBrSI:
			c := cmpSlots(ir.Op(ins.aux), s[slotOf(ins.a)], ins.imm)
			if e.rec != nil {
				e.rec.branch(ins.ic, c)
			}
			if c {
				pc = int(ins.t1)
			} else {
				pc = int(ins.t2)
			}
			continue
		case opFused:
			runSubs(ins.subs, s, r, e.gS)
		case opFusedBr:
			runSubs(ins.subs, s, r, e.gS)
			var c bool
			switch ins.k {
			case fbrS:
				c = s[slotOf(ins.a)] != 0
			case fbrSS:
				c = cmpSlots(ir.Op(ins.aux), s[slotOf(ins.a)], s[slotOf(ins.b)])
			default:
				c = cmpSlots(ir.Op(ins.aux), s[slotOf(ins.a)], ins.imm)
			}
			if e.rec != nil {
				e.rec.branch(ins.ic, c)
			}
			if c {
				pc = int(ins.t1)
			} else {
				pc = int(ins.t2)
			}
			continue
		case opJump:
			pc = int(ins.t1)
			continue

		case opRet0:
			return 0, nil
		case opRet:
			for k, a := range ins.args {
				if isRefEnc(a) {
					e.ret[k] = retval{v: r[slotOf(a)], kind: kRef}
				} else {
					e.ret[k] = retval{s: s[slotOf(a)], kind: uint8(kindOf(a))}
				}
			}
			return len(ins.args), nil

		case opMakeTuple:
			// noheap: stack-promoted, the charge is skipped in both
			// engines identically (see ir.Instr.StackAlloc).
			if !ins.noheap {
				if ve := e.charge(interp.TupleBytes(len(ins.args))); ve != nil {
					return 0, ve
				}
			}
			vs := make(interp.TupleVal, len(ins.args))
			for k, a := range ins.args {
				vs[k] = getv(s, r, a)
			}
			e.stats.TupleAllocs++
			if err := setv(s, r, ins.dst, vs); err != nil {
				return 0, err
			}
		case opTupleGet:
			tv, ok := getv(s, r, ins.a).(interp.TupleVal)
			if !ok {
				return 0, fmt.Errorf("interp: %s: tuple.get of non-tuple", fn.name)
			}
			if err := setv(s, r, ins.dst, tv[ins.aux]); err != nil {
				return 0, err
			}

		case opNewObjC:
			if ins.xerr != nil {
				return 0, ins.xerr
			}
			if !ins.noheap {
				if ve := e.charge(interp.ObjectBytes(len(ins.tmpl))); ve != nil {
					return 0, ve
				}
			}
			fields := make([]interp.Value, len(ins.tmpl))
			copy(fields, ins.tmpl)
			r[slotOf(ins.dst)] = &interp.ObjVal{Class: ins.cls, Args: ins.targs, Fields: fields}
		case opNewObjO:
			ct := e.subst(ins.typ, env).(*types.Class)
			cls, err := e.p.classFor(ct)
			if err != nil {
				return 0, err
			}
			if !ins.noheap {
				if ve := e.charge(interp.ObjectBytes(len(cls.Fields))); ve != nil {
					return 0, ve
				}
			}
			tmpl := e.objTemplate(cls, ct)
			fields := make([]interp.Value, len(tmpl))
			copy(fields, tmpl)
			r[slotOf(ins.dst)] = &interp.ObjVal{Class: cls, Args: ct.Args, Fields: fields}
		case opFieldLoad:
			obj, ok := getv(s, r, ins.a).(*interp.ObjVal)
			if !ok {
				return 0, &interp.VirgilError{Name: "!NullCheckException"}
			}
			if err := setv(s, r, ins.dst, obj.Fields[ins.aux]); err != nil {
				return 0, err
			}
		case opFieldStore:
			obj, ok := getv(s, r, ins.a).(*interp.ObjVal)
			if !ok {
				return 0, &interp.VirgilError{Name: "!NullCheckException"}
			}
			obj.Fields[ins.aux] = getv(s, r, ins.b)
		case opNullCheck:
			if _, isNull := r[slotOf(ins.a)].(interp.NullVal); isNull {
				return 0, &interp.VirgilError{Name: "!NullCheckException"}
			}

		case opArrNewC, opArrNewO:
			var elem types.Type
			void := false
			if ins.op == opArrNewC {
				elem = ins.typ
				void = ins.k == 1
			} else {
				at := e.subst(ins.typ, env).(*types.Array)
				elem = at.Elem
				void = at.Elem == e.tc.Void()
			}
			var n int
			if a := ins.a; !isRefEnc(a) && kindOf(a) == kInt {
				n = int(int32(s[slotOf(a)]))
			} else {
				n = int(getv(s, r, a).(interp.IntVal))
			}
			if n < 0 {
				return 0, &interp.VirgilError{Name: "!LengthCheckException"}
			}
			if ve := e.charge(interp.ArrayBytes(e.tc, elem, int64(n))); ve != nil {
				return 0, ve
			}
			av := &interp.ArrVal{Elem: elem, Len: n}
			if !void {
				av.Elems = make([]interp.Value, n)
				var d interp.Value
				if ins.op == opArrNewC {
					d = ins.val
				} else {
					d = interp.DefaultValue(e.tc, elem)
				}
				for k := range av.Elems {
					av.Elems[k] = d
				}
			}
			r[slotOf(ins.dst)] = av
		case opArrLoad:
			arr, idx, err := e.arrayArgs(s, r, ins.a, ins.b)
			if err != nil {
				return 0, err
			}
			if ins.dst != regNone {
				var v interp.Value = interp.VoidVal{}
				if arr.Elems != nil {
					v = arr.Elems[idx]
				}
				if err := setv(s, r, ins.dst, v); err != nil {
					return 0, err
				}
			}
		case opArrStore:
			arr, idx, err := e.arrayArgs(s, r, ins.a, ins.b)
			if err != nil {
				return 0, err
			}
			if arr.Elems != nil {
				arr.Elems[idx] = getv(s, r, ins.c)
			}
		case opArrLen:
			arr, ok := getv(s, r, ins.a).(*interp.ArrVal)
			if !ok {
				return 0, &interp.VirgilError{Name: "!NullCheckException"}
			}
			if d := ins.dst; !isRefEnc(d) {
				s[slotOf(d)] = int64(int32(arr.Length()))
			} else {
				r[slotOf(d)] = interp.IntVal(int32(arr.Length()))
			}

		case opGLoadS:
			s[slotOf(ins.dst)] = e.gS[ins.aux]
		case opGLoadR:
			r[slotOf(ins.dst)] = e.gR[ins.aux]
		case opGLoadX:
			var v interp.Value
			if isRefEnc(ins.a) {
				v = e.gR[slotOf(ins.a)]
			} else {
				v = boxKind(kindOf(ins.a), e.gS[slotOf(ins.a)])
			}
			if err := setv(s, r, ins.dst, v); err != nil {
				return 0, err
			}
		case opGStoreS:
			e.gS[ins.aux] = s[slotOf(ins.a)]
		case opGStoreR:
			e.gR[ins.aux] = r[slotOf(ins.a)]
		case opGStoreX:
			v := getv(s, r, ins.b)
			if isRefEnc(ins.a) {
				e.gR[slotOf(ins.a)] = v
			} else if err := unboxInto(e.gS, ins.a, v); err != nil {
				return 0, err
			}

		case opCallF:
			n, err := e.callPlanned(ins.fn, ins.plan, s, r, nil, false)
			if err != nil {
				return 0, err
			}
			if err := e.storeRets(ins.dsts, s, r, n); err != nil {
				return 0, err
			}
		case opCallB:
			args := e.getV(len(ins.args))
			for k, a := range ins.args {
				args[k] = getv(s, r, a)
			}
			targs := ins.targs
			if ins.open {
				targs = e.substAll(ins.targs, env)
			}
			n, err := e.enterBoxed(ins.irFn, args, targs)
			e.putV(args)
			if err != nil {
				return 0, err
			}
			if err := e.storeRets(ins.dsts, s, r, n); err != nil {
				return 0, err
			}
		case opCallVirt:
			if err := e.callVirtual(fn, ins, s, r, env); err != nil {
				return 0, err
			}
		case opCallInd:
			if err := e.callIndirect(ins, getv(s, r, ins.a), s, r); err != nil {
				return 0, err
			}
		case opGLoadCallInd:
			if err := e.callIndirect(ins, e.gR[ins.aux], s, r); err != nil {
				return 0, err
			}
		case opCallBuiltin:
			args := e.getV(len(ins.args))
			for k, a := range ins.args {
				args[k] = getv(s, r, a)
			}
			res, err := interp.CallBuiltin(e.out, ins.sval, args, e.stats.Steps)
			e.putV(args)
			if err != nil {
				return 0, err
			}
			if ins.dst != regNone {
				if err := setv(s, r, ins.dst, res); err != nil {
					return 0, err
				}
			}

		case opMakeClosure:
			if !ins.noheap {
				if ve := e.charge(interp.ClosureBytes); ve != nil {
					return 0, ve
				}
			}
			targs := ins.targs
			var ft types.Type = ins.typ2
			if ins.open {
				targs = e.substAll(ins.targs, env)
				ft = e.subst(ins.typ2, env)
			}
			fv := &interp.FuncVal{Fn: ins.irFn, TypeArgs: targs}
			if f2, ok := ft.(*types.Func); ok {
				fv.Type = f2
			} else {
				fv.Type = interp.ClosureType(e.tc, ins.irFn, nil, targs)
			}
			r[slotOf(ins.dst)] = fv
		case opMakeBound:
			recv, ok := getv(s, r, ins.a).(*interp.ObjVal)
			if !ok {
				return 0, &interp.VirgilError{Name: "!NullCheckException"}
			}
			if !ins.noheap {
				if ve := e.charge(interp.ClosureBytes); ve != nil {
					return 0, ve
				}
			}
			target := recv.Class.Vtable[ins.aux]
			targs := ins.targs
			var ft types.Type = ins.typ2
			if ins.open {
				targs = e.substAll(ins.targs, env)
				ft = e.subst(ins.typ2, env)
			}
			fv := &interp.FuncVal{Fn: target, Recv: recv, HasRecv: true, TypeArgs: targs}
			if f2, ok := ft.(*types.Func); ok {
				fv.Type = f2
			} else {
				fv.Type = interp.ClosureType(e.tc, target, recv, targs)
			}
			r[slotOf(ins.dst)] = fv

		case opConstEnumO:
			et := e.subst(ins.typ, env).(*types.Enum)
			if err := setv(s, r, ins.dst, interp.EnumVal{Def: et.Def, Tag: int(ins.imm)}); err != nil {
				return 0, err
			}
		case opEnumTag:
			ev, ok := getv(s, r, ins.a).(interp.EnumVal)
			if !ok {
				return 0, fmt.Errorf("interp: %s: enum.tag of non-enum", fn.name)
			}
			if d := ins.dst; !isRefEnc(d) {
				s[slotOf(d)] = int64(int32(ev.Tag))
			} else {
				r[slotOf(d)] = interp.IntVal(int32(ev.Tag))
			}
		case opEnumName:
			ev, ok := getv(s, r, ins.a).(interp.EnumVal)
			if !ok {
				return 0, fmt.Errorf("interp: %s: enum.name of non-enum", fn.name)
			}
			name := "?"
			if ev.Tag >= 0 && ev.Tag < len(ev.Def.Cases) {
				name = ev.Def.Cases[ev.Tag]
			}
			if ve := e.charge(interp.StringBytes(len(name))); ve != nil {
				return 0, ve
			}
			elems := make([]interp.Value, len(name))
			for k := 0; k < len(name); k++ {
				elems[k] = interp.ByteVal(name[k])
			}
			r[slotOf(ins.dst)] = &interp.ArrVal{Elem: ins.typ, Elems: elems}

		case opCastR:
			to := ins.typ
			if ins.open {
				to = e.subst(ins.typ, env)
			}
			v, err := interp.EvalCast(e.tc, getv(s, r, ins.a), to)
			if err != nil {
				return 0, err
			}
			if err := setv(s, r, ins.dst, v); err != nil {
				return 0, err
			}
		case opCastIntByte:
			v := int32(s[slotOf(ins.a)])
			if v < 0 || v > 255 {
				return 0, &interp.VirgilError{Name: "!TypeCheckException", Msg: fmt.Sprintf("%d does not fit in byte", v)}
			}
			s[slotOf(ins.dst)] = int64(v)
		case opCastTrap:
			return 0, &interp.VirgilError{Name: ins.sval, Msg: ins.emsg}
		case opQueryR:
			to := ins.typ
			if ins.open {
				to = e.subst(ins.typ, env)
			}
			res := interp.EvalQuery(e.tc, getv(s, r, ins.a), to)
			if d := ins.dst; !isRefEnc(d) {
				s[slotOf(d)] = b2i(res)
			} else {
				r[slotOf(d)] = interp.BoolVal(res)
			}

		case opThrow:
			return 0, &interp.VirgilError{Name: ins.sval}
		case opFellOff:
			return 0, fmt.Errorf("interp: %s: fell off block b%d", fn.name, ins.aux)
		case opBadOp:
			return 0, ins.xerr
		default:
			return 0, fmt.Errorf("interp: %s: bad bytecode op %d", fn.name, ins.op)
		}
		pc++
	}
}

// runSubs executes a whole fused run in one call. The dispatch switch
// is too big for the Go inliner, so calling per sub-instruction would
// pay a function call each — one call per run amortizes it away. Every
// op here is a total function over the scalar file — no traps, no
// output, no heap — so a run interrupted by the step budget leaves
// nothing observable behind (see fusable in translate.go). Scalar
// global loads and stores qualify: they move values between the scalar
// file and the scalar globals array, trap-free, and a run executes
// atomically with respect to budget checks, so no partial store is
// ever observable. The IntArith error returns are statically
// impossible: Div/Mod never fuse.
func runSubs(subs []einstr, s []int64, r []interp.Value, gS []int64) {
	for k := range subs {
		sub := &subs[k]
		switch sub.op {
		case opConstS:
			s[slotOf(sub.dst)] = sub.imm
		case opMoveSS:
			s[slotOf(sub.dst)] = s[slotOf(sub.a)]
		case opConstR:
			r[slotOf(sub.dst)] = sub.val
		case opMoveRR:
			r[slotOf(sub.dst)] = r[slotOf(sub.a)]
		case opGLoadS:
			s[slotOf(sub.dst)] = gS[sub.aux]
		case opGStoreS:
			gS[sub.aux] = s[slotOf(sub.a)]
		case opArithSS:
			s[slotOf(sub.dst)] = int64(subArith(ir.Op(sub.aux), int32(s[slotOf(sub.a)]), int32(s[slotOf(sub.b)])))
		case opArithSI:
			s[slotOf(sub.dst)] = int64(subArith(ir.Op(sub.aux), int32(s[slotOf(sub.a)]), int32(sub.imm)))
		case opNegS:
			s[slotOf(sub.dst)] = int64(-int32(s[slotOf(sub.a)]))
		case opNotS:
			s[slotOf(sub.dst)] = s[slotOf(sub.a)] ^ 1
		case opBoolSS:
			if sub.aux != 0 {
				s[slotOf(sub.dst)] = s[slotOf(sub.a)] | s[slotOf(sub.b)]
			} else {
				s[slotOf(sub.dst)] = s[slotOf(sub.a)] & s[slotOf(sub.b)]
			}
		case opCmpSS:
			s[slotOf(sub.dst)] = b2i(cmpSlots(ir.Op(sub.aux), s[slotOf(sub.a)], s[slotOf(sub.b)]))
		}
	}
}

// subArith is interp.IntArith minus the trapping ops, which never
// fuse. IntArith's dispatch is too costly for the Go inliner (cost 186
// vs budget 80); peeling the three overwhelmingly common ops into an
// inlinable wrapper keeps fused arithmetic call-free on the hot path.
func subArith(op ir.Op, a, b int32) int32 {
	if op == ir.OpAdd {
		return a + b
	}
	return subArithSlow(op, a, b)
}

func subArithSlow(op ir.Op, a, b int32) int32 {
	switch op {
	case ir.OpSub:
		return a - b
	case ir.OpMul:
		return a * b
	}
	v, _ := interp.IntArith(op, a, b)
	return v
}

// arrayArgs mirrors the interpreter's array access checks: null, then
// index type, then bounds.
func (e *Engine) arrayArgs(s []int64, r []interp.Value, aEnc, iEnc uint32) (*interp.ArrVal, int, error) {
	arr, ok := getv(s, r, aEnc).(*interp.ArrVal)
	if !ok {
		return nil, 0, &interp.VirgilError{Name: "!NullCheckException"}
	}
	var idx int
	if !isRefEnc(iEnc) && kindOf(iEnc) == kInt {
		idx = int(int32(s[slotOf(iEnc)]))
	} else {
		iv, ok := getv(s, r, iEnc).(interp.IntVal)
		if !ok {
			return nil, 0, fmt.Errorf("interp: non-int array index")
		}
		idx = int(iv)
	}
	if idx < 0 || idx >= arr.Length() {
		return nil, 0, &interp.VirgilError{Name: "!BoundsCheckException"}
	}
	return arr, idx, nil
}

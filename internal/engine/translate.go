// Package engine executes post-pipeline IR through a compact register
// bytecode: a translation pass (this file) resolves everything the
// switch interpreter recomputes per step — operand registers become
// dense indices into an unboxed scalar file or a boxed ref file,
// constants and field-default templates are decoded once, hot
// instruction pairs are fused into superinstructions, and dynamic call
// sites get monomorphic inline caches — and a fast evaluator (exec.go)
// runs the result.
//
// The engine is semantically interchangeable with the switch
// interpreter in internal/interp: same output bytes, same traps with
// the same stack traces, same step accounting and Stats, same resource
// guards. Error strings deliberately keep the "interp:" prefix so the
// two engines are differential-test equal; internal/interp remains the
// reference semantics.
package engine

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/src"
	"repro/internal/types"
)

// Register encoding: bit 31 selects the boxed ref file; bits 24..25
// carry the scalar kind; the low 24 bits are the slot index.
const (
	refBit    = uint32(1) << 31
	kindShift = 24
	slotMask  = uint32(1)<<24 - 1

	kInt  = uint32(0)
	kByte = uint32(1)
	kBool = uint32(2)

	// regNone marks an absent destination.
	regNone = ^uint32(0)
)

func isRefEnc(e uint32) bool { return e&refBit != 0 }
func slotOf(e uint32) int    { return int(e & slotMask) }
func kindOf(e uint32) uint32 { return (e >> kindShift) & 3 }
func encScalar(k uint32, slot int) uint32 {
	return k<<kindShift | uint32(slot)
}
func encRef(slot int) uint32 { return refBit | uint32(slot) }

// Bytecode opcodes. S suffixes mean operands live in the scalar file;
// R means the boxed ref file; X handles mixed operand classes at
// runtime. The boxed fallbacks reproduce the switch interpreter's
// behavior (including its error strings) on operands the verifier
// allows to have open types.
const (
	opNop uint8 = iota
	opConstS
	opConstR
	opConstNullO
	opConstStr
	opMoveSS
	opMoveRR
	opMoveBox
	opMoveUnbox
	opArithSS
	opArithSI // fused const+arith superinstruction
	opArithRR
	opNegS
	opNegR
	opNotS
	opNotR
	opBoolSS
	opBoolRR
	opCmpSS
	opCmpRR
	opEqRR
	opBranchS
	opBranchR
	opCmpBrSS // fused compare+branch superinstruction
	opCmpBrSI // fused const+compare+branch superinstruction
	opJump
	opRet0
	opRet
	opMakeTuple
	opTupleGet
	opNewObjC
	opNewObjO
	opFieldLoad
	opFieldStore
	opNullCheck
	opArrNewC
	opArrNewO
	opArrLoad
	opArrStore
	opArrLen
	opGLoadS
	opGLoadR
	opGLoadX
	opGStoreS
	opGStoreR
	opGStoreX
	opCallF // fast static call: pre-planned register moves
	opCallB // boxed static call
	opCallVirt
	opCallInd
	opGLoadCallInd // fused global-load+indirect-call superinstruction
	opCallBuiltin
	opMakeClosure
	opMakeBound
	opConstEnumO
	opEnumTag
	opEnumName
	opCastR
	opCastIntByte
	opCastTrap // cast statically known to fail
	opQueryR
	opFused   // profile-selected run of fused non-trapping scalar ops
	opFusedBr // fused scalar run ending in a conditional branch
	opThrow
	opFellOff
	opBadOp
)

// opFusedBr terminator kinds, carried in einstr.k.
const (
	fbrS  = uint8(0) // opBranchS: branch on a bool slot
	fbrSS = uint8(1) // opCmpBrSS: compare two slots, branch
	fbrSI = uint8(2) // opCmpBrSI: compare slot to immediate, branch
)

// argMove copies one caller register into one callee register; the two
// encodings carry the box/unbox decision.
type argMove struct {
	src, dst uint32
}

// einstr is one bytecode instruction. Payload fields used depend on op.
type einstr struct {
	op      uint8
	nsteps  uint8 // IR instructions this op accounts for (0: opFellOff)
	k       uint8 // scalar kind / flags (opArrNewC: 1 = void element)
	dst     uint32
	a, b, c uint32
	aux     int32 // ir.Op, field/vtable slot, global slot, or block id
	ic      int32
	t1, t2  int32 // branch targets (pc)
	imm     int64
	val     interp.Value
	tmpl    []interp.Value
	fn      *fnCode
	irFn    *ir.Func
	cls     *ir.Class
	typ     types.Type
	typ2    types.Type
	targs   []types.Type
	open    bool // typ/targs mention type parameters; substitute at runtime
	args    []uint32
	dsts    []uint32
	plan    []argMove
	sval    string
	emsg    string
	xerr    error
	pos     src.Pos
	noheap  bool // stack-promoted allocation: skip the modeled heap charge
	// subs is the fused run body of opFused/opFusedBr: non-trapping
	// scalar-register writes executed back-to-back under one step check.
	subs []einstr
}

// fnCode is one translated function.
type fnCode struct {
	irf      *ir.Func
	name     string
	entryPos src.Pos
	regs     []uint32 // encoding per ir register ID
	params   []uint32
	nS, nR   int
	code     []einstr
	hasTP    bool
	idx      int // dense function index (profile counters, pnames)
}

// siteMeta is the static identity of one inline-cache call site: the
// owning function's dense index and the per-function site ordinal the
// profile keys on. slot is the vtable slot of virtual sites.
type siteMeta struct {
	fn       int
	ord      int
	slot     int32
	indirect bool
}

// brMeta is the static identity of one conditional branch. back marks
// a branch with an edge to an already-translated block — a loop edge,
// so its taken counter approximates the trip count.
type brMeta struct {
	fn   int
	ord  int
	back bool
}

// Program is an immutable translated module, shareable across
// concurrently running Engines (per-engine mutable state — globals,
// inline caches, stats — lives in Engine).
type Program struct {
	mod        *ir.Module
	tc         *types.Cache
	fns        map[*ir.Func]*fnCode
	numICs     int
	gEnc       []uint32 // encoding per global index
	nGS, nGR   int
	gRefInit   []interp.Value // default values of ref-class globals
	classByDef map[*types.ClassDef]*ir.Class
	classByTyp map[*types.Class]*ir.Class
	maxRet     int

	// Profile identity: deterministic dense numbering of functions,
	// call sites, and branches, so runtime counters recorded against
	// this program can be exported under stable jobs-independent keys.
	numBranches int
	siteMeta    []siteMeta
	branchMeta  []brMeta
	pnames      []string // profile name per fnCode.idx
	// hotFns gates profile-driven run fusion: only functions the input
	// profile marked hot get fused, so an unprofiled compile of the
	// same module produces byte-identical bytecode to previous releases.
	hotFns map[string]bool
}

// Module returns the module the program was compiled from.
func (p *Program) Module() *ir.Module { return p.mod }

// scalarKind classifies t: closed prim int/byte/bool live unboxed in
// the scalar file; everything else (refs, tuples, void, open
// type-parameter types) is boxed in the ref file.
func scalarKind(t types.Type) (uint32, bool) {
	p, ok := t.(*types.Prim)
	if !ok {
		return 0, false
	}
	switch p.Kind {
	case types.KindInt:
		return kInt, true
	case types.KindByte:
		return kByte, true
	case types.KindBool:
		return kBool, true
	}
	return 0, false
}

// Hot-function thresholds for profile-driven fusion: a function is
// worth fusing when the profile saw it called this often or burning
// this many steps (tight loops run hot without being re-entered).
const (
	hotMinCalls = profile.DefaultHotCalls
	hotMinSteps = profile.DefaultHotSteps
)

// Compile translates mod to register bytecode. The result is
// deterministic for a given module and safe for concurrent use.
func Compile(mod *ir.Module) *Program { return CompileProfiled(mod, nil) }

// CompileProfiled translates mod with an optional execution profile.
// A nil or empty profile yields exactly Compile's output; a profile
// additionally enables run fusion in the functions it marks hot. The
// profile only ever selects between semantically identical encodings,
// so a stale or mismatched profile cannot change observable behavior.
func CompileProfiled(mod *ir.Module, prof *profile.Profile) *Program {
	p := &Program{
		mod:        mod,
		tc:         mod.Types,
		fns:        make(map[*ir.Func]*fnCode, len(mod.Funcs)),
		classByDef: map[*types.ClassDef]*ir.Class{},
		classByTyp: map[*types.Class]*ir.Class{},
	}
	for _, c := range mod.Classes {
		if mod.Monomorphic {
			p.classByTyp[c.Type] = c
		} else {
			p.classByDef[c.Def] = c
		}
	}
	p.gEnc = make([]uint32, len(mod.Globals))
	for _, g := range mod.Globals {
		if k, ok := scalarKind(g.Type); ok {
			p.gEnc[g.Index] = encScalar(k, p.nGS)
			p.nGS++
		} else {
			p.gEnc[g.Index] = encRef(p.nGR)
			p.gRefInit = append(p.gRefInit, interp.DefaultValue(p.tc, g.Type))
			p.nGR++
		}
	}
	if prof != nil && !prof.Empty() {
		p.hotFns = map[string]bool{}
		for _, name := range prof.HotFuncs(hotMinCalls, hotMinSteps) {
			p.hotFns[name] = true
		}
	}
	// Pass 0: discover every executable function in deterministic
	// order (profile.Walk: module-listed functions, init, main, vtable
	// entries, then anything referenced from an instruction). Profile
	// keys are assigned along this walk, so it is shared with every
	// profile consumer.
	work := profile.Walk(mod)
	names := profile.Names(mod)
	// Pass 1: register classing for every function, so call plans can
	// reference callee parameter slots before bodies are translated.
	p.pnames = make([]string, len(work))
	for i, f := range work {
		fc := newFnCode(f)
		fc.idx = i
		p.fns[f] = fc
		p.pnames[i] = names[f]
	}
	// Pass 2: translate bodies, in worklist order so inline-cache
	// numbering is deterministic.
	for _, f := range work {
		tr := &translator{p: p, f: f, fc: p.fns[f]}
		tr.translate()
	}
	for _, fc := range p.fns {
		if n := len(fc.irf.Results); n > p.maxRet {
			p.maxRet = n
		}
	}
	if p.maxRet < 1 {
		p.maxRet = 1
	}
	return p
}

// newFnCode assigns register classes and slots from the IR types.
func newFnCode(f *ir.Func) *fnCode {
	fc := &fnCode{irf: f, name: f.Name, hasTP: len(f.TypeParams) > 0}
	if len(f.Blocks) > 0 && len(f.Blocks[0].Instrs) > 0 {
		fc.entryPos = f.Blocks[0].Instrs[0].Pos
	}
	fc.regs = make([]uint32, f.NumRegs())
	for i := range fc.regs {
		fc.regs[i] = regNone
	}
	assign := func(r *ir.Reg) {
		if r == nil || fc.regs[r.ID] != regNone {
			return
		}
		if k, ok := scalarKind(r.Type); ok {
			fc.regs[r.ID] = encScalar(k, fc.nS)
			fc.nS++
		} else {
			fc.regs[r.ID] = encRef(fc.nR)
			fc.nR++
		}
	}
	for _, pr := range f.Params {
		assign(pr)
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.Dst {
				assign(d)
			}
			for _, a := range in.Args {
				assign(a)
			}
		}
	}
	fc.params = make([]uint32, len(f.Params))
	for i, pr := range f.Params {
		fc.params[i] = fc.regs[pr.ID]
	}
	return fc
}

// translator holds per-function translation state.
type translator struct {
	p     *Program
	f     *ir.Func
	fc    *fnCode
	reads map[int]int // register ID -> total read count (fusion safety)
	start map[*ir.Block]int32
	fixes []fixup

	// hot enables profile-driven run fusion for this function; pend is
	// the pending run of fusable instructions merged on emit.
	hot      bool
	pend     []einstr
	nextSite int // per-function call-site ordinal
	nextBr   int // per-function branch ordinal
}

type fixup struct {
	pc    int
	which int // 1 or 2
	blk   *ir.Block
}

func (t *translator) translate() {
	t.hot = t.p.hotFns[t.p.pnames[t.fc.idx]]
	t.reads = map[int]int{}
	for _, b := range t.f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				t.reads[a.ID]++
			}
		}
	}
	t.start = map[*ir.Block]int32{}
	if len(t.f.Blocks) == 0 {
		t.emit(einstr{op: opBadOp, nsteps: 1,
			xerr: fmt.Errorf("interp: %s: function has no blocks", t.f.Name)})
		return
	}
	for _, b := range t.f.Blocks {
		t.start[b] = int32(len(t.fc.code))
		t.block(b)
	}
	t.flush()
	for _, fx := range t.fixes {
		pc := t.start[fx.blk]
		if fx.which == 1 {
			t.fc.code[fx.pc].t1 = pc
		} else {
			t.fc.code[fx.pc].t2 = pc
		}
	}
}

// maxFuseRun caps fused run length so summed nsteps stays far inside
// the uint8 step field. minFuse and minFuseBr are the shortest runs
// worth paying the runSubs call for: opFusedBr tolerates a shorter run
// because the branch itself also folds into the superinstruction.
const (
	maxFuseRun = 12
	minFuse    = 2
	minFuseBr  = 2
)

// fusable reports whether in may join a fused run: a non-trapping
// write of scalar registers with no targets, no output, and no heap
// effect. Div/Mod are excluded (IntArith traps on zero); shifts clamp
// and the rest are total, so an unexecuted fused prefix after a
// step-budget stop is unobservable.
func fusable(in *einstr) bool {
	switch in.op {
	case opConstS, opMoveSS, opNegS, opNotS, opBoolSS, opCmpSS, opGLoadS, opGStoreS,
		opConstR, opMoveRR:
		return true
	case opArithSS, opArithSI:
		switch ir.Op(in.aux) {
		case ir.OpDiv, ir.OpMod:
			return false
		}
		return true
	}
	return false
}

// brKind classifies ops a fused run may terminate on: scalar
// conditional branches, which read only scalar slots and cannot trap.
func brKind(op uint8) (uint8, bool) {
	switch op {
	case opBranchS:
		return fbrS, true
	case opCmpBrSS:
		return fbrSS, true
	case opCmpBrSI:
		return fbrSI, true
	}
	return 0, false
}

// emit appends one translated instruction. In profile-hot functions it
// merges runs of fusable instructions on the fly — merge-on-emit, so
// every pc a caller records for branch fixups is final and never
// shifts. Returns the pc of the appended instruction, or -1 when the
// instruction was buffered into a pending run (no caller records pcs
// for fusable ops).
func (t *translator) emit(in einstr) int {
	if t.hot {
		if fusable(&in) {
			t.pend = append(t.pend, in)
			if len(t.pend) >= maxFuseRun {
				t.flush()
			}
			return -1
		}
		if len(t.pend) > 0 {
			if k, ok := brKind(in.op); ok && len(t.pend) >= minFuseBr {
				f := einstr{op: opFusedBr, k: k, nsteps: in.nsteps,
					a: in.a, b: in.b, imm: in.imm, aux: in.aux, ic: in.ic,
					pos: in.pos, subs: t.take()}
				for i := range f.subs {
					f.nsteps += f.subs[i].nsteps
				}
				t.fc.code = append(t.fc.code, f)
				return len(t.fc.code) - 1
			}
			t.flush()
		}
	}
	t.fc.code = append(t.fc.code, in)
	return len(t.fc.code) - 1
}

// take hands over the pending run, resetting the buffer.
func (t *translator) take() []einstr {
	subs := make([]einstr, len(t.pend))
	copy(subs, t.pend)
	t.pend = t.pend[:0]
	return subs
}

// flush emits the pending run as one opFused, or, below the minimum
// profitable length, as the instructions themselves — a short run's
// saved dispatches do not pay for the runSubs call.
func (t *translator) flush() {
	if len(t.pend) == 0 {
		return
	}
	if len(t.pend) < minFuse {
		t.fc.code = append(t.fc.code, t.pend...)
		t.pend = t.pend[:0]
		return
	}
	pos := t.pend[0].pos
	f := einstr{op: opFused, pos: pos, subs: t.take()}
	for i := range f.subs {
		f.nsteps += f.subs[i].nsteps
	}
	t.fc.code = append(t.fc.code, f)
}

func (t *translator) target(pc, which int, blk *ir.Block) {
	t.fixes = append(t.fixes, fixup{pc: pc, which: which, blk: blk})
}

func (t *translator) enc(r *ir.Reg) uint32 {
	if r == nil {
		return regNone
	}
	return t.fc.regs[r.ID]
}

func (t *translator) dst0(in *ir.Instr) uint32 {
	if len(in.Dst) == 0 {
		return regNone
	}
	return t.enc(in.Dst[0])
}

// closed reports whether ty needs no runtime substitution in this
// function: either the function binds no type parameters (the
// interpreter's substitution is the identity there) or the type itself
// is closed.
func (t *translator) closed(ty types.Type) bool {
	if ty == nil || !t.fc.hasTP {
		return true
	}
	return !types.HasTypeParams(ty)
}

func (t *translator) closedAll(ts []types.Type) bool {
	for _, ty := range ts {
		if !t.closed(ty) {
			return false
		}
	}
	return true
}

func isCmp(op ir.Op) bool {
	switch op {
	case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpEq, ir.OpNe:
		return true
	}
	return false
}

func isArith(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
		ir.OpShl, ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor:
		return true
	}
	return false
}

func commutative(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
		return true
	}
	return false
}

// sameKindScalars reports whether both regs are scalar-class with equal
// kinds, the precondition for raw-slot comparison.
func (t *translator) sameKindScalars(a, b *ir.Reg) bool {
	ea, eb := t.enc(a), t.enc(b)
	return !isRefEnc(ea) && !isRefEnc(eb) && kindOf(ea) == kindOf(eb)
}

// slotComparable reports whether op on these two regs may use raw-slot
// comparison. Ordering on bools is excluded: the reference compare
// treats non-numeric operands as (0,0), and slot comparison of 0/1
// would disagree.
func (t *translator) slotComparable(op ir.Op, a, b *ir.Reg) bool {
	if !t.sameKindScalars(a, b) {
		return false
	}
	if op == ir.OpEq || op == ir.OpNe {
		return true
	}
	return kindOf(t.enc(a)) != kBool
}

// block translates one basic block, forming superinstructions where a
// hot pair (or triple) is adjacent and the intermediate register has
// exactly one reader. The IR is not SSA, so a fused intermediate write
// may only be elided when its register is never read anywhere else.
func (t *translator) block(b *ir.Block) {
	ins := b.Instrs
	for i := 0; i < len(ins); i++ {
		// const + compare + branch.
		if i+2 < len(ins) && t.fuseCmpBrI(ins[i], ins[i+1], ins[i+2]) {
			i += 2
			continue
		}
		// compare + branch.
		if i+1 < len(ins) && t.fuseCmpBr(ins[i], ins[i+1]) {
			i++
			continue
		}
		// const + arithmetic.
		if i+1 < len(ins) && t.fuseArithI(ins[i], ins[i+1]) {
			i++
			continue
		}
		// global load + indirect call.
		if i+1 < len(ins) && t.fuseLoadCall(ins[i], ins[i+1]) {
			i++
			continue
		}
		t.instr(ins[i])
	}
	if b.Terminator() == nil {
		t.emit(einstr{op: opFellOff, nsteps: 0, aux: int32(b.ID)})
	}
}

// singleRead reports that r's only read in the whole function is the
// one the caller is about to fuse away.
func (t *translator) singleRead(r *ir.Reg) bool { return t.reads[r.ID] == 1 }

func (t *translator) fuseCmpBrI(c, cmp, br *ir.Instr) bool {
	if c.Op != ir.OpConstInt || !isCmp(cmp.Op) || br.Op != ir.OpBranch {
		return false
	}
	if len(c.Dst) != 1 || len(cmp.Args) != 2 || len(cmp.Dst) != 1 || len(br.Args) != 1 {
		return false
	}
	if cmp.Args[1] != c.Dst[0] || !t.singleRead(c.Dst[0]) {
		return false
	}
	if br.Args[0] != cmp.Dst[0] || !t.singleRead(cmp.Dst[0]) {
		return false
	}
	ea := t.enc(cmp.Args[0])
	if isRefEnc(ea) || kindOf(ea) != kInt || isRefEnc(t.enc(cmp.Dst[0])) {
		return false
	}
	pc := t.emit(einstr{op: opCmpBrSI, nsteps: 3, a: ea,
		imm: int64(int32(c.IVal)), aux: int32(cmp.Op), pos: cmp.Pos,
		ic: t.newBr(br.Blocks[0], br.Blocks[1])})
	t.target(pc, 1, br.Blocks[0])
	t.target(pc, 2, br.Blocks[1])
	return true
}

func (t *translator) fuseCmpBr(cmp, br *ir.Instr) bool {
	if !isCmp(cmp.Op) || br.Op != ir.OpBranch {
		return false
	}
	if len(cmp.Args) != 2 || len(cmp.Dst) != 1 || len(br.Args) != 1 {
		return false
	}
	if br.Args[0] != cmp.Dst[0] || !t.singleRead(cmp.Dst[0]) {
		return false
	}
	if !t.slotComparable(cmp.Op, cmp.Args[0], cmp.Args[1]) || isRefEnc(t.enc(cmp.Dst[0])) {
		return false
	}
	pc := t.emit(einstr{op: opCmpBrSS, nsteps: 2, a: t.enc(cmp.Args[0]),
		b: t.enc(cmp.Args[1]), aux: int32(cmp.Op), pos: cmp.Pos,
		ic: t.newBr(br.Blocks[0], br.Blocks[1])})
	t.target(pc, 1, br.Blocks[0])
	t.target(pc, 2, br.Blocks[1])
	return true
}

func (t *translator) fuseArithI(c, ar *ir.Instr) bool {
	if c.Op != ir.OpConstInt || !isArith(ar.Op) {
		return false
	}
	if len(c.Dst) != 1 || len(ar.Args) != 2 || len(ar.Dst) != 1 {
		return false
	}
	var other *ir.Reg
	switch {
	case ar.Args[1] == c.Dst[0]:
		other = ar.Args[0]
	case commutative(ar.Op) && ar.Args[0] == c.Dst[0]:
		other = ar.Args[1]
	default:
		return false
	}
	if other == c.Dst[0] || !t.singleRead(c.Dst[0]) {
		return false
	}
	eo, ed := t.enc(other), t.enc(ar.Dst[0])
	if isRefEnc(eo) || kindOf(eo) != kInt || isRefEnc(ed) {
		return false
	}
	t.emit(einstr{op: opArithSI, nsteps: 2, dst: ed, a: eo,
		imm: int64(int32(c.IVal)), aux: int32(ar.Op), pos: ar.Pos})
	return true
}

func (t *translator) fuseLoadCall(gl, ci *ir.Instr) bool {
	if gl.Op != ir.OpGlobalLoad || ci.Op != ir.OpCallIndirect {
		return false
	}
	if len(gl.Dst) != 1 || len(ci.Args) == 0 || ci.Args[0] != gl.Dst[0] || !t.singleRead(gl.Dst[0]) {
		return false
	}
	// Only ref-class (function-typed) globals can hold closures.
	genc := t.p.gEnc[gl.Global.Index]
	if !isRefEnc(genc) {
		return false
	}
	in := einstr{op: opGLoadCallInd, nsteps: 2, aux: int32(slotOf(genc)),
		ic: t.newIC(true, -1), pos: ci.Pos}
	for _, a := range ci.Args[1:] {
		in.args = append(in.args, t.enc(a))
	}
	for _, d := range ci.Dst {
		in.dsts = append(in.dsts, t.enc(d))
	}
	t.emit(in)
	return true
}

// newIC allocates one inline-cache slot and records the site's stable
// profile identity (owning function, per-function ordinal, kind).
func (t *translator) newIC(indirect bool, slot int32) int32 {
	ic := int32(t.p.numICs)
	t.p.numICs++
	t.p.siteMeta = append(t.p.siteMeta, siteMeta{
		fn: t.fc.idx, ord: t.nextSite, slot: slot, indirect: indirect,
	})
	t.nextSite++
	return ic
}

// newBr allocates one branch-profile slot. A branch whose target block
// was already translated is a loop edge (blocks translate in order).
func (t *translator) newBr(taken, not *ir.Block) int32 {
	idx := int32(t.p.numBranches)
	t.p.numBranches++
	_, backT := t.start[taken]
	_, backN := t.start[not]
	t.p.branchMeta = append(t.p.branchMeta, brMeta{
		fn: t.fc.idx, ord: t.nextBr, back: backT || backN,
	})
	t.nextBr++
	return idx
}

// instr translates one IR instruction to one bytecode instruction.
func (t *translator) instr(in *ir.Instr) {
	e := einstr{nsteps: 1, pos: in.Pos, noheap: in.StackAlloc}
	fname := t.f.Name
	switch in.Op {
	case ir.OpNop:
		e.op = opNop

	case ir.OpConstInt, ir.OpConstByte, ir.OpConstBool:
		d := t.dst0(in)
		var imm int64
		var boxed interp.Value
		switch in.Op {
		case ir.OpConstInt:
			imm, boxed = int64(int32(in.IVal)), interp.IntVal(int32(in.IVal))
		case ir.OpConstByte:
			imm, boxed = int64(byte(in.IVal)), interp.ByteVal(byte(in.IVal))
		default:
			if in.IVal != 0 {
				imm = 1
			}
			boxed = interp.BoolVal(in.IVal != 0)
		}
		if isRefEnc(d) {
			e.op, e.dst, e.val = opConstR, d, boxed
		} else {
			e.op, e.dst, e.imm = opConstS, d, imm
		}
	case ir.OpConstVoid:
		e.op, e.dst, e.val = opConstR, t.dst0(in), interp.VoidVal{}
	case ir.OpConstNull:
		d := t.dst0(in)
		if t.closed(in.Type) {
			v := interp.DefaultValue(t.p.tc, in.Type)
			if isRefEnc(d) {
				e.op, e.dst, e.val = opConstR, d, v
			} else {
				// Closed prim defaults are all zero in slot encoding.
				e.op, e.dst, e.imm = opConstS, d, 0
			}
		} else {
			e.op, e.dst, e.typ = opConstNullO, d, in.Type
		}
	case ir.OpConstString:
		tmpl := make([]interp.Value, len(in.SVal))
		for k := 0; k < len(in.SVal); k++ {
			tmpl[k] = interp.ByteVal(in.SVal[k])
		}
		e.op, e.dst, e.tmpl, e.typ = opConstStr, t.dst0(in), tmpl, t.p.tc.Byte()

	case ir.OpMove:
		d, a := t.dst0(in), t.enc(in.Args[0])
		switch {
		case !isRefEnc(d) && !isRefEnc(a):
			e.op, e.dst, e.a = opMoveSS, d, a
		case isRefEnc(d) && isRefEnc(a):
			e.op, e.dst, e.a = opMoveRR, d, a
		case isRefEnc(d):
			e.op, e.dst, e.a = opMoveBox, d, a
		default:
			e.op, e.dst, e.a = opMoveUnbox, d, a
		}

	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod,
		ir.OpShl, ir.OpShr, ir.OpAnd, ir.OpOr, ir.OpXor:
		d, a, b := t.dst0(in), t.enc(in.Args[0]), t.enc(in.Args[1])
		e.aux = int32(in.Op)
		if !isRefEnc(d) && !isRefEnc(a) && !isRefEnc(b) && kindOf(a) == kInt && kindOf(b) == kInt {
			e.op, e.dst, e.a, e.b = opArithSS, d, a, b
		} else {
			e.op, e.dst, e.a, e.b = opArithRR, d, a, b
		}
	case ir.OpNeg:
		d, a := t.dst0(in), t.enc(in.Args[0])
		if !isRefEnc(d) && !isRefEnc(a) && kindOf(a) == kInt {
			e.op, e.dst, e.a = opNegS, d, a
		} else {
			e.op, e.dst, e.a = opNegR, d, a
		}
	case ir.OpNot:
		d, a := t.dst0(in), t.enc(in.Args[0])
		if !isRefEnc(d) && !isRefEnc(a) && kindOf(a) == kBool {
			e.op, e.dst, e.a = opNotS, d, a
		} else {
			e.op, e.dst, e.a = opNotR, d, a
		}
	case ir.OpBoolAnd, ir.OpBoolOr:
		d, a, b := t.dst0(in), t.enc(in.Args[0]), t.enc(in.Args[1])
		if in.Op == ir.OpBoolOr {
			e.aux = 1
		}
		if !isRefEnc(d) && !isRefEnc(a) && !isRefEnc(b) && kindOf(a) == kBool && kindOf(b) == kBool {
			e.op, e.dst, e.a, e.b = opBoolSS, d, a, b
		} else {
			e.op, e.dst, e.a, e.b = opBoolRR, d, a, b
		}
	case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		d, a, b := t.dst0(in), t.enc(in.Args[0]), t.enc(in.Args[1])
		e.aux = int32(in.Op)
		if t.slotComparable(in.Op, in.Args[0], in.Args[1]) && !isRefEnc(d) {
			e.op, e.dst, e.a, e.b = opCmpSS, d, a, b
		} else {
			e.op, e.dst, e.a, e.b = opCmpRR, d, a, b
		}
	case ir.OpEq, ir.OpNe:
		d, a, b := t.dst0(in), t.enc(in.Args[0]), t.enc(in.Args[1])
		e.aux = int32(in.Op)
		switch {
		case t.sameKindScalars(in.Args[0], in.Args[1]) && !isRefEnc(d):
			e.op, e.dst, e.a, e.b = opCmpSS, d, a, b
		case !isRefEnc(a) && !isRefEnc(b) && kindOf(a) != kindOf(b) && !isRefEnc(d):
			// Universal equality on distinct primitive types is
			// statically false (ValueEq compares dynamic kinds first).
			e.op, e.dst = opConstS, d
			if in.Op == ir.OpNe {
				e.imm = 1
			}
		default:
			e.op, e.dst, e.a, e.b = opEqRR, d, a, b
		}

	case ir.OpMakeTuple:
		e.op, e.dst = opMakeTuple, t.dst0(in)
		for _, a := range in.Args {
			e.args = append(e.args, t.enc(a))
		}
	case ir.OpTupleGet:
		e.op, e.dst, e.a, e.aux = opTupleGet, t.dst0(in), t.enc(in.Args[0]), int32(in.FieldSlot)

	case ir.OpNewObject:
		if t.closed(in.Type) {
			ct, ok := in.Type.(*types.Class)
			if !ok {
				e.op, e.nsteps = opBadOp, 1
				e.xerr = fmt.Errorf("interp: %s: new of non-class type %s", fname, in.Type)
				break
			}
			e.op, e.dst, e.targs = opNewObjC, t.dst0(in), ct.Args
			cls, err := t.p.classFor(ct)
			if err != nil {
				e.xerr = err
				break
			}
			e.cls = cls
			tmpl := make([]interp.Value, len(cls.Fields))
			cenv := types.BindParams(cls.Def.TypeParams, ct.Args)
			for k, fd := range cls.Fields {
				tmpl[k] = interp.DefaultValue(t.p.tc, t.p.tc.Subst(fd.Type, cenv))
			}
			e.tmpl = tmpl
		} else {
			e.op, e.dst, e.typ = opNewObjO, t.dst0(in), in.Type
		}
	case ir.OpFieldLoad:
		e.op, e.dst, e.a, e.aux = opFieldLoad, t.dst0(in), t.enc(in.Args[0]), int32(in.FieldSlot)
	case ir.OpFieldStore:
		e.op, e.a, e.b, e.aux = opFieldStore, t.enc(in.Args[0]), t.enc(in.Args[1]), int32(in.FieldSlot)
	case ir.OpNullCheck:
		if isRefEnc(t.enc(in.Args[0])) {
			e.op, e.a = opNullCheck, t.enc(in.Args[0])
		} else {
			e.op = opNop // scalars are never null
		}

	case ir.OpArrayNew:
		if t.closed(in.Type) {
			at, ok := in.Type.(*types.Array)
			if !ok {
				e.op = opBadOp
				e.xerr = fmt.Errorf("interp: %s: array.new of non-array type %s", fname, in.Type)
				break
			}
			e.op, e.dst, e.a, e.typ = opArrNewC, t.dst0(in), t.enc(in.Args[0]), at.Elem
			if at.Elem == t.p.tc.Void() {
				e.k = 1
			} else {
				e.val = interp.DefaultValue(t.p.tc, at.Elem)
			}
		} else {
			e.op, e.dst, e.a, e.typ = opArrNewO, t.dst0(in), t.enc(in.Args[0]), in.Type
		}
	case ir.OpArrayLoad:
		e.op, e.dst, e.a, e.b = opArrLoad, t.dst0(in), t.enc(in.Args[0]), t.enc(in.Args[1])
	case ir.OpArrayStore:
		e.op, e.a, e.b, e.c = opArrStore, t.enc(in.Args[0]), t.enc(in.Args[1]), t.enc(in.Args[2])
	case ir.OpArrayLen:
		e.op, e.dst, e.a = opArrLen, t.dst0(in), t.enc(in.Args[0])

	case ir.OpGlobalLoad:
		g, d := t.p.gEnc[in.Global.Index], t.dst0(in)
		switch {
		case !isRefEnc(g) && !isRefEnc(d):
			e.op, e.dst, e.aux = opGLoadS, d, int32(slotOf(g))
		case isRefEnc(g) && isRefEnc(d):
			e.op, e.dst, e.aux = opGLoadR, d, int32(slotOf(g))
		default:
			e.op, e.dst, e.a = opGLoadX, d, g
		}
	case ir.OpGlobalStore:
		g, a := t.p.gEnc[in.Global.Index], t.enc(in.Args[0])
		switch {
		case !isRefEnc(g) && !isRefEnc(a):
			e.op, e.a, e.aux = opGStoreS, a, int32(slotOf(g))
		case isRefEnc(g) && isRefEnc(a):
			e.op, e.a, e.aux = opGStoreR, a, int32(slotOf(g))
		default:
			e.op, e.a, e.b = opGStoreX, g, a
		}

	case ir.OpCallStatic:
		callee := t.p.fns[in.Fn]
		e.irFn, e.fn = in.Fn, callee
		e.targs = in.TypeArgs
		e.open = !t.closedAll(in.TypeArgs)
		for _, d := range in.Dst {
			e.dsts = append(e.dsts, t.enc(d))
		}
		if callee != nil && !callee.hasTP && len(in.Args) == len(in.Fn.Params) {
			e.op = opCallF
			for k, a := range in.Args {
				e.plan = append(e.plan, argMove{src: t.enc(a), dst: callee.params[k]})
			}
		} else {
			e.op = opCallB
			for _, a := range in.Args {
				e.args = append(e.args, t.enc(a))
			}
		}
	case ir.OpCallVirtual:
		e.op, e.aux, e.ic = opCallVirt, int32(in.FieldSlot), t.newIC(false, int32(in.FieldSlot))
		e.targs = in.TypeArgs
		e.open = !t.closedAll(in.TypeArgs)
		for _, a := range in.Args {
			e.args = append(e.args, t.enc(a))
		}
		for _, d := range in.Dst {
			e.dsts = append(e.dsts, t.enc(d))
		}
	case ir.OpCallIndirect:
		e.op, e.ic = opCallInd, t.newIC(true, -1)
		e.a = t.enc(in.Args[0])
		for _, a := range in.Args[1:] {
			e.args = append(e.args, t.enc(a))
		}
		for _, d := range in.Dst {
			e.dsts = append(e.dsts, t.enc(d))
		}
	case ir.OpCallBuiltin:
		e.op, e.sval, e.dst = opCallBuiltin, in.SVal, t.dst0(in)
		for _, a := range in.Args {
			e.args = append(e.args, t.enc(a))
		}

	case ir.OpMakeClosure:
		e.op, e.dst, e.irFn = opMakeClosure, t.dst0(in), in.Fn
		e.targs, e.typ2 = in.TypeArgs, in.Type2
		e.open = !t.closedAll(in.TypeArgs) || !t.closed(in.Type2)
	case ir.OpMakeBound:
		e.op, e.dst, e.a, e.aux = opMakeBound, t.dst0(in), t.enc(in.Args[0]), int32(in.FieldSlot)
		e.targs, e.typ2 = in.TypeArgs, in.Type2
		e.open = !t.closedAll(in.TypeArgs) || !t.closed(in.Type2)

	case ir.OpConstEnum:
		if t.closed(in.Type) {
			et, ok := in.Type.(*types.Enum)
			if !ok {
				e.op = opBadOp
				e.xerr = fmt.Errorf("interp: %s: const.enum of non-enum type %s", fname, in.Type)
				break
			}
			e.op, e.dst = opConstR, t.dst0(in)
			e.val = interp.EnumVal{Def: et.Def, Tag: int(in.IVal)}
		} else {
			e.op, e.dst, e.typ, e.imm = opConstEnumO, t.dst0(in), in.Type, in.IVal
		}
	case ir.OpEnumTag:
		e.op, e.dst, e.a = opEnumTag, t.dst0(in), t.enc(in.Args[0])
	case ir.OpEnumName:
		e.op, e.dst, e.a, e.typ = opEnumName, t.dst0(in), t.enc(in.Args[0]), t.p.tc.Byte()

	case ir.OpTypeCast:
		t.cast(in, &e)
	case ir.OpTypeQuery:
		d, a := t.dst0(in), t.enc(in.Args[0])
		if t.closed(in.Type) && !isRefEnc(a) {
			// A scalar operand's dynamic type is its static type, so the
			// query folds to a constant.
			res := t.p.tc.IsSubtype(primOf(t.p.tc, kindOf(a)), in.Type)
			e.op, e.dst = opConstS, d
			if res {
				e.imm = 1
			}
			if isRefEnc(d) {
				e.op, e.val = opConstR, interp.BoolVal(res)
			}
		} else {
			e.op, e.dst, e.a, e.typ = opQueryR, d, a, in.Type
			e.open = !t.closed(in.Type)
		}

	case ir.OpRet:
		if len(in.Args) == 0 {
			e.op = opRet0
		} else {
			e.op = opRet
			for _, a := range in.Args {
				e.args = append(e.args, t.enc(a))
			}
			if len(e.args) > t.p.maxRet {
				t.p.maxRet = len(e.args)
			}
		}
	case ir.OpJump:
		e.op = opJump
		pc := t.emit(e)
		t.target(pc, 1, in.Blocks[0])
		return
	case ir.OpBranch:
		a := t.enc(in.Args[0])
		if !isRefEnc(a) && kindOf(a) == kBool {
			e.op, e.a = opBranchS, a
		} else {
			e.op, e.a = opBranchR, a
		}
		e.ic = t.newBr(in.Blocks[0], in.Blocks[1])
		pc := t.emit(e)
		t.target(pc, 1, in.Blocks[0])
		t.target(pc, 2, in.Blocks[1])
		return
	case ir.OpThrow:
		e.op, e.sval = opThrow, in.SVal

	default:
		e.op = opBadOp
		e.xerr = fmt.Errorf("interp: %s: unhandled op %s", fname, in.Op)
	}
	t.emit(e)
}

// primOf maps a scalar kind back to its type.
func primOf(tc *types.Cache, k uint32) types.Type {
	switch k {
	case kByte:
		return tc.Byte()
	case kBool:
		return tc.Bool()
	}
	return tc.Int()
}

// cast translates OpTypeCast, folding casts whose outcome is decided by
// the operand's static scalar type (the paper's "statically-decided
// casts") and keeping the generic EvalCast path otherwise.
func (t *translator) cast(in *ir.Instr, e *einstr) {
	d, a := t.dst0(in), t.enc(in.Args[0])
	to := in.Type
	if !t.closed(to) || isRefEnc(a) {
		e.op, e.dst, e.a, e.typ = opCastR, d, a, to
		e.open = !t.closed(to)
		return
	}
	sk := kindOf(a)
	if p, ok := to.(*types.Prim); ok {
		switch {
		case p.Kind == types.KindInt && sk == kInt,
			p.Kind == types.KindByte && sk == kByte,
			p.Kind == types.KindBool && sk == kBool:
			e.op, e.dst, e.a = opMoveSS, d, a
			return
		case p.Kind == types.KindInt && sk == kByte:
			e.op, e.dst, e.a = opMoveSS, d, a // widen: byte slots are valid ints
			return
		case p.Kind == types.KindByte && sk == kInt:
			e.op, e.dst, e.a = opCastIntByte, d, a
			return
		}
		e.op = opCastTrap
		e.sval, e.emsg = "!TypeCheckException", "cannot cast to "+to.String()
		return
	}
	if _, ok := to.(*types.Tuple); ok {
		e.op = opCastTrap
		e.sval, e.emsg = "!TypeCheckException", "cannot cast to "+to.String()
		return
	}
	from := primOf(t.p.tc, sk)
	if t.p.tc.IsSubtype(from, to) {
		e.op, e.dst, e.a = opMoveBox, d, a
		return
	}
	e.op = opCastTrap
	e.sval = "!TypeCheckException"
	e.emsg = fmt.Sprintf("%s is not a %s", from, to)
}

// classFor resolves a closed class type to its IR class, with the
// interpreter's error strings.
func (p *Program) classFor(ct *types.Class) (*ir.Class, error) {
	if p.mod.Monomorphic {
		if c, ok := p.classByTyp[ct]; ok {
			return c, nil
		}
		return nil, fmt.Errorf("interp: no specialized class for %s", ct)
	}
	if c, ok := p.classByDef[ct.Def]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("interp: unknown class %s", ct)
}

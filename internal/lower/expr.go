package lower

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/token"
	"repro/internal/typecheck"
	"repro/internal/types"
)

// lowerExpr lowers one expression and returns the register holding its
// value (a void-typed register for void expressions).
func (b *builder) lowerExpr(e ast.Expr) *ir.Reg {
	tc := b.tc()
	if p := e.Pos(); p.IsValid() {
		b.pos = p
	}
	switch e := e.(type) {
	case *ast.IntLit:
		r := b.f.NewReg(tc.Int(), "")
		b.emit(&ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{r}, IVal: e.Value})
		return r
	case *ast.ByteLit:
		r := b.f.NewReg(tc.Byte(), "")
		b.emit(&ir.Instr{Op: ir.OpConstByte, Dst: []*ir.Reg{r}, IVal: int64(e.Value)})
		return r
	case *ast.BoolLit:
		r := b.f.NewReg(tc.Bool(), "")
		v := int64(0)
		if e.Value {
			v = 1
		}
		b.emit(&ir.Instr{Op: ir.OpConstBool, Dst: []*ir.Reg{r}, IVal: v})
		return r
	case *ast.StrLit:
		r := b.f.NewReg(tc.String(), "")
		b.emit(&ir.Instr{Op: ir.OpConstString, Dst: []*ir.Reg{r}, SVal: e.Value})
		return r
	case *ast.NullLit:
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpConstNull, Dst: []*ir.Reg{r}, Type: e.Type()})
		return r
	case *ast.ThisExpr:
		return b.this
	case *ast.TupleExpr:
		if len(e.Elems) == 0 {
			return b.constVoid()
		}
		elems := make([]*ir.Reg, len(e.Elems))
		for i, el := range e.Elems {
			elems[i] = b.lowerExpr(el)
		}
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpMakeTuple, Dst: []*ir.Reg{r}, Args: elems, Type: e.Type()})
		return r
	case *ast.VarRef:
		return b.lowerVarRef(e)
	case *ast.MemberExpr:
		return b.lowerMember(e)
	case *ast.CallExpr:
		return b.lowerCall(e)
	case *ast.IndexExpr:
		arr := b.lowerExpr(e.Arr)
		idx := b.lowerExpr(e.Idx)
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpArrayLoad, Dst: []*ir.Reg{r}, Args: []*ir.Reg{arr, idx}})
		return r
	case *ast.BinaryExpr:
		return b.lowerBinary(e)
	case *ast.UnaryExpr:
		v := b.lowerExpr(e.E)
		r := b.f.NewReg(e.Type(), "")
		op := ir.OpNeg
		if e.Op == token.Not {
			op = ir.OpNot
		}
		b.emitOp(op, r, v)
		return r
	case *ast.TernaryExpr:
		r := b.f.NewReg(e.Type(), "")
		then := b.f.NewBlock()
		els := b.f.NewBlock()
		merge := b.f.NewBlock()
		b.lowerCondBranch(e.Cond, then, els)
		b.cur = then
		tv := b.lowerExpr(e.Then)
		b.emitOp(ir.OpMove, r, tv)
		b.jump(merge)
		b.cur = els
		ev := b.lowerExpr(e.Els)
		b.emitOp(ir.OpMove, r, ev)
		b.jump(merge)
		b.cur = merge
		return r
	case *ast.AssignExpr:
		b.lowerAssign(e)
		return b.constVoid()
	case *ast.IncDecExpr:
		delta := int64(1)
		if !e.Inc {
			delta = -1
		}
		b.lowerReadModifyWrite(e.Target, func(old *ir.Reg) *ir.Reg {
			d := b.constInt(delta)
			r := b.f.NewReg(b.tc().Int(), "")
			b.emitOp(ir.OpAdd, r, old, d)
			return r
		})
		return b.constVoid()
	}
	panic(fmt.Sprintf("lower: unhandled expression %T", e))
}

// lowerVarRef lowers an identifier in value position.
func (b *builder) lowerVarRef(e *ast.VarRef) *ir.Reg {
	switch bind := e.Binding.(type) {
	case *typecheck.LocalSym:
		return b.locals[bind.Decl]
	case *typecheck.GlobalSym:
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpGlobalLoad, Dst: []*ir.Reg{r}, Global: b.lw.globalOf[bind]})
		return r
	case *typecheck.FieldSym:
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpFieldLoad, Dst: []*ir.Reg{r}, Args: []*ir.Reg{b.this}, FieldSlot: bind.Slot})
		return r
	case *typecheck.FuncSym:
		if bind.Owner == nil {
			r := b.f.NewReg(e.Type(), "")
			b.emit(&ir.Instr{Op: ir.OpMakeClosure, Dst: []*ir.Reg{r}, Fn: b.lw.funcOf[bind], TypeArgs: e.TypeArgsOf, Type2: e.Type()})
			return r
		}
		// Bare method name: a closure bound to this (g6-g7).
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpMakeBound, Dst: []*ir.Reg{r}, Args: []*ir.Reg{b.this}, FieldSlot: bind.VtSlot, Type: b.this.Type, TypeArgs: e.TypeArgsOf, Type2: e.Type()})
		return r
	}
	// Type names and components have no value of their own.
	return b.constVoid()
}

// classArgsOf extracts the instantiation arguments of a type-qualified
// member's receiver class type.
func classArgsOf(t types.Type) []types.Type {
	if c, ok := t.(*types.Class); ok {
		return c.Args
	}
	return nil
}

// lowerMember lowers recv.name in value position.
func (b *builder) lowerMember(e *ast.MemberExpr) *ir.Reg {
	tc := b.tc()
	switch e.Kind {
	case ast.MTupleIndex:
		recv := b.lowerExpr(e.Recv)
		if _, ok := recv.Type.(*types.Tuple); !ok {
			// (T) == T: .0 of a single value is the value itself.
			return recv
		}
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpTupleGet, Dst: []*ir.Reg{r}, Args: []*ir.Reg{recv}, FieldSlot: e.TupleIdx, Type: recv.Type})
		return r
	case ast.MField:
		recv := b.lowerExpr(e.Recv)
		f := e.Binding.(*typecheck.FieldSym)
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpFieldLoad, Dst: []*ir.Reg{r}, Args: []*ir.Reg{recv}, FieldSlot: f.Slot})
		return r
	case ast.MArrayLength:
		recv := b.lowerExpr(e.Recv)
		r := b.f.NewReg(tc.Int(), "")
		b.emit(&ir.Instr{Op: ir.OpArrayLen, Dst: []*ir.Reg{r}, Args: []*ir.Reg{recv}})
		return r
	case ast.MBoundMethod:
		recv := b.lowerExpr(e.Recv)
		m := e.Binding.(*typecheck.FuncSym)
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpMakeBound, Dst: []*ir.Reg{r}, Args: []*ir.Reg{recv}, FieldSlot: m.VtSlot, Type: recv.Type, TypeArgs: e.TypeArgsOf, Type2: e.Type()})
		return r
	case ast.MClassMethod:
		m := e.Binding.(*typecheck.FuncSym)
		wrap := b.lw.unboundWrapper(m)
		targs := append(append([]types.Type{}, classArgsOf(e.RecvType)...), methodArgsOf(m, e)...)
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpMakeClosure, Dst: []*ir.Reg{r}, Fn: wrap, TypeArgs: targs, Type2: e.Type()})
		return r
	case ast.MNew:
		r := b.f.NewReg(e.Type(), "")
		switch bind := e.Binding.(type) {
		case *typecheck.CtorSym:
			alloc := b.lw.allocOf[bind.Owner]
			b.emit(&ir.Instr{Op: ir.OpMakeClosure, Dst: []*ir.Reg{r}, Fn: alloc, TypeArgs: classArgsOf(e.RecvType), Type2: e.Type()})
		case *types.Array:
			b.emit(&ir.Instr{Op: ir.OpMakeClosure, Dst: []*ir.Reg{r}, Fn: b.lw.arrayNewWrapper(), TypeArgs: []types.Type{bind.Elem}, Type2: e.Type()})
		}
		return r
	case ast.MOperator:
		sym := e.Binding.(*typecheck.OperatorSym)
		r := b.f.NewReg(e.Type(), "")
		fn, targs := b.lw.operatorWrapper(sym)
		b.emit(&ir.Instr{Op: ir.OpMakeClosure, Dst: []*ir.Reg{r}, Fn: fn, TypeArgs: targs, Type2: e.Type()})
		return r
	case ast.MComponentMember:
		bf := e.Binding.(*typecheck.BuiltinFunc)
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpMakeClosure, Dst: []*ir.Reg{r}, Fn: b.lw.builtinWrapper(bf), Type2: e.Type()})
		return r
	case ast.MEnumCase:
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpConstEnum, Dst: []*ir.Reg{r}, IVal: int64(e.TupleIdx), Type: e.Type()})
		return r
	case ast.MEnumTag:
		recv := b.lowerExpr(e.Recv)
		r := b.f.NewReg(tc.Int(), "")
		b.emit(&ir.Instr{Op: ir.OpEnumTag, Dst: []*ir.Reg{r}, Args: []*ir.Reg{recv}})
		return r
	case ast.MEnumName:
		recv := b.lowerExpr(e.Recv)
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpEnumName, Dst: []*ir.Reg{r}, Args: []*ir.Reg{recv}})
		return r
	case ast.MGlobal:
		g := e.Binding.(*typecheck.GlobalSym)
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpGlobalLoad, Dst: []*ir.Reg{r}, Global: b.lw.globalOf[g]})
		return r
	case ast.MTopFunc:
		fn := e.Binding.(*typecheck.FuncSym)
		r := b.f.NewReg(e.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpMakeClosure, Dst: []*ir.Reg{r}, Fn: b.lw.funcOf[fn], TypeArgs: e.TypeArgsOf, Type2: e.Type()})
		return r
	}
	panic(fmt.Sprintf("lower: unhandled member kind %d for %s", e.Kind, e.Name.Name))
}

// binOpFor maps source operators to IR opcodes.
var binOpFor = map[token.Kind]ir.Op{
	token.Add: ir.OpAdd, token.Sub: ir.OpSub, token.Mul: ir.OpMul,
	token.Div: ir.OpDiv, token.Mod: ir.OpMod, token.Shl: ir.OpShl,
	token.Shr: ir.OpShr, token.And: ir.OpAnd, token.Or: ir.OpOr,
	token.Xor: ir.OpXor, token.Lt: ir.OpLt, token.Le: ir.OpLe,
	token.Gt: ir.OpGt, token.Ge: ir.OpGe, token.Eq: ir.OpEq,
	token.Neq: ir.OpNe,
}

func (b *builder) lowerBinary(e *ast.BinaryExpr) *ir.Reg {
	tc := b.tc()
	switch e.Op {
	case token.AndAnd, token.OrOr:
		r := b.f.NewReg(tc.Bool(), "")
		yes := b.f.NewBlock()
		no := b.f.NewBlock()
		merge := b.f.NewBlock()
		b.lowerCondBranch(e, yes, no)
		b.cur = yes
		b.emit(&ir.Instr{Op: ir.OpConstBool, Dst: []*ir.Reg{r}, IVal: 1})
		b.jump(merge)
		b.cur = no
		b.emit(&ir.Instr{Op: ir.OpConstBool, Dst: []*ir.Reg{r}, IVal: 0})
		b.jump(merge)
		b.cur = merge
		return r
	}
	l := b.lowerExpr(e.L)
	rr := b.lowerExpr(e.R)
	r := b.f.NewReg(e.Type(), "")
	op, ok := binOpFor[e.Op]
	if !ok {
		panic(fmt.Sprintf("lower: unhandled binary operator %s", e.Op))
	}
	b.emit(&ir.Instr{Op: op, Dst: []*ir.Reg{r}, Args: []*ir.Reg{l, rr}, Type: l.Type})
	return r
}

// lowerAssign lowers target = value and target +=/-= value.
func (b *builder) lowerAssign(e *ast.AssignExpr) {
	if e.Op == token.Assign {
		b.storeTo(e.Target, func() *ir.Reg { return b.lowerExpr(e.Value) })
		return
	}
	op := ir.OpAdd
	if e.Op == token.SubEq {
		op = ir.OpSub
	}
	b.lowerReadModifyWrite(e.Target, func(old *ir.Reg) *ir.Reg {
		v := b.lowerExpr(e.Value)
		r := b.f.NewReg(b.tc().Int(), "")
		b.emitOp(op, r, old, v)
		return r
	})
}

// storeTo evaluates the target's address parts, then the value, then
// stores.
func (b *builder) storeTo(target ast.Expr, value func() *ir.Reg) {
	switch t := target.(type) {
	case *ast.VarRef:
		switch bind := t.Binding.(type) {
		case *typecheck.LocalSym:
			v := value()
			b.emitOp(ir.OpMove, b.locals[bind.Decl], v)
		case *typecheck.GlobalSym:
			v := value()
			b.emit(&ir.Instr{Op: ir.OpGlobalStore, Global: b.lw.globalOf[bind], Args: []*ir.Reg{v}})
		case *typecheck.FieldSym:
			v := value()
			b.emit(&ir.Instr{Op: ir.OpFieldStore, Args: []*ir.Reg{b.this, v}, FieldSlot: bind.Slot})
		default:
			panic("lower: invalid assignment target binding")
		}
	case *ast.MemberExpr:
		if t.Kind == ast.MGlobal {
			g := t.Binding.(*typecheck.GlobalSym)
			v := value()
			b.emit(&ir.Instr{Op: ir.OpGlobalStore, Global: b.lw.globalOf[g], Args: []*ir.Reg{v}})
			return
		}
		f := t.Binding.(*typecheck.FieldSym)
		recv := b.lowerExpr(t.Recv)
		v := value()
		b.emit(&ir.Instr{Op: ir.OpFieldStore, Args: []*ir.Reg{recv, v}, FieldSlot: f.Slot})
	case *ast.IndexExpr:
		arr := b.lowerExpr(t.Arr)
		idx := b.lowerExpr(t.Idx)
		v := value()
		b.emit(&ir.Instr{Op: ir.OpArrayStore, Args: []*ir.Reg{arr, idx, v}})
	default:
		panic("lower: invalid assignment target")
	}
}

// lowerReadModifyWrite handles += -= ++ --, evaluating address parts
// once.
func (b *builder) lowerReadModifyWrite(target ast.Expr, modify func(old *ir.Reg) *ir.Reg) {
	switch t := target.(type) {
	case *ast.VarRef:
		switch bind := t.Binding.(type) {
		case *typecheck.LocalSym:
			reg := b.locals[bind.Decl]
			v := modify(reg)
			b.emitOp(ir.OpMove, reg, v)
		case *typecheck.GlobalSym:
			old := b.f.NewReg(bind.Type, "")
			g := b.lw.globalOf[bind]
			b.emit(&ir.Instr{Op: ir.OpGlobalLoad, Dst: []*ir.Reg{old}, Global: g})
			v := modify(old)
			b.emit(&ir.Instr{Op: ir.OpGlobalStore, Global: g, Args: []*ir.Reg{v}})
		case *typecheck.FieldSym:
			old := b.f.NewReg(bind.Type, "")
			b.emit(&ir.Instr{Op: ir.OpFieldLoad, Dst: []*ir.Reg{old}, Args: []*ir.Reg{b.this}, FieldSlot: bind.Slot})
			v := modify(old)
			b.emit(&ir.Instr{Op: ir.OpFieldStore, Args: []*ir.Reg{b.this, v}, FieldSlot: bind.Slot})
		default:
			panic("lower: invalid assignment target binding")
		}
	case *ast.MemberExpr:
		if t.Kind == ast.MGlobal {
			g := t.Binding.(*typecheck.GlobalSym)
			ig := b.lw.globalOf[g]
			old := b.f.NewReg(t.Type(), "")
			b.emit(&ir.Instr{Op: ir.OpGlobalLoad, Dst: []*ir.Reg{old}, Global: ig})
			v := modify(old)
			b.emit(&ir.Instr{Op: ir.OpGlobalStore, Global: ig, Args: []*ir.Reg{v}})
			return
		}
		f := t.Binding.(*typecheck.FieldSym)
		recv := b.lowerExpr(t.Recv)
		old := b.f.NewReg(t.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpFieldLoad, Dst: []*ir.Reg{old}, Args: []*ir.Reg{recv}, FieldSlot: f.Slot})
		v := modify(old)
		b.emit(&ir.Instr{Op: ir.OpFieldStore, Args: []*ir.Reg{recv, v}, FieldSlot: f.Slot})
	case *ast.IndexExpr:
		arr := b.lowerExpr(t.Arr)
		idx := b.lowerExpr(t.Idx)
		old := b.f.NewReg(t.Type(), "")
		b.emit(&ir.Instr{Op: ir.OpArrayLoad, Dst: []*ir.Reg{old}, Args: []*ir.Reg{arr, idx}})
		v := modify(old)
		b.emit(&ir.Instr{Op: ir.OpArrayStore, Args: []*ir.Reg{arr, idx, v}})
	default:
		panic("lower: invalid read-modify-write target")
	}
}

package lower

import (
	"context"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/parser"
	"repro/internal/src"
	"repro/internal/typecheck"
)

func lowerSrc(t *testing.T, source string) *ir.Module {
	t.Helper()
	errs := &src.ErrorList{}
	f := parser.Parse("test.v", source, errs)
	if !errs.Empty() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	prog := typecheck.Check([]*ast.File{f}, errs)
	if !errs.Empty() {
		t.Fatalf("check errors:\n%s", errs.Error())
	}
	mod, err := Lower(context.Background(), prog, 1)
	if err != nil {
		t.Fatalf("lower error: %v", err)
	}
	if err := mod.Validate(); err != nil {
		t.Fatalf("invalid IR: %v\n%s", err, mod.String())
	}
	return mod
}

func findFunc(t *testing.T, mod *ir.Module, name string) *ir.Func {
	t.Helper()
	for _, f := range mod.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %q not in module", name)
	return nil
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestMethodsLowerToVirtualCalls(t *testing.T) {
	mod := lowerSrc(t, `
class A { def m() -> int { return 1; } }
def main() {
	var a = A.new();
	a.m();
}
`)
	main := findFunc(t, mod, "main")
	if countOps(main, ir.OpCallVirtual) != 1 {
		t.Errorf("a.m() should lower to one virtual call:\n%s", main)
	}
	if countOps(main, ir.OpCallStatic) != 1 {
		t.Errorf("A.new() should lower to one static allocator call:\n%s", main)
	}
}

func TestAllocatorShape(t *testing.T) {
	mod := lowerSrc(t, `class A { var f: int; new(f) { } } def main() { }`)
	alloc := findFunc(t, mod, "A.$alloc")
	if countOps(alloc, ir.OpNewObject) != 1 {
		t.Errorf("allocator must contain exactly one new:\n%s", alloc)
	}
	if countOps(alloc, ir.OpCallStatic) != 1 {
		t.Errorf("allocator must call the constructor:\n%s", alloc)
	}
	ctor := findFunc(t, mod, "A.new")
	if countOps(ctor, ir.OpFieldStore) != 1 {
		t.Errorf("shorthand ctor param must store the field:\n%s", ctor)
	}
}

func TestOperatorValueUsesWrapper(t *testing.T) {
	mod := lowerSrc(t, `
def main() {
	var p = int.+;
	var q = byte.==;
	var c = int.!<byte>;
}
`)
	names := map[string]bool{}
	for _, f := range mod.Funcs {
		names[f.Name] = true
	}
	for _, want := range []string{"$int.+", "$eq", "$cast"} {
		if !names[want] {
			t.Errorf("wrapper %s not synthesized; have %v", want, names)
		}
	}
}

func TestOperatorCallInlines(t *testing.T) {
	// int.+(1, 2) called directly must NOT go through a wrapper.
	mod := lowerSrc(t, `
def main() {
	var x = int.+(1, 2);
	var q = int.?(x);
	var c = byte.!(x);
}
`)
	main := findFunc(t, mod, "main")
	if countOps(main, ir.OpAdd) != 1 {
		t.Errorf("direct operator call should inline an add:\n%s", main)
	}
	if countOps(main, ir.OpTypeQuery) != 1 || countOps(main, ir.OpTypeCast) != 1 {
		t.Errorf("direct cast/query calls should inline:\n%s", main)
	}
	if countOps(main, ir.OpCallStatic)+countOps(main, ir.OpCallIndirect) != 0 {
		t.Errorf("no calls expected:\n%s", main)
	}
}

func TestUnboundMethodWrapperDispatchesVirtually(t *testing.T) {
	mod := lowerSrc(t, `
class A { def m(x: int) -> int { return x; } }
def main() { var f = A.m; }
`)
	wrap := findFunc(t, mod, "A.m.$unbound")
	if countOps(wrap, ir.OpCallVirtual) != 1 {
		t.Errorf("unbound wrapper must dispatch virtually (b3):\n%s", wrap)
	}
}

func TestArgumentAdaptationShapes(t *testing.T) {
	mod := lowerSrc(t, `
def two(a: int, b: int) -> int { return a + b; }
def one(p: (int, int)) -> int { return p.0; }
def main() {
	var t = (1, 2);
	two(t);        // unpack: TupleGets
	one(1, 2);     // pack: MakeTuple
}
`)
	main := findFunc(t, mod, "main")
	if countOps(main, ir.OpTupleGet) < 2 {
		t.Errorf("two(t) should unpack the tuple:\n%s", main)
	}
	if countOps(main, ir.OpMakeTuple) < 2 { // the literal + the packed arg
		t.Errorf("one(1, 2) should pack a tuple:\n%s", main)
	}
}

func TestShortCircuitLowering(t *testing.T) {
	mod := lowerSrc(t, `
def f() -> bool { return true; }
def main() {
	if (f() && f()) { System.puts("y"); }
}
`)
	main := findFunc(t, mod, "main")
	// Short-circuit: two branches, each guarding one call.
	if countOps(main, ir.OpBranch) < 2 {
		t.Errorf("&& should lower to chained branches:\n%s", main)
	}
}

func TestGlobalInitFunction(t *testing.T) {
	mod := lowerSrc(t, `
var x = 41;
def main() { }
`)
	if mod.Init == nil {
		t.Fatal("module must have an $init function")
	}
	if countOps(mod.Init, ir.OpGlobalStore) != 1 {
		t.Errorf("$init must store the initializer:\n%s", mod.Init)
	}
}

func TestAbstractMethodThrows(t *testing.T) {
	mod := lowerSrc(t, `
class A { def m(); }
def main() { }
`)
	m := findFunc(t, mod, "A.m")
	if countOps(m, ir.OpThrow) != 1 {
		t.Errorf("abstract method body must throw:\n%s", m)
	}
}

func TestModulePrinterIsStable(t *testing.T) {
	src := `class A { def m() -> int { return 1; } } def main() { A.new().m(); }`
	a := lowerSrc(t, src).String()
	b := lowerSrc(t, src).String()
	if a != b {
		t.Error("lowering is not deterministic")
	}
	if !strings.Contains(a, "func main(") || !strings.Contains(a, "vtable 0 -> A.m") {
		t.Errorf("printer output unexpected:\n%s", a)
	}
}

package lower

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/token"
	"repro/internal/typecheck"
	"repro/internal/types"
)

// adaptArgs lowers source arguments and adapts their shape to the
// callee's declared parameter list (§2.3/§4.1): n args to n params is
// direct; one tuple argument to n params is unpacked; n arguments to a
// single tuple parameter are packed.
func (b *builder) adaptArgs(args []ast.Expr, wants []types.Type) []*ir.Reg {
	tc := b.tc()
	n, m := len(args), len(wants)
	switch {
	case n == m:
		out := make([]*ir.Reg, n)
		for i, a := range args {
			out[i] = b.lowerExpr(a)
		}
		return out
	case m == 0 && n == 1:
		b.lowerExpr(args[0]) // evaluate for effect (q8: f(t) of void t)
		return nil
	case m == 1:
		if n == 0 {
			return []*ir.Reg{b.constVoid()}
		}
		elems := make([]*ir.Reg, n)
		etypes := make([]types.Type, n)
		for i, a := range args {
			elems[i] = b.lowerExpr(a)
			etypes[i] = elems[i].Type
		}
		r := b.f.NewReg(tc.TupleOf(etypes), "")
		b.emit(&ir.Instr{Op: ir.OpMakeTuple, Dst: []*ir.Reg{r}, Args: elems, Type: r.Type})
		return []*ir.Reg{r}
	case n == 1:
		v := b.lowerExpr(args[0])
		tt, ok := v.Type.(*types.Tuple)
		if !ok || len(tt.Elems) != m {
			panic(fmt.Sprintf("lower: cannot adapt argument of type %s to %d parameters", v.Type, m))
		}
		out := make([]*ir.Reg, m)
		for i := range out {
			out[i] = b.f.NewReg(tt.Elems[i], "")
			b.emit(&ir.Instr{Op: ir.OpTupleGet, Dst: []*ir.Reg{out[i]}, Args: []*ir.Reg{v}, FieldSlot: i, Type: v.Type})
		}
		return out
	}
	panic(fmt.Sprintf("lower: argument shape mismatch: %d args, %d params", n, m))
}

// methodArgsOf extracts the method's own type arguments from a
// type-qualified member node. After inference the node records the
// class arguments followed by the method arguments; after explicit
// instantiation it records only the method arguments.
func methodArgsOf(m *typecheck.FuncSym, e *ast.MemberExpr) []types.Type {
	nclass := len(m.Owner.Def.TypeParams)
	margs := e.TypeArgsOf
	if nclass > 0 && len(margs) == nclass+len(m.TypeParams) {
		return margs[nclass:]
	}
	return margs
}

// methodEnv builds the substitution from a method's type parameters
// (owner class's and its own) to the arguments at a call through a
// receiver of static type recv with explicit/inferred method args.
func (b *builder) methodEnv(m *typecheck.FuncSym, recv *types.Class, margs []types.Type) map[*types.TypeParamDef]types.Type {
	tc := b.tc()
	env := map[*types.TypeParamDef]types.Type{}
	w := recv
	for w != nil && w.Def != m.Owner.Def {
		w = tc.ParentOf(w)
	}
	if w != nil {
		for i, p := range m.Owner.Def.TypeParams {
			env[p] = w.Args[i]
		}
	}
	for i, p := range m.TypeParams {
		if i < len(margs) {
			env[p] = margs[i]
		}
	}
	return env
}

// substAll substitutes env into each type.
func (b *builder) substAll(ts []types.Type, env map[*types.TypeParamDef]types.Type) []types.Type {
	out := make([]types.Type, len(ts))
	for i, t := range ts {
		out[i] = b.tc().Subst(t, env)
	}
	return out
}

// callResult allocates a destination register unless the return type is
// void, and returns (dsts, resultReg).
func (b *builder) callResult(ret types.Type) ([]*ir.Reg, *ir.Reg) {
	if ret == b.tc().Void() {
		return nil, nil
	}
	r := b.f.NewReg(ret, "")
	return []*ir.Reg{r}, r
}

// finishCall materializes a void result when needed so lowerExpr always
// returns a register.
func (b *builder) finishCall(r *ir.Reg) *ir.Reg {
	if r == nil {
		return b.constVoid()
	}
	return r
}

// lowerCall lowers fn(args) using the checker's classification of the
// callee: virtual calls for methods, static calls for top-level
// functions and constructors, inline operations for operators, and
// indirect calls through closure values otherwise.
func (b *builder) lowerCall(e *ast.CallExpr) *ir.Reg {
	tc := b.tc()
	switch fn := e.Fn.(type) {
	case *ast.MemberExpr:
		switch fn.Kind {
		case ast.MBoundMethod:
			m := fn.Binding.(*typecheck.FuncSym)
			recv := b.lowerExpr(fn.Recv)
			rc, ok := recv.Type.(*types.Class)
			if !ok {
				break
			}
			env := b.methodEnv(m, rc, fn.TypeArgsOf)
			wants := b.substAll(m.ParamTypes, env)
			args := b.adaptArgs(e.Args, wants)
			dsts, r := b.callResult(e.Type())
			b.emit(&ir.Instr{
				Op: ir.OpCallVirtual, Dst: dsts,
				Args:      append([]*ir.Reg{recv}, args...),
				FieldSlot: m.VtSlot, Type: recv.Type, TypeArgs: fn.TypeArgsOf,
			})
			return b.finishCall(r)
		case ast.MClassMethod:
			m := fn.Binding.(*typecheck.FuncSym)
			rc := fn.RecvType.(*types.Class)
			margs := methodArgsOf(m, fn)
			env := b.methodEnv(m, rc, margs)
			wants := append([]types.Type{fn.RecvType}, b.substAll(m.ParamTypes, env)...)
			args := b.adaptArgs(e.Args, wants)
			dsts, r := b.callResult(e.Type())
			b.emit(&ir.Instr{
				Op: ir.OpCallVirtual, Dst: dsts, Args: args,
				FieldSlot: m.VtSlot, Type: fn.RecvType, TypeArgs: margs,
			})
			return b.finishCall(r)
		case ast.MNew:
			switch bind := fn.Binding.(type) {
			case *typecheck.CtorSym:
				cls := bind.Owner
				rc := fn.RecvType.(*types.Class)
				env := types.BindParams(cls.Def.TypeParams, rc.Args)
				wants := b.substAll(bind.ParamTypes, env)
				args := b.adaptArgs(e.Args, wants)
				dsts, r := b.callResult(e.Type())
				b.emit(&ir.Instr{Op: ir.OpCallStatic, Dst: dsts, Fn: b.lw.allocOf[cls], Args: args, TypeArgs: rc.Args})
				return b.finishCall(r)
			case *types.Array:
				args := b.adaptArgs(e.Args, []types.Type{tc.Int()})
				r := b.f.NewReg(bind, "")
				b.emit(&ir.Instr{Op: ir.OpArrayNew, Dst: []*ir.Reg{r}, Args: args, Type: bind})
				return r
			}
		case ast.MOperator:
			return b.lowerOperatorCall(e, fn)
		case ast.MComponentMember:
			bf := fn.Binding.(*typecheck.BuiltinFunc)
			var wants []types.Type
			if bf.Param != tc.Void() {
				wants = []types.Type{bf.Param}
			}
			args := b.adaptArgs(e.Args, wants)
			dsts, r := b.callResult(bf.Ret)
			b.emit(&ir.Instr{Op: ir.OpCallBuiltin, Dst: dsts, SVal: bf.Component + "." + bf.Name, Args: args})
			return b.finishCall(r)
		case ast.MTopFunc:
			m := fn.Binding.(*typecheck.FuncSym)
			env := types.BindParams(m.TypeParams, fn.TypeArgsOf)
			wants := b.substAll(m.ParamTypes, env)
			args := b.adaptArgs(e.Args, wants)
			dsts, r := b.callResult(e.Type())
			b.emit(&ir.Instr{Op: ir.OpCallStatic, Dst: dsts, Fn: b.lw.funcOf[m], Args: args, TypeArgs: fn.TypeArgsOf})
			return b.finishCall(r)
		}
	case *ast.VarRef:
		if m, ok := fn.Binding.(*typecheck.FuncSym); ok {
			if m.Owner == nil {
				env := types.BindParams(m.TypeParams, fn.TypeArgsOf)
				wants := b.substAll(m.ParamTypes, env)
				args := b.adaptArgs(e.Args, wants)
				dsts, r := b.callResult(e.Type())
				b.emit(&ir.Instr{Op: ir.OpCallStatic, Dst: dsts, Fn: b.lw.funcOf[m], Args: args, TypeArgs: fn.TypeArgsOf})
				return b.finishCall(r)
			}
			// Implicit-this method call m(args).
			rc := b.tc().SelfType(b.cls.Def)
			env := b.methodEnv(m, rc, fn.TypeArgsOf)
			wants := b.substAll(m.ParamTypes, env)
			args := b.adaptArgs(e.Args, wants)
			dsts, r := b.callResult(e.Type())
			b.emit(&ir.Instr{
				Op: ir.OpCallVirtual, Dst: dsts,
				Args:      append([]*ir.Reg{b.this}, args...),
				FieldSlot: m.VtSlot, Type: rc, TypeArgs: fn.TypeArgsOf,
			})
			return b.finishCall(r)
		}
	}
	// General case: evaluate the callee to a closure and call it
	// indirectly. Arguments are passed in their source arity; shape
	// adaptation happens dynamically before normalization (§4.1) and
	// statically afterwards.
	cl := b.lowerExpr(e.Fn)
	args := make([]*ir.Reg, 0, len(e.Args)+1)
	args = append(args, cl)
	for _, a := range e.Args {
		args = append(args, b.lowerExpr(a))
	}
	dsts, r := b.callResult(e.Type())
	b.emit(&ir.Instr{Op: ir.OpCallIndirect, Dst: dsts, Args: args})
	return b.finishCall(r)
}

// lowerOperatorCall inlines T.==(a, b), T.!(x), T.?(x) and the
// primitive operators when they are called directly.
func (b *builder) lowerOperatorCall(e *ast.CallExpr, fn *ast.MemberExpr) *ir.Reg {
	tc := b.tc()
	sym := fn.Binding.(*typecheck.OperatorSym)
	switch sym.Op {
	case "==", "!=":
		args := b.adaptArgs(e.Args, []types.Type{sym.Subject, sym.Subject})
		r := b.f.NewReg(tc.Bool(), "")
		op := ir.OpEq
		if sym.Op == "!=" {
			op = ir.OpNe
		}
		b.emit(&ir.Instr{Op: op, Dst: []*ir.Reg{r}, Args: args, Type: sym.Subject})
		return r
	case "!":
		args := b.adaptArgs(e.Args, []types.Type{sym.Input})
		r := b.f.NewReg(sym.Subject, "")
		b.emit(&ir.Instr{Op: ir.OpTypeCast, Dst: []*ir.Reg{r}, Args: args, Type: sym.Subject, Type2: sym.Input})
		return r
	case "?":
		args := b.adaptArgs(e.Args, []types.Type{sym.Input})
		r := b.f.NewReg(tc.Bool(), "")
		b.emit(&ir.Instr{Op: ir.OpTypeQuery, Dst: []*ir.Reg{r}, Args: args, Type: sym.Subject, Type2: sym.Input})
		return r
	}
	// Primitive operators.
	op, ok := binOpFor[opTokenFor(sym.Op)]
	if !ok {
		panic(fmt.Sprintf("lower: unknown operator %q", sym.Op))
	}
	args := b.adaptArgs(e.Args, []types.Type{sym.Subject, sym.Subject})
	r := b.f.NewReg(e.Type(), "")
	b.emit(&ir.Instr{Op: op, Dst: []*ir.Reg{r}, Args: args, Type: sym.Subject})
	return r
}

func opTokenFor(op string) token.Kind {
	for k, v := range map[string]token.Kind{
		"+": token.Add, "-": token.Sub, "*": token.Mul, "/": token.Div,
		"%": token.Mod, "<": token.Lt, ">": token.Gt, "<=": token.Le,
		">=": token.Ge, "<<": token.Shl, ">>": token.Shr, "&": token.And,
		"|": token.Or, "^": token.Xor,
	} {
		if k == op {
			return v
		}
	}
	return token.ILLEGAL
}

// ------------------------------------------------------- wrapper funcs

// wrapper caches synthesized functions by name. Bodies lower
// concurrently, so the first worker to need a wrapper synthesizes it
// under wmu; the module-level append happens after all bodies finish
// (sorted by name, in lowerAll) so the function order does not depend
// on which worker got here first.
func (lw *Lowerer) wrapper(name string, make func() *ir.Func) *ir.Func {
	lw.wmu.Lock()
	defer lw.wmu.Unlock()
	if f, ok := lw.wrappers[name]; ok {
		return f
	}
	f := make()
	lw.wrappers[name] = f
	return f
}

// operatorWrapper returns the wrapper function and type arguments for
// an operator used as a first-class value (b8-b15).
func (lw *Lowerer) operatorWrapper(sym *typecheck.OperatorSym) (*ir.Func, []types.Type) {
	tc := lw.tc
	switch sym.Op {
	case "==":
		return lw.genericEq(true), []types.Type{sym.Subject}
	case "!=":
		return lw.genericEq(false), []types.Type{sym.Subject}
	case "!":
		return lw.genericCast(true), []types.Type{sym.Input, sym.Subject}
	case "?":
		return lw.genericCast(false), []types.Type{sym.Input, sym.Subject}
	}
	// Concrete primitive operator wrapper, e.g. $int.+ (b10-b11).
	name := "$" + sym.Subject.String() + "." + sym.Op
	subject := sym.Subject
	return lw.wrapper(name, func() *ir.Func {
		f := &ir.Func{Name: name, Kind: ir.KindWrapper, VtSlot: -1}
		a := f.NewReg(subject, "a")
		c := f.NewReg(subject, "b")
		f.Params = []*ir.Reg{a, c}
		op := binOpFor[opTokenFor(sym.Op)]
		ret := subject
		switch op {
		case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			ret = tc.Bool()
		}
		f.Results = []types.Type{ret}
		r := f.NewReg(ret, "")
		blk := f.NewBlock()
		blk.Instrs = append(blk.Instrs,
			&ir.Instr{Op: op, Dst: []*ir.Reg{r}, Args: []*ir.Reg{a, c}, Type: subject},
			&ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{r}},
		)
		return f
	}), nil
}

// genericEq returns $eq<T>(a: T, b: T) -> bool (or $ne).
func (lw *Lowerer) genericEq(eq bool) *ir.Func {
	name := "$ne"
	if eq {
		name = "$eq"
	}
	tc := lw.tc
	return lw.wrapper(name, func() *ir.Func {
		f := &ir.Func{Name: name, Kind: ir.KindWrapper, VtSlot: -1}
		tp := tc.NewTypeParamDef("T", 0, f)
		f.TypeParams = []*types.TypeParamDef{tp}
		t := tc.ParamRef(tp)
		a := f.NewReg(t, "a")
		c := f.NewReg(t, "b")
		f.Params = []*ir.Reg{a, c}
		f.Results = []types.Type{tc.Bool()}
		r := f.NewReg(tc.Bool(), "")
		op := ir.OpNe
		if eq {
			op = ir.OpEq
		}
		blk := f.NewBlock()
		blk.Instrs = append(blk.Instrs,
			&ir.Instr{Op: op, Dst: []*ir.Reg{r}, Args: []*ir.Reg{a, c}, Type: t},
			&ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{r}},
		)
		return f
	})
}

// genericCast returns $cast<F, T>(x: F) -> T or $query<F, T>(x: F) -> bool.
func (lw *Lowerer) genericCast(cast bool) *ir.Func {
	name := "$query"
	if cast {
		name = "$cast"
	}
	tc := lw.tc
	return lw.wrapper(name, func() *ir.Func {
		f := &ir.Func{Name: name, Kind: ir.KindWrapper, VtSlot: -1}
		fp := tc.NewTypeParamDef("F", 0, f)
		tp := tc.NewTypeParamDef("T", 1, f)
		f.TypeParams = []*types.TypeParamDef{fp, tp}
		ft := tc.ParamRef(fp)
		tt := tc.ParamRef(tp)
		x := f.NewReg(ft, "x")
		f.Params = []*ir.Reg{x}
		blk := f.NewBlock()
		if cast {
			f.Results = []types.Type{tt}
			r := f.NewReg(tt, "")
			blk.Instrs = append(blk.Instrs,
				&ir.Instr{Op: ir.OpTypeCast, Dst: []*ir.Reg{r}, Args: []*ir.Reg{x}, Type: tt, Type2: ft},
				&ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{r}},
			)
		} else {
			f.Results = []types.Type{tc.Bool()}
			r := f.NewReg(tc.Bool(), "")
			blk.Instrs = append(blk.Instrs,
				&ir.Instr{Op: ir.OpTypeQuery, Dst: []*ir.Reg{r}, Args: []*ir.Reg{x}, Type: tt, Type2: ft},
				&ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{r}},
			)
		}
		return f
	})
}

// arrayNewWrapper returns $Array.new<T>(n: int) -> Array<T>.
func (lw *Lowerer) arrayNewWrapper() *ir.Func {
	tc := lw.tc
	return lw.wrapper("$Array.new", func() *ir.Func {
		f := &ir.Func{Name: "$Array.new", Kind: ir.KindWrapper, VtSlot: -1}
		tp := tc.NewTypeParamDef("T", 0, f)
		f.TypeParams = []*types.TypeParamDef{tp}
		at := tc.ArrayOf(tc.ParamRef(tp))
		n := f.NewReg(tc.Int(), "n")
		f.Params = []*ir.Reg{n}
		f.Results = []types.Type{at}
		r := f.NewReg(at, "")
		blk := f.NewBlock()
		blk.Instrs = append(blk.Instrs,
			&ir.Instr{Op: ir.OpArrayNew, Dst: []*ir.Reg{r}, Args: []*ir.Reg{n}, Type: at},
			&ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{r}},
		)
		return f
	})
}

// builtinWrapper returns a function wrapping a component builtin so it
// can be used as a value (e.g. passing System.puti to apply).
func (lw *Lowerer) builtinWrapper(bf *typecheck.BuiltinFunc) *ir.Func {
	tc := lw.tc
	name := "$" + bf.Component + "." + bf.Name
	return lw.wrapper(name, func() *ir.Func {
		f := &ir.Func{Name: name, Kind: ir.KindWrapper, VtSlot: -1}
		var args []*ir.Reg
		if bf.Param != tc.Void() {
			p := f.NewReg(bf.Param, "a")
			f.Params = []*ir.Reg{p}
			args = []*ir.Reg{p}
		}
		f.Results = []types.Type{bf.Ret}
		blk := f.NewBlock()
		call := &ir.Instr{Op: ir.OpCallBuiltin, SVal: bf.Component + "." + bf.Name, Args: args}
		ret := &ir.Instr{Op: ir.OpRet}
		if bf.Ret != tc.Void() {
			r := f.NewReg(bf.Ret, "")
			call.Dst = []*ir.Reg{r}
			ret.Args = []*ir.Reg{r}
		}
		blk.Instrs = append(blk.Instrs, call, ret)
		return f
	})
}

// unboundWrapper returns the wrapper implementing A.m as a first-class
// function (b3): the receiver becomes the first parameter and dispatch
// stays virtual.
func (lw *Lowerer) unboundWrapper(m *typecheck.FuncSym) *ir.Func {
	tc := lw.tc
	name := m.Owner.Name + "." + m.Name + ".$unbound"
	return lw.wrapper(name, func() *ir.Func {
		f := &ir.Func{
			Name:           name,
			Kind:           ir.KindWrapper,
			TypeParams:     append(append([]*types.TypeParamDef{}, m.Owner.Def.TypeParams...), m.TypeParams...),
			NumClassParams: len(m.Owner.Def.TypeParams),
			VtSlot:         -1,
		}
		self := tc.SelfType(m.Owner.Def)
		recv := f.NewReg(self, "recv")
		f.Params = []*ir.Reg{recv}
		for i, pt := range m.ParamTypes {
			f.Params = append(f.Params, f.NewReg(pt, m.Params[i].Name.Name))
		}
		f.Results = []types.Type{m.Ret}
		margs := make([]types.Type, len(m.TypeParams))
		for i, tp := range m.TypeParams {
			margs[i] = tc.ParamRef(tp)
		}
		blk := f.NewBlock()
		call := &ir.Instr{
			Op:        ir.OpCallVirtual,
			Args:      f.Params,
			FieldSlot: m.VtSlot,
			Type:      self,
			TypeArgs:  margs,
		}
		ret := &ir.Instr{Op: ir.OpRet}
		if m.Ret != tc.Void() {
			r := f.NewReg(m.Ret, "")
			call.Dst = []*ir.Reg{r}
			ret.Args = []*ir.Reg{r}
		}
		blk.Instrs = append(blk.Instrs, call, ret)
		return f
	})
}

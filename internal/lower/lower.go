// Package lower translates the checked AST into polymorphic IR.
//
// Everything that can be used as a first-class function in the paper —
// constructors (b7), unbound class methods (b3), the universal and
// primitive operators (b8-b15), and built-in component functions — is
// lowered to a synthesized wrapper function, so a closure value is
// always (function, optional receiver, type arguments).
package lower

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/par"
	"repro/internal/src"
	"repro/internal/token"
	"repro/internal/typecheck"
	"repro/internal/types"
)

// Lowerer builds one IR module from a checked program.
type Lowerer struct {
	prog *typecheck.Program
	tc   *types.Cache
	mod  *ir.Module

	classOf  map[*typecheck.ClassSym]*ir.Class
	funcOf   map[*typecheck.FuncSym]*ir.Func
	ctorOf   map[*typecheck.ClassSym]*ir.Func
	allocOf  map[*typecheck.ClassSym]*ir.Func
	globalOf map[*typecheck.GlobalSym]*ir.Global
	// wrappers caches synthesized functions (operators, builtins,
	// unbound methods, the generic $eq/$cast/$query/$Array.new) by name.
	// Bodies are lowered concurrently, so access goes through wmu; the
	// synthesized functions are appended to the module sorted by name
	// after all bodies finish, keeping the function order identical for
	// every job count.
	wmu      sync.Mutex
	wrappers map[string]*ir.Func
}

// Lower converts prog into an IR module, lowering function bodies on up
// to jobs workers (jobs <= 1 lowers sequentially). The resulting module
// is byte-for-byte identical for every jobs value. A panic while
// lowering one body surfaces as a *src.ICE error when jobs > 1 and
// propagates as a panic when sequential — both are absorbed by the
// caller's stage boundary in core. A done ctx stops the fan-out and
// returns ctx.Err().
func Lower(ctx context.Context, prog *typecheck.Program, jobs int) (*ir.Module, error) {
	lw := &Lowerer{
		prog:     prog,
		tc:       prog.Types,
		mod:      &ir.Module{Types: prog.Types},
		classOf:  map[*typecheck.ClassSym]*ir.Class{},
		funcOf:   map[*typecheck.FuncSym]*ir.Func{},
		ctorOf:   map[*typecheck.ClassSym]*ir.Func{},
		allocOf:  map[*typecheck.ClassSym]*ir.Func{},
		globalOf: map[*typecheck.GlobalSym]*ir.Global{},
		wrappers: map[string]*ir.Func{},
	}
	lw.declareAll()
	if err := lw.lowerAll(ctx, jobs); err != nil {
		return nil, err
	}
	return lw.mod, nil
}

func (lw *Lowerer) addFunc(f *ir.Func) *ir.Func {
	lw.mod.Funcs = append(lw.mod.Funcs, f)
	return f
}

// declareAll creates IR classes, function shells, and globals so bodies
// can reference them in any order.
func (lw *Lowerer) declareAll() {
	tc := lw.tc
	// Classes first (parents before children is handled by recursion).
	var declClass func(cls *typecheck.ClassSym) *ir.Class
	declClass = func(cls *typecheck.ClassSym) *ir.Class {
		if c, ok := lw.classOf[cls]; ok {
			return c
		}
		c := &ir.Class{
			Name:       cls.Name,
			Def:        cls.Def,
			TypeParams: cls.Def.TypeParams,
			Depth:      cls.Depth,
			Type:       tc.SelfType(cls.Def),
		}
		c.Args = c.Type.Args
		lw.classOf[cls] = c
		if cls.Parent != nil {
			c.Parent = declClass(cls.Parent)
		}
		for _, f := range cls.AllFields {
			c.Fields = append(c.Fields, ir.Field{Name: f.Name, Type: f.Type})
		}
		lw.mod.Classes = append(lw.mod.Classes, c)
		return c
	}
	for _, cls := range lw.prog.Classes {
		declClass(cls)
	}

	// Method and function shells.
	declFunc := func(m *typecheck.FuncSym, owner *typecheck.ClassSym) {
		var f *ir.Func
		name := m.Name
		if owner != nil {
			name = owner.Name + "." + m.Name
			self := tc.SelfType(owner.Def)
			f = &ir.Func{
				Name:           name,
				Kind:           ir.KindMethod,
				TypeParams:     append(append([]*types.TypeParamDef{}, owner.Def.TypeParams...), m.TypeParams...),
				NumClassParams: len(owner.Def.TypeParams),
				Class:          lw.classOf[owner],
				VtSlot:         m.VtSlot,
			}
			f.Params = append(f.Params, f.NewReg(self, "this"))
		} else {
			f = &ir.Func{Name: name, Kind: ir.KindTopLevel, TypeParams: m.TypeParams, VtSlot: -1}
		}
		for i, p := range m.Params {
			f.Params = append(f.Params, f.NewReg(m.ParamTypes[i], p.Name.Name))
		}
		f.Results = []types.Type{m.Ret}
		lw.funcOf[m] = f
		lw.addFunc(f)
	}
	for _, cls := range lw.prog.Classes {
		for _, m := range cls.Methods {
			declFunc(m, cls)
		}
		// Constructor function C.new(this, params...) -> void.
		ct := cls.Ctor
		self := tc.SelfType(cls.Def)
		cf := &ir.Func{
			Name:           cls.Name + ".new",
			Kind:           ir.KindCtor,
			TypeParams:     cls.Def.TypeParams,
			NumClassParams: len(cls.Def.TypeParams),
			Class:          lw.classOf[cls],
			VtSlot:         -1,
		}
		cf.Params = append(cf.Params, cf.NewReg(self, "this"))
		for i, p := range ct.Params {
			cf.Params = append(cf.Params, cf.NewReg(ct.ParamTypes[i], p.Name.Name))
		}
		cf.Results = []types.Type{tc.Void()}
		lw.ctorOf[cls] = cf
		lw.addFunc(cf)
		// Allocator C.$alloc(params...) -> C (b7).
		af := &ir.Func{
			Name:           cls.Name + ".$alloc",
			Kind:           ir.KindAlloc,
			TypeParams:     cls.Def.TypeParams,
			NumClassParams: len(cls.Def.TypeParams),
			Class:          lw.classOf[cls],
			VtSlot:         -1,
		}
		for i, p := range ct.Params {
			af.Params = append(af.Params, af.NewReg(ct.ParamTypes[i], p.Name.Name))
		}
		af.Results = []types.Type{self}
		lw.allocOf[cls] = af
		lw.addFunc(af)
	}
	for _, fn := range lw.prog.Funcs {
		declFunc(fn, nil)
	}
	// Vtables.
	for _, cls := range lw.prog.Classes {
		c := lw.classOf[cls]
		c.Vtable = make([]*ir.Func, len(cls.Vtable))
		for i, m := range cls.Vtable {
			c.Vtable[i] = lw.funcOf[m]
		}
	}
	// Globals.
	for _, g := range lw.prog.Globals {
		ig := &ir.Global{Name: g.Name, Type: g.Type, Index: len(lw.mod.Globals)}
		lw.globalOf[g] = ig
		lw.mod.Globals = append(lw.mod.Globals, ig)
	}
}

// lowerAll fills in every function body. Bodies only read the shared
// declaration maps (frozen by declareAll) and write their own function,
// so they fan out on the worker pool; wrapper synthesis, the one shared
// mutation, is serialized behind wmu. $init and the name-sorted wrapper
// functions are appended after the fan-out, a deterministic order no
// matter which worker first demanded each wrapper.
func (lw *Lowerer) lowerAll(ctx context.Context, jobs int) error {
	var tasks []func()
	for _, cls := range lw.prog.Classes {
		cls := cls
		for _, m := range cls.Methods {
			m := m
			tasks = append(tasks, func() { lw.lowerMethodBody(cls, m) })
		}
		tasks = append(tasks, func() { lw.lowerCtor(cls) })
		tasks = append(tasks, func() { lw.lowerAlloc(cls) })
	}
	for _, fn := range lw.prog.Funcs {
		fn := fn
		tasks = append(tasks, func() { lw.lowerMethodBody(nil, fn) })
	}
	if err := par.Run(ctx, "lower", jobs, len(tasks), func(i int) error {
		tasks[i]()
		return nil
	}); err != nil {
		return err
	}
	lw.lowerInit()
	names := make([]string, 0, len(lw.wrappers))
	for name := range lw.wrappers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		lw.addFunc(lw.wrappers[name])
	}
	if m := lw.prog.Main; m != nil {
		lw.mod.Main = lw.funcOf[m]
	}
	return nil
}

// builder carries per-function lowering state.
type builder struct {
	lw     *Lowerer
	f      *ir.Func
	cur    *ir.Block
	locals map[any]*ir.Reg
	this   *ir.Reg
	// cls is the enclosing source class, for implicit-this resolution.
	cls *typecheck.ClassSym
	// pos is the source position of the statement or expression being
	// lowered; emit stamps it onto instructions so the interpreter can
	// render source-level stack traces.
	pos src.Pos
	// loop targets
	breaks, continues []*ir.Block
}

func (lw *Lowerer) newBuilder(f *ir.Func, cls *typecheck.ClassSym) *builder {
	b := &builder{lw: lw, f: f, locals: map[any]*ir.Reg{}, cls: cls}
	b.cur = f.NewBlock()
	return b
}

func (b *builder) tc() *types.Cache { return b.lw.tc }

func (b *builder) emit(in *ir.Instr) *ir.Instr {
	if !in.Pos.IsValid() {
		in.Pos = b.pos
	}
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

func (b *builder) emitOp(op ir.Op, dst *ir.Reg, args ...*ir.Reg) *ir.Instr {
	in := &ir.Instr{Op: op, Args: args}
	if dst != nil {
		in.Dst = []*ir.Reg{dst}
	}
	return b.emit(in)
}

// terminated reports whether the current block already ends.
func (b *builder) terminated() bool { return b.cur.Terminator() != nil }

func (b *builder) jump(target *ir.Block) {
	if !b.terminated() {
		b.emit(&ir.Instr{Op: ir.OpJump, Blocks: []*ir.Block{target}})
	}
}

func (b *builder) branch(cond *ir.Reg, yes, no *ir.Block) {
	b.emit(&ir.Instr{Op: ir.OpBranch, Args: []*ir.Reg{cond}, Blocks: []*ir.Block{yes, no}})
}

func (b *builder) constInt(v int64) *ir.Reg {
	r := b.f.NewReg(b.tc().Int(), "")
	b.emit(&ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{r}, IVal: v})
	return r
}

func (b *builder) constVoid() *ir.Reg {
	r := b.f.NewReg(b.tc().Void(), "")
	b.emit(&ir.Instr{Op: ir.OpConstVoid, Dst: []*ir.Reg{r}})
	return r
}

// lowerMethodBody lowers a method or top-level function.
func (lw *Lowerer) lowerMethodBody(cls *typecheck.ClassSym, m *typecheck.FuncSym) {
	f := lw.funcOf[m]
	if m.Abstract {
		b := lw.newBuilder(f, cls)
		b.emit(&ir.Instr{Op: ir.OpThrow, SVal: "!UnimplementedException"})
		return
	}
	b := lw.newBuilder(f, cls)
	off := 0
	if cls != nil {
		b.this = f.Params[0]
		off = 1
	}
	for i, p := range m.Params {
		b.locals[p] = f.Params[off+i]
	}
	b.lowerStmt(m.Decl.Body)
	if !b.terminated() {
		b.emit(&ir.Instr{Op: ir.OpRet})
	}
}

// lowerCtor builds C.new: super call, shorthand field params, field
// initializers, then the explicit body.
func (lw *Lowerer) lowerCtor(cls *typecheck.ClassSym) {
	f := lw.ctorOf[cls]
	ct := cls.Ctor
	b := lw.newBuilder(f, cls)
	b.this = f.Params[0]
	for i, p := range ct.Params {
		b.locals[p] = f.Params[1+i]
	}
	// Super constructor.
	if cls.Parent != nil {
		pctor := lw.ctorOf[cls.Parent]
		var args []*ir.Reg
		if ct.Decl != nil && ct.Decl.HasSuper {
			wants := make([]types.Type, len(cls.Parent.Ctor.ParamTypes))
			env := types.BindParams(cls.Parent.Def.TypeParams, cls.Def.ParentType.Args)
			for i, t := range cls.Parent.Ctor.ParamTypes {
				wants[i] = lw.tc.Subst(t, env)
			}
			args = b.adaptArgs(ct.Decl.SuperArgs, wants)
		}
		callArgs := append([]*ir.Reg{b.this}, args...)
		b.emit(&ir.Instr{Op: ir.OpCallStatic, Fn: pctor, Args: callArgs, TypeArgs: cls.Def.ParentType.Args})
	}
	// Field initializers (own fields only; parents handled their own).
	for _, fld := range cls.Fields {
		if fld.Init == nil {
			continue
		}
		v := b.lowerExpr(fld.Init)
		b.emit(&ir.Instr{Op: ir.OpFieldStore, Args: []*ir.Reg{b.this, v}, FieldSlot: fld.Slot})
	}
	// Shorthand parameter assignment (a4, f1-f5).
	for i, fp := range ct.FieldParams {
		if fp == nil {
			continue
		}
		b.emit(&ir.Instr{Op: ir.OpFieldStore, Args: []*ir.Reg{b.this, f.Params[1+i]}, FieldSlot: fp.Slot})
	}
	if ct.Decl != nil && ct.Decl.Body != nil {
		b.lowerStmt(ct.Decl.Body)
	}
	if !b.terminated() {
		b.emit(&ir.Instr{Op: ir.OpRet})
	}
}

// lowerAlloc builds C.$alloc: new object + constructor call.
func (lw *Lowerer) lowerAlloc(cls *typecheck.ClassSym) {
	f := lw.allocOf[cls]
	b := lw.newBuilder(f, cls)
	self := lw.tc.SelfType(cls.Def)
	obj := f.NewReg(self, "obj")
	b.emit(&ir.Instr{Op: ir.OpNewObject, Dst: []*ir.Reg{obj}, Type: self})
	args := append([]*ir.Reg{obj}, f.Params...)
	b.emit(&ir.Instr{Op: ir.OpCallStatic, Fn: lw.ctorOf[cls], Args: args, TypeArgs: self.Args})
	b.emit(&ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{obj}})
}

// lowerInit builds the $init function running global initializers, and
// records it on the module.
func (lw *Lowerer) lowerInit() {
	f := &ir.Func{Name: "$init", Kind: ir.KindInit, VtSlot: -1, Results: []types.Type{lw.tc.Void()}}
	b := lw.newBuilder(f, nil)
	for _, g := range lw.prog.Globals {
		if g.Decl.Init == nil {
			continue
		}
		v := b.lowerExpr(g.Decl.Init)
		b.emit(&ir.Instr{Op: ir.OpGlobalStore, Global: lw.globalOf[g], Args: []*ir.Reg{v}})
	}
	b.emit(&ir.Instr{Op: ir.OpRet})
	lw.mod.Init = f
	lw.addFunc(f)
}

// ---------------------------------------------------------------- stmts

func (b *builder) lowerStmt(s ast.Stmt) {
	if b.terminated() {
		return // unreachable code is dropped
	}
	b.pos = s.Pos()
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			b.lowerStmt(st)
		}
	case *ast.EmptyStmt:
	case *ast.LocalDecl:
		r := b.f.NewReg(s.TypeOf, s.Name.Name)
		b.locals[s] = r
		if s.Init != nil {
			v := b.lowerExpr(s.Init)
			b.emitOp(ir.OpMove, r, v)
		} else {
			b.emitDefault(r, s.TypeOf)
		}
	case *ast.ExprStmt:
		b.lowerExpr(s.E)
	case *ast.IfStmt:
		then := b.f.NewBlock()
		var els *ir.Block
		merge := b.f.NewBlock()
		if s.Else != nil {
			els = b.f.NewBlock()
		} else {
			els = merge
		}
		b.lowerCondBranch(s.Cond, then, els)
		b.cur = then
		b.lowerStmt(s.Then)
		b.jump(merge)
		if s.Else != nil {
			b.cur = els
			b.lowerStmt(s.Else)
			b.jump(merge)
		}
		b.cur = merge
	case *ast.WhileStmt:
		head := b.f.NewBlock()
		body := b.f.NewBlock()
		exit := b.f.NewBlock()
		b.jump(head)
		b.cur = head
		b.lowerCondBranch(s.Cond, body, exit)
		b.breaks = append(b.breaks, exit)
		b.continues = append(b.continues, head)
		b.cur = body
		b.lowerStmt(s.Body)
		b.jump(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit
	case *ast.ForStmt:
		if s.Var.Name != "" {
			r := b.f.NewReg(s.VarType, s.Var.Name)
			b.locals[s] = r
			v := b.lowerExpr(s.Init)
			b.emitOp(ir.OpMove, r, v)
		}
		head := b.f.NewBlock()
		body := b.f.NewBlock()
		post := b.f.NewBlock()
		exit := b.f.NewBlock()
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.lowerCondBranch(s.Cond, body, exit)
		} else {
			b.jump(body)
		}
		b.breaks = append(b.breaks, exit)
		b.continues = append(b.continues, post)
		b.cur = body
		b.lowerStmt(s.Body)
		b.jump(post)
		b.cur = post
		if s.Post != nil {
			b.lowerExpr(s.Post)
		}
		b.jump(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.cur = exit
	case *ast.ReturnStmt:
		if s.Value == nil {
			b.emit(&ir.Instr{Op: ir.OpRet})
			return
		}
		v := b.lowerExpr(s.Value)
		if v.Type == b.tc().Void() {
			b.emit(&ir.Instr{Op: ir.OpRet})
			return
		}
		b.emit(&ir.Instr{Op: ir.OpRet, Args: []*ir.Reg{v}})
	case *ast.BreakStmt:
		b.jump(b.breaks[len(b.breaks)-1])
	case *ast.ContinueStmt:
		b.jump(b.continues[len(b.continues)-1])
	default:
		panic(fmt.Sprintf("lower: unhandled statement %T", s))
	}
}

// emitDefault writes the default value of type t into r.
func (b *builder) emitDefault(r *ir.Reg, t types.Type) {
	switch t := t.(type) {
	case *types.Prim:
		switch t.Kind {
		case types.KindInt:
			b.emit(&ir.Instr{Op: ir.OpConstInt, Dst: []*ir.Reg{r}})
		case types.KindByte:
			b.emit(&ir.Instr{Op: ir.OpConstByte, Dst: []*ir.Reg{r}})
		case types.KindBool:
			b.emit(&ir.Instr{Op: ir.OpConstBool, Dst: []*ir.Reg{r}})
		default:
			b.emit(&ir.Instr{Op: ir.OpConstVoid, Dst: []*ir.Reg{r}})
		}
	case *types.Enum:
		b.emit(&ir.Instr{Op: ir.OpConstEnum, Dst: []*ir.Reg{r}, Type: t})
	case *types.Tuple:
		elems := make([]*ir.Reg, len(t.Elems))
		for i, et := range t.Elems {
			er := b.f.NewReg(et, "")
			b.emitDefault(er, et)
			elems[i] = er
		}
		b.emit(&ir.Instr{Op: ir.OpMakeTuple, Dst: []*ir.Reg{r}, Args: elems, Type: t})
	default:
		// Classes, arrays, functions, and open type parameters default
		// to null (type parameters are defaulted per-instantiation after
		// monomorphization; the interpreter substitutes at runtime).
		b.emit(&ir.Instr{Op: ir.OpConstNull, Dst: []*ir.Reg{r}, Type: t})
	}
}

// lowerCondBranch lowers a condition with short-circuiting directly into
// branches.
func (b *builder) lowerCondBranch(e ast.Expr, yes, no *ir.Block) {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.AndAnd:
			mid := b.f.NewBlock()
			b.lowerCondBranch(e.L, mid, no)
			b.cur = mid
			b.lowerCondBranch(e.R, yes, no)
			return
		case token.OrOr:
			mid := b.f.NewBlock()
			b.lowerCondBranch(e.L, yes, mid)
			b.cur = mid
			b.lowerCondBranch(e.R, yes, no)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.Not {
			b.lowerCondBranch(e.E, no, yes)
			return
		}
	}
	c := b.lowerExpr(e)
	b.branch(c, yes, no)
}

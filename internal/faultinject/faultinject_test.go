package faultinject

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"mono",
		"mono:panic",
		"mono:frob:0",
		"mono:panic:-1",
		"mono:panic:x",
		":panic:0",
		"norm:delay:0:abc",
		"norm:delay:0:-5",
		"mono:panic:0:1:2",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestParseEmptyDisables(t *testing.T) {
	r, err := Parse("  ")
	if err != nil || r != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", r, err)
	}
}

func TestErrFiresExactlyOnceAtNth(t *testing.T) {
	r, err := Parse("lower:err:2")
	if err != nil {
		t.Fatal(err)
	}
	defer Set(r)()
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		err := Point(ctx, "lower")
		if (i == 2) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
		if i == 2 && !errors.Is(err, ErrInjected) {
			t.Fatalf("want ErrInjected, got %v", err)
		}
	}
	if err := Point(ctx, "other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestPanicKind(t *testing.T) {
	r, err := Parse("mono:panic:0")
	if err != nil {
		t.Fatal(err)
	}
	defer Set(r)()
	defer func() {
		rec := recover()
		if rec == nil || !strings.Contains(rec.(string), "injected panic at mono") {
			t.Fatalf("recover() = %v", rec)
		}
	}()
	Point(context.Background(), "mono")
	t.Fatal("Point did not panic")
}

func TestDelayIsContextAware(t *testing.T) {
	r, err := Parse("norm:delay:0:10000")
	if err != nil {
		t.Fatal(err)
	}
	defer Set(r)()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	perr := Point(ctx, "norm")
	if !errors.Is(perr, context.Canceled) {
		t.Fatalf("Point = %v, want context.Canceled", perr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled delay took %v", elapsed)
	}
}

func TestConcurrentHitsFireOnce(t *testing.T) {
	r, err := Parse("par:err:25")
	if err != nil {
		t.Fatal(err)
	}
	defer Set(r)()
	var fired atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if Point(context.Background(), "par") != nil {
					fired.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if fired.Load() != 1 {
		t.Fatalf("fault fired %d times, want exactly 1", fired.Load())
	}
}

func TestEveryFiresFromNthOnward(t *testing.T) {
	r, err := Parse("peer-dial:err:2+")
	if err != nil {
		t.Fatal(err)
	}
	defer Set(r)()
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		err := Point(ctx, "peer-dial")
		if (i >= 2) != (err != nil) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: want ErrInjected, got %v", i, err)
		}
	}
}

func TestEveryParse(t *testing.T) {
	r, err := Parse("peer-stall:delay:0+:5")
	if err != nil {
		t.Fatal(err)
	}
	f := r.faults[0]
	if !f.Every || f.Nth != 0 || f.Delay != 5*time.Millisecond {
		t.Fatalf("parsed fault = %+v", f)
	}
	for _, spec := range []string{"p:err:+", "p:err:-1+", "p:err:1++"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): want error, got nil", spec)
		}
	}
}

func TestSetRestores(t *testing.T) {
	if Enabled() {
		t.Skip("VIRGIL_FAULT set in the environment")
	}
	r, _ := Parse("x:err:0")
	restore := Set(r)
	if !Enabled() {
		t.Fatal("Set did not enable")
	}
	restore()
	if Enabled() {
		t.Fatal("restore did not disable")
	}
}

func TestPoints(t *testing.T) {
	r, err := Parse("a:err:0,b:delay:1,a:panic:2")
	if err != nil {
		t.Fatal(err)
	}
	got := r.Points()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Points() = %v", got)
	}
}

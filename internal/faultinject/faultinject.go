// Package faultinject is a deterministic fault-injection registry for
// robustness testing. Production code calls Point(ctx, name) at the
// pipeline's stage boundaries (and inside the par worker pool); with no
// faults armed the call is a single atomic load. Tests — and operators
// reproducing a field failure — arm faults with the VIRGIL_FAULT
// environment variable or Set:
//
//	VIRGIL_FAULT=mono:panic:3        panic at the 4th mono boundary hit
//	VIRGIL_FAULT=norm:delay:1        sleep 50ms at the 2nd norm hit
//	VIRGIL_FAULT=par:err:0           error at the 1st pool item claim
//	VIRGIL_FAULT=lower:delay:0:200   sleep 200ms at the 1st lower hit
//	VIRGIL_FAULT=peer-dial:err:4+    error at every dial from the 5th on
//
// The spec grammar is a comma-separated list of point:kind:nth[:ms]
// where kind is panic, err, or delay and nth is the 0-based occurrence
// of that point at which the fault fires (exactly once per arming).
// An nth with a trailing "+" fires at that occurrence and EVERY one
// after it — the persistent form chaos harnesses use to model a peer
// that stays broken rather than one that glitches once.
// Occurrences are counted with an atomic per-fault counter, so WHICH
// call fires is deterministic even when points are hit concurrently;
// delays are context-aware so an injected stall never outlives the
// caller's cancellation.
//
// Point names are defined by their call sites. The catalog today:
// the pipeline stages "parse", "check", "lower", "mono", "norm",
// "opt", "validate", their "verify-<stage>" variants, the worker-pool
// item claim "par", and the execution boundary "interp". The bytecode
// path adds two engine-specific points the switch interpreter never
// crosses: "translate" (before IR-to-bytecode translation) and
// "engine" (after translation, before the first bytecode
// instruction) — these drive the serve tier's engine-fallback
// watchdog. The cluster tier's peer-forwarding client adds three
// network points: "peer-dial" (before a forwarded request is sent —
// an err here is a connection failure), "peer-stall" (a delay here is
// network latency on the forward path), and "peer-5xx" (after a peer
// response is received — an err here makes the forwarder treat the
// reply as a 500). These drive the retry/breaker/degradation ladder
// in internal/cluster.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Fault kinds.
const (
	KindPanic = "panic"
	KindErr   = "err"
	KindDelay = "delay"
)

// DefaultDelay is the stall injected by a delay fault with no explicit
// duration field.
const DefaultDelay = 50 * time.Millisecond

// ErrInjected is the sentinel wrapped by every err-kind fault, so tests
// can errors.Is their way past message formatting.
var ErrInjected = errors.New("faultinject: injected error")

// Fault is one armed fault: at the Nth hit of Point(Name) it panics,
// returns an error, or delays — exactly once, or (with Every) at that
// hit and every later one.
type Fault struct {
	Point string
	Kind  string
	Nth   int64
	Delay time.Duration
	// Every makes the fault persistent: it fires at occurrence Nth and
	// every occurrence after it (spec form "nth+").
	Every bool

	hits atomic.Int64
}

// Registry holds a set of armed faults.
type Registry struct {
	faults []*Fault
}

// Points returns the distinct point names with at least one armed
// fault, in arming order (used by docs/stats, not on hot paths).
func (r *Registry) Points() []string {
	var names []string
	seen := map[string]bool{}
	for _, f := range r.faults {
		if !seen[f.Point] {
			seen[f.Point] = true
			names = append(names, f.Point)
		}
	}
	return names
}

// Parse builds a registry from a VIRGIL_FAULT spec. An empty spec
// yields a nil registry (injection disabled).
func Parse(spec string) (*Registry, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	r := &Registry{}
	for _, one := range strings.Split(spec, ",") {
		f, err := parseOne(strings.TrimSpace(one))
		if err != nil {
			return nil, err
		}
		r.faults = append(r.faults, f)
	}
	return r, nil
}

func parseOne(s string) (*Fault, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return nil, fmt.Errorf("faultinject: bad spec %q (want point:kind:nth[:ms])", s)
	}
	f := &Fault{Point: parts[0], Kind: parts[1], Delay: DefaultDelay}
	if f.Point == "" {
		return nil, fmt.Errorf("faultinject: bad spec %q: empty point name", s)
	}
	switch f.Kind {
	case KindPanic, KindErr, KindDelay:
	default:
		return nil, fmt.Errorf("faultinject: bad spec %q: unknown kind %q (want panic, err, or delay)", s, f.Kind)
	}
	nthSpec := parts[2]
	if rest, ok := strings.CutSuffix(nthSpec, "+"); ok {
		f.Every = true
		nthSpec = rest
	}
	nth, err := strconv.ParseInt(nthSpec, 10, 64)
	if err != nil || nth < 0 {
		return nil, fmt.Errorf("faultinject: bad spec %q: nth must be a non-negative integer (optionally suffixed +)", s)
	}
	f.Nth = nth
	if len(parts) == 4 {
		ms, err := strconv.ParseInt(parts[3], 10, 64)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("faultinject: bad spec %q: ms must be a non-negative integer", s)
		}
		f.Delay = time.Duration(ms) * time.Millisecond
	}
	return f, nil
}

// current is the active registry; nil means injection is disabled and
// Point is one atomic load.
var current atomic.Pointer[Registry]

func init() {
	if spec := os.Getenv("VIRGIL_FAULT"); spec != "" {
		r, err := Parse(spec)
		if err != nil {
			// A typo'd spec must not silently disable the experiment the
			// operator thinks is running.
			panic(err)
		}
		current.Store(r)
	}
}

// Set installs r (nil disables injection) and returns a restore
// function for the previous registry. Tests use it to arm faults
// without mutating the process environment.
func Set(r *Registry) (restore func()) {
	prev := current.Swap(r)
	return func() { current.Store(prev) }
}

// Enabled reports whether any faults are armed.
func Enabled() bool { return current.Load() != nil }

// Point is the injection hook. When a fault armed for name reaches its
// Nth hit it fires: panic faults panic (to be converted by the caller's
// recovery boundary into a structured ICE), err faults return a wrapped
// ErrInjected, and delay faults stall for the configured duration or
// until ctx is cancelled, returning ctx.Err() in the latter case.
func Point(ctx context.Context, name string) error {
	r := current.Load()
	if r == nil {
		return nil
	}
	for _, f := range r.faults {
		if f.Point != name {
			continue
		}
		hit := f.hits.Add(1) - 1
		if f.Every {
			if hit < f.Nth {
				continue
			}
		} else if hit != f.Nth {
			continue
		}
		switch f.Kind {
		case KindPanic:
			panic(fmt.Sprintf("faultinject: injected panic at %s (occurrence %d)", name, f.Nth))
		case KindErr:
			return fmt.Errorf("%w at %s (occurrence %d)", ErrInjected, name, f.Nth)
		case KindDelay:
			t := time.NewTimer(f.Delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return nil
}

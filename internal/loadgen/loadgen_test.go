package loadgen

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/progen"
	"repro/internal/serve"
)

func TestRunAgainstLocalFleet(t *testing.T) {
	f, err := cluster.StartLocal(2, serve.Config{}, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = f.Stop(ctx)
	}()

	res, err := Run(context.Background(), Options{
		Targets:     f.URLs(),
		Mix:         progen.MixRunHeavy,
		Duration:    1500 * time.Millisecond,
		Concurrency: 3,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Answered == 0 {
		t.Fatalf("no traffic flowed: %+v", res)
	}
	if res.NonStructured != 0 || res.Mismatches != 0 || res.Unanswered != 0 {
		t.Fatalf("healthy fleet produced failures: %+v (samples %v)", res, res.SampleErrors)
	}
	if res.AnsweredRatio() < 0.99 {
		t.Fatalf("answered ratio %.4f", res.AnsweredRatio())
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms {
		t.Fatalf("nonsensical percentiles: p50=%.2f p99=%.2f", res.P50Ms, res.P99Ms)
	}
	// Two nodes: roughly half the programs belong to the other node, so
	// forwarding must actually have happened.
	if res.Forwarded == 0 {
		t.Fatalf("no request was forwarded across the fleet: %+v", res)
	}
}

func TestRunCrasherMixClassification(t *testing.T) {
	f, err := cluster.StartLocal(1, serve.Config{}, cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = f.Stop(ctx)
	}()

	res, err := Run(context.Background(), Options{
		Targets:     f.URLs(),
		Mix:         progen.MixCrashers,
		Duration:    2 * time.Second,
		Concurrency: 2,
		MaxRequests: 30,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Crashers answer ok:false with structured traps — the harness must
	// count them as answered, not as mismatches or daemon failures.
	if res.NonStructured != 0 || res.Mismatches != 0 {
		t.Fatalf("crasher traffic misclassified: %+v (samples %v)", res, res.SampleErrors)
	}
	if res.Answered != res.Sent || res.Sent == 0 {
		t.Fatalf("answered=%d sent=%d", res.Answered, res.Sent)
	}
}

func TestUnknownMixRejected(t *testing.T) {
	if _, err := Run(context.Background(), Options{Targets: []string{"http://x"}, Mix: "nope"}); err == nil {
		t.Fatal("unknown mix accepted")
	}
	if _, err := Run(context.Background(), Options{}); err == nil {
		t.Fatal("no targets accepted")
	}
}

// Package loadgen replays progen traffic mixes against a fleet of
// virgil-serve instances and reports latency percentiles plus a full
// error taxonomy. It is the measurement half of the cluster chaos
// harness: cmd/loadgen drives it from the command line, cmd/bench
// drives it for the Cluster_* BENCH series, and the CI cluster smoke
// job gates on its structured-error invariant.
//
// The generator is deliberately a *client*: it talks to the fleet over
// real HTTP, fails over to another target when a connection dies (a
// killed instance is the client's problem to route around), and
// classifies every byte it gets back. The core invariant it measures —
// the one the cluster tier promises — is that every answered request
// is structured JSON: a Go stack trace or a bare-string error in a
// response body counts as NonStructured, the red metric that must stay
// zero through any chaos schedule.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/progen"
	"repro/internal/serve"
)

// Options configures one load-generation run.
type Options struct {
	// Targets are the fleet entry points (base URLs).
	Targets []string
	// Mix names the progen traffic mix to replay (see progen.MixNames).
	Mix string
	// Duration bounds the run (default 5s). The run also stops when the
	// context does.
	Duration time.Duration
	// Concurrency is the number of client workers (default 4).
	Concurrency int
	// RequestTimeout bounds one request round-trip (default 15s).
	RequestTimeout time.Duration
	// Seed makes the weighted item choice deterministic per worker.
	Seed int64
	// MaxRequests optionally bounds the total number of requests
	// (0 = unbounded; the duration is the only stop).
	MaxRequests int64
}

// Result is the aggregated outcome of a run.
type Result struct {
	Mix      string        `json:"mix"`
	Targets  int           `json:"targets"`
	Duration time.Duration `json:"duration"`

	Sent     int64 `json:"sent"`
	Answered int64 `json:"answered"` // got any HTTP response that parsed as structured JSON
	// Unanswered counts requests no fleet target would answer even
	// after failover — the availability failures.
	Unanswered int64 `json:"unanswered"`
	// Failovers counts transport-level retries against another target
	// (connection refused/reset by a killed instance).
	Failovers int64 `json:"failovers"`
	// NonStructured counts responses whose body was not structured
	// JSON, or leaked a Go stack. The invariant metric: must be zero.
	NonStructured int64 `json:"non_structured"`
	// Mismatches counts items whose ok-ness disagreed with the mix's
	// expectation (e.g. a crasher that "succeeded", a clean program
	// that failed for a non-capacity reason).
	Mismatches int64 `json:"mismatches"`

	// Taxonomy: HTTP status -> count, error kind -> count, and the
	// cluster-path counters observed in response decorations.
	Status    map[string]int64 `json:"status"`
	Kinds     map[string]int64 `json:"kinds,omitempty"`
	Forwarded int64            `json:"forwarded"`
	Degraded  int64            `json:"degraded"`
	Hedged    int64            `json:"hedged"`

	// Latency percentiles over answered requests.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// SampleErrors holds a few representative failures for triage.
	SampleErrors []string `json:"sample_errors,omitempty"`
}

// AnsweredRatio is the fraction of sent requests that got a structured
// answer from some target.
func (r Result) AnsweredRatio() float64 {
	if r.Sent == 0 {
		return 1
	}
	return float64(r.Answered) / float64(r.Sent)
}

// Run replays the mix against the targets until the duration elapses.
func Run(ctx context.Context, opts Options) (Result, error) {
	if len(opts.Targets) == 0 {
		return Result{}, fmt.Errorf("loadgen: no targets")
	}
	if opts.Mix == "" {
		opts.Mix = progen.MixMixed
	}
	items, ok := progen.Mixes()[opts.Mix]
	if !ok {
		return Result{}, fmt.Errorf("loadgen: unknown mix %q (have %s)", opts.Mix, strings.Join(progen.MixNames(), ", "))
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 4
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 15 * time.Second
	}

	ctx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	client := &http.Client{Timeout: opts.RequestTimeout}
	defer client.CloseIdleConnections()

	var mu sync.Mutex
	res := Result{
		Mix: opts.Mix, Targets: len(opts.Targets),
		Status: map[string]int64{}, Kinds: map[string]int64{},
	}
	var latencies []time.Duration
	var budget int64 // remaining requests when MaxRequests > 0

	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			for n := 0; ctx.Err() == nil; n++ {
				if opts.MaxRequests > 0 {
					mu.Lock()
					if budget >= opts.MaxRequests {
						mu.Unlock()
						return
					}
					budget++
					mu.Unlock()
				}
				item := pickWeighted(rng, items)
				out := oneRequest(ctx, client, opts.Targets, (w+n)%len(opts.Targets), item)
				mu.Lock()
				res.Sent++
				res.Failovers += out.failovers
				if out.err != "" && len(res.SampleErrors) < 8 {
					res.SampleErrors = append(res.SampleErrors, out.err)
				}
				switch {
				case out.nonStructured:
					res.NonStructured++
				case !out.answered:
					// A request cancelled by the run's own deadline is not
					// an availability failure; anything else is.
					if ctx.Err() == nil {
						res.Unanswered++
					} else {
						res.Sent--
					}
				default:
					res.Answered++
					res.Status[fmt.Sprintf("%d", out.status)]++
					if out.kind != "" {
						res.Kinds[out.kind]++
					}
					if out.mismatch {
						res.Mismatches++
					}
					if out.forwarded {
						res.Forwarded++
					}
					if out.degraded {
						res.Degraded++
					}
					if out.hedged {
						res.Hedged++
					}
					latencies = append(latencies, out.latency)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	res.Duration = opts.Duration
	res.P50Ms = percentileMs(latencies, 0.50)
	res.P90Ms = percentileMs(latencies, 0.90)
	res.P99Ms = percentileMs(latencies, 0.99)
	res.MaxMs = percentileMs(latencies, 1.0)
	return res, nil
}

// outcome is one request's classified result.
type outcome struct {
	answered      bool
	nonStructured bool
	mismatch      bool
	status        int
	kind          string
	forwarded     bool
	degraded      bool
	hedged        bool
	latency       time.Duration
	failovers     int64
	err           string
}

// oneRequest sends item to the fleet, failing over across targets on
// transport errors, and classifies whatever comes back.
func oneRequest(ctx context.Context, client *http.Client, targets []string, first int, item progen.TrafficItem) outcome {
	body, err := json.Marshal(serve.Request{
		Files:    []serve.FileJSON{{Name: item.FileName, Source: item.Source}},
		Tenant:   item.Tenant,
		MaxSteps: item.MaxSteps,
		MaxHeap:  item.MaxHeap,
	})
	if err != nil {
		return outcome{err: "marshal: " + err.Error()}
	}
	var out outcome
	start := time.Now()
	// Two passes over the targets: a request that lands on a dying
	// connection retries everywhere once more before giving up.
	for try := 0; try < 2*len(targets); try++ {
		if ctx.Err() != nil {
			return out
		}
		if try > 0 {
			out.failovers++
		}
		url := targets[(first+try)%len(targets)] + item.Path
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if rerr != nil {
			out.err = "request: " + rerr.Error()
			return out
		}
		req.Header.Set("Content-Type", "application/json")
		httpRes, derr := client.Do(req)
		if derr != nil {
			out.err = "transport: " + derr.Error()
			continue // dead or stalling target; fail over
		}
		raw, rerr2 := io.ReadAll(io.LimitReader(httpRes.Body, 64<<20))
		httpRes.Body.Close()
		if rerr2 != nil {
			out.err = "read: " + rerr2.Error()
			continue // connection died mid-body; fail over
		}
		out.latency = time.Since(start)
		out.status = httpRes.StatusCode
		if bytes.Contains(raw, []byte("goroutine ")) {
			out.nonStructured = true
			out.err = fmt.Sprintf("%s: stack leak in response: %.120q", item.Name, raw)
			return out
		}
		var resp serve.Response
		if jerr := json.Unmarshal(raw, &resp); jerr != nil {
			out.nonStructured = true
			out.err = fmt.Sprintf("%s: non-JSON response (status %d): %.120q", item.Name, httpRes.StatusCode, raw)
			return out
		}
		out.answered = true
		if resp.Error != nil {
			out.kind = resp.Error.Kind
		}
		out.forwarded = resp.ForwardedFrom != ""
		out.degraded = resp.Degraded
		out.hedged = resp.Hedged
		out.mismatch = classifyMismatch(item, httpRes.StatusCode, resp)
		if out.mismatch {
			out.err = fmt.Sprintf("%s: expectation mismatch (status %d ok=%v kind=%s)", item.Name, httpRes.StatusCode, resp.OK, out.kind)
		}
		return out
	}
	return out
}

// classifyMismatch reports whether the answer disagrees with the
// item's healthy-path expectation. Capacity and quota pushback (429)
// and drain rejections (503) are legitimate answers for any item under
// load, never mismatches.
func classifyMismatch(item progen.TrafficItem, status int, resp serve.Response) bool {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		return false
	}
	if item.WantOK {
		return !resp.OK
	}
	// Crashers/diagnostics/hungry: ok:false with a structured trap,
	// diagnostic, or resource error. A clean success is the mismatch.
	return resp.OK
}

func pickWeighted(rng *rand.Rand, items []progen.TrafficItem) progen.TrafficItem {
	total := 0
	for _, it := range items {
		total += max(it.Weight, 1)
	}
	n := rng.Intn(total)
	for _, it := range items {
		n -= max(it.Weight, 1)
		if n < 0 {
			return it
		}
	}
	return items[len(items)-1]
}

func percentileMs(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

package analysis

import (
	"context"

	"repro/internal/ir"
	"repro/internal/par"
)

// Config controls how Analyze runs. The zero value is valid.
type Config struct {
	// Jobs bounds the per-function fan-out (CFG construction and
	// interval propagation); <= 1 runs inline. Whole-program phases
	// (call graph, escape and effect fixpoints) are sequential barriers
	// either way, so results are identical at every worker count.
	Jobs int
}

// AllocSite is one heap-charged allocation instruction and its escape
// verdict.
type AllocSite struct {
	Instr   *ir.Instr
	Escapes bool
}

// FuncFacts is everything the analyses learned about one function.
type FuncFacts struct {
	Fn  *ir.Func
	CFG *CFG
	// Effects is the interprocedural effect summary.
	Effects Effect
	// ParamEscapes[i] reports whether parameter i may escape the
	// function (including by being returned).
	ParamEscapes []bool
	// EscapingRegs is the full may-escape register set.
	EscapingRegs map[*ir.Reg]bool
	// AllocSites lists every heap-charged allocation in instruction
	// order with its verdict; NonEscaping is the subset that stays
	// frame-local.
	AllocSites  []AllocSite
	NonEscaping []*ir.Instr
	// Intervals maps integer registers to their value ranges.
	Intervals map[*ir.Reg]Interval
}

// Result is the whole-program analysis output.
type Result struct {
	Mod       *ir.Module
	CallGraph *CallGraph
	// Funcs is index-aligned with Mod.Funcs.
	Funcs []*FuncFacts

	byFn map[*ir.Func]*FuncFacts
}

// FactsFor returns the facts of fn, or nil for a function outside the
// analyzed module.
func (r *Result) FactsFor(fn *ir.Func) *FuncFacts { return r.byFn[fn] }

// Analyze runs the whole analysis stack over mod: per-function CFGs,
// the call graph, then the escape, effect, and interval fixpoints.
// It never mutates mod, so stale results can coexist with further
// transformation — consumers re-run Analyze after changing the IR.
func Analyze(ctx context.Context, mod *ir.Module, cfg Config) (*Result, error) {
	res := &Result{
		Mod:   mod,
		Funcs: make([]*FuncFacts, len(mod.Funcs)),
		byFn:  make(map[*ir.Func]*FuncFacts, len(mod.Funcs)),
	}
	// Per-function, embarrassingly parallel work: workers write only
	// into their own index slot (the par.Run determinism contract).
	err := par.Run(ctx, "analysis", cfg.Jobs, len(mod.Funcs), func(i int) error {
		f := mod.Funcs[i]
		facts := &FuncFacts{Fn: f, CFG: BuildCFG(f)}
		facts.Intervals = computeIntervals(f, facts.CFG)
		res.Funcs[i] = facts
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, f := range mod.Funcs {
		res.byFn[f] = res.Funcs[i]
	}
	// Whole-program phases; each is deterministic given the module.
	res.CallGraph = buildCallGraph(mod)
	computeEscapes(res)
	computeEffects(res)
	return res, nil
}

package analysis

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/types"
)

// CallGraph is the whole-program call graph: class-hierarchy analysis
// (a virtual call at slot s on static class C can reach any
// implementation of s in C's subtree) refined by rapid type analysis
// (only subclasses the program actually instantiates count, and only
// closures the program actually creates can flow to an indirect call).
//
// Indirect-call resolution is arity-based over the taken-closure set:
// a first-class function value can only be an OpMakeClosure result or
// an OpMakeBound over an instantiated class, so the possible targets
// of f(args...) are the taken functions accepting len(args) values.
// This is what lets the optimizer devirtualize through closures, which
// the old local-only heuristic in opt/devirt.go could not see.
type CallGraph struct {
	Mod *ir.Module
	// Nodes is index-aligned with Mod.Funcs.
	Nodes []*CGNode
	// Instantiated is the RTA set: classes some reachable OpNewObject
	// creates. Virtual dispatch can only land on their vtables.
	Instantiated map[*ir.Class]bool
	// Taken is the set of functions whose closures exist at runtime:
	// OpMakeClosure targets plus vtable entries reachable from
	// OpMakeBound sites over instantiated classes.
	Taken map[*ir.Func]bool
	// Reachable marks functions reachable from main and the global
	// initializer through resolved edges.
	Reachable map[*ir.Func]bool

	// takenClosure and takenBound split Taken by provenance: a plain
	// closure invoked with n values targets an n-parameter function,
	// while a bound method carries its receiver as a hidden leading
	// argument and targets an (n+1)-parameter function. Indirect-call
	// resolution must consult both arities.
	takenClosure map[*ir.Func]bool
	takenBound   map[*ir.Func]bool

	byFn    map[*ir.Func]*CGNode
	byClass map[*types.Class]*ir.Class
}

// CGNode is one function's calls.
type CGNode struct {
	Fn *ir.Func
	// Callees are the distinct resolved targets in deterministic order
	// (module function order).
	Callees []*ir.Func
	// Sites maps each call instruction to its resolved targets.
	// Builtin calls have no entry. A nil slice means the site is
	// unresolved (open receiver type): the caller must assume anything.
	Sites map[*ir.Instr][]*ir.Func
	// Unresolved counts sites whose targets are unknown.
	Unresolved int
	// InCycle marks functions on a call-graph cycle (possibly mutual
	// recursion); unresolved callees conservatively count as cycles.
	InCycle bool
}

// NodeFor returns the node of fn, or nil for a function outside the
// module.
func (cg *CallGraph) NodeFor(fn *ir.Func) *CGNode { return cg.byFn[fn] }

// TargetsOf returns the resolved targets of call site in within fn,
// and whether the site is resolved at all.
func (cg *CallGraph) TargetsOf(fn *ir.Func, in *ir.Instr) ([]*ir.Func, bool) {
	n := cg.byFn[fn]
	if n == nil {
		return nil, false
	}
	ts, ok := n.Sites[in]
	return ts, ok && ts != nil
}

// buildCallGraph constructs the call graph over the whole module.
// Collection is whole-module rather than reachability-seeded: the
// pipeline in front of this pass (monomorphization) already prunes
// unreachable specializations, so scanning everything keeps the
// builder a simple two-pass loop with deterministic output.
func buildCallGraph(mod *ir.Module) *CallGraph {
	cg := &CallGraph{
		Mod:          mod,
		Instantiated: map[*ir.Class]bool{},
		Taken:        map[*ir.Func]bool{},
		Reachable:    map[*ir.Func]bool{},
		takenClosure: map[*ir.Func]bool{},
		takenBound:   map[*ir.Func]bool{},
		byFn:         map[*ir.Func]*CGNode{},
		byClass:      map[*types.Class]*ir.Class{},
	}
	for _, c := range mod.Classes {
		cg.byClass[c.Type] = c
	}

	// Pass 1: collect the RTA sets — instantiated classes and taken
	// closures. Bound-method sites are slot-based, so they are resolved
	// against the instantiated set after it is complete.
	type boundSite struct {
		cls  *ir.Class
		slot int
	}
	var bounds []boundSite
	for _, f := range mod.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				switch in.Op {
				case ir.OpNewObject:
					if c := cg.classOf(in.Type); c != nil {
						cg.Instantiated[c] = true
					}
				case ir.OpMakeClosure:
					if in.Fn != nil {
						cg.Taken[in.Fn] = true
						cg.takenClosure[in.Fn] = true
					}
				case ir.OpMakeBound:
					if c := cg.classOf(in.Args[0].Type); c != nil {
						bounds = append(bounds, boundSite{c, in.FieldSlot})
					}
				}
			}
		}
	}
	for _, bs := range bounds {
		for _, t := range cg.vtableTargets(bs.cls, bs.slot) {
			cg.Taken[t] = true
			cg.takenBound[t] = true
		}
	}

	// Pass 2: resolve every call site.
	cg.Nodes = make([]*CGNode, len(mod.Funcs))
	order := map[*ir.Func]int{}
	for i, f := range mod.Funcs {
		order[f] = i
	}
	for i, f := range mod.Funcs {
		n := &CGNode{Fn: f, Sites: map[*ir.Instr][]*ir.Func{}}
		cg.Nodes[i] = n
		cg.byFn[f] = n
		seen := map[*ir.Func]bool{}
		addTargets := func(in *ir.Instr, ts []*ir.Func) {
			if ts == nil {
				n.Sites[in] = nil
				n.Unresolved++
				return
			}
			n.Sites[in] = ts
			for _, t := range ts {
				if !seen[t] {
					seen[t] = true
					n.Callees = append(n.Callees, t)
				}
			}
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				switch in.Op {
				case ir.OpCallStatic:
					if in.Fn != nil {
						addTargets(in, []*ir.Func{in.Fn})
					} else {
						addTargets(in, nil)
					}
				case ir.OpCallVirtual:
					if c := cg.classOf(in.Type); c != nil {
						addTargets(in, cg.vtableTargets(c, in.FieldSlot))
					} else {
						// Open receiver type (pre-mono IR): any override.
						addTargets(in, nil)
					}
				case ir.OpCallIndirect:
					addTargets(in, cg.indirectTargets(len(in.Args)-1))
				}
			}
		}
		sort.Slice(n.Callees, func(a, b int) bool { return order[n.Callees[a]] < order[n.Callees[b]] })
	}

	cg.markReachable()
	cg.markCycles(order)
	return cg
}

// classOf maps a static receiver type to its IR class, or nil when the
// type is open or not a class.
func (cg *CallGraph) classOf(t types.Type) *ir.Class {
	ct, ok := t.(*types.Class)
	if !ok {
		return nil
	}
	return cg.byClass[ct]
}

// vtableTargets returns the distinct implementations of slot reachable
// from a receiver statically typed c, restricted to instantiated
// classes, in module class order. A null receiver traps before
// dispatch, so an empty result means the call can only trap.
func (cg *CallGraph) vtableTargets(c *ir.Class, slot int) []*ir.Func {
	var out []*ir.Func
	seen := map[*ir.Func]bool{}
	for _, d := range cg.Mod.Classes {
		if !cg.Instantiated[d] || !d.IsSubclassOf(c) {
			continue
		}
		if slot >= len(d.Vtable) || d.Vtable[slot] == nil {
			continue
		}
		if t := d.Vtable[slot]; !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	if out == nil {
		out = []*ir.Func{}
	}
	return out
}

// indirectTargets returns every taken function an indirect call
// passing nargs values could reach, in module function order: plain
// closures of nargs parameters, plus bound methods of nargs+1
// parameters (the hidden receiver).
func (cg *CallGraph) indirectTargets(nargs int) []*ir.Func {
	var out []*ir.Func
	for _, f := range cg.Mod.Funcs {
		if (cg.takenClosure[f] && len(f.Params) == nargs) ||
			(cg.takenBound[f] && len(f.Params) == nargs+1) {
			out = append(out, f)
		}
	}
	if out == nil {
		out = []*ir.Func{}
	}
	return out
}

// UniqueIndirectTarget resolves an indirect call passing nargs values
// to a single statically callable target: exactly one plain-closure
// candidate and no bound-method candidate (a bound closure's receiver
// lives only in the runtime function value, so the call cannot be
// rewritten to a direct call).
func (cg *CallGraph) UniqueIndirectTarget(nargs int) (*ir.Func, bool) {
	var target *ir.Func
	for _, f := range cg.Mod.Funcs {
		if cg.takenBound[f] && len(f.Params) == nargs+1 {
			return nil, false
		}
		if cg.takenClosure[f] && len(f.Params) == nargs {
			if target != nil {
				return nil, false
			}
			target = f
		}
	}
	return target, target != nil
}

// markReachable floods the resolved edges from main and the global
// initializer. Unresolved sites conservatively reach every taken
// function.
func (cg *CallGraph) markReachable() {
	var work []*ir.Func
	push := func(f *ir.Func) {
		if f != nil && !cg.Reachable[f] {
			cg.Reachable[f] = true
			work = append(work, f)
		}
	}
	push(cg.Mod.Init)
	push(cg.Mod.Main)
	for len(work) > 0 {
		f := work[0]
		work = work[1:]
		n := cg.byFn[f]
		if n == nil {
			continue
		}
		for _, t := range n.Callees {
			push(t)
		}
		if n.Unresolved > 0 {
			for _, g := range cg.Mod.Funcs {
				if cg.Taken[g] {
					push(g)
				}
			}
		}
		// A taken closure can be invoked by any indirect site reachable
		// later; treat taken functions created here as reachable.
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.OpMakeClosure && in.Fn != nil {
					push(in.Fn)
				}
				if in.Op == ir.OpMakeBound {
					if c := cg.classOf(in.Args[0].Type); c != nil {
						for _, t := range cg.vtableTargets(c, in.FieldSlot) {
							push(t)
						}
					}
				}
			}
		}
	}
}

// markCycles finds call-graph SCCs (iterative Tarjan over resolved
// edges) and flags every function on a cycle; a function with
// unresolved call sites is conservatively cyclic too, since the
// unknown callee could call back.
func (cg *CallGraph) markCycles(order map[*ir.Func]int) {
	n := len(cg.Nodes)
	idx := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range idx {
		idx[i] = -1
	}
	succs := make([][]int, n)
	for i, node := range cg.Nodes {
		for _, c := range node.Callees {
			succs[i] = append(succs[i], order[c])
		}
	}
	var stack []int
	counter := 0
	type frame struct{ v, next int }
	for root := 0; root < n; root++ {
		if idx[root] != -1 {
			continue
		}
		work := []frame{{v: root}}
		idx[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			top := &work[len(work)-1]
			v := top.v
			if top.next < len(succs[v]) {
				w := succs[v][top.next]
				top.next++
				if idx[w] == -1 {
					idx[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w})
				} else if onStack[w] && idx[w] < low[v] {
					low[v] = idx[w]
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				if len(scc) > 1 {
					for _, w := range scc {
						cg.Nodes[w].InCycle = true
					}
				} else {
					w := scc[0]
					for _, s := range succs[w] {
						if s == w {
							cg.Nodes[w].InCycle = true
						}
					}
				}
			}
		}
	}
	for _, node := range cg.Nodes {
		if node.Unresolved > 0 {
			node.InCycle = true
		}
	}
}

package analysis

import "repro/internal/ir"

// Escape analysis: a value "escapes" its creating frame when it can be
// observed after the frame returns — it is returned or thrown, stored
// into an object, array, or global, captured by a bound-method
// closure, or passed to a callee that lets the corresponding parameter
// escape. An allocation whose result register never escapes is
// frame-local: both engines may skip its modeled heap charge (stack
// promotion) without changing any observable behavior except the
// HeapBytes meter itself.
//
// The analysis is interprocedural: each function gets a parameter
// summary (does param i escape from the callee?), and the summaries
// are iterated to a least fixpoint over the call graph. Starting from
// the optimistic "nothing escapes" bottom and applying monotone rules
// converges to the least sound may-escape solution, so recursion needs
// no special casing.
//
// Deliberate conservatisms, in both directions of the cost model:
//   - Builtins (System.puts and friends) do not retain their
//     arguments — they copy bytes to the output stream — so builtin
//     call arguments do not escape.
//   - A bound-method receiver (OpMakeBound Args[0]) always escapes:
//     the closure may flow to call sites this pass does not track
//     pairwise, and the target method could leak its receiver.
//   - Returning a value counts as escaping, which keeps synthesized
//     allocator functions (A.new returns the object) honest; callers
//     see the allocation as local only after the allocator is inlined.
type escapeState struct {
	res *Result
	// summaries[f][i] reports whether f's parameter i may escape f
	// (including by being returned).
	summaries map[*ir.Func][]bool
}

// computeEscapes fills FuncFacts.EscapingRegs, ParamEscapes, and
// NonEscaping for every function in res.
func computeEscapes(res *Result) {
	es := &escapeState{res: res, summaries: map[*ir.Func][]bool{}}
	for _, f := range res.Mod.Funcs {
		es.summaries[f] = make([]bool, len(f.Params))
	}
	// Global fixpoint: recompute every function against the current
	// summaries until no summary changes. Functions are visited in
	// module order, so the iteration — and therefore every derived
	// artifact — is deterministic.
	for changed := true; changed; {
		changed = false
		for _, f := range res.Mod.Funcs {
			esc := es.escapingRegs(f)
			sum := es.summaries[f]
			for i, p := range f.Params {
				if esc[p] && !sum[i] {
					sum[i] = true
					changed = true
				}
			}
		}
	}
	// Final pass: record per-function facts against the fixed summaries.
	for i, f := range res.Mod.Funcs {
		facts := res.Funcs[i]
		esc := es.escapingRegs(f)
		facts.EscapingRegs = esc
		facts.ParamEscapes = es.summaries[f]
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if !IsAlloc(in) || len(in.Dst) == 0 {
					continue
				}
				escapes := false
				for _, d := range in.Dst {
					if esc[d] {
						escapes = true
					}
				}
				facts.AllocSites = append(facts.AllocSites, AllocSite{Instr: in, Escapes: escapes})
				if !escapes {
					facts.NonEscaping = append(facts.NonEscaping, in)
				}
			}
		}
	}
}

// escapingRegs computes the set of registers of f whose values may
// escape the frame, under the current callee summaries. The local
// rules are iterated to a fixpoint because escape propagates backward
// through value-transparent instructions (moves, casts, aggregates).
func (es *escapeState) escapingRegs(f *ir.Func) map[*ir.Reg]bool {
	esc := map[*ir.Reg]bool{}
	mark := func(r *ir.Reg) bool {
		if r == nil || esc[r] {
			return false
		}
		esc[r] = true
		return true
	}
	cgNode := es.res.CallGraph.NodeFor(f)
	for changed := true; changed; {
		changed = false
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				switch in.Op {
				case ir.OpRet, ir.OpThrow:
					for _, a := range in.Args {
						if mark(a) {
							changed = true
						}
					}
				case ir.OpGlobalStore:
					if mark(in.Args[0]) {
						changed = true
					}
				case ir.OpFieldStore:
					// The stored value escapes into the object; the object
					// itself does not escape by being stored into.
					if mark(in.Args[1]) {
						changed = true
					}
				case ir.OpArrayStore:
					if mark(in.Args[2]) {
						changed = true
					}
				case ir.OpMove, ir.OpTypeCast:
					if len(in.Dst) > 0 && esc[in.Dst[0]] && mark(in.Args[0]) {
						changed = true
					}
				case ir.OpMakeTuple:
					// A tuple escaping carries its elements with it.
					if len(in.Dst) > 0 && esc[in.Dst[0]] {
						for _, a := range in.Args {
							if mark(a) {
								changed = true
							}
						}
					}
				case ir.OpMakeBound:
					// The receiver is captured by the closure; see the
					// conservatism note above.
					if mark(in.Args[0]) {
						changed = true
					}
				case ir.OpCallStatic:
					// Arity-bent sites (tuple args adapted at runtime in
					// pre-normalized IR) cannot be mapped parameterwise.
					if in.Fn == nil || len(in.Args) != len(in.Fn.Params) {
						for _, a := range in.Args {
							if mark(a) {
								changed = true
							}
						}
						continue
					}
					for k, a := range in.Args {
						if es.paramEscapes(in.Fn, k) && mark(a) {
							changed = true
						}
					}
				case ir.OpCallVirtual, ir.OpCallIndirect:
					targets, resolved := []*ir.Func(nil), false
					if cgNode != nil {
						ts, ok := cgNode.Sites[in]
						targets, resolved = ts, ok && ts != nil
					}
					// For indirect calls, Args[0] is the invoked closure:
					// invoking it does not make the closure itself escape.
					args := in.Args
					if in.Op == ir.OpCallIndirect {
						args = in.Args[1:]
					}
					if !resolved {
						for _, a := range args {
							if mark(a) {
								changed = true
							}
						}
						continue
					}
					for k, a := range args {
						for _, t := range targets {
							if len(args) != len(t.Params) || es.paramEscapes(t, k) {
								if mark(a) {
									changed = true
								}
								break
							}
						}
					}
				}
			}
		}
	}
	return esc
}

// paramEscapes looks up the current summary bit for fn's parameter k.
// A nil or unknown callee and out-of-range parameters (arity-bent call
// sites survive in unoptimized IR) are conservatively escaping.
func (es *escapeState) paramEscapes(fn *ir.Func, k int) bool {
	if fn == nil {
		return true
	}
	sum, ok := es.summaries[fn]
	if !ok || k >= len(sum) {
		return true
	}
	return sum[k]
}

package analysis

import (
	"testing"

	"repro/internal/ir"
)

// TestBuildCFGShapes: table-driven structural checks over lowered
// control flow. Exact block counts depend on the lowering strategy, so
// the table asserts invariants (edge symmetry, RPO coverage) plus the
// properties the analyses consume: loop membership and trap exits.
func TestBuildCFGShapes(t *testing.T) {
	cases := []struct {
		name     string
		source   string
		fn       string
		wantLoop bool
		minBlks  int
	}{
		{
			name: "straightline",
			source: `
def f(x: int) -> int { return x + 1; }
def main() { System.puti(f(1)); }
`,
			fn: "f", wantLoop: false, minBlks: 1,
		},
		{
			name: "branch",
			source: `
def f(x: int) -> int { if (x > 0) return 1; return 0 - 1; }
def main() { System.puti(f(1)); }
`,
			fn: "f", wantLoop: false, minBlks: 3,
		},
		{
			name: "loop",
			source: `
def f(n: int) -> int {
	var t = 0;
	for (i = 0; i < n; i++) t = t + i;
	return t;
}
def main() { System.puti(f(5)); }
`,
			fn: "f", wantLoop: true, minBlks: 3,
		},
		{
			name: "nested_loop",
			source: `
def f(n: int) -> int {
	var t = 0;
	for (i = 0; i < n; i++) {
		for (j = 0; j < i; j++) t = t + 1;
	}
	return t;
}
def main() { System.puti(f(4)); }
`,
			fn: "f", wantLoop: true, minBlks: 5,
		},
		{
			name: "while_break",
			source: `
def f(n: int) -> int {
	var i = 0;
	while (true) {
		if (i >= n) break;
		i++;
	}
	return i;
}
def main() { System.puti(f(3)); }
`,
			fn: "f", wantLoop: true, minBlks: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod := compile(t, tc.source, true)
			f := funcByName(t, mod, tc.fn)
			g := BuildCFG(f)

			if len(g.Blocks) < tc.minBlks {
				t.Errorf("got %d blocks, want at least %d", len(g.Blocks), tc.minBlks)
			}
			// Every forward edge must have a matching backward edge.
			for b, succs := range g.Succs {
				for _, s := range succs {
					found := false
					for _, p := range g.Preds[s] {
						if p == b {
							found = true
						}
					}
					if !found {
						t.Errorf("edge %d->%d has no pred entry", b, s)
					}
				}
			}
			// RPO covers every block exactly once, entry first.
			if len(g.RPO) != len(g.Blocks) {
				t.Errorf("RPO covers %d of %d blocks", len(g.RPO), len(g.Blocks))
			}
			seen := map[int]bool{}
			for _, b := range g.RPO {
				if seen[b] {
					t.Errorf("block %d appears twice in RPO", b)
				}
				seen[b] = true
			}
			if len(g.RPO) > 0 && g.RPO[0] != 0 {
				t.Errorf("RPO starts at block %d, want entry (0)", g.RPO[0])
			}
			hasLoop := false
			for _, in := range g.InLoop {
				if in {
					hasLoop = true
				}
			}
			if hasLoop != tc.wantLoop {
				t.Errorf("hasLoop = %v, want %v", hasLoop, tc.wantLoop)
			}
		})
	}
}

func TestSCCs(t *testing.T) {
	mod := compile(t, `
def f(n: int) -> int {
	var t = 0;
	for (i = 0; i < n; i++) t = t + i;
	return t;
}
def main() { System.puti(f(5)); }
`, true)
	g := BuildCFG(funcByName(t, mod, "f"))
	sccs := g.SCCs()
	total := 0
	nontrivial := 0
	for _, scc := range sccs {
		total += len(scc)
		if len(scc) > 1 {
			nontrivial++
		}
	}
	if total != len(g.Blocks) {
		t.Errorf("SCCs cover %d of %d blocks", total, len(g.Blocks))
	}
	if nontrivial == 0 {
		t.Error("loop function should have a non-trivial SCC")
	}
}

func TestMayTrap(t *testing.T) {
	trapping := []ir.Op{
		ir.OpDiv, ir.OpMod, ir.OpNullCheck, ir.OpFieldLoad, ir.OpFieldStore,
		ir.OpCallVirtual, ir.OpMakeBound, ir.OpCallIndirect, ir.OpArrayNew,
		ir.OpArrayLoad, ir.OpArrayStore, ir.OpArrayLen, ir.OpTypeCast,
	}
	for _, op := range trapping {
		if !MayTrap(&ir.Instr{Op: op}) {
			t.Errorf("MayTrap(%v) = false, want true", op)
		}
	}
	benign := []ir.Op{ir.OpAdd, ir.OpMove, ir.OpConstInt, ir.OpMakeTuple, ir.OpJump, ir.OpRet}
	for _, op := range benign {
		if MayTrap(&ir.Instr{Op: op}) {
			t.Errorf("MayTrap(%v) = true, want false", op)
		}
	}
}

func TestIsAllocAndPromotable(t *testing.T) {
	allocs := []ir.Op{
		ir.OpNewObject, ir.OpMakeTuple, ir.OpMakeClosure, ir.OpMakeBound,
		ir.OpArrayNew, ir.OpConstString, ir.OpEnumName,
	}
	for _, op := range allocs {
		if !IsAlloc(&ir.Instr{Op: op}) {
			t.Errorf("IsAlloc(%v) = false, want true", op)
		}
	}
	if IsAlloc(&ir.Instr{Op: ir.OpAdd}) {
		t.Error("IsAlloc(add) = true")
	}
	// Only statically-sized allocations are promotable: arrays carry a
	// runtime length and strings/enum names are interned, so the
	// promotion set is strictly smaller than the alloc set.
	promotable := []ir.Op{ir.OpNewObject, ir.OpMakeTuple, ir.OpMakeClosure, ir.OpMakeBound}
	for _, op := range promotable {
		if !Promotable(&ir.Instr{Op: op}) {
			t.Errorf("Promotable(%v) = false, want true", op)
		}
	}
	for _, op := range []ir.Op{ir.OpArrayNew, ir.OpConstString, ir.OpEnumName, ir.OpAdd} {
		if Promotable(&ir.Instr{Op: op}) {
			t.Errorf("Promotable(%v) = true, want false", op)
		}
	}
}

package analysis

import "repro/internal/ir"

// Interval is a value range for an integer register. Known=false is
// top: the register holds an int but nothing is known about it. A
// register absent from the map was never seen defined with an integer
// value.
type Interval struct {
	Lo, Hi int64
	Known  bool
}

// top is the unknown-int interval.
var top = Interval{Known: false}

// point returns the exact-constant interval.
func point(v int64) Interval { return Interval{Lo: v, Hi: v, Known: true} }

// IsConst reports whether the interval pins a single value.
func (iv Interval) IsConst() bool { return iv.Known && iv.Lo == iv.Hi }

// join widens a toward b (lattice join: the smallest interval covering
// both).
func (a Interval) join(b Interval) Interval {
	if !a.Known || !b.Known {
		return top
	}
	if b.Lo < a.Lo {
		a.Lo = b.Lo
	}
	if b.Hi > a.Hi {
		a.Hi = b.Hi
	}
	return a
}

const (
	int32Min = -1 << 31
	int32Max = 1<<31 - 1
)

// fit clamps an interval to the 32-bit value space; arithmetic in the
// IR wraps at 32 bits, so any bound outside that range means the true
// result set is unknown.
func fit(lo, hi int64) Interval {
	if lo < int32Min || hi > int32Max || lo > hi {
		return top
	}
	return Interval{Lo: lo, Hi: hi, Known: true}
}

// wideningLimit bounds how many times a register's interval may grow
// before it is widened straight to top. Loops like i = i + 1 would
// otherwise step the fixpoint 2^31 times.
const wideningLimit = 4

// computeIntervals runs a flow-insensitive interval propagation over
// f: every definition of a register joins into its interval, iterated
// in reverse postorder until stable. Flow-insensitivity keeps the
// domain sound for a register IR without SSA form (a register
// redefined on two paths gets the join of both), at the cost of
// precision this consumer mix does not need — the facts feed constant
// reporting and the lint layer, not machine-code bounds-check
// elimination.
func computeIntervals(f *ir.Func, g *CFG) map[*ir.Reg]Interval {
	iv := map[*ir.Reg]Interval{}
	grows := map[*ir.Reg]int{}
	get := func(r *ir.Reg) (Interval, bool) {
		v, ok := iv[r]
		return v, ok
	}
	set := func(r *ir.Reg, v Interval) bool {
		old, ok := iv[r]
		if !ok {
			iv[r] = v
			return true
		}
		next := old.join(v)
		if next == old {
			return false
		}
		grows[r]++
		if grows[r] > wideningLimit {
			next = top
		}
		iv[r] = next
		return next != old
	}
	// Parameters are unknown ints (or non-int; top either way — the
	// consumer filters by register type).
	for _, p := range f.Params {
		iv[p] = top
	}
	for changed := true; changed; {
		changed = false
		for _, bi := range g.RPO {
			for _, in := range g.Blocks[bi].Instrs {
				if len(in.Dst) == 0 {
					continue
				}
				if v, ok := evalInterval(in, get); ok {
					if set(in.Dst[0], v) {
						changed = true
					}
				} else {
					for _, d := range in.Dst {
						if set(d, top) {
							changed = true
						}
					}
				}
			}
		}
	}
	return iv
}

// evalInterval computes the interval of in's first destination from
// its arguments, or ok=false when the op is not modeled (the caller
// assigns top to every destination).
func evalInterval(in *ir.Instr, get func(*ir.Reg) (Interval, bool)) (Interval, bool) {
	bin := func(f func(a, b Interval) Interval) (Interval, bool) {
		a, okA := get(in.Args[0])
		b, okB := get(in.Args[1])
		if !okA || !okB || !a.Known || !b.Known {
			return top, true
		}
		return f(a, b), true
	}
	switch in.Op {
	case ir.OpConstInt, ir.OpConstByte, ir.OpConstEnum:
		return point(in.IVal), true
	case ir.OpConstBool:
		return point(in.IVal & 1), true
	case ir.OpMove, ir.OpTypeCast:
		v, ok := get(in.Args[0])
		if !ok {
			return top, true
		}
		return v, true
	case ir.OpAdd:
		return bin(func(a, b Interval) Interval { return fit(a.Lo+b.Lo, a.Hi+b.Hi) })
	case ir.OpSub:
		return bin(func(a, b Interval) Interval { return fit(a.Lo-b.Hi, a.Hi-b.Lo) })
	case ir.OpMul:
		return bin(func(a, b Interval) Interval {
			lo, hi := a.Lo*b.Lo, a.Lo*b.Lo
			for _, v := range []int64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi} {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			// Guard against int64 overflow inside the products: any
			// operand magnitude beyond 2^31 already forced top via fit
			// on the inputs, so products fit in int64.
			return fit(lo, hi)
		})
	case ir.OpNeg:
		a, ok := get(in.Args[0])
		if !ok || !a.Known {
			return top, true
		}
		return fit(-a.Hi, -a.Lo), true
	case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpEq, ir.OpNe,
		ir.OpNot, ir.OpBoolAnd, ir.OpBoolOr, ir.OpTypeQuery:
		return Interval{Lo: 0, Hi: 1, Known: true}, true
	case ir.OpArrayLen:
		return Interval{Lo: 0, Hi: int32Max, Known: true}, true
	case ir.OpEnumTag:
		return Interval{Lo: 0, Hi: int32Max, Known: true}, true
	}
	return top, false
}

// IntervalSummary is the per-function rollup for the analyze report.
type IntervalSummary struct {
	// Consts counts registers pinned to a single value; Bounded counts
	// registers with a known non-trivial range (including consts);
	// Total counts tracked registers.
	Consts, Bounded, Total int
}

// SummarizeIntervals rolls up a function's interval map.
func SummarizeIntervals(iv map[*ir.Reg]Interval) IntervalSummary {
	var s IntervalSummary
	for _, v := range iv {
		s.Total++
		if v.Known {
			s.Bounded++
			if v.IsConst() {
				s.Consts++
			}
		}
	}
	return s
}

package analysis

import (
	"context"
	"testing"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/mono"
	"repro/internal/norm"
	"repro/internal/parser"
	"repro/internal/src"
	"repro/internal/typecheck"
)

// compile lowers source through mono (and optionally norm) without
// optimization, so the IR still contains the shapes the analyses
// classify: tuples survive when normalize is false, and no pass has
// deleted dead code.
func compile(t *testing.T, source string, normalize bool) *ir.Module {
	t.Helper()
	errs := &src.ErrorList{}
	f := parser.Parse("test.v", source, errs)
	if !errs.Empty() {
		t.Fatalf("parse errors:\n%s", errs.Error())
	}
	prog := typecheck.Check([]*ast.File{f}, errs)
	if !errs.Empty() {
		t.Fatalf("check errors:\n%s", errs.Error())
	}
	mod, err := lower.Lower(context.Background(), prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	monoMod, _, err := mono.Monomorphize(context.Background(), mod, mono.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !normalize {
		return monoMod
	}
	normMod, _, err := norm.Normalize(context.Background(), monoMod, 1)
	if err != nil {
		t.Fatal(err)
	}
	return normMod
}

func analyze(t *testing.T, mod *ir.Module) *Result {
	t.Helper()
	res, err := Analyze(context.Background(), mod, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func funcByName(t *testing.T, mod *ir.Module, name string) *ir.Func {
	t.Helper()
	for _, f := range mod.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("function %q not in module", name)
	return nil
}

func TestCallGraphStaticResolution(t *testing.T) {
	mod := compile(t, `
def helper(x: int) -> int { return x * 2; }
def main() { System.puti(helper(21)); }
`, true)
	res := analyze(t, mod)
	cg := res.CallGraph

	mainFn := funcByName(t, mod, "main")
	helper := funcByName(t, mod, "helper")

	node := cg.NodeFor(mainFn)
	found := false
	for _, c := range node.Callees {
		if c == helper {
			found = true
		}
	}
	if !found {
		t.Error("main's callees do not include helper")
	}
	if !cg.Reachable[helper] {
		t.Error("helper should be reachable from main")
	}
	if node.Unresolved != 0 {
		t.Errorf("main has %d unresolved sites, want 0", node.Unresolved)
	}
}

func TestCallGraphVirtualTargets(t *testing.T) {
	mod := compile(t, `
class A { def m() -> int { return 1; } }
class B extends A { def m() -> int { return 2; } }
class C extends A { def m() -> int { return 3; } }
def main() {
	var a: A = B.new();
	System.puti(a.m());
}
`, true)
	res := analyze(t, mod)
	cg := res.CallGraph

	// RTA: only B is instantiated, so the virtual site has exactly one
	// target even though A has three implementations.
	instantiated := 0
	for c := range cg.Instantiated {
		_ = c
		instantiated++
	}
	if instantiated != 1 {
		t.Errorf("instantiated classes = %d, want 1 (only B.new runs)", instantiated)
	}
	mainFn := funcByName(t, mod, "main")
	node := cg.NodeFor(mainFn)
	for in, targets := range node.Sites {
		if in.Op != ir.OpCallVirtual {
			continue
		}
		if targets == nil {
			t.Fatal("virtual site unresolved; RTA should resolve it")
		}
		if len(targets) != 1 {
			t.Fatalf("virtual site has %d targets, want 1", len(targets))
		}
	}
}

func TestCallGraphCycles(t *testing.T) {
	mod := compile(t, `
def even(n: int) -> bool { if (n == 0) return true; return odd(n - 1); }
def odd(n: int) -> bool { if (n == 0) return false; return even(n - 1); }
def leaf(x: int) -> int { return x + 1; }
def main() {
	if (even(4)) System.puti(leaf(1));
}
`, true)
	res := analyze(t, mod)
	cg := res.CallGraph
	if !cg.NodeFor(funcByName(t, mod, "even")).InCycle {
		t.Error("even is mutually recursive; want InCycle")
	}
	if !cg.NodeFor(funcByName(t, mod, "odd")).InCycle {
		t.Error("odd is mutually recursive; want InCycle")
	}
	if cg.NodeFor(funcByName(t, mod, "leaf")).InCycle {
		t.Error("leaf is not recursive; InCycle should be false")
	}
}

func TestEscapeClosures(t *testing.T) {
	mod := compile(t, `
def inc(x: int) -> int { return x + 1; }
def call(f: int -> int) -> int { return f(3); }
def local() -> int { return call(inc); }
def leak(f: int -> int) -> int -> int { return f; }
def main() {
	System.puti(local());
	System.puti(leak(inc)(4));
}
`, true)
	res := analyze(t, mod)

	// In call, parameter f is only invoked (the indirect call's callee
	// operand), never stored or returned: it must not escape.
	callFacts := res.FactsFor(funcByName(t, mod, "call"))
	if len(callFacts.ParamEscapes) == 0 || callFacts.ParamEscapes[0] {
		t.Errorf("call's closure param should not escape: %v", callFacts.ParamEscapes)
	}
	// leak returns its parameter, so it escapes.
	leakFacts := res.FactsFor(funcByName(t, mod, "leak"))
	if len(leakFacts.ParamEscapes) == 0 || !leakFacts.ParamEscapes[0] {
		t.Errorf("leak returns its param; want escape: %v", leakFacts.ParamEscapes)
	}
	// The closure made in local flows only into call's non-escaping
	// parameter, so its alloc site is frame-local.
	localFacts := res.FactsFor(funcByName(t, mod, "local"))
	nonEsc := 0
	for _, site := range localFacts.AllocSites {
		if !site.Escapes {
			nonEsc++
		}
	}
	if nonEsc == 0 {
		t.Error("the closure made in local should be non-escaping")
	}
	// The closure made in main for leak(inc) escapes through leak.
	mainFacts := res.FactsFor(funcByName(t, mod, "main"))
	esc := 0
	for _, site := range mainFacts.AllocSites {
		if site.Escapes {
			esc++
		}
	}
	if esc == 0 {
		t.Error("the closure passed to leak should escape")
	}
}

func TestEffects(t *testing.T) {
	mod := compile(t, `
class G { var x: int; new(x) { } def set(v: int) { x = v; } }
def pureAdd(a: int, b: int) -> int { return a + b; }
def printer(v: int) { System.puti(v); }
def viaPure(v: int) -> int { return pureAdd(v, 1); }
def viaIO(v: int) { printer(v); }
def fib(n: int) -> int { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
def main() {
	var g = G.new(0);
	g.set(viaPure(1));
	viaIO(g.x);
	System.puti(fib(5));
}
`, true)
	res := analyze(t, mod)
	facts := func(name string) Effect {
		return res.FactsFor(funcByName(t, mod, name)).Effects
	}
	if e := facts("pureAdd"); !e.Pure() || !e.Deterministic() {
		t.Errorf("pureAdd effects = %v, want pure and deterministic", e)
	}
	if e := facts("viaPure"); !e.Pure() {
		t.Errorf("viaPure calls only a pure function; effects = %v", e)
	}
	if e := facts("printer"); e&EffIO == 0 || e.Pure() {
		t.Errorf("printer does IO; effects = %v", e)
	}
	if e := facts("viaIO"); e&EffIO == 0 {
		t.Errorf("viaIO transitively does IO; effects = %v", e)
	}
	if e := facts("G.set"); e&EffHeapWrite == 0 {
		t.Errorf("G.set stores a field; effects = %v", e)
	}
	if e := facts("fib"); e&EffDiverge == 0 {
		t.Errorf("fib is recursive; want diverge bit, got %v", e)
	}
}

func TestIntervals(t *testing.T) {
	mod := compile(t, `
def main() {
	var x = 5;
	var y = x + 2;
	System.puti(y);
}
`, true)
	res := analyze(t, mod)
	facts := res.FactsFor(funcByName(t, mod, "main"))
	sum := SummarizeIntervals(facts.Intervals)
	if sum.Consts == 0 {
		t.Errorf("expected constant intervals in main, got %+v", sum)
	}
	if sum.Total == 0 {
		t.Error("no intervals computed at all")
	}
}

func TestIntervalJoinWiden(t *testing.T) {
	a := point(1)
	b := point(10)
	j := a.join(b)
	if !j.Known || j.Lo != 1 || j.Hi != 10 {
		t.Errorf("join(1,10) = %+v", j)
	}
	unk := Interval{}
	if j2 := j.join(unk); j2.Known {
		t.Errorf("join with unknown should be unknown, got %+v", j2)
	}
}

func TestVerifyPromotions(t *testing.T) {
	mod := compile(t, `
def inc(x: int) -> int { return x + 1; }
def call(f: int -> int) -> int { return f(3); }
def leak(f: int -> int) -> int -> int { return f; }
def main() {
	System.puti(call(inc));
	System.puti(leak(inc)(4));
}
`, true)
	res := analyze(t, mod)
	if err := VerifyPromotions(mod, res); err != nil {
		t.Fatalf("clean module failed verification: %v", err)
	}
	// Mark the non-escaping closure: still verifies.
	mainFn := funcByName(t, mod, "main")
	facts := res.FactsFor(mainFn)
	var escaping, safe *ir.Instr
	for _, site := range facts.AllocSites {
		if !Promotable(site.Instr) {
			continue
		}
		if site.Escapes {
			escaping = site.Instr
		} else {
			safe = site.Instr
		}
	}
	if safe != nil {
		safe.StackAlloc = true
		if err := VerifyPromotions(mod, res); err != nil {
			t.Errorf("non-escaping promotion rejected: %v", err)
		}
		safe.StackAlloc = false
	}
	if escaping == nil {
		t.Fatal("test program should have an escaping promotable alloc in main")
	}
	escaping.StackAlloc = true
	if err := VerifyPromotions(mod, res); err == nil {
		t.Error("escaping promotion passed verification; want error")
	}
	escaping.StackAlloc = false
}

// TestAnalyzeJobsDeterminism: the whole report must be byte-identical
// at any worker count — the analyze subcommand's contract.
func TestAnalyzeJobsDeterminism(t *testing.T) {
	mod := compile(t, `
class Shape { def area() -> int { return 0; } }
class Sq extends Shape {
	var s: int;
	new(s) { }
	def area() -> int { return s * s; }
}
def sum(shapes: Array<Shape>) -> int {
	var t = 0;
	for (i = 0; i < shapes.length; i++) t = t + shapes[i].area();
	return t;
}
def main() {
	var xs = Array<Shape>.new(3);
	for (i = 0; i < xs.length; i++) xs[i] = Sq.new(i + 1);
	System.puti(sum(xs));
}
`, true)
	res1, err := Analyze(context.Background(), mod, Config{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	res8, err := Analyze(context.Background(), mod, Config{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	js1, err := ReportJSON(res1)
	if err != nil {
		t.Fatal(err)
	}
	js8, err := ReportJSON(res8)
	if err != nil {
		t.Fatal(err)
	}
	if string(js1) != string(js8) {
		t.Error("analysis report differs between jobs=1 and jobs=8")
	}
}

// Package analysis is the compiler's whole-program static-analysis
// layer: per-function control-flow graphs over the typed IR, a sound
// call graph (class-hierarchy analysis refined by rapid type analysis
// over the classes and closures the program actually creates), and a
// fixpoint dataflow engine running three interprocedural analyses —
// escape analysis, purity/effect summaries, and interval/constant
// propagation.
//
// The facts feed three consumers: internal/opt (stack promotion of
// non-escaping allocations, call-graph-driven devirtualization,
// pure-call elimination), internal/lint (IR-level advisory rules), and
// the `virgil analyze` JSON report. All of them require the same
// guarantee the rest of the pipeline already has: results are
// byte-for-byte identical at every worker count.
package analysis

import "repro/internal/ir"

// CFG is the control-flow graph of one function. Blocks are the
// function's blocks in their module order; edges are indices into that
// slice.
type CFG struct {
	Fn     *ir.Func
	Blocks []*ir.Block
	// Succs and Preds are the forward and backward edges per block
	// index, in terminator operand order (deterministic).
	Succs [][]int
	Preds [][]int
	// RPO is a reverse postorder over reachable blocks from the entry;
	// unreachable blocks are appended after it in module order so every
	// block has a position.
	RPO []int
	// InLoop marks blocks that participate in a cycle (a non-trivial
	// strongly connected component, or a self-loop).
	InLoop []bool
	// TrapExit marks blocks whose terminator is an explicit throw.
	TrapExit []bool

	index map[*ir.Block]int
}

// BuildCFG constructs the control-flow graph of f. It never mutates f.
func BuildCFG(f *ir.Func) *CFG {
	g := &CFG{
		Fn:     f,
		Blocks: f.Blocks,
		Succs:  make([][]int, len(f.Blocks)),
		Preds:  make([][]int, len(f.Blocks)),
		InLoop: make([]bool, len(f.Blocks)),
		index:  make(map[*ir.Block]int, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		g.index[b] = i
	}
	g.TrapExit = make([]bool, len(f.Blocks))
	for i, b := range f.Blocks {
		t := b.Terminator()
		if t == nil {
			continue
		}
		if t.Op == ir.OpThrow {
			g.TrapExit[i] = true
		}
		for _, nb := range t.Blocks {
			if j, ok := g.index[nb]; ok {
				g.Succs[i] = append(g.Succs[i], j)
				g.Preds[j] = append(g.Preds[j], i)
			}
		}
	}
	g.buildRPO()
	g.findLoops()
	return g
}

// BlockIndex returns b's index in the CFG, or -1 if it is not part of
// the function.
func (g *CFG) BlockIndex(b *ir.Block) int {
	if i, ok := g.index[b]; ok {
		return i
	}
	return -1
}

// buildRPO computes a reverse postorder from the entry block with an
// iterative DFS (adversarial inputs produce deep graphs), then appends
// unreachable blocks in module order.
func (g *CFG) buildRPO() {
	n := len(g.Blocks)
	if n == 0 {
		return
	}
	seen := make([]bool, n)
	post := make([]int, 0, n)
	type frame struct {
		b    int
		next int
	}
	stack := []frame{{b: 0}}
	seen[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(g.Succs[top.b]) {
			s := g.Succs[top.b][top.next]
			top.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]int, 0, n)
	for i := len(post) - 1; i >= 0; i-- {
		g.RPO = append(g.RPO, post[i])
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			g.RPO = append(g.RPO, i)
		}
	}
}

// findLoops marks blocks in cycles using an iterative Tarjan SCC over
// the block graph. A block is in a loop when its SCC has more than one
// member, or when it branches to itself.
func (g *CFG) findLoops() {
	for _, scc := range g.SCCs() {
		if len(scc) > 1 {
			for _, b := range scc {
				g.InLoop[b] = true
			}
			continue
		}
		b := scc[0]
		for _, s := range g.Succs[b] {
			if s == b {
				g.InLoop[b] = true
			}
		}
	}
}

// SCCs returns the strongly connected components of the block graph in
// deterministic order (Tarjan, iterative; components come out in
// reverse topological order).
func (g *CFG) SCCs() [][]int {
	n := len(g.Blocks)
	idx := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range idx {
		idx[i] = -1
	}
	var (
		stack   []int
		sccs    [][]int
		counter int
	)
	type frame struct {
		v, next int
	}
	for root := 0; root < n; root++ {
		if idx[root] != -1 {
			continue
		}
		work := []frame{{v: root}}
		idx[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			top := &work[len(work)-1]
			v := top.v
			if top.next < len(g.Succs[v]) {
				w := g.Succs[v][top.next]
				top.next++
				if idx[w] == -1 {
					idx[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w})
				} else if onStack[w] && idx[w] < low[v] {
					low[v] = idx[w]
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == idx[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// MayTrap reports whether executing in can raise a Virgil trap: an
// implicit exceptional edge out of the function. Explicit throws are
// block terminators and tracked as TrapExit edges instead.
func MayTrap(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpDiv, ir.OpMod, // !DivideByZeroException
		ir.OpNullCheck, ir.OpFieldLoad, ir.OpFieldStore, // !NullCheckException
		ir.OpCallVirtual, ir.OpMakeBound, // null receiver
		ir.OpCallIndirect,                              // null closure
		ir.OpArrayNew,                                  // !LengthCheckException
		ir.OpArrayLoad, ir.OpArrayStore, ir.OpArrayLen, // !BoundsCheckException / null
		ir.OpTypeCast: // !TypeCheckException
		return true
	}
	return false
}

// IsAlloc reports whether in allocates on the modeled heap (the ops
// charged by interp.ChargeHeap).
func IsAlloc(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpNewObject, ir.OpMakeTuple, ir.OpMakeClosure, ir.OpMakeBound,
		ir.OpArrayNew, ir.OpConstString, ir.OpEnumName:
		return true
	}
	return false
}

// Promotable reports whether in is a statically-sized allocation the
// optimizer may stack-promote when it does not escape. Arrays and
// strings are excluded: their size is dynamic (or the template of a
// shared constant), so they stay on the modeled heap.
func Promotable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpNewObject, ir.OpMakeTuple, ir.OpMakeClosure, ir.OpMakeBound:
		return true
	}
	return false
}

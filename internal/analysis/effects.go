package analysis

import (
	"strings"

	"repro/internal/ir"
)

// Effect is a bitmask summarizing what executing a function may do
// beyond computing its results.
type Effect uint16

// Effect bits.
const (
	// EffIO: writes to the output stream or raises a user error
	// (builtin calls).
	EffIO Effect = 1 << iota
	// EffGlobalRead reads a program global.
	EffGlobalRead
	// EffGlobalWrite writes a program global.
	EffGlobalWrite
	// EffHeapWrite stores into an object or array.
	EffHeapWrite
	// EffAlloc allocates on the modeled heap.
	EffAlloc
	// EffTrap may raise a Virgil trap (divide, null, bounds, cast,
	// explicit throw, …).
	EffTrap
	// EffDiverge may fail to terminate: a CFG cycle or call-graph
	// recursion.
	EffDiverge
	// EffUnknown calls through an unresolved site; assume anything.
	EffUnknown
)

// effAll is the conservative top.
const effAll = EffIO | EffGlobalRead | EffGlobalWrite | EffHeapWrite |
	EffAlloc | EffTrap | EffDiverge | EffUnknown

// Pure reports whether a function with these effects is removable when
// its results are unused: no observable action, no trap, and it
// provably terminates. Reading globals and allocating are allowed —
// a dropped read is unobservable, and a dropped allocation only lowers
// the modeled heap meter, exactly like stack promotion.
func (e Effect) Pure() bool {
	return e&(EffIO|EffGlobalWrite|EffHeapWrite|EffTrap|EffDiverge|EffUnknown) == 0
}

// Deterministic reports whether the function's results depend only on
// its arguments (pure and does not read mutable globals) — the
// precondition for common-subexpression elimination across calls.
func (e Effect) Deterministic() bool {
	return e.Pure() && e&EffGlobalRead == 0
}

// String renders the effect set as a stable comma-separated list.
func (e Effect) String() string {
	if e == 0 {
		return "none"
	}
	names := []struct {
		bit  Effect
		name string
	}{
		{EffIO, "io"},
		{EffGlobalRead, "global-read"},
		{EffGlobalWrite, "global-write"},
		{EffHeapWrite, "heap-write"},
		{EffAlloc, "alloc"},
		{EffTrap, "trap"},
		{EffDiverge, "diverge"},
		{EffUnknown, "unknown"},
	}
	var parts []string
	for _, n := range names {
		if e&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, ",")
}

// Names returns the individual effect names, for the JSON report.
func (e Effect) Names() []string {
	if e == 0 {
		return []string{}
	}
	return strings.Split(e.String(), ",")
}

// localEffects computes the intraprocedural effect bits of in.
func localEffects(in *ir.Instr) Effect {
	var e Effect
	switch in.Op {
	case ir.OpCallBuiltin:
		// Builtins write output (puts/puti/putc/putb/ln), read the clock,
		// or raise !error; all are observable.
		e |= EffIO
	case ir.OpGlobalLoad:
		e |= EffGlobalRead
	case ir.OpGlobalStore:
		e |= EffGlobalWrite
	case ir.OpFieldStore, ir.OpArrayStore:
		e |= EffHeapWrite
	case ir.OpThrow:
		e |= EffTrap
	}
	if MayTrap(in) {
		e |= EffTrap
	}
	if IsAlloc(in) {
		e |= EffAlloc
	}
	return e
}

// computeEffects fills FuncFacts.Effects with a least-fixpoint over
// the call graph: a function's effects are its own instructions'
// effects plus every resolved callee's, plus divergence for loops and
// recursion, plus everything for unresolved call sites.
func computeEffects(res *Result) {
	// Seed with local effects.
	for i, f := range res.Mod.Funcs {
		facts := res.Funcs[i]
		var e Effect
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				e |= localEffects(in)
			}
		}
		for b := range facts.CFG.Blocks {
			if facts.CFG.InLoop[b] {
				e |= EffDiverge
				break
			}
		}
		node := res.CallGraph.NodeFor(f)
		if node != nil {
			if node.InCycle {
				e |= EffDiverge
			}
			if node.Unresolved > 0 {
				e |= effAll
			}
		}
		facts.Effects = e
	}
	// Propagate callee effects to callers until stable (monotone, so
	// the visit order does not affect the result — only how fast it
	// converges).
	for changed := true; changed; {
		changed = false
		for i, f := range res.Mod.Funcs {
			facts := res.Funcs[i]
			node := res.CallGraph.NodeFor(f)
			if node == nil {
				continue
			}
			e := facts.Effects
			for _, callee := range node.Callees {
				if cf := res.FactsFor(callee); cf != nil {
					e |= cf.Effects
				} else {
					e |= effAll
				}
			}
			if e != facts.Effects {
				facts.Effects = e
				changed = true
			}
		}
	}
}

package analysis

import (
	"bytes"
	"encoding/json"

	"repro/internal/ir"
)

// The analyze report: a stable JSON rendering of the whole-program
// facts for tooling. Everything is emitted in module order (functions,
// classes, instruction order within a function), never map order, so
// the bytes are identical for identical inputs at any worker count —
// the same determinism contract the compiled output has.

type reportFunc struct {
	Name         string         `json:"name"`
	Kind         string         `json:"kind"`
	Blocks       int            `json:"blocks"`
	Instrs       int            `json:"instrs"`
	Reachable    bool           `json:"reachable"`
	InCycle      bool           `json:"in_cycle"`
	HasLoop      bool           `json:"has_loop"`
	Effects      []string       `json:"effects"`
	Pure         bool           `json:"pure"`
	ParamEscapes []bool         `json:"param_escapes"`
	Allocs       []reportAlloc  `json:"allocs"`
	Intervals    reportInterval `json:"intervals"`
	Callees      []string       `json:"callees"`
	Unresolved   int            `json:"unresolved_sites"`
}

type reportAlloc struct {
	Op      string `json:"op"`
	Pos     string `json:"pos"`
	Escapes bool   `json:"escapes"`
	Stack   bool   `json:"stack"`
}

type reportInterval struct {
	Consts  int `json:"consts"`
	Bounded int `json:"bounded"`
	Total   int `json:"total"`
}

type reportSummary struct {
	Functions       int `json:"functions"`
	Reachable       int `json:"reachable"`
	Instantiated    int `json:"instantiated_classes"`
	ResolvedSites   int `json:"resolved_sites"`
	UnresolvedSites int `json:"unresolved_sites"`
	Allocs          int `json:"allocs"`
	NonEscaping     int `json:"non_escaping"`
	StackPromoted   int `json:"stack_promoted"`
	PureFunctions   int `json:"pure_functions"`
}

type report struct {
	Functions    []reportFunc  `json:"functions"`
	Instantiated []string      `json:"instantiated_classes"`
	Summary      reportSummary `json:"summary"`
}

func kindName(k ir.FuncKind) string {
	switch k {
	case ir.KindTopLevel:
		return "toplevel"
	case ir.KindMethod:
		return "method"
	case ir.KindCtor:
		return "ctor"
	case ir.KindAlloc:
		return "alloc"
	case ir.KindWrapper:
		return "wrapper"
	case ir.KindInit:
		return "init"
	}
	return "unknown"
}

// ReportJSON renders res as indented JSON with a trailing newline.
func ReportJSON(res *Result) ([]byte, error) {
	rep := report{Functions: make([]reportFunc, 0, len(res.Mod.Funcs))}
	for i, f := range res.Mod.Funcs {
		facts := res.Funcs[i]
		node := res.CallGraph.Nodes[i]
		rf := reportFunc{
			Name:         f.Name,
			Kind:         kindName(f.Kind),
			Blocks:       len(f.Blocks),
			Instrs:       f.NumInstrs(),
			Reachable:    res.CallGraph.Reachable[f],
			InCycle:      node.InCycle,
			Effects:      facts.Effects.Names(),
			Pure:         facts.Effects.Pure(),
			ParamEscapes: facts.ParamEscapes,
			Allocs:       []reportAlloc{},
			Intervals:    reportInterval(SummarizeIntervals(facts.Intervals)),
			Callees:      []string{},
			Unresolved:   node.Unresolved,
		}
		if rf.ParamEscapes == nil {
			rf.ParamEscapes = []bool{}
		}
		for _, b := range facts.CFG.InLoop {
			if b {
				rf.HasLoop = true
			}
		}
		for _, site := range facts.AllocSites {
			rf.Allocs = append(rf.Allocs, reportAlloc{
				Op:      site.Instr.Op.String(),
				Pos:     site.Instr.Pos.String(),
				Escapes: site.Escapes,
				Stack:   site.Instr.StackAlloc,
			})
			rep.Summary.Allocs++
			if !site.Escapes {
				rep.Summary.NonEscaping++
			}
			if site.Instr.StackAlloc {
				rep.Summary.StackPromoted++
			}
		}
		for _, c := range node.Callees {
			rf.Callees = append(rf.Callees, c.Name)
		}
		for _, ts := range node.Sites {
			if ts != nil {
				rep.Summary.ResolvedSites++
			}
		}
		rep.Summary.UnresolvedSites += node.Unresolved
		if rf.Pure {
			rep.Summary.PureFunctions++
		}
		if rf.Reachable {
			rep.Summary.Reachable++
		}
		rep.Functions = append(rep.Functions, rf)
	}
	rep.Summary.Functions = len(res.Mod.Funcs)
	rep.Instantiated = []string{}
	for _, c := range res.Mod.Classes {
		if res.CallGraph.Instantiated[c] {
			rep.Instantiated = append(rep.Instantiated, c.Name)
		}
	}
	rep.Summary.Instantiated = len(rep.Instantiated)

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// VerifyPromotions is the analysis verifier: every allocation the
// optimizer marked StackAlloc must (a) be an op that is legal to
// promote and (b) be proven non-escaping by a fresh analysis of the
// final IR in res. The check is independent of the optimizer's own
// bookkeeping — res must come from re-running Analyze after all
// transformation — so a pass that promotes on stale or wrong facts is
// caught here and reported as an ICE by the driver, never silently
// shipped as an unsound program.
func VerifyPromotions(mod *ir.Module, res *Result) error {
	for _, f := range mod.Funcs {
		facts := res.FactsFor(f)
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if !in.StackAlloc {
					continue
				}
				if !Promotable(in) {
					return fmt.Errorf("func %s: %s at %s marked stack-alloc but op is not promotable",
						f.Name, in.Op, in.Pos)
				}
				if facts == nil {
					return fmt.Errorf("func %s: stack-alloc %s at %s but function was not analyzed",
						f.Name, in.Op, in.Pos)
				}
				for _, d := range in.Dst {
					if facts.EscapingRegs[d] {
						return fmt.Errorf("func %s: %s at %s marked stack-alloc but result %s escapes",
							f.Name, in.Op, in.Pos, d)
					}
				}
			}
		}
	}
	return nil
}

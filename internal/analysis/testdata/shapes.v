// Class hierarchy with a virtual call that RTA resolves to a single
// target: only Square is ever instantiated.
class Shape {
	def area() -> int { return 0; }
}
class Square extends Shape {
	var side: int;
	new(side) { }
	def area() -> int { return side * side; }
}
class Circle extends Shape {
	var r: int;
	new(r) { }
	def area() -> int { return 3 * r * r; }
}
def total(shapes: Array<Shape>) -> int {
	var t = 0;
	for (i = 0; i < shapes.length; i++) t = t + shapes[i].area();
	return t;
}
def main() {
	var xs = Array<Shape>.new(4);
	for (i = 0; i < xs.length; i++) xs[i] = Square.new(i + 1);
	System.puti(total(xs));
	System.ln();
}

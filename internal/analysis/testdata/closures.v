// First-class functions: a bound method and a plain closure, one
// frame-local (stack-promotable) and one escaping through a return.
class Counter {
	var total: int;
	new(total) { }
	def add(x: int) { total = total + x; }
}
def twice(x: int) -> int { return x * 2; }
def apply(f: int -> int, x: int) -> int { return f(x); }
def makeAdder(c: Counter) -> (int -> void) { return c.add; }
def main() {
	var c = Counter.new(0);
	var f = makeAdder(c);
	f(apply(twice, 10));
	c.add(1);
	System.puti(c.total);
	System.ln();
}

// Effect lattice coverage: a pure helper, a transitively-IO printer,
// recursion (diverge), and a heap-writing method.
class Box {
	var v: int;
	new(v) { }
	def set(x: int) { v = x; }
}
def pure3(a: int, b: int, c: int) -> int { return a * b + c; }
def gcd(a: int, b: int) -> int {
	if (b == 0) return a;
	return gcd(b, a % b);
}
def show(x: int) {
	System.puti(x);
	System.putc(' ');
}
def main() {
	var b = Box.new(0);
	b.set(pure3(2, 3, 4));
	show(b.v);
	show(gcd(48, 18));
	System.ln();
}

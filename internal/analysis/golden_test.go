package analysis_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
)

// TestGoldenReports compiles each testdata program through the full
// pipeline (mono+norm+opt+analysis) and compares the JSON analysis
// report against its .golden.json file. The goldens pin down the
// observable analysis surface: call-graph resolution, escape verdicts,
// stack promotions, effect summaries, and interval counts. Run with
// UPDATE_ANALYSIS_GOLDEN=1 to regenerate after an intentional change.
//
// This test lives in an external package because core imports analysis:
// the in-package tests can exercise the analyses directly, but only the
// driver can show what the analyze subcommand actually emits.
func TestGoldenReports(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.v"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	if len(files) < 3 {
		t.Fatalf("golden corpus has %d programs, want at least 3", len(files))
	}
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".v")
		t.Run(name, func(t *testing.T) {
			source, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			cfg := core.Compiled()
			cfg.Jobs = 1
			comp, err := core.Compile(filepath.Base(file), string(source), cfg)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if comp.Analysis == nil {
				t.Fatal("compiled config should carry analysis facts")
			}
			got, err := analysis.ReportJSON(comp.Analysis)
			if err != nil {
				t.Fatal(err)
			}
			goldenPath := strings.TrimSuffix(file, ".v") + ".golden.json"
			if os.Getenv("UPDATE_ANALYSIS_GOLDEN") != "" {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with UPDATE_ANALYSIS_GOLDEN=1): %v", err)
			}
			if string(got) != string(want) {
				t.Errorf("report differs from golden %s\n--- got ---\n%s", goldenPath, got)
			}
		})
	}
}

// TestGoldenJobsDeterminism: the same programs must produce
// byte-identical reports at jobs=1 and jobs=8 through the full driver —
// the CLI-level contract behind `virgil analyze`.
func TestGoldenJobsDeterminism(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.v"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	for _, file := range files {
		name := strings.TrimSuffix(filepath.Base(file), ".v")
		t.Run(name, func(t *testing.T) {
			source, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			report := func(jobs int) string {
				cfg := core.Compiled()
				cfg.Jobs = jobs
				comp, err := core.Compile(filepath.Base(file), string(source), cfg)
				if err != nil {
					t.Fatalf("compile jobs=%d: %v", jobs, err)
				}
				js, err := analysis.ReportJSON(comp.Analysis)
				if err != nil {
					t.Fatal(err)
				}
				return string(js)
			}
			if report(1) != report(8) {
				t.Error("analysis report differs between jobs=1 and jobs=8")
			}
		})
	}
}

package core_test

import (
	"context"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/testprogs"
)

// This file is the differential proof for the tier axis: a
// profile-guided recompile (the tier-2 artifact the serve layer swaps
// in) is observably identical to the plain optimized build. Two
// comparisons, matching how the other axes are proven:
//
//   - tiered bytecode vs tiered switch, same module: exact equality —
//     output, traps, traces, and step-for-step Stats — via sameRun.
//   - tiered vs untiered: output and trap identity. Speculation guards
//     and hot inlining legitimately change instruction and frame
//     counts, so step totals, traces, and budget boundaries may move;
//     what the program *does* may not.

// recordTierProfile compiles source on the bytecode engine under cfg
// and executes it once with profiling on — the same harvest a serve
// tier-1 run performs. The run's own outcome is irrelevant: a trapped
// or budget-stopped run still yields a true (partial) profile.
func recordTierProfile(name, source string, cfg core.Config) (*profile.Profile, error) {
	bcCfg := cfg
	bcCfg.Engine = core.EngineBytecode
	comp, err := core.Compile(name, source, bcCfg)
	if err != nil {
		return nil, err
	}
	if comp.Module.Main == nil {
		return nil, nil
	}
	_, prof, _ := comp.RunProfiled(context.Background(), io.Discard, core.RunOpts{})
	return prof, nil
}

func TestTieredDifferentialCorpus(t *testing.T) {
	for _, p := range testprogs.All() {
		t.Run(p.Name, func(t *testing.T) {
			cfg := core.Compiled()
			prof, err := recordTierProfile(p.Name+".v", p.Source, cfg)
			if err != nil {
				t.Fatalf("tier-1 compile: %v", err)
			}
			if prof == nil {
				t.Skip("no main; nothing to profile")
			}
			tierCfg := cfg
			tierCfg.PGO = prof

			// Exact axis: both engines on the tiered compilation.
			bc, sw, ok := runBothEngines(t, "tiered", p.Name+".v", p.Source, tierCfg)
			if !ok {
				t.Fatal("tier-up recompile failed after the plain compile succeeded")
			}
			sameRun(t, "tiered", bc, sw)

			// Identity axis: tiered vs untiered bytecode.
			baseCfg := cfg
			baseCfg.Engine = core.EngineBytecode
			baseComp, err := core.Compile(p.Name+".v", p.Source, baseCfg)
			if err != nil {
				t.Fatal(err)
			}
			base := baseComp.Run()
			bcTrap, bcRes := analysisTrap(bc.Err)
			baseTrap, baseRes := analysisTrap(base.Err)
			if bcRes || baseRes {
				// A budget fired on one side; accounting moved, not
				// comparable observably.
				return
			}
			if bcTrap != baseTrap {
				t.Fatalf("traps differ: tiered %q, untiered %q", bcTrap, baseTrap)
			}
			if bc.Output != base.Output {
				t.Fatalf("outputs differ:\ntiered:   %q\nuntiered: %q", bc.Output, base.Output)
			}
			if bc.Err == nil && bc.Output != p.Want {
				t.Errorf("tiered output = %q, want %q", bc.Output, p.Want)
			}
		})
	}
}

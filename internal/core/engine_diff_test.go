package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/src"
	"repro/internal/testprogs"
)

// This file is the differential proof that the register-bytecode
// engine and the switch interpreter are observably identical: same
// output bytes, same traps with the same messages and stack traces,
// same step accounting, same Stats — over the whole corpus, the
// examples, the crasher corpus, every ablation configuration, and
// sequential vs parallel compilation.

// diffConfigs is the ablation ladder for the differential suite: the
// four pipeline configurations plus the optimized pipeline with the
// analysis layer switched off, so the analysis-driven rewrites get the
// same engine-vs-engine scrutiny as every other stage.
func diffConfigs() []core.Config {
	noa := core.Compiled()
	noa.Analyze = false
	return append(core.Configs(), noa)
}

// cfgLabel distinguishes the analyze-off ablation from the full
// pipeline (Config.Name reports the stage ladder only).
func cfgLabel(cfg core.Config) string {
	if cfg.Optimize && !cfg.Analyze {
		return cfg.Name() + "-analyze"
	}
	return cfg.Name()
}

// runBothEngines compiles source once per engine under cfg and runs
// it. Compilation is engine-independent, so a compile failure must be
// identical under both; in that case ok is false and the run results
// are zero.
func runBothEngines(t *testing.T, label, name, source string, cfg core.Config) (bc, sw core.RunResult, ok bool) {
	t.Helper()
	bcCfg, swCfg := cfg, cfg
	bcCfg.Engine = core.EngineBytecode
	swCfg.Engine = core.EngineSwitch
	bcComp, bcErr := core.Compile(name, source, bcCfg)
	swComp, swErr := core.Compile(name, source, swCfg)
	if (bcErr == nil) != (swErr == nil) {
		t.Fatalf("%s: compile outcomes differ: bytecode=%v switch=%v", label, bcErr, swErr)
	}
	if bcErr != nil {
		if bcErr.Error() != swErr.Error() {
			t.Fatalf("%s: compile errors differ:\nbytecode: %v\nswitch:   %v", label, bcErr, swErr)
		}
		return bc, sw, false
	}
	return bcComp.Run(), swComp.Run(), true
}

// sameRunError asserts the two engines failed (or succeeded) the same
// way. Virgil traps must match name, message, and rendered stack
// trace; resource stops must match kind and message; internal
// compiler errors are equivalent as a class (both engines must reject
// the same corrupt IR, but their self-diagnostics may differ).
func sameRunError(t *testing.T, label string, bcErr, swErr error) {
	t.Helper()
	if (bcErr == nil) != (swErr == nil) {
		t.Fatalf("%s: run outcomes differ:\nbytecode: %v\nswitch:   %v", label, bcErr, swErr)
	}
	if bcErr == nil {
		return
	}
	if bv, ok := bcErr.(*interp.VirgilError); ok {
		sv, ok := swErr.(*interp.VirgilError)
		if !ok {
			t.Fatalf("%s: bytecode trapped %v, switch got %T: %v", label, bv, swErr, swErr)
		}
		if bv.Name != sv.Name || bv.Msg != sv.Msg {
			t.Fatalf("%s: traps differ: bytecode %q/%q, switch %q/%q", label, bv.Name, bv.Msg, sv.Name, sv.Msg)
		}
		if bt, st := bv.TraceString(), sv.TraceString(); bt != st {
			t.Fatalf("%s: %s traces differ:\nbytecode:\n%s\nswitch:\n%s", label, bv.Name, bt, st)
		}
		return
	}
	if br, ok := bcErr.(*interp.ResourceError); ok {
		sr, ok := swErr.(*interp.ResourceError)
		if !ok {
			t.Fatalf("%s: bytecode stopped with %v, switch got %T: %v", label, br, swErr, swErr)
		}
		if br.Kind != sr.Kind || br.Func != sr.Func || br.Msg != sr.Msg {
			t.Fatalf("%s: resource stops differ: bytecode %+v, switch %+v", label, br, sr)
		}
		return
	}
	if _, ok := bcErr.(*src.ICE); ok {
		if _, ok := swErr.(*src.ICE); !ok {
			t.Fatalf("%s: bytecode ICEd, switch got %T: %v", label, swErr, swErr)
		}
		return
	}
	if _, ok := swErr.(*src.ICE); ok {
		t.Fatalf("%s: switch ICEd, bytecode got %T: %v", label, bcErr, bcErr)
	}
	if bcErr.Error() != swErr.Error() {
		t.Fatalf("%s: errors differ:\nbytecode: %v\nswitch:   %v", label, bcErr, swErr)
	}
}

// sameRun asserts complete observable equality of two run results.
func sameRun(t *testing.T, label string, bc, sw core.RunResult) {
	t.Helper()
	sameRunError(t, label, bc.Err, sw.Err)
	if bc.Output != sw.Output {
		t.Fatalf("%s: outputs differ:\nbytecode: %q\nswitch:   %q", label, bc.Output, sw.Output)
	}
	if bc.Stats != sw.Stats {
		t.Fatalf("%s: stats differ:\nbytecode: %+v\nswitch:   %+v", label, bc.Stats, sw.Stats)
	}
}

// TestEngineDifferentialCorpus runs every corpus program under every
// ablation configuration, at sequential and parallel compile jobs,
// under both engines.
func TestEngineDifferentialCorpus(t *testing.T) {
	for _, p := range testprogs.All() {
		t.Run(p.Name, func(t *testing.T) {
			for _, base := range diffConfigs() {
				for _, jobs := range []int{1, 8} {
					cfg := base
					cfg.Jobs = jobs
					label := fmt.Sprintf("%s/jobs=%d", cfgLabel(cfg), jobs)
					bc, sw, ok := runBothEngines(t, label, p.Name+".v", p.Source, cfg)
					if !ok {
						continue
					}
					sameRun(t, label, bc, sw)
					if bc.Err == nil && bc.Output != p.Want {
						t.Errorf("%s: output = %q, want %q", label, bc.Output, p.Want)
					}
				}
			}
		})
	}
}

// TestEngineDifferentialTraps runs the trap corpus (every Virgil-level
// exception) under both canonical configurations and both engines,
// asserting identical trap identity and stack traces.
func TestEngineDifferentialTraps(t *testing.T) {
	for _, tp := range trapProgs {
		t.Run(tp.name, func(t *testing.T) {
			for _, base := range trapConfigs() {
				bc, sw, ok := runBothEngines(t, base.Name(), "trap.v", tp.src, base)
				if !ok {
					t.Fatalf("[%s] trap program failed to compile", base.Name())
				}
				sameRun(t, base.Name(), bc, sw)
				if ve, ok := bc.Err.(*interp.VirgilError); !ok || ve.Name != tp.name {
					t.Errorf("[%s] want %s under both engines, got %v", base.Name(), tp.name, bc.Err)
				}
			}
		})
	}
}

// TestEngineDifferentialExamples covers the end-to-end example
// programs shipped in examples/virgil.
func TestEngineDifferentialExamples(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "virgil")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("examples dir: %v", err)
	}
	ran := 0
	for _, ent := range ents {
		if filepath.Ext(ent.Name()) != ".v" {
			continue
		}
		ran++
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		t.Run(ent.Name(), func(t *testing.T) {
			for _, cfg := range diffConfigs() {
				bc, sw, ok := runBothEngines(t, cfgLabel(cfg), ent.Name(), string(data), cfg)
				if !ok {
					continue
				}
				sameRun(t, cfgLabel(cfg), bc, sw)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example programs found")
	}
}

// TestEngineDifferentialCrashers feeds the crasher corpus — inputs
// that historically broke the pipeline — through both engines. Most
// fail to compile (identically); any that compile must run
// identically.
func TestEngineDifferentialCrashers(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "crashers")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("crashers dir: %v", err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		t.Run(ent.Name(), func(t *testing.T) {
			for _, base := range diffConfigs() {
				cfg := base
				cfg.MaxSteps = 200_000
				cfg.MaxDepth = 256
				cfg.MaxHeap = 4 << 20
				bc, sw, ok := runBothEngines(t, cfgLabel(cfg), ent.Name(), string(data), cfg)
				if !ok {
					continue
				}
				sameRun(t, cfgLabel(cfg), bc, sw)
			}
		})
	}
}

// TestEngineStepBudgetEquivalence sweeps tight step budgets across a
// recursive and an allocating program, asserting the two engines trap
// at exactly the same step — the superinstruction fusion must not
// change where the budget guard fires or the final step count.
func TestEngineStepBudgetEquivalence(t *testing.T) {
	for _, name := range []string{"fib", "hello", "classes_b1_b7"} {
		p := testprogs.Get(name)
		t.Run(name, func(t *testing.T) {
			for _, base := range []core.Config{core.Reference(), core.Compiled()} {
				for budget := int64(1); budget <= 60; budget++ {
					cfg := base
					cfg.MaxSteps = budget
					label := fmt.Sprintf("%s/steps=%d", cfg.Name(), budget)
					bc, sw, ok := runBothEngines(t, label, name+".v", p.Source, cfg)
					if !ok {
						t.Fatalf("%s: failed to compile", label)
					}
					sameRun(t, label, bc, sw)
				}
			}
		})
	}
}

package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/testprogs"
)

// This file is the differential proof that the analysis-driven passes
// (call-graph devirtualization, pure-call elimination, stack
// promotion) are semantics-preserving: for every corpus program, under
// both engines, the optimized-with-analysis build produces the same
// output and the same trap as the optimized-without-analysis build —
// and never charges more modeled heap.

// analyzeOnOff compiles p under Optimize with and without the analysis
// layer and runs both under the given engine.
func analyzeOnOff(t *testing.T, engine, name, source string) (on, off core.RunResult) {
	t.Helper()
	base := core.Compiled()
	base.Engine = engine

	onCfg := base
	offCfg := base
	offCfg.Analyze = false

	onComp, err := core.Compile(name, source, onCfg)
	if err != nil {
		t.Fatalf("compile with analysis: %v", err)
	}
	offComp, err := core.Compile(name, source, offCfg)
	if err != nil {
		t.Fatalf("compile without analysis: %v", err)
	}
	return onComp.Run(), offComp.Run()
}

// analysisTrap extracts the Virgil trap identity, or "" for success.
// Resource stops return their kind so budget-sensitive programs can be
// skipped rather than compared (the analysis passes legitimately
// change step and heap accounting, which moves where a budget fires).
func analysisTrap(err error) (name string, resource bool) {
	switch e := err.(type) {
	case nil:
		return "", false
	case *interp.VirgilError:
		if e.Name == "!HeapExhausted" {
			return e.Name, true
		}
		return e.Name, false
	case *interp.ResourceError:
		return string(e.Kind), true
	default:
		return err.Error(), false
	}
}

func TestAnalysisDifferentialCorpus(t *testing.T) {
	for _, p := range testprogs.All() {
		t.Run(p.Name, func(t *testing.T) {
			for _, engine := range []string{core.EngineBytecode, core.EngineSwitch} {
				label := fmt.Sprintf("%s/%s", p.Name, engine)
				on, off := analyzeOnOff(t, engine, p.Name+".v", p.Source)

				onTrap, onRes := analysisTrap(on.Err)
				offTrap, offRes := analysisTrap(off.Err)
				if onRes || offRes {
					// A resource stop on either side: accounting moved a
					// budget boundary, not comparable observably.
					continue
				}
				if onTrap != offTrap {
					t.Fatalf("%s: traps differ: analyze=on %q, analyze=off %q",
						label, onTrap, offTrap)
				}
				if on.Output != off.Output {
					t.Fatalf("%s: outputs differ:\nanalyze=on:  %q\nanalyze=off: %q",
						label, on.Output, off.Output)
				}
				// Stack promotion and pure-call elimination only remove
				// heap charges; they can never add one.
				if on.Stats.HeapBytes > off.Stats.HeapBytes {
					t.Errorf("%s: analysis increased heap: on=%d off=%d",
						label, on.Stats.HeapBytes, off.Stats.HeapBytes)
				}
			}
		})
	}
}

// TestAnalysisHeapReduction pins the headline claim: on the
// closure/tuple-churn benchmark programs the analysis layer removes at
// least 30% of the modeled heap charge.
func TestAnalysisHeapReduction(t *testing.T) {
	reduced := 0
	churn := []string{"bench_closure_churn", "bench_object_churn"}
	for _, name := range churn {
		p := testprogs.Get(name)
		t.Run(name, func(t *testing.T) {
			on, off := analyzeOnOff(t, core.EngineBytecode, name+".v", p.Source)
			if on.Err != nil || off.Err != nil {
				t.Fatalf("runs failed: on=%v off=%v", on.Err, off.Err)
			}
			if off.Stats.HeapBytes == 0 {
				t.Fatal("baseline build charges no heap; benchmark is broken")
			}
			pct := 100 * float64(off.Stats.HeapBytes-on.Stats.HeapBytes) / float64(off.Stats.HeapBytes)
			t.Logf("heap: off=%d on=%d (%.1f%% reduction)", off.Stats.HeapBytes, on.Stats.HeapBytes, pct)
			if pct < 30 {
				t.Errorf("heap reduction %.1f%% < 30%%", pct)
			} else {
				reduced++
			}
		})
	}
	if reduced < 2 && !t.Failed() {
		t.Errorf("only %d of %d churn programs hit the 30%% reduction target", reduced, len(churn))
	}
}

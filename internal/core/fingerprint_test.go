package core

import (
	"reflect"
	"testing"

	"repro/internal/profile"
)

// TestStoreFingerprintCoversConfig enumerates every Config field by
// reflection and asserts the storeKeyFields classification is total:
// a field added to Config without a classification fails here, so the
// artifact-store key can never silently drift from the config surface.
// Each field is then mutated and the fingerprint must move exactly for
// the in-key fields.
func TestStoreFingerprintCoversConfig(t *testing.T) {
	base := Config{Monomorphize: true, Normalize: true, Optimize: true}
	baseFP := base.storeFingerprint()

	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		inKey, classified := storeKeyFields[f.Name]
		if !classified {
			t.Errorf("Config.%s has no storeKeyFields classification: decide whether it shapes compiled output", f.Name)
			continue
		}
		mutated := base
		mv := reflect.ValueOf(&mutated).Elem().Field(i)
		switch f.Name {
		case "PGO":
			prof := &profile.Profile{}
			mv.Set(reflect.ValueOf(prof))
		default:
			switch mv.Kind() {
			case reflect.Bool:
				mv.SetBool(!mv.Bool())
			case reflect.Int, reflect.Int64:
				mv.SetInt(mv.Int() + 7)
			case reflect.String:
				mv.SetString(mv.String() + "x")
			default:
				t.Fatalf("Config.%s: unhandled kind %s — extend the audit", f.Name, mv.Kind())
			}
		}
		moved := mutated.storeFingerprint() != baseFP
		if inKey && !moved {
			t.Errorf("Config.%s is classified in-key but mutating it left the fingerprint unchanged", f.Name)
		}
		if !inKey && moved {
			t.Errorf("Config.%s is classified output-irrelevant but mutating it moved the fingerprint", f.Name)
		}
	}
}

// TestStoreFingerprintPGOProfiles: two different profiles must not
// share artifacts — PGO steers devirtualization and inlining.
func TestStoreFingerprintPGOProfiles(t *testing.T) {
	base := Config{Monomorphize: true, Normalize: true, Optimize: true}
	a, b := base, base
	a.PGO = &profile.Profile{Funcs: map[string]*profile.Func{"f": {Calls: 1}}}
	b.PGO = &profile.Profile{Funcs: map[string]*profile.Func{"f": {Calls: 2}}}
	if a.storeFingerprint() == b.storeFingerprint() {
		t.Fatalf("different PGO profiles share a fingerprint")
	}
	if a.storeFingerprint() != a.storeFingerprint() {
		t.Fatalf("fingerprint not stable")
	}
}

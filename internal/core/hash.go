package core

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"repro/internal/ir"
	"repro/internal/src"
	"repro/internal/typecheck"
	"repro/internal/types"
)

// Content hashing for the artifact store. Three digests drive reuse:
//
//   - hashFiles: the whole source set. Equal hash → the previous
//     compilation is returned as-is (a whole-module hit).
//   - hashEnv: the global environment a function body compiles
//     against — class layouts, vtable shapes, globals, enum defs, and
//     the program entry points, all read off the lowered module. Any
//     type-level edit changes this hash and forces a full recompile;
//     function-body edits leave it untouched.
//   - hashFunc: one lowered function's post-check content. This is the
//     per-function artifact key: a function whose self-hash and
//     environment hash both match the previous compilation (and whose
//     callees, transitively, also match) reuses its compiled artifact.
//
// All three are structural walks, not dump-text hashes: they include
// exactly the fields later stages read (including source positions,
// which engines surface in traps) and nothing incidental.

// digest accumulates length-prefixed fields into a buffer and hashes
// it once at sum() — far cheaper than streaming tiny writes through a
// hash.Hash, and the buffer is reusable across functions. Adjacent
// strings can never collide by resegmentation.
type digest struct {
	buf []byte
	// typs memoizes Type.String() results. Types are interned per
	// compilation, so one module-wide map saves rebuilding the same
	// canonical strings for every instruction that mentions a type.
	// Optional: a nil map just recomputes.
	typs map[types.Type]string
	// ids interns types within one digest: the first mention of a type
	// writes its canonical string and assigns the next dense ID; later
	// mentions write only the ID. Identical walks assign identical IDs,
	// so the encoding is deterministic for identical content, and most
	// of a function's type bytes collapse to one varint each. Optional:
	// nil writes the full string every time (still deterministic).
	ids    map[types.Type]typeID
	epoch  int
	nextID int
	// posFile/posIdx carry position-decoding state between pos() calls:
	// the previous position's file (its name is run-length encoded — a
	// function's instructions all live in one file) and its resolved
	// line index, the hint that makes mostly-forward position walks O(1).
	posFile *src.File
	posIdx  int
}

// typeID is an interned type slot; epoch lets one map serve many
// digests without clearing between functions.
type typeID struct {
	epoch int
	id    int
}

func newDigest() *digest { return &digest{} }

// reset re-arms the digest for another hash, keeping its buffer and
// maps; interned type IDs from earlier hashes are invalidated by epoch.
func (d *digest) reset() {
	d.buf = d.buf[:0]
	d.epoch++
	d.nextID = 0
	// Position state must not leak across hashes: whether a pos writes
	// its file name depends on the previous pos, so each hash must start
	// from the same blank state to encode identical content identically.
	d.posFile = nil
	d.posIdx = 0
}

func (d *digest) int(v int64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], v)
	d.buf = append(d.buf, b[:n]...)
}

func (d *digest) str(s string) {
	d.int(int64(len(s)))
	d.buf = append(d.buf, s...)
}

func (d *digest) bool(b bool) {
	if b {
		d.int(1)
	} else {
		d.int(0)
	}
}

// typ hashes a type by its canonical string form (interned to a dense
// ID after first mention). Types are interned per compilation, so the
// string is the only stable cross-compilation identity. A leading tag
// keeps the string and ID encodings from aliasing.
func (d *digest) typ(t types.Type) {
	if t == nil {
		d.int(2)
		return
	}
	if tid, ok := d.ids[t]; ok && tid.epoch == d.epoch {
		d.int(1)
		d.int(int64(tid.id))
		return
	}
	d.int(0)
	s, ok := d.typs[t]
	if !ok {
		s = t.String()
		if d.typs != nil {
			d.typs[t] = s
		}
	}
	d.str(s)
	if d.ids != nil {
		// IDs are dense per epoch (not per map lifetime): the encoding of
		// one function must depend only on its own walk, never on how many
		// types earlier functions interned.
		d.ids[t] = typeID{epoch: d.epoch, id: d.nextID}
		d.nextID++
	}
}

func (d *digest) pos(p src.Pos) {
	if p.File == nil {
		d.str("∅")
		return
	}
	// file:line:col, not byte offset: a same-length edit can move line
	// boundaries without moving offsets, and engines report positions
	// in traps. The file name is run-length encoded — tag 1 means "same
	// name as the previous position", which repeats for every
	// instruction of a function. Name equality (not pointer equality)
	// keeps the encoding a pure function of content.
	hint := 0
	if d.posFile != nil && p.File.Name == d.posFile.Name {
		d.int(1)
		if p.File == d.posFile {
			hint = d.posIdx
		}
	} else {
		d.int(0)
		d.str(p.File.Name)
	}
	line, col, idx := p.File.LineColHint(p.Off, hint)
	d.posFile, d.posIdx = p.File, idx
	d.int(int64(line))
	d.int(int64(col))
}

func (d *digest) sum() [32]byte {
	return sha256.Sum256(d.buf)
}

// hashFiles digests the full source set, names included.
func hashFiles(files []File) [32]byte {
	d := newDigest()
	d.int(int64(len(files)))
	for _, f := range files {
		d.str(f.Name)
		d.str(f.Source)
	}
	return d.sum()
}

// hashFunc digests one lowered function: signature, type parameters,
// and every instruction field the later stages read. Register identity
// is hashed as (ID, type, name) — IDs are densely allocated in creation
// order by lowering, so equal walks imply equal register structure.
func hashFunc(f *ir.Func) [32]byte {
	d := newDigest()
	d.funcInto(f)
	return d.sum()
}

// funcInto writes one function's content into the (reset) digest.
func (d *digest) funcInto(f *ir.Func) {
	d.str(f.Name)
	d.int(int64(f.Kind))
	d.int(int64(f.VtSlot))
	d.int(int64(f.NumClassParams))
	if f.Class != nil {
		d.str(f.Class.Name)
	} else {
		d.str("∅")
	}
	d.int(int64(len(f.TypeParams)))
	for _, tp := range f.TypeParams {
		d.str(tp.Name)
		d.int(int64(tp.Index))
	}
	d.int(int64(len(f.Params)))
	for _, p := range f.Params {
		d.reg(p)
	}
	d.int(int64(len(f.Results)))
	for _, r := range f.Results {
		d.typ(r)
	}
	d.int(int64(len(f.Blocks)))
	for _, b := range f.Blocks {
		d.int(int64(b.ID))
		d.int(int64(len(b.Instrs)))
		for _, in := range b.Instrs {
			d.instr(in)
		}
	}
}

func (d *digest) reg(r *ir.Reg) {
	if r == nil {
		d.str("∅")
		return
	}
	d.int(int64(r.ID))
	d.typ(r.Type)
	d.str(r.Name)
}

func (d *digest) instr(in *ir.Instr) {
	d.int(int64(in.Op))
	d.int(int64(len(in.Dst)))
	for _, r := range in.Dst {
		d.reg(r)
	}
	d.int(int64(len(in.Args)))
	for _, r := range in.Args {
		d.reg(r)
	}
	d.typ(in.Type)
	d.typ(in.Type2)
	if in.Fn != nil {
		d.str(in.Fn.Name)
	} else {
		d.str("∅")
	}
	if in.Global != nil {
		d.str(in.Global.Name)
	} else {
		d.str("∅")
	}
	d.int(int64(in.FieldSlot))
	d.int(in.IVal)
	d.str(in.SVal)
	d.int(int64(len(in.TypeArgs)))
	for _, t := range in.TypeArgs {
		d.typ(t)
	}
	d.int(int64(len(in.Blocks)))
	for _, b := range in.Blocks {
		d.int(int64(b.ID))
	}
	d.pos(in.Pos)
	d.bool(in.StackAlloc)
}

// hashEnv digests the global environment of the lowered module: the
// class forest (layouts, vtable shapes, depths), globals, enum defs,
// and entry points. Equal env hashes mean a function body that also
// self-hashes equal compiles to the same artifact: every cross-function
// fact later stages consult (field slots, vtable slots, global indices,
// enum cases, subtype structure) is pinned here.
func hashEnv(mod *ir.Module, prog *typecheck.Program) [32]byte {
	d := newDigest()
	d.int(int64(len(mod.Classes)))
	for _, c := range mod.Classes {
		d.str(c.Name)
		if c.Def != nil {
			d.str(c.Def.Name)
		} else {
			d.str("∅")
		}
		d.int(int64(len(c.Args)))
		for _, a := range c.Args {
			d.typ(a)
		}
		if c.Parent != nil {
			d.str(c.Parent.Name)
		} else {
			d.str("∅")
		}
		d.int(int64(c.Depth))
		d.int(int64(len(c.TypeParams)))
		for _, tp := range c.TypeParams {
			d.str(tp.Name)
		}
		d.int(int64(len(c.Fields)))
		for _, f := range c.Fields {
			d.str(f.Name)
			d.typ(f.Type)
		}
		d.int(int64(len(c.Vtable)))
		for _, m := range c.Vtable {
			if m != nil {
				d.str(m.Name)
			} else {
				d.str("∅")
			}
		}
	}
	d.int(int64(len(mod.Globals)))
	for _, g := range mod.Globals {
		d.str(g.Name)
		d.typ(g.Type)
		d.int(int64(g.Index))
	}
	// Enum defs come from the checked program: the lowered module only
	// mentions enums through types, but a case rename or reorder changes
	// tag values everywhere.
	var enums []*typecheck.EnumSym
	enums = append(enums, prog.Enums...)
	sort.Slice(enums, func(i, j int) bool { return enums[i].Name < enums[j].Name })
	d.int(int64(len(enums)))
	for _, e := range enums {
		d.str(e.Name)
		d.int(int64(len(e.Def.Cases)))
		for _, cs := range e.Def.Cases {
			d.str(cs)
		}
	}
	if mod.Main != nil {
		d.str(mod.Main.Name)
	} else {
		d.str("∅")
	}
	if mod.Init != nil {
		d.str(mod.Init.Name)
	} else {
		d.str("∅")
	}
	return d.sum()
}

// hashLoweredFuncs self-hashes every function of the lowered module,
// sharing one digest (buffer, type-string memo, intern map) across the
// walk. A duplicate name (which would make name-keyed reuse ambiguous)
// returns ok=false; the caller falls back to a full compile.
func hashLoweredFuncs(mod *ir.Module) (map[string][32]byte, bool) {
	m := make(map[string][32]byte, len(mod.Funcs))
	d := newDigest()
	d.typs = make(map[types.Type]string)
	d.ids = make(map[types.Type]typeID)
	for _, f := range mod.Funcs {
		if _, dup := m[f.Name]; dup {
			return nil, false
		}
		d.reset()
		d.funcInto(f)
		m[f.Name] = d.sum()
	}
	return m, true
}

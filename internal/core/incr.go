package core

import (
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/ast"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/src"
	"repro/internal/types"
)

// Incremental compilation over a content-addressed artifact store.
//
// The store keeps, per config fingerprint, the most recent successful
// compilation together with everything needed to reuse its artifacts
// piecemeal: per-function content hashes of the lowered (post-check)
// IR, an environment hash over the type-level world, the optimizer's
// per-round replay recording, and name-keyed tables of the final
// functions, globals, and nominal type defs.
//
// A request compiles in one of three ways:
//
//   - whole-module hit: the source set hashes equal to the base's. The
//     base Compilation is returned, cloned under the request's runtime
//     config. Valid for every config the fingerprint covers, including
//     analysis and PGO builds.
//
//   - function-granular incremental: parse/check/lower run fresh (the
//     checker is whole-program), then the per-function hashes are
//     diffed against the base. Functions whose own hash and whose
//     transitive callees' hashes are unchanged — and whose type-level
//     environment is unchanged — skip body specialization,
//     normalization, and optimization entirely: their compiled bodies
//     are reused by reference from the base module. Only the dirty
//     remainder recompiles, with the optimizer replaying the base
//     recording so the result is byte-identical to a from-scratch
//     compile (enforced by the edit-script differential suite and the
//     VIRGIL_INCR_VERIFY double-compile mode).
//
//   - from-scratch fallback: anything the incremental path cannot
//     prove safe (environment changed, vtable layouts moved, transfer
//     met an unknown def, duplicate names, ineligible config) falls
//     back to a full compile, which then becomes the new base. The
//     fallback reason is reported in IncrStats, never an error.
//
// The incremental path is restricted to full pipelines without
// whole-program optimization passes (Monomorphize && Normalize &&
// Optimize && !Analyze && PGO == nil): analysis- and profile-driven
// passes read cross-function state that per-function replay cannot
// reproduce. Other configs still get whole-module hits.

// Compile modes reported in IncrStats.Mode.
const (
	// ModeCold: no store, or no base for this config fingerprint.
	ModeCold = "cold"
	// ModeModuleHit: source set unchanged; base compilation returned.
	ModeModuleHit = "module-hit"
	// ModeIncremental: only dirty functions recompiled.
	ModeIncremental = "incremental"
	// ModeFallback: base existed but couldn't be reused; full compile.
	ModeFallback = "fallback"
	// ModeDegraded: the store was poisoned (fault injection point
	// "artifact-store"); compiled from scratch, bypassing the store.
	ModeDegraded = "degraded"
)

// IncrStats describes how one CompileFilesIncremental call used the
// artifact store.
type IncrStats struct {
	Mode string
	// Reason explains a fallback or degraded compile.
	Reason string
	// FuncsReused counts compiled function bodies taken from the base
	// (for module hits, the whole module's functions).
	FuncsReused int
	// FuncsRecompiled counts functions recompiled this call.
	FuncsRecompiled int
}

// incrBase is one store entry: a finished compilation plus the tables
// that make its artifacts reusable. All fields are immutable after
// insertion; reused functions are shared by reference across the
// compilations assembled from them.
type incrBase struct {
	comp    *Compilation
	srcHash [32]byte
	// envHash and selfHash are nil/zero for entries that only support
	// whole-module hits (ineligible configs, or defs too ambiguous to
	// table).
	envHash   [32]byte
	selfHash  map[string][32]byte // lowered func name → content hash
	vtables   map[string][]string // class name → vtable entry func names
	funcs   map[string]*ir.Func // final (post-opt) funcs by name
	globals map[string]*ir.Global
	rec     *opt.Recording
	module  *ir.Module
	// xferDefs carries the nominal def tables for type transfer.
	xferDefs xferDefs
	// astc is the parse cache shared (by pointer, with its mutex)
	// across every generation of base for this fingerprint.
	astc *astCache
}

type xferDefs struct {
	classDefs map[string]*types.ClassDef
	enumDefs  map[string]*types.EnumDef
}

// astCache carries parsed files across the compiles of one store
// fingerprint: a file whose content hash is unchanged skips parsing
// and hands its previous AST to the checker again. The checker
// annotates AST nodes in place, so reuse must be serialized — mu is
// held from parse through lower, and the cache object (with its
// mutex) is inherited by every later base of the same fingerprint,
// keeping exactly one lock per set of compiles that can share nodes.
// Distinct fingerprints never share ASTs.
type astCache struct {
	mu sync.Mutex
	m  map[string]astEntry // file name → last successful parse
}

// astEntry pins a cached AST to the exact source bytes it parsed from.
type astEntry struct {
	hash [32]byte
	file *ast.File
}

func newASTCache() *astCache { return &astCache{m: map[string]astEntry{}} }

// match returns the cached ASTs valid for files, keyed by name. Caller
// holds mu. Duplicate file names make name-keyed reuse ambiguous:
// match returns nil and update refuses to cache them.
func (c *astCache) match(files []File, hashes [][32]byte) map[string]*ast.File {
	if len(c.m) == 0 || dupNames(files) {
		return nil
	}
	out := make(map[string]*ast.File, len(files))
	for i, f := range files {
		if e, ok := c.m[f.Name]; ok && e.hash == hashes[i] {
			out[f.Name] = e.file
		}
	}
	return out
}

// update absorbs a successful frontend's ASTs. Caller holds mu.
func (c *astCache) update(files []File, hashes [][32]byte, parsed []*ast.File) {
	if dupNames(files) {
		return
	}
	for i, f := range files {
		if i < len(parsed) && parsed[i] != nil {
			c.m[f.Name] = astEntry{hash: hashes[i], file: parsed[i]}
		}
	}
}

func dupNames(files []File) bool {
	seen := make(map[string]bool, len(files))
	for _, f := range files {
		if seen[f.Name] {
			return true
		}
		seen[f.Name] = true
	}
	return false
}

func fileHashes(files []File) [][32]byte {
	hs := make([][32]byte, len(files))
	for i, f := range files {
		hs[i] = sha256.Sum256([]byte(f.Source))
	}
	return hs
}

// Store is a bounded LRU of incremental bases, one per config
// fingerprint. Safe for concurrent use; typical owners are one Store
// per serve process shared across requests, or one per test.
type Store struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	m   map[[32]byte]*list.Element
}

type storeSlot struct {
	fp   [32]byte
	base *incrBase
}

// NewStore returns a store holding at most capacity fingerprints
// (minimum 1).
func NewStore(capacity int) *Store {
	if capacity < 1 {
		capacity = 1
	}
	return &Store{cap: capacity, ll: list.New(), m: map[[32]byte]*list.Element{}}
}

// Len reports the number of cached fingerprints.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

func (s *Store) lookup(fp [32]byte) *incrBase {
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.m[fp]
	if el == nil {
		return nil
	}
	s.ll.MoveToFront(el)
	return el.Value.(*storeSlot).base
}

func (s *Store) insert(fp [32]byte, base *incrBase) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el := s.m[fp]; el != nil {
		el.Value.(*storeSlot).base = base
		s.ll.MoveToFront(el)
		return
	}
	s.m[fp] = s.ll.PushFront(&storeSlot{fp: fp, base: base})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.m, oldest.Value.(*storeSlot).fp)
	}
}

// cloneFor returns a Compilation sharing this one's immutable compile
// artifacts under a different runtime configuration. The engine-program
// once-cell is fresh: engine choice and runtime knobs live in the
// config, so a clone translates on first use under its own settings.
func (c *Compilation) cloneFor(cfg Config) *Compilation {
	return &Compilation{
		Config:    cfg,
		Program:   c.Program,
		Module:    c.Module,
		MonoStats: c.MonoStats,
		NormStats: c.NormStats,
		OptStats:  c.OptStats,
		Analysis:  c.Analysis,
		Timings:   c.Timings,
	}
}

// incrEligible reports whether cfg can take the function-granular
// path. Analysis- and profile-driven optimizer passes read
// whole-program state that per-function replay cannot reproduce, so
// those configs only get whole-module hits.
func incrEligible(cfg Config) bool {
	return cfg.Monomorphize && cfg.Normalize && cfg.Optimize && !cfg.Analyze && cfg.PGO == nil
}

// CompileFilesIncremental compiles files like CompileFilesContext but
// consults (and refreshes) the artifact store. A nil store degrades to
// a plain compile. The returned IncrStats is never nil and reports
// which reuse path ran; compile errors are exactly those a plain
// compile would return.
func CompileFilesIncremental(ctx context.Context, files []File, cfg Config, store *Store) (*Compilation, *IncrStats, error) {
	st := &IncrStats{Mode: ModeCold}
	if store == nil {
		comp, err := CompileFilesContext(ctx, files, cfg)
		if comp != nil {
			st.FuncsRecompiled = len(comp.Module.Funcs)
		}
		return comp, st, err
	}
	if err := faultinject.Point(ctx, "artifact-store"); err != nil {
		// Poisoned store: record a structured reason and compile from
		// scratch without reading or writing the store. Degraded output
		// is always correct output.
		st.Mode = ModeDegraded
		st.Reason = err.Error()
		comp, cerr := CompileFilesContext(ctx, files, cfg)
		if comp != nil {
			st.FuncsRecompiled = len(comp.Module.Funcs)
		}
		return comp, st, cerr
	}

	fp := cfg.storeFingerprint()
	srcH := hashFiles(files)
	base := store.lookup(fp)
	if base != nil && base.srcHash == srcH {
		st.Mode = ModeModuleHit
		st.FuncsReused = len(base.comp.Module.Funcs)
		return base.comp.cloneFor(cfg), st, nil
	}

	p, err := newPipeline(ctx, files, cfg)
	if err != nil {
		return nil, st, err
	}
	// Reuse unchanged files' ASTs from the base's parse cache. The
	// checker re-annotates nodes in place, so the cache mutex is held
	// across the whole frontend (parse→check→lower); after lowering,
	// nothing downstream reads the AST. The cache survives frontend
	// failure untouched — entries are only added on success, and a
	// failed re-check simply re-annotates on the next use.
	astc := newASTCache()
	if base != nil && base.astc != nil {
		astc = base.astc
	}
	fileH := fileHashes(files)
	astc.mu.Lock()
	p.preParsed = astc.match(files, fileH)
	lowered, err := p.frontend()
	if err == nil {
		astc.update(files, fileH, p.parsed)
	}
	astc.mu.Unlock()
	if err != nil {
		return nil, st, err
	}

	eligible := incrEligible(cfg)
	var selfNew map[string][32]byte
	var envH [32]byte
	if eligible {
		var uniq bool
		selfNew, uniq = hashLoweredFuncs(lowered)
		if !uniq {
			eligible = false
			st.Reason = "duplicate lowered function names"
		} else {
			envH = hashEnv(lowered, p.comp.Program)
		}
	}

	if eligible && base != nil && base.selfHash != nil {
		comp, ok, ierr := incrTry(p, lowered, base, selfNew, envH, st)
		if ierr != nil {
			return nil, st, ierr
		}
		if ok {
			newBase := baseFromIncremental(comp, srcH, envH, selfNew, base)
			newBase.astc = astc
			store.insert(fp, newBase)
			if verr := incrVerify(ctx, files, cfg, comp); verr != nil {
				return nil, st, verr
			}
			return comp, st, nil
		}
		st.Mode = ModeFallback
	} else if base != nil {
		st.Mode = ModeFallback
		if st.Reason == "" {
			st.Reason = "config not eligible for function-granular reuse"
		}
	}

	var rec *opt.Recording
	if eligible {
		rec = &opt.Recording{}
	}
	comp, err := p.backend(lowered, backendOpts{record: rec})
	if err != nil {
		return nil, st, err
	}
	st.FuncsRecompiled = len(comp.Module.Funcs)
	newBase := baseFromScratch(comp, srcH, envH, selfNew, rec, eligible)
	newBase.astc = astc
	store.insert(fp, newBase)
	return comp, st, nil
}

// pruneForStore shallow-copies a compilation for store retention,
// dropping the checked AST: no consumer reads it off a module hit, and
// store entries outlive their compile by the life of the process, so
// retaining the largest pointer-rich structure of the frontend would
// tax every GC cycle of every later compile against this store.
func pruneForStore(comp *Compilation) *Compilation {
	c := comp.cloneFor(comp.Config)
	c.Program = nil
	return c
}

// baseFromScratch builds a store entry from a full compile. When the
// def tables can't be built unambiguously the entry still serves
// whole-module hits (selfHash nil disables the function-granular path).
func baseFromScratch(comp *Compilation, srcH, envH [32]byte, selfH map[string][32]byte, rec *opt.Recording, eligible bool) *incrBase {
	b := &incrBase{comp: pruneForStore(comp), srcHash: srcH, module: comp.Module}
	if !eligible || selfH == nil {
		return b
	}
	classDefs, enumDefs, ok := collectDefs(comp.Module)
	if !ok {
		return b
	}
	b.envHash = envH
	b.selfHash = selfH
	b.rec = rec
	b.xferDefs = xferDefs{classDefs: classDefs, enumDefs: enumDefs}
	b.fillTables()
	return b
}

// baseFromIncremental builds the next store entry from an
// incrementally assembled compilation, inheriting the previous base's
// def tables (the environment hash matched, so the def world is the
// same).
func baseFromIncremental(comp *Compilation, srcH, envH [32]byte, selfH map[string][32]byte, prev *incrBase) *incrBase {
	b := &incrBase{
		comp:     pruneForStore(comp),
		srcHash:  srcH,
		envHash:  envH,
		selfHash: selfH,
		rec:      comp.incrRec,
		module:   comp.Module,
		xferDefs: prev.xferDefs,
	}
	b.fillTables()
	return b
}

// fillTables derives the name-keyed reuse tables from the final module.
func (b *incrBase) fillTables() {
	b.funcs = make(map[string]*ir.Func, len(b.module.Funcs))
	for _, f := range b.module.Funcs {
		if _, dup := b.funcs[f.Name]; dup {
			// Ambiguous names: disable function-granular reuse.
			b.selfHash = nil
			return
		}
		b.funcs[f.Name] = f
	}
	b.globals = make(map[string]*ir.Global, len(b.module.Globals))
	for _, g := range b.module.Globals {
		b.globals[g.Name] = g
	}
	b.vtables = make(map[string][]string, len(b.module.Classes))
	for _, c := range b.module.Classes {
		b.vtables[c.Name] = vtableLayout(c)
	}
	if b.rec != nil {
		b.rec.Filter(func(name string) bool { _, ok := b.funcs[name]; return ok })
	}
}

func vtableLayout(c *ir.Class) []string {
	names := make([]string, len(c.Vtable))
	for i, f := range c.Vtable {
		if f != nil {
			names[i] = f.Name
		} else {
			names[i] = "∅"
		}
	}
	return names
}

// incrVerify, under VIRGIL_INCR_VERIFY, recompiles from scratch and
// diffs module dumps against the incremental result. A mismatch is an
// ICE: the incremental path produced output a cold compile would not.
func incrVerify(ctx context.Context, files []File, cfg Config, comp *Compilation) error {
	if os.Getenv("VIRGIL_INCR_VERIFY") == "" {
		return nil
	}
	scratch, err := CompileFilesContext(ctx, files, cfg)
	if err != nil {
		return &src.ICE{Stage: "incremental", Msg: fmt.Sprintf("double-compile failed: %v", err)}
	}
	if scratch.Module.String() != comp.Module.String() {
		return &src.ICE{Stage: "incremental", Msg: "incremental module differs from from-scratch compile"}
	}
	return nil
}

// dirtyClosure computes the set of lowered functions that must
// recompile: those whose content hash changed (or are new), plus
// everything that transitively references them. Clean functions by
// construction reference no dirty function, which is what makes their
// recorded optimizer trajectories replayable.
func dirtyClosure(lowered *ir.Module, selfNew map[string][32]byte, base map[string][32]byte) map[string]bool {
	dirty := map[string]bool{}
	var queue []string
	for name, h := range selfNew {
		if bh, ok := base[name]; !ok || bh != h {
			dirty[name] = true
			queue = append(queue, name)
		}
	}
	callers := map[string][]string{}
	for _, f := range lowered.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Fn != nil && in.Fn.Name != f.Name {
					callers[in.Fn.Name] = append(callers[in.Fn.Name], f.Name)
				}
			}
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range callers[n] {
			if !dirty[c] {
				dirty[c] = true
				queue = append(queue, c)
			}
		}
	}
	return dirty
}

// incrTry attempts the function-granular path. ok=false means "fall
// back to a full compile" with the reason in st; a non-nil error is a
// real compile error (cancellation, ICE) that must propagate.
func incrTry(p *pipeline, lowered *ir.Module, base *incrBase, selfNew map[string][32]byte, envH [32]byte, st *IncrStats) (*Compilation, bool, error) {
	if envH != base.envHash {
		st.Reason = "type environment changed"
		return nil, false, nil
	}
	dirty := dirtyClosure(lowered, selfNew, base.selfHash)
	if len(dirty) >= len(lowered.Funcs) {
		st.Reason = "all functions dirty"
		return nil, false, nil
	}

	// decided records, per monomorphized instance name, whether the
	// base's compiled body stands in. The decision is made inside the
	// mono body fan-out — which alone knows the instance→source
	// mapping (instance names are not mechanically parseable; source
	// names may contain '<') — and read back by normalization and
	// assembly after mono's completion barrier.
	var decidedMu sync.Mutex
	decided := map[string]bool{}
	monoSkip := func(dstName, srcName string) bool {
		d := base.funcs[dstName] != nil && !dirty[srcName]
		if d {
			if _, known := selfNew[srcName]; !known {
				d = false
			}
		}
		decidedMu.Lock()
		decided[dstName] = d
		decidedMu.Unlock()
		return d
	}
	reuse := func(name string) bool { return decided[name] }

	// Specialize and normalize, copying bodies only for non-reused
	// instances. The monomorphization plan itself always runs in full —
	// it is the source of instance discovery and vtable layout, which
	// the checks below compare against the base.
	partial, err := p.backend(lowered, backendOpts{monoSkip: monoSkip, normSkip: reuse, stopAfterNorm: true})
	if err != nil {
		return nil, false, err
	}
	normMod := partial.Module

	// Vtable layouts must match for every class both worlds share: a
	// moved slot would invalidate dispatch offsets baked into reused
	// bodies. Classes only the new world has are referenced only by
	// dirty functions (a clean function's instance plan is identical to
	// the base's) and carry no constraint.
	for _, c := range normMod.Classes {
		if bl, ok := base.vtables[c.Name]; ok && !equalStrings(vtableLayout(c), bl) {
			st.Reason = "vtable layout changed: " + c.Name
			return nil, false, nil
		}
	}
	// Split-global layout must match: reused bodies point at the base's
	// global objects by identity.
	if !globalsMatch(normMod, base) {
		st.Reason = "global layout changed"
		return nil, false, nil
	}

	comp, ok, reason, err := assemble(p, normMod, base, reuse, st)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		st.Reason = reason
		return nil, false, nil
	}
	st.Mode = ModeIncremental
	return comp, true, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func globalsMatch(normMod *ir.Module, base *incrBase) bool {
	if len(normMod.Globals) != len(base.module.Globals) {
		return false
	}
	for i, g := range normMod.Globals {
		bg := base.module.Globals[i]
		if g.Name != bg.Name || g.Index != bg.Index || typeStr(g.Type) != typeStr(bg.Type) {
			return false
		}
	}
	return true
}

// assemble merges the partially compiled new world into the base's
// type world: reused functions come over by reference, dirty functions
// are relinked (types re-interned, call and global references re-bound
// by name, register IDs preserved), the class forest is rebuilt fresh,
// and the optimizer replays the base recording over the dirty subset.
// Returns ok=false with a reason for any structural surprise.
func assemble(p *pipeline, normMod *ir.Module, base *incrBase, reuse func(string) bool, st *IncrStats) (*Compilation, bool, string, error) {
	cfg := p.cfg
	x := newTypeXfer(base.module.Types, base.xferDefs.classDefs, base.xferDefs.enumDefs)
	r := &relinker{x: x, funcs: map[string]*ir.Func{}, classes: map[string]*ir.Class{}, globals: base.globals}

	// Pass 1: function shells. Reused functions resolve to the base's
	// objects; dirty ones get fresh shells with registers transferred
	// ID-for-ID.
	finalFuncs := make([]*ir.Func, 0, len(normMod.Funcs))
	type dirtyFunc struct {
		nf *ir.Func
		rf *ir.Func
	}
	var dirtyFuncs []dirtyFunc
	for _, nf := range normMod.Funcs {
		if reuse(nf.Name) {
			bf := base.funcs[nf.Name]
			finalFuncs = append(finalFuncs, bf)
			r.funcs[nf.Name] = bf
			continue
		}
		rf, err := r.shell(nf)
		if err != nil {
			return nil, false, "relink: " + err.Error(), nil
		}
		finalFuncs = append(finalFuncs, rf)
		r.funcs[nf.Name] = rf
		dirtyFuncs = append(dirtyFuncs, dirtyFunc{nf: nf, rf: rf})
	}

	// Pass 2: class forest, rebuilt fresh in the base type world.
	// Partial reuse of class metadata would leave sibling Parent
	// pointers crossing worlds; a full rebuild is uniform. Shells
	// first (parents may appear after children in module order), then
	// links.
	finalClasses := make([]*ir.Class, len(normMod.Classes))
	for i, nc := range normMod.Classes {
		t, err := x.xfer(nc.Type)
		if err != nil {
			return nil, false, "relink class: " + err.Error(), nil
		}
		ct, _ := t.(*types.Class)
		args, err := x.xferAll(nc.Args)
		if err != nil {
			return nil, false, "relink class: " + err.Error(), nil
		}
		def := base.xferDefs.classDefs[nc.Def.Name]
		if nc.Def != nil && def == nil {
			return nil, false, "relink class: unknown def " + nc.Def.Name, nil
		}
		fc := &ir.Class{Name: nc.Name, Def: def, Args: args, TypeParams: nc.TypeParams, Depth: nc.Depth, Type: ct}
		finalClasses[i] = fc
		if _, dup := r.classes[nc.Name]; dup {
			return nil, false, "relink class: duplicate " + nc.Name, nil
		}
		r.classes[nc.Name] = fc
	}
	for i, nc := range normMod.Classes {
		fc := finalClasses[i]
		if nc.Parent != nil {
			fc.Parent = r.classes[nc.Parent.Name]
			if fc.Parent == nil {
				return nil, false, "relink class: missing parent " + nc.Parent.Name, nil
			}
		}
		fc.Fields = make([]ir.Field, len(nc.Fields))
		for j, fld := range nc.Fields {
			ft, err := x.xfer(fld.Type)
			if err != nil {
				return nil, false, "relink field: " + err.Error(), nil
			}
			fc.Fields[j] = ir.Field{Name: fld.Name, Type: ft}
		}
		fc.Vtable = make([]*ir.Func, len(nc.Vtable))
		for j, m := range nc.Vtable {
			if m == nil {
				continue
			}
			fm := r.funcs[m.Name]
			if fm == nil {
				return nil, false, "relink vtable: missing " + m.Name, nil
			}
			fc.Vtable[j] = fm
		}
	}

	// Pass 3: dirty function bodies.
	for _, d := range dirtyFuncs {
		if err := r.fill(d.nf, d.rf); err != nil {
			return nil, false, "relink body: " + err.Error(), nil
		}
	}

	finalMod := &ir.Module{
		Types:       base.module.Types,
		Funcs:       finalFuncs,
		Classes:     finalClasses,
		Globals:     base.module.Globals,
		Monomorphic: true,
		Normalized:  true,
	}
	if normMod.Main != nil {
		finalMod.Main = r.funcs[normMod.Main.Name]
	}
	if normMod.Init != nil {
		finalMod.Init = r.funcs[normMod.Init.Name]
	}

	// Replay optimization over the dirty subset against the base
	// recording, recording the merged trajectory for the next base.
	rec := &opt.Recording{}
	dirtyList := make([]*ir.Func, len(dirtyFuncs))
	for i, d := range dirtyFuncs {
		dirtyList[i] = d.rf
	}
	t0 := time.Now()
	if err := guard("opt", func() error {
		if err := stageStart(p.ctx, "opt"); err != nil {
			return err
		}
		stats, err := opt.OptimizeReplay(p.ctx, dirtyList, finalMod.Types, opt.Config{Jobs: cfg.jobs(), Record: rec}, base.rec)
		if err != nil {
			return err
		}
		p.comp.OptStats = stats
		return nil
	}); err != nil {
		return nil, false, "", err
	}
	p.comp.Timings.Opt = time.Since(t0)
	if err := p.verify("opt", finalMod); err != nil {
		return nil, false, "", err
	}

	comp, err := p.finish(finalMod)
	if err != nil {
		return nil, false, "", err
	}
	comp.incrRec = rec
	st.FuncsReused = len(finalFuncs) - len(dirtyFuncs)
	st.FuncsRecompiled = len(dirtyFuncs)
	return comp, true, "", nil
}

// relinker rebuilds dirty functions inside the base type world.
type relinker struct {
	x       *typeXfer
	funcs   map[string]*ir.Func
	classes map[string]*ir.Class
	globals map[string]*ir.Global
	regMaps map[*ir.Func]map[*ir.Reg]*ir.Reg
}

// shell creates the function header and every register, preserving
// register IDs so dumps (and later replay-allocated IDs) match the
// from-scratch compile exactly.
func (r *relinker) shell(nf *ir.Func) (*ir.Func, error) {
	rf := &ir.Func{
		Name:           nf.Name,
		Kind:           nf.Kind,
		VtSlot:         nf.VtSlot,
		NumClassParams: nf.NumClassParams,
	}
	results, err := r.x.xferAll(nf.Results)
	if err != nil {
		return nil, err
	}
	rf.Results = results
	regMap := map[*ir.Reg]*ir.Reg{}
	maxID := -1
	mk := func(or *ir.Reg) error {
		if or == nil || regMap[or] != nil {
			return nil
		}
		t, err := r.x.xfer(or.Type)
		if err != nil {
			return err
		}
		regMap[or] = &ir.Reg{ID: or.ID, Type: t, Name: or.Name}
		if or.ID > maxID {
			maxID = or.ID
		}
		return nil
	}
	for _, pr := range nf.Params {
		if err := mk(pr); err != nil {
			return nil, err
		}
		rf.Params = append(rf.Params, regMap[pr])
	}
	for bi, b := range nf.Blocks {
		if b.ID != bi {
			return nil, fmt.Errorf("non-sequential block ids in %s", nf.Name)
		}
		rf.NewBlock()
		for _, in := range b.Instrs {
			for _, d := range in.Dst {
				if err := mk(d); err != nil {
					return nil, err
				}
			}
			for _, a := range in.Args {
				if err := mk(a); err != nil {
					return nil, err
				}
			}
		}
	}
	rf.SetRegCount(maxID + 1)
	if r.regMaps == nil {
		r.regMaps = map[*ir.Func]map[*ir.Reg]*ir.Reg{}
	}
	r.regMaps[nf] = regMap
	return rf, nil
}

// fill copies the body, re-binding every reference into the final
// world: registers via the shell's map, call targets and globals by
// name, types through transfer, branch targets by block index.
func (r *relinker) fill(nf, rf *ir.Func) error {
	regMap := r.regMaps[nf]
	regs := func(in []*ir.Reg) []*ir.Reg {
		if in == nil {
			return nil
		}
		out := make([]*ir.Reg, len(in))
		for i, or := range in {
			out[i] = regMap[or]
		}
		return out
	}
	if nf.Class != nil {
		rf.Class = r.classes[nf.Class.Name]
		if rf.Class == nil {
			return fmt.Errorf("missing class %s", nf.Class.Name)
		}
	}
	for bi, b := range nf.Blocks {
		nb := rf.Blocks[bi]
		nb.Instrs = make([]*ir.Instr, len(b.Instrs))
		for ii, in := range b.Instrs {
			t, err := r.x.xfer(in.Type)
			if err != nil {
				return err
			}
			t2, err := r.x.xfer(in.Type2)
			if err != nil {
				return err
			}
			targs, err := r.x.xferAll(in.TypeArgs)
			if err != nil {
				return err
			}
			ni := &ir.Instr{
				Op:         in.Op,
				Dst:        regs(in.Dst),
				Args:       regs(in.Args),
				Type:       t,
				Type2:      t2,
				FieldSlot:  in.FieldSlot,
				IVal:       in.IVal,
				SVal:       in.SVal,
				TypeArgs:   targs,
				Pos:        in.Pos,
				StackAlloc: in.StackAlloc,
			}
			if in.Fn != nil {
				ni.Fn = r.funcs[in.Fn.Name]
				if ni.Fn == nil {
					return fmt.Errorf("missing func %s", in.Fn.Name)
				}
			}
			if in.Global != nil {
				ni.Global = r.globals[in.Global.Name]
				if ni.Global == nil {
					return fmt.Errorf("missing global %s", in.Global.Name)
				}
			}
			if len(in.Blocks) > 0 {
				ni.Blocks = make([]*ir.Block, len(in.Blocks))
				for j, tb := range in.Blocks {
					if tb.ID < 0 || tb.ID >= len(rf.Blocks) {
						return fmt.Errorf("branch target out of range in %s", nf.Name)
					}
					ni.Blocks[j] = rf.Blocks[tb.ID]
				}
			}
			nb.Instrs[ii] = ni
		}
	}
	return nil
}

func typeStr(t interface{ String() string }) string {
	if t == nil {
		return "∅"
	}
	return t.String()
}

package core

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/testprogs"
)

// TestCorpusAllConfigs is the central integration test: every corpus
// program produces identical output in all four pipeline
// configurations.
func TestCorpusAllConfigs(t *testing.T) {
	for _, p := range testprogs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			for _, cfg := range Configs() {
				comp, err := Compile(p.Name+".v", p.Source, cfg)
				if err != nil {
					t.Fatalf("[%s] compile: %v", cfg.Name(), err)
				}
				res := comp.Run()
				if res.Err != nil {
					t.Fatalf("[%s] run: %v", cfg.Name(), res.Err)
				}
				if res.Output != p.Want {
					t.Fatalf("[%s] got %q, want %q", cfg.Name(), res.Output, p.Want)
				}
			}
		})
	}
}

// TestCompiledModeIsClean verifies the paper's compiled-form claims in
// one place: no runtime type bindings (§4.3), no boxed tuples and no
// tuple-packing adaptations (§4.2).
func TestCompiledModeIsClean(t *testing.T) {
	for _, p := range testprogs.All() {
		comp, err := Compile(p.Name+".v", p.Source, Compiled())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		res := comp.Run()
		if res.Err != nil {
			t.Fatalf("%s: %v", p.Name, res.Err)
		}
		st := res.Stats
		if st.TypeEnvBinds != 0 {
			t.Errorf("%s: %d runtime type bindings in compiled mode", p.Name, st.TypeEnvBinds)
		}
		if st.TupleAllocs != 0 {
			t.Errorf("%s: %d boxed tuple allocations in compiled mode", p.Name, st.TupleAllocs)
		}
		if st.AdaptPacks != 0 {
			t.Errorf("%s: %d tuple-packing adaptations in compiled mode", p.Name, st.AdaptPacks)
		}
	}
}

// TestCompiledModeFewerSteps: compiled mode should execute fewer
// interpreter steps than reference mode on tuple- and generics-heavy
// programs.
func TestCompiledModeFewerSteps(t *testing.T) {
	for _, name := range []string{"generic_list_d", "tuples_c1_c6", "hashmap_i"} {
		p := testprogs.Get(name)
		ref, err := Compile(p.Name, p.Source, Reference())
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := Compile(p.Name, p.Source, Compiled())
		if err != nil {
			t.Fatal(err)
		}
		refSteps := ref.Run().Stats.Steps
		cmpSteps := cmp.Run().Stats.Steps
		if cmpSteps > refSteps {
			t.Errorf("%s: compiled executes more steps (%d) than reference (%d)", name, cmpSteps, refSteps)
		}
	}
}

// TestConfigValidation checks stage dependencies.
func TestConfigValidation(t *testing.T) {
	if _, err := Compile("x.v", "def main() { }", Config{Normalize: true}); err == nil {
		t.Error("Normalize without Monomorphize should fail")
	}
	if _, err := Compile("x.v", "def main() { }", Config{Monomorphize: true, Optimize: true}); err == nil {
		t.Error("Optimize without Normalize should fail")
	}
}

// TestCompileErrors: diagnostics are returned as errors with positions.
func TestCompileErrors(t *testing.T) {
	_, err := Compile("bad.v", "def main() { x = 1; }", Reference())
	if err == nil {
		t.Fatal("expected a compile error")
	}
	if !strings.Contains(err.Error(), "bad.v:1:") {
		t.Fatalf("error should carry a position, got %q", err.Error())
	}
}

// TestQueryChainFoldsAway is experiment E5's structural half: after
// full compilation, each print1<T> instance contains no type queries
// and no branches — the §3.3 claim.
func TestQueryChainFoldsAway(t *testing.T) {
	p := testprogs.Get("print1_j")
	comp, err := Compile(p.Name, p.Source, Compiled())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range comp.Module.Funcs {
		if !strings.HasPrefix(f.Name, "print1<") {
			continue
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.OpTypeQuery {
					t.Errorf("%s still contains a type query after optimization", f.Name)
				}
				if in.Op == ir.OpBranch {
					t.Errorf("%s still contains a branch after optimization", f.Name)
				}
			}
		}
	}
	if comp.OptStats.QueriesFolded == 0 {
		t.Error("optimizer folded no queries")
	}
}

// TestMultiFileProgram: several files check as one program.
func TestMultiFileProgram(t *testing.T) {
	comp, err := CompileFiles([]File{
		{Name: "lib.v", Source: `def helper(x: int) -> int { return x * 2; }`},
		{Name: "main.v", Source: `def main() { System.puti(helper(21)); }`},
	}, Compiled())
	if err != nil {
		t.Fatal(err)
	}
	res := comp.Run()
	if res.Output != "42" {
		t.Fatalf("got %q", res.Output)
	}
}

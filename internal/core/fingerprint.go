package core

import (
	"bytes"
)

// The store fingerprint is the config half of every artifact key: two
// compiles may share artifacts only when the Config fields that shape
// compiled output agree. Fields that only affect how the artifact is
// *executed* (engine choice, worker count, runtime budgets) are
// deliberately excluded — the compiled module is byte-identical across
// them, so a bytecode-engine compile warms the cache for a
// switch-engine request and vice versa.
//
// storeKeyFields classifies every Config field. The classification is
// enforced by TestStoreFingerprintCoversConfig, which reflects over
// Config and fails on any field missing here, and flip-tests each
// in-key field to prove the fingerprint actually moves.
var storeKeyFields = map[string]bool{
	// Pipeline shape: which stages run determines the final IR.
	"Monomorphize": true,
	"Normalize":    true,
	"Optimize":     true,
	// Analyze changes the optimizer's passes (devirtualization, pure
	// call elimination, stack promotion), not just tooling output.
	"Analyze": true,
	// PGO steers speculative devirtualization and hot inlining; two
	// different profiles produce different modules.
	"PGO": true,
	// MaxErrors caps the diagnostic list on failed compiles. Successful
	// compiles are MaxErrors-independent, but the store also answers
	// whole-module hits whose Compilation is cloned under the request
	// config, so the conservative choice is in-key. (The serve cache
	// key includes it for the same reason.)
	"MaxErrors": true,

	// Execution-only: the compiled module is byte-identical across
	// these (Config.Jobs documents this; the determinism suite enforces
	// it for Jobs, the cross-engine suite for Engine).
	"Engine": false,
	"Jobs":   false,
	// VerifyIR adds assertions between stages; it never rewrites IR.
	"VerifyIR": false,
	// Profile arms runtime profiling on the Compilation; compile output
	// is untouched (only runs differ).
	"Profile": false,
	// Runtime budgets, applied per run.
	"MaxSteps": false,
	"MaxDepth": false,
	"MaxHeap":  false,
	"Timeout":  false,
}

// storeFingerprint digests the in-key Config fields. Two configs with
// equal fingerprints compile any given source to byte-identical
// modules, so they may share one store entry.
func (c Config) storeFingerprint() [32]byte {
	d := newDigest()
	d.bool(c.Monomorphize)
	d.bool(c.Normalize)
	d.bool(c.Optimize)
	d.bool(c.Analyze)
	d.int(int64(c.MaxErrors))
	if c.PGO == nil {
		d.str("∅")
	} else {
		var buf bytes.Buffer
		// Encode is deterministic (sorted keys), so the digest is
		// stable for equal profiles.
		if err := c.PGO.Encode(&buf); err != nil {
			d.str("!encode:" + err.Error())
		} else {
			d.str(buf.String())
		}
	}
	return d.sum()
}

package core

import (
	"strings"
	"testing"

	"repro/internal/src"
)

// TestGuardConvertsPanic: the stage boundary converts an arbitrary
// panic into a structured ICE naming the stage, and passes ordinary
// errors and clean returns through untouched.
func TestGuardConvertsPanic(t *testing.T) {
	err := guard("teststage", func() error { panic("boom: unhandled node") })
	ice, ok := err.(*src.ICE)
	if !ok {
		t.Fatalf("want *src.ICE, got %T: %v", err, err)
	}
	if ice.Stage != "teststage" || !strings.Contains(ice.Msg, "boom") {
		t.Errorf("ICE = %+v, want stage and recovered message", ice)
	}
	if ice.Stack == "" {
		t.Error("ICE should carry a trimmed Go stack for bug reports")
	}

	if err := guard("ok", func() error { return nil }); err != nil {
		t.Errorf("clean stage returned %v", err)
	}
	sentinel := &src.ErrorList{}
	sentinel.Add(src.NoPos, "plain diagnostic")
	if err := guard("diag", func() error { return sentinel }); err != error(sentinel) {
		t.Errorf("ordinary error not passed through: %v", err)
	}
}

// TestGuardRecoversRuntimePanics: realistic stage failures — nil map
// writes, out-of-range indexing — are contained, not just string
// panics.
func TestGuardRecoversRuntimePanics(t *testing.T) {
	err := guard("index", func() error {
		var s []int
		_ = s[3]
		return nil
	})
	ice, ok := err.(*src.ICE)
	if !ok || !strings.Contains(ice.Msg, "index out of range") {
		t.Fatalf("want index ICE, got %T: %v", err, err)
	}
}

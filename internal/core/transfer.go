package core

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/types"
)

// Type transfer between compilations. Every compilation interns types
// in its own cache, and the engines key their per-class state by
// *types.Class pointer — so an incrementally assembled module must
// live entirely in one type world. Reused functions keep the base
// compilation's types; freshly recompiled functions are born in the
// new compilation's cache and their types are re-interned ("
// transferred") into the base cache before the worlds merge.
//
// Transfer is structural: primitives map by kind, composites rebuild
// from transferred parts, and nominal types (classes, enums) map
// through def-by-name tables collected from the base compilation. An
// unknown def means the new world mentions a nominal type the base
// never had — in that case the caller abandons the incremental path
// and compiles from scratch, so transfer failure is a fallback signal,
// never an error the user sees.

type typeXfer struct {
	tc        *types.Cache
	classDefs map[string]*types.ClassDef
	enumDefs  map[string]*types.EnumDef
	memo      map[types.Type]types.Type
}

func newTypeXfer(tc *types.Cache, classDefs map[string]*types.ClassDef, enumDefs map[string]*types.EnumDef) *typeXfer {
	return &typeXfer{tc: tc, classDefs: classDefs, enumDefs: enumDefs, memo: map[types.Type]types.Type{}}
}

// xfer re-interns t into the base cache, or fails if t mentions a
// nominal def the base world doesn't know.
func (x *typeXfer) xfer(t types.Type) (types.Type, error) {
	if t == nil {
		return nil, nil
	}
	if got, ok := x.memo[t]; ok {
		return got, nil
	}
	var out types.Type
	switch tt := t.(type) {
	case *types.Prim:
		switch tt.Kind {
		case types.KindVoid:
			out = x.tc.Void()
		case types.KindBool:
			out = x.tc.Bool()
		case types.KindByte:
			out = x.tc.Byte()
		case types.KindInt:
			out = x.tc.Int()
		case types.KindNull:
			out = x.tc.Null()
		default:
			return nil, fmt.Errorf("transfer: unknown prim kind %d", tt.Kind)
		}
	case *types.Tuple:
		elems := make([]types.Type, len(tt.Elems))
		for i, e := range tt.Elems {
			te, err := x.xfer(e)
			if err != nil {
				return nil, err
			}
			elems[i] = te
		}
		out = x.tc.TupleOf(elems)
	case *types.Func:
		p, err := x.xfer(tt.Param)
		if err != nil {
			return nil, err
		}
		r, err := x.xfer(tt.Ret)
		if err != nil {
			return nil, err
		}
		out = x.tc.FuncOf(p, r)
	case *types.Array:
		e, err := x.xfer(tt.Elem)
		if err != nil {
			return nil, err
		}
		out = x.tc.ArrayOf(e)
	case *types.Enum:
		def := x.enumDefs[tt.Def.Name]
		if def == nil {
			return nil, fmt.Errorf("transfer: unknown enum def %q", tt.Def.Name)
		}
		out = x.tc.EnumOf(def)
	case *types.Class:
		def := x.classDefs[tt.Def.Name]
		if def == nil {
			return nil, fmt.Errorf("transfer: unknown class def %q", tt.Def.Name)
		}
		args := make([]types.Type, len(tt.Args))
		for i, a := range tt.Args {
			ta, err := x.xfer(a)
			if err != nil {
				return nil, err
			}
			args[i] = ta
		}
		out = x.tc.ClassOf(def, args)
	case *types.TypeParam:
		// Post-mono IR is closed; an open type reaching transfer means
		// the incremental path was entered for a config it shouldn't be.
		return nil, fmt.Errorf("transfer: open type parameter %q", tt.Def.Name)
	default:
		return nil, fmt.Errorf("transfer: unknown type %T", t)
	}
	x.memo[t] = out
	return out, nil
}

// xferAll transfers a type slice, preserving nil.
func (x *typeXfer) xferAll(ts []types.Type) ([]types.Type, error) {
	if ts == nil {
		return nil, nil
	}
	out := make([]types.Type, len(ts))
	for i, t := range ts {
		tt, err := x.xfer(t)
		if err != nil {
			return nil, err
		}
		out[i] = tt
	}
	return out, nil
}

// collectDefs walks a finished module and tables its nominal defs by
// name. Duplicate def names would make name-keyed transfer ambiguous;
// ok=false tells the caller not to build an incremental base from this
// module.
func collectDefs(mod *ir.Module) (classDefs map[string]*types.ClassDef, enumDefs map[string]*types.EnumDef, ok bool) {
	classDefs = map[string]*types.ClassDef{}
	enumDefs = map[string]*types.EnumDef{}
	seen := map[types.Type]bool{}
	ok = true
	var visit func(t types.Type)
	visit = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		switch tt := t.(type) {
		case *types.Tuple:
			for _, e := range tt.Elems {
				visit(e)
			}
		case *types.Func:
			visit(tt.Param)
			visit(tt.Ret)
		case *types.Array:
			visit(tt.Elem)
		case *types.Enum:
			if prev, dup := enumDefs[tt.Def.Name]; dup && prev != tt.Def {
				ok = false
			}
			enumDefs[tt.Def.Name] = tt.Def
		case *types.Class:
			if prev, dup := classDefs[tt.Def.Name]; dup && prev != tt.Def {
				ok = false
			}
			classDefs[tt.Def.Name] = tt.Def
			for _, a := range tt.Args {
				visit(a)
			}
		}
	}
	for _, c := range mod.Classes {
		if c.Def != nil {
			if prev, dup := classDefs[c.Def.Name]; dup && prev != c.Def {
				ok = false
			}
			classDefs[c.Def.Name] = c.Def
		}
		visit(c.Type)
		for _, f := range c.Fields {
			visit(f.Type)
		}
	}
	for _, g := range mod.Globals {
		visit(g.Type)
	}
	for _, f := range mod.Funcs {
		for _, p := range f.Params {
			visit(p.Type)
		}
		for _, r := range f.Results {
			visit(r)
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				visit(in.Type)
				visit(in.Type2)
				for _, ta := range in.TypeArgs {
					visit(ta)
				}
				for _, r := range in.Dst {
					visit(r.Type)
				}
				for _, r := range in.Args {
					visit(r.Type)
				}
			}
		}
	}
	return classDefs, enumDefs, ok
}

package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
)

// trapProgs trigger each Virgil-level trap inside a function called
// from main, so every trap carries a multi-frame source-level trace.
// Each helper contains control flow so the optimizer's inliner (single
// block, ≤16 instrs) cannot collapse its frame under Compiled().
var trapProgs = []struct {
	name string // expected VirgilError.Name
	src  string
}{
	{"!NullCheckException", `
class C {
	var x: int;
}
def deref(c: C) -> int {
	if (c == null) return c.x;
	return c.x;
}
def main() -> int {
	var c: C;
	return deref(c);
}
`},
	{"!BoundsCheckException", `
def get(a: Array<int>, i: int) -> int {
	if (i >= 0) return a[i];
	return 0;
}
def main() -> int {
	var a = Array<int>.new(3);
	return get(a, 5);
}
`},
	{"!DivideByZeroException", `
def div(a: int, b: int) -> int {
	if (b != 1) return a / b;
	return a;
}
def main() -> int {
	return div(7, 0);
}
`},
	{"!TypeCheckException", `
def narrow(x: int) -> byte {
	if (x > 255) return byte.!(x);
	return byte.!(x);
}
def main() -> int {
	return int.!(narrow(1000));
}
`},
	{"!StackOverflow", `
def spin(n: int) -> int {
	if (n > 0) return spin(n + 1);
	return n;
}
def main() -> int {
	return spin(1);
}
`},
}

// trapConfigs are the two canonical pipeline configurations, with a
// small depth guard so the !StackOverflow case stays fast.
func trapConfigs() []core.Config {
	ref := core.Reference()
	full := core.Compiled()
	ref.MaxDepth = 64
	full.MaxDepth = 64
	return []core.Config{ref, full}
}

// TestTrapsCarryTraces asserts every trap surfaces with the same
// language-level name under the reference interpreter and the full
// compiled pipeline, and that each carries a non-empty stack trace
// whose frames all have a function name and source position.
func TestTrapsCarryTraces(t *testing.T) {
	for _, tp := range trapProgs {
		t.Run(tp.name, func(t *testing.T) {
			for _, cfg := range trapConfigs() {
				comp, err := core.Compile("trap.v", tp.src, cfg)
				if err != nil {
					t.Fatalf("[%s] compile: %v", cfg.Name(), err)
				}
				res := comp.Run()
				ve, ok := res.Err.(*interp.VirgilError)
				if !ok {
					t.Fatalf("[%s] want *interp.VirgilError, got %T: %v", cfg.Name(), res.Err, res.Err)
				}
				if ve.Name != tp.name {
					t.Errorf("[%s] trap name = %q, want %q", cfg.Name(), ve.Name, tp.name)
				}
				checkTrace(t, cfg, ve)
			}
		})
	}
}

// TestCallArityTrapCarriesTrace covers !CallArityException, which a
// well-typed program cannot raise from source: it fires at the
// embedding boundary when a host caller invokes an exported function
// with the wrong argument count. It must behave identically under both
// configurations.
func TestCallArityTrapCarriesTrace(t *testing.T) {
	src := `
def add(a: int, b: int) -> int {
	if (a == 0) return b;
	return a + b;
}
def main() -> int {
	return add(1, 2);
}
`
	for _, cfg := range trapConfigs() {
		comp, err := core.Compile("arity.v", src, cfg)
		if err != nil {
			t.Fatalf("[%s] compile: %v", cfg.Name(), err)
		}
		it := comp.Interp(nil)
		_, err = it.CallFunc("add", interp.IntVal(1))
		ve, ok := err.(*interp.VirgilError)
		if !ok {
			t.Fatalf("[%s] want *interp.VirgilError, got %T: %v", cfg.Name(), err, err)
		}
		if ve.Name != "!CallArityException" {
			t.Errorf("[%s] trap name = %q, want !CallArityException", cfg.Name(), ve.Name)
		}
		checkTrace(t, cfg, ve)
	}
}

func checkTrace(t *testing.T, cfg core.Config, ve *interp.VirgilError) {
	t.Helper()
	if len(ve.Trace) == 0 {
		t.Fatalf("[%s] %s: empty stack trace", cfg.Name(), ve.Name)
	}
	for k, fr := range ve.Trace {
		if fr.Func == "" {
			t.Errorf("[%s] %s: frame %d has no function name", cfg.Name(), ve.Name, k)
		}
		if !fr.Pos.IsValid() {
			t.Errorf("[%s] %s: frame %d (%s) has no source position", cfg.Name(), ve.Name, k, fr.Func)
		}
	}
}

// TestNullDerefTraceDepth is the paper's §2 safety story end to end: a
// null dereference three calls deep yields a trace with at least three
// frames, innermost first, under both configurations.
func TestNullDerefTraceDepth(t *testing.T) {
	src := `
class C {
	var x: int;
}
def h(c: C) -> int {
	if (c == null) return c.x;
	return c.x;
}
def g(c: C) -> int {
	if (c == null) return h(c);
	return h(c);
}
def f() -> int {
	var c: C;
	if (c == null) return g(c);
	return 0;
}
def main() -> int {
	return f();
}
`
	for _, cfg := range []core.Config{core.Reference(), core.Compiled()} {
		comp, err := core.Compile("nulldeep.v", src, cfg)
		if err != nil {
			t.Fatalf("[%s] compile: %v", cfg.Name(), err)
		}
		res := comp.Run()
		ve, ok := res.Err.(*interp.VirgilError)
		if !ok || ve.Name != "!NullCheckException" {
			t.Fatalf("[%s] want !NullCheckException, got %v", cfg.Name(), res.Err)
		}
		if len(ve.Trace) < 3 {
			t.Fatalf("[%s] want >=3 frames, got %d:\n%s", cfg.Name(), len(ve.Trace), ve.TraceString())
		}
		want := []string{"h", "g", "f", "main"}
		for k, name := range want {
			if k >= len(ve.Trace) {
				break
			}
			fr := ve.Trace[k]
			if fr.Func != name {
				t.Errorf("[%s] frame %d = %q, want %q", cfg.Name(), k, fr.Func, name)
			}
			if !fr.Pos.IsValid() {
				t.Errorf("[%s] frame %d (%s) missing source position", cfg.Name(), k, fr.Func)
			}
		}
	}
}

// TestResourceGuards asserts the step budget and wall-clock deadline
// stop a divergent program with a graceful ResourceError, and that the
// !StackOverflow depth guard reports a bounded (elided) trace.
func TestResourceGuards(t *testing.T) {
	loop := `
def main() -> int {
	var n = 0;
	while (true) n = n + 1;
	return n;
}
`
	cfg := core.Reference()
	cfg.MaxSteps = 10_000
	comp, err := core.Compile("loop.v", loop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := comp.Run()
	re, ok := res.Err.(*interp.ResourceError)
	if !ok || re.Kind != "steps" {
		t.Fatalf("want steps ResourceError, got %T: %v", res.Err, res.Err)
	}

	cfg = core.Reference()
	cfg.Timeout = 50 * 1e6 // 50ms in nanoseconds
	comp, err = core.Compile("loop.v", loop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res = comp.Run()
	re, ok = res.Err.(*interp.ResourceError)
	if !ok || re.Kind != "deadline" {
		t.Fatalf("want deadline ResourceError, got %T: %v", res.Err, res.Err)
	}

	deep := `
def spin(n: int) -> int {
	if (n > 0) return spin(n + 1);
	return n;
}
def main() -> int {
	return spin(1);
}
`
	cfg = core.Reference()
	cfg.MaxDepth = 1000
	comp, err = core.Compile("deep.v", deep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res = comp.Run()
	ve, ok := res.Err.(*interp.VirgilError)
	if !ok || ve.Name != "!StackOverflow" {
		t.Fatalf("want !StackOverflow, got %v", res.Err)
	}
	if ve.Elided == 0 {
		t.Errorf("1000-deep overflow should elide frames, trace len %d elided %d", len(ve.Trace), ve.Elided)
	}
}

package core_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/progen"
	"repro/internal/src"
	"repro/internal/testprogs"
)

// fuzzGuards bounds fuzz executions with deterministic limits only (a
// wall-clock timeout would make the two configs diverge spuriously).
// The typed IR verifier runs after every stage so fuzzing catches
// stage-local IR corruption, not just end-to-end divergence.
func fuzzGuards(cfg core.Config) core.Config {
	cfg.MaxSteps = 300_000
	cfg.MaxDepth = 256
	cfg.MaxHeap = 8 << 20
	cfg.VerifyIR = true
	return cfg
}

// FuzzPipeline is the property the whole paper rests on: for any input
// that compiles, the reference interpreter (polymorphic IR, runtime
// type environments) and the full static pipeline (monomorphized,
// normalized, optimized) must agree — same output and same result, or
// the same language-level trap. On inputs that do not compile, both
// configs must fail with ordinary diagnostics, never a panic or an
// internal compiler error.
func FuzzPipeline(f *testing.F) {
	for _, p := range testprogs.All() {
		f.Add(p.Source)
	}
	for _, src := range progen.Hungry() {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, source string) {
		noaCfg := fuzzGuards(core.Compiled())
		noaCfg.Analyze = false
		refComp, refErr := core.Compile("fuzz.v", source, fuzzGuards(core.Reference()))
		fullComp, fullErr := core.Compile("fuzz.v", source, fuzzGuards(core.Compiled()))
		noaComp, noaErr := core.Compile("fuzz.v", source, noaCfg)
		checkNoICE(t, "ref compile", refErr)
		checkNoICE(t, "full compile", fullErr)
		checkNoICE(t, "noanalyze compile", noaErr)
		// The analysis layer must never change whether a program
		// compiles — it only adds facts and fact-driven rewrites.
		if (fullErr == nil) != (noaErr == nil) {
			t.Fatalf("analyze ablation changed compile outcome: with=%v without=%v\nsource:\n%s",
				fullErr, noaErr, source)
		}
		if refErr != nil || fullErr != nil {
			// Legitimate rejections (diagnostics, or mono refusing
			// unbounded specialization) end the property here.
			return
		}
		if refComp.Module.Main == nil {
			return
		}
		refRes := refComp.Run()
		fullRes := fullComp.Run()
		noaRes := noaComp.Run()
		checkNoICE(t, "ref run", refRes.Err)
		checkNoICE(t, "full run", fullRes.Err)
		checkNoICE(t, "noanalyze run", noaRes.Err)
		// Third axis: the analysis-driven rewrites (devirtualization,
		// pure-call elimination, stack promotion) must be
		// semantics-preserving against the same pipeline without them.
		// Resource and heap stops are excluded: promotion legitimately
		// removes heap charges, which moves budget boundaries.
		fuzzDiffAnalyze(t, source, fullRes, noaRes)
		// Second axis: the register-bytecode engine (the default above)
		// versus the switch interpreter must agree exactly — output,
		// trap identity, stack trace, and step-for-step stats. Resource
		// stops here are deterministic (no wall-clock guard), so even
		// those must match, unlike the cross-config comparison below.
		fuzzDiffEngines(t, "ref", source, fuzzGuards(core.Reference()), refRes)
		fuzzDiffEngines(t, "full", source, fuzzGuards(core.Compiled()), fullRes)
		// Fourth axis: the tier-up recompile. Harvest a profile from one
		// run and feed it back; the profile-guided build must match the
		// plain build observably and its two engines must match exactly.
		fuzzDiffTiered(t, source, fullRes)
		// Fifth axis: incremental recompilation. Warm the artifact
		// store with this input, apply a synthetic edit, and require
		// the incremental compile to be byte-identical to a
		// from-scratch compile of the edited source.
		fuzzDiffIncremental(t, source)
		// Step budgets fire at different instruction counts across
		// configs, so a resource stop on either side voids comparison.
		var re *interp.ResourceError
		if errors.As(refRes.Err, &re) || errors.As(fullRes.Err, &re) {
			return
		}
		refName, fullName := trapName(refRes.Err), trapName(fullRes.Err)
		// The heap meter charges the IR each config actually executes —
		// normalization changes tuple and closure allocation shapes — so
		// the budget can fire in one config and not the other. The trap
		// itself is still diffed exactly engine-vs-engine above.
		if refName == interp.HeapExhausted || fullName == interp.HeapExhausted {
			return
		}
		if refName != fullName {
			t.Fatalf("trap divergence: ref=%q full=%q\nsource:\n%s", refName, fullName, source)
		}
		if refRes.Output != fullRes.Output {
			t.Fatalf("output divergence:\nref:  %q\nfull: %q\nsource:\n%s", refRes.Output, fullRes.Output, source)
		}
	})
}

// fuzzDiffAnalyze compares the optimized pipeline with and without the
// analysis layer: identical output and trap identity, and analysis may
// only lower the modeled heap charge, never raise it.
func fuzzDiffAnalyze(t *testing.T, source string, on, off core.RunResult) {
	t.Helper()
	var re *interp.ResourceError
	if errors.As(on.Err, &re) || errors.As(off.Err, &re) {
		return
	}
	onName, offName := trapName(on.Err), trapName(off.Err)
	if onName == interp.HeapExhausted || offName == interp.HeapExhausted {
		return
	}
	if onName != offName {
		t.Fatalf("analyze ablation trap divergence: with=%q without=%q\nsource:\n%s",
			onName, offName, source)
	}
	if on.Output != off.Output {
		t.Fatalf("analyze ablation output divergence:\nwith:    %q\nwithout: %q\nsource:\n%s",
			on.Output, off.Output, source)
	}
	if on.Stats.HeapBytes > off.Stats.HeapBytes {
		t.Fatalf("analysis increased heap charge: with=%d without=%d\nsource:\n%s",
			on.Stats.HeapBytes, off.Stats.HeapBytes, source)
	}
}

// fuzzDiffTiered performs the serve layer's tier-up in miniature —
// profile one run, recompile with the profile — and holds the result
// to the same bar as the analyze ablation: identical output and trap
// identity versus the untiered build (speculation guards legitimately
// move step counts and budget boundaries, so resource and heap stops
// void the comparison), plus exact engine-vs-engine equality on the
// tiered module itself. A stale or lying profile is covered elsewhere
// (internal/opt); here the profile is real but possibly partial, since
// the harvesting run may have trapped or hit a budget.
// fuzzDiffIncremental warms an artifact store with source, applies a
// synthetic edit (an appended function), and diffs the incremental
// compile of the edited program against a from-scratch compile. The
// incremental path must produce a byte-identical module dump through
// every reuse mode it picks — incremental, fallback, or hit — and a
// repeat compile of the same edited source must be a whole-module hit
// with the same dump.
func fuzzDiffIncremental(t *testing.T, source string) {
	t.Helper()
	cfg := fuzzGuards(core.Compiled())
	cfg.Analyze = false
	store := core.NewStore(2)
	files := []core.File{{Name: "fuzz.v", Source: source}}
	if _, _, err := core.CompileFilesIncremental(t.Context(), files, cfg, store); err != nil {
		checkNoICE(t, "incremental warm compile", err)
		return
	}
	edited := source + "\ndef __incr_fuzz_probe(q: int) -> int { return q * 3 + 1; }\n"
	efiles := []core.File{{Name: "fuzz.v", Source: edited}}
	incComp, _, incErr := core.CompileFilesIncremental(t.Context(), efiles, cfg, store)
	scratch, scratchErr := core.Compile("fuzz.v", edited, cfg)
	checkNoICE(t, "incremental compile", incErr)
	checkNoICE(t, "incremental scratch compile", scratchErr)
	if (incErr == nil) != (scratchErr == nil) {
		t.Fatalf("incremental changed compile outcome: incr=%v scratch=%v\nsource:\n%s",
			incErr, scratchErr, source)
	}
	if incErr != nil {
		return
	}
	if incComp.Module.String() != scratch.Module.String() {
		t.Fatalf("incremental module differs from scratch\nsource:\n%s", source)
	}
	hitComp, _, hitErr := core.CompileFilesIncremental(t.Context(), efiles, cfg, store)
	checkNoICE(t, "incremental rehit", hitErr)
	if hitErr == nil && hitComp.Module.String() != scratch.Module.String() {
		t.Fatalf("module-hit dump differs from scratch\nsource:\n%s", source)
	}
}

func fuzzDiffTiered(t *testing.T, source string, full core.RunResult) {
	t.Helper()
	cfg := fuzzGuards(core.Compiled())
	prof, err := recordTierProfile("fuzz.v", source, cfg)
	if err != nil || prof == nil {
		// The plain compile succeeded upstream, so err here means the
		// bytecode-engine config was rejected or main is absent; either
		// way there is no tier to compare.
		return
	}
	tierCfg := cfg
	tierCfg.PGO = prof
	tierCfg.Engine = core.EngineBytecode
	tiered, err := core.Compile("fuzz.v", source, tierCfg)
	checkNoICE(t, "tiered compile", err)
	if err != nil {
		t.Fatalf("tier-up recompile failed after the plain compile succeeded: %v\nsource:\n%s", err, source)
	}
	tRes := tiered.Run()
	checkNoICE(t, "tiered run", tRes.Err)
	fuzzDiffEngines(t, "tiered", source, tierCfg, tRes)
	var re *interp.ResourceError
	if errors.As(tRes.Err, &re) || errors.As(full.Err, &re) {
		return
	}
	tName, fName := trapName(tRes.Err), trapName(full.Err)
	if tName == interp.HeapExhausted || fName == interp.HeapExhausted {
		return
	}
	if tName != fName {
		t.Fatalf("tier-up trap divergence: tiered=%q untiered=%q\nsource:\n%s", tName, fName, source)
	}
	if tRes.Output != full.Output {
		t.Fatalf("tier-up output divergence:\ntiered:   %q\nuntiered: %q\nsource:\n%s", tRes.Output, full.Output, source)
	}
}

// fuzzDiffEngines reruns source under cfg with the switch interpreter
// and asserts full observable equality with the bytecode result. An
// ICE on both sides (corrupt IR rejected by both engines) is the only
// tolerated asymmetry in message text.
func fuzzDiffEngines(t *testing.T, label, source string, cfg core.Config, bc core.RunResult) {
	t.Helper()
	cfg.Engine = core.EngineSwitch
	swComp, err := core.Compile("fuzz.v", source, cfg)
	if err != nil {
		t.Fatalf("%s: switch-engine compile failed after bytecode compile succeeded: %v", label, err)
	}
	sameRun(t, label+" engines", bc, swComp.Run())
}

// trapName maps an execution result to a comparable label: "" for
// clean termination, the trap name for Virgil exceptions.
func trapName(err error) string {
	if err == nil {
		return ""
	}
	var ve *interp.VirgilError
	if errors.As(err, &ve) {
		return ve.Name
	}
	return err.Error()
}

func checkNoICE(t *testing.T, phase string, err error) {
	t.Helper()
	var ice *src.ICE
	if errors.As(err, &ice) {
		t.Fatalf("%s: internal compiler error (contained panic): %v\n%s", phase, ice, ice.Stack)
	}
	if err != nil && strings.Contains(err.Error(), "internal") && !errors.As(err, &ice) {
		// Non-ICE "internal" errors indicate a containment gap.
		t.Fatalf("%s: unstructured internal error: %v", phase, err)
	}
}

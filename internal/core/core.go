// Package core is the public entry point of the Virgil-core compiler:
// it wires the paper's full pipeline — parse, typecheck, lower,
// monomorphize (§4.3), normalize (§4.2), optimize — and executes the
// result.
//
// The pipeline has two canonical configurations:
//
//   - Reference(): the paper's interpreter — polymorphic IR, boxed
//     tuples, runtime type arguments, dynamic arity checks.
//   - Compiled(): the paper's static compiler — monomorphized,
//     normalized, optimized IR with scalar-only calling conventions.
//
// Intermediate configurations (mono without norm, etc.) exist for the
// ablation experiments.
package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/mono"
	"repro/internal/norm"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/src"
	"repro/internal/typecheck"
)

// Config selects pipeline stages. Normalize requires Monomorphize;
// Optimize requires both.
type Config struct {
	Monomorphize bool
	Normalize    bool
	Optimize     bool
}

// Reference returns the reference-interpreter configuration.
func Reference() Config { return Config{} }

// Compiled returns the full static-compilation configuration.
func Compiled() Config { return Config{Monomorphize: true, Normalize: true, Optimize: true} }

// Name returns a short label for the configuration, used in reports.
func (c Config) Name() string {
	switch {
	case c.Optimize:
		return "mono+norm+opt"
	case c.Normalize:
		return "mono+norm"
	case c.Monomorphize:
		return "mono"
	default:
		return "reference"
	}
}

// Validate checks stage dependencies.
func (c Config) Validate() error {
	if c.Normalize && !c.Monomorphize {
		return fmt.Errorf("core: Normalize requires Monomorphize (§4.2)")
	}
	if c.Optimize && !c.Normalize {
		return fmt.Errorf("core: Optimize requires Normalize")
	}
	return nil
}

// Timings records wall-clock duration of each stage (E7).
type Timings struct {
	Parse     time.Duration
	Check     time.Duration
	Lower     time.Duration
	Mono      time.Duration
	Norm      time.Duration
	Opt       time.Duration
	Total     time.Duration
	SourceLen int
}

// Compilation is the result of running the pipeline.
type Compilation struct {
	Config  Config
	Program *typecheck.Program
	Module  *ir.Module
	// MonoStats is set when monomorphization ran.
	MonoStats *mono.Stats
	// NormStats is set when normalization ran.
	NormStats *norm.Stats
	// OptStats is set when optimization ran.
	OptStats *opt.Stats
	Timings  Timings
}

// File is one named source file.
type File struct {
	Name   string
	Source string
}

// Compile runs the pipeline on one source string.
func Compile(name, source string, cfg Config) (*Compilation, error) {
	return CompileFiles([]File{{Name: name, Source: source}}, cfg)
}

// CompileFiles runs the pipeline on several files as one program.
func CompileFiles(files []File, cfg Config) (*Compilation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	comp := &Compilation{Config: cfg}
	start := time.Now()

	t0 := time.Now()
	errs := &src.ErrorList{}
	var parsed []*ast.File
	for _, f := range files {
		parsed = append(parsed, parser.Parse(f.Name, f.Source, errs))
		comp.Timings.SourceLen += len(f.Source)
	}
	comp.Timings.Parse = time.Since(t0)
	if !errs.Empty() {
		errs.Sort()
		return nil, errs
	}

	t0 = time.Now()
	prog := typecheck.Check(parsed, errs)
	comp.Timings.Check = time.Since(t0)
	if !errs.Empty() {
		errs.Sort()
		return nil, errs
	}
	comp.Program = prog

	t0 = time.Now()
	mod := lower.Lower(prog)
	comp.Timings.Lower = time.Since(t0)

	if cfg.Monomorphize {
		t0 = time.Now()
		monoMod, stats, err := mono.Monomorphize(mod, mono.Config{})
		comp.Timings.Mono = time.Since(t0)
		if err != nil {
			return nil, err
		}
		comp.MonoStats = stats
		mod = monoMod
	}
	if cfg.Normalize {
		t0 = time.Now()
		normMod, stats, err := norm.Normalize(mod)
		comp.Timings.Norm = time.Since(t0)
		if err != nil {
			return nil, err
		}
		comp.NormStats = stats
		mod = normMod
	}
	if cfg.Optimize {
		t0 = time.Now()
		comp.OptStats = opt.Optimize(mod, opt.Config{})
		comp.Timings.Opt = time.Since(t0)
	}
	if err := mod.Validate(); err != nil {
		return nil, fmt.Errorf("core: internal error: invalid IR after %s: %w", cfg.Name(), err)
	}
	comp.Module = mod
	comp.Timings.Total = time.Since(start)
	return comp, nil
}

// RunResult is the outcome of executing a compiled program.
type RunResult struct {
	Output string
	Stats  interp.Stats
	Err    error // the Virgil exception, if the program threw
}

// Run executes the compiled module, capturing System output.
func (c *Compilation) Run() RunResult {
	var out strings.Builder
	it := interp.New(c.Module, interp.Options{Out: &out})
	_, err := it.Run()
	return RunResult{Output: out.String(), Stats: it.Stats(), Err: err}
}

// RunTo executes the compiled module writing System output to w.
func (c *Compilation) RunTo(w io.Writer, maxSteps int64) (interp.Stats, error) {
	it := interp.New(c.Module, interp.Options{Out: w, MaxSteps: maxSteps})
	_, err := it.Run()
	return it.Stats(), err
}

// Interp returns a fresh interpreter over the compiled module, for
// callers that need to invoke individual functions (benchmarks).
func (c *Compilation) Interp(w io.Writer) *interp.Interp {
	return interp.New(c.Module, interp.Options{Out: w})
}

// Configs returns the four ablation configurations in pipeline order.
func Configs() []Config {
	return []Config{
		Reference(),
		{Monomorphize: true},
		{Monomorphize: true, Normalize: true},
		Compiled(),
	}
}

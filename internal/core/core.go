// Package core is the public entry point of the Virgil-core compiler:
// it wires the paper's full pipeline — parse, typecheck, lower,
// monomorphize (§4.3), normalize (§4.2), optimize — and executes the
// result.
//
// The pipeline has two canonical configurations:
//
//   - Reference(): the paper's interpreter — polymorphic IR, boxed
//     tuples, runtime type arguments, dynamic arity checks.
//   - Compiled(): the paper's static compiler — monomorphized,
//     normalized, optimized IR with scalar-only calling conventions.
//
// Intermediate configurations (mono without norm, etc.) exist for the
// ablation experiments.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/mono"
	"repro/internal/norm"
	"repro/internal/opt"
	"repro/internal/parser"
	"repro/internal/profile"
	"repro/internal/src"
	"repro/internal/typecheck"
)

// Config selects pipeline stages. Normalize requires Monomorphize;
// Optimize requires both. The resource-guard fields bound execution
// (Run/RunTo); zero values mean the interpreter defaults.
type Config struct {
	Monomorphize bool
	Normalize    bool
	Optimize     bool

	// Analyze enables the whole-program static-analysis layer
	// (internal/analysis) and the optimizer passes driven by it:
	// call-graph devirtualization, pure-call elimination, and stack
	// promotion of non-escaping allocations. Requires Optimize. The
	// final analysis of the optimized module is retained on the
	// Compilation for tooling (virgil analyze), and every promotion is
	// re-proven against it — an unprovable mark is an ICE, not a
	// silently unsound program.
	Analyze bool

	// Engine selects the execution engine: "bytecode" (the default,
	// also selected by "") compiles the post-pipeline IR to register
	// bytecode with unboxed scalars and inline caches; "switch" runs
	// the reference switch interpreter directly on the IR. The two are
	// observably identical — output, traps, stack traces, step
	// accounting, and Stats — differing only in speed.
	Engine string

	// Jobs bounds the worker pool for the per-function pipeline stages
	// (lowering, specialized-body copying, normalization, optimization
	// folding, IR verification). 0 means runtime.GOMAXPROCS(0); 1 runs
	// the exact sequential pipeline; negative is a Validate error.
	// Whole-program phases (typechecking, the monomorphization worklist,
	// vtable layout) are sequential barriers regardless. The compiled
	// module is byte-for-byte identical for every valid value.
	Jobs int

	// VerifyIR runs the typed IR verifier (ir.Verify) after every
	// pipeline stage, converting stage-local IR corruption into a
	// stage-tagged ICE at the earliest point it is observable. The
	// VIRGIL_VERIFY_IR environment variable force-enables it.
	VerifyIR bool

	// MaxErrors caps the independent diagnostics reported from one
	// compilation before the "too many errors" sentinel replaces the
	// overflow (0 = the default cap, src.MaxReported; negative is a
	// Validate error).
	MaxErrors int

	// Profile makes every run on this Compilation record an execution
	// profile (per-function invocation and step counters, inline-cache
	// site outcomes, branch biases), retrievable via RunProfiled. Only
	// the bytecode engine collects profiles, so Profile with
	// Engine=="switch" is a Validate error. Off, runs pay zero
	// profiling overhead.
	Profile bool

	// PGO, when non-nil, feeds a previously recorded profile into the
	// compile: the optimizer adds speculative devirtualization and hot
	// inlining, and the bytecode translator fuses instruction runs in
	// profile-hot functions. Profiles are advisory — a stale or wrong
	// profile can cost speed, never correctness, and observable behavior
	// is identical under both engines. Requires Optimize.
	PGO *profile.Profile

	// MaxSteps bounds executed IR instructions (0 = interpreter default).
	MaxSteps int64
	// MaxDepth bounds Virgil call depth; exceeding it raises the
	// !StackOverflow trap (0 = interpreter default).
	MaxDepth int
	// MaxHeap bounds the modeled allocation cost in bytes (see
	// interp.ChargeHeap); exceeding it raises the deterministic
	// !HeapExhausted trap (0 = interp.DefaultMaxHeap).
	MaxHeap int64
	// Timeout bounds wall-clock execution time (0 = none).
	Timeout time.Duration
}

// Reference returns the reference-interpreter configuration.
func Reference() Config { return Config{} }

// Compiled returns the full static-compilation configuration.
func Compiled() Config {
	return Config{Monomorphize: true, Normalize: true, Optimize: true, Analyze: true}
}

// guard runs one pipeline stage with a panic-recovery boundary,
// converting any panic into a structured internal-compiler-error
// diagnostic. No entry point of this package may leak a Go panic to
// its caller on malformed input.
func guard(stage string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &src.ICE{
				Stage: stage,
				Msg:   fmt.Sprint(r),
				Stack: src.TrimStack(debug.Stack(), 40),
			}
		}
	}()
	return fn()
}

// Name returns a short label for the configuration, used in reports.
func (c Config) Name() string {
	switch {
	case c.Optimize:
		return "mono+norm+opt"
	case c.Normalize:
		return "mono+norm"
	case c.Monomorphize:
		return "mono"
	default:
		return "reference"
	}
}

// Validate checks stage dependencies and resource fields.
func (c Config) Validate() error {
	if c.Normalize && !c.Monomorphize {
		return fmt.Errorf("core: Normalize requires Monomorphize (§4.2)")
	}
	if c.Optimize && !c.Normalize {
		return fmt.Errorf("core: Optimize requires Normalize")
	}
	if c.Analyze && !c.Optimize {
		return fmt.Errorf("core: Analyze requires Optimize")
	}
	if c.Jobs < 0 {
		return fmt.Errorf("core: Jobs must be >= 0 (0 selects GOMAXPROCS), got %d", c.Jobs)
	}
	if c.MaxErrors < 0 {
		return fmt.Errorf("core: MaxErrors must be >= 0 (0 selects the default cap %d), got %d", src.MaxReported, c.MaxErrors)
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("core: MaxSteps must be >= 0, got %d", c.MaxSteps)
	}
	if c.MaxDepth < 0 {
		return fmt.Errorf("core: MaxDepth must be >= 0, got %d", c.MaxDepth)
	}
	if c.MaxHeap < 0 {
		return fmt.Errorf("core: MaxHeap must be >= 0, got %d", c.MaxHeap)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("core: Timeout must be >= 0, got %v", c.Timeout)
	}
	switch c.Engine {
	case "", EngineBytecode, EngineSwitch:
	default:
		return fmt.Errorf("core: Engine must be %q or %q, got %q", EngineBytecode, EngineSwitch, c.Engine)
	}
	if c.Profile && c.Engine == EngineSwitch {
		return fmt.Errorf("core: Profile requires the bytecode engine; the switch interpreter records no profiles")
	}
	if c.PGO != nil && !c.Optimize {
		return fmt.Errorf("core: PGO requires Optimize")
	}
	return nil
}

// Execution engine names for Config.Engine.
const (
	EngineBytecode = "bytecode"
	EngineSwitch   = "switch"
)

// EngineKind resolves the configured engine name, defaulting the empty
// string to the bytecode engine.
func (c Config) EngineKind() string {
	if c.Engine == "" {
		return EngineBytecode
	}
	return c.Engine
}

// jobs resolves the configured worker count: 0 defaults to the
// machine's GOMAXPROCS.
func (c Config) jobs() int {
	if c.Jobs == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Jobs
}

// maxErrors resolves the diagnostic cap: 0 defaults to src.MaxReported.
func (c Config) maxErrors() int {
	if c.MaxErrors == 0 {
		return src.MaxReported
	}
	return c.MaxErrors
}

// Timings records wall-clock duration of each stage (E7).
type Timings struct {
	Parse     time.Duration
	Check     time.Duration
	Lower     time.Duration
	Mono      time.Duration
	Norm      time.Duration
	Opt       time.Duration
	Analysis  time.Duration
	Total     time.Duration
	SourceLen int
}

// Compilation is the result of running the pipeline.
type Compilation struct {
	Config  Config
	Program *typecheck.Program
	Module  *ir.Module
	// MonoStats is set when monomorphization ran.
	MonoStats *mono.Stats
	// NormStats is set when normalization ran.
	NormStats *norm.Stats
	// OptStats is set when optimization ran.
	OptStats *opt.Stats
	// Analysis is the whole-program analysis of the final module, set
	// when Config.Analyze ran (the substrate of `virgil analyze`).
	Analysis *analysis.Result
	Timings  Timings

	// engOnce/engProg lazily hold the register-bytecode translation of
	// Module. The Program is immutable and shared by every Run on this
	// Compilation (and across concurrent runs), so a warm Compilation
	// pays translation once.
	engOnce sync.Once
	engProg *engine.Program

	// incrRec is the optimizer replay recording captured when this
	// compilation was assembled incrementally; the store carries it
	// into the next base entry.
	incrRec *opt.Recording
}

// engineProgram translates Module to register bytecode once per
// Compilation. Callers must hold the execution panic guard: a
// translation panic on corrupt IR surfaces as an interp-stage ICE,
// like the switch interpreter's own panic on the same IR.
func (c *Compilation) engineProgram() *engine.Program {
	c.engOnce.Do(func() { c.engProg = engine.CompileProfiled(c.Module, c.Config.PGO) })
	return c.engProg
}

// File is one named source file.
type File struct {
	Name   string
	Source string
}

// Compile runs the pipeline on one source string.
func Compile(name, source string, cfg Config) (*Compilation, error) {
	return CompileFiles([]File{{Name: name, Source: source}}, cfg)
}

// CompileFiles runs the pipeline on several files as one program with
// no external cancellation. See CompileFilesContext.
func CompileFiles(files []File, cfg Config) (*Compilation, error) {
	return CompileFilesContext(context.Background(), files, cfg)
}

// stageStart is the common prologue of every pipeline stage: it stops
// the compilation as soon as the caller's ctx ends (wrapping the cause
// so errors.Is(err, context.Canceled/DeadlineExceeded) holds) and
// carries the stage's fault-injection point.
func stageStart(ctx context.Context, stage string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: %s: compilation cancelled: %w", stage, err)
	}
	return faultinject.Point(ctx, stage)
}

// CompileFilesContext runs the pipeline on several files as one
// program, stopping at the first stage boundary (or mid-fan-out item
// claim) after ctx ends.
//
// Diagnostics in the input are returned as a *src.ErrorList carrying
// every independent error (capped at Config.MaxErrors with a "too many
// errors" sentinel). A panic in any stage is recovered at the stage
// boundary and returned as a *src.ICE — CompileFilesContext never
// panics on malformed input. Cancellation surfaces as an error
// satisfying errors.Is(err, ctx.Err()).
func CompileFilesContext(ctx context.Context, files []File, cfg Config) (*Compilation, error) {
	p, err := newPipeline(ctx, files, cfg)
	if err != nil {
		return nil, err
	}
	mod, err := p.frontend()
	if err != nil {
		return nil, err
	}
	return p.backend(mod, backendOpts{})
}

// pipeline carries one compilation through its stages. The stages are
// the same whether a compile runs from scratch or incrementally — the
// incremental path (CompileFilesIncremental) composes them with body
// filters and an optimizer replay instead of re-deriving everything.
type pipeline struct {
	ctx   context.Context
	cfg   Config
	comp  *Compilation
	errs  *src.ErrorList
	files []File
	start time.Time
	// preParsed supplies cached ASTs by file name (incremental parse
	// reuse); files not in the map are parsed from source. parsed holds
	// the frontend's AST set for the cache to absorb afterwards.
	preParsed map[string]*ast.File
	parsed    []*ast.File
}

// backendOpts are the incremental hooks into the pipeline's back half:
// body filters for monomorphization and normalization, an optimizer
// recording to fill, and a cut point after normalization where the
// incremental path takes over assembly.
type backendOpts struct {
	monoSkip      func(dstName, srcName string) bool
	normSkip      func(name string) bool
	record        *opt.Recording
	stopAfterNorm bool
}

func newPipeline(ctx context.Context, files []File, cfg Config) (*pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if os.Getenv("VIRGIL_VERIFY_IR") != "" {
		cfg.VerifyIR = true
	}
	return &pipeline{
		ctx:   ctx,
		cfg:   cfg,
		comp:  &Compilation{Config: cfg},
		errs:  &src.ErrorList{},
		files: files,
		start: time.Now(),
	}, nil
}

// verify runs the typed IR verifier after one stage; any finding is
// a compiler bug in that stage, reported as a stage-tagged ICE.
func (p *pipeline) verify(stage string, mod *ir.Module) error {
	if !p.cfg.VerifyIR {
		return nil
	}
	err := guard("verify-"+stage, func() error {
		if err := stageStart(p.ctx, "verify-"+stage); err != nil {
			return err
		}
		return mod.VerifyConcurrent(p.ctx, p.cfg.jobs())
	})
	if err == nil {
		return nil
	}
	if !isStructured(err) {
		err = &src.ICE{Stage: "verify-" + stage, Msg: fmt.Sprintf("invalid IR after %s: %v", stage, err)}
	}
	return err
}

func (p *pipeline) diags() error {
	p.errs.Sort()
	p.errs.Truncate(p.cfg.maxErrors())
	return p.errs
}

// frontend runs parse, typecheck, and lower — the stages every
// compilation pays regardless of cached artifacts, since typechecking
// is whole-program. Parsing alone can be skipped per file via
// preParsed: the checker re-annotates AST nodes in place, so a cached
// AST checks the same as a fresh one (the caller serializes compiles
// that share cached nodes).
func (p *pipeline) frontend() (*ir.Module, error) {
	t0 := time.Now()
	var parsed []*ast.File
	if err := guard("parse", func() error {
		if err := stageStart(p.ctx, "parse"); err != nil {
			return err
		}
		for _, f := range p.files {
			pf := p.preParsed[f.Name]
			if pf == nil {
				pf = parser.Parse(f.Name, f.Source, p.errs)
			}
			parsed = append(parsed, pf)
			p.comp.Timings.SourceLen += len(f.Source)
		}
		p.parsed = parsed
		return nil
	}); err != nil {
		return nil, err
	}
	p.comp.Timings.Parse = time.Since(t0)
	if !p.errs.Empty() {
		return nil, p.diags()
	}

	t0 = time.Now()
	var prog *typecheck.Program
	if err := guard("check", func() error {
		if err := stageStart(p.ctx, "check"); err != nil {
			return err
		}
		prog = typecheck.Check(parsed, p.errs)
		return nil
	}); err != nil {
		return nil, err
	}
	p.comp.Timings.Check = time.Since(t0)
	if !p.errs.Empty() {
		return nil, p.diags()
	}
	p.comp.Program = prog

	t0 = time.Now()
	var mod *ir.Module
	if err := guard("lower", func() error {
		if err := stageStart(p.ctx, "lower"); err != nil {
			return err
		}
		var err error
		mod, err = lower.Lower(p.ctx, prog, p.cfg.jobs())
		return err
	}); err != nil {
		return nil, err
	}
	p.comp.Timings.Lower = time.Since(t0)
	if err := p.verify("lower", mod); err != nil {
		return nil, err
	}
	return mod, nil
}

// backend runs the configured transformation stages over the lowered
// module and finishes the compilation. With opts.stopAfterNorm it
// returns after normalization with Compilation.Module set to the
// normalized module and no validation — the incremental path assembles
// and finishes the module itself.
func (p *pipeline) backend(mod *ir.Module, opts backendOpts) (*Compilation, error) {
	ctx, cfg, comp := p.ctx, p.cfg, p.comp
	if cfg.Monomorphize {
		t0 := time.Now()
		if err := guard("mono", func() error {
			if err := stageStart(ctx, "mono"); err != nil {
				return err
			}
			monoMod, stats, err := mono.Monomorphize(ctx, mod, mono.Config{Jobs: cfg.jobs(), SkipBody: opts.monoSkip})
			if err != nil {
				return err
			}
			comp.MonoStats = stats
			mod = monoMod
			return nil
		}); err != nil {
			return nil, err
		}
		comp.Timings.Mono = time.Since(t0)
		if opts.monoSkip == nil {
			if err := p.verify("mono", mod); err != nil {
				return nil, err
			}
		}
	}
	if cfg.Normalize {
		t0 := time.Now()
		if err := guard("norm", func() error {
			if err := stageStart(ctx, "norm"); err != nil {
				return err
			}
			normMod, stats, err := norm.NormalizeSkip(ctx, mod, cfg.jobs(), opts.normSkip)
			if err != nil {
				return err
			}
			comp.NormStats = stats
			mod = normMod
			return nil
		}); err != nil {
			return nil, err
		}
		comp.Timings.Norm = time.Since(t0)
		if opts.normSkip == nil {
			if err := p.verify("norm", mod); err != nil {
				return nil, err
			}
		}
	}
	if opts.stopAfterNorm {
		comp.Module = mod
		return comp, nil
	}
	if cfg.Optimize {
		t0 := time.Now()
		if err := guard("opt", func() error {
			if err := stageStart(ctx, "opt"); err != nil {
				return err
			}
			stats, err := opt.Optimize(ctx, mod, opt.Config{Jobs: cfg.jobs(), Analyze: cfg.Analyze, Profile: cfg.PGO, Record: opts.record})
			if err != nil {
				return err
			}
			comp.OptStats = stats
			return nil
		}); err != nil {
			return nil, err
		}
		comp.Timings.Opt = time.Since(t0)
		if err := p.verify("opt", mod); err != nil {
			return nil, err
		}
	}
	return p.finish(mod)
}

// finish validates the final module, runs the closing analysis pass,
// and seals the Compilation. Both the scratch and incremental paths
// end here.
func (p *pipeline) finish(mod *ir.Module) (*Compilation, error) {
	ctx, cfg, comp := p.ctx, p.cfg, p.comp
	if err := guard("validate", func() error {
		if err := stageStart(ctx, "validate"); err != nil {
			return err
		}
		return mod.Validate()
	}); err != nil {
		if !isStructured(err) {
			err = &src.ICE{Stage: "validate", Msg: fmt.Sprintf("invalid IR after %s: %v", cfg.Name(), err)}
		}
		return nil, err
	}
	if cfg.Analyze {
		// Re-analyze the final module and re-prove every stack
		// promotion the optimizer made. This run is independent of the
		// optimizer's own facts — a pass promoting on stale or wrong
		// facts is an ICE here, never a silently unsound program. The
		// result is kept for tooling (virgil analyze, serve).
		t0 := time.Now()
		if err := guard("analysis", func() error {
			if err := stageStart(ctx, "analysis"); err != nil {
				return err
			}
			res, err := analysis.Analyze(ctx, mod, analysis.Config{Jobs: cfg.jobs()})
			if err != nil {
				return err
			}
			if err := analysis.VerifyPromotions(mod, res); err != nil {
				return &src.ICE{Stage: "analysis", Msg: err.Error()}
			}
			comp.Analysis = res
			return nil
		}); err != nil {
			if !isStructured(err) {
				err = &src.ICE{Stage: "analysis", Msg: err.Error()}
			}
			return nil, err
		}
		comp.Timings.Analysis = time.Since(t0)
	}
	comp.Module = mod
	comp.Timings.Total = time.Since(p.start)
	return comp, nil
}

// isStructured reports whether err already has a user-facing shape —
// an ICE, an injected fault, or a cancellation — and must not be
// re-wrapped as an "invalid IR" ICE.
func isStructured(err error) bool {
	if _, ok := err.(*src.ICE); ok {
		return true
	}
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, faultinject.ErrInjected)
}

// CheckFiles parses and typechecks files as one program without
// lowering, for tools that work on the typed AST (virgil lint).
// Diagnostics come back as a *src.ErrorList and panics as stage-tagged
// *src.ICE values, exactly as in CompileFiles.
func CheckFiles(files []File) (*typecheck.Program, error) {
	errs := &src.ErrorList{}
	diags := func() error {
		errs.Sort()
		errs.Truncate(src.MaxReported)
		return errs
	}
	var parsed []*ast.File
	if err := guard("parse", func() error {
		for _, f := range files {
			parsed = append(parsed, parser.Parse(f.Name, f.Source, errs))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if !errs.Empty() {
		return nil, diags()
	}
	var prog *typecheck.Program
	if err := guard("check", func() error {
		prog = typecheck.Check(parsed, errs)
		return nil
	}); err != nil {
		return nil, err
	}
	if !errs.Empty() {
		return nil, diags()
	}
	return prog, nil
}

// RunResult is the outcome of executing a compiled program.
type RunResult struct {
	Output string
	Stats  interp.Stats
	Err    error // the Virgil exception, if the program threw
}

// options derives interpreter options from the config's resource
// guards and the caller's ctx.
func (c *Compilation) options(ctx context.Context, w io.Writer) interp.Options {
	return interp.Options{
		Out:      w,
		MaxSteps: c.Config.MaxSteps,
		MaxDepth: c.Config.MaxDepth,
		MaxHeap:  c.Config.MaxHeap,
		Timeout:  c.Config.Timeout,
		Profile:  c.Config.Profile,
		Ctx:      ctx,
	}
}

// execute runs the configured execution engine behind the same
// fault-containment boundary as compilation: panics and internal
// engine errors surface as *src.ICE, while Virgil traps
// (*interp.VirgilError) and resource-guard stops
// (*interp.ResourceError) pass through. The "interp" fault-injection
// point fires before the first instruction — and, for the bytecode
// engine, before translation, so injected faults and cancellation
// behave identically under both engines. Stats are captured in a
// defer so a panicking run still reports the work done so far.
func (c *Compilation) execute(ctx context.Context, o interp.Options) (interp.Stats, error) {
	stats, _, err := c.executeOn(ctx, c.Config.EngineKind(), o)
	return stats, err
}

// executeOn is execute on an explicit engine kind, letting callers
// (the serve watchdog) re-run a warm Compilation on the switch
// interpreter without recompiling. The bytecode path carries two
// extra fault-injection points bracketing its engine-specific work —
// "translate" before bytecode translation and "engine" before the
// first bytecode instruction — which the switch path never crosses,
// so a fallback re-run cannot re-fire them.
func (c *Compilation) executeOn(ctx context.Context, kind string, o interp.Options) (stats interp.Stats, prof *profile.Profile, _ error) {
	err := guard("interp", func() error {
		if err := stageStart(ctx, "interp"); err != nil {
			return err
		}
		if kind == EngineSwitch {
			it := interp.New(c.Module, o)
			defer func() { stats = it.Stats() }()
			_, err := it.Run()
			return err
		}
		if err := faultinject.Point(ctx, "translate"); err != nil {
			return err
		}
		p := c.engineProgram()
		if err := faultinject.Point(ctx, "engine"); err != nil {
			return err
		}
		e := engine.New(p, o)
		defer func() {
			stats = e.Stats()
			prof = e.Profile()
		}()
		_, err := e.Run()
		return err
	})
	switch err.(type) {
	case nil, *interp.VirgilError, *interp.ResourceError, *src.ICE:
		return stats, prof, err
	}
	if isStructured(err) {
		return stats, prof, err
	}
	// Any other error from the engine is an internal inconsistency
	// (bad IR reached execution), not a fault in the user's program.
	return stats, prof, &src.ICE{Stage: "interp", Msg: err.Error()}
}

// Run executes the compiled module, capturing System output and
// honoring the config's resource guards.
func (c *Compilation) Run() RunResult {
	return c.RunContext(context.Background())
}

// RunContext is Run bounded by ctx: the engine's step loop polls the
// ctx and stops with an *interp.ResourceError of Kind "cancelled"
// once it ends.
func (c *Compilation) RunContext(ctx context.Context) RunResult {
	var out strings.Builder
	stats, err := c.execute(ctx, c.options(ctx, &out))
	return RunResult{Output: out.String(), Stats: stats, Err: err}
}

// RunTo executes the compiled module writing System output to w. A
// nonzero maxSteps overrides the config's step budget.
func (c *Compilation) RunTo(w io.Writer, maxSteps int64) (interp.Stats, error) {
	return c.RunToContext(context.Background(), w, maxSteps)
}

// RunToContext is RunTo bounded by ctx.
func (c *Compilation) RunToContext(ctx context.Context, w io.Writer, maxSteps int64) (interp.Stats, error) {
	return c.RunWith(ctx, w, RunOpts{MaxSteps: maxSteps})
}

// RunOpts are per-run overrides of the compiled config's execution
// parameters; zero values keep the config's settings.
type RunOpts struct {
	// MaxSteps overrides the step budget when nonzero.
	MaxSteps int64
	// MaxHeap overrides the modeled heap budget when nonzero.
	MaxHeap int64
	// Engine overrides the execution engine when nonempty — the serve
	// watchdog uses this to re-run a request on the switch interpreter
	// after a bytecode-engine fault, and to pin quarantined programs to
	// the reference engine.
	Engine string
	// Profile turns on profile recording for this run (bytecode engine
	// only; the switch interpreter ignores it). The recorded profile is
	// returned by RunProfiled; plain RunWith discards it.
	Profile bool
}

// RunWith executes the compiled module writing System output to w,
// with per-run overrides applied.
func (c *Compilation) RunWith(ctx context.Context, w io.Writer, opts RunOpts) (interp.Stats, error) {
	stats, _, err := c.runWith(ctx, w, opts)
	return stats, err
}

// RunProfiled is RunWith with profile recording forced on, returning
// the execution profile the bytecode engine collected alongside the
// run's stats. The profile is nil when the run never reached the
// engine (a switch-engine override, or a fault before execution).
func (c *Compilation) RunProfiled(ctx context.Context, w io.Writer, opts RunOpts) (interp.Stats, *profile.Profile, error) {
	opts.Profile = true
	return c.runWith(ctx, w, opts)
}

func (c *Compilation) runWith(ctx context.Context, w io.Writer, opts RunOpts) (interp.Stats, *profile.Profile, error) {
	o := c.options(ctx, w)
	if opts.MaxSteps != 0 {
		o.MaxSteps = opts.MaxSteps
	}
	if opts.MaxHeap != 0 {
		o.MaxHeap = opts.MaxHeap
	}
	if opts.Profile {
		o.Profile = true
	}
	kind := c.Config.EngineKind()
	if opts.Engine != "" {
		kind = opts.Engine
	}
	return c.executeOn(ctx, kind, o)
}

// Interp returns a fresh switch interpreter over the compiled module,
// for callers that need to invoke individual functions (benchmarks).
func (c *Compilation) Interp(w io.Writer) *interp.Interp {
	return interp.New(c.Module, c.options(context.Background(), w))
}

// Engine returns a fresh bytecode engine over the compiled module, for
// callers that need to invoke individual functions (benchmarks). The
// underlying bytecode program is translated once per Compilation. A
// translation panic on corrupt IR is returned as an interp-stage ICE.
func (c *Compilation) Engine(w io.Writer) (*engine.Engine, error) {
	var e *engine.Engine
	err := guard("interp", func() error {
		e = engine.New(c.engineProgram(), c.options(context.Background(), w))
		return nil
	})
	return e, err
}

// Configs returns the four ablation configurations in pipeline order.
func Configs() []Config {
	return []Config{
		Reference(),
		{Monomorphize: true},
		{Monomorphize: true, Normalize: true},
		Compiled(),
	}
}

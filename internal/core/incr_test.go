package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/testprogs"
)

// optConfig is the function-granular-eligible config: the full
// pipeline without the analysis layer.
func optConfig() Config {
	return Config{Monomorphize: true, Normalize: true, Optimize: true}
}

// editProg is a program written so each scripted edit touches exactly
// one declaration, with enough cross-function and generic structure
// that stale reuse would be observable: virtual dispatch, generic
// instances shared between functions, globals, and tuples.
const editProgBase = `
class Shape {
	def area() -> int { return 0; }
	def describe() -> int { return area() + 1; }
}
class Square extends Shape {
	var s: int;
	new(s) { }
	def area() -> int { return s * s; }
}
class Circle extends Shape {
	var r: int;
	new(r) { }
	def area() -> int { return 3 * r * r; }
}
class Box<T> {
	var value: T;
	new(value) { }
	def get() -> T { return value; }
}
var counter: int = 7;
def pair(a: int, b: int) -> (int, int) { return (b, a); }
def sum(xs: Array<int>) -> int {
	var t = 0;
	for (i = 0; i < xs.length; i++) { t = t + xs[i]; }
	return t;
}
def helper(x: int) -> int {
	var local = x * 2;
	return local + counter;
}
def compute(n: int) -> int {
	var b = Box<int>.new(n);
	var q = Box<bool>.new(n > 0);
	var lh = pair(n, helper(n));
	if (q.get()) { return b.get() + lh.0 + lh.1; }
	return lh.0 - lh.1;
}
def fill() -> Array<int> {
	var xs = Array<int>.new(3);
	xs[0] = 11; xs[1] = compute(3); xs[2] = counter;
	return xs;
}
def describe(sh: Shape) -> int { return sh.describe(); }
def main() -> int {
	var t = describe(Shape.new()) + describe(Square.new(4)) + describe(Circle.new(2));
	System.puts("total "); System.puti(t + compute(5)); System.ln();
	return sum(fill());
}
`

// editScript is one scripted source edit: a textual substitution plus
// the maximum set of lowered functions allowed to recompile (the edit's
// dirty closure). Empty recompile means a type-level edit, which
// legitimately falls back to a full compile.
type editScript struct {
	name string
	old  string
	new  string
	// maxRecompiled is the ceiling on FuncsRecompiled for the
	// function-granular path; 0 means the edit must fall back
	// (FallbackReason non-empty).
	maxRecompiled int
	wantFallback  bool
}

func editScripts() []editScript {
	return []editScript{
		{
			// Renaming a local changes only that function's body; its
			// callers see the same hash... except hashFunc includes reg
			// names (dumps do too), so helper and its transitive
			// callers (compute, main, plus mono instances) recompile.
			name: "rename-local", old: "var local = x * 2;\n\treturn local + counter;",
			new: "var renamed = x * 2;\n\treturn renamed + counter;", maxRecompiled: 6,
		},
		{
			name: "change-body", old: "var t = 0;\n\tfor (i = 0; i < xs.length; i++) { t = t + xs[i]; }\n\treturn t;",
			new: "var t = 1;\n\tfor (i = 0; i < xs.length; i++) { t = t + xs[i]; }\n\treturn t - 1;", maxRecompiled: 4,
		},
		{
			name: "add-function", old: "def main() -> int {",
			new:  "def fresh(z: int) -> int { return z + 41; }\ndef main() -> int {", maxRecompiled: 3,
		},
		{
			// Deleting a function: replace helper's only use, then drop it.
			name: "delete-function", old: "def helper(x: int) -> int {\n\tvar local = x * 2;\n\treturn local + counter;\n}",
			new: "", wantFallback: false, maxRecompiled: 8,
		},
		{
			// Type-decl edit: a new field changes every layout-derived
			// artifact; the environment hash must force a full rebuild.
			name: "edit-type-decl", old: "class Square extends Shape {\n\tvar s: int;",
			new: "class Square extends Shape {\n\tvar pad: int;\n\tvar s: int;", wantFallback: true,
		},
	}
}

func applyEdit(t *testing.T, base string, e editScript) string {
	t.Helper()
	if e.name == "delete-function" {
		// Also retarget helper's callers so the program still checks.
		s := strings.Replace(base, e.old, e.new, 1)
		s = strings.Replace(s, "pair(n, helper(n))", "pair(n, n * 2 + counter)", 1)
		if s == base {
			t.Fatalf("edit %s: pattern not found", e.name)
		}
		return s
	}
	s := strings.Replace(base, e.old, e.new, 1)
	if s == base {
		t.Fatalf("edit %s: pattern not found", e.name)
	}
	return s
}

func compileIncr(t *testing.T, store *Store, source string, cfg Config) (*Compilation, *IncrStats) {
	t.Helper()
	comp, st, err := CompileFilesIncremental(context.Background(), []File{{Name: "edit.v", Source: source}}, cfg, store)
	if err != nil {
		t.Fatalf("incremental compile: %v", err)
	}
	return comp, st
}

func outcomeOf(t *testing.T, comp *Compilation) compileOutcome {
	t.Helper()
	o := compileOutcome{dump: comp.Module.String()}
	res := comp.Run()
	o.runOut = res.Output
	if res.Err != nil {
		o.runErr = res.Err.Error()
	}
	return o
}

// TestIncrementalEditScripts drives the edit-script differential: for
// every scripted edit, at jobs=1 and jobs=8, the incremental compile
// of the edited source must be byte-identical (IR dump and run
// behavior) to a from-scratch compile, and must recompile no more than
// the edit's dirty closure.
func TestIncrementalEditScripts(t *testing.T) {
	for _, jobs := range []int{1, 8} {
		for _, e := range editScripts() {
			e := e
			t.Run(e.name+joblabel(jobs), func(t *testing.T) {
				cfg := optConfig()
				cfg.Jobs = jobs
				store := NewStore(4)
				baseComp, st := compileIncr(t, store, editProgBase, cfg)
				if st.Mode != ModeCold {
					t.Fatalf("first compile mode = %s, want cold", st.Mode)
				}
				if got := outcomeOf(t, baseComp); got.runErr != "" {
					t.Fatalf("base program failed: %s", got.runErr)
				}

				edited := applyEdit(t, editProgBase, e)
				incComp, st := compileIncr(t, store, edited, cfg)
				scratch, err := Compile("edit.v", edited, cfg)
				if err != nil {
					t.Fatalf("scratch compile: %v", err)
				}
				want, got := outcomeOf(t, scratch), outcomeOf(t, incComp)
				if want.dump != got.dump {
					t.Fatalf("mode %s: incremental dump differs from scratch", st.Mode)
				}
				if want.runOut != got.runOut || want.runErr != got.runErr {
					t.Fatalf("run differs: scratch (%q, %q) vs incremental (%q, %q)",
						want.runOut, want.runErr, got.runOut, got.runErr)
				}
				if e.wantFallback {
					if st.Mode != ModeFallback {
						t.Fatalf("mode = %s (reason %q), want fallback", st.Mode, st.Reason)
					}
				} else {
					if st.Mode != ModeIncremental {
						t.Fatalf("mode = %s (reason %q), want incremental", st.Mode, st.Reason)
					}
					if st.FuncsRecompiled > e.maxRecompiled {
						t.Errorf("recompiled %d funcs, want <= %d (reused %d)",
							st.FuncsRecompiled, e.maxRecompiled, st.FuncsReused)
					}
					if st.FuncsReused == 0 {
						t.Errorf("incremental compile reused nothing")
					}
				}

				// Same source again: whole-module hit off the refreshed base.
				hitComp, st := compileIncr(t, store, edited, cfg)
				if st.Mode != ModeModuleHit {
					t.Fatalf("repeat mode = %s, want module-hit", st.Mode)
				}
				if h := outcomeOf(t, hitComp); h.dump != want.dump || h.runOut != want.runOut {
					t.Fatalf("module hit differs from scratch")
				}
			})
		}
	}
}

func joblabel(jobs int) string {
	if jobs == 1 {
		return "/jobs=1"
	}
	return "/jobs=8"
}

// TestIncrementalCorpus appends a fresh function to every successful
// corpus program and checks the incremental result is byte-identical
// to scratch. Corpus programs exercise shapes the handwritten edit
// program doesn't (closures, deep generics, enums).
func TestIncrementalCorpus(t *testing.T) {
	cfg := optConfig()
	for _, p := range testprogs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if _, err := Compile(p.Name+".v", p.Source, cfg); err != nil {
				t.Skipf("program does not compile clean: %v", err)
			}
			store := NewStore(2)
			compileIncr(t, store, p.Source, cfg)
			edited := p.Source + "\ndef __incr_probe(q: int) -> int { return q * 3 + 1; }\n"
			incComp, st := compileIncr(t, store, edited, cfg)
			scratch, err := Compile(p.Name+".v", edited, cfg)
			if err != nil {
				t.Fatalf("scratch: %v", err)
			}
			if st.Mode != ModeIncremental && st.Mode != ModeFallback {
				t.Fatalf("mode = %s", st.Mode)
			}
			want, got := outcomeOf(t, scratch), outcomeOf(t, incComp)
			if want.dump != got.dump {
				t.Fatalf("mode %s (reason %q): dump differs from scratch", st.Mode, st.Reason)
			}
			if want.runOut != got.runOut || want.runErr != got.runErr {
				t.Fatalf("run differs")
			}
		})
	}
}

// TestIncrementalConfigIsolation: artifacts never cross config
// fingerprints — an analyze compile after a plain compile of the same
// source must not see the plain module.
func TestIncrementalConfigIsolation(t *testing.T) {
	store := NewStore(4)
	plain := optConfig()
	full := Compiled()
	cPlain, st := compileIncr(t, store, editProgBase, plain)
	if st.Mode != ModeCold {
		t.Fatalf("plain mode = %s", st.Mode)
	}
	cFull, st := compileIncr(t, store, editProgBase, full)
	if st.Mode != ModeCold {
		t.Fatalf("full compile mode = %s, want cold (separate fingerprint)", st.Mode)
	}
	if cFull.Analysis == nil {
		t.Fatalf("analyze compile lost its analysis")
	}
	// And each config gets its own module hit afterwards.
	c2, st := compileIncr(t, store, editProgBase, plain)
	if st.Mode != ModeModuleHit || c2.Module != cPlain.Module {
		t.Fatalf("plain rehit mode=%s", st.Mode)
	}
	c3, st := compileIncr(t, store, editProgBase, full)
	if st.Mode != ModeModuleHit || c3.Module != cFull.Module {
		t.Fatalf("full rehit mode=%s", st.Mode)
	}
	if c3.Analysis == nil {
		t.Fatalf("module-hit clone dropped analysis")
	}
}

// TestIncrementalCompileErrors: diagnostics pass through unchanged and
// never poison the store.
func TestIncrementalCompileErrors(t *testing.T) {
	store := NewStore(2)
	cfg := optConfig()
	compileIncr(t, store, editProgBase, cfg)
	broken := strings.Replace(editProgBase, "return local + counter;", "return local + nosuch;", 1)
	_, _, err := CompileFilesIncremental(context.Background(), []File{{Name: "edit.v", Source: broken}}, cfg, store)
	if err == nil {
		t.Fatalf("broken program compiled")
	}
	scratchErr := func() string {
		_, serr := Compile("edit.v", broken, cfg)
		if serr == nil {
			t.Fatalf("broken program compiled from scratch")
		}
		return serr.Error()
	}()
	if err.Error() != scratchErr {
		t.Fatalf("diagnostics differ:\nincr: %s\nscratch: %s", err, scratchErr)
	}
	// Store still answers for the good source.
	_, st := compileIncr(t, store, editProgBase, cfg)
	if st.Mode != ModeModuleHit {
		t.Fatalf("store poisoned by failed compile: mode=%s", st.Mode)
	}
}

// TestIncrementalStoreFault proves the artifact-store fault point
// degrades to a correct from-scratch compile with a structured reason.
func TestIncrementalStoreFault(t *testing.T) {
	store := NewStore(2)
	cfg := optConfig()
	compileIncr(t, store, editProgBase, cfg)

	reg, err := faultinject.Parse("artifact-store:err:0+")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Set(reg)
	defer restore()
	comp, st, err := CompileFilesIncremental(context.Background(), []File{{Name: "edit.v", Source: editProgBase}}, cfg, store)
	restore()
	if err != nil {
		t.Fatalf("degraded compile errored: %v", err)
	}
	if st.Mode != ModeDegraded || st.Reason == "" {
		t.Fatalf("mode=%s reason=%q, want degraded with reason", st.Mode, st.Reason)
	}
	scratch, err := Compile("edit.v", editProgBase, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scratch.Module.String() != comp.Module.String() {
		t.Fatalf("degraded output differs from scratch")
	}
	// Un-armed again: the store still has the original base.
	_, st2 := compileIncr(t, store, editProgBase, cfg)
	if st2.Mode != ModeModuleHit {
		t.Fatalf("store lost its base across degrade: mode=%s", st2.Mode)
	}
}

// TestIncrementalMultiFileASTReuse drives edits through a two-file
// program so the unchanged file's AST comes from the base's parse
// cache (the single-file tests always invalidate their one file and
// never hit it). The checker re-annotates cached nodes in place on
// every compile, so the test loops several edits — each check over the
// reused AST must stay byte-identical to a from-scratch compile — and
// injects a failing edit in the middle, since a failed check leaves
// cached nodes partially re-annotated and the next compile must not
// care.
func TestIncrementalMultiFileASTReuse(t *testing.T) {
	cfg := optConfig()
	store := NewStore(2)
	probe := func(i int) string {
		return fmt.Sprintf("def probe(q: int) -> int { return q * 3 + %d; }\n", i)
	}
	files := func(p string) []File {
		return []File{{Name: "lib.v", Source: editProgBase}, {Name: "probe.v", Source: p}}
	}
	compile := func(p string) (*Compilation, *IncrStats, error) {
		return CompileFilesIncremental(context.Background(), files(p), cfg, store)
	}

	if _, st, err := compile(probe(0)); err != nil || st.Mode != ModeCold {
		t.Fatalf("first compile: mode=%v err=%v", st, err)
	}
	for i := 1; i <= 3; i++ {
		incComp, st, err := compile(probe(i))
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
		if st.Mode != ModeIncremental {
			t.Fatalf("edit %d: mode=%s (reason %q), want incremental", i, st.Mode, st.Reason)
		}
		scratch, err := CompileFilesContext(context.Background(), files(probe(i)), cfg)
		if err != nil {
			t.Fatalf("edit %d scratch: %v", i, err)
		}
		want, got := outcomeOf(t, scratch), outcomeOf(t, incComp)
		if want.dump != got.dump {
			t.Fatalf("edit %d: incremental dump differs from scratch", i)
		}
		if want.runOut != got.runOut || want.runErr != got.runErr {
			t.Fatalf("edit %d: run differs", i)
		}
		if i == 2 {
			if _, _, err := compile("def probe(q: int) -> int { return nosuch; }\n"); err == nil {
				t.Fatalf("broken probe compiled")
			}
		}
	}
	// Edit the big file instead: its cache entry invalidates, the
	// probe's stays valid, and the result must still match scratch.
	libEdit := strings.Replace(editProgBase, "var local = x * 2;", "var local = x + x;", 1)
	bigFiles := []File{{Name: "lib.v", Source: libEdit}, {Name: "probe.v", Source: probe(3)}}
	incComp, st, err := CompileFilesIncremental(context.Background(), bigFiles, cfg, store)
	if err != nil {
		t.Fatalf("lib edit: %v", err)
	}
	if st.Mode != ModeIncremental {
		t.Fatalf("lib edit: mode=%s (reason %q), want incremental", st.Mode, st.Reason)
	}
	scratch, err := CompileFilesContext(context.Background(), bigFiles, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want, got := outcomeOf(t, scratch), outcomeOf(t, incComp); want.dump != got.dump || want.runOut != got.runOut {
		t.Fatalf("lib edit: incremental differs from scratch")
	}
}

// TestIncrementalConcurrentSharedStore hammers one store — and thus
// one parse cache — from goroutines compiling different edits of the
// same two-file program. The cache's mutex serializes frontends that
// share AST nodes; running this under -race is the proof that it does.
func TestIncrementalConcurrentSharedStore(t *testing.T) {
	cfg := optConfig()
	store := NewStore(2)
	files := func(i int) []File {
		return []File{
			{Name: "lib.v", Source: editProgBase},
			{Name: "probe.v", Source: fmt.Sprintf("def probe(q: int) -> int { return q * 3 + %d; }\n", i)},
		}
	}
	if _, _, err := CompileFilesIncremental(context.Background(), files(0), cfg, store); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, _, err := CompileFilesIncremental(context.Background(), files(1+w*10+i), cfg, store); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// The store survived the stampede: its final base answers edits
	// byte-identically to scratch.
	comp, st, err := CompileFilesIncremental(context.Background(), files(999), cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != ModeIncremental {
		t.Fatalf("mode=%s (reason %q), want incremental", st.Mode, st.Reason)
	}
	scratch, err := CompileFilesContext(context.Background(), files(999), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scratch.Module.String() != comp.Module.String() {
		t.Fatalf("post-stampede incremental differs from scratch")
	}
}

// TestStoreLRU: the store evicts the oldest fingerprint at capacity.
func TestStoreLRU(t *testing.T) {
	store := NewStore(1)
	plain := optConfig()
	full := Compiled()
	compileIncr(t, store, editProgBase, plain)
	compileIncr(t, store, editProgBase, full) // evicts plain
	if store.Len() != 1 {
		t.Fatalf("len=%d, want 1", store.Len())
	}
	_, st := compileIncr(t, store, editProgBase, plain)
	if st.Mode != ModeCold {
		t.Fatalf("evicted fingerprint answered: mode=%s", st.Mode)
	}
}

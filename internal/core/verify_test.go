package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/testprogs"
)

// TestVerifyIRAllProgramsAllConfigs is the acceptance property of the
// typed verifier: every program in the corpus passes verification
// after every pipeline stage under every configuration.
func TestVerifyIRAllProgramsAllConfigs(t *testing.T) {
	for _, p := range testprogs.All() {
		for _, cfg := range core.Configs() {
			cfg.VerifyIR = true
			if _, err := core.Compile(p.Name+".v", p.Source, cfg); err != nil {
				t.Errorf("%s [%s]: %v", p.Name, cfg.Name(), err)
			}
		}
	}
}

// TestVerifyIRCatchesCorruptedPipelineOutput corrupts real pipeline
// output and checks the verifier rejects it — the end-to-end form of
// the seeded-mutation property.
func TestVerifyIRCatchesCorruptedPipelineOutput(t *testing.T) {
	p := testprogs.All()[0]
	comp, err := core.Compile(p.Name+".v", p.Source, core.Compiled())
	if err != nil {
		t.Fatal(err)
	}
	mod := comp.Module
	if err := mod.Verify(); err != nil {
		t.Fatalf("clean module fails verification: %v", err)
	}
	// Retype the first defined register to a type no opcode result can
	// produce alongside its definition.
	var victim *ir.Reg
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if len(in.Dst) > 0 && in.Op == ir.OpConstInt {
					victim = in.Dst[0]
					break
				}
			}
		}
	}
	if victim == nil {
		t.Skip("no int constant in lowered corpus program")
	}
	victim.Type = mod.Types.Bool()
	if err := mod.Verify(); err == nil {
		t.Fatal("verifier accepted a retyped register")
	} else if !strings.Contains(err.Error(), "bool") {
		t.Fatalf("unexpected verifier error: %v", err)
	}
}

// TestVerifyIREnvForcesOn checks VIRGIL_VERIFY_IR enables verification
// without the config field (the CI hook).
func TestVerifyIREnvForcesOn(t *testing.T) {
	t.Setenv("VIRGIL_VERIFY_IR", "1")
	p := testprogs.All()[0]
	if _, err := core.Compile(p.Name+".v", p.Source, core.Compiled()); err != nil {
		t.Fatalf("compile with forced verification: %v", err)
	}
}

// TestVerifyOpenTypesToleratedInReference checks the reference config
// (polymorphic IR) verifies even though register types are open — the
// verifier must not demand closed types before monomorphization.
func TestVerifyOpenTypesToleratedInReference(t *testing.T) {
	source := `
class Box<T> {
	var x: T;
	new(x) { }
	def get() -> T { return x; }
}
def main() {
	var b = Box<int>.new(41);
	System.puti(b.get() + 1);
}
`
	cfg := core.Reference()
	cfg.VerifyIR = true
	comp, err := core.Compile("box.v", source, cfg)
	if err != nil {
		t.Fatalf("reference compile with verifier: %v", err)
	}
	var open bool
	for _, f := range comp.Module.Funcs {
		if len(f.TypeParams) > 0 {
			open = true
		}
	}
	if !open {
		t.Fatal("expected open functions in the reference module")
	}
}

package core

import (
	"strings"
	"testing"
	"time"
)

// TestConfigValidate pins the up-front configuration checks: stage
// dependencies and resource fields are rejected with a diagnostic
// before any compilation work happens.
func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr string // substring; empty means valid
	}{
		{name: "reference", cfg: Reference()},
		{name: "compiled", cfg: Compiled()},
		{name: "mono only", cfg: Config{Monomorphize: true}},
		{name: "default jobs", cfg: Config{Jobs: 0}},
		{name: "explicit jobs", cfg: Config{Jobs: 8}},
		{name: "norm without mono", cfg: Config{Normalize: true}, wantErr: "Normalize requires Monomorphize"},
		{name: "opt without norm", cfg: Config{Monomorphize: true, Optimize: true}, wantErr: "Optimize requires Normalize"},
		{name: "negative jobs", cfg: Config{Jobs: -1}, wantErr: "Jobs must be >= 0"},
		{name: "default max errors", cfg: Config{MaxErrors: 0}},
		{name: "explicit max errors", cfg: Config{MaxErrors: 5}},
		{name: "negative max errors", cfg: Config{MaxErrors: -1}, wantErr: "MaxErrors must be >= 0"},
		{name: "negative max steps", cfg: Config{MaxSteps: -5}, wantErr: "MaxSteps must be >= 0"},
		{name: "negative max depth", cfg: Config{MaxDepth: -1}, wantErr: "MaxDepth must be >= 0"},
		{name: "negative timeout", cfg: Config{Timeout: -time.Second}, wantErr: "Timeout must be >= 0"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.wantErr)
			}
		})
	}
}

// TestCompileRejectsInvalidConfig verifies the validation runs up front
// in Compile/CompileFiles and surfaces as the returned error rather
// than silent misbehavior.
func TestCompileRejectsInvalidConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Normalize: true},
		{Jobs: -4},
	} {
		if _, err := Compile("t.v", "def main() -> int { return 0; }", cfg); err == nil {
			t.Fatalf("Compile with invalid config %+v: want error, got nil", cfg)
		}
	}
}

// TestConfigJobsResolution pins the Jobs defaulting rule.
func TestConfigJobsResolution(t *testing.T) {
	if got := (Config{Jobs: 3}).jobs(); got != 3 {
		t.Fatalf("jobs() = %d, want 3", got)
	}
	if got := (Config{}).jobs(); got < 1 {
		t.Fatalf("jobs() = %d, want >= 1 (GOMAXPROCS)", got)
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/src"
	"repro/internal/testprogs"
)

const ctxProg = `
def work(n: int) -> int {
	var s = 0;
	for (i = 0; i < n; i = i + 1) s = s + i;
	return s;
}
def main() {
	System.puti(work(10));
	System.ln();
}
`

// TestCompileCancelledBeforeStart: a ctx that is already done must stop
// the pipeline at the first stage boundary with a wrapped ctx error.
func TestCompileCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompileFilesContext(ctx, []File{{Name: "t.v", Source: ctxProg}}, Compiled())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "parse") {
		t.Fatalf("cancellation not attributed to the first stage: %v", err)
	}
}

// TestCompileCancelledMidPipeline arms a long ctx-aware delay at the
// mono boundary of the largest corpus program, cancels shortly after
// starting, and asserts the pipeline unwinds promptly — the
// cancellation bound that internal/serve relies on to free slots.
func TestCompileCancelledMidPipeline(t *testing.T) {
	r, perr := faultinject.Parse("mono:delay:0:10000")
	if perr != nil {
		t.Fatal(perr)
	}
	defer faultinject.Set(r)()

	p := largestCorpusProg()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := CompileFilesContext(ctx, []File{{Name: p.Name + ".v", Source: p.Source}}, Compiled())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(100 * time.Millisecond):
		t.Fatal("compilation did not unwind within 100ms of cancellation")
	}
}

// largestCorpusProg returns the corpus program with the longest source.
func largestCorpusProg() testprogs.Prog {
	all := testprogs.All()
	best := all[0]
	for _, p := range all {
		if len(p.Source) > len(best.Source) {
			best = p
		}
	}
	return best
}

// TestRunContextCancelled: a cancelled ctx stops the interpreter's step
// loop with a structured ResourceError, not a hang or a panic.
func TestRunContextCancelled(t *testing.T) {
	src := `
def main() {
	var i = 0;
	while (true) i = i + 1;
}
`
	comp, err := Compile("loop.v", src, Compiled())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := comp.RunContext(ctx)
	var re *interp.ResourceError
	if !errors.As(res.Err, &re) || re.Kind != "cancelled" {
		t.Fatalf("Err = %v, want ResourceError{cancelled}", res.Err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
}

// TestFaultMatrixEveryStage injects each fault kind at every pipeline
// boundary (including the pool and the interpreter) and asserts the
// outcome is always structured: panics become stage-tagged ICEs, errors
// surface wrapping ErrInjected, delays only slow the run — and a clean
// compile of the same source still succeeds afterwards (no corrupted
// shared state in types.Cache).
func TestFaultMatrixEveryStage(t *testing.T) {
	stages := []string{"parse", "check", "lower", "mono", "norm", "opt", "validate", "interp", "par",
		"verify-lower", "verify-mono", "verify-norm", "verify-opt"}
	cfg := Compiled()
	cfg.VerifyIR = true
	cfg.Jobs = 4
	for _, stage := range stages {
		for _, kind := range []string{faultinject.KindPanic, faultinject.KindErr, faultinject.KindDelay} {
			t.Run(stage+"/"+kind, func(t *testing.T) {
				r, perr := faultinject.Parse(fmt.Sprintf("%s:%s:0:10", stage, kind))
				if perr != nil {
					t.Fatal(perr)
				}
				restore := faultinject.Set(r)
				comp, err := Compile("t.v", ctxProg, cfg)
				var runErr error
				if err == nil {
					runErr = comp.Run().Err
				}
				restore()

				switch kind {
				case faultinject.KindDelay:
					if err != nil || runErr != nil {
						t.Fatalf("delay fault must not fail the pipeline: compile=%v run=%v", err, runErr)
					}
				case faultinject.KindErr:
					got := err
					if got == nil {
						got = runErr
					}
					if !errors.Is(got, faultinject.ErrInjected) {
						t.Fatalf("compile=%v run=%v, want ErrInjected", err, runErr)
					}
				case faultinject.KindPanic:
					got := err
					if got == nil {
						got = runErr
					}
					var ice *src.ICE
					if !errors.As(got, &ice) {
						t.Fatalf("compile=%v run=%v, want *src.ICE", err, runErr)
					}
					if !strings.Contains(ice.Msg, "injected panic") {
						t.Fatalf("ICE does not carry the injected panic: %v", ice)
					}
				}

				// The same process must compile and run cleanly afterwards.
				comp, err = Compile("t.v", ctxProg, cfg)
				if err != nil {
					t.Fatalf("clean compile after %s:%s failed: %v", stage, kind, err)
				}
				if res := comp.Run(); res.Err != nil || res.Output != "45\n" {
					t.Fatalf("clean run after %s:%s: out=%q err=%v", stage, kind, res.Output, res.Err)
				}
			})
		}
	}
}

// TestBytecodeFaultPointsNthHit drives the two bytecode-only points
// ("translate" before IR-to-bytecode translation, "engine" before the
// first bytecode instruction) through the nth-hit protocol: with a
// fault armed for crossing n, runs 0..n-1 are clean, run n fails with
// the structured form of the fault (stage-tagged ICE for panics, a
// wrapped ErrInjected for errs, nothing at all for delays), and runs
// after n are clean again — the fault fires exactly once per arming.
func TestBytecodeFaultPointsNthHit(t *testing.T) {
	for _, stage := range []string{"translate", "engine"} {
		for _, tt := range []struct {
			kind string
			nth  int
		}{
			{faultinject.KindPanic, 0},
			{faultinject.KindPanic, 2},
			{faultinject.KindErr, 0},
			{faultinject.KindErr, 2},
			{faultinject.KindDelay, 0},
		} {
			t.Run(fmt.Sprintf("%s/%s/nth=%d", stage, tt.kind, tt.nth), func(t *testing.T) {
				r, perr := faultinject.Parse(fmt.Sprintf("%s:%s:%d:10", stage, tt.kind, tt.nth))
				if perr != nil {
					t.Fatal(perr)
				}
				defer faultinject.Set(r)()

				comp, err := Compile("t.v", ctxProg, Compiled())
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				// Every Run crosses each execution point exactly once.
				for run := 0; run <= tt.nth+1; run++ {
					runErr := comp.Run().Err
					if run != tt.nth || tt.kind == faultinject.KindDelay {
						if runErr != nil {
							t.Fatalf("run %d: %v, want clean (fault armed for crossing %d)", run, runErr, tt.nth)
						}
						continue
					}
					switch tt.kind {
					case faultinject.KindErr:
						if !errors.Is(runErr, faultinject.ErrInjected) {
							t.Fatalf("run %d: %v, want ErrInjected", run, runErr)
						}
					case faultinject.KindPanic:
						var ice *src.ICE
						if !errors.As(runErr, &ice) {
							t.Fatalf("run %d: %v, want *src.ICE", run, runErr)
						}
						if !strings.Contains(ice.Msg, "injected panic at "+stage) {
							t.Fatalf("ICE does not name the point: %v", ice)
						}
					}
				}
			})
		}
	}
}

// TestSwitchEngineSkipsBytecodePoints: the switch interpreter must
// never cross translate/engine. This invariant is what makes the serve
// watchdog's fallback re-run safe while the fault is still armed.
func TestSwitchEngineSkipsBytecodePoints(t *testing.T) {
	for _, stage := range []string{"translate", "engine"} {
		func() {
			r, perr := faultinject.Parse(stage + ":panic:0")
			if perr != nil {
				t.Fatal(perr)
			}
			defer faultinject.Set(r)()
			cfg := Compiled()
			cfg.Engine = EngineSwitch
			comp, err := Compile("t.v", ctxProg, cfg)
			if err != nil {
				t.Fatalf("[%s] compile: %v", stage, err)
			}
			if res := comp.Run(); res.Err != nil || res.Output != "45\n" {
				t.Fatalf("[%s] switch run crossed a bytecode-only point: out=%q err=%v", stage, res.Output, res.Err)
			}
		}()
	}
}

// TestMaxErrorsCap pins the configurable diagnostic cap: MaxErrors
// diagnostics are reported followed by the sentinel carrying the true
// total.
func TestMaxErrorsCap(t *testing.T) {
	var b strings.Builder
	b.WriteString("def main() {\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "\tbogus%d();\n", i)
	}
	b.WriteString("}\n")

	// Each bogus call yields two diagnostics (unknown name + bad call),
	// so the program produces 60 in total.
	for _, tt := range []struct {
		maxErrors int
		wantLen   int
	}{
		{maxErrors: 0, wantLen: src.MaxReported + 1}, // default cap + sentinel
		{maxErrors: 3, wantLen: 4},
		{maxErrors: 100, wantLen: 60}, // under the cap: no sentinel
	} {
		cfg := Reference()
		cfg.MaxErrors = tt.maxErrors
		_, err := Compile("many.v", b.String(), cfg)
		var list *src.ErrorList
		if !errors.As(err, &list) {
			t.Fatalf("MaxErrors=%d: err = %T %v, want *src.ErrorList", tt.maxErrors, err, err)
		}
		if len(list.Errors) != tt.wantLen {
			t.Fatalf("MaxErrors=%d: %d diagnostics, want %d", tt.maxErrors, len(list.Errors), tt.wantLen)
		}
		if tt.maxErrors != 100 {
			last := list.Errors[len(list.Errors)-1]
			if !strings.Contains(last.Msg, "too many errors (60 total)") {
				t.Fatalf("MaxErrors=%d: sentinel = %q", tt.maxErrors, last.Msg)
			}
		}
	}
}

package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/progen"
)

// This file is the differential proof of the heap budget: a program
// exceeding Config.MaxHeap must trap !HeapExhausted with the same
// message, the same source-level trace, and the same Stats (including
// the HeapBytes meter) under both engines, at every budget.

// allocProg allocates through two helper frames with control flow, so
// the !HeapExhausted trace has depth the inliner cannot collapse.
const allocProg = `
def alloc(n: int) -> Array<int> {
	if (n < 0) return Array<int>.new(0);
	return Array<int>.new(n);
}
def spin(chunk: int) -> int {
	var total = 0;
	while (true) {
		var a = alloc(chunk);
		total = total + a.length;
	}
	return total;
}
def main() -> int {
	return spin(256);
}
`

// TestHeapBudgetEquivalence sweeps heap budgets across allocation-
// heavy programs, asserting complete observable equality — including
// where the budget fires — between the bytecode engine and the switch
// interpreter, under both canonical configurations.
func TestHeapBudgetEquivalence(t *testing.T) {
	progs := map[string]string{"alloc": allocProg}
	for name, src := range progen.Hungry() {
		progs[name] = src
	}
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			for _, base := range []core.Config{core.Reference(), core.Compiled()} {
				for shift := 6; shift <= 16; shift += 2 {
					cfg := base
					cfg.MaxHeap = 1 << shift
					cfg.MaxSteps = 2_000_000
					label := fmt.Sprintf("%s/heap=%d", cfg.Name(), cfg.MaxHeap)
					bc, sw, ok := runBothEngines(t, label, name+".v", src, cfg)
					if !ok {
						t.Fatalf("%s: failed to compile", label)
					}
					sameRun(t, label, bc, sw)
				}
			}
		})
	}
}

// TestHeapExhaustedTrapShape pins the user-facing form of the trap:
// name, the budget-carrying message, and a multi-frame source-level
// trace identical across engines.
func TestHeapExhaustedTrapShape(t *testing.T) {
	for _, base := range []core.Config{core.Reference(), core.Compiled()} {
		cfg := base
		cfg.MaxHeap = 1 << 14
		bc, sw, ok := runBothEngines(t, cfg.Name(), "alloc.v", allocProg, cfg)
		if !ok {
			t.Fatalf("[%s] failed to compile", cfg.Name())
		}
		sameRun(t, cfg.Name(), bc, sw)
		ve, isTrap := bc.Err.(*interp.VirgilError)
		if !isTrap || ve.Name != interp.HeapExhausted {
			t.Fatalf("[%s] want %s, got %v", cfg.Name(), interp.HeapExhausted, bc.Err)
		}
		if !strings.Contains(ve.Msg, fmt.Sprintf("budget %d bytes", cfg.MaxHeap)) {
			t.Errorf("[%s] message %q does not name the budget", cfg.Name(), ve.Msg)
		}
		if len(ve.Trace) == 0 {
			t.Fatalf("[%s] trap carries no trace", cfg.Name())
		}
		if tr := ve.TraceString(); !strings.Contains(tr, "main") {
			t.Errorf("[%s] trace does not reach main:\n%s", cfg.Name(), tr)
		}
		if bc.Stats.HeapBytes <= cfg.MaxHeap {
			t.Errorf("[%s] HeapBytes = %d, want > %d", cfg.Name(), bc.Stats.HeapBytes, cfg.MaxHeap)
		}
	}
}

// TestHeapBudgetDefaultIsGenerous: with no MaxHeap configured, the
// whole corpus runs exactly as before — the default budget exists to
// contain runaway allocators, not to tax normal programs.
func TestHeapBudgetDefaultIsGenerous(t *testing.T) {
	comp, err := core.Compile("hello.v", `def main() { System.puts("hi"); }`, core.Compiled())
	if err != nil {
		t.Fatal(err)
	}
	res := comp.Run()
	if res.Err != nil {
		t.Fatalf("default budget tripped: %v", res.Err)
	}
	if res.Stats.HeapBytes <= 0 {
		t.Fatalf("HeapBytes = %d, want > 0 (the string literal is charged)", res.Stats.HeapBytes)
	}
}

// TestConfigMaxHeapValidate: negative budgets are a config error.
func TestConfigMaxHeapValidate(t *testing.T) {
	cfg := core.Compiled()
	cfg.MaxHeap = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted MaxHeap = -1")
	}
}

package core

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/testprogs"
)

// detCase is one source program compared across worker counts.
type detCase struct {
	name   string
	source string
}

// determinismCorpus is every program in the test corpus plus the
// checked-in example files, plus a few deliberately broken sources so
// the jobs=1 and jobs=N pipelines are also compared on their
// diagnostics, not just on successful output.
func determinismCorpus(t *testing.T) []detCase {
	t.Helper()
	var cases []detCase
	for _, p := range testprogs.All() {
		cases = append(cases, detCase{name: "testprogs/" + p.Name, source: p.Source})
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "virgil", "*.v"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatal("no example programs found; expected examples/virgil/*.v")
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, detCase{name: "examples/" + filepath.Base(p), source: string(src)})
	}
	cases = append(cases,
		detCase{name: "err/type-mismatch", source: `
def f(x: int) -> bool { return x; }
def g(y: bool) -> int { return y; }
def main() { f(1); g(true); }
`},
		detCase{name: "err/unknown-names", source: `
def main() {
	var a = missing(1);
	var b: NoSuchClass;
	undeclared = 3;
}
`},
		detCase{name: "err/bad-generics", source: `
class Box<T> { def get() -> T; }
def main() {
	var b = Box<int, bool>.new();
	var c: Box;
}
`},
	)
	return cases
}

// compileOutcome flattens everything observable about a compilation
// into comparable strings.
type compileOutcome struct {
	compileErr string
	dump       string
	runOut     string
	runErr     string
}

func outcomeAt(tc detCase, cfg Config, jobs int) compileOutcome {
	cfg.Jobs = jobs
	comp, err := Compile(tc.name+".v", tc.source, cfg)
	if err != nil {
		return compileOutcome{compileErr: err.Error()}
	}
	o := compileOutcome{dump: comp.Module.String()}
	res := comp.Run()
	o.runOut = res.Output
	if res.Err != nil {
		o.runErr = res.Err.Error()
	}
	return o
}

// TestParallelDeterminism compiles the entire corpus under every
// ablation configuration at jobs=1 (the sequential reference path) and
// jobs=8, asserting byte-identical IR dumps, diagnostics, and
// interpreter output. This is the contract the parallel pipeline
// promises: worker count changes wall-clock time and nothing else.
func TestParallelDeterminism(t *testing.T) {
	for _, tc := range determinismCorpus(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for ci, cfg := range Configs() {
				seq := outcomeAt(tc, cfg, 1)
				parl := outcomeAt(tc, cfg, 8)
				if seq.compileErr != parl.compileErr {
					t.Errorf("config %d: diagnostics differ\njobs=1: %s\njobs=8: %s", ci, seq.compileErr, parl.compileErr)
					continue
				}
				if seq.dump != parl.dump {
					t.Errorf("config %d: IR dump differs between jobs=1 and jobs=8", ci)
				}
				if seq.runOut != parl.runOut {
					t.Errorf("config %d: run output differs\njobs=1: %q\njobs=8: %q", ci, seq.runOut, parl.runOut)
				}
				if seq.runErr != parl.runErr {
					t.Errorf("config %d: run error differs\njobs=1: %q\njobs=8: %q", ci, seq.runErr, parl.runErr)
				}
			}
		})
	}
}

package serve

import (
	"math"
	"time"
)

// This file is the single home of the Retry-After arithmetic. Every
// 429 the service emits — global load shed and per-tenant quota
// rejection alike — derives its hint here, from the state observed at
// the moment the response is built: the shed path passes the queue
// depth it actually saw at rejection plus the EWMA service time read
// at response time (never a snapshot captured earlier in the request),
// and the quota path passes the bucket deficit and refill rate it
// computed under the tenant lock. Both funnel through clampRetrySecs
// so the wire hint is always a whole number of seconds in [1, 60].

// minRetrySecs..maxRetrySecs bound every Retry-After hint: at least
// one second so a client never busy-loops on zero, at most sixty so a
// transient overload never parks clients for minutes.
const (
	minRetrySecs = 1
	maxRetrySecs = 60
)

// clampRetrySecs clamps a computed backoff to the wire range.
func clampRetrySecs(secs int) int {
	if secs < minRetrySecs {
		return minRetrySecs
	}
	if secs > maxRetrySecs {
		return maxRetrySecs
	}
	return secs
}

// queueDrainSecs estimates how long the wait queue observed at
// rejection time takes to drain through the admission slots: queued
// requests, each costing the EWMA service time avg, served slots at a
// time. A zero or unknown EWMA falls back to 100ms — the cold-start
// guess before any request has finished.
func queueDrainSecs(queued int64, avg time.Duration, slots int) int {
	if avg <= 0 {
		avg = 100 * time.Millisecond
	}
	if queued < 1 {
		queued = 1
	}
	if slots < 1 {
		slots = 1
	}
	est := time.Duration(queued) * avg / time.Duration(slots)
	return clampRetrySecs(int((est + time.Second - 1) / time.Second))
}

// deficitSecs estimates how long a token-bucket deficit takes to
// refill at rate per second, plus one second for the bucket to go
// positive. A non-positive rate has no meaningful refill and maps to
// the minimum hint.
func deficitSecs(deficit, rate float64) int {
	if rate <= 0 {
		return minRetrySecs
	}
	if deficit < 0 {
		deficit = 0
	}
	return clampRetrySecs(int(math.Ceil(deficit/rate)) + 1)
}

// retryAfterHint is the load-shed path's hint: the drain estimate for
// the queue depth observed at the moment of rejection, priced at the
// EWMA read now. Recomputed per response — two rejections in the same
// overload window see different hints as the queue and EWMA move.
func (s *Server) retryAfterHint(queuedAtReject int64) int {
	return queueDrainSecs(queuedAtReject, time.Duration(s.avgDurNs.Load()), s.cfg.MaxConcurrent)
}

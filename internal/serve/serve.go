// Package serve runs the Virgil-core pipeline as a long-lived,
// multi-tenant HTTP service — the compiler-daemon shape (gopls-style)
// the ROADMAP's heavy-traffic north star asks for.
//
// The service is built on the cancellation-safe pipeline: every request
// gets a context carrying (1) the client's disconnect, (2) a
// per-request deadline clamped to Config.MaxTimeout, and (3) the
// server's shutdown signal; core.CompileFilesContext and the
// interpreter's step loop observe it at every stage boundary and
// fan-out item claim, so an abandoned request frees its admission slot
// in milliseconds instead of paying for the whole compile.
//
// Admission control is a bounded semaphore (Config.MaxConcurrent
// slots) with a small wait queue (Config.QueueDepth); a request that
// finds the queue full is load-shed immediately with 429 and a
// Retry-After hint, so overload degrades by rejecting work, not by
// growing latency without bound.
//
// Fault containment mirrors the CLI: panics anywhere in a request are
// converted to structured ICE JSON (HTTP 500) by a per-request
// recovery boundary; the process and its shared types.Cache keep
// serving. The fault-injection points of internal/faultinject fire
// inside requests exactly as they do in tests, which is how the fault
// matrix proves those claims.
//
// Feedback-directed tier-up closes the profile loop at the service
// layer: tier-1 runs of a warm, optimizing, bytecode-engine program
// record execution profiles into its cache entry; after
// Config.TierAfter runs the merged profile drives a profile-guided
// recompile (speculative devirtualization, hot inlining, fusion
// selection) stored under the program's tier-2 cache key, and
// subsequent requests serve the tiered artifact. Responses carry the
// tier, /stats counts tier_ups and resident tiered_programs, and
// because every speculative fast path is guarded with fall-through —
// never a deopt trap — a tiered run is observably identical to an
// untiered one.
//
// Self-healing and containment (see DESIGN.md "The containment
// model"): every /run is bounded by a modeled heap budget
// (Config.MaxHeapBytes, the interp.ChargeHeap cost model) in addition
// to steps and wall clock; a bytecode-engine fault (ICE or injected
// translate/engine fault) triggers a transparent re-run on the switch
// interpreter, and programs that keep faulting are quarantined to the
// reference engine. Requests may carry a tenant name, metered against
// per-tenant concurrency, steps/sec, and heap-bytes/sec budgets with
// structured 429s and per-tenant counters in /stats.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/profile"
	"repro/internal/src"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// MaxConcurrent is the number of requests compiled at once
	// (admission slots). Default: GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth is how many admitted-but-waiting requests may queue
	// behind the slots before new arrivals are shed with 429.
	// Default: 2 * MaxConcurrent.
	QueueDepth int
	// DefaultTimeout bounds a request that names no timeout_ms.
	// Default: 10s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts. Default: 60s.
	MaxTimeout time.Duration
	// MaxBodyBytes bounds one request body. Default: 4 MiB.
	MaxBodyBytes int64
	// Jobs is the per-request worker count handed to the pipeline.
	// Default: 1 — requests are the unit of parallelism in a loaded
	// service; raise it only for large single-tenant compiles.
	Jobs int
	// Engine selects the execution engine for /run: "bytecode" (the
	// default) or "switch". The two are observably identical; switch
	// exists as the reference semantics.
	Engine string
	// CacheSize bounds the warm-compilation LRU: repeated requests for
	// the same (config, engine, jobs, sources) reuse the compiled
	// module and its translated bytecode, paying only execution.
	// Default: 64 entries. Negative disables caching.
	CacheSize int
	// MaxHeapBytes bounds the modeled heap (interp.ChargeHeap cost
	// model) of one /run request; a request's max_heap field may lower
	// but not raise it. Default: 64 MiB.
	MaxHeapBytes int64
	// QuarantineAfter is how many bytecode-engine fallbacks a program
	// may accumulate before it is pinned to the switch interpreter.
	// Default: 3. Negative disables quarantine (fallback still runs).
	QuarantineAfter int
	// TierAfter is how many profiled runs a cached program accumulates
	// before the service recompiles it with the recorded profile and
	// serves the tiered artifact (feedback-directed tier-up). Only /run
	// requests on the bytecode engine with the optimizing config are
	// profiled, and tiering rides the warm cache — disabling the cache
	// disables tiering. Default: 8. Negative disables tier-up.
	TierAfter int
	// TenantMaxConcurrent caps one tenant's in-flight requests
	// (0 = no cap). Only requests naming a tenant are metered.
	TenantMaxConcurrent int
	// TenantStepsPerSec is one tenant's sustained execution-step budget
	// (0 = no cap), enforced as a token bucket with one second of burst.
	TenantStepsPerSec int64
	// TenantHeapPerSec is one tenant's sustained modeled-heap budget in
	// bytes per second (0 = no cap), enforced like TenantStepsPerSec.
	TenantHeapPerSec int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.MaxHeapBytes <= 0 {
		c.MaxHeapBytes = 64 << 20
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 3
	}
	if c.TierAfter == 0 {
		c.TierAfter = 8
	}
	return c
}

// Server is the compile service. Create with New, mount via Handler or
// run with Serve + Shutdown.
type Server struct {
	cfg       Config
	mux       *http.ServeMux
	sem       chan struct{}
	baseCtx   context.Context
	cancel    context.CancelFunc
	http      *http.Server
	start     time.Time
	cache     *compCache
	store     *core.Store
	flights   *flightGroup
	fallbacks *fallbackTable
	tenants   *tenantTable

	draining  atomic.Bool
	waiting   atomic.Int64
	inflight  atomic.Int64
	total     atomic.Int64
	succeeded atomic.Int64
	diags     atomic.Int64
	ices      atomic.Int64
	cancelled atomic.Int64
	deadlines atomic.Int64
	shed      atomic.Int64
	cacheHits atomic.Int64
	cacheMiss atomic.Int64

	engineFallbacks atomic.Int64
	quotaRejected   atomic.Int64
	tierUps         atomic.Int64
	coalescedReqs   atomic.Int64
	incrHits        atomic.Int64
	incrFuncsReused atomic.Int64
	incrFallbacks   atomic.Int64
	// avgDurNs is an EWMA of request service time, feeding the
	// Retry-After estimate for load-shed and quota rejections.
	avgDurNs atomic.Int64
}

// New creates a server with cfg (zero fields defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		sem:       make(chan struct{}, cfg.MaxConcurrent),
		baseCtx:   ctx,
		cancel:    cancel,
		start:     time.Now(),
		cache:     newCompCache(cfg.CacheSize),
		store:     newArtifactStore(cfg.CacheSize),
		flights:   newFlightGroup(),
		fallbacks: newFallbackTable(128, cfg.QuarantineAfter),
		tenants:   newTenantTable(cfg),
	}
	s.mux.HandleFunc("/compile", s.guard(s.handleCompile))
	s.mux.HandleFunc("/run", s.guard(s.handleRun))
	s.mux.HandleFunc("/healthz", s.guard(s.handleHealthz))
	s.mux.HandleFunc("/stats", s.guard(s.handleStats))
	return s
}

// Handler returns the service's HTTP handler, for mounting under
// httptest or an external server.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, matching net/http.
func (s *Server) Serve(l net.Listener) error {
	return s.ServeWith(l, s.mux)
}

// ServeWith is Serve with a wrapping handler (the cluster tier wraps
// this server's mux with peer routing): Shutdown still drains the
// listener and in-flight requests exactly as for Serve.
func (s *Server) ServeWith(l net.Listener, h http.Handler) error {
	s.http = &http.Server{Handler: h}
	return s.http.Serve(l)
}

// Shutdown drains the service: new work is rejected with 503 and
// /healthz flips unhealthy, in-flight requests run to completion (or
// their own deadlines) until ctx expires, and any stragglers are then
// cancelled through the server's base context — the step every handler
// observes. Safe to call without Serve (in-process handlers).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.http != nil {
		err = s.http.Shutdown(ctx)
		if err != nil {
			// Drain deadline hit: cancel the stragglers and close.
			s.cancel()
			closeErr := s.http.Close()
			if closeErr != nil && err == nil {
				err = closeErr
			}
		}
	} else {
		// In-process mode: wait for in-flight work up to ctx.
		for s.inflight.Load() > 0 {
			select {
			case <-ctx.Done():
				err = ctx.Err()
			case <-time.After(time.Millisecond):
				continue
			}
			break
		}
	}
	// Always release the base context so nothing can outlive Shutdown.
	s.cancel()
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	UptimeMs     int64 `json:"uptime_ms"`
	InFlight     int64 `json:"in_flight"`
	Waiting      int64 `json:"waiting"`
	Total        int64 `json:"total"`
	Succeeded    int64 `json:"succeeded"`
	Diagnostics  int64 `json:"diagnostics"`
	ICEs         int64 `json:"ices"`
	Cancelled    int64 `json:"cancelled"`
	Deadlines    int64 `json:"deadlines"`
	Shed         int64 `json:"shed"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`
	// EngineFallbacks counts /run requests re-executed on the switch
	// interpreter after a bytecode-engine fault; FallbackHashes lists
	// the most recent offending program hashes, newest first.
	EngineFallbacks     int64    `json:"engine_fallbacks"`
	QuarantinedPrograms int      `json:"quarantined_programs"`
	FallbackHashes      []string `json:"fallback_hashes,omitempty"`
	// QuotaRejected counts requests shed by per-tenant quotas; Tenants
	// holds the per-tenant counters.
	QuotaRejected int64                 `json:"quota_rejected"`
	Tenants       map[string]TenantStat `json:"tenants,omitempty"`
	// TierUps counts profile-guided recompiles performed by the tier-up
	// path; TieredPrograms is how many tier-2 artifacts are resident in
	// the warm cache right now.
	TierUps        int64 `json:"tier_ups"`
	TieredPrograms int   `json:"tiered_programs"`
	// Coalesced counts requests that shared another request's in-flight
	// compile instead of compiling themselves (single-flight warm-miss
	// coalescing).
	Coalesced int64 `json:"coalesced"`
	// IncrementalHits counts compiles served wholly or partly from the
	// artifact store (whole-module hits plus function-granular
	// incremental compiles); IncrementalFuncsReused totals the compiled
	// function bodies those compiles did not have to rebuild;
	// IncrementalFallbacks counts compiles that found a base but had to
	// rebuild from scratch (type-level edit, layout change).
	IncrementalHits        int64 `json:"incremental_hits"`
	IncrementalFuncsReused int64 `json:"incremental_funcs_reused"`
	IncrementalFallbacks   int64 `json:"incremental_fallbacks"`
	Engine         string `json:"engine"`
	MaxConcurrent  int    `json:"max_concurrent"`
	QueueDepth     int    `json:"queue_depth"`
	FaultsArmed    bool   `json:"faults_armed"`
	Draining       bool   `json:"draining"`
}

// Snapshot returns the current counters.
func (s *Server) Snapshot() Stats {
	st := Stats{
		UptimeMs:        time.Since(s.start).Milliseconds(),
		InFlight:        s.inflight.Load(),
		Waiting:         s.waiting.Load(),
		Total:           s.total.Load(),
		Succeeded:       s.succeeded.Load(),
		Diagnostics:     s.diags.Load(),
		ICEs:            s.ices.Load(),
		Cancelled:       s.cancelled.Load(),
		Deadlines:       s.deadlines.Load(),
		Shed:            s.shed.Load(),
		CacheHits:       s.cacheHits.Load(),
		CacheMisses:     s.cacheMiss.Load(),
		CacheEntries:    s.cache.len(),
		EngineFallbacks: s.engineFallbacks.Load(),
		QuotaRejected:   s.quotaRejected.Load(),
		TierUps:         s.tierUps.Load(),
		Coalesced:       s.coalescedReqs.Load(),

		IncrementalHits:        s.incrHits.Load(),
		IncrementalFuncsReused: s.incrFuncsReused.Load(),
		IncrementalFallbacks:   s.incrFallbacks.Load(),
		TieredPrograms:  s.cache.tiered(),
		Tenants:         s.tenants.snapshot(),
		Engine:          core.Config{Engine: s.cfg.Engine}.EngineKind(),
		MaxConcurrent:   s.cfg.MaxConcurrent,
		QueueDepth:      s.cfg.QueueDepth,
		FaultsArmed:     faultinject.Enabled(),
		Draining:        s.draining.Load(),
	}
	st.QuarantinedPrograms, st.FallbackHashes = s.fallbacks.snapshot()
	return st
}

// ---- wire types ----

// FileJSON is one named source file in a request.
type FileJSON struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// Request is the body of /compile and /run.
type Request struct {
	Files []FileJSON `json:"files"`
	// Config selects the pipeline: ref, mono, norm, opt, or full
	// (default).
	Config string `json:"config,omitempty"`
	// MaxErrors caps reported diagnostics (0 = server default).
	MaxErrors int `json:"max_errors,omitempty"`
	// TimeoutMs bounds the whole request; clamped to the server's
	// MaxTimeout (0 = server default).
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// MaxSteps bounds interpreter steps on /run (0 = default budget).
	MaxSteps int64 `json:"max_steps,omitempty"`
	// Engine overrides the server's execution engine for this request:
	// bytecode or switch ("" = server default).
	Engine string `json:"engine,omitempty"`
	// MaxHeap lowers the server's modeled heap budget for this /run
	// (0 = server default; values above the server cap are clamped).
	MaxHeap int64 `json:"max_heap,omitempty"`
	// Tenant attributes the request to a tenant for quota metering.
	// Empty is exempt (single-tenant usage).
	Tenant string `json:"tenant,omitempty"`
}

// ErrorInfo is the structured, stack-free form of a request failure.
type ErrorInfo struct {
	// Kind is one of: ice, cancelled, deadline, resource, quota, error.
	Kind  string `json:"kind"`
	Stage string `json:"stage,omitempty"`
	Msg   string `json:"msg"`
	// Quota names the per-tenant budget that rejected the request
	// (concurrency, steps, or heap); set only when Kind is "quota".
	Quota string `json:"quota,omitempty"`
}

// Diagnostic is one user-program error.
type Diagnostic struct {
	Pos string `json:"pos,omitempty"`
	Msg string `json:"msg"`
}

// TrapInfo is a Virgil-level runtime exception from /run.
type TrapInfo struct {
	Name  string   `json:"name"`
	Msg   string   `json:"msg,omitempty"`
	Trace []string `json:"trace,omitempty"`
}

// Response is the body of /compile and /run replies.
type Response struct {
	OK          bool         `json:"ok"`
	Config      string       `json:"config,omitempty"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
	Error       *ErrorInfo   `json:"error,omitempty"`
	// Compile facts (set when the pipeline completed).
	Funcs   int     `json:"funcs,omitempty"`
	Instrs  int     `json:"instrs,omitempty"`
	TotalMs float64 `json:"total_ms,omitempty"`
	// Analysis facts (set when the config ran the analysis layer; the
	// facts live on the cached Compilation, so warm hits report them
	// without re-analyzing).
	StackPromoted int `json:"stack_promoted,omitempty"`
	PureFuncs     int `json:"pure_funcs,omitempty"`
	// Execution facts (/run only).
	Output string    `json:"output,omitempty"`
	Trap   *TrapInfo `json:"trap,omitempty"`
	Steps  int64     `json:"steps,omitempty"`
	// Cached reports that the compilation was served from the warm
	// cache (execution still ran fresh). Coalesced reports that this
	// request shared another request's in-flight compile of the same
	// key (single-flight) rather than compiling itself.
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Engine is the engine that produced the execution result; Fallback
	// reports that the bytecode engine faulted and the result came from
	// a switch-interpreter re-run; Quarantined reports that the program
	// was already pinned to the switch interpreter.
	Engine      string `json:"engine,omitempty"`
	Fallback    bool   `json:"fallback,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
	// Tier is the execution tier that served this /run: 1 for the plain
	// compilation (profiling toward tier-up), 2 for the profile-guided
	// recompile. Omitted when the request is not tierable (compile-only,
	// switch engine, non-optimizing config, tiering disabled).
	Tier int `json:"tier,omitempty"`
	// Cluster-routing facts, set by the internal/cluster tier (never by
	// a lone instance): Routed is the instance that executed the
	// request; ForwardedFrom is the instance that forwarded it to its
	// consistent-hash owner; Degraded reports that forwarding to the
	// owner failed (network fault, 5xx, open breaker, exhausted budget)
	// and the result came from a local fallback execution; Hedged
	// reports that a tail-latency hedge launched against the local
	// instance finished before the forwarded request did.
	Routed        string `json:"routed,omitempty"`
	ForwardedFrom string `json:"forwarded_from,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	Hedged        bool   `json:"hedged,omitempty"`
}

// ---- handlers ----

// guard is the per-request panic boundary: anything escaping a handler
// becomes structured ICE JSON, never a Go stack trace in the body, and
// never a dead process.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.ices.Add(1)
				writeJSON(w, http.StatusInternalServerError, Response{
					Error: &ErrorInfo{Kind: "ice", Msg: fmt.Sprintf("internal error: %v", rec)},
				})
			}
		}()
		h(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ok": false, "draining": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.handleWork(w, r, false)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.handleWork(w, r, true)
}

// handleWork is the shared request path: decode, admit, derive the
// request context, compile (and run), classify the outcome.
func (s *Server) handleWork(w http.ResponseWriter, r *http.Request, execute bool) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, Response{Error: &ErrorInfo{Kind: "error", Msg: "POST required"}})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, Response{Error: &ErrorInfo{Kind: "error", Msg: "server is shutting down"}})
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	// Unknown fields are rejected outright: a misspelled knob silently
	// ignored is a debugging trap, and a misbehaving peer or client
	// padding requests with junk should fail fast, not balloon memory.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, Response{Error: &ErrorInfo{
				Kind: "error",
				Msg:  fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			}})
			return
		}
		writeJSON(w, http.StatusBadRequest, Response{Error: &ErrorInfo{Kind: "error", Msg: "bad request body: " + err.Error()}})
		return
	}
	if len(req.Files) == 0 {
		writeJSON(w, http.StatusBadRequest, Response{Error: &ErrorInfo{Kind: "error", Msg: "no input files"}})
		return
	}
	cfg, err := configByName(req.Config)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: &ErrorInfo{Kind: "error", Msg: err.Error()}})
		return
	}
	if req.MaxErrors < 0 || req.MaxSteps < 0 || req.TimeoutMs < 0 || req.MaxHeap < 0 {
		writeJSON(w, http.StatusBadRequest, Response{Error: &ErrorInfo{Kind: "error", Msg: "max_errors, max_steps, max_heap, and timeout_ms must be >= 0"}})
		return
	}
	cfg.Jobs = s.cfg.Jobs
	cfg.MaxErrors = req.MaxErrors
	// MaxSteps stays out of the Config so the compilation is cacheable;
	// it is applied per request at RunToContext below.
	cfg.Engine = s.cfg.Engine
	if req.Engine != "" {
		cfg.Engine = req.Engine
	}
	if err := cfg.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: &ErrorInfo{Kind: "error", Msg: err.Error()}})
		return
	}

	s.total.Add(1)

	// Per-tenant quotas come before global admission so one over-quota
	// tenant is shed without consuming a queue slot others could use.
	if req.Tenant != "" {
		releaseTenant, retryAfter, quota, ok := s.tenants.admit(req.Tenant)
		if !ok {
			s.quotaRejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			writeJSON(w, http.StatusTooManyRequests, Response{Error: &ErrorInfo{
				Kind:  "quota",
				Quota: quota,
				Msg:   fmt.Sprintf("tenant %q over %s quota; retry later", req.Tenant, quota),
			}})
			return
		}
		defer releaseTenant()
	}

	// Admission: take a slot, or wait in the bounded queue, or shed.
	release, queued, admitted := s.admit(r.Context())
	if !admitted {
		if r.Context().Err() != nil {
			// The client gave up while queued — that's a cancellation,
			// not an overload signal.
			s.cancelled.Add(1)
			writeJSON(w, http.StatusGatewayTimeout, Response{Error: &ErrorInfo{Kind: "cancelled", Msg: "request cancelled while queued"}})
			return
		}
		s.shed.Add(1)
		// The hint is derived from the queue depth this rejection saw and
		// the EWMA read now — per response, never a stale snapshot.
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterHint(queued)))
		writeJSON(w, http.StatusTooManyRequests, Response{Error: &ErrorInfo{Kind: "error", Msg: "server at capacity; retry later"}})
		return
	}
	defer release()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	served := time.Now()
	defer func() { s.observeDuration(time.Since(served)) }()

	// Request context: client disconnect + per-request deadline +
	// server shutdown, all observed by the pipeline's stage boundaries.
	ctx, cancelReq := context.WithCancel(r.Context())
	defer cancelReq()
	stop := context.AfterFunc(s.baseCtx, cancelReq)
	defer stop()
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = min(time.Duration(req.TimeoutMs)*time.Millisecond, s.cfg.MaxTimeout)
	}
	ctx, cancelDeadline := context.WithTimeout(ctx, timeout)
	defer cancelDeadline()

	var files []core.File
	for _, f := range req.Files {
		files = append(files, core.File{Name: f.Name, Source: f.Source})
	}

	resp := Response{Config: cfg.Name()}

	// Engine and quarantine are resolved before the cache lookup
	// because the lookup itself is tiered: a /run that is eligible for
	// feedback-directed execution checks the tier-2 key first, so a
	// program that already earned a profile-guided recompile serves
	// from that artifact.
	progHash := ProgramHash(req.Files)
	engineKind := cfg.EngineKind()
	if execute && engineKind == core.EngineBytecode && s.fallbacks.quarantined(progHash) {
		// The watchdog has seen this program fault the bytecode engine
		// too often; pin it to the reference interpreter.
		engineKind = core.EngineSwitch
		resp.Quarantined = true
	}
	tierable := execute && s.cfg.TierAfter > 0 && cfg.Optimize && engineKind == core.EngineBytecode

	var (
		comp  *core.Compilation
		entry *cacheEntry
	)
	if tierable {
		if e, ok := s.cache.get(cacheKey(cfg, req.Files, 2)); ok {
			entry, comp = e, e.comp
			s.cacheHits.Add(1)
			resp.Cached = true
			resp.Tier = 2
		}
	}
	if comp == nil {
		key := cacheKey(cfg, req.Files, 1)
		if e, ok := s.cache.get(key); ok {
			entry, comp = e, e.comp
			s.cacheHits.Add(1)
			resp.Cached = true
		} else {
			s.cacheMiss.Add(1)
			// Warm-miss stampedes coalesce: one leader compiles (through
			// the artifact store, so an edit recompiles only its dirty
			// functions), followers share its result.
			c, coalesced, err := s.flights.do(ctx, key, func() (*core.Compilation, error) {
				comp, ist, cerr := core.CompileFilesIncremental(ctx, files, cfg, s.store)
				if ist != nil {
					switch ist.Mode {
					case core.ModeModuleHit, core.ModeIncremental:
						s.incrHits.Add(1)
						s.incrFuncsReused.Add(int64(ist.FuncsReused))
					case core.ModeFallback:
						s.incrFallbacks.Add(1)
					}
				}
				return comp, cerr
			})
			if err != nil {
				status := s.classify(r, ctx, err, &resp)
				writeJSON(w, status, resp)
				return
			}
			comp = c
			if coalesced {
				s.coalescedReqs.Add(1)
				resp.Coalesced = true
				// The leader already installed the entry; pick it up for
				// tier accounting.
				if e, ok := s.cache.get(key); ok {
					entry = e
				}
			} else {
				entry = s.cache.put(key, comp, 1)
			}
		}
		if tierable {
			resp.Tier = 1
		}
	}
	resp.Funcs = len(comp.Module.Funcs)
	resp.Instrs = comp.Module.NumInstrs()
	resp.TotalMs = float64(comp.Timings.Total.Microseconds()) / 1000
	if comp.Analysis != nil {
		for _, facts := range comp.Analysis.Funcs {
			if facts.Effects.Pure() {
				resp.PureFuncs++
			}
			for _, site := range facts.AllocSites {
				if site.Instr.StackAlloc {
					resp.StackPromoted++
				}
			}
		}
	}

	if !execute {
		resp.OK = true
		s.succeeded.Add(1)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	if comp.Module.Main == nil {
		resp.Error = &ErrorInfo{Kind: "error", Msg: "program has no main function"}
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	// The modeled heap budget applies to every /run; a request may
	// tighten it but not exceed the server cap.
	maxHeap := s.cfg.MaxHeapBytes
	if req.MaxHeap > 0 && req.MaxHeap < maxHeap {
		maxHeap = req.MaxHeap
	}
	var out strings.Builder
	runOpts := core.RunOpts{MaxSteps: req.MaxSteps, MaxHeap: maxHeap, Engine: engineKind}
	var (
		stats  interp.Stats
		prof   *profile.Profile
		runErr error
	)
	// Tier-1 runs of a cache-resident tierable program record profiles;
	// everything else runs plain (zero profiling overhead).
	if tierable && entry != nil && resp.Tier == 1 {
		stats, prof, runErr = comp.RunProfiled(ctx, &out, runOpts)
	} else {
		stats, runErr = comp.RunWith(ctx, &out, runOpts)
	}
	if runErr != nil && engineKind == core.EngineBytecode && isEngineFault(runErr) && ctx.Err() == nil {
		// Self-healing: the pipeline compiled this program cleanly, so
		// an ICE or injected fault here is an engine-execution fault —
		// re-run on the proven-equivalent switch interpreter and record
		// the offender for quarantine. A tiered compilation re-runs as
		// is: the profile-guided module is semantically identical, so
		// the reference interpreter gives the same answer on it. A
		// profile from a faulted run is discarded.
		s.engineFallbacks.Add(1)
		s.fallbacks.record(progHash)
		resp.Fallback = true
		engineKind = core.EngineSwitch
		prof = nil
		out.Reset()
		stats, runErr = comp.RunWith(ctx, &out, core.RunOpts{MaxSteps: req.MaxSteps, MaxHeap: maxHeap, Engine: core.EngineSwitch})
	}
	if prof != nil && entry != nil {
		// The run completed on the bytecode engine (traps and resource
		// stops included — the profile of a partial run is still true).
		// Fold it into the entry; crossing the threshold yields the
		// merged profile and triggers the recompile.
		if tierProf := entry.recordRun(prof, s.cfg.TierAfter); tierProf != nil {
			s.tierUp(cfg, files, req.Files, entry, tierProf)
		}
	}
	resp.Engine = engineKind
	if req.Tenant != "" {
		s.tenants.charge(req.Tenant, stats.Steps, stats.HeapBytes)
	}
	res := core.RunResult{Output: out.String(), Stats: stats, Err: runErr}
	resp.Output = res.Output
	resp.Steps = res.Stats.Steps
	if res.Err != nil {
		var ve *interp.VirgilError
		if errors.As(res.Err, &ve) {
			// A trap is a successful execution of a misbehaving program:
			// the service did its job, the program threw.
			resp.Trap = &TrapInfo{Name: ve.Name, Msg: ve.Msg, Trace: traceLines(ve)}
			s.succeeded.Add(1)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		status := s.classify(r, ctx, res.Err, &resp)
		writeJSON(w, status, resp)
		return
	}
	resp.OK = true
	s.succeeded.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// tierUp recompiles a hot program with its accumulated runtime profile
// and installs the result under the program's tier-2 cache key. It
// runs synchronously on the request that crossed the threshold — a
// recompile is milliseconds, and the inline lifecycle is deterministic
// for tests — but on the server's base context, so a client that
// disconnects mid-tier-up does not waste the profile everyone paid to
// collect. The triggering response still reports tier 1; the next
// request for the program hits the tier-2 artifact.
func (s *Server) tierUp(cfg core.Config, files []core.File, reqFiles []FileJSON, entry *cacheEntry, prof *profile.Profile) {
	cfg.PGO = prof
	comp, err := core.CompileFilesContext(s.baseCtx, files, cfg)
	if err != nil {
		// The program compiled cleanly at tier 1, so this is a server
		// condition (shutdown mid-compile, injected fault). Tier-up is
		// an optimization: drop the attempt and re-arm the entry so the
		// program can earn another one.
		entry.tierDone()
		return
	}
	s.cache.put(cacheKey(cfg, reqFiles, 2), comp, 2)
	s.tierUps.Add(1)
	entry.tierDone()
}

// admit takes an admission slot, waiting in the bounded queue if the
// slots are busy. It reports false — load shed — when the queue is
// full or the client gives up while waiting; queued is the wait-queue
// depth observed at the moment of rejection, which the shed path
// prices into its Retry-After hint.
func (s *Server) admit(ctx context.Context) (release func(), queued int64, admitted bool) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, true
	default:
	}
	if depth := s.waiting.Add(1); depth > int64(s.cfg.QueueDepth) {
		s.waiting.Add(-1)
		return nil, depth, false
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, true
	case <-ctx.Done():
		return nil, s.waiting.Load(), false
	case <-s.baseCtx.Done():
		return nil, s.waiting.Load(), false
	}
}

// isEngineFault reports whether a /run error is a fault of the
// bytecode engine itself rather than of the user's program: an ICE
// (translation or execution panic, internal inconsistency) or an
// injected fault at the translate/engine/interp points. Virgil traps
// and resource-guard stops are the program's own behavior and never
// trigger fallback.
func isEngineFault(err error) bool {
	var ice *src.ICE
	return errors.As(err, &ice) || errors.Is(err, faultinject.ErrInjected)
}

// observeDuration folds one request's service time into the EWMA that
// feeds Retry-After estimates (alpha = 1/8).
func (s *Server) observeDuration(d time.Duration) {
	for {
		old := s.avgDurNs.Load()
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)/8
		}
		if s.avgDurNs.CompareAndSwap(old, nw) {
			return
		}
	}
}

// classify maps a pipeline or interpreter error to its structured wire
// form and HTTP status, bumping the matching counter. It never exposes
// a Go stack trace.
func (s *Server) classify(r *http.Request, ctx context.Context, err error, resp *Response) int {
	var list *src.ErrorList
	if errors.As(err, &list) {
		s.diags.Add(1)
		for _, e := range list.Errors {
			d := Diagnostic{Msg: e.Msg}
			if e.Pos.IsValid() {
				d.Pos = e.Pos.String()
			}
			resp.Diagnostics = append(resp.Diagnostics, d)
		}
		return http.StatusOK
	}
	var ice *src.ICE
	if errors.As(err, &ice) {
		s.ices.Add(1)
		resp.Error = &ErrorInfo{Kind: "ice", Stage: ice.Stage, Msg: ice.Error()}
		return http.StatusInternalServerError
	}
	var re *interp.ResourceError
	isCancel := errors.Is(err, context.Canceled)
	isDeadline := errors.Is(err, context.DeadlineExceeded)
	if errors.As(err, &re) && re.Kind == "cancelled" {
		// The step loop saw the ctx end; attribute it like a ctx error.
		if r.Context().Err() != nil || ctx.Err() == context.Canceled {
			isCancel = true
		} else {
			isDeadline = true
		}
	}
	switch {
	case isCancel:
		s.cancelled.Add(1)
		resp.Error = &ErrorInfo{Kind: "cancelled", Msg: "request cancelled"}
		// The client is usually gone; the status is for logs and tests.
		return http.StatusGatewayTimeout
	case isDeadline:
		s.deadlines.Add(1)
		resp.Error = &ErrorInfo{Kind: "deadline", Msg: "request deadline exceeded"}
		return http.StatusGatewayTimeout
	}
	if errors.As(err, &re) {
		// Step budget / interpreter deadline: the program was bounded.
		s.diags.Add(1)
		resp.Error = &ErrorInfo{Kind: "resource", Msg: re.Error()}
		return http.StatusOK
	}
	s.diags.Add(1)
	resp.Error = &ErrorInfo{Kind: "error", Msg: err.Error()}
	return http.StatusUnprocessableEntity
}

func traceLines(ve *interp.VirgilError) []string {
	var out []string
	for _, f := range ve.Trace {
		out = append(out, f.String())
	}
	if ve.Elided > 0 {
		out = append(out, fmt.Sprintf("... %d more frames elided ...", ve.Elided))
	}
	return out
}

func configByName(name string) (core.Config, error) {
	switch name {
	case "", "full":
		return core.Compiled(), nil
	case "ref", "reference":
		return core.Reference(), nil
	case "mono":
		return core.Config{Monomorphize: true}, nil
	case "norm":
		return core.Config{Monomorphize: true, Normalize: true}, nil
	case "opt":
		// The full pipeline without the analysis layer: the config the
		// artifact store serves at function granularity (analysis-driven
		// passes read whole-program state and only get module-level hits).
		return core.Config{Monomorphize: true, Normalize: true, Optimize: true}, nil
	}
	return core.Config{}, fmt.Errorf("unknown config %q (want ref, mono, norm, opt, or full)", name)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The connection is gone; nothing useful to do.
		_ = err
	}
}

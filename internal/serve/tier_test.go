package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
)

// tierProg has a virtual call site RTA cannot devirtualize (both A and
// B are instantiated, both override m) but whose runtime receivers are
// overwhelmingly the leaf class B — exactly the shape the profile-
// guided recompile speculates on. Output: "201".
const tierProg = `
class A { def m() -> int { return 1; } }
class B extends A { def m() -> int { return 2; } }
def poll(x: A) -> int { return x.m(); }
def main() {
	var i = 0;
	var s = 0;
	var a = A.new();
	var b: A = B.new();
	s = s + poll(a);
	while (i < 100) { s = s + poll(b); i = i + 1; }
	System.puti(s);
}
`

// TestTierUpLifecycle walks one program through the whole tier-up arc:
// cold tier-1 compile, profiled warm runs, threshold crossing, and the
// tier-2 artifact serving subsequent requests — with byte-identical
// output at every step, because speculation is guarded fall-through,
// never a behavior change.
func TestTierUpLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{TierAfter: 3})
	req := Request{Files: files("tier.v", tierProg)}

	for i := 1; i <= 3; i++ {
		status, resp := post(t, ts.URL+"/run", req)
		if status != http.StatusOK || !resp.OK {
			t.Fatalf("run %d: status=%d resp=%+v", i, status, resp)
		}
		if resp.Tier != 1 {
			t.Fatalf("run %d: tier = %d, want 1", i, resp.Tier)
		}
		if resp.Output != "201" {
			t.Fatalf("run %d: output %q, want 201", i, resp.Output)
		}
		if wantCached := i > 1; resp.Cached != wantCached {
			t.Fatalf("run %d: cached = %v, want %v", i, resp.Cached, wantCached)
		}
	}

	// Run 3 crossed the threshold: the recompile happened synchronously
	// on that request, so the stats are already visible.
	st := s.Snapshot()
	if st.TierUps != 1 {
		t.Fatalf("tier_ups = %d after threshold, want 1", st.TierUps)
	}
	if st.TieredPrograms != 1 {
		t.Fatalf("tiered_programs = %d, want 1", st.TieredPrograms)
	}

	// From here on the program serves from the tier-2 artifact.
	for i := 4; i <= 6; i++ {
		status, resp := post(t, ts.URL+"/run", req)
		if status != http.StatusOK || !resp.OK || resp.Tier != 2 || !resp.Cached {
			t.Fatalf("run %d: status=%d resp=%+v, want tier 2 cached hit", i, status, resp)
		}
		if resp.Output != "201" {
			t.Fatalf("tiered run %d: output %q, want 201", i, resp.Output)
		}
	}
	// Tier-2 runs are not re-profiled; the counter must not move.
	if st := s.Snapshot(); st.TierUps != 1 {
		t.Fatalf("tier_ups = %d after tiered runs, want still 1", st.TierUps)
	}
}

// TestTierUpExemptions pins who does NOT tier: disabled servers, the
// switch engine, and non-optimizing configs. None of their responses
// carry a tier and none of their runs feed the counters.
func TestTierUpExemptions(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		s, ts := newTestServer(t, Config{TierAfter: -1})
		req := Request{Files: files("tier.v", tierProg)}
		for i := 0; i < 4; i++ {
			status, resp := post(t, ts.URL+"/run", req)
			if status != http.StatusOK || !resp.OK || resp.Tier != 0 {
				t.Fatalf("run %d: status=%d resp=%+v, want no tier", i, status, resp)
			}
		}
		if st := s.Snapshot(); st.TierUps != 0 || st.TieredPrograms != 0 {
			t.Fatalf("disabled server tiered: %+v", st)
		}
	})
	t.Run("switch-engine", func(t *testing.T) {
		s, ts := newTestServer(t, Config{TierAfter: 1})
		req := Request{Files: files("tier.v", tierProg), Engine: "switch"}
		for i := 0; i < 3; i++ {
			status, resp := post(t, ts.URL+"/run", req)
			if status != http.StatusOK || !resp.OK || resp.Tier != 0 {
				t.Fatalf("run %d: status=%d resp=%+v, want no tier", i, status, resp)
			}
		}
		if st := s.Snapshot(); st.TierUps != 0 {
			t.Fatalf("switch engine tiered: tier_ups = %d", st.TierUps)
		}
	})
	t.Run("non-optimizing-config", func(t *testing.T) {
		s, ts := newTestServer(t, Config{TierAfter: 1})
		req := Request{Files: files("tier.v", tierProg), Config: "norm"}
		for i := 0; i < 3; i++ {
			status, resp := post(t, ts.URL+"/run", req)
			if status != http.StatusOK || !resp.OK || resp.Tier != 0 {
				t.Fatalf("run %d: status=%d resp=%+v, want no tier", i, status, resp)
			}
		}
		if st := s.Snapshot(); st.TierUps != 0 {
			t.Fatalf("norm config tiered: tier_ups = %d", st.TierUps)
		}
	})
}

// TestTierUpConcurrentLoad is the -race chaos soak for the tier-up
// path and the /stats scrape audit in one: many clients hammer the
// same program across its tier-up transition while other goroutines
// continuously snapshot /stats, so the profile merges, the threshold
// latch, the tier-2 cache insert, and every stats counter race with
// live traffic. Functionally it asserts the one thing tiering
// promises: every response, whatever its tier, has identical output.
func TestTierUpConcurrentLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{TierAfter: 2, MaxConcurrent: 4, QueueDepth: 64})
	req := Request{Files: files("tier.v", tierProg)}

	const clients, runsEach = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, clients*runsEach)
	sawTier2 := make(chan struct{}, clients*runsEach)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runsEach; i++ {
				status, resp, err := postCtx(t.Context(), ts.URL+"/run", req)
				if err != nil {
					errs <- err
					return
				}
				if status != http.StatusOK || !resp.OK || resp.Output != "201" {
					errs <- fmt.Errorf("status=%d resp=%+v, want OK output 201", status, resp)
					return
				}
				if resp.Tier != 1 && resp.Tier != 2 {
					errs <- fmt.Errorf("tier = %d, want 1 or 2", resp.Tier)
					return
				}
				if resp.Tier == 2 {
					select {
					case sawTier2 <- struct{}{}:
					default:
					}
				}
			}
		}()
	}
	// Scrape /stats concurrently with the tiering traffic — the torn-
	// read audit for the tier counters under -race.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.Snapshot()
				if st.TierUps < 0 || st.TieredPrograms < 0 {
					errs <- fmt.Errorf("nonsense stats snapshot: %+v", st)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	st := s.Snapshot()
	if st.TierUps < 1 {
		t.Fatalf("tier_ups = %d after %d runs with tier-after=2, want >= 1", st.TierUps, clients*runsEach)
	}
	if len(sawTier2) == 0 {
		t.Fatal("no response ever reported tier 2")
	}
	if st.TieredPrograms != 1 {
		t.Fatalf("tiered_programs = %d, want 1", st.TieredPrograms)
	}
}

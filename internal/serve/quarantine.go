package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// ProgramHash identifies a program by its source files alone (name +
// content), independent of config or engine: the quarantine decision
// is about the program, not about one configuration of it, and the
// cluster tier routes a program to its consistent-hash owner by the
// same identity. The short hex form is what /stats exposes.
func ProgramHash(files []FileJSON) string {
	h := sha256.New()
	for _, f := range files {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(f.Name)))
		h.Write(n[:])
		h.Write([]byte(f.Name))
		binary.LittleEndian.PutUint64(n[:], uint64(len(f.Source)))
		h.Write(n[:])
		h.Write([]byte(f.Source))
	}
	return fmt.Sprintf("%.8x", h.Sum(nil))
}

// maxRecentFallbacks bounds the fallback_hashes list in /stats.
const maxRecentFallbacks = 8

// fallbackTable is the engine-fallback watchdog's memory: an LRU of
// per-program fallback counts. A program whose bytecode execution has
// faulted (ICE or injected engine fault) `after` times is quarantined
// — pinned to the reference switch interpreter — until its entry ages
// out of the LRU. The table is per-daemon state, deliberately not
// persisted: a restart gives every program a fresh chance on the fast
// engine.
type fallbackTable struct {
	mu     sync.Mutex
	cap    int
	after  int        // fallbacks before quarantine; <0 disables quarantine
	ll     *list.List // front = most recently faulted
	m      map[string]*list.Element
	recent []string // most recent offender hashes, newest first
}

type fallbackEntry struct {
	hash  string
	count int
}

func newFallbackTable(capacity, after int) *fallbackTable {
	return &fallbackTable{cap: capacity, after: after, ll: list.New(), m: map[string]*list.Element{}}
}

// record notes one bytecode-engine fallback for hash and returns the
// program's updated fallback count.
func (t *fallbackTable) record(hash string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.m[hash]
	if !ok {
		el = t.ll.PushFront(&fallbackEntry{hash: hash})
		t.m[hash] = el
		for t.ll.Len() > t.cap {
			back := t.ll.Back()
			t.ll.Remove(back)
			delete(t.m, back.Value.(*fallbackEntry).hash)
		}
	} else {
		t.ll.MoveToFront(el)
	}
	e := el.Value.(*fallbackEntry)
	e.count++

	t.recent = append([]string{hash}, deleteStr(t.recent, hash)...)
	if len(t.recent) > maxRecentFallbacks {
		t.recent = t.recent[:maxRecentFallbacks]
	}
	return e.count
}

// quarantined reports whether hash has accumulated enough fallbacks to
// be pinned to the switch interpreter.
func (t *fallbackTable) quarantined(hash string) bool {
	if t.after < 0 {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.m[hash]
	return ok && el.Value.(*fallbackEntry).count >= t.after
}

// snapshot returns the number of quarantined programs and the recent
// offender hashes for /stats.
func (t *fallbackTable) snapshot() (quarantined int, recent []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.after >= 0 {
		for el := t.ll.Front(); el != nil; el = el.Next() {
			if el.Value.(*fallbackEntry).count >= t.after {
				quarantined++
			}
		}
	}
	return quarantined, append([]string(nil), t.recent...)
}

func deleteStr(ss []string, s string) []string {
	out := ss[:0]
	for _, v := range ss {
		if v != s {
			out = append(out, v)
		}
	}
	return out
}

package serve

import (
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// TestSingleFlightCoalescing races N goroutines at the same cold cache
// key. Exactly one request (the leader) may compile; everyone else
// must either coalesce onto the leader's in-flight compile or, if it
// arrived after the leader finished, hit the warm cache. A faultinject
// delay at the check stage holds the leader's compile open long enough
// that the race is real, not scheduling luck. Run with -race: the
// shared *core.Compilation must be safe to serve concurrently.
func TestSingleFlightCoalescing(t *testing.T) {
	reg, err := faultinject.Parse("check:delay:0+:200")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Set(reg)
	defer restore()

	const n = 8
	// Admit all N at once: the point is to race the compile pipeline,
	// not the admission queue.
	_, ts := newTestServer(t, Config{MaxConcurrent: n})
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		resps [n]Response
		stats [n]int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			status, resp, err := postCtx(t.Context(), ts.URL+"/compile", Request{Files: files("ok.v", okProg)})
			if err != nil {
				t.Error(err)
				return
			}
			stats[i], resps[i] = status, resp
		}(i)
	}
	close(start)
	wg.Wait()

	leaders, coalesced, cached := 0, 0, 0
	for i, resp := range resps {
		if stats[i] != http.StatusOK || !resp.OK {
			t.Fatalf("request %d: status=%d resp=%+v", i, stats[i], resp)
		}
		switch {
		case resp.Coalesced:
			coalesced++
		case resp.Cached:
			cached++
		default:
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d requests compiled (leaders), want exactly 1 (coalesced=%d cached=%d)", leaders, coalesced, cached)
	}
	if coalesced == 0 {
		t.Fatalf("no request coalesced: the race window never opened (cached=%d)", cached)
	}
	if coalesced+cached != n-1 {
		t.Fatalf("coalesced=%d cached=%d, want them to cover the %d followers", coalesced, cached, n-1)
	}
}

// TestCacheKeyCoversConfig enumerates every core.Config field by
// reflection: mutating a field must either move the warm-cache key or
// the field must be on the explicit allowlist of knobs proven not to
// change what a cached Compilation serves. A new Config field fails
// here until someone decides which side it belongs on.
func TestCacheKeyCoversConfig(t *testing.T) {
	// Why each allowlisted field cannot change a cached artifact's
	// observable behavior:
	irrelevant := map[string]string{
		"VerifyIR": "debug-only IR audit between stages; on success the module is identical",
		"Profile":  "attaches a per-run profiler; compiled code is unchanged",
		"PGO":      "tiered recompiles are keyed by the tier byte, never by profile contents",
		"MaxSteps": "run-time step budget, applied per request at RunToContext",
		"MaxDepth": "run-time call-depth budget, applied at execution",
		"Timeout":  "run-time deadline, applied per request",
	}

	base := core.Config{}
	src := files("ok.v", okProg)
	baseKey := cacheKey(base, src, 1)

	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		mutated := base
		mv := reflect.ValueOf(&mutated).Elem().Field(i)
		switch mv.Kind() {
		case reflect.Bool:
			mv.SetBool(true)
		case reflect.Int, reflect.Int64:
			mv.SetInt(7)
		case reflect.String:
			mv.SetString("x")
		case reflect.Pointer:
			mv.Set(reflect.New(mv.Type().Elem()))
		default:
			t.Fatalf("core.Config.%s: unhandled kind %s — extend the audit", f.Name, mv.Kind())
		}
		moved := cacheKey(mutated, src, 1) != baseKey
		why, allowed := irrelevant[f.Name]
		switch {
		case moved && allowed:
			t.Errorf("core.Config.%s moved the cache key but is allowlisted (%s)", f.Name, why)
		case !moved && !allowed:
			t.Errorf("core.Config.%s is neither hashed by cacheKey nor allowlisted as output-irrelevant", f.Name)
		}
	}

	// The tier byte must separate a PGO recompile from the plain artifact.
	if cacheKey(base, src, 1) == cacheKey(base, src, 2) {
		t.Fatalf("tier-1 and tier-2 artifacts share a cache key")
	}
}

// TestServeIncrementalStats drives the artifact store through the
// server surface: a cold compile, then an edited re-compile that must
// reuse most functions, then the same sources under a different engine
// (a warm-cache miss but an artifact-store module hit, since the store
// key is engine-independent). /stats must account for all of it.
func TestServeIncrementalStats(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	prog := `
def helper(x: int) -> int { return x * 3; }
def main() {
	System.puti(helper(13));
	System.ln();
}
`
	edited := strings.Replace(prog, "x * 3", "x * 5", 1)

	// Cold compile populates the store.
	status, resp := post(t, ts.URL+"/compile", Request{Files: files("p.v", prog), Config: "opt"})
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("cold: status=%d resp=%+v", status, resp)
	}
	if got := s.Snapshot(); got.IncrementalHits != 0 {
		t.Fatalf("cold compile counted as incremental hit: %+v", got)
	}

	// Edit one function: function-granular reuse.
	status, resp = post(t, ts.URL+"/compile", Request{Files: files("p.v", edited), Config: "opt"})
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("edit: status=%d resp=%+v", status, resp)
	}
	st := s.Snapshot()
	if st.IncrementalHits != 1 {
		t.Fatalf("incremental_hits = %d after edit, want 1 (stats %+v)", st.IncrementalHits, st)
	}
	if st.IncrementalFuncsReused == 0 {
		t.Fatalf("edit recompiled everything: incremental_funcs_reused = 0 (stats %+v)", st)
	}

	// Same sources, different engine: misses the warm cache (engine is
	// in its key) but hits the store as a whole-module artifact (the
	// store key is engine-independent by design).
	status, resp = post(t, ts.URL+"/compile", Request{Files: files("p.v", edited), Config: "opt", Engine: "switch"})
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("engine switch: status=%d resp=%+v", status, resp)
	}
	if resp.Cached {
		t.Fatalf("engine switch unexpectedly hit the warm cache")
	}
	st = s.Snapshot()
	if st.IncrementalHits != 2 {
		t.Fatalf("incremental_hits = %d after engine switch, want 2 (module hit; stats %+v)", st.IncrementalHits, st)
	}

	// /stats must expose the counters over HTTP.
	hstatus, hresp, err := postCtx(t.Context(), ts.URL+"/compile", Request{Files: files("p.v", edited), Config: "opt"})
	if err != nil || hstatus != http.StatusOK {
		t.Fatalf("warm re-post: %v status=%d", err, hstatus)
	}
	if !hresp.Cached {
		t.Fatalf("warm re-post missed the cache: %+v", hresp)
	}
	res, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf [4096]byte
	n, _ := res.Body.Read(buf[:])
	body := string(buf[:n])
	for _, field := range []string{"coalesced", "incremental_hits", "incremental_funcs_reused", "incremental_fallbacks"} {
		if !strings.Contains(body, `"`+field+`"`) {
			t.Errorf("/stats body missing %q: %s", field, body)
		}
	}
}

// TestOptConfigRuns: the "opt" config (full pipeline minus analysis)
// is a first-class request config and runs programs correctly.
func TestOptConfigRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, resp := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg), Config: "opt"})
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
	if resp.Output != "hello\n" {
		t.Fatalf("output = %q", resp.Output)
	}
	if resp.Config != "mono+norm+opt" {
		t.Fatalf("config = %q", resp.Config)
	}
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
)

// workProg burns a known few-thousand steps and a little heap, so one
// run overdraws a small steps/sec budget.
const workProg = `
def main() {
	var s = 0;
	for (i = 0; i < 1000; i++) s = s + i;
	System.puti(s);
	System.ln();
}
`

// allocProg allocates ~80 KiB of modeled heap, so one run overdraws a
// small heap-bytes/sec budget.
const tenantAllocProg = `
def main() {
	for (i = 0; i < 100; i++) {
		var a = Array<int>.new(100);
		a[0] = i;
	}
}
`

// postHdr is postCtx plus response headers, for Retry-After checks.
func postHdr(t *testing.T, url string, req Request) (int, Response, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	raw, err := io.ReadAll(hres.Body)
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("malformed response %q: %v", raw, err)
	}
	return hres.StatusCode, resp, hres.Header
}

// requireQuotaReject asserts one 429 with the structured quota error
// shape: kind "quota", the budget name, a parseable Retry-After.
func requireQuotaReject(t *testing.T, status int, resp Response, hdr http.Header, quota string) {
	t.Helper()
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", status)
	}
	if resp.Error == nil || resp.Error.Kind != "quota" || resp.Error.Quota != quota {
		t.Fatalf("error = %+v, want kind=quota quota=%s", resp.Error, quota)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 60]", hdr.Get("Retry-After"))
	}
}

// TestTenantConcurrencyQuota: with a one-request tenant cap, a second
// concurrent request from the same tenant is rejected with a
// structured quota error while other tenants and anonymous requests
// are unaffected; the slot frees when the first request finishes.
func TestTenantConcurrencyQuota(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantMaxConcurrent: 1, MaxConcurrent: 4})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = postCtx(context.Background(), ts.URL+"/run",
			Request{Files: files("loop.v", loopProg), MaxSteps: 500_000_000, TimeoutMs: 2000, Tenant: "a"})
	}()
	waitFor(t, 2*s.cfg.DefaultTimeout, func() bool {
		return s.Snapshot().Tenants["a"].InFlight == 1
	})

	status, resp, hdr := postHdr(t, ts.URL+"/run", Request{Files: files("ok.v", okProg), Tenant: "a"})
	requireQuotaReject(t, status, resp, hdr, "concurrency")

	// A different tenant and an anonymous request are both admitted.
	if status, resp := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg), Tenant: "b"}); status != http.StatusOK || !resp.OK {
		t.Fatalf("tenant b: status=%d resp=%+v", status, resp)
	}
	if status, resp := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg)}); status != http.StatusOK || !resp.OK {
		t.Fatalf("anonymous: status=%d resp=%+v", status, resp)
	}

	<-done
	waitFor(t, 2*s.cfg.DefaultTimeout, func() bool {
		return s.Snapshot().Tenants["a"].InFlight == 0
	})
	if status, resp := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg), Tenant: "a"}); status != http.StatusOK || !resp.OK {
		t.Fatalf("tenant a after release: status=%d resp=%+v", status, resp)
	}

	st := s.Snapshot()
	if st.QuotaRejected < 1 {
		t.Fatalf("quota_rejected = %d, want >= 1", st.QuotaRejected)
	}
	ta := st.Tenants["a"]
	if ta.Rejected < 1 || ta.Requests < 3 {
		t.Fatalf("tenant a stats = %+v, want rejected>=1 requests>=3", ta)
	}
	if tb := st.Tenants["b"]; tb.Rejected != 0 || tb.Steps == 0 {
		t.Fatalf("tenant b stats = %+v, want no rejections and charged steps", tb)
	}
}

// TestTenantStepsQuota: the steps/sec bucket starts full, admits the
// first (oversized) request, and then rejects the tenant until the
// debt refills — the debt model in action.
func TestTenantStepsQuota(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantStepsPerSec: 100})
	status, resp := post(t, ts.URL+"/run", Request{Files: files("work.v", workProg), Tenant: "greedy"})
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("first request: status=%d resp=%+v", status, resp)
	}
	if resp.Steps <= 100 {
		t.Fatalf("work program burned only %d steps; the test needs it over the 100/s budget", resp.Steps)
	}
	st2, resp2, hdr := postHdr(t, ts.URL+"/run", Request{Files: files("ok.v", okProg), Tenant: "greedy"})
	requireQuotaReject(t, st2, resp2, hdr, "steps")

	// A polite tenant with its own (full) bucket is unaffected.
	if status, resp := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg), Tenant: "polite"}); status != http.StatusOK || !resp.OK {
		t.Fatalf("polite tenant: status=%d resp=%+v", status, resp)
	}

	st := s.Snapshot()
	g := st.Tenants["greedy"]
	if g.Steps != resp.Steps || g.Rejected != 1 {
		t.Fatalf("greedy stats = %+v, want steps=%d rejected=1", g, resp.Steps)
	}
}

// TestTenantHeapQuota: same shape for the modeled heap-bytes/sec
// budget, fed by the interp.Stats.HeapBytes meter.
func TestTenantHeapQuota(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantHeapPerSec: 1024})
	status, resp := post(t, ts.URL+"/run", Request{Files: files("alloc.v", tenantAllocProg), Tenant: "hog"})
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("first request: status=%d resp=%+v", status, resp)
	}
	st2, resp2, hdr := postHdr(t, ts.URL+"/run", Request{Files: files("ok.v", okProg), Tenant: "hog"})
	requireQuotaReject(t, st2, resp2, hdr, "heap")

	st := s.Snapshot()
	h := st.Tenants["hog"]
	if h.HeapBytes <= 1024 {
		t.Fatalf("hog heap_bytes = %d, want > 1024 (the program allocates ~80 KiB)", h.HeapBytes)
	}
	if h.Rejected != 1 {
		t.Fatalf("hog rejected = %d, want 1", h.Rejected)
	}
}

// TestAnonymousRequestsExemptFromQuotas: requests naming no tenant are
// never metered, even under budgets a single run would overdraw.
func TestAnonymousRequestsExemptFromQuotas(t *testing.T) {
	s, ts := newTestServer(t, Config{TenantMaxConcurrent: 1, TenantStepsPerSec: 1, TenantHeapPerSec: 1})
	for i := 0; i < 4; i++ {
		status, resp := post(t, ts.URL+"/run", Request{Files: files("work.v", workProg)})
		if status != http.StatusOK || !resp.OK {
			t.Fatalf("anonymous request %d: status=%d resp=%+v", i, status, resp)
		}
	}
	st := s.Snapshot()
	if st.QuotaRejected != 0 || st.Tenants != nil {
		t.Fatalf("anonymous traffic was metered: %+v", st)
	}
}

package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/core"
	"repro/internal/profile"
)

// compCache is the warm-compilation cache: an LRU over successful
// *core.Compilation values keyed by (config, engine, jobs, sources,
// tier). A Compilation is immutable after a successful compile — its
// module, type cache, and once-translated bytecode program are all
// shared, read-only state — so one cached entry can serve concurrent
// requests; each request still gets a fresh evaluator (with its own
// globals, inline caches, and stats) via RunToContext. This is what
// makes the service's steady state cheap: a repeated /run pays only
// execution, not parse/check/lower or bytecode translation.
//
// Entries also carry the tier-up state feeding feedback-directed
// re-optimization: a tier-1 entry accumulates the profiles of its runs
// until the server's TierAfter threshold, at which point the merged
// profile drives a recompile stored under the program's tier-2 key
// (the tier byte in cacheKey keeps the artifacts from aliasing).
type compCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[[sha256.Size]byte]*list.Element
}

type cacheEntry struct {
	key  [sha256.Size]byte
	comp *core.Compilation
	// tier is 1 for a plain compilation, 2 for a profile-guided
	// recompile. Immutable after insert.
	tier int

	// Tier-up accumulator (tier-1 entries only). Guarded by mu, which
	// is per entry so profile merging never blocks unrelated cache
	// traffic. tiering latches while one request's recompile is in
	// flight so concurrent threshold crossings trigger exactly one.
	mu      sync.Mutex
	runs    int64
	prof    *profile.Profile
	tiering bool
}

// recordRun folds one profiled execution into the entry. When the run
// crosses the tier-up threshold (and no recompile is already in
// flight) it returns a snapshot of the merged profile for the caller
// to recompile with; otherwise nil.
func (e *cacheEntry) recordRun(p *profile.Profile, tierAfter int) *profile.Profile {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.runs++
	if e.prof == nil {
		e.prof = profile.New()
	}
	e.prof.Merge(p)
	if e.runs < int64(tierAfter) || e.tiering {
		return nil
	}
	e.tiering = true
	// Snapshot under the lock: the optimizer reads the returned profile
	// while later runs keep merging into e.prof.
	snap := profile.New()
	snap.Merge(e.prof)
	return snap
}

// tierDone re-arms the entry after a tier-up attempt (successful or
// not): the counters restart, so if the tier-2 artifact is later
// evicted — or the recompile failed — the program earns another
// tier-up the same way it earned the first.
func (e *cacheEntry) tierDone() {
	e.mu.Lock()
	e.runs = 0
	e.tiering = false
	e.mu.Unlock()
}

func newCompCache(capacity int) *compCache {
	return &compCache{cap: capacity, ll: list.New(), m: map[[sha256.Size]byte]*list.Element{}}
}

// newArtifactStore sizes the content-addressed artifact store from the
// server's cache capacity. The store is keyed by config fingerprint
// (engine/jobs-independent), so it needs far fewer slots than the warm
// cache; a small floor keeps function-granular reuse alive even for
// tiny caches. A non-positive capacity disables caching entirely, and
// core.CompileFilesIncremental degrades to plain compilation on a nil
// store.
func newArtifactStore(capacity int) *core.Store {
	if capacity <= 0 {
		return nil
	}
	n := capacity
	if n < 8 {
		n = 8
	}
	return core.NewStore(n)
}

// cacheKey digests everything a compilation's identity depends on.
// Pure run-time knobs (MaxSteps, Timeout) are deliberately excluded:
// they are applied per request at execution time, not baked into the
// compilation. MaxErrors and MaxHeap are included — both ride on the
// cached Compilation's Config (MaxErrors shapes the diagnostic list, a
// Compilation's MaxHeap is its default run budget), so two requests
// differing there must not alias one artifact. The tier is included so
// a profile-guided recompile never aliases the plain artifact of the
// same sources. TestCacheKeyCoversConfig enumerates every core.Config
// field and fails when a new field is neither hashed here nor
// explicitly proven output-irrelevant.
func cacheKey(cfg core.Config, files []FileJSON, tier int) [sha256.Size]byte {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeInt := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	writeStr(cfg.Name())
	writeStr(cfg.Engine)
	writeInt(int64(cfg.Jobs))
	// A compilation with analysis-driven passes (and its cached
	// analysis facts) is a different artifact from one without.
	if cfg.Analyze {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	writeInt(int64(cfg.MaxErrors))
	writeInt(cfg.MaxHeap)
	h.Write([]byte{byte(tier)})
	for _, f := range files {
		writeStr(f.Name)
		writeStr(f.Source)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

func (c *compCache) get(key [sha256.Size]byte) (*cacheEntry, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts (or refreshes) an entry and returns it; nil when caching
// is disabled. Refreshing an existing key replaces the compilation but
// keeps the entry's accumulated tier state — same sources, same
// program, the profile is still true.
func (c *compCache) put(key [sha256.Size]byte, comp *core.Compilation, tier int) *cacheEntry {
	if c == nil || c.cap <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.comp = comp
		return e
	}
	e := &cacheEntry{key: key, comp: comp, tier: tier}
	c.m[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
	return e
}

func (c *compCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// tiered counts the tier-2 artifacts currently resident, for /stats.
func (c *compCache) tiered() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; el = el.Next() {
		if el.Value.(*cacheEntry).tier >= 2 {
			n++
		}
	}
	return n
}

package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"repro/internal/core"
)

// compCache is the warm-compilation cache: an LRU over successful
// *core.Compilation values keyed by (config, engine, jobs, sources).
// A Compilation is immutable after a successful compile — its module,
// type cache, and once-translated bytecode program are all shared,
// read-only state — so one cached entry can serve concurrent requests;
// each request still gets a fresh evaluator (with its own globals,
// inline caches, and stats) via RunToContext. This is what makes the
// service's steady state cheap: a repeated /run pays only execution,
// not parse/check/lower or bytecode translation.
type compCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[[sha256.Size]byte]*list.Element
}

type cacheEntry struct {
	key  [sha256.Size]byte
	comp *core.Compilation
}

func newCompCache(capacity int) *compCache {
	return &compCache{cap: capacity, ll: list.New(), m: map[[sha256.Size]byte]*list.Element{}}
}

// cacheKey digests everything a compilation's identity depends on.
// Run-time knobs (MaxSteps, TimeoutMs) are deliberately excluded: they
// are applied per request at execution time, not baked into the
// compilation.
func cacheKey(cfg core.Config, files []FileJSON) [sha256.Size]byte {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeStr(cfg.Name())
	writeStr(cfg.Engine)
	var jb [8]byte
	binary.LittleEndian.PutUint64(jb[:], uint64(cfg.Jobs))
	h.Write(jb[:])
	// A compilation with analysis-driven passes (and its cached
	// analysis facts) is a different artifact from one without.
	if cfg.Analyze {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	for _, f := range files {
		writeStr(f.Name)
		writeStr(f.Source)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

func (c *compCache) get(key [sha256.Size]byte) (*core.Compilation, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).comp, true
}

func (c *compCache) put(key [sha256.Size]byte, comp *core.Compilation) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).comp = comp
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, comp: comp})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

func (c *compCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

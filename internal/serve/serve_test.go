package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/testprogs"
)

const (
	okProg = `
def main() {
	System.puts("hello");
	System.ln();
}
`
	diagProg = `
def main() { frob(); }
`
	trapProg = `
class C { def f() -> int { return 1; } }
def main() {
	var c: C;
	System.puti(c.f());
}
`
	loopProg = `
def main() {
	var i = 0;
	while (true) i = i + 1;
}
`
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, req Request) (int, Response) {
	t.Helper()
	status, resp, err := postCtx(context.Background(), url, req)
	if err != nil {
		t.Fatal(err)
	}
	return status, resp
}

func postCtx(ctx context.Context, url string, req Request) (int, Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, Response{}, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, Response{}, err
	}
	hr.Header.Set("Content-Type", "application/json")
	res, err := http.DefaultClient.Do(hr)
	if err != nil {
		return 0, Response{}, err
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		return 0, Response{}, err
	}
	if bytes.Contains(raw, []byte("goroutine ")) {
		return 0, Response{}, fmt.Errorf("response leaked a Go stack trace: %s", raw)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return 0, Response{}, fmt.Errorf("malformed response %q: %v", raw, err)
	}
	return res.StatusCode, resp, nil
}

func files(name, source string) []FileJSON { return []FileJSON{{Name: name, Source: source}} }

func TestCompileOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, resp := post(t, ts.URL+"/compile", Request{Files: files("ok.v", okProg)})
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
	if resp.Funcs == 0 || resp.Instrs == 0 || resp.Config != "mono+norm+opt" {
		t.Fatalf("missing compile facts: %+v", resp)
	}
}

func TestCompileConfigs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, cfg := range []string{"ref", "mono", "norm", "opt", "full"} {
		status, resp := post(t, ts.URL+"/compile", Request{Files: files("ok.v", okProg), Config: cfg})
		if status != http.StatusOK || !resp.OK {
			t.Fatalf("config %s: status=%d resp=%+v", cfg, status, resp)
		}
	}
}

func TestCompileDiagnostics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, resp := post(t, ts.URL+"/compile", Request{Files: files("bad.v", diagProg)})
	if status != http.StatusOK || resp.OK {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
	if len(resp.Diagnostics) == 0 || !strings.Contains(resp.Diagnostics[0].Msg, "frob") {
		t.Fatalf("diagnostics = %+v", resp.Diagnostics)
	}
	if resp.Diagnostics[0].Pos == "" {
		t.Fatalf("diagnostic lost its position: %+v", resp.Diagnostics[0])
	}
}

func TestMaxErrorsPerRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var b strings.Builder
	b.WriteString("def main() {\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&b, "\tbogus%d();\n", i)
	}
	b.WriteString("}\n")
	_, resp := post(t, ts.URL+"/compile", Request{Files: files("many.v", b.String()), MaxErrors: 3})
	if len(resp.Diagnostics) != 4 { // 3 + sentinel
		t.Fatalf("%d diagnostics, want 4", len(resp.Diagnostics))
	}
}

func TestRunOutputAndTrap(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, resp := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg)})
	if status != http.StatusOK || !resp.OK || resp.Output != "hello\n" {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
	status, resp = post(t, ts.URL+"/run", Request{Files: files("trap.v", trapProg)})
	if status != http.StatusOK || resp.OK || resp.Trap == nil {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
	if resp.Trap.Name != "!NullCheckException" || len(resp.Trap.Trace) == 0 {
		t.Fatalf("trap = %+v", resp.Trap)
	}
}

func TestRunStepBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, resp := post(t, ts.URL+"/run", Request{Files: files("loop.v", loopProg), MaxSteps: 10000})
	if status != http.StatusOK || resp.OK || resp.Error == nil || resp.Error.Kind != "resource" {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
}

func TestRunDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, resp := post(t, ts.URL+"/run", Request{Files: files("loop.v", loopProg), TimeoutMs: 50})
	if status != http.StatusGatewayTimeout || resp.Error == nil || resp.Error.Kind != "deadline" {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tt := range []struct {
		name string
		req  Request
	}{
		{"no files", Request{}},
		{"bad config", Request{Files: files("x.v", okProg), Config: "frob"}},
		{"negative max errors", Request{Files: files("x.v", okProg), MaxErrors: -1}},
	} {
		status, resp := post(t, ts.URL+"/compile", tt.req)
		if status != http.StatusBadRequest || resp.Error == nil {
			t.Fatalf("%s: status=%d resp=%+v", tt.name, status, resp)
		}
	}
	// Malformed JSON body.
	res, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status=%d", res.StatusCode)
	}
	// Wrong method.
	res, err = http.Get(ts.URL + "/compile")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /compile: status=%d", res.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	res, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", res.StatusCode)
	}
	post(t, ts.URL+"/compile", Request{Files: files("ok.v", okProg)})
	res, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if st.Total < 1 || st.Succeeded < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := s.Snapshot(); got.Total != st.Total && got.Total < st.Total {
		t.Fatalf("snapshot went backwards: %+v vs %+v", got, st)
	}
}

// TestLoadShedding fills every slot and the whole wait queue with
// requests held open by a ctx-aware injected delay, then asserts the
// next arrival is shed with 429 + Retry-After while the held requests
// still complete.
func TestLoadShedding(t *testing.T) {
	r, err := faultinject.Parse("parse:delay:0:60000,parse:delay:1:60000")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Set(r)()

	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Request A takes the slot (blocked in the injected delay); request
	// B fills the queue.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := postCtx(ctx, ts.URL+"/compile", Request{Files: files("ok.v", okProg)})
			results <- err
		}()
	}
	waitFor(t, time.Second, func() bool {
		st := s.Snapshot()
		return st.InFlight == 1 && st.Waiting == 1
	})

	// Request C finds slot busy and queue full: shed.
	status, resp := post(t, ts.URL+"/compile", Request{Files: files("ok.v", okProg)})
	if status != http.StatusTooManyRequests || resp.Error == nil {
		t.Fatalf("status=%d resp=%+v", status, resp)
	}
	if s.Snapshot().Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", s.Snapshot().Shed)
	}

	// Cancel A and B; both must come back (as client-side errors).
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case <-results:
		case <-time.After(2 * time.Second):
			t.Fatal("held request did not return after cancel")
		}
	}
	waitFor(t, time.Second, func() bool { return s.Snapshot().InFlight == 0 })
}

// TestCancellationFreesSlotWithin100ms is the acceptance bound: a
// client that cancels mid-compile of the largest corpus program gets
// its slot freed within 100ms, even though the stage it was in had
// (injected) seconds of work left.
func TestCancellationFreesSlotWithin100ms(t *testing.T) {
	r, err := faultinject.Parse("mono:delay:0:30000")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Set(r)()

	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	p := largestProg()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		postCtx(ctx, ts.URL+"/compile", Request{Files: files(p.Name+".v", p.Source), TimeoutMs: 60000})
		close(done)
	}()
	waitFor(t, 2*time.Second, func() bool { return s.Snapshot().InFlight == 1 })

	cancel()
	start := time.Now()
	waitFor(t, 100*time.Millisecond, func() bool { return s.Snapshot().InFlight == 0 })
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("slot freed after %v, want <= 100ms", elapsed)
	}
	<-done
	if got := s.Snapshot().Cancelled; got != 1 {
		t.Fatalf("cancelled counter = %d, want 1", got)
	}

	// The freed slot must be immediately usable.
	status, resp := post(t, ts.URL+"/compile", Request{Files: files("ok.v", okProg)})
	if status != http.StatusOK || !resp.OK {
		t.Fatalf("request after cancel: status=%d resp=%+v", status, resp)
	}
}

func largestProg() testprogs.Prog {
	all := testprogs.All()
	best := all[0]
	for _, p := range all {
		if len(p.Source) > len(best.Source) {
			best = p
		}
	}
	return best
}

// TestFaultMatrixThroughServer is the service-level acceptance matrix:
// for every pipeline stage and every fault kind the server returns a
// structured error (never a Go stack trace), /healthz stays OK, and a
// subsequent clean request on the same process succeeds. Faults at the
// execution layer (the interp boundary and the bytecode-only
// translate/engine points) are special: the watchdog re-runs the
// request on the switch interpreter, so /run still answers 200 OK with
// the fallback recorded instead of surfacing the fault.
func TestFaultMatrixThroughServer(t *testing.T) {
	stages := []string{"parse", "check", "lower", "mono", "norm", "opt", "validate", "interp", "translate", "engine", "par"}
	execution := map[string]bool{"interp": true, "translate": true, "engine": true}
	for _, stage := range stages {
		for _, kind := range []string{faultinject.KindPanic, faultinject.KindErr, faultinject.KindDelay} {
			t.Run(stage+"/"+kind, func(t *testing.T) {
				reg, err := faultinject.Parse(fmt.Sprintf("%s:%s:0:10", stage, kind))
				if err != nil {
					t.Fatal(err)
				}
				restore := faultinject.Set(reg)
				defer restore()

				s, ts := newTestServer(t, Config{})
				status, resp := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg)})
				healed := execution[stage] && kind != faultinject.KindDelay
				switch {
				case healed:
					if status != http.StatusOK || !resp.OK || !resp.Fallback || resp.Engine != "switch" {
						t.Fatalf("status=%d resp=%+v", status, resp)
					}
					if got := s.Snapshot().EngineFallbacks; got != 1 {
						t.Fatalf("engine_fallbacks = %d, want 1", got)
					}
				case kind == faultinject.KindPanic:
					if status != http.StatusInternalServerError || resp.Error == nil || resp.Error.Kind != "ice" {
						t.Fatalf("status=%d resp=%+v", status, resp)
					}
				case kind == faultinject.KindErr:
					if resp.Error == nil || !strings.Contains(resp.Error.Msg, "injected error") {
						t.Fatalf("status=%d resp=%+v", status, resp)
					}
				case kind == faultinject.KindDelay:
					if status != http.StatusOK || !resp.OK {
						t.Fatalf("status=%d resp=%+v", status, resp)
					}
				}

				// Health must be unaffected by the fault.
				res, err := http.Get(ts.URL + "/healthz")
				if err != nil {
					t.Fatal(err)
				}
				res.Body.Close()
				if res.StatusCode != http.StatusOK {
					t.Fatalf("/healthz after %s:%s = %d", stage, kind, res.StatusCode)
				}

				// And a clean request on the same process must succeed.
				status, resp = post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg)})
				if status != http.StatusOK || !resp.OK || resp.Output != "hello\n" {
					t.Fatalf("clean request after %s:%s: status=%d resp=%+v", stage, kind, status, resp)
				}
			})
		}
	}
}

// TestGracefulShutdownDrains starts a real listener, puts a request in
// flight, begins shutdown, and asserts: the in-flight request completes
// (drain), new requests are rejected, Serve returns ErrServerClosed,
// and no goroutines leak.
func TestGracefulShutdownDrains(t *testing.T) {
	before := stableGoroutines(t)

	reg, err := faultinject.Parse("mono:delay:0:300")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Set(reg)
	defer restore()

	s := New(Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	// In-flight request: held ~300ms by the injected delay.
	type result struct {
		status int
		resp   Response
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		st, resp, err := postCtx(context.Background(), url+"/run", Request{Files: files("ok.v", okProg)})
		inflight <- result{st, resp, err}
	}()
	waitFor(t, 2*time.Second, func() bool { return s.Snapshot().InFlight == 1 })

	// Shutdown with a generous drain window: the in-flight request must
	// complete normally.
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveErr:
		if err != http.ErrServerClosed {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	r := <-inflight
	if r.err != nil || r.status != http.StatusOK || !r.resp.OK {
		t.Fatalf("in-flight request during drain: %+v", r)
	}

	http.DefaultClient.CloseIdleConnections()
	assertNoGoroutineLeaks(t, before)
}

// TestShutdownCancelsStragglers: when the drain window expires, the
// straggler's context is cancelled and Shutdown still returns.
func TestShutdownCancelsStragglers(t *testing.T) {
	reg, err := faultinject.Parse("mono:delay:0:30000")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Set(reg)
	defer restore()

	s := New(Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	inflight := make(chan Response, 1)
	go func() {
		_, resp, _ := postCtx(context.Background(), url+"/compile", Request{Files: files("slow.v", okProg), TimeoutMs: 60000})
		inflight <- resp
	}()
	waitFor(t, 2*time.Second, func() bool { return s.Snapshot().InFlight == 1 })

	shCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	s.Shutdown(shCtx) // drain expires; stragglers cancelled
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Shutdown took %v despite a 100ms drain window", elapsed)
	}
	select {
	case resp := <-inflight:
		if resp.Error != nil && resp.Error.Kind == "ice" {
			t.Fatalf("straggler got an ICE instead of a cancellation: %+v", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("straggler request never returned")
	}
	<-serveErr
	http.DefaultClient.CloseIdleConnections()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not met within %v", d)
		}
		time.Sleep(time.Millisecond)
	}
}

// stableGoroutines samples the goroutine count until it stops moving.
func stableGoroutines(t *testing.T) int {
	t.Helper()
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}

// assertNoGoroutineLeaks allows a small slack for runtime helpers but
// fails on anything resembling a leaked worker per request.
func assertNoGoroutineLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	var after int
	for {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, after)
}

// TestWarmCacheReuse pins the warm-compilation path: a repeated request
// for the same sources is served from the cache (Cached flag, hit
// counter), runs fresh every time, and a different engine or config is
// a distinct cache entry.
func TestWarmCacheReuse(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	status, first := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg)})
	if status != http.StatusOK || !first.OK || first.Cached {
		t.Fatalf("cold request: status=%d resp=%+v", status, first)
	}
	status, second := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg)})
	if status != http.StatusOK || !second.OK || !second.Cached {
		t.Fatalf("warm request not cached: status=%d resp=%+v", status, second)
	}
	if second.Output != first.Output || second.Steps != first.Steps {
		t.Fatalf("warm run diverged: first=%+v second=%+v", first, second)
	}
	// The switch engine is a different cache key, and must produce the
	// same observable result.
	status, sw := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg), Engine: "switch"})
	if status != http.StatusOK || !sw.OK || sw.Cached {
		t.Fatalf("switch-engine request: status=%d resp=%+v", status, sw)
	}
	if sw.Output != first.Output || sw.Steps != first.Steps {
		t.Fatalf("engines diverged: bytecode=%+v switch=%+v", first, sw)
	}
	st := s.Snapshot()
	if st.CacheHits != 1 || st.CacheMisses != 2 || st.CacheEntries != 2 {
		t.Fatalf("cache counters: %+v", st)
	}
	if st.Engine != "bytecode" {
		t.Fatalf("server engine = %q, want bytecode", st.Engine)
	}
	// A bogus engine name is a request error, not a server fault.
	status, bad := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg), Engine: "jit"})
	if status != http.StatusBadRequest || bad.Error == nil {
		t.Fatalf("bad engine: status=%d resp=%+v", status, bad)
	}
}

// TestCacheDisabled verifies a negative CacheSize turns the cache off.
func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: -1})
	for i := 0; i < 2; i++ {
		status, resp := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg)})
		if status != http.StatusOK || !resp.OK || resp.Cached {
			t.Fatalf("request %d: status=%d resp=%+v", i, status, resp)
		}
	}
	if st := s.Snapshot(); st.CacheHits != 0 || st.CacheEntries != 0 {
		t.Fatalf("disabled cache recorded hits: %+v", st)
	}
}

// TestCachedStepBudget verifies per-request step budgets apply to
// cache-hit runs: the same cached compilation can be run to completion
// or stopped by a tight budget, request by request.
func TestCachedStepBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, warm := post(t, ts.URL+"/run", Request{Files: files("loop.v", loopProg), MaxSteps: 5000})
	if status != http.StatusOK || warm.Error == nil || warm.Error.Kind != "resource" {
		t.Fatalf("cold bounded run: status=%d resp=%+v", status, warm)
	}
	status, hit := post(t, ts.URL+"/run", Request{Files: files("loop.v", loopProg), MaxSteps: 700})
	if status != http.StatusOK || !hit.Cached || hit.Error == nil || hit.Error.Kind != "resource" {
		t.Fatalf("warm bounded run: status=%d resp=%+v", status, hit)
	}
	if hit.Steps != 701 {
		t.Fatalf("warm bounded run steps = %d, want 701", hit.Steps)
	}
}

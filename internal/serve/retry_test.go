package serve

import (
	"testing"
	"time"
)

// The Retry-After arithmetic is one shared helper family (retry.go);
// these tables pin both derivations — queue drain for load shed,
// bucket deficit for quotas — and the common clamp.

func TestClampRetrySecs(t *testing.T) {
	for _, tt := range []struct{ in, want int }{
		{-5, 1}, {0, 1}, {1, 1}, {42, 42}, {60, 60}, {61, 60}, {1 << 30, 60},
	} {
		if got := clampRetrySecs(tt.in); got != tt.want {
			t.Errorf("clampRetrySecs(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestQueueDrainSecs(t *testing.T) {
	for _, tt := range []struct {
		name   string
		queued int64
		avg    time.Duration
		slots  int
		want   int
	}{
		{"cold start floors at 1s", 1, 0, 4, 1},
		{"negative avg uses the cold default", 5, -time.Second, 4, 1},
		{"10 queued 4s requests over 2 slots", 10, 4 * time.Second, 2, 20},
		{"partial seconds round up", 1, 1500 * time.Millisecond, 1, 2},
		{"zero queued still hints at least one request", 0, 4 * time.Second, 2, 2},
		{"zero slots treated as one", 1, 3 * time.Second, 0, 3},
		{"huge queue clamps to 60", 1_000_000, time.Second, 1, 60},
		{"fast requests floor at 1", 10, time.Millisecond, 4, 1},
	} {
		if got := queueDrainSecs(tt.queued, tt.avg, tt.slots); got != tt.want {
			t.Errorf("%s: queueDrainSecs(%d, %v, %d) = %d, want %d",
				tt.name, tt.queued, tt.avg, tt.slots, got, tt.want)
		}
	}
}

func TestDeficitSecs(t *testing.T) {
	for _, tt := range []struct {
		name          string
		deficit, rate float64
		want          int
	}{
		{"zero deficit waits the one-second refill", 0, 100, 1},
		{"negative deficit treated as zero", -50, 100, 1},
		{"deficit refills in ceil(1.5)+1", 150, 100, 3},
		{"huge deficit clamps to 60", 1e9, 1, 60},
		{"zero rate has no refill; minimum hint", 100, 0, 1},
		{"negative rate has no refill; minimum hint", 100, -1, 1},
	} {
		if got := deficitSecs(tt.deficit, tt.rate); got != tt.want {
			t.Errorf("%s: deficitSecs(%v, %v) = %d, want %d",
				tt.name, tt.deficit, tt.rate, got, tt.want)
		}
	}
}

// TestRetryAfterHintRecomputedPerResponse pins the property the shed
// path relies on: the hint prices the EWMA read at response time, so
// two rejections seeing the same queue depth produce different hints
// after the observed service time moves.
func TestRetryAfterHintRecomputedPerResponse(t *testing.T) {
	s := New(Config{MaxConcurrent: 2})
	if got := s.retryAfterHint(1); got != 1 {
		t.Fatalf("no samples: hint = %d, want the 1s floor", got)
	}
	s.observeDuration(4 * time.Second)
	// 10 queued observed at rejection, 4s EWMA, 2 slots → 20s.
	if got := s.retryAfterHint(10); got != 20 {
		t.Fatalf("hint = %d, want 20", got)
	}
	// The EWMA follows a shift toward faster requests; the same queue
	// depth now prices to the floor — no stale snapshot.
	for i := 0; i < 100; i++ {
		s.observeDuration(time.Millisecond)
	}
	if got := s.retryAfterHint(10); got != 1 {
		t.Fatalf("hint after fast requests = %d, want 1", got)
	}
	if got := s.retryAfterHint(1_000_000); got != 60 {
		t.Fatalf("hint = %d, want the 60s clamp", got)
	}
}

package serve

import (
	"context"
	"crypto/sha256"
	"sync"

	"repro/internal/core"
)

// Single-flight compile coalescing: when N requests race for the same
// cache key while none of them is warm yet — the classic warm-miss
// stampede after a deploy or an eviction — exactly one (the leader)
// runs the compile; the others (followers) block on its result and
// share the finished Compilation, which is immutable and safe to serve
// concurrently.
//
// Failures are not shared: a leader's error may be specific to its own
// request (client disconnect, per-request deadline), so followers of a
// failed flight fall back to compiling independently rather than
// inheriting an error they didn't cause. Sharing is an optimization
// for the success path only.
type flightGroup struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]*flight
}

type flight struct {
	done chan struct{}
	comp *core.Compilation
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[[sha256.Size]byte]*flight{}}
}

// do runs fn under single-flight for key. It reports coalesced=true
// when the result came from another request's in-flight compile. A
// follower whose ctx ends while waiting returns ctx.Err(); a follower
// whose leader failed runs fn itself.
func (g *flightGroup) do(ctx context.Context, key [sha256.Size]byte, fn func() (*core.Compilation, error)) (comp *core.Compilation, coalesced bool, err error) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if f.err == nil {
			return f.comp, true, nil
		}
		// Leader failed; compile independently (uncoalesced).
		c, e := fn()
		return c, false, e
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
	}()
	f.comp, f.err = fn()
	return f.comp, false, f.err
}

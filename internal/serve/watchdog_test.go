package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// ---- unit: program hashing and the fallback table ----

func TestProgramHash(t *testing.T) {
	a := ProgramHash(files("a.v", "def main() { }"))
	if a != ProgramHash(files("a.v", "def main() { }")) {
		t.Fatal("hash is not deterministic")
	}
	if len(a) != 16 {
		t.Fatalf("hash %q, want 8 bytes = 16 hex chars", a)
	}
	if a == ProgramHash(files("b.v", "def main() { }")) {
		t.Fatal("hash ignores the file name")
	}
	if a == ProgramHash(files("a.v", "def main() { var x = 0; }")) {
		t.Fatal("hash ignores the source")
	}
}

func TestFallbackTableQuarantineAndLRU(t *testing.T) {
	ft := newFallbackTable(2, 2)
	if ft.record("a") != 1 || ft.quarantined("a") {
		t.Fatal("one fallback must not quarantine at after=2")
	}
	if ft.record("a") != 2 || !ft.quarantined("a") {
		t.Fatal("second fallback must quarantine at after=2")
	}
	// Two fresh programs evict "a" from the two-entry LRU: aging out of
	// the table ends the quarantine (fresh chance on the fast engine).
	ft.record("b")
	ft.record("c")
	if ft.quarantined("a") {
		t.Fatal("evicted program is still quarantined")
	}
	q, recent := ft.snapshot()
	if q != 0 {
		t.Fatalf("quarantined = %d, want 0 (b and c have one fallback each)", q)
	}
	if len(recent) == 0 || recent[0] != "c" {
		t.Fatalf("recent = %v, want newest-first starting with c", recent)
	}
}

func TestFallbackTableQuarantineDisabled(t *testing.T) {
	ft := newFallbackTable(8, -1)
	for i := 0; i < 10; i++ {
		ft.record("a")
	}
	if ft.quarantined("a") {
		t.Fatal("negative after must disable quarantine")
	}
	if q, _ := ft.snapshot(); q != 0 {
		t.Fatalf("snapshot reports %d quarantined with quarantine disabled", q)
	}
}

// ---- end to end: the engine-fallback watchdog ----

// TestEngineFallbackAndQuarantine arms one-shot faults at the two
// bytecode-only points and drives the same program through /run three
// times at QuarantineAfter=2:
//
//	run 1: translate faults → transparent switch re-run (fallback #1)
//	run 2: engine faults    → transparent switch re-run (fallback #2)
//	run 3: no fault armed   → already quarantined, pinned to switch
//
// Every run returns the program's true output; /stats records the
// fallbacks, the quarantine, and the offending hash.
func TestEngineFallbackAndQuarantine(t *testing.T) {
	reg, err := faultinject.Parse("translate:err:0,engine:err:0")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Set(reg)()

	s, ts := newTestServer(t, Config{QuarantineAfter: 2})
	req := Request{Files: files("ok.v", okProg)}

	for run := 1; run <= 2; run++ {
		status, resp := post(t, ts.URL+"/run", req)
		if status != http.StatusOK || !resp.OK || resp.Output != "hello\n" {
			t.Fatalf("run %d: status=%d resp=%+v, want healed 200", run, status, resp)
		}
		if !resp.Fallback || resp.Engine != "switch" || resp.Quarantined {
			t.Fatalf("run %d: fallback=%v engine=%q quarantined=%v, want fallback on switch", run, resp.Fallback, resp.Engine, resp.Quarantined)
		}
	}

	status, resp := post(t, ts.URL+"/run", req)
	if status != http.StatusOK || !resp.OK || resp.Output != "hello\n" {
		t.Fatalf("quarantined run: status=%d resp=%+v", status, resp)
	}
	if !resp.Quarantined || resp.Fallback || resp.Engine != "switch" {
		t.Fatalf("quarantined run: fallback=%v engine=%q quarantined=%v, want pinned to switch with no fallback", resp.Fallback, resp.Engine, resp.Quarantined)
	}

	st := s.Snapshot()
	if st.EngineFallbacks != 2 {
		t.Fatalf("engine_fallbacks = %d, want 2", st.EngineFallbacks)
	}
	if st.QuarantinedPrograms != 1 {
		t.Fatalf("quarantined_programs = %d, want 1", st.QuarantinedPrograms)
	}
	if len(st.FallbackHashes) != 1 || st.FallbackHashes[0] != ProgramHash(req.Files) {
		t.Fatalf("fallback_hashes = %v, want [%s]", st.FallbackHashes, ProgramHash(req.Files))
	}

	// An unrelated program is unaffected: it runs on the bytecode engine.
	status, resp = post(t, ts.URL+"/run", Request{Files: files("other.v", `def main() { System.puti(7); System.ln(); }`)})
	if status != http.StatusOK || !resp.OK || resp.Engine != "bytecode" || resp.Quarantined || resp.Fallback {
		t.Fatalf("unrelated program: status=%d resp=%+v, want clean bytecode run", status, resp)
	}
}

// TestFallbackWithQuarantineDisabled: QuarantineAfter < 0 keeps the
// watchdog re-running faulted programs on the switch interpreter but
// never pins them — the bytecode engine gets every next request.
func TestFallbackWithQuarantineDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{QuarantineAfter: -1})
	req := Request{Files: files("ok.v", okProg)}
	for run := 0; run < 3; run++ {
		// Re-arm a fresh one-shot engine fault for every run: a fired
		// fault's nth counter is spent, so each arming fires exactly once.
		reg, err := faultinject.Parse("engine:err:0")
		if err != nil {
			t.Fatal(err)
		}
		restore := faultinject.Set(reg)
		status, resp := post(t, ts.URL+"/run", req)
		restore()
		if status != http.StatusOK || !resp.OK || !resp.Fallback || resp.Quarantined {
			t.Fatalf("run %d: status=%d resp=%+v, want fallback without quarantine", run, status, resp)
		}
	}
	st := s.Snapshot()
	if st.EngineFallbacks != 3 || st.QuarantinedPrograms != 0 {
		t.Fatalf("fallbacks=%d quarantined=%d, want 3/0", st.EngineFallbacks, st.QuarantinedPrograms)
	}
}

// TestShedRetryAfterHeaderParses: the load-shed Retry-After hint is a
// positive integer derived from queue state, not a constant string
// baked into the handler.
func TestShedRetryAfterHeaderParses(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})
	// Saturate the one slot and the one queue seat with deadline-bounded
	// infinite loops, and only then probe.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _ = postCtx(context.Background(), ts.URL+"/run",
				Request{Files: files("loop.v", loopProg), TimeoutMs: 1000})
		}()
	}
	waitFor(t, 2*time.Second, func() bool {
		st := s.Snapshot()
		return st.InFlight == 1 && st.Waiting == 1
	})
	body, err := json.Marshal(Request{Files: files("ok.v", okProg)})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ra := hres.Header.Get("Retry-After")
	_, _ = io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("probe status = %d, want 429 with slot and queue full", hres.StatusCode)
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 60]", ra)
	}
	wg.Wait()
}

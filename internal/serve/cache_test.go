package serve

import (
	"crypto/sha256"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestCacheConcurrentEviction hammers the warm-compilation LRU from
// many goroutines with a working set far larger than its capacity, so
// inserts, hits, LRU moves, and evictions all race. Under -race this is
// the data-race proof for cache.go; functionally it asserts the cache
// never serves a stale entry (a hit for key K must return exactly the
// compilation that was stored under K) and never exceeds capacity.
func TestCacheConcurrentEviction(t *testing.T) {
	const capacity = 4
	c := newCompCache(capacity)

	// Sixteen distinct programs, compiled once up front; the cache holds
	// at most four, so the workers below continuously evict each other.
	type entry struct {
		key  [sha256.Size]byte
		comp *core.Compilation
	}
	var entries []entry
	for i := 0; i < 16; i++ {
		fs := files("p.v", fmt.Sprintf("def main() -> int { return %d; }", i))
		comp, err := core.Compile(fs[0].Name, fs[0].Source, core.Compiled())
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, entry{key: cacheKey(core.Compiled(), fs, 1), comp: comp})
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e := entries[(w*31+i)%len(entries)]
				if got, ok := c.get(e.key); ok {
					if got.comp != e.comp {
						select {
						case errs <- fmt.Errorf("stale cache entry: key %x returned the wrong compilation", e.key[:4]):
						default:
						}
					}
				} else {
					c.put(e.key, e.comp, 1)
				}
				if n := c.len(); n > capacity {
					select {
					case errs <- fmt.Errorf("cache grew past capacity: %d > %d", n, capacity):
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if n := c.len(); n == 0 || n > capacity {
		t.Fatalf("cache len = %d after soak, want 1..%d", n, capacity)
	}
}

// TestCacheEvictionThroughServer drives eviction end to end: with a
// two-entry cache, a third distinct program evicts the least recently
// used one, which then misses again — and the evicted program still
// compiles and runs correctly (eviction loses only warmth, never
// correctness).
func TestCacheEvictionThroughServer(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheSize: 2})
	prog := func(i int) Request {
		return Request{Files: files("p.v", fmt.Sprintf(`def main() { System.puti(%d); System.ln(); }`, i))}
	}
	for i := 0; i < 3; i++ {
		status, resp := post(t, ts.URL+"/run", prog(i))
		if status != http.StatusOK || !resp.OK || resp.Cached {
			t.Fatalf("cold run %d: status=%d resp=%+v", i, status, resp)
		}
	}
	// prog(0) was LRU when prog(2) arrived: it must re-miss, and re-run
	// with the right output.
	status, resp := post(t, ts.URL+"/run", prog(0))
	if status != http.StatusOK || !resp.OK || resp.Cached || resp.Output != "0\n" {
		t.Fatalf("evicted program rerun: status=%d resp=%+v", status, resp)
	}
	st := s.Snapshot()
	if st.CacheEntries > 2 {
		t.Fatalf("cache_entries = %d, want <= 2", st.CacheEntries)
	}
	if st.CacheMisses != 4 || st.CacheHits != 0 {
		t.Fatalf("hits/misses = %d/%d, want 0/4", st.CacheHits, st.CacheMisses)
	}
}

package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/interp"
	"repro/internal/progen"
)

// TestSoak drives the server with concurrent clients issuing a mix of
// valid, erroneous, and trapping programs while faults are armed and a
// deterministic subset of clients cancel mid-request. It asserts that
// every request produces exactly one well-formed response (or a clean
// client-side cancellation) and that no goroutines leak. Run under
// -race in CI, this is the data-race and leak soak for the service.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	before := stableGoroutines(t)

	// Arm a sprinkling of faults deep enough into the run that early
	// requests exercise the clean path too. Delays are short so the soak
	// stays fast; panics and errors prove containment under load.
	reg, err := faultinject.Parse(strings.Join([]string{
		"mono:delay:5:5",
		"check:err:7",
		"opt:panic:3",
		"par:err:11",
		"interp:delay:9:5",
	}, ","))
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Set(reg)
	defer restore()

	s := New(Config{MaxConcurrent: 4, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	progs := []struct {
		path string
		req  Request
	}{
		{"/run", Request{Files: files("ok.v", okProg)}},
		{"/compile", Request{Files: files("ok.v", okProg), Config: "ref"}},
		{"/compile", Request{Files: files("bad.v", diagProg)}},
		{"/run", Request{Files: files("trap.v", trapProg)}},
		{"/run", Request{Files: files("loop.v", loopProg), MaxSteps: 50000}},
		{"/compile", Request{}}, // no files: 400
	}

	const (
		clients          = 8
		requestsPerCl    = 30
		cancelEveryNth   = 7 // deterministic: every 7th request per client is cancelled
		cancelAfterDelay = 2 * time.Millisecond
	)

	var wg sync.WaitGroup
	errs := make(chan error, clients*requestsPerCl)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requestsPerCl; i++ {
				p := progs[(c+i)%len(progs)]
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%cancelEveryNth == cancelEveryNth-1 {
					ctx, cancel = context.WithTimeout(ctx, cancelAfterDelay)
				}
				status, resp, err := postCtx(ctx, ts.URL+p.path, p.req)
				if cancel != nil {
					cancel()
					if err != nil {
						// Client-side cancellation is the expected outcome
						// for this request; the server-side slot release is
						// asserted after the drain below.
						continue
					}
				}
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", c, i, err)
					continue
				}
				// Every non-cancelled request must carry exactly one
				// well-formed response: either OK with payload, or a
				// diagnostic/error body matching its status.
				switch {
				case resp.OK:
					if status != http.StatusOK {
						errs <- fmt.Errorf("client %d req %d: OK body with status %d", c, i, status)
					}
				case len(resp.Diagnostics) > 0 || resp.Trap != nil:
					if status != http.StatusOK {
						errs <- fmt.Errorf("client %d req %d: diagnostics with status %d", c, i, status)
					}
				case resp.Error != nil:
					if resp.Error.Kind == "" || resp.Error.Msg == "" {
						errs <- fmt.Errorf("client %d req %d: empty error info %+v", c, i, resp.Error)
					}
				default:
					errs <- fmt.Errorf("client %d req %d: response carries no outcome: %+v (status %d)", c, i, resp, status)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// All slots must be free and the books must balance: every admitted
	// request is accounted for in exactly one terminal counter.
	waitFor(t, 2*time.Second, func() bool {
		st := s.Snapshot()
		return st.InFlight == 0 && st.Waiting == 0
	})
	st := s.Snapshot()
	if st.Total == 0 {
		t.Fatal("soak recorded no requests")
	}
	accounted := st.Succeeded + st.Diagnostics + st.ICEs + st.Cancelled + st.Deadlines
	if accounted > st.Total {
		t.Fatalf("counters exceed total: %+v", st)
	}

	// The server must still be healthy and serve a clean request.
	restore() // disarm faults before the final probe
	status, resp := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg)})
	if status != http.StatusOK || !resp.OK || resp.Output != "hello\n" {
		t.Fatalf("post-soak clean request: status=%d resp=%+v", status, resp)
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	assertNoGoroutineLeaks(t, before)
}

// TestChaosSoak is the self-healing soak: mixed tenants (one of them
// greedy, over its heap-bytes/sec budget; the others polite), engine
// faults armed at the bytecode-only translate/engine points, a
// memory-hungry program bounded by the modeled heap budget, and
// deterministic client cancellations — all at once, under -race in CI.
// It asserts the containment boundaries hold independently: quota 429s
// hit only the greedy tenant, every engine fault heals into a
// successful switch re-run, the hungry program always traps
// !HeapExhausted (never an ICE, never unbounded RSS), no goroutines
// leak, and the daemon's real heap stays bounded.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	before := stableGoroutines(t)

	// One-shot faults deep enough into the run that the cache is warm
	// and clean requests have succeeded first: an injected translate
	// error, an engine panic, and a short engine delay.
	reg, err := faultinject.Parse(strings.Join([]string{
		"translate:err:6",
		"engine:panic:10",
		"engine:delay:14:5",
	}, ","))
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Set(reg)
	defer restore()

	s := New(Config{
		MaxConcurrent: 4,
		QueueDepth:    32,
		MaxHeapBytes:  1 << 20, // the hungry program traps after ~2 allocations
		// The greedy tenant's hungry runs charge >1 MiB each against a
		// 2 MiB/s budget; the polite tenants' programs charge a few
		// hundred bytes and never approach it.
		TenantHeapPerSec: 2 << 20,
		QuarantineAfter:  3,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hungry := progen.Hungry()["array_growth"]

	type client struct {
		tenant string
		req    Request
	}
	clientsSpec := []client{
		{"greedy", Request{Files: files("hungry.v", hungry), Tenant: "greedy"}},
		{"polite1", Request{Files: files("ok.v", okProg), Tenant: "polite1"}},
		{"polite2", Request{Files: files("trap.v", trapProg), Tenant: "polite2"}},
		{"greedy", Request{Files: files("hungry.v", hungry), Tenant: "greedy"}},
		{"polite1", Request{Files: files("ok.v", okProg), Tenant: "polite1"}},
		{"polite2", Request{Files: files("ok.v", okProg), Tenant: "polite2"}},
	}

	const (
		requestsPerCl  = 25
		cancelEveryNth = 7
	)
	var wg sync.WaitGroup
	errs := make(chan error, len(clientsSpec)*requestsPerCl)
	var greedy429s, heapTraps atomic.Int64
	for c, spec := range clientsSpec {
		wg.Add(1)
		go func(c int, spec client) {
			defer wg.Done()
			for i := 0; i < requestsPerCl; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%cancelEveryNth == cancelEveryNth-1 {
					ctx, cancel = context.WithTimeout(ctx, 2*time.Millisecond)
				}
				status, resp, err := postCtx(ctx, ts.URL+"/run", spec.req)
				if cancel != nil {
					cancel()
					if err != nil {
						continue
					}
				}
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", c, i, err)
					continue
				}
				switch status {
				case http.StatusTooManyRequests:
					if resp.Error == nil || resp.Error.Kind != "quota" {
						errs <- fmt.Errorf("client %d req %d: 429 without a quota error: %+v", c, i, resp.Error)
						continue
					}
					if spec.tenant == "greedy" {
						greedy429s.Add(1)
					} else {
						errs <- fmt.Errorf("client %d req %d: polite tenant %s hit quota %q", c, i, spec.tenant, resp.Error.Quota)
					}
				case http.StatusOK:
					if resp.Trap != nil && resp.Trap.Name == interp.HeapExhausted {
						heapTraps.Add(1)
					}
				case http.StatusGatewayTimeout:
					// Cancelled or deadline — tolerated for cancelled clients.
				default:
					errs <- fmt.Errorf("client %d req %d: status %d resp %+v", c, i, status, resp)
				}
			}
		}(c, spec)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	waitFor(t, 2*time.Second, func() bool {
		st := s.Snapshot()
		return st.InFlight == 0 && st.Waiting == 0
	})
	st := s.Snapshot()
	if st.EngineFallbacks < 1 {
		t.Errorf("engine_fallbacks = %d, want >= 1 (translate/engine faults were armed)", st.EngineFallbacks)
	}
	if greedy429s.Load() < 1 {
		t.Error("the greedy tenant was never quota-rejected")
	}
	if heapTraps.Load() < 1 {
		t.Error("the hungry program never trapped !HeapExhausted")
	}
	if st.QuotaRejected != st.Tenants["greedy"].Rejected {
		t.Errorf("quota_rejected = %d but greedy rejected = %d; a polite tenant was metered wrong",
			st.QuotaRejected, st.Tenants["greedy"].Rejected)
	}
	accounted := st.Succeeded + st.Diagnostics + st.ICEs + st.Cancelled + st.Deadlines
	if accounted > st.Total {
		t.Fatalf("counters exceed total: %+v", st)
	}

	// The daemon's real heap must stay bounded: the modeled budget keeps
	// each hungry run to ~1 MiB of live allocation, so after a GC the
	// process is nowhere near the unbounded growth the program attempts.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 256<<20 {
		t.Errorf("HeapAlloc = %d MiB after soak, want < 256 MiB", ms.HeapAlloc>>20)
	}

	// Still healthy: a clean request succeeds after the chaos.
	restore()
	status, resp := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg)})
	if status != http.StatusOK || !resp.OK || resp.Output != "hello\n" {
		t.Fatalf("post-soak clean request: status=%d resp=%+v", status, resp)
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	assertNoGoroutineLeaks(t, before)
}

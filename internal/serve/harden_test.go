package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// ---- request-decoding hardening ----

// TestUnknownRequestFieldRejected: a request body with a field the
// wire type does not define is a 400, not a silently ignored knob.
func TestUnknownRequestFieldRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"files":[{"name":"ok.v","source":"def main() { }"}],"max_stepz":5}`
	res, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var resp Response
	decodeBody(t, res, &resp)
	if res.StatusCode != http.StatusBadRequest || resp.Error == nil {
		t.Fatalf("status=%d resp=%+v, want structured 400", res.StatusCode, resp)
	}
	if !strings.Contains(resp.Error.Msg, "unknown field") {
		t.Fatalf("error msg %q does not name the unknown field", resp.Error.Msg)
	}
}

// TestOversizedBodyIsStructured413: a body over MaxBodyBytes is shed
// with a structured 413 naming the limit — bounded memory, no half-read
// JSON error leaking into a 400.
func TestOversizedBodyIsStructured413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	big := strings.Repeat("x", 8192)
	body := `{"files":[{"name":"big.v","source":"` + big + `"}]}`
	res, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var resp Response
	decodeBody(t, res, &resp)
	if res.StatusCode != http.StatusRequestEntityTooLarge || resp.Error == nil {
		t.Fatalf("status=%d resp=%+v, want structured 413", res.StatusCode, resp)
	}
	if !strings.Contains(resp.Error.Msg, "2048") {
		t.Fatalf("error msg %q does not name the byte limit", resp.Error.Msg)
	}
	// The server is unharmed: a well-formed request still succeeds.
	status, ok := post(t, ts.URL+"/run", Request{Files: files("ok.v", okProg)})
	if status != http.StatusOK || !ok.OK {
		t.Fatalf("clean request after 413: status=%d resp=%+v", status, ok)
	}
}

func decodeBody(t *testing.T, res *http.Response, into *Response) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), into); err != nil {
		t.Fatalf("malformed response %q: %v", buf.String(), err)
	}
}

// ---- cache eviction × quarantine × tier interaction ----

// TestEvictedQuarantinedProgramNeverTiers pins the interaction of
// three independent tables: the quarantine table is keyed by program
// hash and must survive the program's cache entry being evicted, and
// a quarantined program re-admitted to the cache runs on the switch
// interpreter — so it must never record profiles and never tier up,
// no matter how many runs it accumulates past TierAfter.
func TestEvictedQuarantinedProgramNeverTiers(t *testing.T) {
	s, ts := newTestServer(t, Config{
		CacheSize:       1, // one entry: any other program evicts
		QuarantineAfter: 1, // first fallback quarantines
		TierAfter:       2, // two profiled runs would tier an innocent program
	})
	prog := Request{Files: files("victim.v", okProg)}

	// One injected engine fault → fallback #1 → quarantined.
	reg, err := faultinject.Parse("engine:err:0")
	if err != nil {
		t.Fatal(err)
	}
	restore := faultinject.Set(reg)
	status, resp := post(t, ts.URL+"/run", prog)
	restore()
	if status != http.StatusOK || !resp.OK || !resp.Fallback {
		t.Fatalf("faulted run: status=%d resp=%+v, want healed fallback", status, resp)
	}

	// Evict the program's cache entry with an unrelated compile.
	status, other := post(t, ts.URL+"/run", Request{Files: files("evictor.v", `def main() { System.puti(7); System.ln(); }`)})
	if status != http.StatusOK || !other.OK {
		t.Fatalf("evictor run: status=%d resp=%+v", status, other)
	}
	if st := s.Snapshot(); st.CacheEntries != 1 {
		t.Fatalf("cache_entries = %d, want 1 (victim evicted)", st.CacheEntries)
	}

	// Re-admission: every run past TierAfter must stay quarantined on
	// the switch interpreter at tier 0 — quarantine survived eviction,
	// and a switch-pinned program is not tierable.
	for run := 0; run < 2*2+2; run++ {
		status, resp := post(t, ts.URL+"/run", prog)
		if status != http.StatusOK || !resp.OK || resp.Output != "hello\n" {
			t.Fatalf("run %d: status=%d resp=%+v", run, status, resp)
		}
		if !resp.Quarantined || resp.Engine != "switch" {
			t.Fatalf("run %d: quarantined=%v engine=%q, want pinned to switch", run, resp.Quarantined, resp.Engine)
		}
		if resp.Tier != 0 {
			t.Fatalf("run %d: tier = %d, want 0 (quarantined programs never tier)", run, resp.Tier)
		}
		if resp.Fallback {
			t.Fatalf("run %d: fallback=%v, want pinned (no fresh fault)", run, resp.Fallback)
		}
	}
	st := s.Snapshot()
	if st.TierUps != 0 || st.TieredPrograms != 0 {
		t.Fatalf("tier_ups=%d tiered_programs=%d, want 0/0", st.TierUps, st.TieredPrograms)
	}
	if st.QuarantinedPrograms != 1 {
		t.Fatalf("quarantined_programs = %d, want 1", st.QuarantinedPrograms)
	}
	if st.EngineFallbacks != 1 {
		t.Fatalf("engine_fallbacks = %d, want exactly the one injected", st.EngineFallbacks)
	}
}
